package main

import (
	"bytes"
	"strings"
	"testing"
)

func runLabsCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// small keeps the scenario sizing low so CLI tests stay fast.
var small = []string{"-customers", "250"}

func withSizing(args ...string) []string {
	return append(append([]string{}, small...), args...)
}

func TestLabsCLIValidation(t *testing.T) {
	if _, err := runLabsCLI(t); err == nil {
		t.Error("missing command must fail")
	}
	if _, err := runLabsCLI(t, withSizing("show")...); err == nil {
		t.Error("show without a challenge id must fail")
	}
	if _, err := runLabsCLI(t, withSizing("attempt", "telco-churn")...); err == nil {
		t.Error("attempt without an index must fail")
	}
	if _, err := runLabsCLI(t, withSizing("attempt", "telco-churn", "not-a-number")...); err == nil {
		t.Error("non-numeric index must fail")
	}
	if _, err := runLabsCLI(t, withSizing("simulate")...); err == nil {
		t.Error("simulate without a challenge id must fail")
	}
	if _, err := runLabsCLI(t, withSizing("dance")...); err == nil {
		t.Error("unknown command must fail")
	}
	if _, err := runLabsCLI(t, withSizing("show", "ghost-challenge")...); err == nil {
		t.Error("unknown challenge must fail")
	}
}

func TestLabsCLIList(t *testing.T) {
	out, err := runLabsCLI(t, withSizing("list")...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"telco-churn", "payment-fraud", "energy-forecast", "retail-baskets", "web-funnel"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestLabsCLIShow(t *testing.T) {
	out, err := runLabsCLI(t, withSizing("show", "retail-baskets")...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cross-selling", "objectives:", "design alternatives"} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q:\n%s", want, out)
		}
	}
}

func TestLabsCLIAttempt(t *testing.T) {
	out, err := runLabsCLI(t, withSizing("-trainee", "alice", "attempt", "retail-baskets", "0")...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trainee:     alice", "score:", "objective evaluation:"} {
		if !strings.Contains(out, want) {
			t.Errorf("attempt output missing %q:\n%s", want, out)
		}
	}
}

func TestLabsCLISimulate(t *testing.T) {
	out, err := runLabsCLI(t, withSizing("-attempts", "2", "simulate", "web-funnel")...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"guided", "greedy", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("simulate output missing %q:\n%s", want, out)
		}
	}
}
