// Command toreador-labs is the trainee-facing CLI of TOREADOR Labs: it lists
// the available challenges, shows their narratives and design alternatives,
// executes attempts, and simulates whole training sessions.
//
// Usage:
//
//	toreador-labs list
//	toreador-labs show telco-churn
//	toreador-labs attempt telco-churn 3 -trainee alice
//	toreador-labs simulate telco-churn -attempts 5
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	toreador "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toreador-labs:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("toreador-labs", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "seed for scenario generation")
		customers = fs.Int("customers", 1000, "scenario sizing")
		trainee   = fs.String("trainee", "trainee", "trainee name recorded for attempts")
		attempts  = fs.Int("attempts", 5, "number of attempts for the simulate command")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("missing command: one of list, show, attempt, simulate")
	}
	lab, err := toreador.OpenLab(*seed, toreador.Sizing{Customers: *customers})
	if err != nil {
		return err
	}
	ctx := context.Background()

	switch fs.Arg(0) {
	case "list":
		return doList(out, lab)
	case "show":
		if fs.NArg() < 2 {
			return fmt.Errorf("show requires a challenge id")
		}
		return doShow(out, lab, fs.Arg(1))
	case "attempt":
		if fs.NArg() < 3 {
			return fmt.Errorf("attempt requires a challenge id and an alternative index")
		}
		idx, err := strconv.Atoi(fs.Arg(2))
		if err != nil {
			return fmt.Errorf("alternative index: %w", err)
		}
		return doAttempt(ctx, out, lab, *trainee, fs.Arg(1), idx)
	case "simulate":
		if fs.NArg() < 2 {
			return fmt.Errorf("simulate requires a challenge id")
		}
		return doSimulate(ctx, out, lab, fs.Arg(1), *attempts, *seed)
	default:
		return fmt.Errorf("unknown command %q", fs.Arg(0))
	}
}

func doList(out io.Writer, lab *toreador.Lab) error {
	fmt.Fprintln(out, "TOREADOR Labs challenges:")
	for _, ch := range lab.Challenges() {
		fmt.Fprintf(out, "  %-16s %-45s vertical=%-8s regime=%s\n",
			ch.ID, ch.Title, ch.Vertical, ch.Campaign.Regime)
	}
	return nil
}

func doShow(out io.Writer, lab *toreador.Lab, id string) error {
	ch, err := lab.Challenge(id)
	if err != nil {
		return err
	}
	alternatives, err := lab.Alternatives(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s — %s\n\n%s\n\n", ch.ID, ch.Title, ch.Narrative)
	fmt.Fprintf(out, "goal: %s on %s\n", ch.Campaign.Goal.Task, ch.Campaign.Goal.TargetTable)
	fmt.Fprintln(out, "objectives:")
	for _, o := range ch.Campaign.Objectives {
		hard := ""
		if o.Hard {
			hard = " (hard)"
		}
		fmt.Fprintf(out, "  %s %s %g%s\n", o.Indicator, o.Comparison, o.Target, hard)
	}
	fmt.Fprintf(out, "degrees of freedom: %v\n\n", ch.DegreesOfFreedom)
	fmt.Fprintf(out, "design alternatives (%d):\n", len(alternatives))
	for _, a := range alternatives {
		marker := " "
		if !a.Compliant() {
			marker = "!"
		}
		fmt.Fprintf(out, "%s [%3d] est.score=%.3f %s\n", marker, a.Index, a.Evaluation.Score, a.Fingerprint())
	}
	return nil
}

func doAttempt(ctx context.Context, out io.Writer, lab *toreador.Lab, trainee, id string, idx int) error {
	attempt, err := lab.Attempt(ctx, trainee, id, idx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trainee:     %s\n", attempt.Trainee)
	fmt.Fprintf(out, "alternative: %s\n", attempt.Fingerprint)
	fmt.Fprintf(out, "score:       %.3f (compliant=%v, feasible=%v)\n",
		attempt.Score, attempt.Report.Compliant, attempt.Report.Evaluation.Feasible)
	fmt.Fprintf(out, "measured:    %s\n", attempt.Report.Measured)
	fmt.Fprintln(out, "\nobjective evaluation:")
	fmt.Fprint(out, attempt.Report.Evaluation.Summary())
	return nil
}

func doSimulate(ctx context.Context, out io.Writer, lab *toreador.Lab, id string, attempts int, seed int64) error {
	fmt.Fprintf(out, "simulated trainees on %s (%d attempts each):\n", id, attempts)
	for _, strategy := range []toreador.TraineeStrategy{toreador.TraineeGuided, toreador.TraineeGreedy, toreador.TraineeRandom} {
		curve, err := lab.SimulateTrainee(ctx, id, strategy, attempts, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %-8s", strategy)
		for _, v := range curve {
			fmt.Fprintf(out, " %.3f", v)
		}
		fmt.Fprintln(out)
	}
	return nil
}
