// Command toreadorctl is the operator CLI of the platform: it compiles
// declarative campaign files into deployment plans, enumerates alternatives,
// runs the chosen pipeline, and produces interference and what-if reports.
//
// Usage:
//
//	toreadorctl -scenario telco -campaign campaign.json compile
//	toreadorctl -scenario telco -campaign campaign.json run
//	toreadorctl -scenario telco -campaign campaign.json explain
//	toreadorctl -scenario telco -campaign campaign.json alternatives
//	toreadorctl -scenario telco -campaign campaign.json interference
//	toreadorctl -scenario telco -campaign campaign.json plan -strategy greedy
//	toreadorctl -scenario telco serve -listen 127.0.0.1:8321
//	toreadorctl -store-dir ./tables tables
//	toreadorctl -store-dir ./tables -table results/churn -filter "customer_id >= 100" tables
//
// tables inspects the durable segment store: without -table it lists the
// live tables (rows, segments, bytes), with -table it scans one table —
// optionally under a zone-map-pruned predicate — and reports how many
// segments and frames the scan skipped.
//
// serve starts the long-running multi-tenant analytics service over HTTP:
// POST /submit?tenant=<name> accepts a campaign JSON body, compiles it and
// executes it under the service's admission control, SLA scheduling,
// deadlines and retry policy; GET /stats reports the service counters and
// latency histograms; POST /shutdown drains and exits.
//
// The -scenario flag registers one or more synthetic vertical scenarios
// (comma separated) so the campaign's data sources resolve; -repository
// optionally persists campaigns and run records; -store-dir opens the
// crash-safe segment store, making every run save its prepared dataset as the
// durable table results/<campaign>.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	toreador "repro"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toreadorctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("toreadorctl", flag.ContinueOnError)
	var (
		scenarios  = fs.String("scenario", "telco", "comma-separated vertical scenarios to register (telco,retail,energy,web,finance)")
		campaign   = fs.String("campaign", "", "path to the declarative campaign JSON file (required)")
		seed       = fs.Int64("seed", 1, "seed for data generation and execution")
		customers  = fs.Int("customers", 2000, "scenario sizing: customers/baskets/transactions")
		repository = fs.String("repository", "", "optional model-repository directory for persistence")
		strategy   = fs.String("strategy", "exhaustive", "planning strategy for the plan command (exhaustive|greedy|random)")
		memBudget  = fs.Int64("memory-budget", 0, "bytes of columnar batch data the engine keeps resident per wide operator; excess spills to disk (0 = unlimited)")
		spillComp  = fs.Bool("spill-compression", true, "encode spilled batches with the compressed v2 frame codec (dictionary/delta/RLE); false writes raw v1 frames")
		engineKM   = fs.Bool("engine-clustering", true, "run the clustering task as an Iterate plan on the dataflow engine; false uses the in-process KMeans ablation arm")
		failRate   = fs.Float64("failure-rate", 0, "injected transient task-failure probability on the simulated cluster (serve: exercised by the retry policy)")
		listen     = fs.String("listen", "127.0.0.1:8321", "serve: listen address (host:0 picks a free port)")
		queueDepth = fs.Int("queue", 16, "serve: submission queue depth before admission control rejects or sheds")
		workers    = fs.Int("workers", 2, "serve: concurrent campaign executions")
		maxRetries = fs.Int("max-retries", 2, "serve: retry budget per campaign for transient failures")
		storeDir   = fs.String("store-dir", "", "directory of the durable segment store; runs save their prepared data there as results/<campaign>")
		spillDir   = fs.String("spill-dir", "", "directory for engine spill temp files (default: system temp dir)")
		tableName  = fs.String("table", "", "tables: scan this table instead of listing all tables")
		filterExpr = fs.String("filter", "", "tables: predicate pushed into the scan, e.g. \"customer_id >= 100\"")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("missing command: one of compile, run, explain, alternatives, interference, plan, serve, tables")
	}
	command := fs.Arg(0)
	if *campaign == "" && command != "serve" && command != "tables" {
		return fmt.Errorf("-campaign is required")
	}

	platform, err := toreador.New(toreador.Config{
		Seed: *seed, RepositoryDir: *repository, MemoryBudget: *memBudget, FailureRate: *failRate,
		DisableSpillCompression: !*spillComp,
		DisableEngineClustering: !*engineKM,
		StoreDir:                *storeDir,
		SpillDir:                *spillDir,
	})
	if err != nil {
		return err
	}
	sizing := toreador.Sizing{Customers: *customers}
	for _, name := range strings.Split(*scenarios, ",") {
		v, err := parseVertical(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		if _, err := platform.RegisterScenario(v, sizing); err != nil {
			return fmt.Errorf("register scenario %s: %w", v, err)
		}
	}

	ctx := context.Background()
	if command == "tables" {
		return doTables(out, platform, *tableName, *filterExpr)
	}
	if command == "serve" {
		return doServe(out, platform, serveOptions{
			listen:     *listen,
			queueDepth: *queueDepth,
			workers:    *workers,
			maxRetries: *maxRetries,
		})
	}

	f, err := os.Open(*campaign)
	if err != nil {
		return fmt.Errorf("open campaign: %w", err)
	}
	defer f.Close()
	c, err := model.DecodeCampaign(f)
	if err != nil {
		return err
	}

	switch command {
	case "compile":
		return doCompile(out, platform, c)
	case "run":
		return doRun(ctx, out, platform, c)
	case "explain":
		return doExplain(out, platform, c)
	case "alternatives":
		return doAlternatives(out, platform, c)
	case "interference":
		return doInterference(out, platform, c)
	case "plan":
		return doPlan(out, platform, c, toreador.Strategy(*strategy))
	default:
		return fmt.Errorf("unknown command %q", command)
	}
}

func doTables(out io.Writer, platform *toreador.Platform, table, filter string) error {
	st := platform.Store()
	if st == nil {
		return fmt.Errorf("tables requires -store-dir")
	}
	if table == "" {
		infos := st.Tables()
		fmt.Fprintf(out, "%d tables:\n", len(infos))
		for _, ti := range infos {
			fmt.Fprintf(out, "  %-32s %8d rows %4d segments %10d bytes  (%s)\n",
				ti.Name, ti.Rows, ti.Segments, ti.Bytes, strings.Join(ti.Columns, ","))
		}
		if q := st.Quarantined(); len(q) > 0 {
			fmt.Fprintf(out, "%d segments quarantined during recovery: %s\n", len(q), strings.Join(q, ", "))
		}
		return nil
	}
	schema, err := st.Schema(table)
	if err != nil {
		return err
	}
	var f store.Filter
	if filter != "" {
		pred, err := store.ParsePred(filter, schema)
		if err != nil {
			return err
		}
		f = store.Filter{pred}
	}
	rows := 0
	stats, err := st.Scan(table, f, func(b *storage.ColumnBatch) error {
		rows += b.Len()
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "table:    %s\n", table)
	if filter != "" {
		fmt.Fprintf(out, "filter:   %s\n", filter)
	}
	fmt.Fprintf(out, "scanned:  %d rows\n", rows)
	fmt.Fprintf(out, "segments: %d scanned, %d skipped by zone maps/bloom\n", stats.SegmentsScanned, stats.SegmentsSkipped)
	fmt.Fprintf(out, "frames:   %d scanned, %d skipped\n", stats.FramesScanned, stats.FramesSkipped)
	return nil
}

func parseVertical(name string) (toreador.Vertical, error) {
	switch name {
	case "telco":
		return toreador.VerticalTelco, nil
	case "retail":
		return toreador.VerticalRetail, nil
	case "energy":
		return toreador.VerticalEnergy, nil
	case "web":
		return toreador.VerticalWeb, nil
	case "finance":
		return toreador.VerticalFinance, nil
	default:
		return "", fmt.Errorf("unknown vertical %q", name)
	}
}

func doCompile(out io.Writer, platform *toreador.Platform, c *toreador.Campaign) error {
	result, err := platform.Compile(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "campaign:      %s (%s)\n", c.Name, c.Goal.Task)
	fmt.Fprintf(out, "design space:  %d alternatives, %d compliant\n",
		len(result.Alternatives), len(result.CompliantAlternatives()))
	fmt.Fprintf(out, "chosen:        %s\n", result.Chosen.Fingerprint())
	fmt.Fprintf(out, "estimates:     %s\n", result.Chosen.Estimates)
	fmt.Fprintf(out, "compile time:  %s (validate %s, match %s, compose %s, comply %s, bind %s)\n",
		result.Timings.Total(), result.Timings.Validate, result.Timings.Match,
		result.Timings.Compose, result.Timings.Comply, result.Timings.Bind)
	arts, err := result.Chosen.Plan.Artifacts()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\ndeployment artifacts:")
	for name := range arts {
		fmt.Fprintf(out, "  %s (%d bytes)\n", name, len(arts[name]))
	}
	return nil
}

func doRun(ctx context.Context, out io.Writer, platform *toreador.Platform, c *toreador.Campaign) error {
	result, report, err := platform.Execute(ctx, c)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "executed:  %s\n", result.Chosen.Fingerprint())
	fmt.Fprintf(out, "measured:  %s\n", report.Measured)
	fmt.Fprintf(out, "wall time: %s over %d rows\n", report.WallTime, report.RowsProcessed)
	fmt.Fprintln(out, "\nobjective evaluation:")
	fmt.Fprint(out, report.Evaluation.Summary())
	fmt.Fprintln(out, "\ndiagnostics:")
	for k, v := range report.Details {
		fmt.Fprintf(out, "  %-28s %s\n", k, v)
	}
	return nil
}

func doExplain(out io.Writer, platform *toreador.Platform, c *toreador.Campaign) error {
	result, err := platform.Compile(c)
	if err != nil {
		return err
	}
	plan, err := platform.ExplainPipeline(c, result.Chosen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "campaign: %s\n", c.Name)
	fmt.Fprintf(out, "chosen:   %s\n\n", result.Chosen.Fingerprint())
	fmt.Fprint(out, plan)
	return nil
}

func doAlternatives(out io.Writer, platform *toreador.Platform, c *toreador.Campaign) error {
	alternatives, err := platform.Alternatives(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d alternatives for %s:\n", len(alternatives), c.Name)
	for _, a := range alternatives {
		marker := " "
		if !a.Compliant() {
			marker = "!"
		}
		fmt.Fprintf(out, "%s [%3d] score=%.3f %s\n", marker, a.Index, a.Evaluation.Score, a.Fingerprint())
	}
	fmt.Fprintln(out, "\n('!' marks non-compliant alternatives)")
	return nil
}

func doInterference(out io.Writer, platform *toreador.Platform, c *toreador.Campaign) error {
	points, err := platform.Interference(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "interference analysis for %s:\n", c.Name)
	fmt.Fprintf(out, "%-14s %12s %10s %12s %10s %10s %10s\n",
		"regime", "alternatives", "compliant", "preparation", "analytics", "display", "platforms")
	for _, p := range points {
		fmt.Fprintf(out, "%-14s %12d %10d %12d %10d %10d %10d\n",
			p.Regime, p.TotalAlternatives, p.CompliantAlternatives,
			p.PreparationOptions, p.AnalyticsOptions, p.DisplayOptions, p.PlatformOptions)
	}
	return nil
}

func doPlan(out io.Writer, platform *toreador.Platform, c *toreador.Campaign, strategy toreador.Strategy) error {
	decision, err := platform.Plan(c, strategy)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "strategy:  %s\n", decision.Strategy)
	fmt.Fprintf(out, "chosen:    %s\n", decision.Chosen.Fingerprint())
	fmt.Fprintf(out, "score:     %.3f (feasible=%v)\n", decision.Score, decision.Feasible)
	fmt.Fprintf(out, "explored:  %d of %d alternatives in %s\n", decision.Explored, decision.TotalAlternatives, decision.Elapsed)
	return nil
}
