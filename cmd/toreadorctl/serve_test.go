package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe writer: the serve command writes to it
// from its own goroutine while the test polls for the listen address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe runs the serve command on an ephemeral port and returns its base
// URL plus a channel with the command's exit error.
func startServe(t *testing.T, extraArgs ...string) (string, *syncBuffer, chan error) {
	t.Helper()
	out := &syncBuffer{}
	done := make(chan error, 1)
	args := append([]string{
		"-scenario", "telco", "-customers", "300", "-listen", "127.0.0.1:0",
	}, extraArgs...)
	args = append(args, "serve")
	go func() { done <- run(args, out) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "serving on http://"); i >= 0 {
			rest := s[i+len("serving on http://"):]
			if j := strings.IndexAny(rest, " \n"); j > 0 {
				return "http://" + rest[:j], out, done
			}
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited before listening: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	t.Fatalf("serve never reported its address:\n%s", out.String())
	return "", nil, nil
}

func TestServeSmoke(t *testing.T) {
	base, out, done := startServe(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	// A full campaign round trip through the service runtime.
	campaign, err := os.ReadFile(writeCampaignFile(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/submit?tenant=acme", "application/json", bytes.NewReader(campaign))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/submit = %d: %s", resp.StatusCode, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("submit response not JSON: %v: %s", err, body)
	}
	if sr.Status != "completed" || sr.Attempts < 1 || sr.Measured["accuracy"] <= 0 {
		t.Errorf("submit response = %+v", sr)
	}

	// Malformed submissions are rejected, not fatal.
	resp, err = http.Post(base+"/submit", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad submit = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(base + "/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /submit = %d, want 405", resp.StatusCode)
	}

	// The stats surface reflects the completed submission.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats = %d", resp.StatusCode)
	}
	for _, want := range []string{"service.submitted", "service.completed", "service.latency.ms"} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("/stats missing %s:\n%s", want, stats)
		}
	}

	// Graceful drain: /shutdown ends the command cleanly and the final stats
	// land on the CLI output.
	resp, err = http.Post(base+"/shutdown", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("serve did not drain after /shutdown:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "final service stats") {
		t.Errorf("missing final stats:\n%s", out.String())
	}
}
