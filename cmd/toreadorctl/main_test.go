package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/model"
)

// writeCampaignFile stores a small churn campaign JSON in a temp dir and
// returns its path.
func writeCampaignFile(t *testing.T) string {
	t.Helper()
	campaign := &model.Campaign{
		Name:     "cli-churn",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "support_calls"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []model.Objective{
			{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.7, Hard: true},
		},
		Regime: model.RegimePseudonymize,
	}
	path := filepath.Join(t.TempDir(), "campaign.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := campaign.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestCLIValidation(t *testing.T) {
	if _, err := runCLI(t); err == nil {
		t.Error("missing command must fail")
	}
	if _, err := runCLI(t, "compile"); err == nil {
		t.Error("missing -campaign must fail")
	}
	campaign := writeCampaignFile(t)
	if _, err := runCLI(t, "-campaign", campaign, "-scenario", "plutonium", "compile"); err == nil {
		t.Error("unknown scenario must fail")
	}
	if _, err := runCLI(t, "-campaign", campaign, "frobnicate"); err == nil {
		t.Error("unknown command must fail")
	}
	if _, err := runCLI(t, "-campaign", filepath.Join(t.TempDir(), "missing.json"), "compile"); err == nil {
		t.Error("missing campaign file must fail")
	}
}

func TestCLICompile(t *testing.T) {
	campaign := writeCampaignFile(t)
	out, err := runCLI(t, "-campaign", campaign, "-customers", "300", "compile")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"design space:", "chosen:", "deployment artifacts:", "plan.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("compile output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRunWithRepository(t *testing.T) {
	campaign := writeCampaignFile(t)
	repoDir := t.TempDir()
	out, err := runCLI(t, "-campaign", campaign, "-customers", "300", "-repository", repoDir, "run")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"executed:", "objective evaluation:", "accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
	// The repository must now contain the persisted campaign and run.
	entries, err := os.ReadDir(filepath.Join(repoDir, "runs", "cli-churn"))
	if err != nil || len(entries) == 0 {
		t.Errorf("run record not persisted: %v, %v", entries, err)
	}
}

func TestCLIExplain(t *testing.T) {
	campaign := writeCampaignFile(t)
	out, err := runCLI(t, "-campaign", campaign, "-customers", "300", "explain")
	if err != nil {
		t.Fatal(err)
	}
	// The chosen churn pipeline prepares data with at least a null-dropping
	// filter plus a masking map, so the physical plan must show them fused
	// into a single stage over the source table.
	for _, want := range []string{"PhysicalPlan(fusion=on, combine=on", "FusedStage(ops=", "Source(telco_customers"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIExplainNamesWideStrategies drives explain over a forecasting
// campaign, whose analytics stage sorts by the time column: the rendered
// physical plan must name the wide-operator strategy the engine chose.
func TestCLIExplainNamesWideStrategies(t *testing.T) {
	campaign := &model.Campaign{
		Name:     "cli-forecast",
		Vertical: "energy",
		Goal: model.Goal{
			Task:        model.TaskForecasting,
			TargetTable: "meter_readings",
			ValueColumn: "kwh",
			TimeColumn:  "read_at",
		},
		Sources: []model.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	path := filepath.Join(t.TempDir(), "forecast.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := campaign.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-scenario", "energy", "-campaign", path, "explain")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"preparation stage:",
		"analytics stage (forecasting):",
		"rangeSort=on",
		"Sort([{read_at false}]) [range-shuffle(parts=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIExplainBudgetedSortStrategy drives explain with a one-byte memory
// budget over the forecasting campaign: the rendered physical plan must show
// the budget in the header and name the spill-aware sort strategy — an
// external merge with its statically-bounded run count — instead of the
// in-memory columnar core.
func TestCLIExplainBudgetedSortStrategy(t *testing.T) {
	campaign := &model.Campaign{
		Name:     "cli-forecast-budget",
		Vertical: "energy",
		Goal: model.Goal{
			Task:        model.TaskForecasting,
			TargetTable: "meter_readings",
			ValueColumn: "kwh",
			TimeColumn:  "read_at",
		},
		Sources: []model.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	path := filepath.Join(t.TempDir(), "forecast-budget.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := campaign.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-scenario", "energy", "-campaign", path, "-memory-budget", "1", "explain")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"memoryBudget=1B",
		"Sort([{read_at false}])",
		"[external merge (runs≤",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("budgeted explain output missing %q:\n%s", want, out)
		}
	}
	// The unbudgeted run of the same campaign names the in-memory core.
	out, err = runCLI(t, "-scenario", "energy", "-campaign", path, "explain")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[columnar in-memory]") {
		t.Errorf("unbudgeted explain must name the columnar sort core:\n%s", out)
	}
}

// TestCLIExplainClusteringIteratePlan drives explain over a clustering
// campaign: the analytics stage runs on the engine's Iterate node, so the
// rendered plan must show the iterate operator with its loop-carried body
// sub-plan (centroid aggregation, broadcast join, reassignment). With
// -engine-clustering=false the analytics stage runs off-engine and the
// iterate section must disappear.
func TestCLIExplainClusteringIteratePlan(t *testing.T) {
	campaign := &model.Campaign{
		Name:     "cli-segments",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClustering,
			TargetTable:    "telco_customers",
			FeatureColumns: []string{"monthly_charge", "data_usage_gb", "tenure_months"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	path := filepath.Join(t.TempDir(), "segments.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := campaign.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-campaign", path, "-customers", "300", "explain")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"analytics stage (clustering):",
		"Iterate [iterate (maxIter=",
		"body (re-executed per iteration):",
		"LoopState(",
		"GroupBy(keys=[cluster]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clustering explain output missing %q:\n%s", want, out)
		}
	}
	out, err = runCLI(t, "-campaign", path, "-customers", "300", "-engine-clustering=false", "explain")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Iterate [iterate") {
		t.Errorf("ablation arm must not plan an iterate stage:\n%s", out)
	}
}

func TestCLIAlternativesInterferencePlan(t *testing.T) {
	campaign := writeCampaignFile(t)
	out, err := runCLI(t, "-campaign", campaign, "-customers", "300", "alternatives")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "alternatives for cli-churn") || !strings.Contains(out, "non-compliant") {
		t.Errorf("alternatives output unexpected:\n%s", out)
	}

	out, err = runCLI(t, "-campaign", campaign, "-customers", "300", "interference")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strict") || !strings.Contains(out, "pseudonymize") {
		t.Errorf("interference output unexpected:\n%s", out)
	}

	out, err = runCLI(t, "-campaign", campaign, "-customers", "300", "-strategy", "greedy", "plan")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy:  greedy") || !strings.Contains(out, "explored:") {
		t.Errorf("plan output unexpected:\n%s", out)
	}
	if _, err := runCLI(t, "-campaign", campaign, "-customers", "300", "-strategy", "psychic", "plan"); err == nil {
		t.Error("unknown strategy must fail")
	}
}

func TestCLITablesSmoke(t *testing.T) {
	campaign := writeCampaignFile(t)
	storeDir := filepath.Join(t.TempDir(), "tables")

	// tables without a store directory must fail loudly.
	if _, err := runCLI(t, "tables"); err == nil {
		t.Error("tables without -store-dir must fail")
	}

	// A run with -store-dir saves the prepared dataset as a durable table.
	if _, err := runCLI(t, "-campaign", campaign, "-customers", "300", "-store-dir", storeDir, "run"); err != nil {
		t.Fatalf("run: %v", err)
	}

	// The listing survives the process "restart" (a fresh run() invocation
	// reopens the store from disk through WAL recovery).
	out, err := runCLI(t, "-customers", "300", "-store-dir", storeDir, "tables")
	if err != nil {
		t.Fatalf("tables: %v", err)
	}
	if !strings.Contains(out, "results/cli-churn") {
		t.Fatalf("table listing missing saved table:\n%s", out)
	}

	// Scanning the saved table with a predicate reports pushdown stats.
	out, err = runCLI(t, "-customers", "300", "-store-dir", storeDir,
		"-table", "results/cli-churn", "-filter", "customer_id >= 0", "tables")
	if err != nil {
		t.Fatalf("tables scan: %v", err)
	}
	if !strings.Contains(out, "scanned:") || !strings.Contains(out, "segments:") {
		t.Fatalf("scan output missing stats:\n%s", out)
	}
	if strings.Contains(out, "scanned:  0 rows") {
		t.Fatalf("scan returned no rows:\n%s", out)
	}

	// An unknown table and a malformed filter both surface as errors.
	if _, err := runCLI(t, "-store-dir", storeDir, "-table", "ghost", "tables"); err == nil {
		t.Error("scan of unknown table must fail")
	}
	if _, err := runCLI(t, "-store-dir", storeDir,
		"-table", "results/cli-churn", "-filter", "nope", "tables"); err == nil {
		t.Error("malformed filter must fail")
	}
}

func TestParseVertical(t *testing.T) {
	for _, name := range []string{"telco", "retail", "energy", "web", "finance"} {
		if _, err := parseVertical(name); err != nil {
			t.Errorf("parseVertical(%s): %v", name, err)
		}
	}
	if _, err := parseVertical("space"); err == nil {
		t.Error("unknown vertical must fail")
	}
}
