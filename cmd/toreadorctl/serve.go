// serve.go implements the toreadorctl serve command: the operator-facing HTTP
// surface of the multi-tenant analytics service runtime. It exposes campaign
// submission under admission control, the service's metrics snapshot, and a
// graceful drain endpoint; SIGINT/SIGTERM also drain before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	toreador "repro"
	"repro/internal/metrics"
	"repro/internal/model"
)

type serveOptions struct {
	listen     string
	queueDepth int
	workers    int
	maxRetries int
}

// drainTimeout bounds how long a shutdown waits for in-flight campaigns
// before shedding the remaining queue.
const drainTimeout = 30 * time.Second

// submitResponse is the JSON body of a /submit reply.
type submitResponse struct {
	Status   string             `json:"status"`
	Attempts int                `json:"attempts,omitempty"`
	WallMS   float64            `json:"wall_ms,omitempty"`
	Measured map[string]float64 `json:"measured,omitempty"`
	Error    string             `json:"error,omitempty"`
}

func doServe(out io.Writer, platform *toreador.Platform, opts serveOptions) error {
	svc, err := platform.NewService(toreador.ServiceConfig{
		QueueDepth: opts.queueDepth,
		Workers:    opts.workers,
		MaxRetries: opts.maxRetries,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}

	shutdownCh := make(chan struct{})
	var shutdownOnce sync.Once
	requestShutdown := func() { shutdownOnce.Do(func() { close(shutdownCh) }) }

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, statsText(svc.Stats()))
		// With a durable store attached, the store.* counters (tables saved,
		// segments written/scanned/skipped, recovery events) join the report.
		if st := platform.Store(); st != nil {
			fmt.Fprint(w, statsText(st.Metrics().Snapshot()))
		}
	})
	mux.HandleFunc("/shutdown", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		fmt.Fprintln(w, "draining")
		requestShutdown()
	})
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		tenant := r.URL.Query().Get("tenant")
		if tenant == "" {
			tenant = "default"
		}
		c, err := model.DecodeCampaign(r.Body)
		if err != nil {
			writeSubmitError(w, http.StatusBadRequest, err)
			return
		}
		result, err := platform.Compile(c)
		if err != nil {
			writeSubmitError(w, http.StatusBadRequest, err)
			return
		}
		ticket, err := svc.Submit(tenant, c, result.Chosen)
		if err != nil {
			writeSubmitError(w, admissionStatusCode(err), err)
			return
		}
		if err := ticket.Wait(r.Context()); err != nil {
			// The client gave up; the campaign keeps running server-side.
			writeSubmitError(w, http.StatusGatewayTimeout, err)
			return
		}
		report, runErr := ticket.Result()
		resp := submitResponse{Status: ticket.Status().String(), Attempts: ticket.Attempts()}
		code := http.StatusOK
		switch {
		case runErr != nil:
			resp.Error = runErr.Error()
			code = http.StatusBadGateway
			if ticket.Status() == toreador.StatusShed {
				code = http.StatusServiceUnavailable
			}
		case report != nil:
			resp.WallMS = float64(report.WallTime.Microseconds()) / 1000
			resp.Measured = map[string]float64{}
			for k, v := range report.Measured {
				resp.Measured[string(k)] = v
			}
		}
		writeJSON(w, code, resp)
	})

	srv := &http.Server{Handler: mux}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	fmt.Fprintf(out, "toreadorctl: serving on http://%s (queue=%d workers=%d retries=%d)\n",
		ln.Addr(), opts.queueDepth, opts.workers, opts.maxRetries)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCh:
		fmt.Fprintln(out, "toreadorctl: signal received, draining")
	case <-shutdownCh:
		fmt.Fprintln(out, "toreadorctl: shutdown requested, draining")
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := svc.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	fmt.Fprintln(out, "toreadorctl: final service stats")
	fmt.Fprint(out, statsText(svc.Stats()))
	return drainErr
}

// statsText renders the service metrics snapshot for the operator: counters
// and gauges one per line, histograms with their tail percentiles.
func statsText(snap metrics.Snapshot) string {
	var b strings.Builder
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, snap.Counters[n])
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s %d\n", n, snap.Gauges[n])
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		fmt.Fprintf(&b, "%s count=%d p50=%.2f p95=%.2f p99=%.2f min=%.2f max=%.2f\n",
			n, h.Count, h.P50, h.P95, h.P99, h.Min, h.Max)
	}
	return b.String()
}

// admissionStatusCode maps the service's typed admission errors to HTTP codes:
// back-pressure (overload, rate limit) is 429, degradation (shed, draining)
// is 503.
func admissionStatusCode(err error) int {
	switch {
	case errors.Is(err, toreador.ErrOverloaded), errors.Is(err, toreador.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, toreador.ErrShed), errors.Is(err, toreador.ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeSubmitError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, submitResponse{Status: "rejected", Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
