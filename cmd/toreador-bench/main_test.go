package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// smallArgs keeps generated data tiny so the CLI tests stay fast.
func smallArgs(extra ...string) []string {
	base := []string{"-customers", "250", "-meters", "2", "-days", "3", "-users", "40", "-attempts", "2"}
	return append(base, extra...)
}

func runBenchCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestBenchCLISingleExperiment(t *testing.T) {
	out, err := runBenchCLI(t, smallArgs("-only", "table1")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("output missing Table 1:\n%s", out)
	}
	if strings.Contains(out, "Table 3") {
		t.Error("-only table1 must not run other experiments")
	}
}

func TestBenchCLIUnknownExperiment(t *testing.T) {
	if _, err := runBenchCLI(t, smallArgs("-only", "table99")...); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestBenchCLICheapExperiments(t *testing.T) {
	// Run the cheap, non-execution experiments in one go to keep CI time low;
	// the full suite is exercised by bench_test.go and internal/experiments.
	for _, only := range []string{"figure1", "figure3", "table3"} {
		out, err := runBenchCLI(t, smallArgs("-only", only)...)
		if err != nil {
			t.Fatalf("%s: %v", only, err)
		}
		if len(out) == 0 {
			t.Errorf("%s produced no output", only)
		}
	}
}

func TestBenchCLIJSONOutput(t *testing.T) {
	out, err := runBenchCLI(t, smallArgs("-only", "table1", "-json")...)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if _, ok := doc["table1"]; !ok {
		t.Errorf("JSON document missing table1 key: %v", out)
	}
	if len(doc) != 1 {
		t.Errorf("-only table1 -json must emit exactly one experiment, got %d", len(doc))
	}
}

func TestBenchCLIFlagParsing(t *testing.T) {
	if _, err := runBenchCLI(t, "-not-a-flag"); err == nil {
		t.Error("bad flags must fail")
	}
}
