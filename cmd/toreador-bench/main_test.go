package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallArgs keeps generated data tiny so the CLI tests stay fast.
func smallArgs(extra ...string) []string {
	base := []string{"-customers", "250", "-meters", "2", "-days", "3", "-users", "40", "-attempts", "2"}
	return append(base, extra...)
}

func runBenchCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestBenchCLISingleExperiment(t *testing.T) {
	out, err := runBenchCLI(t, smallArgs("-only", "table1")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") {
		t.Errorf("output missing Table 1:\n%s", out)
	}
	if strings.Contains(out, "Table 3") {
		t.Error("-only table1 must not run other experiments")
	}
}

func TestBenchCLIUnknownExperiment(t *testing.T) {
	if _, err := runBenchCLI(t, smallArgs("-only", "table99")...); err == nil {
		t.Error("unknown experiment must fail")
	}
}

func TestBenchCLICheapExperiments(t *testing.T) {
	// Run the cheap, non-execution experiments in one go to keep CI time low;
	// the full suite is exercised by bench_test.go and internal/experiments.
	for _, only := range []string{"figure1", "figure3", "table3"} {
		out, err := runBenchCLI(t, smallArgs("-only", only)...)
		if err != nil {
			t.Fatalf("%s: %v", only, err)
		}
		if len(out) == 0 {
			t.Errorf("%s produced no output", only)
		}
	}
}

func TestBenchCLIJSONOutput(t *testing.T) {
	out, err := runBenchCLI(t, smallArgs("-only", "table1", "-json", "-commit", "cafe1234")...)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if _, ok := doc["table1"]; !ok {
		t.Errorf("JSON document missing table1 key: %v", out)
	}
	if len(doc) != 2 {
		t.Errorf("-only table1 -json must emit one experiment plus _meta, got %d keys", len(doc))
	}
	var meta artifactMeta
	if err := json.Unmarshal(doc["_meta"], &meta); err != nil || meta.Commit != "cafe1234" || meta.GeneratedUnix == 0 {
		t.Errorf("_meta = %+v (err %v), want commit and timestamp stamped", meta, err)
	}
}

func TestBenchCLICompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name, commit string, unix int64, throughput float64) {
		doc := map[string]any{
			"_meta":   artifactMeta{Commit: commit, GeneratedUnix: unix},
			"figure2": map[string]any{"Points": []any{map[string]any{"ThroughputRPS": throughput, "Workers": 1}}},
		}
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_aaa.json", "aaa", 100, 1000)
	write("BENCH_bbb.json", "bbb", 200, 2000)

	out, err := runBenchCLI(t, "-compare", dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bench delta: aaa -> bbb", "ThroughputRPS", "+100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Workers") {
		t.Errorf("compare must filter to headline metrics:\n%s", out)
	}
	// Fewer than two artifacts means there is no baseline yet — compare must
	// report the gap and exit clean (a fresh clone's CI run is not a failure).
	out, err = runBenchCLI(t, "-compare", t.TempDir())
	if err != nil {
		t.Errorf("compare over an empty directory must skip cleanly, got %v", err)
	}
	if !strings.Contains(out, "skipping") {
		t.Errorf("baseline-less compare must say it is skipping:\n%s", out)
	}
}

// TestBenchCLICompareThreshold covers the regression gate: wall-time metrics
// past the threshold must fail the compare with a non-zero exit, improvements
// and within-threshold noise must pass, and throughput-style metrics must
// never gate (they regress downward).
func TestBenchCLICompareThreshold(t *testing.T) {
	dir := t.TempDir()
	write := func(name, commit string, unix int64, wall, throughput float64) {
		doc := map[string]any{
			"_meta": artifactMeta{Commit: commit, GeneratedUnix: unix},
			"figure2": map[string]any{"Points": []any{
				map[string]any{"WallTime": wall, "ThroughputRPS": throughput},
			}},
		}
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Wall time up 50% (well above the 10ms noise floor), throughput halved:
	// only the duration metric gates.
	write("BENCH_old.json", "old", 100, 20_000_000, 2000)
	write("BENCH_new.json", "new", 200, 30_000_000, 1000)

	out, err := runBenchCLI(t, "-compare", dir, "-threshold", "15")
	if err == nil {
		t.Fatalf("50%% wall-time regression must fail a 15%% gate:\n%s", out)
	}
	if !strings.Contains(out, "regression gate (+15%): FAILED") || !strings.Contains(out, "WallTime") {
		t.Errorf("gate output must name the regressed metric:\n%s", out)
	}
	if strings.Contains(err.Error(), "ThroughputRPS") {
		t.Errorf("throughput metrics must not gate: %v", err)
	}

	out, err = runBenchCLI(t, "-compare", dir, "-threshold", "60")
	if err != nil {
		t.Fatalf("a 60%% gate must tolerate a 50%% regression: %v\n%s", err, out)
	}
	if !strings.Contains(out, "regression gate (+60%): ok") {
		t.Errorf("passing gate must report ok:\n%s", out)
	}

	// Sub-10ms baselines are noise-dominated and must not gate even on huge
	// relative swings.
	noiseDir := t.TempDir()
	writeTo := func(dir, name, commit string, unix int64, wall float64) {
		doc := map[string]any{
			"_meta":   artifactMeta{Commit: commit, GeneratedUnix: unix},
			"figure2": map[string]any{"Points": []any{map[string]any{"WallTime": wall}}},
		}
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeTo(noiseDir, "BENCH_old.json", "old", 100, 100_000)
	writeTo(noiseDir, "BENCH_new.json", "new", 200, 300_000)
	if out, err = runBenchCLI(t, "-compare", noiseDir, "-threshold", "15"); err != nil {
		t.Fatalf("sub-floor timings must not gate: %v\n%s", err, out)
	}

	// Threshold 0 (the default) keeps compare report-only.
	if out, err = runBenchCLI(t, "-compare", dir); err != nil {
		t.Fatalf("default compare must stay report-only: %v\n%s", err, out)
	}
	if strings.Contains(out, "regression gate") {
		t.Errorf("report-only compare must not print a gate line:\n%s", out)
	}
}

func TestBenchCLIFlagParsing(t *testing.T) {
	if _, err := runBenchCLI(t, "-not-a-flag"); err == nil {
		t.Error("bad flags must fail")
	}
}
