// Command toreador-bench regenerates every table and figure of the
// reproduction's experiment suite (see DESIGN.md §3 and EXPERIMENTS.md) and
// prints them to stdout. The root bench_test.go exercises the same
// experiments as testing.B benchmarks; this command is the human-readable
// front end.
//
// Usage:
//
//	toreador-bench                   # all experiments, default sizing
//	toreador-bench -only table2      # a single experiment
//	toreador-bench -customers 5000   # larger synthetic datasets
//	toreador-bench -json             # machine-readable output (CI artifacts)
//	toreador-bench -json -commit abc # stamp the artifact with a commit id
//	toreador-bench -compare DIR      # delta table of the two newest artifacts
//	toreador-bench -compare DIR -threshold 15
//	                                 # same, failing on >15% wall-time regressions
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toreador-bench:", err)
		os.Exit(1)
	}
}

// renderable is the common surface of the experiment result types.
type renderable interface{ String() string }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("toreador-bench", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "seed for data generation and execution")
		customers = fs.Int("customers", 1500, "scenario sizing: customers/baskets/transactions")
		meters    = fs.Int("meters", 6, "scenario sizing: smart meters")
		days      = fs.Int("days", 7, "scenario sizing: days of readings")
		users     = fs.Int("users", 150, "scenario sizing: clickstream users")
		attempts  = fs.Int("attempts", 5, "attempts per simulated trainee (figure 4)")
		only      = fs.String("only", "", "run a single experiment: table1|table2|table3|table4|figure1|figure2|figure3|figure4|figure5|figure6|figure7")
		asJSON    = fs.Bool("json", false, "emit results as a single JSON object keyed by experiment name")
		commit    = fs.String("commit", "", "commit id recorded in the JSON artifact's _meta block")
		compare   = fs.String("compare", "", "directory of BENCH_*.json artifacts: diff the two newest and print a per-benchmark delta table")
		threshold = fs.Float64("threshold", 0, "with -compare: exit non-zero when any wall-time metric regresses by more than this percent vs the previous artifact (0 disables the gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare != "" {
		return compareArtifacts(out, *compare, *threshold)
	}
	env, err := experiments.NewEnv(*seed, workload.Sizing{
		Customers: *customers, Meters: *meters, Days: *days, Users: *users,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}

	// Experiments run in publication order; results are rendered as text or
	// collected into one JSON document for the CI bench artifact.
	runs := []struct {
		name string
		fn   func() (renderable, error)
	}{
		{"table1", func() (renderable, error) { return experiments.RunTable1(env) }},
		{"table2", func() (renderable, error) { return experiments.RunTable2(ctx, env) }},
		{"figure1", func() (renderable, error) { return experiments.RunFigure1(env) }},
		{"figure2", func() (renderable, error) { return experiments.RunFigure2(ctx, env, nil, nil) }},
		{"table3", func() (renderable, error) { return experiments.RunTable3(env) }},
		{"figure3", func() (renderable, error) { return experiments.RunFigure3(env, nil) }},
		{"table4", func() (renderable, error) { return experiments.RunTable4(ctx, env) }},
		{"figure4", func() (renderable, error) { return experiments.RunFigure4(ctx, env, *attempts) }},
		{"figure5", func() (renderable, error) { return experiments.RunFigure5(ctx, env, nil, 0) }},
		{"figure6", func() (renderable, error) { return experiments.RunFigure6(ctx, env, nil) }},
		{"figure7", func() (renderable, error) { return experiments.RunFigure7(ctx, env, nil) }},
	}
	results := map[string]renderable{}
	ran := 0
	for _, r := range runs {
		if !want(r.name) {
			continue
		}
		res, err := r.fn()
		if err != nil {
			return err
		}
		if *asJSON {
			results[r.name] = res
		} else {
			fmt.Fprintln(out, res.String())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	if *asJSON {
		doc := map[string]any{
			"_meta": artifactMeta{Commit: *commit, GeneratedUnix: time.Now().Unix()},
		}
		for name, res := range results {
			doc[name] = res
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

// artifactMeta orders bench artifacts in a directory without relying on file
// modification times, which git checkouts do not preserve.
type artifactMeta struct {
	Commit        string `json:"commit,omitempty"`
	GeneratedUnix int64  `json:"generated_unix"`
}

// compareArtifacts loads every BENCH_*.json in dir, picks the two newest by
// their _meta timestamps, and prints a per-benchmark delta table of the
// headline numeric metrics — the perf trajectory between the two commits.
// With threshold > 0 it is also the regression gate: any duration metric (the
// experiment analogue of ns/op) that grew by more than threshold percent
// fails the run with a non-zero exit, which is what CI wires into the job
// summary.
func compareArtifacts(out io.Writer, dir string, threshold float64) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) < 2 {
		// A fresh clone (or a repo whose history predates artifact commits)
		// has nothing to diff against. That is not a failure — the gate only
		// means anything once a baseline exists — so report and exit clean.
		fmt.Fprintf(out, "bench-compare: found %d BENCH_*.json artifact(s) in %s; need two to compare — skipping\n", len(paths), dir)
		return nil
	}
	type artifact struct {
		path string
		meta artifactMeta
		doc  map[string]any
	}
	arts := make([]artifact, 0, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		a := artifact{path: p, doc: doc}
		if m, ok := doc["_meta"].(map[string]any); ok {
			if c, ok := m["commit"].(string); ok {
				a.meta.Commit = c
			}
			if ts, ok := m["generated_unix"].(float64); ok {
				a.meta.GeneratedUnix = int64(ts)
			}
		}
		arts = append(arts, a)
	}
	sort.Slice(arts, func(i, j int) bool {
		if arts[i].meta.GeneratedUnix != arts[j].meta.GeneratedUnix {
			return arts[i].meta.GeneratedUnix < arts[j].meta.GeneratedUnix
		}
		return arts[i].path < arts[j].path
	})
	oldA, newA := arts[len(arts)-2], arts[len(arts)-1]

	oldVals := flattenNumeric("", oldA.doc)
	newVals := flattenNumeric("", newA.doc)
	keys := make([]string, 0, len(newVals))
	for k := range newVals {
		if _, ok := oldVals[k]; ok && interestingMetric(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	name := func(a artifact) string {
		if a.meta.Commit != "" {
			return a.meta.Commit
		}
		return filepath.Base(a.path)
	}
	fmt.Fprintf(out, "bench delta: %s -> %s\n", name(oldA), name(newA))
	fmt.Fprintf(out, "%-58s %14s %14s %9s\n", "benchmark", "old", "new", "delta")
	var regressions []string
	for _, k := range keys {
		o, n := oldVals[k], newVals[k]
		delta := "n/a"
		if o != 0 {
			pct := (n - o) / o * 100
			delta = fmt.Sprintf("%+.1f%%", pct)
			if threshold > 0 && durationMetric(k) && o >= gateFloorNanos && pct > threshold {
				regressions = append(regressions, fmt.Sprintf("%s %s", k, delta))
			}
		}
		fmt.Fprintf(out, "%-58s %14.4g %14.4g %9s\n", k, o, n, delta)
	}
	if len(keys) == 0 {
		fmt.Fprintln(out, "(no comparable metrics found)")
	}
	if threshold > 0 {
		if len(regressions) > 0 {
			fmt.Fprintf(out, "\nregression gate (+%.0f%%): FAILED\n", threshold)
			for _, r := range regressions {
				fmt.Fprintf(out, "  %s\n", r)
			}
			return fmt.Errorf("%d wall-time metric(s) regressed more than %.0f%% vs %s",
				len(regressions), threshold, name(oldA))
		}
		fmt.Fprintf(out, "\nregression gate (+%.0f%%): ok\n", threshold)
	}
	return nil
}

// gateFloorNanos keeps the regression gate off noise-dominated timings:
// duration metrics whose baseline is under 10ms swing far more than any
// plausible threshold between runs (and between CI machines), so only the
// substantial pipeline measurements gate.
const gateFloorNanos = 10_000_000

// durationMetric reports whether the flattened path is a nanosecond duration
// — the experiment-suite analogue of ns/op, where an increase is a
// regression. Throughput-style metrics (rows/s, speedups, scores) regress
// downward and are reported in the table but never gate.
func durationMetric(path string) bool {
	for _, suffix := range []string{"WallTime", "TotalCompile", "Execution"} {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// flattenNumeric walks decoded JSON and collects numeric leaves keyed by
// their dotted path; array elements keep their index, which is stable because
// the experiment sweeps are fixed.
func flattenNumeric(prefix string, v any) map[string]float64 {
	out := map[string]float64{}
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, val := range x {
				p := k
				if path != "" {
					p = path + "." + k
				}
				walk(p, val)
			}
		case []any:
			for i, val := range x {
				walk(fmt.Sprintf("%s[%d]", path, i), val)
			}
		case float64:
			out[path] = x
		}
	}
	walk(prefix, v)
	return out
}

// interestingMetric filters the flattened paths down to the headline
// per-benchmark numbers, keeping the delta table readable.
func interestingMetric(path string) bool {
	if strings.HasPrefix(path, "_meta") {
		return false
	}
	for _, suffix := range []string{
		"ThroughputRPS", "SpeedupVs1", "ShuffledRows", "BroadcastJoins", "Batches",
		"WallTime", "TotalCompile", "Execution", "CrossoverRows", "EffectiveScore",
		"Accuracy", "CompliantAlternatives", "SortRuns",
		// Allocation, aggregation-state and spill-volume metrics ride along
		// in the delta table for trajectory visibility; only the wall-time
		// metrics above (see durationMetric) ever gate. The physical/logical
		// spill-byte pair makes compression-ratio changes visible across
		// commits without gating on them.
		"Allocs", "AllocBytes", "AggGroups", "AggSpilledPartitions", "AggPeakResidentBytes",
		"SpilledBatches", "SpilledBytes", "SpillLogicalBytes",
		// Iterate metrics (Figure 6): convergence depth and the delta-aware
		// re-execution savings ride along without gating wall time.
		"Iterations", "DeltaRows", "ShortCircuitParts",
		// Durable-table metrics (Figure 7): materialisation cost and zone-map
		// pruning ride along ungated — the walls are sub-gate-floor anyway.
		"RecomputeWall", "SaveWall", "ScanWall", "SelectiveWall", "SegmentsSkipped",
	} {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}
