// Command toreador-bench regenerates every table and figure of the
// reproduction's experiment suite (see DESIGN.md §3 and EXPERIMENTS.md) and
// prints them to stdout. The root bench_test.go exercises the same
// experiments as testing.B benchmarks; this command is the human-readable
// front end.
//
// Usage:
//
//	toreador-bench                 # all experiments, default sizing
//	toreador-bench -only table2    # a single experiment
//	toreador-bench -customers 5000 # larger synthetic datasets
//	toreador-bench -json           # machine-readable output (CI artifacts)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toreador-bench:", err)
		os.Exit(1)
	}
}

// renderable is the common surface of the experiment result types.
type renderable interface{ String() string }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("toreador-bench", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "seed for data generation and execution")
		customers = fs.Int("customers", 1500, "scenario sizing: customers/baskets/transactions")
		meters    = fs.Int("meters", 6, "scenario sizing: smart meters")
		days      = fs.Int("days", 7, "scenario sizing: days of readings")
		users     = fs.Int("users", 150, "scenario sizing: clickstream users")
		attempts  = fs.Int("attempts", 5, "attempts per simulated trainee (figure 4)")
		only      = fs.String("only", "", "run a single experiment: table1|table2|table3|table4|figure1|figure2|figure3|figure4")
		asJSON    = fs.Bool("json", false, "emit results as a single JSON object keyed by experiment name")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := experiments.NewEnv(*seed, workload.Sizing{
		Customers: *customers, Meters: *meters, Days: *days, Users: *users,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}

	// Experiments run in publication order; results are rendered as text or
	// collected into one JSON document for the CI bench artifact.
	runs := []struct {
		name string
		fn   func() (renderable, error)
	}{
		{"table1", func() (renderable, error) { return experiments.RunTable1(env) }},
		{"table2", func() (renderable, error) { return experiments.RunTable2(ctx, env) }},
		{"figure1", func() (renderable, error) { return experiments.RunFigure1(env) }},
		{"figure2", func() (renderable, error) { return experiments.RunFigure2(ctx, env, nil, nil) }},
		{"table3", func() (renderable, error) { return experiments.RunTable3(env) }},
		{"figure3", func() (renderable, error) { return experiments.RunFigure3(env, nil) }},
		{"table4", func() (renderable, error) { return experiments.RunTable4(ctx, env) }},
		{"figure4", func() (renderable, error) { return experiments.RunFigure4(ctx, env, *attempts) }},
	}
	results := map[string]renderable{}
	ran := 0
	for _, r := range runs {
		if !want(r.name) {
			continue
		}
		res, err := r.fn()
		if err != nil {
			return err
		}
		if *asJSON {
			results[r.name] = res
		} else {
			fmt.Fprintln(out, res.String())
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}
