// Command toreador-bench regenerates every table and figure of the
// reproduction's experiment suite (see DESIGN.md §3 and EXPERIMENTS.md) and
// prints them to stdout. The root bench_test.go exercises the same
// experiments as testing.B benchmarks; this command is the human-readable
// front end.
//
// Usage:
//
//	toreador-bench                 # all experiments, default sizing
//	toreador-bench -only table2    # a single experiment
//	toreador-bench -customers 5000 # larger synthetic datasets
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "toreador-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("toreador-bench", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "seed for data generation and execution")
		customers = fs.Int("customers", 1500, "scenario sizing: customers/baskets/transactions")
		meters    = fs.Int("meters", 6, "scenario sizing: smart meters")
		days      = fs.Int("days", 7, "scenario sizing: days of readings")
		users     = fs.Int("users", 150, "scenario sizing: clickstream users")
		attempts  = fs.Int("attempts", 5, "attempts per simulated trainee (figure 4)")
		only      = fs.String("only", "", "run a single experiment: table1|table2|table3|table4|figure1|figure2|figure3|figure4")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := experiments.NewEnv(*seed, workload.Sizing{
		Customers: *customers, Meters: *meters, Days: *days, Users: *users,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	ran := 0

	if want("table1") {
		t, err := experiments.RunTable1(env)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.String())
		ran++
	}
	if want("table2") {
		t, err := experiments.RunTable2(ctx, env)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.String())
		ran++
	}
	if want("figure1") {
		f, err := experiments.RunFigure1(env)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f.String())
		ran++
	}
	if want("figure2") {
		f, err := experiments.RunFigure2(ctx, env, nil, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f.String())
		ran++
	}
	if want("table3") {
		t, err := experiments.RunTable3(env)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.String())
		ran++
	}
	if want("figure3") {
		f, err := experiments.RunFigure3(env, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f.String())
		ran++
	}
	if want("table4") {
		t, err := experiments.RunTable4(ctx, env)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.String())
		ran++
	}
	if want("figure4") {
		f, err := experiments.RunFigure4(ctx, env, *attempts)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, f.String())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}
