package model

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// validCampaign returns a minimal well-formed classification campaign.
func validCampaign() *Campaign {
	return &Campaign{
		Name:     "churn-prediction",
		Vertical: "telco",
		Goal: Goal{
			Task:           TaskClassification,
			Description:    "predict subscriber churn",
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "support_calls", "dropped_calls"},
		},
		Sources: []DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []Objective{
			{Indicator: IndicatorAccuracy, Comparison: AtLeast, Target: 0.7, Hard: true},
			{Indicator: IndicatorCost, Comparison: AtMost, Target: 5.0, Weight: 2},
		},
		Regime: RegimePseudonymize,
	}
}

func TestAreas(t *testing.T) {
	areas := Areas()
	if len(areas) != 5 {
		t.Fatalf("areas = %d, want 5", len(areas))
	}
	if AreaRepresentation.Order() != 0 || AreaDisplay.Order() != 4 {
		t.Error("area ordering wrong")
	}
	if Area("bogus").Order() != -1 || Area("bogus").Valid() {
		t.Error("unknown area must be invalid")
	}
	if !AreaAnalytics.Valid() {
		t.Error("analytics area must be valid")
	}
}

func TestTasksAndIndicators(t *testing.T) {
	if len(Tasks()) != 7 {
		t.Errorf("tasks = %d, want 7", len(Tasks()))
	}
	if !TaskClassification.Valid() || AnalyticsTask("x").Valid() {
		t.Error("task validity misbehaves")
	}
	if len(Indicators()) != 6 {
		t.Errorf("indicators = %d, want 6", len(Indicators()))
	}
	if !IndicatorAccuracy.Valid() || Indicator("x").Valid() {
		t.Error("indicator validity misbehaves")
	}
	if !IndicatorAccuracy.HigherIsBetter() || IndicatorCost.HigherIsBetter() || IndicatorLatency.HigherIsBetter() {
		t.Error("indicator direction misbehaves")
	}
}

func TestComparison(t *testing.T) {
	if !AtLeast.Satisfied(0.8, 0.7) || AtLeast.Satisfied(0.6, 0.7) {
		t.Error("AtLeast misbehaves")
	}
	if !AtMost.Satisfied(3, 5) || AtMost.Satisfied(6, 5) {
		t.Error("AtMost misbehaves")
	}
	if Comparison("==").Satisfied(1, 1) {
		t.Error("unknown comparison must never be satisfied")
	}
	if !AtLeast.Valid() || Comparison("!").Valid() {
		t.Error("comparison validity misbehaves")
	}
}

func TestObjectiveValidate(t *testing.T) {
	good := Objective{Indicator: IndicatorAccuracy, Comparison: AtLeast, Target: 0.8}
	if err := good.Validate(); err != nil {
		t.Errorf("valid objective rejected: %v", err)
	}
	if good.EffectiveWeight() != 1 {
		t.Error("default weight must be 1")
	}
	weighted := Objective{Indicator: IndicatorCost, Comparison: AtMost, Target: 1, Weight: 3}
	if weighted.EffectiveWeight() != 3 {
		t.Error("explicit weight must pass through")
	}
	bad := []Objective{
		{Indicator: "x", Comparison: AtLeast},
		{Indicator: IndicatorCost, Comparison: "=="},
		{Indicator: IndicatorCost, Comparison: AtMost, Weight: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad objective %d accepted", i)
		}
	}
}

func TestPrivacyRegimes(t *testing.T) {
	if RegimeNone.Level() != 0 || RegimeStrict.Level() != 3 {
		t.Error("regime levels wrong")
	}
	if PrivacyRegime("x").Valid() || !RegimePseudonymize.Valid() {
		t.Error("regime validity misbehaves")
	}
	if RegimeStrict.Level() <= RegimePseudonymize.Level() {
		t.Error("strict must be more restrictive than pseudonymize")
	}
}

func TestCampaignValidate(t *testing.T) {
	if err := validCampaign().Validate(); err != nil {
		t.Fatalf("valid campaign rejected: %v", err)
	}
	var nilCampaign *Campaign
	if err := nilCampaign.Validate(); !errors.Is(err, ErrInvalidCampaign) {
		t.Error("nil campaign must be invalid")
	}

	broken := func(mutate func(*Campaign)) error {
		c := validCampaign()
		mutate(c)
		return c.Validate()
	}
	cases := map[string]func(*Campaign){
		"empty name":           func(c *Campaign) { c.Name = " " },
		"bad task":             func(c *Campaign) { c.Goal.Task = "mining" },
		"empty target":         func(c *Campaign) { c.Goal.TargetTable = "" },
		"no sources":           func(c *Campaign) { c.Sources = nil },
		"empty source table":   func(c *Campaign) { c.Sources = []DataSource{{Table: ""}} },
		"target not declared":  func(c *Campaign) { c.Sources = []DataSource{{Table: "other"}} },
		"bad regime":           func(c *Campaign) { c.Regime = "gdpr" },
		"bad objective":        func(c *Campaign) { c.Objectives = []Objective{{Indicator: "x"}} },
		"missing label":        func(c *Campaign) { c.Goal.LabelColumn = "" },
		"missing features":     func(c *Campaign) { c.Goal.FeatureColumns = nil },
		"negative budget":      func(c *Campaign) { c.Preferences.MaxBudget = -1 },
		"negative parallelism": func(c *Campaign) { c.Preferences.Parallelism = -2 },
	}
	for name, mutate := range cases {
		if err := broken(mutate); !errors.Is(err, ErrInvalidCampaign) {
			t.Errorf("%s: err = %v, want ErrInvalidCampaign", name, err)
		}
	}
}

func TestCampaignValidatePerTaskRequirements(t *testing.T) {
	base := func(task AnalyticsTask) *Campaign {
		c := validCampaign()
		c.Goal = Goal{Task: task, TargetTable: "telco_customers"}
		return c
	}
	if err := base(TaskClustering).Validate(); err == nil {
		t.Error("clustering without features must fail")
	}
	if err := base(TaskAssociation).Validate(); err == nil {
		t.Error("association without item/transaction columns must fail")
	}
	if err := base(TaskAnomaly).Validate(); err == nil {
		t.Error("anomaly without value column must fail")
	}
	if err := base(TaskForecasting).Validate(); err == nil {
		t.Error("forecasting without value column must fail")
	}
	if err := base(TaskSessionization).Validate(); err == nil {
		t.Error("sessionization without time column must fail")
	}
	if err := base(TaskReporting).Validate(); err == nil {
		t.Error("reporting without value/group columns must fail")
	}

	ok := base(TaskReporting)
	ok.Goal.ValueColumn = "monthly_charge"
	ok.Goal.GroupColumns = []string{"region"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid reporting campaign rejected: %v", err)
	}
}

func TestCampaignHelpers(t *testing.T) {
	c := validCampaign()
	hard := c.HardObjectives()
	if len(hard) != 1 || hard[0].Indicator != IndicatorAccuracy {
		t.Errorf("hard objectives = %v", hard)
	}
	o, ok := c.ObjectiveFor(IndicatorCost)
	if !ok || o.Target != 5.0 {
		t.Errorf("ObjectiveFor(cost) = %v, %v", o, ok)
	}
	if _, ok := c.ObjectiveFor(IndicatorFreshness); ok {
		t.Error("missing objective must report !ok")
	}
}

func TestCampaignJSONRoundTrip(t *testing.T) {
	c := validCampaign()
	var buf bytes.Buffer
	if err := c.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCampaign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != c.Name || back.Goal.Task != c.Goal.Task || len(back.Objectives) != 2 {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if _, err := DecodeCampaign(strings.NewReader(`{"name": }`)); err == nil {
		t.Error("malformed JSON must fail")
	}
	if _, err := DecodeCampaign(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
	if _, err := DecodeCampaign(strings.NewReader(`{"name":"x"}`)); !errors.Is(err, ErrInvalidCampaign) {
		t.Error("decoded campaigns must be validated")
	}
}

func TestCampaignClone(t *testing.T) {
	c := validCampaign()
	clone := c.Clone()
	clone.Name = "other"
	clone.Sources[0].Table = "changed"
	clone.Objectives[0].Target = 0.99
	clone.Goal.FeatureColumns[0] = "changed"
	if c.Name != "churn-prediction" || c.Sources[0].Table != "telco_customers" ||
		c.Objectives[0].Target != 0.7 || c.Goal.FeatureColumns[0] != "tenure_months" {
		t.Error("Clone must not share mutable state")
	}
	var nilC *Campaign
	if nilC.Clone() != nil {
		t.Error("cloning nil must return nil")
	}
}
