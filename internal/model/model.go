// Package model defines the declarative layer of the TOREADOR methodology:
// business-level Big Data campaigns expressed as goals, indicators, objectives
// and preferences, independent of any technology choice.
//
// The paper (§2) describes Big Data Analytics-as-a-Service as "a function that
// takes as input users' Big Data goals and preferences, and returns as output
// a ready-to-be-executed Big Data pipeline", and argues for "a core set of
// standard indicators" covering both analytics tasks and regulatory
// constraints. This package is that input vocabulary.
package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Area is one of the five TOREADOR design areas a Big Data campaign is
// decomposed into. Services in the catalog belong to exactly one area and a
// procedural model orders areas from representation to display.
type Area string

// The five areas, in pipeline order.
const (
	AreaRepresentation Area = "representation" // data source registration and modelling
	AreaPreparation    Area = "preparation"    // cleaning, anonymisation, feature engineering
	AreaAnalytics      Area = "analytics"      // the analytics task itself
	AreaProcessing     Area = "processing"     // the execution/processing style (batch, streaming)
	AreaDisplay        Area = "display"        // reporting and result delivery
)

// Areas returns every area in pipeline order.
func Areas() []Area {
	return []Area{AreaRepresentation, AreaPreparation, AreaAnalytics, AreaProcessing, AreaDisplay}
}

// Order returns the position of the area in the pipeline (0-based), or -1 for
// unknown areas.
func (a Area) Order() int {
	for i, area := range Areas() {
		if a == area {
			return i
		}
	}
	return -1
}

// Valid reports whether a is one of the five TOREADOR areas.
func (a Area) Valid() bool { return a.Order() >= 0 }

// AnalyticsTask enumerates the analytics goals supported by the platform.
type AnalyticsTask string

// Supported analytics tasks.
const (
	TaskClassification AnalyticsTask = "classification"
	TaskClustering     AnalyticsTask = "clustering"
	TaskAssociation    AnalyticsTask = "association_rules"
	TaskAnomaly        AnalyticsTask = "anomaly_detection"
	TaskForecasting    AnalyticsTask = "forecasting"
	TaskSessionization AnalyticsTask = "sessionization"
	TaskReporting      AnalyticsTask = "reporting"
)

// Tasks returns every supported analytics task.
func Tasks() []AnalyticsTask {
	return []AnalyticsTask{
		TaskClassification, TaskClustering, TaskAssociation, TaskAnomaly,
		TaskForecasting, TaskSessionization, TaskReporting,
	}
}

// Valid reports whether t is a supported task.
func (t AnalyticsTask) Valid() bool {
	for _, task := range Tasks() {
		if t == task {
			return true
		}
	}
	return false
}

// Indicator names a measurable property of a campaign, following the paper's
// call for "a core set of standard indicators".
type Indicator string

// The standard indicator set.
const (
	// IndicatorAccuracy is the quality of the analytics output in [0,1]
	// (classification accuracy, detection F1, or 1/(1+RMSE) for forecasts).
	IndicatorAccuracy Indicator = "accuracy"
	// IndicatorLatency is the end-to-end pipeline execution time in
	// milliseconds.
	IndicatorLatency Indicator = "latency_ms"
	// IndicatorCost is the monetary cost of one campaign execution.
	IndicatorCost Indicator = "cost"
	// IndicatorThroughput is processed rows per second.
	IndicatorThroughput Indicator = "throughput_rows_s"
	// IndicatorPrivacy is the achieved privacy protection level in [0,1]
	// (0 = raw personal data exposed, 1 = fully anonymised or no personal data).
	IndicatorPrivacy Indicator = "privacy_level"
	// IndicatorFreshness is the data freshness in seconds between ingestion
	// and result availability (streaming campaigns target small values).
	IndicatorFreshness Indicator = "freshness_s"
)

// Indicators returns the full standard indicator set.
func Indicators() []Indicator {
	return []Indicator{
		IndicatorAccuracy, IndicatorLatency, IndicatorCost,
		IndicatorThroughput, IndicatorPrivacy, IndicatorFreshness,
	}
}

// Valid reports whether i is a standard indicator.
func (i Indicator) Valid() bool {
	for _, ind := range Indicators() {
		if i == ind {
			return true
		}
	}
	return false
}

// HigherIsBetter reports the improvement direction of the indicator.
func (i Indicator) HigherIsBetter() bool {
	switch i {
	case IndicatorAccuracy, IndicatorThroughput, IndicatorPrivacy:
		return true
	default:
		return false
	}
}

// Comparison is the relational operator of an objective.
type Comparison string

// Supported comparisons.
const (
	AtLeast Comparison = ">="
	AtMost  Comparison = "<="
)

// Satisfied reports whether measured satisfies the comparison against target.
func (c Comparison) Satisfied(measured, target float64) bool {
	switch c {
	case AtLeast:
		return measured >= target
	case AtMost:
		return measured <= target
	default:
		return false
	}
}

// Valid reports whether c is a supported comparison.
func (c Comparison) Valid() bool { return c == AtLeast || c == AtMost }

// Objective is a target on an indicator, as defined in the paper: "Big Data
// objectives representing the target to be achieved for fulfilling the goal".
type Objective struct {
	// Indicator being constrained.
	Indicator Indicator `json:"indicator"`
	// Comparison direction.
	Comparison Comparison `json:"comparison"`
	// Target value.
	Target float64 `json:"target"`
	// Weight of the objective in the overall campaign score (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Hard objectives must be met for an alternative to be acceptable;
	// soft objectives only affect the score.
	Hard bool `json:"hard,omitempty"`
}

// Validate reports objective configuration problems.
func (o Objective) Validate() error {
	if !o.Indicator.Valid() {
		return fmt.Errorf("model: unknown indicator %q", o.Indicator)
	}
	if !o.Comparison.Valid() {
		return fmt.Errorf("model: unknown comparison %q", o.Comparison)
	}
	if o.Weight < 0 {
		return fmt.Errorf("model: negative weight %v for %s", o.Weight, o.Indicator)
	}
	return nil
}

// EffectiveWeight returns the weight with the default of 1 applied.
func (o Objective) EffectiveWeight() float64 {
	if o.Weight <= 0 {
		return 1
	}
	return o.Weight
}

// PrivacyRegime classifies the regulatory constraints on the campaign's data,
// the "regulatory barrier" of the paper's introduction.
type PrivacyRegime string

// Supported regimes, from least to most restrictive.
const (
	// RegimeNone: data is public or fully synthetic; no restriction.
	RegimeNone PrivacyRegime = "none"
	// RegimeInternal: data may not leave the platform but needs no
	// transformation.
	RegimeInternal PrivacyRegime = "internal"
	// RegimePseudonymize: personal data must be pseudonymised before any
	// analytics service processes it.
	RegimePseudonymize PrivacyRegime = "pseudonymize"
	// RegimeStrict: personal data must be anonymised and only aggregate
	// results may reach the display area.
	RegimeStrict PrivacyRegime = "strict"
)

// Regimes returns all regimes ordered from least to most restrictive.
func Regimes() []PrivacyRegime {
	return []PrivacyRegime{RegimeNone, RegimeInternal, RegimePseudonymize, RegimeStrict}
}

// Level returns the restrictiveness rank of the regime (0 = none), or -1 for
// unknown regimes.
func (r PrivacyRegime) Level() int {
	for i, regime := range Regimes() {
		if r == regime {
			return i
		}
	}
	return -1
}

// Valid reports whether r is a known regime.
func (r PrivacyRegime) Valid() bool { return r.Level() >= 0 }

// DataSource references a dataset registered with the platform.
type DataSource struct {
	// Table is the registered table name.
	Table string `json:"table"`
	// ContainsPersonalData declares whether the source holds PII; the
	// compliance engine cross-checks this against the schema sensitivity.
	ContainsPersonalData bool `json:"contains_personal_data,omitempty"`
	// Region is the jurisdiction where the data resides (e.g. "eu", "us").
	Region string `json:"region,omitempty"`
}

// Goal describes what the campaign must achieve, in business terms.
type Goal struct {
	// Task is the analytics task type.
	Task AnalyticsTask `json:"task"`
	// Description is free business text ("reduce churn by spotting at-risk
	// subscribers").
	Description string `json:"description,omitempty"`
	// TargetTable is the primary table the task operates on.
	TargetTable string `json:"target_table"`
	// LabelColumn is the ground-truth column for supervised tasks and for
	// scoring detection tasks; empty otherwise.
	LabelColumn string `json:"label_column,omitempty"`
	// FeatureColumns are the numeric input columns for learning tasks.
	FeatureColumns []string `json:"feature_columns,omitempty"`
	// ItemColumn and TransactionColumn configure association mining.
	ItemColumn        string `json:"item_column,omitempty"`
	TransactionColumn string `json:"transaction_column,omitempty"`
	// ValueColumn is the measure column for forecasting, anomaly detection
	// and reporting.
	ValueColumn string `json:"value_column,omitempty"`
	// TimeColumn orders events for forecasting and sessionization.
	TimeColumn string `json:"time_column,omitempty"`
	// GroupColumns are the grouping keys for reporting.
	GroupColumns []string `json:"group_columns,omitempty"`
}

// Preferences captures the user's non-functional choices that steer, without
// fully determining, the generated pipeline.
type Preferences struct {
	// Streaming prefers a streaming deployment when true.
	Streaming bool `json:"streaming,omitempty"`
	// MaxBudget caps the acceptable cost per execution (0 = unlimited).
	MaxBudget float64 `json:"max_budget,omitempty"`
	// PreferredRegion pins the deployment region ("" = any).
	PreferredRegion string `json:"preferred_region,omitempty"`
	// Parallelism is the requested degree of parallelism (0 = let the
	// platform decide).
	Parallelism int `json:"parallelism,omitempty"`
}

// Campaign is the complete declarative model of one Big Data campaign.
type Campaign struct {
	// Name uniquely identifies the campaign.
	Name string `json:"name"`
	// Vertical is the application domain (matches a Labs scenario).
	Vertical string `json:"vertical,omitempty"`
	// Goal is the analytics goal.
	Goal Goal `json:"goal"`
	// Sources are the declared input datasets.
	Sources []DataSource `json:"sources"`
	// Objectives are the indicator targets.
	Objectives []Objective `json:"objectives,omitempty"`
	// Regime is the applicable privacy regime.
	Regime PrivacyRegime `json:"regime"`
	// Preferences are non-functional preferences.
	Preferences Preferences `json:"preferences,omitempty"`
}

// Validation errors.
var (
	ErrInvalidCampaign = errors.New("model: invalid campaign")
)

// Validate checks the declarative model for internal consistency. It does not
// resolve table names — that requires the platform's data catalog and happens
// at compile time.
func (c *Campaign) Validate() error {
	if c == nil {
		return fmt.Errorf("%w: nil campaign", ErrInvalidCampaign)
	}
	var problems []string
	if strings.TrimSpace(c.Name) == "" {
		problems = append(problems, "name is empty")
	}
	if !c.Goal.Task.Valid() {
		problems = append(problems, fmt.Sprintf("unknown task %q", c.Goal.Task))
	}
	if strings.TrimSpace(c.Goal.TargetTable) == "" {
		problems = append(problems, "goal.target_table is empty")
	}
	if len(c.Sources) == 0 {
		problems = append(problems, "no data sources")
	}
	targetDeclared := false
	for i, s := range c.Sources {
		if strings.TrimSpace(s.Table) == "" {
			problems = append(problems, fmt.Sprintf("source %d has empty table", i))
		}
		if s.Table == c.Goal.TargetTable {
			targetDeclared = true
		}
	}
	if !targetDeclared && c.Goal.TargetTable != "" {
		problems = append(problems, fmt.Sprintf("target table %q is not among the declared sources", c.Goal.TargetTable))
	}
	if !c.Regime.Valid() {
		problems = append(problems, fmt.Sprintf("unknown privacy regime %q", c.Regime))
	}
	for i, o := range c.Objectives {
		if err := o.Validate(); err != nil {
			problems = append(problems, fmt.Sprintf("objective %d: %v", i, err))
		}
	}
	switch c.Goal.Task {
	case TaskClassification:
		if c.Goal.LabelColumn == "" {
			problems = append(problems, "classification requires goal.label_column")
		}
		if len(c.Goal.FeatureColumns) == 0 {
			problems = append(problems, "classification requires goal.feature_columns")
		}
	case TaskClustering:
		if len(c.Goal.FeatureColumns) == 0 {
			problems = append(problems, "clustering requires goal.feature_columns")
		}
	case TaskAssociation:
		if c.Goal.ItemColumn == "" || c.Goal.TransactionColumn == "" {
			problems = append(problems, "association mining requires goal.item_column and goal.transaction_column")
		}
	case TaskAnomaly, TaskForecasting:
		if c.Goal.ValueColumn == "" {
			problems = append(problems, fmt.Sprintf("%s requires goal.value_column", c.Goal.Task))
		}
	case TaskSessionization:
		if c.Goal.TimeColumn == "" {
			problems = append(problems, "sessionization requires goal.time_column")
		}
	case TaskReporting:
		if c.Goal.ValueColumn == "" || len(c.Goal.GroupColumns) == 0 {
			problems = append(problems, "reporting requires goal.value_column and goal.group_columns")
		}
	}
	if c.Preferences.MaxBudget < 0 {
		problems = append(problems, "negative max_budget")
	}
	if c.Preferences.Parallelism < 0 {
		problems = append(problems, "negative parallelism")
	}
	if len(problems) > 0 {
		return fmt.Errorf("%w: %s", ErrInvalidCampaign, strings.Join(problems, "; "))
	}
	return nil
}

// HardObjectives returns only the hard objectives.
func (c *Campaign) HardObjectives() []Objective {
	var out []Objective
	for _, o := range c.Objectives {
		if o.Hard {
			out = append(out, o)
		}
	}
	return out
}

// ObjectiveFor returns the first objective on the given indicator, if any.
func (c *Campaign) ObjectiveFor(ind Indicator) (Objective, bool) {
	for _, o := range c.Objectives {
		if o.Indicator == ind {
			return o, true
		}
	}
	return Objective{}, false
}

// EncodeJSON writes the campaign as indented JSON.
func (c *Campaign) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("model: encode campaign %q: %w", c.Name, err)
	}
	return nil
}

// DecodeCampaign parses a campaign from JSON and validates it.
func DecodeCampaign(r io.Reader) (*Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("model: decode campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Clone returns a deep copy of the campaign.
func (c *Campaign) Clone() *Campaign {
	if c == nil {
		return nil
	}
	out := *c
	out.Sources = append([]DataSource(nil), c.Sources...)
	out.Objectives = append([]Objective(nil), c.Objectives...)
	out.Goal.FeatureColumns = append([]string(nil), c.Goal.FeatureColumns...)
	out.Goal.GroupColumns = append([]string(nil), c.Goal.GroupColumns...)
	return &out
}
