package dataflow

// spill_test.go covers the spill-to-disk batch store as the dataflow engine
// uses it: wide operators forced under a tiny memory budget must spill their
// accumulated batches, restore them transparently, and produce bit-identical
// results to the unlimited in-memory runs — and the counters/Explain surface
// must report the spill state. It also holds the negative-zero key regression
// tests: -0.0 and 0.0 must land in one group/row/match set in every execution
// mode.

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func spillEngine(t *testing.T, opts ...EngineOption) *Engine {
	t.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func spillBenchSchema(t *testing.T) *storage.Schema {
	t.Helper()
	return storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat, Nullable: true},
		storage.Field{Name: "tag", Type: storage.TypeString},
	)
}

func spillBenchData(n, keys int) []storage.Row {
	rows := make([]storage.Row, n)
	for i := range rows {
		var v storage.Value = float64((i*7919)%1000) / 8
		if i%11 == 0 {
			v = nil
		}
		rows[i] = storage.Row{int64(i % keys), v, "t" + string(rune('a'+i%5))}
	}
	return rows
}

// assertSameResult compares two Collect results row by row.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("%s: schema %s != %s", label, got.Schema, want.Schema)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d = %#v, want %#v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestSpillShuffledJoin forces every shuffle bucket of a non-broadcast join
// to disk and requires the joined output to match the in-memory run exactly.
func TestSpillShuffledJoin(t *testing.T) {
	ctx := context.Background()
	schema := spillBenchSchema(t)
	facts := spillBenchData(4000, 64)
	dimSchema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "label", Type: storage.TypeString},
	)
	dim := make([]storage.Row, 64)
	for i := range dim {
		dim[i] = storage.Row{int64(i), "label-" + string(rune('a'+i%7))}
	}
	plan := func() *Dataset {
		return FromRows("facts", schema, facts, 4).
			Join(FromRows("dims", dimSchema, dim, 2), "k", "k", InnerJoin)
	}

	mem := spillEngine(t, WithBroadcastJoin(false))
	base, err := mem.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.SpilledBatches != 0 {
		t.Fatalf("unlimited engine spilled %d batches", base.Stats.SpilledBatches)
	}

	spill := spillEngine(t, WithBroadcastJoin(false), WithMemoryBudget(1))
	got, err := spill.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpilledBatches == 0 || got.Stats.SpilledBytes == 0 {
		t.Fatalf("budgeted join did not spill: batches=%d bytes=%d",
			got.Stats.SpilledBatches, got.Stats.SpilledBytes)
	}
	if got.Stats.ShuffledRows != base.Stats.ShuffledRows {
		t.Errorf("spilled ShuffledRows = %d, want %d", got.Stats.ShuffledRows, base.Stats.ShuffledRows)
	}
	assertSameResult(t, "shuffled join under budget", got, base)

	// The engine registry must expose the same counters.
	snap := spill.Metrics().Snapshot()
	if snap.CounterValue("spill.batches") != got.Stats.SpilledBatches {
		t.Errorf("spill.batches counter = %d, want %d",
			snap.CounterValue("spill.batches"), got.Stats.SpilledBatches)
	}
	if snap.CounterValue("spill.bytes") != got.Stats.SpilledBytes {
		t.Errorf("spill.bytes counter = %d, want %d",
			snap.CounterValue("spill.bytes"), got.Stats.SpilledBytes)
	}
}

// TestSpillGroupByNonCombined drives the non-combined columnar group-by
// (every row crosses the shuffle through the store) under a forced budget and
// compares it against both the row-at-a-time non-combined run and the
// unlimited batch run.
func TestSpillGroupByNonCombined(t *testing.T) {
	ctx := context.Background()
	schema := spillBenchSchema(t)
	data := spillBenchData(5000, 40)
	plan := func() *Dataset {
		return FromRows("g", schema, data, 4).
			GroupBy("k").
			Agg(Count(), Sum("v"), Min("v"), CountDistinct("tag"))
	}

	rowEngine := spillEngine(t, WithMapSideCombine(false), WithVectorizedExecution(false))
	base, err := rowEngine.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	batchEngine := spillEngine(t, WithMapSideCombine(false))
	batch, err := batchEngine.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "batch group-by vs row", batch, base)

	spill := spillEngine(t, WithMapSideCombine(false), WithMemoryBudget(1))
	got, err := spill.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpilledBatches == 0 {
		t.Fatal("budgeted group-by did not spill")
	}
	assertSameResult(t, "spilled group-by vs row", got, base)
}

// TestSpillDistinct forces the map-side distinct's survivor shuffle to disk.
func TestSpillDistinct(t *testing.T) {
	ctx := context.Background()
	schema := spillBenchSchema(t)
	data := spillBenchData(4000, 25)
	plan := func() *Dataset { return FromRows("d", schema, data, 4).Distinct("k", "tag") }

	base, err := spillEngine(t).Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	spill := spillEngine(t, WithMemoryBudget(1))
	got, err := spill.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpilledBatches == 0 {
		t.Fatal("budgeted distinct did not spill")
	}
	if got.Stats.DistinctPrecombinedRows != base.Stats.DistinctPrecombinedRows {
		t.Errorf("spilled DistinctPrecombinedRows = %d, want %d",
			got.Stats.DistinctPrecombinedRows, base.Stats.DistinctPrecombinedRows)
	}
	assertSameResult(t, "distinct under budget", got, base)
}

// TestSpillSortStaging checks that a budgeted sort stages its columnar input
// through the spill store and still produces the identical ordering.
func TestSpillSortStaging(t *testing.T) {
	ctx := context.Background()
	schema := spillBenchSchema(t)
	data := spillBenchData(3000, 1000)
	plan := func() *Dataset {
		return FromRows("s", schema, data, 4).Sort(SortOrder{Column: "v"}, SortOrder{Column: "k", Descending: true})
	}
	base, err := spillEngine(t).Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	spill := spillEngine(t, WithMemoryBudget(1))
	got, err := spill.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpilledBatches == 0 {
		t.Fatal("budgeted sort did not stage/spill its input batches")
	}
	assertSameResult(t, "sort under budget", got, base)
}

// TestExternalSortRunsAndMerge drives the spill-aware external merge sort:
// a budgeted multi-key sort must form sorted runs, spill them through the
// codec, merge them back bit-identically to the unlimited columnar sort, and
// keep its measured peak resident footprint within the runs × chunk bound.
func TestExternalSortRunsAndMerge(t *testing.T) {
	ctx := context.Background()
	schema := spillBenchSchema(t)
	data := spillBenchData(20_000, 137)
	plan := func() *Dataset {
		return FromRows("s", schema, data, 4).
			Sort(SortOrder{Column: "v"}, SortOrder{Column: "k", Descending: true}, SortOrder{Column: "tag"})
	}
	base, err := spillEngine(t).Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.SortRuns != 0 {
		t.Errorf("unlimited columnar sort must not form runs, got %d", base.Stats.SortRuns)
	}
	external := spillEngine(t, WithMemoryBudget(1))
	got, err := external.Collect(ctx, plan())
	if err != nil {
		t.Fatal(err)
	}
	st := got.Stats
	if st.SortRuns == 0 || st.SortMergedBatches == 0 {
		t.Fatalf("budgeted sort must merge spilled runs, got runs=%d merged=%d", st.SortRuns, st.SortMergedBatches)
	}
	if st.SpilledBatches == 0 || st.SpilledBytes == 0 {
		t.Fatalf("budgeted sort must spill through the codec, got batches=%d bytes=%d", st.SpilledBatches, st.SpilledBytes)
	}
	// The memory bound: no partition's run store may hold more than its run
	// count × the largest chunk footprint. A whole 5000-row partition resident
	// at once would blow well past it.
	chunk, err := storage.BatchFromRows(schema, data[:SortChunkRows])
	if err != nil {
		t.Fatal(err)
	}
	chunkMem := storage.BatchMemSize(chunk)
	if st.SortPeakResidentBytes == 0 {
		t.Fatal("external sort must record its peak resident bytes")
	}
	if st.SortPeakResidentBytes > st.SortRuns*chunkMem {
		t.Errorf("sort peak resident %d exceeds runs(%d) × chunk(%d)",
			st.SortPeakResidentBytes, st.SortRuns, chunkMem)
	}
	assertSameResult(t, "external sort", got, base)
	if snap := external.Metrics().Snapshot(); snap.CounterValue("sort.runs") == 0 ||
		snap.CounterValue("sort.merged.batches") == 0 {
		t.Error("sort.runs / sort.merged.batches counters must accumulate")
	}
}

// TestSortSampleBudget pins the evalSortRange fix: with truncating stride
// division a 1000-row input sorted across 10 partitions collected 334 samples
// against a 320-row target; the ceiling stride must keep the sample within
// target + partitions.
func TestSortSampleBudget(t *testing.T) {
	ctx := context.Background()
	schema := spillBenchSchema(t)
	data := spillBenchData(1000, 997)
	const partitions = 10
	e := spillEngine(t, WithShufflePartitions(partitions))
	d := FromRows("sample", schema, data, 4).Sort(SortOrder{Column: "k"})
	_, stats, err := e.CountStats(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	target := int64(partitions * sortSamplesPerPartition)
	if stats.SortSampledRows == 0 {
		t.Fatal("range sort did not sample")
	}
	if stats.SortSampledRows > target+partitions {
		t.Errorf("SortSampledRows = %d, want <= target %d + partitions %d",
			stats.SortSampledRows, target, partitions)
	}
}

// TestExplainSpillState checks the physical-plan header and spill line name
// the budget and spill state.
func TestExplainSpillState(t *testing.T) {
	schema := spillBenchSchema(t)
	d := FromRows("x", schema, spillBenchData(10, 5), 2).Distinct("k")

	mem := spillEngine(t)
	plan := mem.Explain(d)
	if !strings.Contains(plan, "memoryBudget=unlimited") || !strings.Contains(plan, "spill: disabled") {
		t.Errorf("unlimited explain must name the budget and spill state:\n%s", plan)
	}
	spill := spillEngine(t, WithMemoryBudget(65536))
	plan = spill.Explain(d)
	if !strings.Contains(plan, "memoryBudget=65536B") || !strings.Contains(plan, "spill: enabled (budget 65536 bytes") {
		t.Errorf("budgeted explain must name the budget and spill state:\n%s", plan)
	}
	rowMode := spillEngine(t, WithMemoryBudget(65536), WithVectorizedExecution(false))
	if plan = rowMode.Explain(d); !strings.Contains(plan, "spill: inactive") {
		t.Errorf("row-mode explain must flag the inactive budget:\n%s", plan)
	}
}

// negZeroModes builds the execution-mode matrix the negative-zero regression
// runs under: vectorized, row fused, unfused, and vectorized with spilling
// forced.
func negZeroModes(t *testing.T) map[string]*Engine {
	t.Helper()
	return map[string]*Engine{
		"vectorized": spillEngine(t),
		"row":        spillEngine(t, WithVectorizedExecution(false)),
		"unfused":    spillEngine(t, WithFusion(false), WithVectorizedExecution(false)),
		"spill":      spillEngine(t, WithMemoryBudget(1)),
	}
}

// TestNegativeZeroGroupBy pins the key-equality fix: -0.0 and 0.0 compare
// equal (CompareValues, Go ==) so group-by must place them in one group in
// every execution mode.
func TestNegativeZeroGroupBy(t *testing.T) {
	ctx := context.Background()
	negZero := math.Copysign(0, -1)
	schema := storage.MustSchema(
		storage.Field{Name: "f", Type: storage.TypeFloat},
		storage.Field{Name: "n", Type: storage.TypeInt},
	)
	rows := []storage.Row{
		{negZero, int64(1)}, {0.0, int64(2)}, {1.5, int64(3)}, {0.0, int64(4)}, {negZero, int64(5)},
	}
	for mode, e := range negZeroModes(t) {
		res, err := e.Collect(ctx, FromRows("nz", schema, rows, 2).GroupBy("f").Agg(Count()))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("%s: group-by produced %d groups, want 2 (zero and 1.5): %v", mode, len(res.Rows), res.Rows)
		}
		for _, r := range res.Rows {
			if f := r[0].(float64); f == 0 && r[1].(int64) != 4 {
				t.Errorf("%s: zero group counted %v rows, want 4", mode, r[1])
			}
		}
	}
}

// TestNegativeZeroDistinct requires distinct to collapse -0.0 and 0.0 into
// one row in every execution mode.
func TestNegativeZeroDistinct(t *testing.T) {
	ctx := context.Background()
	negZero := math.Copysign(0, -1)
	schema := storage.MustSchema(storage.Field{Name: "f", Type: storage.TypeFloat})
	rows := []storage.Row{{negZero}, {0.0}, {2.5}, {negZero}, {0.0}}
	for mode, e := range negZeroModes(t) {
		res, err := e.Collect(ctx, FromRows("nz", schema, rows, 2).Distinct())
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("%s: distinct produced %d rows, want 2: %v", mode, len(res.Rows), res.Rows)
		}
	}
}

// TestNegativeZeroJoin requires a -0.0 probe key to match a +0.0 build key in
// both join strategies (broadcast and shuffled) in every execution mode.
func TestNegativeZeroJoin(t *testing.T) {
	ctx := context.Background()
	negZero := math.Copysign(0, -1)
	leftSchema := storage.MustSchema(
		storage.Field{Name: "f", Type: storage.TypeFloat},
		storage.Field{Name: "id", Type: storage.TypeInt},
	)
	rightSchema := storage.MustSchema(
		storage.Field{Name: "f", Type: storage.TypeFloat},
		storage.Field{Name: "label", Type: storage.TypeString},
	)
	left := []storage.Row{{negZero, int64(1)}, {3.5, int64(2)}}
	right := []storage.Row{{0.0, "zero"}, {3.5, "other"}}
	modeOpts := map[string][]EngineOption{
		"vectorized": nil,
		"row":        {WithVectorizedExecution(false)},
		"unfused":    {WithFusion(false), WithVectorizedExecution(false)},
		"spill":      {WithMemoryBudget(1)},
	}
	for _, strategy := range []struct {
		name string
		opts []EngineOption
	}{
		{"broadcast", nil},
		{"shuffled", []EngineOption{WithBroadcastJoin(false)}},
	} {
		for mode, extra := range modeOpts {
			opts := append(append([]EngineOption{}, strategy.opts...), extra...)
			e := spillEngine(t, opts...)
			plan := FromRows("l", leftSchema, left, 2).
				Join(FromRows("r", rightSchema, right, 2), "f", "f", InnerJoin)
			res, err := e.Collect(ctx, plan)
			if err != nil {
				t.Fatalf("%s/%s: %v", strategy.name, mode, err)
			}
			if len(res.Rows) != 2 {
				t.Fatalf("%s/%s: join produced %d rows, want 2 (both keys must match): %v",
					strategy.name, mode, len(res.Rows), res.Rows)
			}
			for _, r := range res.Rows {
				if r[1].(int64) == 1 && r[3].(string) != "zero" {
					t.Errorf("%s/%s: -0.0 row joined %v, want \"zero\"", strategy.name, mode, r[3])
				}
			}
		}
	}
}
