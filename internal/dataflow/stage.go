package dataflow

// stage.go implements the stage compiler: before execution the engine walks
// the logical plan and fuses maximal chains of narrow, per-partition
// operators (filter → map → flatMap → sample, optionally capped by a
// trailing limit) into a single fused stage. A fused stage runs as ONE
// cluster job with one task per input partition; inside each task the
// operators are composed into a push-based row pipeline, so no intermediate
// per-operator [][]storage.Row is ever materialised. Wide operators
// (shuffle, group-by, join, sort, distinct) remain stage boundaries.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/storage"
)

// fusedChain is one maximal chain of narrow operators compiled into a single
// stage.
type fusedChain struct {
	// ops are the narrow plan nodes in execution order (closest to the input
	// first). Only filter, map, flatMap and sample nodes appear here.
	ops []planNode
	// limit caps the number of rows each partition emits; -1 means uncapped.
	// A capped chain is followed by a driver-side global truncation that
	// preserves Limit's partition-order semantics.
	limit int
	// base is the node feeding the chain: a source, a wide operator, a union
	// or a mid-plan limit.
	base planNode
}

// narrowChainOf walks down from node and collects the maximal fusible chain
// ending at node. ok is false when node starts no fusible chain (it is a
// source, a wide operator, a union, or a bare limit with no narrow child).
func narrowChainOf(node planNode) (fusedChain, bool) {
	ch := fusedChain{limit: -1}
	cur := node
	if ln, isLimit := cur.(*limitNode); isLimit {
		ch.limit = ln.n
		cur = ln.child
	}
	for {
		switch n := cur.(type) {
		case *filterNode:
			ch.ops = append(ch.ops, n)
			cur = n.child
		case *mapNode:
			ch.ops = append(ch.ops, n)
			cur = n.child
		case *flatMapNode:
			ch.ops = append(ch.ops, n)
			cur = n.child
		case *projectNode:
			ch.ops = append(ch.ops, n)
			cur = n.child
		case *withColumnNode:
			ch.ops = append(ch.ops, n)
			cur = n.child
		case *sampleNode:
			ch.ops = append(ch.ops, n)
			cur = n.child
		default:
			ch.base = cur
			// Collected top-down; reverse into execution order.
			for i, j := 0, len(ch.ops)-1; i < j; i, j = i+1, j-1 {
				ch.ops[i], ch.ops[j] = ch.ops[j], ch.ops[i]
			}
			return ch, len(ch.ops) > 0
		}
	}
}

// opKind names one fused operator for job/task naming.
func opKind(op planNode) string {
	switch op.(type) {
	case *filterNode:
		return "filter"
	case *mapNode:
		return "map"
	case *flatMapNode:
		return "flatmap"
	case *projectNode:
		return "project"
	case *withColumnNode:
		return "with_column"
	case *sampleNode:
		return "sample"
	default:
		return "op"
	}
}

// name renders the stage's job name, e.g. "stage(filter→map→flatmap)".
func (ch fusedChain) name() string {
	kinds := make([]string, len(ch.ops))
	for i, op := range ch.ops {
		kinds[i] = opKind(op)
	}
	s := "stage(" + strings.Join(kinds, "→")
	if ch.limit >= 0 {
		s += fmt.Sprintf("→limit(%d)", ch.limit)
	}
	return s + ")"
}

// emitFunc pushes one row into the next pipeline step. It returns false when
// the consumer needs no more input (the per-partition limit was reached).
type emitFunc func(storage.Row) (bool, error)

// compile composes the chain's operators for one partition over the terminal
// sink, returning the pipeline head. Per-partition state (the sample RNG, the
// rows-emitted validation counters) is created here, so compile must be
// called inside the partition's task.
func (ch fusedChain) compile(e *Engine, partIdx int, sink emitFunc) emitFunc {
	next := sink
	for i := len(ch.ops) - 1; i >= 0; i-- {
		next = compileOp(e, ch.ops[i], partIdx, next)
	}
	return next
}

func compileOp(e *Engine, op planNode, partIdx int, next emitFunc) emitFunc {
	switch n := op.(type) {
	case *filterNode:
		schema := n.child.schema()
		return func(r storage.Row) (bool, error) {
			keep, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return false, err
			}
			if !keep {
				return true, nil
			}
			return next(r)
		}
	case *mapNode:
		schema := n.child.schema()
		out := n.out
		emitted := 0
		return func(r storage.Row) (bool, error) {
			nr, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return false, err
			}
			if err := e.validateHead("map output", out, nr, emitted); err != nil {
				return false, err
			}
			emitted++
			return next(nr)
		}
	case *flatMapNode:
		schema := n.child.schema()
		out := n.out
		emitted := 0
		return func(r storage.Row) (bool, error) {
			produced, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return false, err
			}
			for _, nr := range produced {
				if err := e.validateHead("flatmap output", out, nr, emitted); err != nil {
					return false, err
				}
				emitted++
				more, err := next(nr)
				if err != nil || !more {
					return more, err
				}
			}
			return true, nil
		}
	case *projectNode:
		return func(r storage.Row) (bool, error) {
			row := make(storage.Row, len(n.indices))
			for i, idx := range n.indices {
				row[i] = r[idx]
			}
			return next(row)
		}
	case *withColumnNode:
		schema := n.child.schema()
		emitted := 0
		return func(r storage.Row) (bool, error) {
			v, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return false, err
			}
			if emitted == 0 || e.strictValidate {
				if err := storage.ValidateCell(n.field, v); err != nil {
					return false, fmt.Errorf("with_column output: %w", err)
				}
			}
			emitted++
			row := make(storage.Row, len(r)+1)
			copy(row, r)
			row[len(r)] = v
			return next(row)
		}
	case *sampleNode:
		rng := rand.New(rand.NewSource(n.seed + int64(partIdx)))
		return func(r storage.Row) (bool, error) {
			if rng.Float64() >= n.fraction {
				return true, nil
			}
			return next(r)
		}
	default:
		return func(storage.Row) (bool, error) {
			return false, fmt.Errorf("%w: operator %T cannot be fused", ErrBadPlan, op)
		}
	}
}

// Explain renders the physical plan the engine would execute for d: fused
// stages, shuffle boundaries, and the physical strategy chosen for every wide
// operator (range vs single-task sort, broadcast vs shuffled join, map-side
// combine/dedup). It is the physical counterpart of Dataset.Explain (the
// logical plan) and executes nothing.
func (e *Engine) Explain(d *Dataset) string {
	if d == nil || d.node == nil {
		return "<invalid plan>"
	}
	if err := d.Err(); err != nil {
		return fmt.Sprintf("<invalid plan: %v>", err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "PhysicalPlan(fusion=%s, combine=%s, rangeSort=%s, broadcastJoin=%s(≤%d), mapSideDistinct=%s, vectorized=%s, columnarSort=%s, columnarAgg=%s, shufflePartitions=%d, memoryBudget=%s, spillCompression=%s)\n",
		onOff(e.fuse), onOff(e.combine), onOff(e.rangeSort),
		onOff(e.broadcastJoin), e.broadcastThreshold, onOff(e.mapSideDistinct),
		onOff(e.vectorize), onOff(e.columnarSort), onOff(e.columnarAgg),
		e.shufflePartitions, e.budgetLabel(), onOff(e.spillCompress))
	fmt.Fprintf(&sb, "  execution mode: %s\n", e.executionMode())
	fmt.Fprintf(&sb, "  spill: %s\n", e.spillMode())
	e.explainNode(&sb, d.node, 1)
	return sb.String()
}

// executionMode names the engine's narrow-operator execution strategy.
func (e *Engine) executionMode() string {
	switch {
	case e.fuse && e.vectorize:
		return "vectorized (columnar batches)"
	case e.vectorize:
		return "vectorized (per-operator batch kernels)"
	case e.fuse:
		return "row-at-a-time (fused)"
	default:
		return "row-at-a-time (per-operator)"
	}
}

// sortCoreLabel names the sort-core strategy the engine will run a Sort node
// with, the physical counterpart of the range/single-task partitioning
// decision. bound/bounded is the static input-size estimate, used to put an
// upper bound on the external merge's run count (runs are fixed
// SortChunkRows-row chunks, so the count is derivable before execution).
func (e *Engine) sortCoreLabel(bound int, bounded bool) string {
	switch {
	case !e.vectorize:
		return "[row sort]"
	case !e.columnarSort:
		return "[boxed-row sort]"
	case e.memoryBudget <= 0:
		return "[columnar in-memory]"
	case bounded:
		runs := (bound + SortChunkRows - 1) / SortChunkRows
		if runs < 1 {
			runs = 1
		}
		return fmt.Sprintf("[external merge (runs≤%d)]", runs)
	default:
		return "[external merge (chunked runs)]"
	}
}

// aggCoreLabel names the aggregation-core strategy group-by nodes run with:
// the columnar hash aggregation (spill-aware when a budget forces the
// non-combined path's group state to re-partition) or the boxed per-group
// state ablation arm. The combined path's group state is bounded by the
// map-side partials, so only the non-combined path gets the spilling tag.
func (e *Engine) aggCoreLabel() string {
	switch {
	case !e.vectorize || !e.columnarAgg:
		return "[boxed agg]"
	case e.memoryBudget > 0 && !e.combine:
		return fmt.Sprintf("[spilling hash-agg (parts≤%d)]", aggSpillPartitions)
	default:
		return "[columnar hash-agg]"
	}
}

// budgetLabel renders the memory budget for the Explain header.
func (e *Engine) budgetLabel() string {
	if e.memoryBudget <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%dB", e.memoryBudget)
}

// spillMode names the spill state of wide-operator accumulations.
func (e *Engine) spillMode() string {
	switch {
	case e.memoryBudget <= 0:
		return "disabled (unlimited budget, partitions stay in memory)"
	case !e.vectorize:
		return fmt.Sprintf("inactive (budget %d bytes set, but spilling needs vectorized execution)", e.memoryBudget)
	default:
		return fmt.Sprintf("enabled (budget %d bytes per accumulation, cold batches spill to temp files)", e.memoryBudget)
	}
}

// estimateMaxRows returns a static upper bound on the number of rows node can
// produce, derived from source sizes: narrow row-preserving and row-reducing
// operators bound by their child, limits cap, unions add. ok is false when no
// bound can be derived (flatMap and joins can grow their input arbitrarily).
// Explain uses the bound to predict the runtime broadcast-join decision,
// which compares the materialised build side against the threshold.
func estimateMaxRows(node planNode) (int, bool) {
	switch n := node.(type) {
	case *sourceNode:
		total := 0
		for _, p := range n.partitions {
			total += len(p)
		}
		return total, true
	case *filterNode:
		return estimateMaxRows(n.child)
	case *mapNode:
		return estimateMaxRows(n.child)
	case *projectNode:
		return estimateMaxRows(n.child)
	case *withColumnNode:
		return estimateMaxRows(n.child)
	case *sampleNode:
		return estimateMaxRows(n.child)
	case *distinctNode:
		return estimateMaxRows(n.child)
	case *sortNode:
		return estimateMaxRows(n.child)
	case *groupByNode:
		// At most one output row per input row.
		return estimateMaxRows(n.child)
	case *limitNode:
		if bound, ok := estimateMaxRows(n.child); ok && bound < n.n {
			return bound, true
		}
		return n.n, true
	case *unionNode:
		l, lok := estimateMaxRows(n.left)
		r, rok := estimateMaxRows(n.right)
		if lok && rok {
			return l + r, true
		}
		return 0, false
	default: // flatMapNode, joinNode
		return 0, false
	}
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func (e *Engine) explainNode(sb *strings.Builder, node planNode, depth int) {
	indent := strings.Repeat("  ", depth)
	if e.fuse {
		if ch, ok := narrowChainOf(node); ok {
			labels := make([]string, len(ch.ops))
			for i, op := range ch.ops {
				labels[i] = op.label()
			}
			line := fmt.Sprintf("FusedStage(ops=%d: %s)", len(ch.ops), strings.Join(labels, " → "))
			if ch.limit >= 0 {
				line += fmt.Sprintf(" +Limit(%d)", ch.limit)
			}
			// Limit-capped chains always run the row pipeline (see eval), so
			// only uncapped chains are tagged with the batch-kernel strategy.
			if e.vectorize && ch.limit < 0 {
				line += " [vectorized]"
			}
			sb.WriteString(indent + line + "\n")
			e.explainNode(sb, ch.base, depth+1)
			return
		}
	}
	label := node.label()
	switch n := node.(type) {
	case *iterateNode:
		// The body sub-plan is rendered once under its own header; at runtime
		// it re-executes every pass, reading the loop state through the
		// LoopState placeholder that init seeds.
		fmt.Fprintf(sb, "%sIterate [iterate (maxIter=%d, delta=%s)]\n", indent, n.maxIter, onOff(n.delta))
		sb.WriteString(indent + "  body (re-executed per iteration):\n")
		e.explainNode(sb, n.body, depth+2)
		sb.WriteString(indent + "  init:\n")
		e.explainNode(sb, n.init, depth+2)
		return
	case *groupByNode:
		if e.combine {
			label += " [combine+shuffle]"
		} else {
			label += " [shuffle]"
		}
		label += " " + e.aggCoreLabel()
	case *distinctNode:
		if e.mapSideDistinct {
			label += " [map-dedup+shuffle]"
		} else {
			label += " [shuffle]"
		}
	case *sortNode:
		// Mirror evalSort's runtime decision: small bounded inputs take the
		// single-task fallback even with range sorting enabled; unbounded
		// inputs are assumed large enough to range-shuffle. The second tag
		// names the sort core (typed columnar, external merge with its run
		// bound, or the boxed-row ablation arms).
		bound, bounded := estimateMaxRows(n.child)
		small := bounded && bound <= e.shufflePartitions*rangeSortMinRowsPerPartition
		if e.rangeSort && e.shufflePartitions > 1 && !small {
			label += fmt.Sprintf(" [range-shuffle(parts=%d)]", e.shufflePartitions)
		} else {
			label += " [single-task]"
		}
		label += " " + e.sortCoreLabel(bound, bounded)
	case *joinNode:
		if bound, ok := estimateMaxRows(n.right); e.broadcastJoin && ok && bound <= e.broadcastThreshold {
			label += fmt.Sprintf(" [broadcast(build≤%d)]", bound)
		} else {
			label += " [shuffle-hash]"
		}
	}
	sb.WriteString(indent + label + "\n")
	for _, c := range node.children() {
		e.explainNode(sb, c, depth+1)
	}
}
