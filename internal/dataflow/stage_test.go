package dataflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// fusedAndUnfusedEngines returns two engines over fresh clusters, one with
// the stage compiler enabled and one running the per-operator baseline.
func fusedAndUnfusedEngines(t *testing.T, opts ...EngineOption) (*Engine, *Engine) {
	t.Helper()
	build := func(fuse bool) *Engine {
		c, err := cluster.New(cluster.Uniform(2, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		all := append([]EngineOption{WithFusion(fuse), WithMapSideCombine(fuse)}, opts...)
		e, err := NewEngine(c, all...)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return build(true), build(false)
}

// numbersDataset builds a deterministic integer dataset over p partitions.
func numbersDataset(t *testing.T, n, p int) *Dataset {
	t.Helper()
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{int64(i % 7), float64(i)}
	}
	return FromRows("numbers", schema, rows, p)
}

// narrowChainPlan builds a 3-operator narrow chain over d.
func narrowChainPlan(d *Dataset) *Dataset {
	doubled := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v2", Type: storage.TypeFloat},
	)
	return d.
		Filter("v >= 10", func(r Record) (bool, error) { return r.Float("v") >= 10, nil }).
		Map("double", doubled, func(r Record) (storage.Row, error) {
			return storage.Row{r.Int("k"), r.Float("v") * 2}, nil
		}).
		Filter("k != 3", func(r Record) (bool, error) { return r.Int("k") != 3, nil })
}

func rowStrings(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	return out
}

func sortedRowStrings(rows []storage.Row) []string {
	out := rowStrings(rows)
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFusedNarrowChainRunsOneJob(t *testing.T) {
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	const parts = 4
	d := narrowChainPlan(numbersDataset(t, 1000, parts))
	res, err := e.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	// A chain of 3 narrow operators over 4 partitions must run as one
	// cluster job with 4 tasks, not 3 jobs / 12 tasks.
	if res.Stats.Tasks != parts {
		t.Errorf("tasks = %d, want %d (one per partition)", res.Stats.Tasks, parts)
	}
	if res.Stats.FusedStages != 1 {
		t.Errorf("fused stages = %d, want 1", res.Stats.FusedStages)
	}
	snap := c.Metrics().Snapshot()
	if jobs := snap.CounterValue("jobs"); jobs != 1 {
		t.Errorf("cluster jobs = %d, want 1", jobs)
	}
	if jt := snap.CounterValue("jobs.tasks"); jt != parts {
		t.Errorf("cluster job tasks = %d, want %d", jt, parts)
	}
	if got := e.Metrics().Snapshot().CounterValue("stages.fused"); got != 1 {
		t.Errorf("stages.fused counter = %d, want 1", got)
	}
}

func TestUnfusedNarrowChainRunsJobPerOperator(t *testing.T) {
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, WithFusion(false))
	if err != nil {
		t.Fatal(err)
	}
	const parts = 4
	d := narrowChainPlan(numbersDataset(t, 1000, parts))
	res, err := e.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tasks != 3*parts {
		t.Errorf("unfused tasks = %d, want %d (one per operator per partition)", res.Stats.Tasks, 3*parts)
	}
	if jobs := c.Metrics().Snapshot().CounterValue("jobs"); jobs != 3 {
		t.Errorf("unfused cluster jobs = %d, want 3", jobs)
	}
}

func TestFusionMatchesUnfused(t *testing.T) {
	tokens := storage.MustSchema(storage.Field{Name: "t", Type: storage.TypeInt})
	plans := map[string]func(*Dataset) *Dataset{
		"filter-map-filter": narrowChainPlan,
		"flatmap-filter": func(d *Dataset) *Dataset {
			return d.
				FlatMap("repeat k times", tokens, func(r Record) ([]storage.Row, error) {
					k := r.Int("k")
					out := make([]storage.Row, k)
					for i := range out {
						out[i] = storage.Row{k}
					}
					return out, nil
				}).
				Filter("t > 1", func(r Record) (bool, error) { return r.Int("t") > 1, nil })
		},
		"sample-in-chain": func(d *Dataset) *Dataset {
			return d.
				Filter("v < 900", func(r Record) (bool, error) { return r.Float("v") < 900, nil }).
				Sample(0.5, 7).
				Filter("k even", func(r Record) (bool, error) { return r.Int("k")%2 == 0, nil })
		},
		"chain-then-limit": func(d *Dataset) *Dataset {
			return narrowChainPlan(d).Limit(37)
		},
		"limit-zero": func(d *Dataset) *Dataset {
			return narrowChainPlan(d).Limit(0)
		},
		"chain-into-distinct": func(d *Dataset) *Dataset {
			return narrowChainPlan(d).Distinct("k")
		},
		"chain-into-sort": func(d *Dataset) *Dataset {
			return narrowChainPlan(d).Sort(SortOrder{Column: "v2", Descending: true})
		},
	}
	for name, build := range plans {
		t.Run(name, func(t *testing.T) {
			fused, unfused := fusedAndUnfusedEngines(t)
			ctx := context.Background()
			got, err := fused.Collect(ctx, build(numbersDataset(t, 1000, 4)))
			if err != nil {
				t.Fatal(err)
			}
			want, err := unfused.Collect(ctx, build(numbersDataset(t, 1000, 4)))
			if err != nil {
				t.Fatal(err)
			}
			// Narrow chains, limit and sort preserve order; distinct is
			// compared as a multiset because bucket order may differ.
			g, w := rowStrings(got.Rows), rowStrings(want.Rows)
			if name == "chain-into-distinct" {
				sort.Strings(g)
				sort.Strings(w)
			}
			if !equalStrings(g, w) {
				t.Errorf("fused result differs from unfused:\nfused   (%d rows): %v\nunfused (%d rows): %v",
					len(g), g[:min(5, len(g))], len(w), w[:min(5, len(w))])
			}
		})
	}
}

func TestGroupByCombineMatchesAndReducesShuffle(t *testing.T) {
	build := func() *Dataset {
		return numbersDataset(t, 2000, 4).GroupBy("k").Agg(
			Count(), Sum("v"), Avg("v"), Min("v"), Max("v"), CountDistinct("v"), StdDev("v"),
		)
	}
	fused, unfused := fusedAndUnfusedEngines(t)
	ctx := context.Background()
	combined, err := fused.Collect(ctx, build())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := unfused.Collect(ctx, build())
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(sortedRowStrings(combined.Rows), sortedRowStrings(plain.Rows)) {
		t.Errorf("combined group-by differs from row-at-a-time group-by:\n%v\nvs\n%v",
			sortedRowStrings(combined.Rows), sortedRowStrings(plain.Rows))
	}
	// 2000 rows over 7 keys in 4 partitions: the combine pass shuffles at
	// most 4*7 partial groups instead of 2000 rows.
	if combined.Stats.ShuffledRows >= plain.Stats.ShuffledRows {
		t.Errorf("combine did not reduce shuffled rows: %d vs %d",
			combined.Stats.ShuffledRows, plain.Stats.ShuffledRows)
	}
	if combined.Stats.ShuffledRows > 4*7 {
		t.Errorf("combined shuffled rows = %d, want <= 28", combined.Stats.ShuffledRows)
	}
	if combined.Stats.CombinedRows != 2000-combined.Stats.ShuffledRows {
		t.Errorf("combined rows = %d, want %d", combined.Stats.CombinedRows, 2000-combined.Stats.ShuffledRows)
	}
	if got := fused.Metrics().Snapshot().CounterValue("shuffle.combined"); got != combined.Stats.CombinedRows {
		t.Errorf("shuffle.combined counter = %d, want %d", got, combined.Stats.CombinedRows)
	}
	if plain.Stats.CombinedRows != 0 {
		t.Errorf("uncombined run reported CombinedRows = %d", plain.Stats.CombinedRows)
	}
}

func TestFusedLimitStopsPartitionsEarly(t *testing.T) {
	c, err := cluster.New(cluster.Uniform(1, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	// Count how many rows actually reach the filter: with the limit fused
	// into the stage, each partition stops after producing 3 rows.
	var seen [2]int
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	rows := make([]storage.Row, 100)
	for i := range rows {
		rows[i] = storage.Row{int64(i)}
	}
	d := FromRows("vals", schema, rows, 2).
		Filter("count calls", func(r Record) (bool, error) {
			seen[int(r.Int("v"))%2]++
			return true, nil
		}).
		Limit(3)
	res, err := e.Collect(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows = %d, want 3", len(res.Rows))
	}
	if seen[0] > 3 || seen[1] > 3 {
		t.Errorf("fused limit must stop each partition after 3 rows, saw %v", seen)
	}
}

func TestFusedUDFErrorFailsAction(t *testing.T) {
	fused, _ := fusedAndUnfusedEngines(t)
	d := numbersDataset(t, 100, 4).
		Filter("ok", func(r Record) (bool, error) { return true, nil }).
		Map("boom", storage.MustSchema(storage.Field{Name: "x", Type: storage.TypeInt}),
			func(r Record) (storage.Row, error) { return nil, errors.New("boom") })
	_, err := fused.Collect(context.Background(), d)
	if !errors.Is(err, ErrUDF) {
		t.Errorf("fused UDF error = %v, want ErrUDF", err)
	}
}

func TestExplainPhysicalPlan(t *testing.T) {
	fused, unfused := fusedAndUnfusedEngines(t)
	d := narrowChainPlan(numbersDataset(t, 10, 2)).GroupBy("k").Agg(Count())

	plan := fused.Explain(d)
	for _, want := range []string{
		"PhysicalPlan(fusion=on, combine=on",
		"FusedStage(ops=3:",
		"Filter(v >= 10) → Map(double) → Filter(k != 3)",
		"GroupBy(keys=[k], aggs=1) [combine+shuffle]",
		"Source(numbers, partitions=2, rows=10)",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("fused Explain missing %q:\n%s", want, plan)
		}
	}

	baseline := unfused.Explain(d)
	if strings.Contains(baseline, "FusedStage") {
		t.Errorf("unfused Explain must not contain fused stages:\n%s", baseline)
	}
	if !strings.Contains(baseline, "GroupBy(keys=[k], aggs=1) [shuffle]") {
		t.Errorf("unfused Explain missing plain group-by:\n%s", baseline)
	}

	limited := fused.Explain(narrowChainPlan(numbersDataset(t, 10, 2)).Limit(5))
	if !strings.Contains(limited, "+Limit(5)") {
		t.Errorf("Explain of capped chain missing limit annotation:\n%s", limited)
	}

	if got := fused.Explain(nil); got != "<invalid plan>" {
		t.Errorf("Explain(nil) = %q", got)
	}
	if got := fused.Explain(FromTable(nil)); !strings.Contains(got, "invalid plan") {
		t.Errorf("Explain of invalid dataset = %q", got)
	}
}

func TestFusedStageWithFailureInjection(t *testing.T) {
	cfg := cluster.Uniform(2, 2, 0.2)
	cfg.MaxAttempts = 8
	cfg.Seed = 5
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Collect(context.Background(), narrowChainPlan(numbersDataset(t, 500, 4)))
	if err != nil {
		t.Fatalf("fused stage with retries: %v", err)
	}
	if res.Stats.Tasks != 4 {
		t.Errorf("tasks = %d, want 4", res.Stats.Tasks)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows produced")
	}
}
