package dataflow

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	return testEngineWith(t)
}

func testEngineWith(t *testing.T, opts ...EngineOption) *Engine {
	t.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func collect(t *testing.T, e *Engine, d *Dataset) *Result {
	t.Helper()
	res, err := e.Collect(context.Background(), d)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return res
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil cluster must be rejected")
	}
	c, _ := cluster.New(cluster.Uniform(1, 1, 0))
	e, err := NewEngine(c, WithShufflePartitions(5))
	if err != nil {
		t.Fatal(err)
	}
	if e.shufflePartitions != 5 {
		t.Errorf("shuffle partitions = %d, want 5", e.shufflePartitions)
	}
}

func TestCollectSource(t *testing.T) {
	e := testEngine(t)
	res := collect(t, e, salesDataset(t))
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	if res.Stats.RowsRead != 6 || res.Stats.RowsOutput != 6 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.ShuffledRows != 0 || res.Stats.Stages != 0 {
		t.Errorf("narrow-only plan must not shuffle: %+v", res.Stats)
	}
	if len(res.Records()) != 6 {
		t.Error("Records length mismatch")
	}
}

func TestCollectInvalidPlan(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Collect(context.Background(), nil); !errors.Is(err, ErrNoSource) {
		t.Errorf("nil dataset err = %v", err)
	}
	if _, err := e.Collect(context.Background(), FromTable(nil)); err == nil {
		t.Error("invalid plan must fail at Collect")
	}
}

func TestFilterAndCount(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).Filter("amount >= 30", func(r Record) (bool, error) {
		return r.Float("amount") >= 30, nil
	})
	n, err := e.Count(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("count = %d, want 4", n)
	}
}

func TestFilterUDFError(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).Filter("boom", func(r Record) (bool, error) {
		return false, errors.New("boom")
	})
	_, err := e.Collect(context.Background(), d)
	if err == nil {
		t.Fatal("UDF error must fail the job")
	}
}

func TestMapAndProject(t *testing.T) {
	e := testEngine(t)
	out := storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "amount_eur", Type: storage.TypeFloat},
	)
	d := salesDataset(t).Map("to eur", out, func(r Record) (storage.Row, error) {
		return storage.Row{r.Int("id"), r.Float("amount") * 0.92}, nil
	})
	res := collect(t, e, d)
	if len(res.Rows) != 6 || res.Schema.Len() != 2 {
		t.Fatalf("map result: rows=%d schema=%v", len(res.Rows), res.Schema.Names())
	}

	p := collect(t, e, salesDataset(t).Project("region", "amount"))
	if p.Schema.Len() != 2 || p.Schema.Names()[0] != "region" {
		t.Errorf("projected schema = %v", p.Schema.Names())
	}
}

func TestMapOutputValidation(t *testing.T) {
	e := testEngine(t)
	out := storage.MustSchema(storage.Field{Name: "x", Type: storage.TypeInt})
	d := salesDataset(t).Map("bad", out, func(r Record) (storage.Row, error) {
		return storage.Row{"not an int"}, nil
	})
	if _, err := e.Collect(context.Background(), d); err == nil {
		t.Error("rows violating the declared output schema must fail")
	}
}

func TestWithColumn(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).WithColumn(
		storage.Field{Name: "vat", Type: storage.TypeFloat},
		func(r Record) (storage.Value, error) { return r.Float("amount") * 0.22, nil },
	)
	res := collect(t, e, d)
	if !res.Schema.Has("vat") {
		t.Fatal("vat column missing")
	}
	for _, rec := range res.Records() {
		if math.Abs(rec.Float("vat")-rec.Float("amount")*0.22) > 1e-9 {
			t.Errorf("vat mismatch for %v", rec.Row())
		}
	}
}

func TestFlatMap(t *testing.T) {
	e := testEngine(t)
	out := storage.MustSchema(storage.Field{Name: "token", Type: storage.TypeString})
	d := salesDataset(t).FlatMap("explode region chars", out, func(r Record) ([]storage.Row, error) {
		region := r.String("region")
		rows := make([]storage.Row, 0, len(region))
		for _, ch := range region {
			rows = append(rows, storage.Row{string(ch)})
		}
		return rows, nil
	})
	res := collect(t, e, d)
	wantTokens := 0
	for _, r := range salesRows() {
		wantTokens += len(r[1].(string))
	}
	if len(res.Rows) != wantTokens {
		t.Errorf("flatmap rows = %d, want %d", len(res.Rows), wantTokens)
	}
}

func TestSampleDeterministic(t *testing.T) {
	e := testEngine(t)
	d1 := collect(t, e, salesDataset(t).Sample(0.5, 42))
	d2 := collect(t, e, salesDataset(t).Sample(0.5, 42))
	if len(d1.Rows) != len(d2.Rows) {
		t.Errorf("same seed must give same sample size: %d vs %d", len(d1.Rows), len(d2.Rows))
	}
	full := collect(t, e, salesDataset(t).Sample(1.0, 1))
	if len(full.Rows) != 6 {
		t.Errorf("fraction 1.0 must keep everything, got %d", len(full.Rows))
	}
	empty := collect(t, e, salesDataset(t).Sample(0.0, 1))
	if len(empty.Rows) != 0 {
		t.Errorf("fraction 0.0 must keep nothing, got %d", len(empty.Rows))
	}
}

func TestUnionAndLimit(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).Union(salesDataset(t))
	res := collect(t, e, d)
	if len(res.Rows) != 12 {
		t.Errorf("union rows = %d, want 12", len(res.Rows))
	}
	lim := collect(t, e, d.Limit(5))
	if len(lim.Rows) != 5 {
		t.Errorf("limit rows = %d, want 5", len(lim.Rows))
	}
	lim0 := collect(t, e, d.Limit(0))
	if len(lim0.Rows) != 0 {
		t.Errorf("limit 0 rows = %d, want 0", len(lim0.Rows))
	}
}

func TestDistinct(t *testing.T) {
	e := testEngine(t)
	dup := salesDataset(t).Union(salesDataset(t))
	res := collect(t, e, dup.Distinct())
	if len(res.Rows) != 6 {
		t.Errorf("distinct rows = %d, want 6", len(res.Rows))
	}
	regions := collect(t, e, salesDataset(t).Distinct("region"))
	if len(regions.Rows) != 3 {
		t.Errorf("distinct regions = %d, want 3", len(regions.Rows))
	}
	if regions.Stats.Stages == 0 || regions.Stats.ShuffledRows == 0 {
		t.Error("distinct must introduce a shuffle stage")
	}
}

func TestSort(t *testing.T) {
	e := testEngine(t)
	res := collect(t, e, salesDataset(t).Sort(SortOrder{Column: "amount", Descending: true}))
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, _ := storage.AsFloat(res.Rows[i-1][2])
		cur, _ := storage.AsFloat(res.Rows[i][2])
		if prev < cur {
			t.Errorf("rows not sorted descending at %d: %v < %v", i, prev, cur)
		}
	}
	asc := collect(t, e, salesDataset(t).Sort(SortOrder{Column: "region"}, SortOrder{Column: "amount"}))
	// Ties on region must then be ordered by amount ascending.
	var lastRegion string
	var lastAmount float64
	for i, r := range asc.Rows {
		region := r[1].(string)
		amount := r[2].(float64)
		if i > 0 {
			if region < lastRegion {
				t.Errorf("region order violated at %d", i)
			}
			if region == lastRegion && amount < lastAmount {
				t.Errorf("amount tiebreak violated at %d", i)
			}
		}
		lastRegion, lastAmount = region, amount
	}
}

func TestGroupByAggregations(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).GroupBy("region").Agg(
		Count(),
		Sum("amount"),
		Avg("amount").Named("mean_amount"),
		Min("amount"),
		Max("amount"),
		CountDistinct("id"),
		StdDev("amount"),
	)
	res := collect(t, e, d)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	byRegion := map[string]Record{}
	for _, rec := range res.Records() {
		byRegion[rec.String("region")] = rec
	}
	north := byRegion["north"]
	if north.Int("count") != 3 {
		t.Errorf("north count = %d, want 3", north.Int("count"))
	}
	if math.Abs(north.Float("sum_amount")-100) > 1e-9 {
		t.Errorf("north sum = %v, want 100", north.Float("sum_amount"))
	}
	if math.Abs(north.Float("mean_amount")-100.0/3) > 1e-9 {
		t.Errorf("north mean = %v", north.Float("mean_amount"))
	}
	if north.Float("min_amount") != 10 || north.Float("max_amount") != 60 {
		t.Errorf("north min/max = %v/%v", north.Float("min_amount"), north.Float("max_amount"))
	}
	if north.Int("count_distinct_id") != 3 {
		t.Errorf("north distinct ids = %d", north.Int("count_distinct_id"))
	}
	// population stddev of {10,30,60} = sqrt(((10-100/3)^2+(30-100/3)^2+(60-100/3)^2)/3)
	mean := 100.0 / 3
	wantStd := math.Sqrt(((10-mean)*(10-mean) + (30-mean)*(30-mean) + (60-mean)*(60-mean)) / 3)
	if math.Abs(north.Float("stddev_amount")-wantStd) > 1e-9 {
		t.Errorf("north stddev = %v, want %v", north.Float("stddev_amount"), wantStd)
	}
	south := byRegion["south"]
	if south.Int("count") != 2 || math.Abs(south.Float("sum_amount")-70) > 1e-9 {
		t.Errorf("south aggregation wrong: %v", south.Row())
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).
		Filter("non-null priority", func(r Record) (bool, error) { return !r.IsNull("priority"), nil }).
		GroupBy("region", "priority").Agg(Count())
	res := collect(t, e, d)
	// north/true(2 rows: ids 1,6), south/false(2), east/true(1)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	e := testEngine(t)
	d := salesDataset(t).GroupBy("region").Agg(CountDistinct("priority"), Avg("priority"))
	res := collect(t, e, d)
	for _, rec := range res.Records() {
		if rec.String("region") == "north" {
			// north rows have priority true, nil, true → 1 distinct non-null value.
			if rec.Int("count_distinct_priority") != 1 {
				t.Errorf("north distinct priority = %d, want 1", rec.Int("count_distinct_priority"))
			}
		}
	}
}

func TestInnerJoin(t *testing.T) {
	e := testEngine(t)
	managers := FromRows("managers", storage.MustSchema(
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "manager", Type: storage.TypeString},
	), []storage.Row{
		{"north", "anna"},
		{"south", "bruno"},
	}, 2)
	j := salesDataset(t).Join(managers, "region", "region", InnerJoin)
	res := collect(t, e, j)
	// north has 3 sales rows, south has 2; east is dropped.
	if len(res.Rows) != 5 {
		t.Fatalf("inner join rows = %d, want 5", len(res.Rows))
	}
	for _, rec := range res.Records() {
		if rec.String("region") == "north" && rec.String("manager") != "anna" {
			t.Errorf("north row joined to %q", rec.String("manager"))
		}
	}
	// The two-row build side is far under the threshold: the join must
	// broadcast it and skip the shuffle entirely.
	if res.Stats.BroadcastJoins != 1 {
		t.Errorf("broadcast joins = %d, want 1", res.Stats.BroadcastJoins)
	}
	if res.Stats.ShuffledRows != 0 || res.Stats.Stages != 0 {
		t.Errorf("broadcast join must move no rows, shuffled = %d stages = %d",
			res.Stats.ShuffledRows, res.Stats.Stages)
	}

	// With broadcasting disabled the fallback shuffles both sides and must
	// produce the same rows.
	eOff := testEngineWith(t, WithBroadcastJoin(false))
	resOff := collect(t, eOff, j)
	if len(resOff.Rows) != 5 {
		t.Fatalf("shuffled inner join rows = %d, want 5", len(resOff.Rows))
	}
	if resOff.Stats.Stages < 2 || resOff.Stats.ShuffledRows == 0 {
		t.Errorf("shuffled join must shuffle both sides, stages = %d shuffled = %d",
			resOff.Stats.Stages, resOff.Stats.ShuffledRows)
	}
	if resOff.Stats.BroadcastJoins != 0 {
		t.Errorf("disabled broadcast still reported %d broadcast joins", resOff.Stats.BroadcastJoins)
	}
}

func TestLeftJoin(t *testing.T) {
	e := testEngine(t)
	managers := FromRows("managers", storage.MustSchema(
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "manager", Type: storage.TypeString},
	), []storage.Row{{"north", "anna"}}, 1)
	j := salesDataset(t).Join(managers, "region", "region", LeftJoin)
	res := collect(t, e, j)
	if len(res.Rows) != 6 {
		t.Fatalf("left join rows = %d, want 6", len(res.Rows))
	}
	nullManagers := 0
	for _, rec := range res.Records() {
		if rec.IsNull("manager") {
			nullManagers++
		}
	}
	if nullManagers != 3 { // south x2 + east x1
		t.Errorf("null-extended rows = %d, want 3", nullManagers)
	}
}

func TestJoinDuplicateKeysProduceCrossProduct(t *testing.T) {
	e := testEngine(t)
	left := FromRows("l", storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeString},
		storage.Field{Name: "lv", Type: storage.TypeInt},
	), []storage.Row{{"a", int64(1)}, {"a", int64(2)}}, 2)
	right := FromRows("r", storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeString},
		storage.Field{Name: "rv", Type: storage.TypeInt},
	), []storage.Row{{"a", int64(10)}, {"a", int64(20)}, {"a", int64(30)}}, 2)
	res := collect(t, e, left.Join(right, "k", "k", InnerJoin))
	if len(res.Rows) != 6 {
		t.Errorf("duplicate-key join rows = %d, want 2*3=6", len(res.Rows))
	}
}

func TestResultTable(t *testing.T) {
	e := testEngine(t)
	res := collect(t, e, salesDataset(t).GroupBy("region").Agg(Count()))
	tbl, err := res.Table("per_region")
	if err != nil {
		t.Fatalf("Result.Table: %v", err)
	}
	if tbl.NumRows() != len(res.Rows) || tbl.Name() != "per_region" {
		t.Errorf("table rows = %d name = %q", tbl.NumRows(), tbl.Name())
	}
}

func TestEngineMetricsAccumulate(t *testing.T) {
	e := testEngine(t)
	_ = collect(t, e, salesDataset(t).GroupBy("region").Agg(Count()))
	snap := e.Metrics().Snapshot()
	if snap.CounterValue("actions") != 1 {
		t.Errorf("actions = %d", snap.CounterValue("actions"))
	}
	if snap.CounterValue("rows.read") != 6 {
		t.Errorf("rows.read = %d", snap.CounterValue("rows.read"))
	}
	if snap.CounterValue("tasks") == 0 || snap.CounterValue("rows.shuffled") == 0 {
		t.Error("tasks and shuffled rows must be recorded")
	}
}

func TestCancelledContext(t *testing.T) {
	e := testEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Collect(ctx, salesDataset(t)); err == nil {
		t.Error("cancelled context must fail")
	}
}

func TestEndToEndPipelineWithRetries(t *testing.T) {
	// A cluster with injected failures must still produce exact results.
	cfg := cluster.Uniform(2, 2, 0.2)
	cfg.MaxAttempts = 8
	cfg.Seed = 5
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	d := salesDataset(t).
		Filter("amount > 5", func(r Record) (bool, error) { return r.Float("amount") > 5, nil }).
		GroupBy("region").Agg(Sum("amount"))
	res, err := e.Collect(context.Background(), d)
	if err != nil {
		t.Fatalf("Collect with failure injection: %v", err)
	}
	total := 0.0
	for _, rec := range res.Records() {
		total += rec.Float("sum_amount")
	}
	if math.Abs(total-210) > 1e-9 {
		t.Errorf("total = %v, want 210", total)
	}
}

// Property: for random integer datasets, GroupBy(key).Agg(Sum) equals a
// sequential reference aggregation.
func TestGroupBySumMatchesReference(t *testing.T) {
	e := testEngine(t)
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeInt},
	)
	f := func(pairs []struct{ K, V int8 }) bool {
		rows := make([]storage.Row, len(pairs))
		ref := map[int64]float64{}
		for i, p := range pairs {
			k, v := int64(p.K%4), int64(p.V)
			rows[i] = storage.Row{k, v}
			ref[k] += float64(v)
		}
		d := FromRows("nums", schema, rows, 3).GroupBy("k").Agg(Sum("v"))
		res, err := e.Collect(context.Background(), d)
		if err != nil {
			return false
		}
		if len(res.Rows) != len(ref) {
			return false
		}
		for _, rec := range res.Records() {
			if math.Abs(ref[rec.Int("k")]-rec.Float("sum_v")) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Filter then Count equals counting matching rows sequentially.
func TestFilterCountMatchesReference(t *testing.T) {
	e := testEngine(t)
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	f := func(values []int16, threshold int16) bool {
		rows := make([]storage.Row, len(values))
		want := int64(0)
		for i, v := range values {
			rows[i] = storage.Row{int64(v)}
			if int64(v) > int64(threshold) {
				want++
			}
		}
		d := FromRows("vals", schema, rows, 4).Filter("gt", func(r Record) (bool, error) {
			return r.Int("v") > int64(threshold), nil
		})
		got, err := e.Count(context.Background(), d)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sort produces a permutation of its input in non-decreasing order.
func TestSortProperty(t *testing.T) {
	e := testEngine(t)
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	f := func(values []int16) bool {
		rows := make([]storage.Row, len(values))
		for i, v := range values {
			rows[i] = storage.Row{int64(v)}
		}
		res, err := e.Collect(context.Background(), FromRows("vals", schema, rows, 3).Sort(SortOrder{Column: "v"}))
		if err != nil || len(res.Rows) != len(values) {
			return false
		}
		got := make([]int, len(res.Rows))
		for i, r := range res.Rows {
			got[i] = int(r[0].(int64))
		}
		if !sort.IntsAreSorted(got) {
			return false
		}
		// Permutation check via multiset equality.
		want := make([]int, len(values))
		for i, v := range values {
			want[i] = int(v)
		}
		sort.Ints(want)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestManyPartitionsMoreThanRows(t *testing.T) {
	e := testEngine(t)
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	d := FromRows("tiny", schema, []storage.Row{{int64(1)}}, 16)
	res := collect(t, e, d.GroupBy("v").Agg(Count()))
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(res.Rows))
	}
}

func TestEmptyDatasetOperations(t *testing.T) {
	e := testEngine(t)
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	empty := FromRows("empty", schema, nil, 2)
	cases := []*Dataset{
		empty.Filter("x", func(Record) (bool, error) { return true, nil }),
		empty.GroupBy("v").Agg(Count()),
		empty.Distinct(),
		empty.Sort(SortOrder{Column: "v"}),
		empty.Limit(10),
		empty.Join(empty, "v", "v", InnerJoin),
	}
	for i, d := range cases {
		res, err := e.Collect(context.Background(), d)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if len(res.Rows) != 0 {
			t.Errorf("case %d: rows = %d, want 0", i, len(res.Rows))
		}
	}
}

func BenchmarkGroupByShuffle(b *testing.B) {
	c, _ := cluster.New(cluster.Uniform(2, 2, 0))
	e, _ := NewEngine(c)
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	rows := make([]storage.Row, 20000)
	for i := range rows {
		rows[i] = storage.Row{int64(i % 50), float64(i)}
	}
	d := FromRows("bench", schema, rows, 8).GroupBy("k").Agg(Sum("v"), Count())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Collect(context.Background(), d); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows/op")
}

// groupByBenchPlan builds the 100k-row high-cardinality group-by used by the
// aggregation ablation benchmarks: most groups hold only a handful of rows,
// so per-group state maintenance — not the scan — dominates, which is exactly
// where columnar accumulators beat boxed per-group states. Values are
// integer-valued floats so the spill arm's re-grouped partial sums stay
// bit-exact.
func groupByBenchPlan() (*Dataset, int) {
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
		storage.Field{Name: "w", Type: storage.TypeFloat},
	)
	const n = 100_000
	const keys = 8192
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			int64(i % keys),
			float64((uint64(i) * 2654435761) % 1_000_003),
			float64((uint64(i) * 2246822519) % 1_000_003),
		}
	}
	d := FromRows("aggbench", schema, rows, 8).
		GroupBy("k").
		Agg(Count(), Sum("v"), Avg("v"), StdDev("v"), Min("v"), Max("v"),
			Sum("w"), Min("w"), Max("w"))
	return d, n
}

// BenchmarkGroupByVectorized is the aggregation-core ablation pair: the
// columnar hash aggregation (GroupTable + typed accumulator vectors) against
// the boxed per-group aggState arm (WithColumnarAgg(false)), both
// non-combined so the reduce-side group loop is the measured work.
func BenchmarkGroupByVectorized(b *testing.B) {
	plan, n := groupByBenchPlan()
	for _, arm := range []struct {
		name string
		opts []EngineOption
	}{
		{"columnar", nil},
		{"boxed", []EngineOption{WithColumnarAgg(false)}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			c, _ := cluster.New(cluster.Uniform(2, 2, 0))
			e, _ := NewEngine(c, append([]EngineOption{WithMapSideCombine(false)}, arm.opts...)...)
			_, stats, err := e.CountStats(context.Background(), plan)
			if err != nil {
				b.Fatal(err)
			}
			if stats.AggGroups == 0 {
				b.Fatalf("%s arm reported no groups", arm.name)
			}
			groups := stats.AggGroups
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.CountStats(context.Background(), plan); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "rows/op")
			b.ReportMetric(float64(groups), "groups/op")
		})
	}
}

// BenchmarkGroupBySpill measures the budget-bounded hash aggregation against
// the unbounded in-memory run on the same input: the spill arm's group state
// is flushed through the hash sub-partitions and re-merged, trading disk
// traffic for a resident peak far below the in-memory run's.
func BenchmarkGroupBySpill(b *testing.B) {
	plan, n := groupByBenchPlan()
	for _, arm := range []struct {
		name   string
		budget int64
	}{
		{"in-memory", 0},
		{"spill", 1},
	} {
		b.Run(arm.name, func(b *testing.B) {
			opts := []EngineOption{WithMapSideCombine(false)}
			if arm.budget > 0 {
				opts = append(opts, WithMemoryBudget(arm.budget))
			}
			c, _ := cluster.New(cluster.Uniform(2, 2, 0))
			e, _ := NewEngine(c, opts...)
			_, stats, err := e.CountStats(context.Background(), plan)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.CountStats(context.Background(), plan); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "rows/op")
			b.ReportMetric(float64(stats.AggSpilledPartitions), "spilled_parts/op")
			b.ReportMetric(float64(stats.AggPeakResidentBytes), "agg_peak_B")
		})
	}
}
