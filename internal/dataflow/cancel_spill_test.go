package dataflow

// cancel_spill_test.go locks in the spill-store lifecycle under cancellation:
// a budgeted run cancelled mid-shuffle/sort/agg must release every
// PartitionStore/RunStore temp file and leave no engine goroutines behind.
// TMPDIR is pointed at a per-test directory so leaked spill files are
// directly observable.

import (
	"context"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// spillFiles lists the toreador spill/run temp files present in dir.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "toreador-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// waitGoroutines polls until the goroutine count returns to at most base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// cancelAfterRows returns a filter predicate that cancels the context once it
// has seen n rows, then keeps passing rows through so in-flight tasks continue
// to exercise the spill path until the cancellation propagates.
func cancelAfterRows(n int64, cancel context.CancelFunc) func(Record) (bool, error) {
	var seen int64
	return func(Record) (bool, error) {
		if atomic.AddInt64(&seen, 1) >= n {
			cancel()
		}
		return true, nil
	}
}

// TestCancelBudgetedShuffleReleasesSpill cancels a budgeted join + group-by
// mid-scan: shuffle partition stores are already spilling when the context
// dies, and every temp file must be released on the error path.
func TestCancelBudgetedShuffleReleasesSpill(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	schema := spillBenchSchema(t)
	facts := spillBenchData(4000, 64)
	dimSchema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "label", Type: storage.TypeString},
	)
	dim := make([]storage.Row, 64)
	for i := range dim {
		dim[i] = storage.Row{int64(i), "label-" + string(rune('a'+i%7))}
	}

	e := spillEngine(t, WithBroadcastJoin(false), WithMemoryBudget(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := FromRows("facts", schema, facts, 4).
		Filter("cancel mid-scan", cancelAfterRows(1000, cancel)).
		Join(FromRows("dims", dimSchema, dim, 2), "k", "k", InnerJoin).
		GroupBy("tag").
		Agg(Count(), Sum("v"))

	if _, err := e.Collect(ctx, plan); err == nil {
		t.Fatal("cancelled budgeted run must fail")
	}
	waitGoroutines(t, base)
	if left := spillFiles(t, tmp); len(left) != 0 {
		t.Errorf("cancelled shuffle leaked spill files: %v", left)
	}
}

// TestCancelBudgetedSortReleasesRuns cancels a budgeted multi-key sort
// mid-scan: the external sort's per-partition RunStores must be released even
// when the merge never happens.
func TestCancelBudgetedSortReleasesRuns(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	schema := spillBenchSchema(t)
	data := spillBenchData(20_000, 137)
	e := spillEngine(t, WithMemoryBudget(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := FromRows("s", schema, data, 4).
		Filter("cancel mid-scan", cancelAfterRows(6000, cancel)).
		Sort(SortOrder{Column: "v"}, SortOrder{Column: "k", Descending: true}, SortOrder{Column: "tag"})

	if _, err := e.Collect(ctx, plan); err == nil {
		t.Fatal("cancelled budgeted sort must fail")
	}
	waitGoroutines(t, base)
	if left := spillFiles(t, tmp); len(left) != 0 {
		t.Errorf("cancelled sort leaked run/spill files: %v", left)
	}
}

// TestCancelBudgetedAggReleasesSubPartitions cancels a budgeted non-combined
// group-by mid-scan: the hash aggregation's overflow sub-partition stores must
// not outlive the failed run.
func TestCancelBudgetedAggReleasesSubPartitions(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	schema := spillBenchSchema(t)
	data := spillBenchData(10_000, 2000)
	e := spillEngine(t, WithMapSideCombine(false), WithMemoryBudget(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := FromRows("g", schema, data, 4).
		Filter("cancel mid-scan", cancelAfterRows(4000, cancel)).
		GroupBy("k").
		Agg(Count(), Sum("v"), CountDistinct("tag"))

	if _, err := e.Collect(ctx, plan); err == nil {
		t.Fatal("cancelled budgeted group-by must fail")
	}
	waitGoroutines(t, base)
	if left := spillFiles(t, tmp); len(left) != 0 {
		t.Errorf("cancelled group-by leaked spill files: %v", left)
	}
}

// TestCompletedBudgetedRunLeavesNoSpill is the control: the same budgeted
// plans run to completion must also end with an empty TMPDIR, proving the
// observation method catches real leaks rather than vacuously passing.
func TestCompletedBudgetedRunLeavesNoSpill(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	schema := spillBenchSchema(t)
	data := spillBenchData(5000, 40)
	e := spillEngine(t, WithMapSideCombine(false), WithMemoryBudget(1))
	res, err := e.Collect(context.Background(), FromRows("g", schema, data, 4).
		GroupBy("k").Agg(Count(), Sum("v")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBatches == 0 {
		t.Fatal("control run must actually spill for the leak check to mean anything")
	}
	if left := spillFiles(t, tmp); len(left) != 0 {
		t.Errorf("completed budgeted run left spill files: %v", left)
	}
}
