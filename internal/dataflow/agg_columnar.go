package dataflow

// agg_columnar.go implements the columnar group-by core (WithColumnarAgg,
// default on): a storage.GroupTable maps keys to dense group ids and every
// aggregation accumulates into typed vectors indexed by group id (aggVecs),
// so the per-row hot loop is one tight typed pass per aggregation instead of
// per-row interface dispatch over boxed aggState objects.
//
// Three paths are built on the same accumulators:
//
//   - the combined map side (evalGroupByCombinedColumnar) accumulates each
//     input batch columnar, then converts group state back to aggStates and
//     feeds the unchanged shuffle+merge tail (mergeGroupPartials), so results
//     stay bit-identical to the boxed combine;
//   - the non-combined hash aggregation (evalGroupByHash) folds shuffled
//     bucket batches into one table per bucket and emits the output as a
//     columnar batch whose key columns are shared zero-copy from the table;
//   - under WithMemoryBudget the non-combined path becomes spill-aware: when
//     the resident group state exceeds the budget it is flushed as
//     partial-state rows, hash-partitioned into aggSpillPartitions
//     sub-partitions of a PartitionStore (which re-spills them through the
//     batch codec), runs-then-merge style like storage.RunStore: a second
//     pass re-aggregates each sub-partition, whose peak state is ~1/P of the
//     group universe. A per-group first-seen sequence number travels with the
//     partials so the merged output is re-sorted into the exact emission
//     order of the in-memory paths.
//
// All aggregation semantics — null skipping, CompareValues min/max ordering
// (numerics through float64, NaN never replacing, first value winning ties),
// AsFloat coercions — replicate aggregate.go exactly; the equivalence suite
// holds every mode bit-identical. The one caveat is float summation order:
// partial-state flushes regroup additions, which is only bit-stable when the
// data sums exactly (the algebraic identity all spill tests rely on).

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// aggSpillPartitions is the number of hash sub-partitions the spilling hash
// aggregation re-partitions overflowing group state into. The key hash is run
// through a finalizing mixer first: the raw low bits already chose the
// shuffle bucket (PartitionOfHash is h % nParts), and FNV-1a barely stirs the
// bits above 32 for short keys, so any fixed bit range of the raw hash would
// leave the sub-partitions skewed or correlated with the bucket split.
const aggSpillPartitions = 16

// aggBudgetCheckRows is the sub-range granularity at which the budgeted hash
// aggregation re-checks its resident state against the memory budget, so one
// flush epoch holds at most this many rows' worth of new groups.
const aggBudgetCheckRows = 256

// aggSubPartition maps a group's key hash to its spill sub-partition through
// a 64-bit avalanche mixer (the Murmur3 finalizer), so every input bit
// reaches the partition choice.
func aggSubPartition(hash uint64) int {
	h := hash
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % aggSpillPartitions)
}

// aggKeyLayout derives the key-column schema (the output schema's key prefix)
// and the input column index of each key.
func aggKeyLayout(n *groupByNode, inSchema *storage.Schema) (*storage.Schema, []int, error) {
	fields := make([]storage.Field, len(n.keys))
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		fields[i] = n.out.Field(i)
		keyIdx[i] = inSchema.IndexOf(k)
	}
	keySchema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, nil, fmt.Errorf("dataflow: group-by key layout: %w", err)
	}
	return keySchema, keyIdx, nil
}

// ---------------------------------------------------------------------------
// aggVecs: one aggregation's state across all groups, as typed vectors
// ---------------------------------------------------------------------------

// aggVecs holds one aggregation's state for every group id: counts, sums and
// squared sums as dense numeric vectors, min/max extremes as one typed vector
// (selected by the input column type) plus a has-value bitmap, and
// count-distinct sets as lazily allocated maps. It is the columnar
// counterpart of a column of *aggState objects.
type aggVecs struct {
	spec    Aggregation
	colIdx  int
	extType storage.FieldType

	counts []int64
	sums   []float64
	sumSqs []float64

	has       []bool
	extInts   []int64
	extFloats []float64
	extStrs   []string
	extBools  []bool

	distinct []map[string]struct{}
}

func newAggVecs(spec Aggregation, in *storage.Schema) *aggVecs {
	a := &aggVecs{spec: spec, colIdx: -1}
	if spec.Column != "" {
		a.colIdx = in.IndexOf(spec.Column)
	}
	if a.colIdx >= 0 {
		a.extType = in.Field(a.colIdx).Type
	}
	return a
}

func newAggVecSet(aggs []Aggregation, in *storage.Schema) []*aggVecs {
	out := make([]*aggVecs, len(aggs))
	for i, a := range aggs {
		out[i] = newAggVecs(a, in)
	}
	return out
}

// growZero extends s to length n with zero values, reusing spare capacity
// (heap allocations arrive zeroed, and accumulator vectors are never
// truncated, so the region beyond len is always still zero).
func growZero[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	ns := make([]T, n, n+n/2+16)
	copy(ns, s)
	return ns
}

// ensure grows the state vectors to cover group ids [0, n).
func (a *aggVecs) ensure(n int) {
	a.counts = growZero(a.counts, n)
	switch a.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		a.sums = growZero(a.sums, n)
		a.sumSqs = growZero(a.sumSqs, n)
	case AggMin, AggMax:
		a.has = growZero(a.has, n)
		switch a.extType {
		case storage.TypeInt, storage.TypeTime:
			a.extInts = growZero(a.extInts, n)
		case storage.TypeFloat:
			a.extFloats = growZero(a.extFloats, n)
		case storage.TypeString:
			a.extStrs = growZero(a.extStrs, n)
		case storage.TypeBool:
			a.extBools = growZero(a.extBools, n)
		}
	case AggCountDistinct:
		a.distinct = growZero(a.distinct, n)
	}
}

func ensureAggVecs(accs []*aggVecs, n int) {
	for _, a := range accs {
		a.ensure(n)
	}
}

// memSize estimates the resident footprint of the state vectors.
func (a *aggVecs) memSize() int64 {
	total := 8 * int64(len(a.counts)+len(a.sums)+len(a.sumSqs)+len(a.extInts)+len(a.extFloats))
	total += int64(len(a.has) + len(a.extBools))
	for _, s := range a.extStrs {
		total += 16 + int64(len(s))
	}
	for _, m := range a.distinct {
		total += 8
		for k := range m {
			total += 48 + int64(len(k))
		}
	}
	return total
}

func aggVecsSize(accs []*aggVecs) int64 {
	var total int64
	for _, a := range accs {
		total += a.memSize()
	}
	return total
}

// updateBatch folds one input batch into the state vectors: ids[i] is the
// group id of batch row i. The kind × column-type dispatch happens once per
// batch; the inner loops read the typed vectors directly.
func (a *aggVecs) updateBatch(b *storage.ColumnBatch, ids []int32, base int) {
	if a.spec.Kind == AggCount {
		for _, id := range ids {
			a.counts[id]++
		}
		return
	}
	if a.colIdx < 0 || a.colIdx >= b.Width() {
		return
	}
	col := b.Column(a.colIdx)
	switch a.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		a.updateNumeric(b, col, ids, base)
	case AggMin:
		a.foldMin(col, ids, base, true)
	case AggMax:
		a.foldMax(col, ids, base, true)
	case AggCountDistinct:
		a.updateDistinct(b, col, ids, base)
	}
}

func (a *aggVecs) updateNumeric(b *storage.ColumnBatch, col *storage.Column, ids []int32, base int) {
	switch col.Type() {
	case storage.TypeFloat:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			f := col.Float(i)
			a.counts[id]++
			a.sums[id] += f
			a.sumSqs[id] += f * f
		}
	case storage.TypeInt, storage.TypeTime:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			f := float64(col.Int(i))
			a.counts[id]++
			a.sums[id] += f
			a.sumSqs[id] += f * f
		}
	case storage.TypeBool:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			var f float64
			if col.Bool(i) {
				f = 1
			}
			a.counts[id]++
			a.sums[id] += f
			a.sumSqs[id] += f * f
		}
	default:
		// Strings (and anything exotic) go through FloatAt, which matches
		// AsFloat: unparsable cells still count and contribute zero, exactly
		// like the boxed update.
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			f, _ := b.FloatAt(i, a.colIdx)
			a.counts[id]++
			a.sums[id] += f
			a.sumSqs[id] += f * f
		}
	}
}

// foldMin folds column cells into the per-group minimum, replicating
// CompareValues ordering: numerics compare through float64 (so NaN never
// replaces an extreme and ties keep the first value), strings lexically,
// bools false < true. addCount mirrors the boxed update, which counts every
// considered (non-null) cell; the spill merge replays counts separately and
// passes false.
func (a *aggVecs) foldMin(col *storage.Column, ids []int32, base int, addCount bool) {
	switch a.extType {
	case storage.TypeInt, storage.TypeTime:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Int(i)
			if !a.has[id] {
				a.has[id] = true
				a.extInts[id] = v
			} else if float64(v) < float64(a.extInts[id]) {
				a.extInts[id] = v
			}
		}
	case storage.TypeFloat:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Float(i)
			if !a.has[id] {
				a.has[id] = true
				a.extFloats[id] = v
			} else if v < a.extFloats[id] {
				a.extFloats[id] = v
			}
		}
	case storage.TypeString:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Str(i)
			if !a.has[id] {
				a.has[id] = true
				a.extStrs[id] = v
			} else if v < a.extStrs[id] {
				a.extStrs[id] = v
			}
		}
	case storage.TypeBool:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Bool(i)
			if !a.has[id] {
				a.has[id] = true
				a.extBools[id] = v
			} else if !v && a.extBools[id] {
				a.extBools[id] = false
			}
		}
	}
}

// foldMax mirrors foldMin with the comparison reversed.
func (a *aggVecs) foldMax(col *storage.Column, ids []int32, base int, addCount bool) {
	switch a.extType {
	case storage.TypeInt, storage.TypeTime:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Int(i)
			if !a.has[id] {
				a.has[id] = true
				a.extInts[id] = v
			} else if float64(v) > float64(a.extInts[id]) {
				a.extInts[id] = v
			}
		}
	case storage.TypeFloat:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Float(i)
			if !a.has[id] {
				a.has[id] = true
				a.extFloats[id] = v
			} else if v > a.extFloats[id] {
				a.extFloats[id] = v
			}
		}
	case storage.TypeString:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Str(i)
			if !a.has[id] {
				a.has[id] = true
				a.extStrs[id] = v
			} else if v > a.extStrs[id] {
				a.extStrs[id] = v
			}
		}
	case storage.TypeBool:
		for j, id := range ids {
			i := base + j
			if col.Null(i) {
				continue
			}
			if addCount {
				a.counts[id]++
			}
			v := col.Bool(i)
			if !a.has[id] {
				a.has[id] = true
				a.extBools[id] = v
			} else if v && !a.extBools[id] {
				a.extBools[id] = true
			}
		}
	}
}

func (a *aggVecs) updateDistinct(b *storage.ColumnBatch, col *storage.Column, ids []int32, base int) {
	for j, id := range ids {
		i := base + j
		if col.Null(i) {
			continue
		}
		a.counts[id]++
		set := a.distinct[id]
		if set == nil {
			set = make(map[string]struct{})
			a.distinct[id] = set
		}
		set[b.StringAt(i, a.colIdx)] = struct{}{}
	}
}

// extValue boxes group g's min/max extreme (nil when the group saw no
// non-null value).
func (a *aggVecs) extValue(g int) storage.Value {
	if g >= len(a.has) || !a.has[g] {
		return nil
	}
	switch a.extType {
	case storage.TypeInt, storage.TypeTime:
		return a.extInts[g]
	case storage.TypeFloat:
		return a.extFloats[g]
	case storage.TypeString:
		return a.extStrs[g]
	case storage.TypeBool:
		return a.extBools[g]
	default:
		return nil
	}
}

// result computes group g's final value with aggState.result semantics.
func (a *aggVecs) result(g int) storage.Value {
	switch a.spec.Kind {
	case AggCount:
		return a.counts[g]
	case AggSum:
		return a.sums[g]
	case AggAvg:
		if a.counts[g] == 0 {
			return nil
		}
		return a.sums[g] / float64(a.counts[g])
	case AggStdDev:
		return stdDevResult(a.counts[g], a.sums[g], a.sumSqs[g])
	case AggMin, AggMax:
		return a.extValue(g)
	case AggCountDistinct:
		return int64(len(a.distinct[g]))
	default:
		return nil
	}
}

// toState converts group g's vector slots back into a boxed aggState, the
// currency of the combined path's shuffle+merge tail. Distinct sets transfer
// by reference (a nil set stays nil; aggState.merge and result tolerate it).
func (a *aggVecs) toState(g int) *aggState {
	st := &aggState{spec: a.spec, colIdx: a.colIdx, count: a.counts[g]}
	switch a.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		st.sum, st.sumSq = a.sums[g], a.sumSqs[g]
	case AggMin:
		st.min = a.extValue(g)
	case AggMax:
		st.max = a.extValue(g)
	case AggCountDistinct:
		st.distinct = a.distinct[g]
	}
	return st
}

// appendResult appends group g's result to an output column of the
// aggregation's output type, typed (no boxing for numeric results).
func (a *aggVecs) appendResult(c *storage.Column, g int) {
	switch a.spec.Kind {
	case AggCount:
		c.AppendInt(a.counts[g])
	case AggCountDistinct:
		c.AppendInt(int64(len(a.distinct[g])))
	case AggSum:
		c.AppendFloat(a.sums[g])
	case AggAvg:
		if a.counts[g] == 0 {
			c.AppendNull(g)
			return
		}
		c.AppendFloat(a.sums[g] / float64(a.counts[g]))
	case AggStdDev:
		if v := stdDevResult(a.counts[g], a.sums[g], a.sumSqs[g]); v == nil {
			c.AppendNull(g)
		} else {
			c.AppendFloat(v.(float64))
		}
	case AggMin, AggMax:
		if g >= len(a.has) || !a.has[g] {
			c.AppendNull(g)
			return
		}
		switch a.extType {
		case storage.TypeInt, storage.TypeTime:
			c.AppendInt(a.extInts[g])
		case storage.TypeFloat:
			c.AppendFloat(a.extFloats[g])
		case storage.TypeString:
			c.AppendStr(a.extStrs[g])
		case storage.TypeBool:
			c.AppendBool(a.extBools[g])
		default:
			c.AppendNull(g)
		}
	default:
		c.AppendNull(g)
	}
}

func stdDevResult(count int64, sum, sumSq float64) storage.Value {
	st := aggState{spec: Aggregation{Kind: AggStdDev}, count: count, sum: sum, sumSq: sumSq}
	return st.result()
}

// emitAggBatch materialises the aggregation output as one columnar batch: key
// columns are shared zero-copy from the group table (group id order is
// first-seen order, matching the row paths' emission order) and one typed
// result column is built per aggregation.
func emitAggBatch(n *groupByNode, table *storage.GroupTable, accs []*aggVecs) (*storage.ColumnBatch, error) {
	groups := table.Groups()
	nKeys := len(n.keys)
	cols := make([]storage.Column, n.out.Len())
	kr := table.KeyRows()
	for j := 0; j < nKeys; j++ {
		cols[j] = *kr.Column(j)
	}
	for j, a := range accs {
		c := storage.NewColumnBuilder(n.out.Field(nKeys+j).Type, groups)
		for g := 0; g < groups; g++ {
			a.appendResult(&c, g)
		}
		cols[nKeys+j] = c
	}
	return storage.BatchOfColumns(n.out, groups, cols)
}

// ---------------------------------------------------------------------------
// Combined map side (columnar)
// ---------------------------------------------------------------------------

// evalGroupByCombinedColumnar is the columnar-accumulator map side of the
// combined group-by: each input batch is grouped through a GroupTable and
// aggregated in typed vectors, then the per-group state is converted back to
// partialGroups feeding the unchanged shuffle+merge tail. Because each
// group's cells fold in the same order as the boxed map side, the partials —
// and therefore the merged output — are bit-identical to it.
func (e *Engine) evalGroupByCombinedColumnar(ctx context.Context, n *groupByNode,
	in []*storage.ColumnBatch, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	inSchema := n.child.schema()
	keySchema, keyIdx, err := aggKeyLayout(n, inSchema)
	if err != nil {
		return nil, err
	}
	partials := make([][]*partialGroup, len(in))
	tasks := make([]cluster.Task, len(in))
	inputRows := countBatchRows(in)
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("groupby-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				b := in[i]
				table := storage.NewGroupTable(keySchema, keyIdx, enc.Clone())
				accs := newAggVecSet(n.aggs, inSchema)
				ids := table.MapBatch(b, nil)
				ensureAggVecs(accs, table.Groups())
				for _, a := range accs {
					a.updateBatch(b, ids, 0)
				}
				st.noteAggPeak(table.MemSize() + aggVecsSize(accs))
				kr := table.KeyRows()
				order := make([]*partialGroup, table.Groups())
				for g := range order {
					states := make([]*aggState, len(accs))
					for j, a := range accs {
						states[j] = a.toState(g)
					}
					order[g] = &partialGroup{
						key: table.Key(g), hash: table.Hash(g),
						keyValues: kr.Row(g), states: states,
					}
				}
				partials[i] = order
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby-combine: %w", err)
	}
	return e.mergeGroupPartials(ctx, partials, inputRows, st)
}

// ---------------------------------------------------------------------------
// Non-combined hash aggregation (in-memory and spilling)
// ---------------------------------------------------------------------------

// evalGroupByHash is the non-combined columnar group-by: rows cross the
// shuffle boundary through a partition store, and one task per bucket folds
// the restored batches through a GroupTable into typed accumulators. Without
// a budget the bucket's groups are emitted directly as a columnar batch;
// under WithMemoryBudget the group state itself is spill-aware (see
// hashAggPartition).
func (e *Engine) evalGroupByHash(ctx context.Context, n *groupByNode,
	in []*storage.ColumnBatch, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	inSchema := n.child.schema()
	keySchema, keyIdx, err := aggKeyLayout(n, inSchema)
	if err != nil {
		return nil, err
	}
	spillSchema, err := aggSpillSchema(keySchema, n.aggs, inSchema)
	if err != nil {
		return nil, err
	}
	store, err := e.shuffleBatches(in, inSchema, enc, st)
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(store)
	nParts := store.Partitions()
	out := make([]part, nParts)
	tasks := make([]cluster.Task, nParts)
	for b := range tasks {
		b := b
		tasks[b] = cluster.Task{
			Name: fmt.Sprintf("groupby[%d]", b),
			Fn: func(ctx context.Context, node cluster.Node) error {
				res, err := e.hashAggPartition(n, b, store, enc, keySchema, keyIdx, spillSchema, inSchema, st)
				if err != nil {
					return err
				}
				out[b] = res
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby: %w", err)
	}
	return out, nil
}

// hashAggPartition aggregates one shuffle bucket. The build loop maps each
// restored batch to dense group ids and runs the typed update kernels; under
// a memory budget, whenever the resident group state (table + accumulator
// vectors) exceeds it, the state is flushed as partial rows into an aggSpill
// and the table reset — so peak resident state stays bounded by the budget
// plus one batch's worth of fresh groups. If nothing flushed, groups are
// emitted directly; otherwise the sub-partitions are merged and re-ordered by
// first-seen sequence so the output matches the in-memory emission order.
func (e *Engine) hashAggPartition(n *groupByNode, bucket int, store *storage.PartitionStore,
	enc *storage.KeyEncoder, keySchema *storage.Schema, keyIdx []int,
	spillSchema *storage.Schema, inSchema *storage.Schema, st *execState) (part, error) {

	table := storage.NewGroupTable(keySchema, keyIdx, enc.Clone())
	accs := newAggVecSet(n.aggs, inSchema)
	var seqs []int64
	var nextSeq int64
	var sp *aggSpill
	var ids []int32
	budget := e.memoryBudget
	// Under a budget the batch is consumed in sub-ranges with a budget check
	// between them, so the resident epoch is bounded even when a bucket's
	// whole input arrives as one shuffle chunk; without one, each batch is
	// one range and the check never runs.
	step := 1 << 30
	if budget > 0 {
		step = aggBudgetCheckRows
	}
	err := store.EachBatch(bucket, func(cb *storage.ColumnBatch) error {
		rows := cb.Len()
		for lo := 0; lo < rows; lo += step {
			hi := lo + step
			if hi > rows {
				hi = rows
			}
			old := table.Groups()
			ids = table.MapRange(cb, lo, hi, ids)
			groups := table.Groups()
			ensureAggVecs(accs, groups)
			for g := old; g < groups; g++ {
				seqs = append(seqs, nextSeq)
				nextSeq++
			}
			for _, a := range accs {
				a.updateBatch(cb, ids, lo)
			}
			if budget > 0 && groups > 0 {
				if size := table.MemSize() + aggVecsSize(accs); size > budget {
					st.noteAggPeak(size)
					if sp == nil {
						var err error
						if sp, err = newAggSpill(spillSchema, len(n.keys), budget, e.codec(), e.spillDir); err != nil {
							return err
						}
					}
					if err := sp.flush(table, accs, seqs); err != nil {
						return err
					}
					table.Reset()
					accs = newAggVecSet(n.aggs, inSchema)
					seqs = seqs[:0]
				}
			}
		}
		return nil
	})
	if err != nil {
		if sp != nil {
			st.releaseStore(sp.store)
		}
		return part{}, err
	}
	if sp == nil {
		st.noteAggPeak(table.MemSize() + aggVecsSize(accs))
		st.addAggGroups(table.Groups())
		b, err := emitAggBatch(n, table, accs)
		if err != nil {
			return part{}, err
		}
		if b.Len() > 0 {
			st.addBatches(1, b.Len())
		}
		return batchPart(b), nil
	}
	defer st.releaseStore(sp.store)
	if err := sp.flush(table, accs, seqs); err != nil {
		return part{}, err
	}
	rows, partsMerged, err := sp.mergeSpilled(n, keySchema, inSchema, st.noteAggPeak)
	if err != nil {
		return part{}, err
	}
	st.addAggGroups(len(rows))
	st.addAggSpilledParts(partsMerged)
	b, err := storage.BatchFromRows(n.out, rows)
	if err != nil {
		return part{}, err
	}
	if b.Len() > 0 {
		st.addBatches(1, b.Len())
	}
	return batchPart(b), nil
}

// ---------------------------------------------------------------------------
// Spill partitioning of overflowing group state
// ---------------------------------------------------------------------------

// aggSpill holds the partial-state rows of flushed group-state epochs,
// hash-sub-partitioned into a PartitionStore that re-spills them to disk
// through the batch codec under the same memory budget.
type aggSpill struct {
	schema *storage.Schema
	store  *storage.PartitionStore
	nKeys  int
}

func newAggSpill(spillSchema *storage.Schema, nKeys int, budget int64, codec storage.CodecOptions, spillDir string) (*aggSpill, error) {
	ps, err := storage.NewPartitionStore(spillSchema, aggSpillPartitions,
		storage.WithMemoryBudget(budget), storage.WithCodec(codec),
		storage.WithSpillDir(spillDir))
	if err != nil {
		return nil, err
	}
	return &aggSpill{schema: spillSchema, store: ps, nKeys: nKeys}, nil
}

// aggSpillSchema builds the partial-state row layout: the key columns (all
// nullable — a group key may legitimately be null), the group's first-seen
// sequence number, then per aggregation a count column plus kind-specific
// state (sum+sumSq, a typed nullable extreme, or an encoded distinct set).
func aggSpillSchema(keySchema *storage.Schema, aggs []Aggregation, in *storage.Schema) (*storage.Schema, error) {
	fields := make([]storage.Field, 0, keySchema.Len()+1+3*len(aggs))
	for i := 0; i < keySchema.Len(); i++ {
		fields = append(fields, storage.Field{
			Name: fmt.Sprintf("k%d", i), Type: keySchema.Field(i).Type, Nullable: true,
		})
	}
	fields = append(fields, storage.Field{Name: "seq", Type: storage.TypeInt})
	for j, a := range aggs {
		fields = append(fields, storage.Field{Name: fmt.Sprintf("a%d_count", j), Type: storage.TypeInt})
		switch a.Kind {
		case AggSum, AggAvg, AggStdDev:
			fields = append(fields,
				storage.Field{Name: fmt.Sprintf("a%d_sum", j), Type: storage.TypeFloat},
				storage.Field{Name: fmt.Sprintf("a%d_sumsq", j), Type: storage.TypeFloat})
		case AggMin, AggMax:
			t := storage.TypeFloat
			if idx := in.IndexOf(a.Column); idx >= 0 {
				t = in.Field(idx).Type
			}
			fields = append(fields, storage.Field{Name: fmt.Sprintf("a%d_ext", j), Type: t, Nullable: true})
		case AggCountDistinct:
			fields = append(fields, storage.Field{Name: fmt.Sprintf("a%d_set", j), Type: storage.TypeString})
		}
	}
	return storage.NewSchema(fields...)
}

// appendSpillValues appends group g's partial state to a spill row.
func (a *aggVecs) appendSpillValues(row storage.Row, g int) storage.Row {
	row = append(row, a.counts[g])
	switch a.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		row = append(row, a.sums[g], a.sumSqs[g])
	case AggMin, AggMax:
		row = append(row, a.extValue(g))
	case AggCountDistinct:
		row = append(row, encodeDistinctSet(a.distinct[g]))
	}
	return row
}

// flush serialises every group of the current epoch as one partial-state row,
// appended to its hash sub-partition.
func (sp *aggSpill) flush(table *storage.GroupTable, accs []*aggVecs, seqs []int64) error {
	groups := table.Groups()
	if groups == 0 {
		return nil
	}
	batches := make([]*storage.ColumnBatch, aggSpillPartitions)
	kr := table.KeyRows()
	width := sp.schema.Len()
	for g := 0; g < groups; g++ {
		p := aggSubPartition(table.Hash(g))
		bb := batches[p]
		if bb == nil {
			bb = storage.NewColumnBatch(sp.schema, 0)
			batches[p] = bb
		}
		row := make(storage.Row, 0, width)
		row = append(row, kr.Row(g)...)
		row = append(row, seqs[g])
		for _, a := range accs {
			row = a.appendSpillValues(row, g)
		}
		if err := bb.AppendRow(row); err != nil {
			return err
		}
	}
	for p, bb := range batches {
		if bb == nil {
			continue
		}
		if err := sp.store.Append(p, bb); err != nil {
			return err
		}
	}
	return nil
}

// mergeSpillBatch folds one partial-state batch into the merge accumulators,
// starting at spill column col and returning the column after this
// aggregation's state. Counts add, sums add, extremes compare with
// aggState.merge semantics (a partial replaces only when strictly better, so
// the earliest extreme wins ties), distinct sets union.
func (a *aggVecs) mergeSpillBatch(pb *storage.ColumnBatch, ids []int32, col int) int {
	cnt := pb.Column(col)
	col++
	for i, id := range ids {
		a.counts[id] += cnt.Int(i)
	}
	switch a.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		sum, sq := pb.Column(col), pb.Column(col+1)
		col += 2
		for i, id := range ids {
			a.sums[id] += sum.Float(i)
			a.sumSqs[id] += sq.Float(i)
		}
	case AggMin:
		a.foldMin(pb.Column(col), ids, 0, false)
		col++
	case AggMax:
		a.foldMax(pb.Column(col), ids, 0, false)
		col++
	case AggCountDistinct:
		set := pb.Column(col)
		col++
		for i, id := range ids {
			if s := set.Str(i); s != "" {
				a.distinct[id] = decodeDistinctSet(s, a.distinct[id])
			}
		}
	}
	return col
}

// mergeSpilled re-aggregates each sub-partition's partial-state rows into a
// fresh merge table — peak resident state is one sub-partition's group slice,
// ~1/aggSpillPartitions of the bucket's groups — and emits the final rows
// sorted by first-seen sequence, restoring the exact in-memory emission
// order. partsMerged reports how many sub-partitions held spilled state.
func (sp *aggSpill) mergeSpilled(n *groupByNode, keySchema *storage.Schema,
	inSchema *storage.Schema, notePeak func(int64)) ([]storage.Row, int, error) {

	keyIdx := make([]int, sp.nKeys)
	keyCols := make([]string, sp.nKeys)
	for i := range keyIdx {
		keyIdx[i] = i
		keyCols[i] = fmt.Sprintf("k%d", i)
	}
	enc, err := storage.NewKeyEncoder(sp.schema, keyCols...)
	if err != nil {
		return nil, 0, err
	}
	type seqRow struct {
		seq int64
		row storage.Row
	}
	var all []seqRow
	partsMerged := 0
	var ids []int32
	for p := 0; p < aggSpillPartitions; p++ {
		if sp.store.PartitionRows(p) == 0 {
			continue
		}
		partsMerged++
		table := storage.NewGroupTable(keySchema, keyIdx, enc.Clone())
		accs := newAggVecSet(n.aggs, inSchema)
		var seqs []int64
		err := sp.store.EachBatch(p, func(pb *storage.ColumnBatch) error {
			old := table.Groups()
			ids = table.MapBatch(pb, ids)
			groups := table.Groups()
			ensureAggVecs(accs, groups)
			for g := old; g < groups; g++ {
				seqs = append(seqs, -1)
			}
			seqCol := pb.Column(sp.nKeys)
			for i, id := range ids {
				if seqs[id] == -1 {
					seqs[id] = seqCol.Int(i)
				}
			}
			col := sp.nKeys + 1
			for _, a := range accs {
				col = a.mergeSpillBatch(pb, ids, col)
			}
			notePeak(table.MemSize() + aggVecsSize(accs))
			return nil
		})
		if err != nil {
			return nil, 0, err
		}
		kr := table.KeyRows()
		for g := 0; g < table.Groups(); g++ {
			row := make(storage.Row, 0, n.out.Len())
			row = append(row, kr.Row(g)...)
			for _, a := range accs {
				row = append(row, a.result(g))
			}
			all = append(all, seqRow{seq: seqs[g], row: row})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	rows := make([]storage.Row, len(all))
	for i, sr := range all {
		rows[i] = sr.row
	}
	return rows, partsMerged, nil
}

// encodeDistinctSet serialises a distinct set as sorted length-prefixed
// entries (sorted so the spilled bytes are deterministic run to run).
func encodeDistinctSet(set map[string]struct{}) string {
	if len(set) == 0 {
		return ""
	}
	entries := make([]string, 0, len(set))
	for k := range set {
		entries = append(entries, k)
	}
	sort.Strings(entries)
	size := 0
	for _, s := range entries {
		size += len(s) + binary.MaxVarintLen64
	}
	buf := make([]byte, 0, size)
	for _, s := range entries {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return string(buf)
}

// decodeDistinctSet unions an encoded set into dst (allocating it on first
// use), returning dst.
func decodeDistinctSet(s string, dst map[string]struct{}) map[string]struct{} {
	b := []byte(s)
	for len(b) > 0 {
		l, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b)-k) < l {
			break
		}
		if dst == nil {
			dst = make(map[string]struct{})
		}
		dst[string(b[k:k+int(l)])] = struct{}{}
		b = b[k+int(l):]
	}
	return dst
}
