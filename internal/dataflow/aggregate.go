package dataflow

import (
	"fmt"
	"math"

	"repro/internal/storage"
)

// AggKind enumerates the supported aggregation functions.
type AggKind int

const (
	// AggCount counts rows in the group.
	AggCount AggKind = iota
	// AggSum sums a numeric column.
	AggSum
	// AggAvg averages a numeric column.
	AggAvg
	// AggMin takes the minimum of a column.
	AggMin
	// AggMax takes the maximum of a column.
	AggMax
	// AggCountDistinct counts distinct values of a column.
	AggCountDistinct
	// AggStdDev computes the population standard deviation of a column.
	AggStdDev
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCountDistinct:
		return "count_distinct"
	case AggStdDev:
		return "stddev"
	default:
		return fmt.Sprintf("agg(%d)", int(k))
	}
}

// Aggregation describes one aggregate computed per group.
type Aggregation struct {
	// Kind selects the aggregation function.
	Kind AggKind
	// Column is the input column; ignored for AggCount.
	Column string
	// As optionally overrides the output column name.
	As string
}

// Convenience constructors.

// Count counts rows per group.
func Count() Aggregation { return Aggregation{Kind: AggCount, As: "count"} }

// Sum sums col per group.
func Sum(col string) Aggregation { return Aggregation{Kind: AggSum, Column: col} }

// Avg averages col per group.
func Avg(col string) Aggregation { return Aggregation{Kind: AggAvg, Column: col} }

// Min takes the per-group minimum of col.
func Min(col string) Aggregation { return Aggregation{Kind: AggMin, Column: col} }

// Max takes the per-group maximum of col.
func Max(col string) Aggregation { return Aggregation{Kind: AggMax, Column: col} }

// CountDistinct counts distinct values of col per group.
func CountDistinct(col string) Aggregation { return Aggregation{Kind: AggCountDistinct, Column: col} }

// StdDev computes the per-group population standard deviation of col.
func StdDev(col string) Aggregation { return Aggregation{Kind: AggStdDev, Column: col} }

// Named renames the output column.
func (a Aggregation) Named(name string) Aggregation {
	a.As = name
	return a
}

// OutputName returns the name of the produced column.
func (a Aggregation) OutputName() string {
	if a.As != "" {
		return a.As
	}
	if a.Kind == AggCount {
		return "count"
	}
	return fmt.Sprintf("%s_%s", a.Kind, a.Column)
}

func (a Aggregation) validate(in *storage.Schema) error {
	if a.Kind == AggCount {
		return nil
	}
	if a.Column == "" {
		return fmt.Errorf("%w: aggregation %s requires a column", ErrBadPlan, a.Kind)
	}
	if !in.Has(a.Column) {
		return fmt.Errorf("%w: aggregation column %q", storage.ErrUnknownField, a.Column)
	}
	return nil
}

func (a Aggregation) outputType(in *storage.Schema) storage.FieldType {
	switch a.Kind {
	case AggCount, AggCountDistinct:
		return storage.TypeInt
	case AggSum, AggAvg, AggStdDev:
		return storage.TypeFloat
	case AggMin, AggMax:
		f, err := in.FieldByName(a.Column)
		if err != nil {
			return storage.TypeFloat
		}
		return f.Type
	default:
		return storage.TypeFloat
	}
}

// aggState accumulates one aggregation over one group.
type aggState struct {
	spec     Aggregation
	colIdx   int
	count    int64
	sum      float64
	sumSq    float64
	min      storage.Value
	max      storage.Value
	distinct map[string]struct{}
}

func newAggState(spec Aggregation, in *storage.Schema) *aggState {
	st := &aggState{spec: spec, colIdx: -1}
	if spec.Column != "" {
		st.colIdx = in.IndexOf(spec.Column)
	}
	if spec.Kind == AggCountDistinct {
		st.distinct = make(map[string]struct{})
	}
	return st
}

func (st *aggState) update(row storage.Row) {
	if st.spec.Kind == AggCount {
		st.count++
		return
	}
	if st.colIdx < 0 || st.colIdx >= len(row) {
		return
	}
	v := row[st.colIdx]
	if v == nil {
		return
	}
	st.count++
	switch st.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		f, _ := storage.AsFloat(v)
		st.sum += f
		st.sumSq += f * f
	case AggMin:
		if st.min == nil || storage.CompareValues(v, st.min) < 0 {
			st.min = v
		}
	case AggMax:
		if st.max == nil || storage.CompareValues(v, st.max) > 0 {
			st.max = v
		}
	case AggCountDistinct:
		st.distinct[storage.AsString(v)] = struct{}{}
	}
}

// updateAt folds row i of a columnar batch into the state, reading the
// aggregated column through the typed vector (no boxing for the numeric
// aggregations; min/max/count-distinct box once per considered cell, as the
// row path does implicitly).
func (st *aggState) updateAt(b *storage.ColumnBatch, i int) {
	if st.spec.Kind == AggCount {
		st.count++
		return
	}
	if st.colIdx < 0 || st.colIdx >= b.Width() || b.NullAt(i, st.colIdx) {
		return
	}
	st.count++
	switch st.spec.Kind {
	case AggSum, AggAvg, AggStdDev:
		f, _ := b.FloatAt(i, st.colIdx)
		st.sum += f
		st.sumSq += f * f
	case AggMin:
		if v := b.Value(i, st.colIdx); st.min == nil || storage.CompareValues(v, st.min) < 0 {
			st.min = v
		}
	case AggMax:
		if v := b.Value(i, st.colIdx); st.max == nil || storage.CompareValues(v, st.max) > 0 {
			st.max = v
		}
	case AggCountDistinct:
		st.distinct[b.StringAt(i, st.colIdx)] = struct{}{}
	}
}

// merge folds another partial state of the same aggregation into st. It is
// the combine step of map-side aggregation: every supported aggregation is
// algebraic (count/sum/sumSq add, min/max compare, distinct sets union), so
// merging partials yields exactly the state a single-pass aggregation over
// the concatenated input would have produced.
func (st *aggState) merge(other *aggState) {
	st.count += other.count
	st.sum += other.sum
	st.sumSq += other.sumSq
	if other.min != nil && (st.min == nil || storage.CompareValues(other.min, st.min) < 0) {
		st.min = other.min
	}
	if other.max != nil && (st.max == nil || storage.CompareValues(other.max, st.max) > 0) {
		st.max = other.max
	}
	if len(other.distinct) > 0 {
		if st.distinct == nil {
			st.distinct = make(map[string]struct{}, len(other.distinct))
		}
		for k := range other.distinct {
			st.distinct[k] = struct{}{}
		}
	}
}

func (st *aggState) result() storage.Value {
	switch st.spec.Kind {
	case AggCount:
		return st.count
	case AggSum:
		return st.sum
	case AggAvg:
		if st.count == 0 {
			return nil
		}
		return st.sum / float64(st.count)
	case AggStdDev:
		if st.count == 0 {
			return nil
		}
		mean := st.sum / float64(st.count)
		variance := st.sumSq/float64(st.count) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return math.Sqrt(variance)
	case AggMin:
		return st.min
	case AggMax:
		return st.max
	case AggCountDistinct:
		return int64(len(st.distinct))
	default:
		return nil
	}
}
