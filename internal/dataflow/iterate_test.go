package dataflow

// iterate_test.go covers the Iterate plan node: fixpoint/keys/epsilon
// convergence, the max-iteration bound and ErrNotConverged, delta-aware
// short-circuiting of unchanged partitions, bit-identity of the budgeted
// (spilling) loop state against the in-memory run, equivalence across
// execution modes, and the spill-store lifecycle under cancellation.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

func iterEngine(t *testing.T, opts ...EngineOption) *Engine {
	t.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

var reachStateSchema = storage.MustSchema(
	storage.Field{Name: "node", Type: storage.TypeInt},
	storage.Field{Name: "label", Type: storage.TypeInt},
)

// reachabilityPlan builds min-label propagation over a chain graph with a few
// shortcuts: every node starts labelled with its own id, and each pass pushes
// labels along edges and keeps the per-node minimum. The fixpoint labels every
// node reachable from node 0 with 0.
func reachabilityPlan(nodes int, parts int) *Dataset {
	edgeSchema := storage.MustSchema(
		storage.Field{Name: "src", Type: storage.TypeInt},
		storage.Field{Name: "dst", Type: storage.TypeInt},
	)
	var edgeRows []storage.Row
	for i := 0; i+1 < nodes; i++ {
		edgeRows = append(edgeRows, storage.Row{int64(i), int64(i + 1)})
	}
	for i := 0; i+3 < nodes; i += 3 {
		edgeRows = append(edgeRows, storage.Row{int64(i), int64(i + 3)})
	}
	edges := FromRows("edges", edgeSchema, edgeRows, 2)

	state := make([]storage.Row, nodes)
	for i := range state {
		state[i] = storage.Row{int64(i), int64(i)}
	}
	return FromRows("labels", reachStateSchema, state, parts).
		Iterate(func(loop *Dataset) *Dataset {
			prop := loop.Join(edges, "node", "src", InnerJoin).
				Map("propagate", reachStateSchema, func(r Record) (storage.Row, error) {
					return storage.Row{r.Int("dst"), r.Int("label")}, nil
				})
			return loop.Union(prop).
				GroupBy("node").Agg(Min("label")).
				Map("to-state", reachStateSchema, func(r Record) (storage.Row, error) {
					return storage.Row{r.Int("node"), r.Int("min_label")}, nil
				}).
				Sort(SortOrder{Column: "node"})
		})
}

func TestIterateFixpointReachability(t *testing.T) {
	plan := reachabilityPlan(12, 3)
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := iterEngine(t).Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].(int64) != int64(i) || row[1].(int64) != 0 {
			t.Fatalf("row %d = %v, want [%d 0]", i, row, i)
		}
	}
	if !res.Stats.IterateConverged {
		t.Error("reachability must reach its fixpoint")
	}
	if res.Stats.IterateLoops != 1 {
		t.Errorf("IterateLoops = %d, want 1", res.Stats.IterateLoops)
	}
	// A 12-node chain with every-third shortcuts needs several propagation
	// passes plus the fixpoint-confirming pass, and must stop well before the
	// default bound.
	if res.Stats.IterateIterations < 3 || res.Stats.IterateIterations >= DefaultMaxIterations {
		t.Errorf("IterateIterations = %d, want a handful", res.Stats.IterateIterations)
	}
	if res.Stats.IterateDeltaRows == 0 {
		t.Error("propagation passes must report changed rows")
	}
}

// TestIterateEquivalenceAcrossModes runs the reachability loop under every
// execution mode of the equivalence suite — vectorized, row-at-a-time,
// unfused, boxed wide operators and the two forced-spill arms — and demands
// bit-identical results. This pins the delta fast path and the budgeted
// loop-state staging against the plain row semantics.
func TestIterateEquivalenceAcrossModes(t *testing.T) {
	ctx := context.Background()
	plan := reachabilityPlan(10, 4)
	engines := equivalenceEngines(t)
	results := map[string]*Result{}
	for mode, e := range engines {
		res, err := e.Collect(ctx, plan)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		results[mode] = res
	}
	base := results["row"]
	for mode, got := range results {
		if mode == "row" {
			continue
		}
		if !reflect.DeepEqual(got.Rows, base.Rows) {
			t.Errorf("%s rows diverge from row mode:\n got %v\nwant %v", mode, got.Rows, base.Rows)
		}
		if got.Stats.IterateIterations != base.Stats.IterateIterations {
			t.Errorf("%s iterations = %d, row = %d", mode,
				got.Stats.IterateIterations, base.Stats.IterateIterations)
		}
		if !got.Stats.IterateConverged {
			t.Errorf("%s did not converge", mode)
		}
	}
}

// saturatingPlan builds a partition-local loop: each row counts up by one
// until it reaches its cap, caps differing per partition so some partitions
// saturate (and stop changing) several passes before the others. The body is
// one narrow Map over the loop state — exactly the shape the delta-aware
// short-circuit targets.
func saturatingPlan(parts int) *Dataset {
	schema := storage.MustSchema(
		storage.Field{Name: "v", Type: storage.TypeInt},
		storage.Field{Name: "cap", Type: storage.TypeInt},
	)
	var rows []storage.Row
	for i := 0; i < 60; i++ {
		// FromRows deals rows round-robin, so i%parts is the partition; caps
		// grow with the partition index to stagger saturation.
		cap := int64(2 + 4*(i%parts))
		rows = append(rows, storage.Row{int64(0), cap})
	}
	return FromRows("sat", schema, rows, parts).
		Iterate(func(loop *Dataset) *Dataset {
			return loop.Map("inc-to-cap", schema, func(r Record) (storage.Row, error) {
				v, cap := r.Int("v"), r.Int("cap")
				if v < cap {
					v++
				}
				return storage.Row{v, cap}, nil
			})
		})
}

func TestIterateDeltaShortCircuitAndBudgetedBitIdentity(t *testing.T) {
	ctx := context.Background()
	plan := saturatingPlan(3)
	if err := plan.Err(); err != nil {
		t.Fatal(err)
	}

	plain, err := iterEngine(t).Collect(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := iterEngine(t, WithMemoryBudget(1)).Collect(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}

	for _, res := range []*Result{plain, budgeted} {
		for i, row := range res.Rows {
			if row[0].(int64) != row[1].(int64) {
				t.Fatalf("row %d = %v, want v saturated at cap", i, row)
			}
		}
		if !res.Stats.IterateConverged {
			t.Fatal("saturating loop must converge")
		}
		// Partition 0 saturates at cap=2 while partition 2 runs to cap=10:
		// the passes in between must have carried partition 0 (and later 1)
		// over without re-executing the chain.
		if res.Stats.IterateShortCircuitPartitions == 0 {
			t.Errorf("no partitions short-circuited: %+v", res.Stats)
		}
	}
	if !reflect.DeepEqual(plain.Rows, budgeted.Rows) {
		t.Errorf("budgeted loop state diverges from in-memory run:\n got %v\nwant %v",
			budgeted.Rows, plain.Rows)
	}
	if plain.Stats.IterateIterations != budgeted.Stats.IterateIterations {
		t.Errorf("iterations diverge: plain %d, budgeted %d",
			plain.Stats.IterateIterations, budgeted.Stats.IterateIterations)
	}
	if budgeted.Stats.SpilledBatches == 0 {
		t.Error("one-byte budget must stage loop state through the spill store")
	}
}

func TestIterateStopsAtBound(t *testing.T) {
	ctx := context.Background()
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	rows := []storage.Row{{int64(0)}, {int64(10)}}
	body := func(loop *Dataset) *Dataset {
		return loop.Map("inc", schema, func(r Record) (storage.Row, error) {
			return storage.Row{r.Int("v") + 1}, nil
		})
	}

	res, err := iterEngine(t).Collect(ctx,
		FromRows("nc", schema, rows, 1).Iterate(body, WithMaxIterations(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IterateIterations != 5 {
		t.Errorf("IterateIterations = %d, want exactly the bound 5", res.Stats.IterateIterations)
	}
	if res.Stats.IterateConverged {
		t.Error("incrementing loop must not report convergence")
	}
	for i, row := range res.Rows {
		if want := rows[i][0].(int64) + 5; row[0].(int64) != want {
			t.Errorf("row %d = %v, want %d after 5 passes", i, row, want)
		}
	}

	_, err = iterEngine(t).Collect(ctx,
		FromRows("nc", schema, rows, 1).Iterate(body, WithMaxIterations(5), WithRequireConvergence()))
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("WithRequireConvergence error = %v, want ErrNotConverged", err)
	}
}

func TestIterateConvergenceKeys(t *testing.T) {
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	rows := []storage.Row{{int64(1), 8.0}, {int64(2), 16.0}}
	plan := FromRows("keys", schema, rows, 1).
		Iterate(func(loop *Dataset) *Dataset {
			return loop.Map("halve", schema, func(r Record) (storage.Row, error) {
				return storage.Row{r.Int("k"), r.Float("v") / 2}, nil
			})
		}, WithConvergenceKeys("k"))
	res, err := iterEngine(t).Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// The key set never changes, so the keys predicate converges after the
	// first pass even though the values keep moving.
	if res.Stats.IterateIterations != 1 || !res.Stats.IterateConverged {
		t.Fatalf("keys convergence stats = %+v, want 1 converged iteration", res.Stats)
	}
	if res.Rows[0][1].(float64) != 4.0 || res.Rows[1][1].(float64) != 8.0 {
		t.Errorf("rows = %v, want values halved exactly once", res.Rows)
	}
}

func TestIterateEpsilon(t *testing.T) {
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeFloat})
	rows := []storage.Row{{0.0}, {64.0}}
	plan := FromRows("eps", schema, rows, 1).
		Iterate(func(loop *Dataset) *Dataset {
			// v -> (v+2)/2 contracts toward the fixed point v=2.
			return loop.Map("contract", schema, func(r Record) (storage.Row, error) {
				return storage.Row{(r.Float("v") + 2) / 2}, nil
			})
		}, WithEpsilon("v", 1e-9), WithRequireConvergence())
	res, err := iterEngine(t).Collect(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.IterateConverged {
		t.Fatal("contraction must epsilon-converge")
	}
	for i, row := range res.Rows {
		if d := row[0].(float64) - 2; d > 1e-8 || d < -1e-8 {
			t.Errorf("row %d = %v, want ≈2", i, row)
		}
	}
}

func TestIterateValidation(t *testing.T) {
	schema := storage.MustSchema(storage.Field{Name: "v", Type: storage.TypeInt})
	src := func() *Dataset { return FromRows("v", schema, []storage.Row{{int64(1)}}, 1) }
	identity := func(loop *Dataset) *Dataset { return loop }

	cases := []struct {
		name string
		plan *Dataset
		want error
	}{
		{"nil body", src().Iterate(nil), ErrBadPlan},
		{"zero max iterations", src().Iterate(identity, WithMaxIterations(0)), ErrBadPlan},
		{"unknown convergence key", src().Iterate(identity, WithConvergenceKeys("nope")), storage.ErrUnknownField},
		{"empty convergence keys", src().Iterate(identity, WithConvergenceKeys()), ErrBadPlan},
		{"negative epsilon", src().Iterate(identity, WithEpsilon("v", -1)), ErrBadPlan},
		{"unknown epsilon column", src().Iterate(identity, WithEpsilon("nope", 0.5)), storage.ErrUnknownField},
		{"schema-changing body", src().Iterate(func(loop *Dataset) *Dataset {
			return loop.WithColumn(storage.Field{Name: "extra", Type: storage.TypeInt},
				func(Record) (storage.Value, error) { return int64(0), nil })
		}), ErrIncompatible},
		{"failing body plan", src().Iterate(func(loop *Dataset) *Dataset {
			return loop.Project("nope")
		}), storage.ErrUnknownField},
	}
	for _, tc := range cases {
		if err := tc.plan.Err(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A non-float epsilon column is rejected even though it exists.
	strSchema := storage.MustSchema(storage.Field{Name: "s", Type: storage.TypeString})
	p := FromRows("s", strSchema, []storage.Row{{"a"}}, 1).
		Iterate(identity, WithEpsilon("s", 0.5))
	if err := p.Err(); !errors.Is(err, ErrBadPlan) {
		t.Errorf("string epsilon column: err = %v, want ErrBadPlan", err)
	}
}

// TestIterateCancelReleasesSpill cancels a budgeted iterate mid-loop, after
// the loop state has been staged through a spill store at least once: the
// deferred store release must remove every temp file, and no engine
// goroutines may linger.
func TestIterateCancelReleasesSpill(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	base := runtime.NumGoroutine()

	schema := storage.MustSchema(
		storage.Field{Name: "v", Type: storage.TypeInt},
		storage.Field{Name: "pad", Type: storage.TypeString},
	)
	rows := make([]storage.Row, 500)
	rng := rand.New(rand.NewSource(7))
	for i := range rows {
		rows[i] = storage.Row{int64(0), fmt.Sprintf("pad-%04d", rng.Intn(10_000))}
	}

	e := iterEngine(t, WithMemoryBudget(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The filter cancels during the second pass over the loop state, after
	// the first pass's output was staged (and spilled) between iterations.
	passThrough := cancelAfterRows(int64(len(rows))+100, cancel)
	plan := FromRows("loop", schema, rows, 4).
		Iterate(func(loop *Dataset) *Dataset {
			return loop.
				Filter("cancel mid-loop", passThrough).
				Map("inc", schema, func(r Record) (storage.Row, error) {
					return storage.Row{r.Int("v") + 1, r.String("pad")}, nil
				})
		})
	if _, err := e.Collect(ctx, plan); err == nil {
		t.Fatal("cancelled budgeted iterate must fail")
	}
	waitGoroutines(t, base)
	if left := spillFiles(t, tmp); len(left) != 0 {
		t.Errorf("cancelled iterate leaked spill files: %v", left)
	}

	// Control: the same loop bounded to a few passes completes, spills, and
	// still leaves the temp directory empty.
	res, err := iterEngine(t, WithMemoryBudget(1)).Collect(context.Background(),
		FromRows("loop", schema, rows, 4).Iterate(func(loop *Dataset) *Dataset {
			return loop.Map("inc", schema, func(r Record) (storage.Row, error) {
				return storage.Row{r.Int("v") + 1, r.String("pad")}, nil
			})
		}, WithMaxIterations(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpilledBatches == 0 {
		t.Fatal("control loop must actually spill for the leak check to mean anything")
	}
	if left := spillFiles(t, tmp); len(left) != 0 {
		t.Errorf("completed budgeted iterate left spill files: %v", left)
	}
}

// TestIterateMetricsRegistered checks the engine-level iterate counters fold
// the per-run stats into the metrics registry.
func TestIterateMetricsRegistered(t *testing.T) {
	e := iterEngine(t)
	if _, err := e.Collect(context.Background(), saturatingPlan(3)); err != nil {
		t.Fatal(err)
	}
	snap := e.Metrics().Snapshot()
	if snap.CounterValue("iterate.iterations") == 0 {
		t.Error("iterate.iterations counter not folded")
	}
	if snap.CounterValue("iterate.shortcircuit.partitions") == 0 {
		t.Error("iterate.shortcircuit.partitions counter not folded")
	}
	if snap.CounterValue("iterate.delta.rows") == 0 {
		t.Error("iterate.delta.rows counter not folded")
	}
}
