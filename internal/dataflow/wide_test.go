package dataflow

// wide_test.go covers the physical strategies of the wide operators
// (DESIGN.md §2.5): the range-partitioned parallel sort, the broadcast hash
// join, map-side distinct dedup, and the engine-level plan validation that
// keeps hand-built plans from panicking mid-task.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// wideDataset builds n rows over p partitions with a pseudo-random sortable
// value, a low-cardinality key and a sequence number for stability checks.
func wideDataset(t testing.TB, n, p int) *Dataset {
	t.Helper()
	schema := storage.MustSchema(
		storage.Field{Name: "seq", Type: storage.TypeInt},
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	rows := make([]storage.Row, n)
	for i := range rows {
		// Weyl-style scrambling keeps the values deterministic but unsorted.
		scrambled := (uint64(i) * 2654435761) % 1_000_003
		rows[i] = storage.Row{int64(i), int64(i % 40), float64(scrambled)}
	}
	return FromRows("wide", schema, rows, p)
}

func TestRangeSortMatchesSingleTask(t *testing.T) {
	// 2000 rows over 8 partitions is comfortably above the range-sort
	// fallback threshold for a 4-slot engine.
	plan := wideDataset(t, 2000, 8).Sort(
		SortOrder{Column: "k"},
		SortOrder{Column: "v", Descending: true},
	)
	ranged := collect(t, testEngineWith(t), plan)
	single := collect(t, testEngineWith(t, WithRangeSort(false)), plan)

	if ranged.Stats.SortSampledRows == 0 {
		t.Error("range sort must sample rows for split points")
	}
	if single.Stats.SortSampledRows != 0 {
		t.Error("single-task sort must not sample")
	}
	// The single-task stable sort is the reference: the range-partitioned
	// result must match it row for row, which covers both global ordering
	// and stability (equal keys keep their input order).
	if !equalStrings(rowStrings(ranged.Rows), rowStrings(single.Rows)) {
		t.Fatal("range-partitioned sort output differs from single-task sort")
	}
}

// TestColumnarSortMatchesBoxed pins the typed sort core against both
// ablation arms over every kernel type (int, float, string, bool, with
// nulls): the selection-vector sort must reproduce the boxed-row sorts bit
// for bit, including how stable sorts break ties of equal keys.
func TestColumnarSortMatchesBoxed(t *testing.T) {
	schema := storage.MustSchema(
		storage.Field{Name: "i", Type: storage.TypeInt, Nullable: true},
		storage.Field{Name: "f", Type: storage.TypeFloat, Nullable: true},
		storage.Field{Name: "s", Type: storage.TypeString},
		storage.Field{Name: "b", Type: storage.TypeBool},
		storage.Field{Name: "id", Type: storage.TypeInt},
	)
	rows := make([]storage.Row, 3000)
	for i := range rows {
		var iv storage.Value
		if i%13 != 0 {
			iv = int64(i % 5)
		}
		var fv storage.Value
		if i%7 != 0 {
			fv = float64((i*2654435761)%9) / 4
		}
		rows[i] = storage.Row{iv, fv, "s" + string(rune('a'+i%3)), i%2 == 0, int64(i)}
	}
	plan := FromRows("typed", schema, rows, 8).Sort(
		SortOrder{Column: "i"},
		SortOrder{Column: "f", Descending: true},
		SortOrder{Column: "s"},
		SortOrder{Column: "b", Descending: true},
	)
	typed := collect(t, testEngineWith(t), plan)
	boxed := collect(t, testEngineWith(t, WithColumnarSort(false)), plan)
	rowMode := collect(t, testEngineWith(t, WithVectorizedExecution(false)), plan)
	if !equalStrings(rowStrings(typed.Rows), rowStrings(boxed.Rows)) {
		t.Fatal("typed columnar sort differs from the boxed-row sort")
	}
	if !equalStrings(rowStrings(typed.Rows), rowStrings(rowMode.Rows)) {
		t.Fatal("typed columnar sort differs from the row-at-a-time sort")
	}
}

// TestColumnarSortStability drives a duplicate-only key through a single
// partition: a stable sort must keep the unique id column in input order
// within each key group.
func TestColumnarSortStability(t *testing.T) {
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "id", Type: storage.TypeInt},
	)
	rows := make([]storage.Row, 500)
	for i := range rows {
		rows[i] = storage.Row{int64(i % 3), int64(i)}
	}
	res := collect(t, testEngineWith(t), FromRows("stable", schema, rows, 1).Sort(SortOrder{Column: "k"}))
	lastID := map[int64]int64{}
	for _, r := range res.Rows {
		k, id := r[0].(int64), r[1].(int64)
		if prev, ok := lastID[k]; ok && id < prev {
			t.Fatalf("stability violated: key %d saw id %d after %d", k, id, prev)
		}
		lastID[k] = id
	}
}

func TestRangeSortSmallInputFallsBack(t *testing.T) {
	e := testEngineWith(t)
	res := collect(t, e, wideDataset(t, 100, 4).Sort(SortOrder{Column: "v"}))
	if res.Stats.SortSampledRows != 0 {
		t.Error("tiny input must fall back to the single-task sort")
	}
	for i := 1; i < len(res.Rows); i++ {
		if storage.CompareValues(res.Rows[i-1][2], res.Rows[i][2]) > 0 {
			t.Fatalf("fallback output not sorted at %d", i)
		}
	}
}

func TestRangeSortMetrics(t *testing.T) {
	e := testEngineWith(t)
	collect(t, e, wideDataset(t, 2000, 8).Sort(SortOrder{Column: "v"}))
	snap := e.Metrics().Snapshot()
	if snap.CounterValue("sort.sampled") == 0 {
		t.Error("sort.sampled counter must accumulate")
	}
}

// TestRangeSortOutperformsSingleTask is the Figure-2-style scalability check
// for the sort overhaul: distributing the sort over range partitions must
// beat the single task when real cores are available.
func TestRangeSortOutperformsSingleTask(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("wall-clock speedup from parallel partitions is impossible on a single-CPU runner")
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceDetectorEnabled {
		t.Skip("race-detector overhead makes wall-clock comparisons unreliable")
	}
	plan := wideDataset(t, 150_000, 8).Sort(SortOrder{Column: "v"})
	best := func(e *Engine) time.Duration {
		bestTime := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			res := collect(t, e, plan)
			if res.Stats.WallTime < bestTime {
				bestTime = res.Stats.WallTime
			}
		}
		return bestTime
	}
	ranged := best(testEngineWith(t))
	single := best(testEngineWith(t, WithRangeSort(false)))
	if ranged >= single {
		t.Errorf("range sort (%v) must beat the single-task sort (%v) on %d cores",
			ranged, single, runtime.GOMAXPROCS(0))
	}
}

func TestMapSideDistinctMatchesBaseline(t *testing.T) {
	// 40 keys across 2000 rows: the map side should collapse each partition
	// to at most 40 survivors.
	plan := wideDataset(t, 2000, 8).Distinct("k")
	combined := collect(t, testEngineWith(t), plan)
	baseline := collect(t, testEngineWith(t, WithMapSideDistinct(false)), plan)

	if len(combined.Rows) != 40 || len(baseline.Rows) != 40 {
		t.Fatalf("distinct rows = %d (combined) / %d (baseline), want 40", len(combined.Rows), len(baseline.Rows))
	}
	// Both strategies keep the first occurrence in partition-major order, so
	// the outputs must be identical, not merely set-equal.
	if !equalStrings(rowStrings(combined.Rows), rowStrings(baseline.Rows)) {
		t.Error("map-side distinct changed the surviving rows")
	}
	if combined.Stats.DistinctPrecombinedRows == 0 {
		t.Error("map-side pass must report precombined rows")
	}
	if baseline.Stats.DistinctPrecombinedRows != 0 {
		t.Error("baseline must not report precombined rows")
	}
	if combined.Stats.ShuffledRows >= baseline.Stats.ShuffledRows {
		t.Errorf("map-side distinct shuffled %d rows, baseline %d — dedup must reduce the shuffle",
			combined.Stats.ShuffledRows, baseline.Stats.ShuffledRows)
	}
	if combined.Stats.DistinctPrecombinedRows+combined.Stats.ShuffledRows != baseline.Stats.ShuffledRows {
		t.Errorf("precombined (%d) + shuffled (%d) must equal the baseline shuffle (%d)",
			combined.Stats.DistinctPrecombinedRows, combined.Stats.ShuffledRows, baseline.Stats.ShuffledRows)
	}
}

func TestMapSideDistinctWholeRowAndMetrics(t *testing.T) {
	e := testEngineWith(t)
	// 400 rows cycling through 200 distinct tuples over 4 partitions: the
	// copies of each tuple (i and i+200, with 200 ≡ 0 mod 4) land in the
	// same partition, so the map side can remove them before the shuffle.
	schema := storage.MustSchema(
		storage.Field{Name: "seq", Type: storage.TypeInt},
		storage.Field{Name: "tag", Type: storage.TypeString},
	)
	rows := make([]storage.Row, 400)
	for i := range rows {
		rows[i] = storage.Row{int64(i % 200), "row"}
	}
	dup := FromRows("dup", schema, rows, 4)
	res := collect(t, e, dup.Distinct())
	if len(res.Rows) != 200 {
		t.Fatalf("whole-row distinct rows = %d, want 200", len(res.Rows))
	}
	if res.Stats.DistinctPrecombinedRows == 0 {
		t.Error("duplicated union must precombine rows map-side")
	}
	if e.Metrics().Snapshot().CounterValue("distinct.precombined") == 0 {
		t.Error("distinct.precombined counter must accumulate")
	}
}

func TestBroadcastJoinThresholdBoundary(t *testing.T) {
	right := FromRows("dims", storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "name", Type: storage.TypeString},
	), []storage.Row{
		{int64(0), "zero"}, {int64(1), "one"}, {int64(2), "two"},
		{int64(3), "three"}, {int64(4), "four"},
	}, 2)
	plan := wideDataset(t, 400, 4).Join(right, "k", "k", InnerJoin)

	// Build side of 5 rows at threshold 5: broadcast.
	at := collect(t, testEngineWith(t, WithBroadcastThreshold(5)), plan)
	if at.Stats.BroadcastJoins != 1 || at.Stats.ShuffledRows != 0 {
		t.Errorf("threshold==build size must broadcast (joins=%d shuffled=%d)",
			at.Stats.BroadcastJoins, at.Stats.ShuffledRows)
	}
	// One below: shuffle.
	under := collect(t, testEngineWith(t, WithBroadcastThreshold(4)), plan)
	if under.Stats.BroadcastJoins != 0 || under.Stats.ShuffledRows == 0 {
		t.Errorf("build side over threshold must shuffle (joins=%d shuffled=%d)",
			under.Stats.BroadcastJoins, under.Stats.ShuffledRows)
	}
	if !equalStrings(sortedRowStrings(at.Rows), sortedRowStrings(under.Rows)) {
		t.Error("broadcast and shuffled joins must produce the same rows")
	}
	// Metric accumulates on the broadcasting engine.
	e := testEngineWith(t)
	collect(t, e, plan)
	if e.Metrics().Snapshot().CounterValue("joins.broadcast") != 1 {
		t.Error("joins.broadcast counter must accumulate")
	}
}

func TestBroadcastLeftJoinMatchesShuffled(t *testing.T) {
	right := FromRows("dims", storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "name", Type: storage.TypeString},
	), []storage.Row{{int64(1), "one"}, {int64(2), "two"}}, 1)
	// Keys 0..39 on the left, only 1 and 2 match: most rows null-extend.
	plan := wideDataset(t, 400, 4).Join(right, "k", "k", LeftJoin)
	broadcast := collect(t, testEngineWith(t), plan)
	shuffled := collect(t, testEngineWith(t, WithBroadcastJoin(false)), plan)
	if len(broadcast.Rows) != 400 || len(shuffled.Rows) != 400 {
		t.Fatalf("left join rows = %d / %d, want 400", len(broadcast.Rows), len(shuffled.Rows))
	}
	if !equalStrings(sortedRowStrings(broadcast.Rows), sortedRowStrings(shuffled.Rows)) {
		t.Error("broadcast left join must match the shuffled strategy")
	}
	if broadcast.Stats.BroadcastJoins != 1 || shuffled.Stats.BroadcastJoins != 0 {
		t.Errorf("broadcast joins = %d / %d, want 1 / 0",
			broadcast.Stats.BroadcastJoins, shuffled.Stats.BroadcastJoins)
	}
}

// TestWideOperatorValidationCatchesHandBuiltPlans covers the engine-level
// plan validation: the Dataset builders reject unknown columns, but plans
// assembled directly from nodes used to panic inside a task (Schema.IndexOf
// returning -1). Collect must instead fail fast with a descriptive error.
func TestWideOperatorValidationCatchesHandBuiltPlans(t *testing.T) {
	e := testEngine(t)
	base := wideDataset(t, 50, 2)
	other := wideDataset(t, 50, 2)
	cases := []struct {
		name string
		node planNode
		want string
	}{
		{"sort", &sortNode{child: base.node, orders: []SortOrder{{Column: "ghost"}}}, "sort"},
		{"distinct", &distinctNode{child: base.node, cols: []string{"ghost"}}, "distinct"},
		{"groupby", &groupByNode{child: base.node, keys: []string{"ghost"}, aggs: []Aggregation{Count()}}, "group-by"},
		{"join-left", &joinNode{left: base.node, right: other.node, leftKey: "ghost", rightKey: "k", kind: InnerJoin}, "join (left)"},
		{"join-right", &joinNode{left: base.node, right: other.node, leftKey: "k", rightKey: "ghost", kind: InnerJoin}, "join (right)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := e.Collect(context.Background(), &Dataset{node: tc.node})
			if err == nil {
				t.Fatal("hand-built plan with unknown column must fail, not panic")
			}
			if !errors.Is(err, storage.ErrUnknownField) {
				t.Errorf("error = %v, want ErrUnknownField", err)
			}
			if !strings.Contains(err.Error(), `"ghost"`) || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q must name the operator and the column", err)
			}
		})
	}
	// A bad node below a wide operator must be caught too.
	nested := &sortNode{
		child:  &distinctNode{child: base.node, cols: []string{"ghost"}},
		orders: []SortOrder{{Column: "k"}},
	}
	if _, err := e.Collect(context.Background(), &Dataset{node: nested}); !errors.Is(err, storage.ErrUnknownField) {
		t.Errorf("nested bad plan error = %v, want ErrUnknownField", err)
	}
}

// wideFailurePlans enumerates one plan per wide operator, each large enough
// to exercise the optimised strategies.
func wideFailurePlans(t testing.TB) map[string]*Dataset {
	right := FromRows("dims", storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "name", Type: storage.TypeString},
	), []storage.Row{{int64(1), "one"}, {int64(2), "two"}}, 1)
	return map[string]*Dataset{
		"sort":     wideDataset(t, 2000, 8).Sort(SortOrder{Column: "v"}),
		"distinct": wideDataset(t, 2000, 8).Distinct("k"),
		"join":     wideDataset(t, 2000, 8).Join(right, "k", "k", InnerJoin),
		"groupby":  wideDataset(t, 2000, 8).GroupBy("k").Agg(Count()),
	}
}

// TestWideOperatorsPropagateTaskFailure mirrors PR 1's error-chain work for
// the new strategies: when a task exhausts its retry budget, the action must
// surface the cluster failure (with the injected root cause), not a panic or
// a bystander cancellation.
func TestWideOperatorsPropagateTaskFailure(t *testing.T) {
	for name, plan := range wideFailurePlans(t) {
		t.Run(name, func(t *testing.T) {
			cfg := cluster.Uniform(2, 2, 0.95)
			cfg.MaxAttempts = 2
			cfg.Seed = 7
			c, err := cluster.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(c)
			if err != nil {
				t.Fatal(err)
			}
			_, err = e.Collect(context.Background(), plan)
			if err == nil {
				t.Skip("statistically improbable: every doomed task passed")
			}
			if !errors.Is(err, cluster.ErrTaskFailed) {
				t.Errorf("error = %v, want ErrTaskFailed in the chain", err)
			}
			if !cluster.IsInjectedFailure(err) {
				t.Errorf("error chain %v must preserve the injected root cause", err)
			}
		})
	}
}

func TestWideOperatorsPropagateCancellation(t *testing.T) {
	for name, plan := range wideFailurePlans(t) {
		t.Run(name, func(t *testing.T) {
			e := testEngine(t)
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := e.Collect(ctx, plan); !errors.Is(err, context.Canceled) {
				t.Errorf("error = %v, want context.Canceled", err)
			}
		})
	}
}

// TestWideOperatorsSurviveRetries checks the happy path under a low failure
// rate: retries mask the injected failures and every strategy still produces
// correct output.
func TestWideOperatorsSurviveRetries(t *testing.T) {
	for name, plan := range wideFailurePlans(t) {
		t.Run(name, func(t *testing.T) {
			cfg := cluster.Uniform(2, 2, 0.1)
			cfg.MaxAttempts = 10
			cfg.Seed = 3
			c, err := cluster.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Collect(context.Background(), plan)
			if err != nil {
				t.Fatalf("wide operator under retries: %v", err)
			}
			if len(res.Rows) == 0 {
				t.Error("no rows produced")
			}
		})
	}
}

func TestExplainWideStrategies(t *testing.T) {
	small := FromRows("dims", storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
	), []storage.Row{{int64(1)}, {int64(2)}}, 1)

	e := testEngineWith(t)
	header := "PhysicalPlan(fusion=on, combine=on, rangeSort=on, broadcastJoin=on"
	bigSort := wideDataset(t, 2000, 8).Sort(SortOrder{Column: "v"})
	plan := e.Explain(bigSort)
	if !strings.Contains(plan, header) {
		t.Errorf("Explain header missing strategy switches:\n%s", plan)
	}
	if !strings.Contains(plan, "[range-shuffle(parts=4)]") {
		t.Errorf("Explain must name the range sort strategy:\n%s", plan)
	}
	// A small bounded input takes the single-task fallback at runtime, and
	// Explain must predict that, not the configured strategy.
	if got := e.Explain(wideDataset(t, 100, 4).Sort(SortOrder{Column: "v"})); !strings.Contains(got, "[single-task]") {
		t.Errorf("small-input Explain must predict the single-task fallback:\n%s", got)
	}
	if got := testEngineWith(t, WithRangeSort(false)).Explain(bigSort); !strings.Contains(got, "[single-task]") {
		t.Errorf("range-sort-off Explain must name the single-task strategy:\n%s", got)
	}

	// The second sort tag names the sort core: typed columnar by default, an
	// external merge with its statically-bounded run count under a budget,
	// and the boxed/row arms under their ablation switches.
	if !strings.Contains(plan, "[columnar in-memory]") {
		t.Errorf("default Explain must name the columnar sort core:\n%s", plan)
	}
	if got := testEngineWith(t, WithMemoryBudget(1)).Explain(bigSort); !strings.Contains(got, "[external merge (runs≤1)]") {
		t.Errorf("budgeted Explain must bound the external merge's runs (2000 rows = 1 chunk):\n%s", got)
	}
	if got := testEngineWith(t, WithColumnarSort(false)).Explain(bigSort); !strings.Contains(got, "[boxed-row sort]") {
		t.Errorf("columnar-sort-off Explain must name the boxed arm:\n%s", got)
	}
	if got := testEngineWith(t, WithVectorizedExecution(false)).Explain(bigSort); !strings.Contains(got, "[row sort]") {
		t.Errorf("row-mode Explain must name the row sort core:\n%s", got)
	}

	join := wideDataset(t, 100, 4).Join(small, "k", "k", InnerJoin)
	if got := e.Explain(join); !strings.Contains(got, "[broadcast(build≤2)]") {
		t.Errorf("Explain must predict the broadcast join with the build-side bound:\n%s", got)
	}
	if got := testEngineWith(t, WithBroadcastJoin(false)).Explain(join); !strings.Contains(got, "[shuffle-hash]") {
		t.Errorf("broadcast-off Explain must name the shuffled strategy:\n%s", got)
	}
	if got := testEngineWith(t, WithBroadcastThreshold(1)).Explain(join); !strings.Contains(got, "[shuffle-hash]") {
		t.Errorf("build side above threshold must render shuffle-hash:\n%s", got)
	}

	// A flatMap below the build side makes its size unbounded: Explain must
	// fall back to the shuffled strategy.
	grown := small.FlatMap("grow", small.Schema(), func(r Record) ([]storage.Row, error) {
		return []storage.Row{r.Row()}, nil
	})
	if got := e.Explain(wideDataset(t, 100, 4).Join(grown, "k", "k", InnerJoin)); !strings.Contains(got, "[shuffle-hash]") {
		t.Errorf("unbounded build side must render shuffle-hash:\n%s", got)
	}

	distinct := wideDataset(t, 100, 4).Distinct("k")
	if got := e.Explain(distinct); !strings.Contains(got, "[map-dedup+shuffle]") {
		t.Errorf("Explain must name the map-side distinct strategy:\n%s", got)
	}
	if got := testEngineWith(t, WithMapSideDistinct(false)).Explain(distinct); !strings.Contains(got, "Distinct([k]) [shuffle]") {
		t.Errorf("map-side-off Explain must name the plain shuffle:\n%s", got)
	}
}

// TestEstimateMaxRows pins the static bound the explainer uses to predict
// broadcast decisions.
func TestEstimateMaxRows(t *testing.T) {
	base := wideDataset(t, 100, 4)
	if n, ok := estimateMaxRows(base.node); !ok || n != 100 {
		t.Errorf("source bound = %d/%v, want 100", n, ok)
	}
	filtered := base.Filter("any", func(Record) (bool, error) { return true, nil })
	if n, ok := estimateMaxRows(filtered.node); !ok || n != 100 {
		t.Errorf("filter bound = %d/%v, want 100", n, ok)
	}
	if n, ok := estimateMaxRows(base.Limit(7).node); !ok || n != 7 {
		t.Errorf("limit bound = %d/%v, want 7", n, ok)
	}
	if n, ok := estimateMaxRows(base.Union(base).node); !ok || n != 200 {
		t.Errorf("union bound = %d/%v, want 200", n, ok)
	}
	if n, ok := estimateMaxRows(base.GroupBy("k").Agg(Count()).node); !ok || n != 100 {
		t.Errorf("group-by bound = %d/%v, want 100", n, ok)
	}
	grown := base.FlatMap("grow", base.Schema(), func(r Record) ([]storage.Row, error) { return nil, nil })
	if _, ok := estimateMaxRows(grown.node); ok {
		t.Error("flatMap must have no static bound")
	}
	if _, ok := estimateMaxRows(base.Join(base, "k", "k", InnerJoin).node); ok {
		t.Error("join must have no static bound")
	}
}
