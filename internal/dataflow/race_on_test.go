//go:build race

package dataflow

// raceDetectorEnabled reports whether the test binary was built with -race;
// wall-clock comparisons skip under the detector's overhead.
const raceDetectorEnabled = true
