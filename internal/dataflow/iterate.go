package dataflow

// iterate.go implements fixed-point execution of Iterate plan nodes: the body
// sub-plan (compiled once, against a loopSourceNode placeholder) is
// re-executed over a loop-carried dataset until a convergence predicate or a
// max-iteration bound. Between passes the loop state is fingerprinted with
// the same KeyEncoder the shuffles use; the fingerprints decide convergence
// without a row-by-row comparison pass, and on partition-local bodies they
// let partitions whose input batch is unchanged short-circuit re-execution
// entirely. Under a memory budget the state is staged through a
// PartitionStore between iterations, so loop-carried data past the budget
// spills through the v2 frame codec exactly like any wide operator's
// accumulation.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// fpSeed is the FNV-64 offset basis, the starting value of every partition
// fingerprint.
const fpSeed uint64 = 14695981039346656037

// foldHash folds one row's key hash into a partition fingerprint. The fold is
// order-sensitive (FNV-style xor-then-multiply), so two partitions holding
// the same rows in a different order fingerprint differently — which is what
// the short-circuit proof needs: identical fingerprint ⇒ identical batch.
func foldHash(h, rowHash uint64) uint64 {
	return (h ^ rowHash) * 1099511628211
}

// partFP is the fingerprint of one loop-state partition: an order-sensitive
// fold of its row key hashes plus the row count (which disambiguates the
// empty partition from hash coincidences on short inputs).
type partFP struct {
	hash uint64
	rows int
}

// fingerprintParts fingerprints every partition with enc (whole-row for delta
// detection and the fixpoint predicate, key columns for WithConvergenceKeys).
// Batch-backed partitions hash straight off the column vectors; row-backed
// ones hash boxed rows. Both produce identical key bytes, so fingerprints
// agree across execution modes.
func fingerprintParts(parts []part, enc *storage.KeyEncoder) []partFP {
	fps := make([]partFP, len(parts))
	for i, p := range parts {
		h := fpSeed
		if p.batch != nil {
			for r := 0; r < p.batch.Len(); r++ {
				h = foldHash(h, enc.BatchHash(p.batch, r))
			}
		} else {
			for _, row := range p.rows {
				h = foldHash(h, enc.Hash(row))
			}
		}
		fps[i] = partFP{hash: h, rows: p.len()}
	}
	return fps
}

func fpEqual(a, b []partFP) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// epsSnapshot materialises the epsilon column as one flat float slice in
// partition-and-row order. Nulls become NaN; epsConverged treats a NaN pair
// as unchanged and a NaN against a number as changed.
func epsSnapshot(parts []part, col int) []float64 {
	out := make([]float64, 0, countParts(parts))
	for _, p := range parts {
		if p.batch != nil {
			for r := 0; r < p.batch.Len(); r++ {
				v, ok := p.batch.FloatAt(r, col)
				if !ok {
					v = math.NaN()
				}
				out = append(out, v)
			}
			continue
		}
		for _, row := range p.rows {
			switch x := row[col].(type) {
			case int64:
				out = append(out, float64(x))
			case float64:
				out = append(out, x)
			default:
				out = append(out, math.NaN())
			}
		}
	}
	return out
}

func epsConverged(prev, cur []float64, eps float64) bool {
	if len(prev) != len(cur) {
		return false
	}
	for i := range cur {
		if math.IsNaN(prev[i]) && math.IsNaN(cur[i]) {
			continue
		}
		if !(math.Abs(cur[i]-prev[i]) <= eps) {
			return false
		}
	}
	return true
}

// evalIterate executes one Iterate loop: seed from init, re-run the body over
// the bound loop state until the convergence predicate holds or maxIter
// passes have run. Cancellation is honored between iterations (and inside
// each body pass through the cluster's own context plumbing); any staged
// state store is released on every exit path, so spill temp files never
// outlive the action.
func (e *Engine) evalIterate(ctx context.Context, n *iterateNode, st *execState) ([]part, error) {
	state, err := e.eval(ctx, n.init, st)
	if err != nil {
		return nil, err
	}
	schema := n.schema()

	// Whole-row encoder: delta detection and the fixpoint predicate. The keys
	// predicate gets its own encoder over the convergence columns.
	fullEnc, err := storage.NewKeyEncoder(schema)
	if err != nil {
		return nil, fmt.Errorf("dataflow: iterate: %w", err)
	}
	var keyEnc *storage.KeyEncoder
	if n.conv == convKeys {
		if keyEnc, err = storage.NewKeyEncoder(schema, n.keyCols...); err != nil {
			return nil, fmt.Errorf("dataflow: iterate: %w", err)
		}
	}
	epsIdx := -1
	if n.conv == convEpsilon {
		epsIdx = schema.IndexOf(n.epsCol)
	}
	// Whole-row fingerprints serve delta short-circuiting and the fixpoint
	// predicate; neither is needed under a pure keys/epsilon loop with delta
	// off.
	needFull := n.delta || n.conv == convFixpoint

	// Partition-local fast path: when the body is one fusible narrow chain
	// reading the loop state directly, output partition i depends only on
	// input partition i, so a partition whose input fingerprint matches the
	// previous pass provably reproduces its current content and is carried
	// over without running.
	var localChain fusedChain
	localOK := false
	if e.fuse && e.vectorize && n.delta {
		if ch, ok := narrowChainOf(n.body); ok && ch.base == planNode(n.loop) && ch.limit < 0 {
			localChain, localOK = ch, true
		}
	}

	// Under a memory budget the loop-carried state lives in a PartitionStore
	// between iterations: cold batches spill through the frame codec and are
	// restored when the next pass binds them. releaseStore (deferred) folds
	// the spill counters in and removes the temp file on every exit path —
	// including cancellation between iterations.
	useStore := e.memoryBudget > 0 && e.vectorize
	var stateStore *storage.PartitionStore
	defer func() {
		if stateStore != nil {
			st.releaseStore(stateStore)
		}
	}()
	// restoreState flattens the staged store back into bindable partitions.
	restoreState := func() ([]part, error) {
		out := make([]part, stateStore.Partitions())
		for i := range out {
			b, err := stateStore.FlattenPartition(i)
			if err != nil {
				return nil, err
			}
			out[i] = batchPart(b)
		}
		return out, nil
	}

	var fpIn, fpInPrev, keyIn []partFP
	if needFull || localOK {
		fpIn = fingerprintParts(state, fullEnc)
	}
	if keyEnc != nil {
		keyIn = fingerprintParts(state, keyEnc)
	}
	var epsIn []float64
	if epsIdx >= 0 {
		epsIn = epsSnapshot(state, epsIdx)
	}

	var iterations, deltaRows, shortCircuit int64
	converged := false
	for iterations < int64(n.maxIter) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if state == nil {
			if state, err = restoreState(); err != nil {
				return nil, err
			}
		}
		st.bindLoop(n.loop, state)
		var next []part
		if localOK && fpInPrev != nil && len(fpInPrev) == len(fpIn) {
			next, err = e.runIterateLocalDelta(ctx, localChain, state, fpInPrev, fpIn, &shortCircuit, st)
		} else {
			next, err = e.eval(ctx, n.body, st)
		}
		st.unbindLoop(n.loop)
		if err != nil {
			return nil, err
		}
		iterations++

		// Fingerprint the pass output before staging, while its batches are
		// resident anyway.
		var fpOut []partFP
		if needFull || localOK {
			fpOut = fingerprintParts(next, fullEnc)
		}
		switch n.conv {
		case convFixpoint:
			converged = fpEqual(fpIn, fpOut)
		case convKeys:
			keyOut := fingerprintParts(next, keyEnc)
			converged = fpEqual(keyIn, keyOut)
			keyIn = keyOut
		case convEpsilon:
			epsOut := epsSnapshot(next, epsIdx)
			converged = epsConverged(epsIn, epsOut, n.epsilon)
			epsIn = epsOut
		}
		if n.delta && len(fpIn) == len(fpOut) {
			for i := range fpOut {
				if fpOut[i] != fpIn[i] {
					deltaRows += int64(fpOut[i].rows)
				}
			}
		} else {
			deltaRows += int64(countParts(next))
		}
		fpInPrev, fpIn = fpIn, fpOut

		if useStore && !converged && iterations < int64(n.maxIter) {
			if batches, ok := batchesOf(next); ok {
				newStore, err := storage.NewPartitionStore(schema, len(batches),
					storage.WithMemoryBudget(e.memoryBudget), storage.WithCodec(e.codec()),
					storage.WithSpillDir(e.spillDir))
				if err != nil {
					return nil, err
				}
				for i, b := range batches {
					if err := newStore.Append(i, b); err != nil {
						st.releaseStore(newStore)
						return nil, err
					}
				}
				if stateStore != nil {
					st.releaseStore(stateStore)
				}
				stateStore = newStore
				// nil state marks "lives in the store": the next pass (or the
				// final return) restores it partition by partition.
				state = nil
				continue
			}
		}
		state = next
		if converged {
			break
		}
	}
	if state == nil {
		if state, err = restoreState(); err != nil {
			return nil, err
		}
	}
	st.noteIterate(iterations, deltaRows, shortCircuit, converged)
	if !converged && n.requireConverged {
		return nil, fmt.Errorf("%w after %d iterations", ErrNotConverged, n.maxIter)
	}
	return state, nil
}

// runIterateLocalDelta runs one pass of a partition-local body chain,
// re-executing only the partitions whose input fingerprint changed since the
// previous pass and carrying the rest over untouched. fpPrev/fpCur are the
// fingerprints of the previous and current pass inputs: input partition i
// unchanged means the (deterministic) chain reproduces exactly the bytes it
// produced last pass, which are the current state — so the copy-through is
// lossless, not approximate.
func (e *Engine) runIterateLocalDelta(ctx context.Context, ch fusedChain, state []part,
	fpPrev, fpCur []partFP, shortCircuit *int64, st *execState) ([]part, error) {

	out := make([]part, len(state))
	changed := make([]int, 0, len(state))
	for i := range state {
		if fpPrev[i] == fpCur[i] {
			out[i] = state[i]
			*shortCircuit++
		} else {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		return out, nil
	}
	baseSchema := ch.base.schema()
	name := "iterate-" + ch.name()
	tasks := make([]cluster.Task, len(changed))
	for ti, i := range changed {
		i := i
		tasks[ti] = cluster.Task{
			Name: fmt.Sprintf("%s[%d]", name, i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				b, err := toBatch(state[i], baseSchema)
				if err != nil {
					return err
				}
				res, err := e.runVectorizedChain(ch, i, b)
				if err != nil {
					return fmt.Errorf("%w: %v", ErrUDF, err)
				}
				out[i] = batchPart(res)
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, name, tasks); err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", name, err)
	}
	produced := 0
	for _, i := range changed {
		produced += out[i].len()
	}
	st.addBatches(len(changed), produced)
	if len(ch.ops) > 1 {
		st.addFused()
	}
	return out, nil
}
