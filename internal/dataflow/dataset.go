// Package dataflow implements the Big Data pipeline execution substrate of
// the reproduction: a partitioned, lazily evaluated dataset abstraction
// (comparable to a narrow subset of Spark's DataFrame API) together with an
// engine that compiles logical plans into parallel tasks executed on the
// simulated cluster.
//
// A Dataset is an immutable logical plan. Transformations (Filter, Map,
// GroupBy, Join, …) build a new plan; nothing executes until an Engine action
// (Collect, Count) is called. Narrow transformations run one task per
// partition; wide transformations (group-by, join, distinct, sort) introduce a
// shuffle boundary that re-partitions intermediate data by key.
package dataflow

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/storage"
)

// Errors reported while building or executing plans.
var (
	ErrNoSource     = errors.New("dataflow: dataset has no source")
	ErrBadPlan      = errors.New("dataflow: invalid plan")
	ErrUDF          = errors.New("dataflow: user function failed")
	ErrIncompatible = errors.New("dataflow: incompatible schemas")
	// ErrNotConverged is returned by actions over an Iterate plan built with
	// WithRequireConvergence when the loop exhausts its max-iteration bound
	// without reaching its convergence predicate.
	ErrNotConverged = errors.New("dataflow: iteration did not converge")
)

// Record gives user functions named access to the current row. A record is
// either row-backed (a boxed storage.Row) or batch-backed: a zero-copy view
// over one row of a columnar batch. Batch-backed records resolve the typed
// accessors (Int, Float, String, Bool) directly against the column vectors,
// so no cell is boxed or materialised unless Value or Row is called.
type Record struct {
	schema *storage.Schema
	row    storage.Row
	batch  *storage.ColumnBatch
	idx    int
}

// Schema returns the record's schema.
func (r Record) Schema() *storage.Schema { return r.schema }

// Row returns the underlying row; callers must not mutate it. For
// batch-backed records this materialises (and boxes) the row — prefer the
// named accessors on hot paths.
func (r Record) Row() storage.Row {
	if r.batch != nil {
		return r.batch.Row(r.idx)
	}
	return r.row
}

// Value returns the raw value of the named column (nil when the column is
// absent or null).
func (r Record) Value(name string) storage.Value {
	i := r.schema.IndexOf(name)
	if r.batch != nil {
		if i < 0 {
			return nil
		}
		return r.batch.Value(r.idx, i)
	}
	if i < 0 || i >= len(r.row) {
		return nil
	}
	return r.row[i]
}

// String returns the named column as a string ("" when null/absent).
func (r Record) String(name string) string {
	if r.batch != nil {
		return r.batch.StringAt(r.idx, r.schema.IndexOf(name))
	}
	return storage.AsString(r.Value(name))
}

// Int returns the named column as an int64 (0 when null or not convertible).
func (r Record) Int(name string) int64 {
	if r.batch != nil {
		v, _ := r.batch.IntAt(r.idx, r.schema.IndexOf(name))
		return v
	}
	v, _ := storage.AsInt(r.Value(name))
	return v
}

// Float returns the named column as a float64 (0 when null or not convertible).
func (r Record) Float(name string) float64 {
	if r.batch != nil {
		v, _ := r.batch.FloatAt(r.idx, r.schema.IndexOf(name))
		return v
	}
	v, _ := storage.AsFloat(r.Value(name))
	return v
}

// Bool returns the named column as a bool (false when null or not convertible).
func (r Record) Bool(name string) bool {
	if r.batch != nil {
		v, _ := r.batch.BoolAt(r.idx, r.schema.IndexOf(name))
		return v
	}
	v, _ := storage.AsBool(r.Value(name))
	return v
}

// IsNull reports whether the named column is null or absent.
func (r Record) IsNull(name string) bool {
	if r.batch != nil {
		return r.batch.NullAt(r.idx, r.schema.IndexOf(name))
	}
	return r.Value(name) == nil
}

// User function signatures.
type (
	// FilterFunc decides whether a record is kept.
	FilterFunc func(Record) (bool, error)
	// MapFunc transforms a record into a new row matching the declared
	// output schema.
	MapFunc func(Record) (storage.Row, error)
	// FlatMapFunc transforms a record into zero or more output rows.
	FlatMapFunc func(Record) ([]storage.Row, error)
	// ColumnFunc computes the value of a derived column.
	ColumnFunc func(Record) (storage.Value, error)
)

// JoinType selects the join semantics.
type JoinType int

const (
	// InnerJoin keeps only matching pairs.
	InnerJoin JoinType = iota
	// LeftJoin keeps every left row, null-extending when unmatched.
	LeftJoin
)

// String implements fmt.Stringer.
func (j JoinType) String() string {
	switch j {
	case InnerJoin:
		return "inner"
	case LeftJoin:
		return "left"
	default:
		return fmt.Sprintf("join(%d)", int(j))
	}
}

// planNode is a node of the logical plan tree.
type planNode interface {
	// Schema of the rows this node produces.
	schema() *storage.Schema
	// children of this node (empty for sources).
	children() []planNode
	// label describes the node for plan explanations.
	label() string
}

// Dataset is an immutable logical plan. The zero value is invalid; obtain
// datasets from FromTable/FromRows and transformations.
type Dataset struct {
	node planNode
	err  error
}

// Err returns the first error recorded while building this plan, if any.
// Engines refuse to execute plans with a non-nil Err.
func (d *Dataset) Err() error {
	if d == nil {
		return ErrNoSource
	}
	return d.err
}

// Schema returns the output schema of the plan (nil when the plan is invalid).
func (d *Dataset) Schema() *storage.Schema {
	if d == nil || d.err != nil || d.node == nil {
		return nil
	}
	return d.node.schema()
}

// Explain renders the logical plan as an indented tree, one node per line.
func (d *Dataset) Explain() string {
	if d == nil || d.node == nil {
		return "<invalid plan>"
	}
	if d.err != nil {
		return fmt.Sprintf("<invalid plan: %v>", d.err)
	}
	var out string
	var walk func(n planNode, depth int)
	walk = func(n planNode, depth int) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += n.label() + "\n"
		for _, c := range n.children() {
			walk(c, depth+1)
		}
	}
	walk(d.node, 0)
	return out
}

func failed(err error) *Dataset { return &Dataset{err: err} }

func (d *Dataset) invalid() (*Dataset, bool) {
	if d == nil {
		return failed(ErrNoSource), true
	}
	if d.err != nil {
		return d, true
	}
	if d.node == nil {
		return failed(ErrNoSource), true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

type sourceNode struct {
	name       string
	sch        *storage.Schema
	partitions [][]storage.Row

	// Columnar form of partitions, built on first vectorized execution and
	// reused by every later action over the same (immutable) plan — the
	// analogue of data already sitting in a columnar store.
	batchOnce sync.Once
	batches   []*storage.ColumnBatch
	batchErr  error
}

// batchPartitions lazily converts the source partitions to columnar batches.
func (s *sourceNode) batchPartitions() ([]*storage.ColumnBatch, error) {
	s.batchOnce.Do(func() {
		out := make([]*storage.ColumnBatch, len(s.partitions))
		for i, p := range s.partitions {
			b, err := storage.BatchFromRows(s.sch, p)
			if err != nil {
				s.batchErr = fmt.Errorf("dataflow: source %s partition %d: %w", s.name, i, err)
				return
			}
			out[i] = b
		}
		s.batches = out
	})
	return s.batches, s.batchErr
}

func (s *sourceNode) schema() *storage.Schema { return s.sch }
func (s *sourceNode) children() []planNode    { return nil }
func (s *sourceNode) label() string {
	rows := 0
	for _, p := range s.partitions {
		rows += len(p)
	}
	return fmt.Sprintf("Source(%s, partitions=%d, rows=%d)", s.name, len(s.partitions), rows)
}

// FromTable creates a dataset reading the table's current contents. The table
// is snapshotted partition by partition: later table mutations do not affect
// the plan.
func FromTable(t *storage.Table) *Dataset {
	if t == nil {
		return failed(fmt.Errorf("%w: nil table", ErrNoSource))
	}
	parts := make([][]storage.Row, t.Partitions())
	for p := 0; p < t.Partitions(); p++ {
		rows, err := t.Partition(p)
		if err != nil {
			return failed(err)
		}
		parts[p] = append([]storage.Row(nil), rows...)
	}
	return &Dataset{node: &sourceNode{name: t.Name(), sch: t.Schema(), partitions: parts}}
}

// FromRows creates a dataset over in-memory rows split into the given number
// of partitions (minimum 1). Rows are validated against the schema.
func FromRows(name string, schema *storage.Schema, rows []storage.Row, partitions int) *Dataset {
	if schema == nil {
		return failed(fmt.Errorf("%w: nil schema", ErrNoSource))
	}
	if partitions < 1 {
		partitions = 1
	}
	for i, r := range rows {
		if err := storage.ValidateRow(schema, r); err != nil {
			return failed(fmt.Errorf("dataflow: FromRows row %d: %w", i, err))
		}
	}
	parts := make([][]storage.Row, partitions)
	for i, r := range rows {
		p := i % partitions
		parts[p] = append(parts[p], r)
	}
	return &Dataset{node: &sourceNode{name: name, sch: schema, partitions: parts}}
}

// ---------------------------------------------------------------------------
// Narrow transformations
// ---------------------------------------------------------------------------

type filterNode struct {
	child planNode
	fn    FilterFunc
	desc  string
}

func (n *filterNode) schema() *storage.Schema { return n.child.schema() }
func (n *filterNode) children() []planNode    { return []planNode{n.child} }
func (n *filterNode) label() string           { return "Filter(" + n.desc + ")" }

// Filter keeps the records for which fn returns true. desc is a human-readable
// description used in plan explanations.
func (d *Dataset) Filter(desc string, fn FilterFunc) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if fn == nil {
		return failed(fmt.Errorf("%w: nil filter function", ErrBadPlan))
	}
	return &Dataset{node: &filterNode{child: d.node, fn: fn, desc: desc}}
}

type mapNode struct {
	child planNode
	out   *storage.Schema
	fn    MapFunc
	desc  string
}

func (n *mapNode) schema() *storage.Schema { return n.out }
func (n *mapNode) children() []planNode    { return []planNode{n.child} }
func (n *mapNode) label() string           { return "Map(" + n.desc + ")" }

// Map transforms every record into a row of the given output schema.
func (d *Dataset) Map(desc string, out *storage.Schema, fn MapFunc) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if out == nil || fn == nil {
		return failed(fmt.Errorf("%w: Map requires an output schema and a function", ErrBadPlan))
	}
	return &Dataset{node: &mapNode{child: d.node, out: out, fn: fn, desc: desc}}
}

type flatMapNode struct {
	child planNode
	out   *storage.Schema
	fn    FlatMapFunc
	desc  string
}

func (n *flatMapNode) schema() *storage.Schema { return n.out }
func (n *flatMapNode) children() []planNode    { return []planNode{n.child} }
func (n *flatMapNode) label() string           { return "FlatMap(" + n.desc + ")" }

// FlatMap transforms every record into zero or more rows of the output schema.
func (d *Dataset) FlatMap(desc string, out *storage.Schema, fn FlatMapFunc) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if out == nil || fn == nil {
		return failed(fmt.Errorf("%w: FlatMap requires an output schema and a function", ErrBadPlan))
	}
	return &Dataset{node: &flatMapNode{child: d.node, out: out, fn: fn, desc: desc}}
}

// projectNode keeps only the columns at the given input indices. Unlike a
// generic map it is a pure column operation: the vectorized kernel reorders
// column references without touching any cell.
type projectNode struct {
	child   planNode
	out     *storage.Schema
	indices []int
}

func (n *projectNode) schema() *storage.Schema { return n.out }
func (n *projectNode) children() []planNode    { return []planNode{n.child} }
func (n *projectNode) label() string           { return fmt.Sprintf("Project(%v)", n.out.Names()) }

// Project keeps only the named columns, in the given order.
func (d *Dataset) Project(cols ...string) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	out, err := d.node.schema().Project(cols...)
	if err != nil {
		return failed(fmt.Errorf("dataflow: Project: %w", err))
	}
	indices := make([]int, len(cols))
	for i, c := range cols {
		indices[i] = d.node.schema().IndexOf(c)
	}
	return &Dataset{node: &projectNode{child: d.node, out: out, indices: indices}}
}

// withColumnNode appends one derived column computed by a user closure. The
// vectorized kernel evaluates the closure per row over a batch view and
// writes the results into a fresh typed vector; existing columns are shared,
// never copied.
type withColumnNode struct {
	child planNode
	out   *storage.Schema
	field storage.Field
	fn    ColumnFunc
}

func (n *withColumnNode) schema() *storage.Schema { return n.out }
func (n *withColumnNode) children() []planNode    { return []planNode{n.child} }
func (n *withColumnNode) label() string           { return "WithColumn(" + n.field.Name + ")" }

// WithColumn appends a derived column computed by fn.
func (d *Dataset) WithColumn(field storage.Field, fn ColumnFunc) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if fn == nil {
		return failed(fmt.Errorf("%w: nil column function", ErrBadPlan))
	}
	out, err := d.node.schema().Append(field)
	if err != nil {
		return failed(fmt.Errorf("dataflow: WithColumn: %w", err))
	}
	return &Dataset{node: &withColumnNode{child: d.node, out: out, field: field, fn: fn}}
}

type sampleNode struct {
	child    planNode
	fraction float64
	seed     int64
}

func (n *sampleNode) schema() *storage.Schema { return n.child.schema() }
func (n *sampleNode) children() []planNode    { return []planNode{n.child} }
func (n *sampleNode) label() string           { return fmt.Sprintf("Sample(fraction=%.3f)", n.fraction) }

// Sample keeps approximately fraction of the records, chosen pseudo-randomly
// with the given seed.
func (d *Dataset) Sample(fraction float64, seed int64) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if fraction < 0 || fraction > 1 {
		return failed(fmt.Errorf("%w: sample fraction %v out of [0,1]", ErrBadPlan, fraction))
	}
	return &Dataset{node: &sampleNode{child: d.node, fraction: fraction, seed: seed}}
}

type unionNode struct {
	left, right planNode
}

func (n *unionNode) schema() *storage.Schema { return n.left.schema() }
func (n *unionNode) children() []planNode    { return []planNode{n.left, n.right} }
func (n *unionNode) label() string           { return "Union" }

// Union concatenates two datasets with equal schemas.
func (d *Dataset) Union(other *Dataset) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if bad, ok := other.invalid(); ok {
		return bad
	}
	if !d.node.schema().Equal(other.node.schema()) {
		return failed(fmt.Errorf("%w: union of %s and %s", ErrIncompatible, d.node.schema(), other.node.schema()))
	}
	return &Dataset{node: &unionNode{left: d.node, right: other.node}}
}

type limitNode struct {
	child planNode
	n     int
}

func (n *limitNode) schema() *storage.Schema { return n.child.schema() }
func (n *limitNode) children() []planNode    { return []planNode{n.child} }
func (n *limitNode) label() string           { return fmt.Sprintf("Limit(%d)", n.n) }

// Limit keeps at most n records (taken in partition order).
func (d *Dataset) Limit(n int) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if n < 0 {
		return failed(fmt.Errorf("%w: negative limit", ErrBadPlan))
	}
	return &Dataset{node: &limitNode{child: d.node, n: n}}
}

// ---------------------------------------------------------------------------
// Wide transformations
// ---------------------------------------------------------------------------

type distinctNode struct {
	child planNode
	cols  []string
}

func (n *distinctNode) schema() *storage.Schema { return n.child.schema() }
func (n *distinctNode) children() []planNode    { return []planNode{n.child} }
func (n *distinctNode) label() string           { return fmt.Sprintf("Distinct(%v)", n.cols) }

// Distinct removes duplicate rows. When cols are given, uniqueness is decided
// on those columns only (the first occurrence wins).
func (d *Dataset) Distinct(cols ...string) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	for _, c := range cols {
		if !d.node.schema().Has(c) {
			return failed(fmt.Errorf("%w: distinct column %q", storage.ErrUnknownField, c))
		}
	}
	return &Dataset{node: &distinctNode{child: d.node, cols: cols}}
}

// SortOrder pairs a column with a direction.
type SortOrder struct {
	Column     string
	Descending bool
}

type sortNode struct {
	child  planNode
	orders []SortOrder
}

func (n *sortNode) schema() *storage.Schema { return n.child.schema() }
func (n *sortNode) children() []planNode    { return []planNode{n.child} }
func (n *sortNode) label() string           { return fmt.Sprintf("Sort(%v)", n.orders) }

// Sort orders records by the given columns. Sorting is a global operation:
// the engine either range-partitions the data and sorts the ranges in
// parallel (output partitions are ordered end to end, so their concatenation
// is the fully sorted dataset) or, for small inputs and under
// WithRangeSort(false), collapses everything into one sorted partition.
func (d *Dataset) Sort(orders ...SortOrder) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if len(orders) == 0 {
		return failed(fmt.Errorf("%w: Sort requires at least one order", ErrBadPlan))
	}
	for _, o := range orders {
		if !d.node.schema().Has(o.Column) {
			return failed(fmt.Errorf("%w: sort column %q", storage.ErrUnknownField, o.Column))
		}
	}
	return &Dataset{node: &sortNode{child: d.node, orders: orders}}
}

type joinNode struct {
	left, right        planNode
	leftKey, rightKey  string
	kind               JoinType
	out                *storage.Schema
	rightPrefixedNames []string
}

func (n *joinNode) schema() *storage.Schema { return n.out }
func (n *joinNode) children() []planNode    { return []planNode{n.left, n.right} }
func (n *joinNode) label() string {
	return fmt.Sprintf("Join(%s, %s=%s)", n.kind, n.leftKey, n.rightKey)
}

// Join performs a hash equi-join between d (left) and other (right) on
// leftKey = rightKey. The output schema contains every left column followed by
// every right column; right columns whose names collide with a left column are
// prefixed with "right_".
func (d *Dataset) Join(other *Dataset, leftKey, rightKey string, kind JoinType) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if bad, ok := other.invalid(); ok {
		return bad
	}
	ls, rs := d.node.schema(), other.node.schema()
	if !ls.Has(leftKey) {
		return failed(fmt.Errorf("%w: join key %q (left)", storage.ErrUnknownField, leftKey))
	}
	if !rs.Has(rightKey) {
		return failed(fmt.Errorf("%w: join key %q (right)", storage.ErrUnknownField, rightKey))
	}
	if kind != InnerJoin && kind != LeftJoin {
		return failed(fmt.Errorf("%w: unsupported join type %v", ErrBadPlan, kind))
	}
	fields := ls.Fields()
	var rightNames []string
	for _, f := range rs.Fields() {
		name := f.Name
		if ls.Has(name) {
			name = "right_" + name
		}
		rightNames = append(rightNames, name)
		nf := f
		nf.Name = name
		nf.Nullable = nf.Nullable || kind == LeftJoin
		fields = append(fields, nf)
	}
	out, err := storage.NewSchema(fields...)
	if err != nil {
		return failed(fmt.Errorf("dataflow: join schema: %w", err))
	}
	return &Dataset{node: &joinNode{
		left: d.node, right: other.node,
		leftKey: leftKey, rightKey: rightKey,
		kind: kind, out: out, rightPrefixedNames: rightNames,
	}}
}

// GroupedDataset is the intermediate result of GroupBy, awaiting aggregations.
type GroupedDataset struct {
	parent *Dataset
	keys   []string
	err    error
}

// GroupBy groups records by the given key columns.
func (d *Dataset) GroupBy(keys ...string) *GroupedDataset {
	if bad, ok := d.invalid(); ok {
		return &GroupedDataset{err: bad.err}
	}
	if len(keys) == 0 {
		return &GroupedDataset{err: fmt.Errorf("%w: GroupBy requires at least one key", ErrBadPlan)}
	}
	for _, k := range keys {
		if !d.node.schema().Has(k) {
			return &GroupedDataset{err: fmt.Errorf("%w: group key %q", storage.ErrUnknownField, k)}
		}
	}
	return &GroupedDataset{parent: d, keys: keys}
}

type groupByNode struct {
	child planNode
	keys  []string
	aggs  []Aggregation
	out   *storage.Schema
}

func (n *groupByNode) schema() *storage.Schema { return n.out }
func (n *groupByNode) children() []planNode    { return []planNode{n.child} }
func (n *groupByNode) label() string {
	return fmt.Sprintf("GroupBy(keys=%v, aggs=%d)", n.keys, len(n.aggs))
}

// Agg applies the given aggregations to each group. The output schema is the
// key columns followed by one column per aggregation.
func (g *GroupedDataset) Agg(aggs ...Aggregation) *Dataset {
	if g.err != nil {
		return failed(g.err)
	}
	if len(aggs) == 0 {
		return failed(fmt.Errorf("%w: Agg requires at least one aggregation", ErrBadPlan))
	}
	in := g.parent.node.schema()
	fields := make([]storage.Field, 0, len(g.keys)+len(aggs))
	for _, k := range g.keys {
		f, err := in.FieldByName(k)
		if err != nil {
			return failed(err)
		}
		fields = append(fields, f)
	}
	for _, a := range aggs {
		if err := a.validate(in); err != nil {
			return failed(err)
		}
		fields = append(fields, storage.Field{Name: a.OutputName(), Type: a.outputType(in), Nullable: true})
	}
	out, err := storage.NewSchema(fields...)
	if err != nil {
		return failed(fmt.Errorf("dataflow: aggregation schema: %w", err))
	}
	return &Dataset{node: &groupByNode{child: g.parent.node, keys: g.keys, aggs: aggs, out: out}}
}

// ---------------------------------------------------------------------------
// Iteration (fixed point)
// ---------------------------------------------------------------------------

// loopSourceNode is the placeholder standing for the loop-carried state inside
// an Iterate body. The body sub-plan is compiled once, at plan-build time,
// against this node; at execution the engine binds each iteration's current
// state partitions to it (see evalIterate), so the same compiled body re-runs
// every pass without re-planning.
type loopSourceNode struct {
	sch *storage.Schema
}

func (n *loopSourceNode) schema() *storage.Schema { return n.sch }
func (n *loopSourceNode) children() []planNode    { return nil }
func (n *loopSourceNode) label() string           { return fmt.Sprintf("LoopState(%s)", n.sch) }

// iterConvergence selects the convergence predicate of an Iterate node.
type iterConvergence int

const (
	// convFixpoint converges when an iteration's output is row-identical to
	// its input (every column participates in the comparison).
	convFixpoint iterConvergence = iota
	// convKeys converges when the named key columns are unchanged between
	// iterations; other columns may keep churning.
	convKeys
	// convEpsilon converges when the largest absolute change of one numeric
	// column between iterations is at or under epsilon.
	convEpsilon
)

// DefaultMaxIterations bounds Iterate loops that set no explicit
// WithMaxIterations, mirroring analytics.KMeans's default iteration cap.
const DefaultMaxIterations = 100

// iterateNode re-executes its body sub-plan over a loop-carried dataset until
// the convergence predicate holds or maxIter passes have run. init seeds the
// loop; loop is the placeholder the body reads the current state through.
type iterateNode struct {
	init planNode
	body planNode
	loop *loopSourceNode

	maxIter int
	// delta enables per-iteration change detection: partitions whose input
	// batch is unchanged from the previous pass short-circuit on
	// partition-local bodies, and the same fingerprints decide convergence.
	delta bool
	conv  iterConvergence
	// keyCols are the convergence columns under convKeys.
	keyCols []string
	// epsCol/epsilon configure convEpsilon.
	epsCol  string
	epsilon float64
	// requireConverged turns max-iteration exhaustion into ErrNotConverged
	// instead of returning the last state with Stats.IterateConverged false.
	requireConverged bool
}

func (n *iterateNode) schema() *storage.Schema { return n.init.schema() }
func (n *iterateNode) children() []planNode    { return []planNode{n.init, n.body} }
func (n *iterateNode) label() string {
	return fmt.Sprintf("Iterate(maxIter=%d)", n.maxIter)
}

// iterConfig collects the IterOption knobs before validation.
type iterConfig struct {
	maxIter          int
	delta            bool
	conv             iterConvergence
	keyCols          []string
	epsCol           string
	epsilon          float64
	requireConverged bool
}

// IterOption configures an Iterate plan node.
type IterOption func(*iterConfig)

// WithMaxIterations bounds the number of body executions (default
// DefaultMaxIterations). The loop always stops after n passes even when the
// convergence predicate never holds.
func WithMaxIterations(n int) IterOption {
	return func(c *iterConfig) { c.maxIter = n }
}

// WithDeltaDetection toggles per-iteration change detection (default on).
// Enabled, the engine fingerprints every state partition after each pass:
// partition-local bodies skip partitions whose input is unchanged, and
// convergence is decided from the fingerprints without a second comparison
// pass. Disabled, every pass re-executes the full body and convergence
// compares materialised rows.
func WithDeltaDetection(enabled bool) IterOption {
	return func(c *iterConfig) { c.delta = enabled }
}

// WithConvergenceKeys converges the loop when the named columns are unchanged
// between iterations, ignoring churn in the remaining columns. The default
// predicate is a full-row fixpoint.
func WithConvergenceKeys(cols ...string) IterOption {
	return func(c *iterConfig) {
		c.conv = convKeys
		c.keyCols = append([]string(nil), cols...)
	}
}

// WithEpsilon converges the loop when the largest absolute change of the named
// numeric column between two successive states is at or under eps. Rows are
// compared positionally, so epsilon bodies should preserve row identity and
// order (e.g. end with a stable sort on an id column).
func WithEpsilon(col string, eps float64) IterOption {
	return func(c *iterConfig) {
		c.conv = convEpsilon
		c.epsCol = col
		c.epsilon = eps
	}
}

// WithRequireConvergence makes max-iteration exhaustion an error: actions over
// the plan fail with ErrNotConverged instead of returning the last state.
func WithRequireConvergence() IterOption {
	return func(c *iterConfig) { c.requireConverged = true }
}

// Iterate re-executes body over a loop-carried dataset seeded by d until a
// convergence predicate (full-row fixpoint by default; see WithConvergenceKeys
// and WithEpsilon) or a max-iteration bound. body is called exactly once, at
// plan-build time, with a placeholder dataset standing for the current loop
// state; the sub-plan it returns is what the engine re-executes each pass, so
// the body must derive its output from the placeholder (plus any static
// datasets it captures) rather than from side effects. The body's schema must
// equal the seed's: the output of pass k is the input of pass k+1.
func (d *Dataset) Iterate(body func(loop *Dataset) *Dataset, opts ...IterOption) *Dataset {
	if bad, ok := d.invalid(); ok {
		return bad
	}
	if body == nil {
		return failed(fmt.Errorf("%w: Iterate requires a body function", ErrBadPlan))
	}
	cfg := iterConfig{maxIter: DefaultMaxIterations, delta: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxIter < 1 {
		return failed(fmt.Errorf("%w: Iterate needs at least one iteration, got %d", ErrBadPlan, cfg.maxIter))
	}
	sch := d.node.schema()
	switch cfg.conv {
	case convKeys:
		if len(cfg.keyCols) == 0 {
			return failed(fmt.Errorf("%w: WithConvergenceKeys requires at least one column", ErrBadPlan))
		}
		for _, c := range cfg.keyCols {
			if !sch.Has(c) {
				return failed(fmt.Errorf("dataflow: Iterate: %w: convergence key %q not in loop schema %s",
					storage.ErrUnknownField, c, sch))
			}
		}
	case convEpsilon:
		if !(cfg.epsilon >= 0) {
			return failed(fmt.Errorf("%w: WithEpsilon needs eps >= 0, got %v", ErrBadPlan, cfg.epsilon))
		}
		f, err := sch.FieldByName(cfg.epsCol)
		if err != nil {
			return failed(fmt.Errorf("dataflow: Iterate: %w", err))
		}
		if f.Type != storage.TypeInt && f.Type != storage.TypeFloat {
			return failed(fmt.Errorf("%w: WithEpsilon column %q must be numeric, is %v", ErrBadPlan, cfg.epsCol, f.Type))
		}
	}
	loop := &loopSourceNode{sch: sch}
	out := body(&Dataset{node: loop})
	if out == nil {
		return failed(fmt.Errorf("%w: Iterate body returned nil", ErrBadPlan))
	}
	if bad, ok := out.invalid(); ok {
		if bad.err != nil {
			return failed(fmt.Errorf("dataflow: Iterate body: %w", bad.err))
		}
		return bad
	}
	if !out.node.schema().Equal(sch) {
		return failed(fmt.Errorf("%w: Iterate body produces %s, loop state is %s",
			ErrIncompatible, out.node.schema(), sch))
	}
	return &Dataset{node: &iterateNode{
		init: d.node, body: out.node, loop: loop,
		maxIter: cfg.maxIter, delta: cfg.delta,
		conv: cfg.conv, keyCols: cfg.keyCols,
		epsCol: cfg.epsCol, epsilon: cfg.epsilon,
		requireConverged: cfg.requireConverged,
	}}
}
