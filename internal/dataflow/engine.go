package dataflow

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Engine compiles logical plans into tasks and executes them on a simulated
// cluster. Before execution the engine's stage compiler fuses maximal chains
// of narrow operators into single-job stages (see stage.go); wide operators
// remain shuffle boundaries. An Engine is safe for concurrent use.
type Engine struct {
	cluster           *cluster.Cluster
	reg               *metrics.Registry
	shufflePartitions int
	// fuse enables the stage compiler; disabled, every narrow operator runs
	// as its own cluster job (the pre-fusion baseline, kept for ablation).
	fuse bool
	// combine enables the map-side partial aggregation pass before group-by
	// shuffles.
	combine bool
}

// EngineOption configures engine construction.
type EngineOption func(*Engine)

// WithShufflePartitions sets the number of partitions produced by wide
// transformations (group-by, join, distinct). The default is the cluster's
// total slot count.
func WithShufflePartitions(n int) EngineOption {
	return func(e *Engine) {
		if n >= 1 {
			e.shufflePartitions = n
		}
	}
}

// WithFusion toggles the stage compiler (default on). With fusion off every
// narrow operator schedules its own cluster job and materialises its full
// output, which is the baseline the fused benchmarks compare against.
func WithFusion(enabled bool) EngineOption {
	return func(e *Engine) { e.fuse = enabled }
}

// WithMapSideCombine toggles partial aggregation before group-by shuffles
// (default on). With combining off every input row crosses the shuffle
// boundary.
func WithMapSideCombine(enabled bool) EngineOption {
	return func(e *Engine) { e.combine = enabled }
}

// NewEngine returns an engine bound to the given cluster.
func NewEngine(c *cluster.Cluster, opts ...EngineOption) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("dataflow: engine requires a cluster")
	}
	e := &Engine{
		cluster:           c,
		reg:               metrics.NewRegistry(),
		shufflePartitions: c.TotalSlots(),
		fuse:              true,
		combine:           true,
	}
	if e.shufflePartitions < 1 {
		e.shufflePartitions = 1
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Metrics exposes the engine's metric registry (rows read, shuffled, tasks…).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Stats summarises the execution of a single action.
type Stats struct {
	// RowsRead is the number of source rows scanned.
	RowsRead int64
	// RowsOutput is the number of rows in the action result.
	RowsOutput int64
	// ShuffledRows is the number of rows moved across shuffle boundaries.
	ShuffledRows int64
	// Tasks is the number of cluster tasks executed.
	Tasks int64
	// Stages is the number of shuffle stages (wide transformations) executed.
	Stages int64
	// FusedStages is the number of fused stages (two or more narrow
	// operators merged into one cluster job) executed.
	FusedStages int64
	// CombinedRows is the number of rows the map-side combine pass removed
	// from group-by shuffles (input rows minus shuffled partial groups).
	CombinedRows int64
	// WallTime is the end-to-end execution time of the action.
	WallTime time.Duration
}

// Result is the materialised output of Collect.
type Result struct {
	Schema *storage.Schema
	Rows   []storage.Row
	Stats  Stats
}

// Table converts the result into a named storage table.
func (r *Result) Table(name string, opts ...storage.TableOption) (*storage.Table, error) {
	t, err := storage.NewTable(name, r.Schema, opts...)
	if err != nil {
		return nil, err
	}
	if _, err := t.AppendAll(r.Rows); err != nil {
		return nil, err
	}
	return t, nil
}

// Records wraps each result row for named access.
func (r *Result) Records() []Record {
	out := make([]Record, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = Record{schema: r.Schema, row: row}
	}
	return out
}

// execState carries mutable counters through one action execution.
type execState struct {
	mu    sync.Mutex
	stats Stats
}

func (s *execState) addRead(n int)     { s.mu.Lock(); s.stats.RowsRead += int64(n); s.mu.Unlock() }
func (s *execState) addShuffled(n int) { s.mu.Lock(); s.stats.ShuffledRows += int64(n); s.mu.Unlock() }
func (s *execState) addTasks(n int)    { s.mu.Lock(); s.stats.Tasks += int64(n); s.mu.Unlock() }
func (s *execState) addStage()         { s.mu.Lock(); s.stats.Stages++; s.mu.Unlock() }
func (s *execState) addFused()         { s.mu.Lock(); s.stats.FusedStages++; s.mu.Unlock() }
func (s *execState) addCombined(n int) { s.mu.Lock(); s.stats.CombinedRows += int64(n); s.mu.Unlock() }

// Collect executes the plan and materialises every output row.
func (e *Engine) Collect(ctx context.Context, d *Dataset) (*Result, error) {
	if d == nil {
		return nil, ErrNoSource
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	st := &execState{}
	parts, err := e.eval(ctx, d.node, st)
	if err != nil {
		return nil, err
	}
	var rows []storage.Row
	for _, p := range parts {
		rows = append(rows, p...)
	}
	st.stats.RowsOutput = int64(len(rows))
	st.stats.WallTime = time.Since(start)

	e.reg.Counter("actions").Inc()
	e.reg.Counter("rows.read").Add(st.stats.RowsRead)
	e.reg.Counter("rows.output").Add(st.stats.RowsOutput)
	e.reg.Counter("rows.shuffled").Add(st.stats.ShuffledRows)
	e.reg.Counter("tasks").Add(st.stats.Tasks)
	e.reg.Counter("stages.fused").Add(st.stats.FusedStages)
	e.reg.Counter("shuffle.combined").Add(st.stats.CombinedRows)
	e.reg.Timer("action.duration").ObserveDuration(st.stats.WallTime)

	return &Result{Schema: d.Schema(), Rows: rows, Stats: st.stats}, nil
}

// Count executes the plan and returns the number of output rows without
// retaining them.
func (e *Engine) Count(ctx context.Context, d *Dataset) (int64, error) {
	res, err := e.Collect(ctx, d)
	if err != nil {
		return 0, err
	}
	return res.Stats.RowsOutput, nil
}

// eval recursively executes a plan node, returning partitioned rows. With
// fusion enabled, a maximal chain of narrow operators ending at node executes
// as one fused stage (one cluster job, one composed row pipeline per
// partition) instead of one job plus a full materialisation per operator.
func (e *Engine) eval(ctx context.Context, node planNode, st *execState) ([][]storage.Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.fuse {
		if ch, ok := narrowChainOf(node); ok {
			return e.evalFused(ctx, ch, st)
		}
	}
	switch n := node.(type) {
	case *sourceNode:
		total := 0
		for _, p := range n.partitions {
			total += len(p)
		}
		st.addRead(total)
		return n.partitions, nil
	case *filterNode:
		return e.evalFilter(ctx, n, st)
	case *mapNode:
		return e.evalMap(ctx, n, st)
	case *flatMapNode:
		return e.evalFlatMap(ctx, n, st)
	case *sampleNode:
		return e.evalSample(ctx, n, st)
	case *unionNode:
		left, err := e.eval(ctx, n.left, st)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(ctx, n.right, st)
		if err != nil {
			return nil, err
		}
		return append(append([][]storage.Row{}, left...), right...), nil
	case *limitNode:
		return e.evalLimit(ctx, n, st)
	case *distinctNode:
		return e.evalDistinct(ctx, n, st)
	case *sortNode:
		return e.evalSort(ctx, n, st)
	case *groupByNode:
		return e.evalGroupBy(ctx, n, st)
	case *joinNode:
		return e.evalJoin(ctx, n, st)
	default:
		return nil, fmt.Errorf("%w: unknown node %T", ErrBadPlan, node)
	}
}

// runPerPartition executes fn once per input partition as parallel cluster
// tasks and returns the produced partitions in input order.
func (e *Engine) runPerPartition(ctx context.Context, name string, in [][]storage.Row, st *execState,
	fn func(partIdx int, rows []storage.Row) ([]storage.Row, error)) ([][]storage.Row, error) {

	out := make([][]storage.Row, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("%s[%d]", name, i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				rows, err := fn(i, in[i])
				if err != nil {
					return fmt.Errorf("%w: %v", ErrUDF, err)
				}
				out[i] = rows
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, name, tasks); err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", name, err)
	}
	return out, nil
}

// evalFused executes a fused chain of narrow operators as one cluster job
// with one task per input partition. Each task pushes its partition's rows
// through the composed pipeline, so per-operator intermediate partitions are
// never materialised, and a trailing limit stops the partition early.
func (e *Engine) evalFused(ctx context.Context, ch fusedChain, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, ch.base, st)
	if err != nil {
		return nil, err
	}
	name := ch.name()
	out, err := e.runPerPartition(ctx, name, in, st, func(idx int, rows []storage.Row) ([]storage.Row, error) {
		if ch.limit == 0 {
			return nil, nil
		}
		var res []storage.Row
		sink := func(r storage.Row) (bool, error) {
			res = append(res, r)
			return ch.limit < 0 || len(res) < ch.limit, nil
		}
		pipe := ch.compile(idx, sink)
		for _, r := range rows {
			more, err := pipe(r)
			if err != nil {
				return nil, err
			}
			if !more {
				break
			}
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	if len(ch.ops) > 1 {
		st.addFused()
	}
	if ch.limit >= 0 {
		// Global truncation in partition order, matching Limit's semantics
		// of a single output partition.
		capped := make([]storage.Row, 0, ch.limit)
		for _, p := range out {
			for _, r := range p {
				if len(capped) >= ch.limit {
					return [][]storage.Row{capped}, nil
				}
				capped = append(capped, r)
			}
		}
		return [][]storage.Row{capped}, nil
	}
	return out, nil
}

func (e *Engine) evalFilter(ctx context.Context, n *filterNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	return e.runPerPartition(ctx, "filter", in, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		var out []storage.Row
		for _, r := range rows {
			keep, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, r)
			}
		}
		return out, nil
	})
}

func (e *Engine) evalMap(ctx context.Context, n *mapNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	out := n.out
	return e.runPerPartition(ctx, "map", in, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		res := make([]storage.Row, 0, len(rows))
		for _, r := range rows {
			nr, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			if err := storage.ValidateRow(out, nr); err != nil {
				return nil, fmt.Errorf("map output: %w", err)
			}
			res = append(res, nr)
		}
		return res, nil
	})
}

func (e *Engine) evalFlatMap(ctx context.Context, n *flatMapNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	out := n.out
	return e.runPerPartition(ctx, "flatmap", in, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		var res []storage.Row
		for _, r := range rows {
			produced, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			for _, nr := range produced {
				if err := storage.ValidateRow(out, nr); err != nil {
					return nil, fmt.Errorf("flatmap output: %w", err)
				}
				res = append(res, nr)
			}
		}
		return res, nil
	})
}

func (e *Engine) evalSample(ctx context.Context, n *sampleNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	return e.runPerPartition(ctx, "sample", in, st, func(idx int, rows []storage.Row) ([]storage.Row, error) {
		rng := rand.New(rand.NewSource(n.seed + int64(idx)))
		var out []storage.Row
		for _, r := range rows {
			if rng.Float64() < n.fraction {
				out = append(out, r)
			}
		}
		return out, nil
	})
}

func (e *Engine) evalLimit(ctx context.Context, n *limitNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Row, 0, n.n)
	for _, p := range in {
		for _, r := range p {
			if len(out) >= n.n {
				return [][]storage.Row{out}, nil
			}
			out = append(out, r)
		}
	}
	return [][]storage.Row{out}, nil
}

// shuffle redistributes rows into e.shufflePartitions hash buckets, counting
// every moved row. Bucket assignment is computed once per row and the output
// buffers are pre-sized exactly, so the redistribution itself never
// reallocates.
func (e *Engine) shuffle(in [][]storage.Row, key func(storage.Row) string, st *execState) [][]storage.Row {
	st.addStage()
	total := 0
	for _, p := range in {
		total += len(p)
	}
	assign := make([]int32, 0, total)
	counts := make([]int, e.shufflePartitions)
	for _, p := range in {
		for _, r := range p {
			b := storage.HashPartition(key(r), e.shufflePartitions)
			assign = append(assign, int32(b))
			counts[b]++
		}
	}
	buckets := make([][]storage.Row, e.shufflePartitions)
	for b := range buckets {
		buckets[b] = make([]storage.Row, 0, counts[b])
	}
	i := 0
	for _, p := range in {
		for _, r := range p {
			buckets[assign[i]] = append(buckets[assign[i]], r)
			i++
		}
	}
	st.addShuffled(total)
	return buckets
}

func rowKey(schema *storage.Schema, cols []string) func(storage.Row) string {
	if len(cols) == 0 {
		return func(r storage.Row) string {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = storage.AsString(v)
			}
			return strings.Join(parts, "\x1f")
		}
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = schema.IndexOf(c)
	}
	return func(r storage.Row) string {
		parts := make([]string, len(idx))
		for i, j := range idx {
			if j >= 0 && j < len(r) {
				parts[i] = storage.AsString(r[j])
			}
		}
		return strings.Join(parts, "\x1f")
	}
}

func (e *Engine) evalDistinct(ctx context.Context, n *distinctNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	key := rowKey(n.child.schema(), n.cols)
	buckets := e.shuffle(in, key, st)
	return e.runPerPartition(ctx, "distinct", buckets, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		seen := make(map[string]struct{}, len(rows))
		var out []storage.Row
		for _, r := range rows {
			k := key(r)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
		return out, nil
	})
}

func (e *Engine) evalSort(ctx context.Context, n *sortNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	st.addStage()
	var all []storage.Row
	for _, p := range in {
		all = append(all, p...)
	}
	st.addShuffled(len(all))
	schema := n.child.schema()
	idx := make([]int, len(n.orders))
	for i, o := range n.orders {
		idx[i] = schema.IndexOf(o.Column)
	}
	// Global sort runs as a single task so the comparator executes on the
	// cluster like any other work.
	out, err := e.runPerPartition(ctx, "sort", [][]storage.Row{all}, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		sorted := append([]storage.Row(nil), rows...)
		sort.SliceStable(sorted, func(a, b int) bool {
			for k, o := range n.orders {
				c := storage.CompareValues(sorted[a][idx[k]], sorted[b][idx[k]])
				if c == 0 {
					continue
				}
				if o.Descending {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		return sorted, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Engine) evalGroupBy(ctx context.Context, n *groupByNode, st *execState) ([][]storage.Row, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	if e.combine {
		return e.evalGroupByCombined(ctx, n, in, st)
	}
	inSchema := n.child.schema()
	key := rowKey(inSchema, n.keys)
	buckets := e.shuffle(in, key, st)
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		keyIdx[i] = inSchema.IndexOf(k)
	}
	return e.runPerPartition(ctx, "groupby", buckets, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		type group struct {
			keyValues []storage.Value
			states    []*aggState
		}
		groups := make(map[string]*group)
		var order []string
		for _, r := range rows {
			k := key(r)
			g, ok := groups[k]
			if !ok {
				kv := make([]storage.Value, len(keyIdx))
				for i, idx := range keyIdx {
					kv[i] = r[idx]
				}
				states := make([]*aggState, len(n.aggs))
				for i, a := range n.aggs {
					states[i] = newAggState(a, inSchema)
				}
				g = &group{keyValues: kv, states: states}
				groups[k] = g
				order = append(order, k)
			}
			for _, s := range g.states {
				s.update(r)
			}
		}
		out := make([]storage.Row, 0, len(groups))
		for _, k := range order {
			g := groups[k]
			row := make(storage.Row, 0, len(g.keyValues)+len(g.states))
			row = append(row, g.keyValues...)
			for _, s := range g.states {
				row = append(row, s.result())
			}
			out = append(out, row)
		}
		return out, nil
	})
}

// partialGroup is one group's accumulated aggregation state on the map side
// of a combined group-by.
type partialGroup struct {
	key       string
	keyValues []storage.Value
	states    []*aggState
}

// evalGroupByCombined implements group-by with a map-side combine pass: one
// job folds each input partition into per-key partial aggregation states,
// only those partials cross the shuffle boundary (hash-partitioned into
// pre-sized buckets), and a second job merges partials per key and emits the
// final rows. When keys repeat within partitions this shuffles far fewer
// rows than the row-at-a-time path.
func (e *Engine) evalGroupByCombined(ctx context.Context, n *groupByNode, in [][]storage.Row, st *execState) ([][]storage.Row, error) {
	inSchema := n.child.schema()
	key := rowKey(inSchema, n.keys)
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		keyIdx[i] = inSchema.IndexOf(k)
	}

	// Map side: one task per input partition builds partial states.
	partials := make([][]*partialGroup, len(in))
	tasks := make([]cluster.Task, len(in))
	inputRows := 0
	for i := range in {
		i := i
		inputRows += len(in[i])
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("groupby-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				groups := make(map[string]*partialGroup)
				var order []*partialGroup
				for _, r := range in[i] {
					k := key(r)
					g, ok := groups[k]
					if !ok {
						kv := make([]storage.Value, len(keyIdx))
						for j, idx := range keyIdx {
							kv[j] = r[idx]
						}
						states := make([]*aggState, len(n.aggs))
						for j, a := range n.aggs {
							states[j] = newAggState(a, inSchema)
						}
						g = &partialGroup{key: k, keyValues: kv, states: states}
						groups[k] = g
						order = append(order, g)
					}
					for _, s := range g.states {
						s.update(r)
					}
				}
				partials[i] = order
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby-combine: %w", err)
	}

	// Shuffle partial groups instead of raw rows, into pre-sized buckets.
	st.addStage()
	counts := make([]int, e.shufflePartitions)
	moved := 0
	for _, ps := range partials {
		for _, g := range ps {
			counts[storage.HashPartition(g.key, e.shufflePartitions)]++
			moved++
		}
	}
	buckets := make([][]*partialGroup, e.shufflePartitions)
	for b := range buckets {
		buckets[b] = make([]*partialGroup, 0, counts[b])
	}
	for _, ps := range partials {
		for _, g := range ps {
			b := storage.HashPartition(g.key, e.shufflePartitions)
			buckets[b] = append(buckets[b], g)
		}
	}
	st.addShuffled(moved)
	st.addCombined(inputRows - moved)

	// Reduce side: one task per bucket merges partials and emits final rows.
	out := make([][]storage.Row, len(buckets))
	mergeTasks := make([]cluster.Task, len(buckets))
	for b := range buckets {
		b := b
		mergeTasks[b] = cluster.Task{
			Name: fmt.Sprintf("groupby-merge[%d]", b),
			Fn: func(ctx context.Context, node cluster.Node) error {
				merged := make(map[string]*partialGroup, len(buckets[b]))
				var order []*partialGroup
				for _, g := range buckets[b] {
					m, ok := merged[g.key]
					if !ok {
						merged[g.key] = g
						order = append(order, g)
						continue
					}
					for j := range m.states {
						m.states[j].merge(g.states[j])
					}
				}
				rows := make([]storage.Row, 0, len(order))
				for _, g := range order {
					row := make(storage.Row, 0, len(g.keyValues)+len(g.states))
					row = append(row, g.keyValues...)
					for _, s := range g.states {
						row = append(row, s.result())
					}
					rows = append(rows, row)
				}
				out[b] = rows
				return nil
			},
		}
	}
	st.addTasks(len(mergeTasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby-merge", mergeTasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby-merge: %w", err)
	}
	return out, nil
}

func (e *Engine) evalJoin(ctx context.Context, n *joinNode, st *execState) ([][]storage.Row, error) {
	left, err := e.eval(ctx, n.left, st)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(ctx, n.right, st)
	if err != nil {
		return nil, err
	}
	ls, rs := n.left.schema(), n.right.schema()
	lKey := rowKey(ls, []string{n.leftKey})
	rKey := rowKey(rs, []string{n.rightKey})
	lBuckets := e.shuffle(left, lKey, st)
	rBuckets := e.shuffle(right, rKey, st)
	rightWidth := rs.Len()

	return e.runPerPartition(ctx, "join", lBuckets, st, func(idx int, lRows []storage.Row) ([]storage.Row, error) {
		// Build hash table on the right bucket with the same index.
		build := make(map[string][]storage.Row)
		for _, rr := range rBuckets[idx] {
			k := rKey(rr)
			build[k] = append(build[k], rr)
		}
		var out []storage.Row
		for _, lr := range lRows {
			matches := build[lKey(lr)]
			if len(matches) == 0 {
				if n.kind == LeftJoin {
					row := make(storage.Row, 0, len(lr)+rightWidth)
					row = append(row, lr...)
					for i := 0; i < rightWidth; i++ {
						row = append(row, nil)
					}
					out = append(out, row)
				}
				continue
			}
			for _, rr := range matches {
				row := make(storage.Row, 0, len(lr)+len(rr))
				row = append(row, lr...)
				row = append(row, rr...)
				out = append(out, row)
			}
		}
		return out, nil
	})
}
