package dataflow

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Wide-operator tuning defaults.
const (
	// defaultBroadcastThreshold is the build-side row count under which a join
	// broadcasts the build side instead of shuffling both inputs.
	defaultBroadcastThreshold = 10_000
	// sortSamplesPerPartition is the number of rows sampled per output
	// partition to derive range-sort split points.
	sortSamplesPerPartition = 32
	// rangeSortMinRowsPerPartition is the minimum average partition size worth
	// a range shuffle; smaller inputs sort in a single task.
	rangeSortMinRowsPerPartition = 64
)

// SortChunkRows is the fixed chunk size of the external merge sort: under a
// memory budget each partition sorts SortChunkRows-row chunks into sorted
// runs that spill through the batch codec and merge back with a loser tree,
// so the sort's resident accumulation is bounded by runs × chunk instead of
// the partition size. Exported so the ablation benchmarks can state the
// bound they assert.
const SortChunkRows = 4096

// Engine compiles logical plans into tasks and executes them on a simulated
// cluster. Before execution the engine's stage compiler fuses maximal chains
// of narrow operators into single-job stages (see stage.go); wide operators
// remain shuffle boundaries, but each picks a physical strategy: sort range-
// partitions and sorts partitions in parallel, join broadcasts small build
// sides, distinct dedups map-side before shuffling. An Engine is safe for
// concurrent use.
type Engine struct {
	cluster           *cluster.Cluster
	reg               *metrics.Registry
	shufflePartitions int
	// fuse enables the stage compiler; disabled, every narrow operator runs
	// as its own cluster job (the pre-fusion baseline, kept for ablation).
	fuse bool
	// combine enables the map-side partial aggregation pass before group-by
	// shuffles.
	combine bool
	// rangeSort enables the range-partitioned parallel sort; disabled, sort
	// collapses into a single cluster task (the pre-overhaul baseline).
	rangeSort bool
	// broadcastJoin enables broadcasting build sides below
	// broadcastThreshold rows; disabled, every join shuffles both inputs.
	broadcastJoin      bool
	broadcastThreshold int
	// mapSideDistinct enables per-partition dedup before the distinct
	// shuffle, with the computed keys carried through it.
	mapSideDistinct bool
	// vectorize enables columnar batch execution: fused narrow stages run as
	// column kernels over storage.ColumnBatch partitions and wide operators
	// shuffle by batch index. Disabled, every partition is a []storage.Row
	// and operators run row at a time (the ablation baseline).
	vectorize bool
	// columnarSort enables the typed-key columnar sort core under vectorized
	// execution: selection vectors are ordered by per-type compare kernels
	// directly over the column vectors, and under a memory budget the sort
	// runs as a spill-aware external merge. Disabled, Sort materialises its
	// batches back into boxed rows and sorts with the interface-based row
	// comparators (the pre-typed-sort behaviour, kept for ablation).
	columnarSort bool
	// columnarAgg enables the columnar group-by core under vectorized
	// execution: a storage.GroupTable maps keys to dense group ids and
	// aggregations accumulate into typed vectors indexed by group id, with
	// the non-combined path's group state spill-aware under a memory budget.
	// Disabled, group-by falls back to the boxed per-group aggState maps (the
	// pre-columnar behaviour, kept for ablation).
	columnarAgg bool
	// strictValidate re-enables per-row schema validation of every Map and
	// FlatMap output on the row-at-a-time paths. Off (the default), only the
	// first output row of each partition is validated eagerly; the vectorized
	// path always validates, because unboxing into typed vectors is the
	// validation.
	strictValidate bool
	// memoryBudget bounds the resident bytes of each wide operator's batch
	// accumulation (shuffle buckets, sort inputs, join build sides): batches
	// past the budget spill to temp files and are restored transparently on
	// read. <= 0 (the default) means unlimited — nothing ever spills.
	memoryBudget int64
	// spillCompress enables the compressed v2 frame codec for every spill
	// store the engine creates (dictionary strings, delta ints, RLE bitmaps —
	// see storage/frame.go). Disabled, spills use the raw v1 layout (the
	// compression ablation baseline). Decoding accepts both either way.
	spillCompress bool

	// spillDir places every spill temp file this engine creates ("" keeps
	// os.TempDir()).
	spillDir string
}

// codec returns the batch codec options every spill store created by this
// engine should use.
func (e *Engine) codec() storage.CodecOptions {
	return storage.CodecOptions{Compress: e.spillCompress}
}

// part is one partition of intermediate data: a boxed row slice, a columnar
// batch, or both (sources keep their original rows next to the cached batch,
// so row-path consumers never pay a conversion). Operators that have a
// vectorized implementation consume batches directly; everything else
// materialises rows on demand.
type part struct {
	rows  []storage.Row
	batch *storage.ColumnBatch
}

func rowPart(rows []storage.Row) part       { return part{rows: rows} }
func batchPart(b *storage.ColumnBatch) part { return part{batch: b} }
func (p part) isBatch() bool                { return p.batch != nil }
func (p part) len() int {
	if p.batch != nil {
		return p.batch.Len()
	}
	return len(p.rows)
}

// toRows materialises the partition as boxed rows (free when the partition
// carries rows already).
func (p part) toRows() []storage.Row {
	if p.rows != nil || p.batch == nil {
		return p.rows
	}
	return p.batch.Rows()
}

// eachRow feeds the partition's rows to f, stopping on error or when f
// reports it needs no more input. Batch-backed partitions materialise one row
// at a time, so an early-stopping consumer (a limit-capped pipeline) never
// pays for rows it does not pull.
func (p part) eachRow(f func(storage.Row) (bool, error)) error {
	if p.rows == nil && p.batch != nil {
		for i := 0; i < p.batch.Len(); i++ {
			more, err := f(p.batch.Row(i))
			if err != nil || !more {
				return err
			}
		}
		return nil
	}
	for _, r := range p.rows {
		more, err := f(r)
		if err != nil || !more {
			return err
		}
	}
	return nil
}

// rowParts wraps row partitions.
func rowParts(in [][]storage.Row) []part {
	out := make([]part, len(in))
	for i, p := range in {
		out[i] = rowPart(p)
	}
	return out
}

// partsToRows materialises every partition as boxed rows.
func partsToRows(in []part) [][]storage.Row {
	out := make([][]storage.Row, len(in))
	for i, p := range in {
		out[i] = p.toRows()
	}
	return out
}

// batchesOf returns the columnar form of the partitions when every one is
// batch-backed; ok is false as soon as one partition is row-backed (the
// caller then takes the row path).
func batchesOf(in []part) ([]*storage.ColumnBatch, bool) {
	out := make([]*storage.ColumnBatch, len(in))
	for i, p := range in {
		if p.batch == nil {
			return nil, false
		}
		out[i] = p.batch
	}
	return out, true
}

func countParts(in []part) int {
	total := 0
	for _, p := range in {
		total += p.len()
	}
	return total
}

// EngineOption configures engine construction.
type EngineOption func(*Engine)

// WithShufflePartitions sets the number of partitions produced by wide
// transformations (group-by, join, distinct). The default is the cluster's
// total slot count.
func WithShufflePartitions(n int) EngineOption {
	return func(e *Engine) {
		if n >= 1 {
			e.shufflePartitions = n
		}
	}
}

// WithFusion toggles the stage compiler (default on). With fusion off every
// narrow operator schedules its own cluster job and materialises its full
// output, which is the baseline the fused benchmarks compare against.
func WithFusion(enabled bool) EngineOption {
	return func(e *Engine) { e.fuse = enabled }
}

// WithMapSideCombine toggles partial aggregation before group-by shuffles
// (default on). With combining off every input row crosses the shuffle
// boundary.
func WithMapSideCombine(enabled bool) EngineOption {
	return func(e *Engine) { e.combine = enabled }
}

// WithRangeSort toggles the range-partitioned parallel sort (default on).
// With it off — or when the input is too small to be worth a shuffle — Sort
// runs as one global task, the pre-overhaul baseline kept for ablation.
func WithRangeSort(enabled bool) EngineOption {
	return func(e *Engine) { e.rangeSort = enabled }
}

// WithBroadcastJoin toggles the broadcast hash join strategy (default on).
// With it off every join shuffles both inputs regardless of size.
func WithBroadcastJoin(enabled bool) EngineOption {
	return func(e *Engine) { e.broadcastJoin = enabled }
}

// WithBroadcastThreshold sets the build-side row count at or under which a
// join broadcasts instead of shuffling (default 10000). Non-positive values
// are ignored; use WithBroadcastJoin(false) to disable broadcasting.
func WithBroadcastThreshold(rows int) EngineOption {
	return func(e *Engine) {
		if rows > 0 {
			e.broadcastThreshold = rows
		}
	}
}

// WithMapSideDistinct toggles per-partition dedup before the distinct shuffle
// (default on). With it off every input row crosses the shuffle boundary and
// is keyed again on the reduce side.
func WithMapSideDistinct(enabled bool) EngineOption {
	return func(e *Engine) { e.mapSideDistinct = enabled }
}

// WithVectorizedExecution toggles columnar batch execution (default on).
// Enabled, partitions travel as typed column vectors: fused stages run batch
// kernels (filters build selection vectors, projections and derived columns
// are column-level operations, arbitrary user closures read through zero-copy
// per-row views) and wide operators key and move rows by batch index.
// Disabled, the engine runs the row-at-a-time baseline kept for ablation.
func WithVectorizedExecution(enabled bool) EngineOption {
	return func(e *Engine) { e.vectorize = enabled }
}

// WithColumnarSort toggles the typed-key columnar sort core (default on).
// Enabled (and with vectorized execution on), Sort orders selection vectors
// with per-type compare kernels directly over the column vectors and, under
// a memory budget, runs as a spill-aware external merge of sorted runs.
// Disabled, Sort materialises its batch inputs back into boxed rows and
// sorts with the interface-based row comparators — the pre-typed-sort
// behaviour kept as the "boxed" arm of BenchmarkSortColumnar. Row-at-a-time
// execution (WithVectorizedExecution(false)) ignores this switch.
func WithColumnarSort(enabled bool) EngineOption {
	return func(e *Engine) { e.columnarSort = enabled }
}

// WithColumnarAgg toggles the columnar group-by core (default on). Enabled
// (and with vectorized execution on), GroupBy maps keys to dense group ids
// through a storage.GroupTable and accumulates every aggregation in typed
// vectors indexed by group id — one tight typed pass per aggregation instead
// of per-row interface dispatch over boxed state. Under a memory budget the
// non-combined path's group state is itself spill-aware: overflowing state is
// flushed as partial rows, hash-partitioned through the batch codec, and
// re-aggregated runs-then-merge style. Disabled, GroupBy uses the boxed
// per-group aggState maps — the "boxed" arm of BenchmarkGroupByVectorized.
// Row-at-a-time execution (WithVectorizedExecution(false)) ignores this
// switch.
func WithColumnarAgg(enabled bool) EngineOption {
	return func(e *Engine) { e.columnarAgg = enabled }
}

// WithStrictValidation re-enables schema validation of every Map/FlatMap
// output row on the row-at-a-time paths (default off). With it off, only the
// first output row of each partition is validated, which catches the common
// mistake — a closure whose rows never match the declared schema — without
// paying a full per-row type walk. The vectorized path always validates:
// storing a cell into a typed column vector is the check.
func WithStrictValidation(enabled bool) EngineOption {
	return func(e *Engine) { e.strictValidate = enabled }
}

// WithMemoryBudget bounds the bytes of columnar batch data each wide
// operator keeps resident while accumulating (per partition store: one per
// shuffle side, sort input staging, or distinct survivor set). Once an
// accumulation exceeds the budget its coldest batches are spilled to temp
// files and restored transparently when the consuming tasks read them, so
// wide operators run within budget on inputs that exceed RAM. bytes <= 0 (the
// default) disables spilling. The budget only governs the vectorized
// engine's columnar partitions; row-at-a-time ablation modes ignore it.
func WithMemoryBudget(bytes int64) EngineOption {
	return func(e *Engine) { e.memoryBudget = bytes }
}

// WithSpillCompression toggles the compressed spill frame codec (default on).
// Enabled, every batch a wide operator spills under the memory budget is
// encoded as a v2 frame: string columns dictionary-encoded, int columns
// delta-varint, null bitmaps and bools run-length encoded, with a raw
// fallback per column whenever an encoding doesn't win. Disabled, spills use
// the raw v1 layout — the ablation arm that measures what compression buys.
// Reads accept both formats regardless of this switch, and
// Stats.SpillLogicalBytes always reports the v1-equivalent size so the two
// arms compare physical bytes on equal footing.
func WithSpillCompression(enabled bool) EngineOption {
	return func(e *Engine) { e.spillCompress = enabled }
}

// WithSpillDir places every spill temp file the engine creates (shuffle
// gathers, sort runs, aggregation overflow, loop state) in dir instead of
// the system temp directory. "" (the default) keeps os.TempDir(); the
// directory must already exist.
func WithSpillDir(dir string) EngineOption {
	return func(e *Engine) { e.spillDir = dir }
}

// NewEngine returns an engine bound to the given cluster.
func NewEngine(c *cluster.Cluster, opts ...EngineOption) (*Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("dataflow: engine requires a cluster")
	}
	e := &Engine{
		cluster:            c,
		reg:                metrics.NewRegistry(),
		shufflePartitions:  c.TotalSlots(),
		fuse:               true,
		combine:            true,
		rangeSort:          true,
		broadcastJoin:      true,
		broadcastThreshold: defaultBroadcastThreshold,
		mapSideDistinct:    true,
		vectorize:          true,
		columnarSort:       true,
		columnarAgg:        true,
		spillCompress:      true,
	}
	if e.shufflePartitions < 1 {
		e.shufflePartitions = 1
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Metrics exposes the engine's metric registry (rows read, shuffled, tasks…).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Derive returns a copy of the engine with the given options applied on top
// of this engine's configuration. The copy shares the cluster and the metrics
// registry, so derived engines are cheap and their executions fold into the
// same counters — the analytics layer uses this to run sub-plans that need a
// specific switch (e.g. map-side combine off for bit-exact float
// aggregation) without rebuilding the engine stack.
func (e *Engine) Derive(opts ...EngineOption) *Engine {
	ne := *e
	for _, opt := range opts {
		opt(&ne)
	}
	return &ne
}

// Stats summarises the execution of a single action.
type Stats struct {
	// RowsRead is the number of source rows scanned.
	RowsRead int64
	// RowsOutput is the number of rows in the action result.
	RowsOutput int64
	// ShuffledRows is the number of rows moved across shuffle boundaries.
	ShuffledRows int64
	// Tasks is the number of cluster tasks executed.
	Tasks int64
	// Stages is the number of shuffle stages (wide transformations) executed.
	Stages int64
	// FusedStages is the number of fused stages (two or more narrow
	// operators merged into one cluster job) executed.
	FusedStages int64
	// CombinedRows is the number of rows the map-side combine pass removed
	// from group-by shuffles (input rows minus shuffled partial groups).
	CombinedRows int64
	// BroadcastJoins is the number of joins executed with the broadcast-hash
	// strategy (build side at or under the threshold), shuffling zero rows.
	BroadcastJoins int64
	// SortSampledRows is the number of rows sampled to derive range-sort
	// split points.
	SortSampledRows int64
	// SortRuns is the number of sorted runs the external merge sort spilled
	// and merged. Zero when sorts ran columnar in-memory or row-at-a-time.
	SortRuns int64
	// SortMergedBatches is the number of output batches the external sort's
	// loser-tree merges emitted.
	SortMergedBatches int64
	// SortPeakResidentBytes is the largest resident footprint any single
	// partition's run store reached while sorting externally — the measured
	// side of the runs × chunk memory bound.
	SortPeakResidentBytes int64
	// AggGroups is the number of distinct groups group-by aggregations
	// emitted (summed across buckets and group-by operators).
	AggGroups int64
	// AggSpilledPartitions is the number of spill sub-partitions the
	// budget-bounded hash aggregation flushed overflowing group state into
	// and merged back. Zero when group state fit in memory.
	AggSpilledPartitions int64
	// AggPeakResidentBytes is the largest resident group-state footprint
	// (hash table plus accumulator vectors) any single aggregation task
	// reached — the measured side of the spilling hash-agg's memory bound.
	// Tracked by the columnar aggregation core only; boxed ablation arms
	// report zero.
	AggPeakResidentBytes int64
	// DistinctPrecombinedRows is the number of duplicate rows the map-side
	// dedup pass removed before distinct shuffles.
	DistinctPrecombinedRows int64
	// Batches is the number of columnar batches processed by vectorized
	// kernels (fused-stage pipelines and batch shuffles). Zero under
	// WithVectorizedExecution(false).
	Batches int64
	// BatchRows is the number of rows those batches carried.
	BatchRows int64
	// SpilledBatches is the number of columnar batches written to spill
	// files because a wide operator's accumulation exceeded the memory
	// budget. Zero without WithMemoryBudget.
	SpilledBatches int64
	// SpilledBytes is the cumulative physical bytes written to spill files —
	// the actual disk write traffic, compressed when spill compression is on.
	SpilledBytes int64
	// SpillLogicalBytes is the cumulative raw (v1-equivalent) size of the
	// same spilled batches: what SpilledBytes would have been without the
	// compressed codec. SpillLogicalBytes/SpilledBytes is the achieved
	// compression ratio; the two are equal under WithSpillCompression(false).
	SpillLogicalBytes int64
	// SpillFilePeakBytes is the largest on-disk size any single spill file
	// reached — the physical-disk high-water mark, as opposed to the
	// cumulative write traffic of SpilledBytes. Spill files are append-only,
	// so per store this is simply its final file size; across stores the
	// engine keeps the maximum.
	SpillFilePeakBytes int64
	// IterateLoops is the number of Iterate nodes the action executed.
	IterateLoops int64
	// IterateIterations is the total number of body passes Iterate nodes ran
	// (summed across loops; a loop that converges on its third pass adds 3).
	IterateIterations int64
	// IterateDeltaRows is the number of loop-state rows that lived in changed
	// partitions across all iterations — the rows delta detection actually had
	// to re-fingerprint as new. With delta detection off every output row of
	// every pass counts.
	IterateDeltaRows int64
	// IterateShortCircuitPartitions is the number of partition re-executions
	// delta detection skipped because the partition's input batch was
	// fingerprint-identical to the previous pass (partition-local bodies
	// only).
	IterateShortCircuitPartitions int64
	// IterateConverged reports whether every Iterate loop in the action
	// reached its convergence predicate before the max-iteration bound. False
	// when no Iterate node ran (check IterateLoops).
	IterateConverged bool
	// WallTime is the end-to-end execution time of the action.
	WallTime time.Duration
}

// Result is the materialised output of Collect.
type Result struct {
	Schema *storage.Schema
	Rows   []storage.Row
	Stats  Stats
}

// Table converts the result into a named storage table.
func (r *Result) Table(name string, opts ...storage.TableOption) (*storage.Table, error) {
	t, err := storage.NewTable(name, r.Schema, opts...)
	if err != nil {
		return nil, err
	}
	if _, err := t.AppendAll(r.Rows); err != nil {
		return nil, err
	}
	return t, nil
}

// Records wraps each result row for named access.
func (r *Result) Records() []Record {
	out := make([]Record, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = Record{schema: r.Schema, row: row}
	}
	return out
}

// execState carries mutable counters through one action execution.
type execState struct {
	mu    sync.Mutex
	stats Stats
	// loopState binds each loopSourceNode to the current iteration's state
	// partitions while its Iterate loop runs. Keyed on the node rather than
	// stored in it, so concurrent actions over the same plan never share
	// mutable state.
	loopState map[*loopSourceNode][]part
}

// bindLoop points the loop placeholder at the partitions the next body pass
// reads as its input.
func (s *execState) bindLoop(n *loopSourceNode, parts []part) {
	s.mu.Lock()
	if s.loopState == nil {
		s.loopState = make(map[*loopSourceNode][]part, 1)
	}
	s.loopState[n] = parts
	s.mu.Unlock()
}

func (s *execState) unbindLoop(n *loopSourceNode) {
	s.mu.Lock()
	delete(s.loopState, n)
	s.mu.Unlock()
}

func (s *execState) loopBinding(n *loopSourceNode) ([]part, bool) {
	s.mu.Lock()
	parts, ok := s.loopState[n]
	s.mu.Unlock()
	return parts, ok
}

func (s *execState) addRead(n int)     { s.mu.Lock(); s.stats.RowsRead += int64(n); s.mu.Unlock() }
func (s *execState) addShuffled(n int) { s.mu.Lock(); s.stats.ShuffledRows += int64(n); s.mu.Unlock() }
func (s *execState) addTasks(n int)    { s.mu.Lock(); s.stats.Tasks += int64(n); s.mu.Unlock() }
func (s *execState) addStage()         { s.mu.Lock(); s.stats.Stages++; s.mu.Unlock() }
func (s *execState) addFused()         { s.mu.Lock(); s.stats.FusedStages++; s.mu.Unlock() }
func (s *execState) addCombined(n int) { s.mu.Lock(); s.stats.CombinedRows += int64(n); s.mu.Unlock() }
func (s *execState) addBroadcast()     { s.mu.Lock(); s.stats.BroadcastJoins++; s.mu.Unlock() }
func (s *execState) addSampled(n int) {
	s.mu.Lock()
	s.stats.SortSampledRows += int64(n)
	s.mu.Unlock()
}
func (s *execState) addSortRuns(n int) {
	s.mu.Lock()
	s.stats.SortRuns += int64(n)
	s.mu.Unlock()
}
func (s *execState) addSortMerged(n int) {
	s.mu.Lock()
	s.stats.SortMergedBatches += int64(n)
	s.mu.Unlock()
}
func (s *execState) noteSortPeak(bytes int64) {
	s.mu.Lock()
	if bytes > s.stats.SortPeakResidentBytes {
		s.stats.SortPeakResidentBytes = bytes
	}
	s.mu.Unlock()
}
func (s *execState) addAggGroups(n int) {
	s.mu.Lock()
	s.stats.AggGroups += int64(n)
	s.mu.Unlock()
}
func (s *execState) addAggSpilledParts(n int) {
	s.mu.Lock()
	s.stats.AggSpilledPartitions += int64(n)
	s.mu.Unlock()
}
func (s *execState) noteAggPeak(bytes int64) {
	s.mu.Lock()
	if bytes > s.stats.AggPeakResidentBytes {
		s.stats.AggPeakResidentBytes = bytes
	}
	s.mu.Unlock()
}
func (s *execState) addPrecombined(n int) {
	s.mu.Lock()
	s.stats.DistinctPrecombinedRows += int64(n)
	s.mu.Unlock()
}
func (s *execState) addBatches(batches, rows int) {
	s.mu.Lock()
	s.stats.Batches += int64(batches)
	s.stats.BatchRows += int64(rows)
	s.mu.Unlock()
}
func (s *execState) addSpilled(batches, bytes, logical int64) {
	s.mu.Lock()
	s.stats.SpilledBatches += batches
	s.stats.SpilledBytes += bytes
	s.stats.SpillLogicalBytes += logical
	s.mu.Unlock()
}

// noteIterate folds one Iterate loop's totals into the stats.
// IterateConverged is the conjunction across loops: one loop that exhausts
// its bound marks the whole action unconverged.
func (s *execState) noteIterate(iterations, deltaRows, shortCircuit int64, converged bool) {
	s.mu.Lock()
	if s.stats.IterateLoops == 0 {
		s.stats.IterateConverged = converged
	} else {
		s.stats.IterateConverged = s.stats.IterateConverged && converged
	}
	s.stats.IterateLoops++
	s.stats.IterateIterations += iterations
	s.stats.IterateDeltaRows += deltaRows
	s.stats.IterateShortCircuitPartitions += shortCircuit
	s.mu.Unlock()
}

func (s *execState) noteSpillFilePeak(bytes int64) {
	s.mu.Lock()
	if bytes > s.stats.SpillFilePeakBytes {
		s.stats.SpillFilePeakBytes = bytes
	}
	s.mu.Unlock()
}

// releaseStore folds a partition store's spill counters into the stats and
// releases its spill file. Callers defer it as soon as the store exists, so
// temp files are cleaned up on every error path.
func (s *execState) releaseStore(store *storage.PartitionStore) {
	s.addSpilled(store.SpilledBatches(), store.SpilledBytes(), store.SpilledLogicalBytes())
	s.noteSpillFilePeak(store.FileBytes())
	_ = store.Close()
}

// execute runs the plan and returns the output partitions in their internal
// representation, with stats finalised and metrics recorded.
func (e *Engine) execute(ctx context.Context, d *Dataset) ([]part, *execState, error) {
	if d == nil {
		return nil, nil, ErrNoSource
	}
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	if err := validateWideColumns(d.node); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	st := &execState{}
	parts, err := e.eval(ctx, d.node, st)
	if err != nil {
		return nil, nil, err
	}
	st.stats.RowsOutput = int64(countParts(parts))
	st.stats.WallTime = time.Since(start)

	e.reg.Counter("actions").Inc()
	e.reg.Counter("rows.read").Add(st.stats.RowsRead)
	e.reg.Counter("rows.output").Add(st.stats.RowsOutput)
	e.reg.Counter("rows.shuffled").Add(st.stats.ShuffledRows)
	e.reg.Counter("tasks").Add(st.stats.Tasks)
	e.reg.Counter("stages.fused").Add(st.stats.FusedStages)
	e.reg.Counter("shuffle.combined").Add(st.stats.CombinedRows)
	e.reg.Counter("joins.broadcast").Add(st.stats.BroadcastJoins)
	e.reg.Counter("sort.sampled").Add(st.stats.SortSampledRows)
	e.reg.Counter("sort.runs").Add(st.stats.SortRuns)
	e.reg.Counter("sort.merged.batches").Add(st.stats.SortMergedBatches)
	e.reg.Counter("agg.groups").Add(st.stats.AggGroups)
	e.reg.Counter("agg.spilled.partitions").Add(st.stats.AggSpilledPartitions)
	e.reg.Counter("distinct.precombined").Add(st.stats.DistinctPrecombinedRows)
	e.reg.Counter("batches").Add(st.stats.Batches)
	e.reg.Counter("batches.rows").Add(st.stats.BatchRows)
	e.reg.Counter("spill.batches").Add(st.stats.SpilledBatches)
	e.reg.Counter("spill.bytes").Add(st.stats.SpilledBytes)
	e.reg.Counter("spill.bytes.logical").Add(st.stats.SpillLogicalBytes)
	// Monotonic compression win: logical minus physical bytes. Divide the
	// logical counter by (logical - saved) for the cumulative ratio.
	e.reg.Counter("spill.bytes.saved").Add(st.stats.SpillLogicalBytes - st.stats.SpilledBytes)
	e.reg.Counter("iterate.iterations").Add(st.stats.IterateIterations)
	e.reg.Counter("iterate.delta.rows").Add(st.stats.IterateDeltaRows)
	e.reg.Counter("iterate.shortcircuit.partitions").Add(st.stats.IterateShortCircuitPartitions)
	e.reg.Timer("action.duration").ObserveDuration(st.stats.WallTime)
	return parts, st, nil
}

// Collect executes the plan and materialises every output row.
func (e *Engine) Collect(ctx context.Context, d *Dataset) (*Result, error) {
	parts, st, err := e.execute(ctx, d)
	if err != nil {
		return nil, err
	}
	var rows []storage.Row
	if total := countParts(parts); total > 0 {
		rows = make([]storage.Row, 0, total)
	}
	for _, p := range parts {
		rows = append(rows, p.toRows()...)
	}
	return &Result{Schema: d.Schema(), Rows: rows, Stats: st.stats}, nil
}

// Count executes the plan and returns the number of output rows without
// materialising them: batch-backed output partitions are only counted, never
// converted back to boxed rows.
func (e *Engine) Count(ctx context.Context, d *Dataset) (int64, error) {
	_, st, err := e.execute(ctx, d)
	if err != nil {
		return 0, err
	}
	return st.stats.RowsOutput, nil
}

// CountStats is Count plus the execution statistics of the action.
func (e *Engine) CountStats(ctx context.Context, d *Dataset) (int64, Stats, error) {
	_, st, err := e.execute(ctx, d)
	if err != nil {
		return 0, Stats{}, err
	}
	return st.stats.RowsOutput, st.stats, nil
}

// validateWideColumns walks the plan and verifies that every column a wide
// operator keys on exists in its input schema. The Dataset builders already
// reject unknown columns, but plans assembled through other paths used to
// reach the executor and panic with an index of -1 mid-task; validating the
// whole tree up front turns that into a descriptive error before any task is
// scheduled.
func validateWideColumns(node planNode) error {
	if node == nil {
		return fmt.Errorf("%w: nil plan node", ErrBadPlan)
	}
	requireAll := func(op string, in *storage.Schema, cols []string) error {
		for _, c := range cols {
			if in.IndexOf(c) < 0 {
				return fmt.Errorf("dataflow: %s: %w: column %q not in input schema %s",
					op, storage.ErrUnknownField, c, in)
			}
		}
		return nil
	}
	switch n := node.(type) {
	case *sortNode:
		cols := make([]string, len(n.orders))
		for i, o := range n.orders {
			cols[i] = o.Column
		}
		if err := requireAll("sort", n.child.schema(), cols); err != nil {
			return err
		}
	case *distinctNode:
		if err := requireAll("distinct", n.child.schema(), n.cols); err != nil {
			return err
		}
	case *groupByNode:
		if err := requireAll("group-by", n.child.schema(), n.keys); err != nil {
			return err
		}
	case *joinNode:
		if err := requireAll("join (left)", n.left.schema(), []string{n.leftKey}); err != nil {
			return err
		}
		if err := requireAll("join (right)", n.right.schema(), []string{n.rightKey}); err != nil {
			return err
		}
	}
	for _, c := range node.children() {
		if err := validateWideColumns(c); err != nil {
			return err
		}
	}
	return nil
}

// eval recursively executes a plan node, returning its output partitions.
// With fusion enabled, a maximal chain of narrow operators ending at node
// executes as one fused stage (one cluster job per stage); under vectorized
// execution the stage runs batch kernels over columnar partitions, otherwise
// one composed row pipeline per partition.
func (e *Engine) eval(ctx context.Context, node planNode, st *execState) ([]part, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.fuse {
		if ch, ok := narrowChainOf(node); ok {
			// Chains capped by a trailing limit keep the pull-based row
			// pipeline: its per-partition early stop (quit as soon as limit
			// rows were emitted) is worth more than any kernel, and batch
			// kernels would eagerly process whole partitions.
			if e.vectorize && ch.limit < 0 {
				return e.evalFusedVectorized(ctx, ch, st)
			}
			return e.evalFused(ctx, ch, st)
		}
	}
	switch n := node.(type) {
	case *sourceNode:
		return e.evalSource(n, st)
	case *filterNode:
		if e.vectorize {
			return e.evalSingleOpVectorized(ctx, n, n.child, st)
		}
		return e.evalFilter(ctx, n, st)
	case *mapNode:
		if e.vectorize {
			return e.evalSingleOpVectorized(ctx, n, n.child, st)
		}
		return e.evalMap(ctx, n, st)
	case *flatMapNode:
		if e.vectorize {
			return e.evalSingleOpVectorized(ctx, n, n.child, st)
		}
		return e.evalFlatMap(ctx, n, st)
	case *projectNode:
		if e.vectorize {
			return e.evalSingleOpVectorized(ctx, n, n.child, st)
		}
		return e.evalProject(ctx, n, st)
	case *withColumnNode:
		if e.vectorize {
			return e.evalSingleOpVectorized(ctx, n, n.child, st)
		}
		return e.evalWithColumn(ctx, n, st)
	case *sampleNode:
		if e.vectorize {
			return e.evalSingleOpVectorized(ctx, n, n.child, st)
		}
		return e.evalSample(ctx, n, st)
	case *unionNode:
		left, err := e.eval(ctx, n.left, st)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(ctx, n.right, st)
		if err != nil {
			return nil, err
		}
		return append(append([]part{}, left...), right...), nil
	case *limitNode:
		return e.evalLimit(ctx, n, st)
	case *iterateNode:
		return e.evalIterate(ctx, n, st)
	case *loopSourceNode:
		parts, ok := st.loopBinding(n)
		if !ok {
			return nil, fmt.Errorf("%w: loop state referenced outside its Iterate", ErrBadPlan)
		}
		return parts, nil
	case *distinctNode:
		return e.evalDistinct(ctx, n, st)
	case *sortNode:
		return e.evalSort(ctx, n, st)
	case *groupByNode:
		return e.evalGroupBy(ctx, n, st)
	case *joinNode:
		return e.evalJoin(ctx, n, st)
	default:
		return nil, fmt.Errorf("%w: unknown node %T", ErrBadPlan, node)
	}
}

// evalSource returns the source partitions: columnar batches under vectorized
// execution (converted once per plan and cached), boxed rows otherwise.
func (e *Engine) evalSource(n *sourceNode, st *execState) ([]part, error) {
	total := 0
	for _, p := range n.partitions {
		total += len(p)
	}
	st.addRead(total)
	if e.vectorize {
		batches, err := n.batchPartitions()
		if err != nil {
			return nil, err
		}
		st.addBatches(len(batches), total)
		out := make([]part, len(batches))
		for i, b := range batches {
			// Source parts carry both representations: batch consumers take
			// the columnar form, row consumers reuse the original rows.
			out[i] = part{rows: n.partitions[i], batch: b}
		}
		return out, nil
	}
	return rowParts(n.partitions), nil
}

// evalSingleOpVectorized runs one narrow operator as its own cluster job
// through the existing batch kernels — the vectorized unfused path. With the
// stage compiler off (WithFusion(false)) narrow operators used to fall back
// to row-at-a-time execution even under vectorized execution; wrapping the
// single operator as a one-op chain reuses runVectorizedChain unchanged, so
// the unfused ablation arm now isolates the scheduling cost of per-operator
// jobs instead of conflating it with boxed-row execution. Every narrow
// operator routes here now: filter, project, with_column and sample run pure
// column kernels, while Map/FlatMap closures read through zero-copy batch
// views and append into typed output vectors, exactly as they do inside
// fused stages.
func (e *Engine) evalSingleOpVectorized(ctx context.Context, op planNode, child planNode, st *execState) ([]part, error) {
	return e.evalFusedVectorized(ctx, fusedChain{ops: []planNode{op}, base: child, limit: -1}, st)
}

// runPerPartition executes fn once per input partition as parallel cluster
// tasks and returns the produced row partitions in input order.
func (e *Engine) runPerPartition(ctx context.Context, name string, in [][]storage.Row, st *execState,
	fn func(partIdx int, rows []storage.Row) ([]storage.Row, error)) ([]part, error) {

	out := make([][]storage.Row, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("%s[%d]", name, i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				rows, err := fn(i, in[i])
				if err != nil {
					return fmt.Errorf("%w: %v", ErrUDF, err)
				}
				out[i] = rows
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, name, tasks); err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", name, err)
	}
	return rowParts(out), nil
}

// validateHead checks row against the schema only when it is the first output
// of its partition (i == 0) or strict validation is on. ctx is the error
// prefix ("map output", "flatmap output").
func (e *Engine) validateHead(what string, schema *storage.Schema, row storage.Row, i int) error {
	if i > 0 && !e.strictValidate {
		return nil
	}
	if err := storage.ValidateRow(schema, row); err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	return nil
}

// evalFused executes a fused chain of narrow operators as one cluster job
// with one task per input partition. Each task pushes its partition's rows
// through the composed pipeline, so per-operator intermediate partitions are
// never materialised, and a trailing limit stops the partition early —
// batch-backed inputs are pulled one row at a time, so rows past the stop
// are never even boxed.
func (e *Engine) evalFused(ctx context.Context, ch fusedChain, st *execState) ([]part, error) {
	in, err := e.eval(ctx, ch.base, st)
	if err != nil {
		return nil, err
	}
	name := ch.name()
	out := make([][]storage.Row, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("%s[%d]", name, i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				if ch.limit == 0 {
					return nil
				}
				var res []storage.Row
				sink := func(r storage.Row) (bool, error) {
					res = append(res, r)
					return ch.limit < 0 || len(res) < ch.limit, nil
				}
				if err := in[i].eachRow(ch.compile(e, i, sink)); err != nil {
					return fmt.Errorf("%w: %v", ErrUDF, err)
				}
				out[i] = res
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, name, tasks); err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", name, err)
	}
	if len(ch.ops) > 1 {
		st.addFused()
	}
	if ch.limit >= 0 {
		return truncateParts(rowParts(out), ch.limit), nil
	}
	return rowParts(out), nil
}

// truncateParts keeps the first limit rows in partition order, collapsing the
// output into a single partition (Limit's semantics). Batch partitions are
// truncated as zero-copy head views.
func truncateParts(in []part, limit int) []part {
	kept := make([]part, 0, len(in))
	remaining := limit
	for _, p := range in {
		if remaining <= 0 {
			break
		}
		n := p.len()
		if n == 0 {
			continue
		}
		if n > remaining {
			if p.isBatch() {
				p = batchPart(p.batch.Head(remaining))
			} else {
				p = rowPart(p.rows[:remaining])
			}
			n = remaining
		}
		kept = append(kept, p)
		remaining -= n
	}
	// Collapse into one partition to preserve Limit's single-partition
	// contract; row-backed pieces concatenate, a single batch stays columnar.
	if len(kept) == 1 {
		return kept
	}
	rows := make([]storage.Row, 0, limit-remaining)
	for _, p := range kept {
		rows = append(rows, p.toRows()...)
	}
	return []part{rowPart(rows)}
}

func (e *Engine) evalFilter(ctx context.Context, n *filterNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	return e.runPerPartition(ctx, "filter", partsToRows(in), st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		out := make([]storage.Row, 0, len(rows))
		for _, r := range rows {
			keep, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, r)
			}
		}
		return out, nil
	})
}

func (e *Engine) evalMap(ctx context.Context, n *mapNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	out := n.out
	return e.runPerPartition(ctx, "map", partsToRows(in), st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		res := make([]storage.Row, 0, len(rows))
		for i, r := range rows {
			nr, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			if err := e.validateHead("map output", out, nr, i); err != nil {
				return nil, err
			}
			res = append(res, nr)
		}
		return res, nil
	})
}

func (e *Engine) evalFlatMap(ctx context.Context, n *flatMapNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	out := n.out
	return e.runPerPartition(ctx, "flatmap", partsToRows(in), st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		var res []storage.Row
		for _, r := range rows {
			produced, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			for _, nr := range produced {
				if err := e.validateHead("flatmap output", out, nr, len(res)); err != nil {
					return nil, err
				}
				res = append(res, nr)
			}
		}
		return res, nil
	})
}

func (e *Engine) evalProject(ctx context.Context, n *projectNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	return e.runPerPartition(ctx, "project", partsToRows(in), st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		res := make([]storage.Row, 0, len(rows))
		for _, r := range rows {
			row := make(storage.Row, len(n.indices))
			for i, idx := range n.indices {
				row[i] = r[idx]
			}
			res = append(res, row)
		}
		return res, nil
	})
}

func (e *Engine) evalWithColumn(ctx context.Context, n *withColumnNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	schema := n.child.schema()
	return e.runPerPartition(ctx, "with_column", partsToRows(in), st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		res := make([]storage.Row, 0, len(rows))
		for i, r := range rows {
			v, err := n.fn(Record{schema: schema, row: r})
			if err != nil {
				return nil, err
			}
			if i == 0 || e.strictValidate {
				if err := storage.ValidateCell(n.field, v); err != nil {
					return nil, fmt.Errorf("with_column output: %w", err)
				}
			}
			row := make(storage.Row, len(r)+1)
			copy(row, r)
			row[len(r)] = v
			res = append(res, row)
		}
		return res, nil
	})
}

func (e *Engine) evalSample(ctx context.Context, n *sampleNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	return e.runPerPartition(ctx, "sample", partsToRows(in), st, func(idx int, rows []storage.Row) ([]storage.Row, error) {
		rng := rand.New(rand.NewSource(n.seed + int64(idx)))
		out := make([]storage.Row, 0, len(rows))
		for _, r := range rows {
			if rng.Float64() < n.fraction {
				out = append(out, r)
			}
		}
		return out, nil
	})
}

func (e *Engine) evalLimit(ctx context.Context, n *limitNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	out := truncateParts(in, n.n)
	if len(out) == 0 {
		return []part{rowPart(nil)}, nil
	}
	return out, nil
}

// countRows sums the partition sizes.
func countRows[T any](in [][]T) int {
	total := 0
	for _, p := range in {
		total += len(p)
	}
	return total
}

// shuffleBy redistributes items into nParts buckets, preserving input order
// within each bucket. Bucket assignment is computed once per item and the
// output buffers are pre-sized exactly, so the redistribution itself never
// reallocates.
func shuffleBy[T any](nParts int, in [][]T, part func(T) int) [][]T {
	total := countRows(in)
	assign := make([]int32, 0, total)
	counts := make([]int, nParts)
	for _, p := range in {
		for i := range p {
			b := part(p[i])
			assign = append(assign, int32(b))
			counts[b]++
		}
	}
	buckets := make([][]T, nParts)
	for b := range buckets {
		buckets[b] = make([]T, 0, counts[b])
	}
	i := 0
	for _, p := range in {
		for j := range p {
			buckets[assign[i]] = append(buckets[assign[i]], p[j])
			i++
		}
	}
	return buckets
}

// shuffleRows hash-partitions rows on their encoded key, counting every moved
// row. The encoder's reusable buffer keeps the per-row key computation
// allocation free.
func (e *Engine) shuffleRows(in [][]storage.Row, enc *storage.KeyEncoder, st *execState) [][]storage.Row {
	st.addStage()
	total := countRows(in)
	buckets := shuffleBy(e.shufflePartitions, in, func(r storage.Row) int {
		return storage.PartitionOfHash(enc.Hash(r), e.shufflePartitions)
	})
	st.addShuffled(total)
	return buckets
}

// spillChunkRows caps the open per-bucket builder on the budgeted batch
// shuffle: a chunk seals into the partition store (and becomes spillable)
// once it reaches this many rows, so the gather itself never accumulates
// unbounded resident state.
const spillChunkRows = 4096

// shuffleBatches hash-partitions columnar batches on keys encoded straight
// from the column vectors into a partition store, so no boxed Row is ever
// materialised on either side of the shuffle. See gatherBatches for the
// gather and spill mechanics. Callers must release the store via
// execState.releaseStore once its partitions are consumed.
func (e *Engine) shuffleBatches(in []*storage.ColumnBatch, schema *storage.Schema,
	enc *storage.KeyEncoder, st *execState) (*storage.PartitionStore, error) {

	local := enc.Clone()
	return e.gatherBatches(in, schema, st, func(b *storage.ColumnBatch, i int) int {
		return storage.PartitionOfHash(local.BatchHash(b, i), e.shufflePartitions)
	})
}

// gatherBatches redistributes columnar batches into a partition store under
// an arbitrary (batch, row) → partition assignment — hash buckets for the
// keyed shuffles, range buckets for the columnar sort. Without a memory
// budget the gather runs in two passes (exact pre-sizing, one resident batch
// per bucket — the pre-spill behaviour). With a budget it gathers in
// spillChunkRows chunks that seal into the store as they fill; the store
// spills the coldest chunks to disk whenever the resident total exceeds the
// budget, and the consuming tasks restore them transparently on read.
// Callers must release the store via execState.releaseStore once its
// partitions are consumed.
func (e *Engine) gatherBatches(in []*storage.ColumnBatch, schema *storage.Schema,
	st *execState, partOf func(b *storage.ColumnBatch, i int) int) (*storage.PartitionStore, error) {

	st.addStage()
	nParts := e.shufflePartitions
	store, err := storage.NewPartitionStore(schema, nParts,
		storage.WithMemoryBudget(e.memoryBudget), storage.WithCodec(e.codec()),
		storage.WithSpillDir(e.spillDir))
	if err != nil {
		return nil, err
	}
	// fail releases the store (removing any partial spill file and folding
	// its counters into the stats) before propagating a gather error.
	fail := func(err error) (*storage.PartitionStore, error) {
		st.releaseStore(store)
		return nil, err
	}
	total, sealed := 0, 0
	if e.memoryBudget <= 0 {
		// Pass 1: bucket assignment per (batch, row), plus per-bucket counts
		// for exact pre-sizing.
		assign := make([][]int32, len(in))
		counts := make([]int, nParts)
		for bi, b := range in {
			n := b.Len()
			total += n
			a := make([]int32, n)
			for i := 0; i < n; i++ {
				p := partOf(b, i)
				a[i] = int32(p)
				counts[p]++
			}
			assign[bi] = a
		}
		// Pass 2: gather rows into pre-sized bucket batches by batch index,
		// one typed AppendGather per (batch, bucket) — the per-column type
		// dispatch runs per selection vector, not per cell.
		buckets := make([]*storage.ColumnBatch, nParts)
		for p := range buckets {
			buckets[p] = storage.NewColumnBatch(schema, counts[p])
		}
		sels := make([][]int32, nParts)
		for bi, b := range in {
			for p := range sels {
				sels[p] = sels[p][:0]
			}
			for i, p := range assign[bi] {
				sels[p] = append(sels[p], int32(i))
			}
			for p := range buckets {
				if len(sels[p]) > 0 {
					buckets[p].AppendGather(b, sels[p])
				}
			}
		}
		for p, b := range buckets {
			if b.Len() == 0 {
				continue
			}
			if err := store.Append(p, b); err != nil {
				return fail(err)
			}
			sealed++
		}
	} else {
		// Single bounded pass: rows append to per-bucket open chunks that
		// seal (and may spill) as they fill.
		open := make([]*storage.ColumnBatch, nParts)
		for _, b := range in {
			n := b.Len()
			total += n
			for i := 0; i < n; i++ {
				p := partOf(b, i)
				ob := open[p]
				if ob == nil {
					ob = storage.NewColumnBatch(schema, spillChunkRows)
					open[p] = ob
				}
				ob.AppendRowFrom(b, i)
				if ob.Len() >= spillChunkRows {
					if err := store.Append(p, ob); err != nil {
						return fail(err)
					}
					sealed++
					open[p] = nil
				}
			}
		}
		for p, ob := range open {
			if ob == nil || ob.Len() == 0 {
				continue
			}
			if err := store.Append(p, ob); err != nil {
				return fail(err)
			}
			sealed++
		}
	}
	st.addShuffled(total)
	st.addBatches(sealed, total)
	return store, nil
}

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

// keyedRow carries a row together with its binary key encoding and hash
// across the distinct shuffle, so the reduce side never re-keys rows the map
// side already keyed.
type keyedRow struct {
	key  string
	hash uint64
	row  storage.Row
}

func (e *Engine) evalDistinct(ctx context.Context, n *distinctNode, st *execState) ([]part, error) {
	in, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	enc, err := storage.NewKeyEncoder(n.child.schema(), n.cols...)
	if err != nil {
		return nil, fmt.Errorf("dataflow: distinct: %w", err)
	}
	if e.vectorize {
		if batches, ok := batchesOf(in); ok {
			return e.evalDistinctBatch(ctx, n.child.schema(), batches, enc, st)
		}
	}
	if e.mapSideDistinct {
		return e.evalDistinctCombined(ctx, partsToRows(in), enc, st)
	}
	// Baseline: every row crosses the shuffle and is keyed again on the
	// reduce side.
	buckets := e.shuffleRows(partsToRows(in), enc, st)
	return e.runPerPartition(ctx, "distinct", buckets, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		local := enc.Clone()
		seen := make(map[string]struct{}, len(rows))
		var out []storage.Row
		for _, r := range rows {
			k := local.Key(r)
			if _, dup := seen[string(k)]; dup {
				continue
			}
			seen[string(k)] = struct{}{}
			out = append(out, r)
		}
		return out, nil
	})
}

// evalDistinctCombined implements distinct with a map-side dedup pass: one
// job removes duplicates within each input partition (keying every row
// exactly once), only the surviving keyed rows cross the shuffle boundary,
// and a second job merges survivors per bucket using the carried keys. Like
// the group-by combine pass, the removed rows are reported as
// DistinctPrecombinedRows.
func (e *Engine) evalDistinctCombined(ctx context.Context, in [][]storage.Row,
	enc *storage.KeyEncoder, st *execState) ([]part, error) {

	// Map side: one task per input partition dedups locally.
	partials := make([][]keyedRow, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("distinct-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				local := enc.Clone()
				// Sized for the dedup-heavy case the pass exists for; both
				// grow as needed on unique-heavy partitions.
				seen := make(map[string]struct{}, 64)
				var out []keyedRow
				for _, r := range in[i] {
					k := local.Key(r)
					if _, dup := seen[string(k)]; dup {
						continue
					}
					ks := string(k)
					seen[ks] = struct{}{}
					out = append(out, keyedRow{key: ks, hash: storage.HashString64(ks), row: r})
				}
				partials[i] = out
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "distinct-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: distinct-combine: %w", err)
	}

	// Shuffle only the survivors, carrying their precomputed keys.
	inputRows := countRows(in)
	moved := countRows(partials)
	st.addStage()
	st.addShuffled(moved)
	st.addPrecombined(inputRows - moved)
	buckets := shuffleBy(e.shufflePartitions, partials, func(kr keyedRow) int {
		return storage.PartitionOfHash(kr.hash, e.shufflePartitions)
	})

	// Reduce side: merge survivors per bucket on the carried keys.
	out := make([][]storage.Row, len(buckets))
	mergeTasks := make([]cluster.Task, len(buckets))
	for b := range buckets {
		b := b
		mergeTasks[b] = cluster.Task{
			Name: fmt.Sprintf("distinct-merge[%d]", b),
			Fn: func(ctx context.Context, node cluster.Node) error {
				seen := make(map[string]struct{}, len(buckets[b]))
				rows := make([]storage.Row, 0, len(buckets[b]))
				for _, kr := range buckets[b] {
					if _, dup := seen[kr.key]; dup {
						continue
					}
					seen[kr.key] = struct{}{}
					rows = append(rows, kr.row)
				}
				out[b] = rows
				return nil
			},
		}
	}
	st.addTasks(len(mergeTasks))
	if _, err := e.cluster.RunNamedJob(ctx, "distinct-merge", mergeTasks); err != nil {
		return nil, fmt.Errorf("dataflow: distinct-merge: %w", err)
	}
	return rowParts(out), nil
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

// rowComparator builds the multi-column comparison function for the sort
// orders, with column indices resolved once.
func rowComparator(schema *storage.Schema, orders []SortOrder) (func(a, b storage.Row) int, error) {
	idx := make([]int, len(orders))
	for i, o := range orders {
		idx[i] = schema.IndexOf(o.Column)
		if idx[i] < 0 {
			return nil, fmt.Errorf("dataflow: sort: %w: column %q not in input schema %s",
				storage.ErrUnknownField, o.Column, schema)
		}
	}
	return func(a, b storage.Row) int {
		for k, o := range orders {
			c := storage.CompareValues(a[idx[k]], b[idx[k]])
			if c == 0 {
				continue
			}
			if o.Descending {
				return -c
			}
			return c
		}
		return 0
	}, nil
}

func (e *Engine) evalSort(ctx context.Context, n *sortNode, st *execState) ([]part, error) {
	parts, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	if e.vectorize && e.columnarSort {
		return e.evalSortColumnar(ctx, n, parts, st)
	}
	cmp, err := rowComparator(n.child.schema(), n.orders)
	if err != nil {
		return nil, err
	}
	// Boxed-row ablation arm (WithVectorizedExecution(false) or
	// WithColumnarSort(false)): batch-backed inputs are materialised into
	// boxed rows and sorted with the interface-based comparators. With a
	// memory budget set, the columnar inputs are staged through a spill store
	// first (see sortInputRows).
	in, err := e.sortInputRows(n.child.schema(), parts, st)
	if err != nil {
		return nil, err
	}
	total := countRows(in)
	if e.rangeSort && e.shufflePartitions > 1 && total > e.shufflePartitions*rangeSortMinRowsPerPartition {
		return e.evalSortRange(ctx, in, total, cmp, st)
	}
	// Baseline (and small-input fallback): collapse everything into one task
	// so the comparator executes on the cluster like any other work.
	st.addStage()
	all := make([]storage.Row, 0, total)
	for _, p := range in {
		all = append(all, p...)
	}
	st.addShuffled(total)
	return e.runPerPartition(ctx, "sort", [][]storage.Row{all}, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		return sortRowsByIndex(rows, cmp), nil
	})
}

// sortRowsByIndex stable-sorts one partition's rows through a pre-sized index
// vector: SliceStable permutes 4-byte indices instead of 24-byte row headers
// across its passes, and the output gathers once into an exactly pre-sized
// slice — two allocations per partition no matter how many comparator passes
// the sort makes (the old path re-copied the whole row slice before sorting
// it in place).
func sortRowsByIndex(rows []storage.Row, cmp func(a, b storage.Row) int) []storage.Row {
	idx := make([]int32, len(rows))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return cmp(rows[idx[a]], rows[idx[b]]) < 0 })
	out := make([]storage.Row, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}

// sortInputRows materialises the sort input as boxed rows for the boxed-sort
// ablation arm (WithColumnarSort(false)). With a memory budget set and
// columnar partitions, the batches are first staged in a spill store — cold
// ones move to disk — and restored one partition at a time while the boxed
// rows are built, so the columnar copy of the input is bounded by the budget
// during the materialisation. Without a budget (or with row-backed
// partitions) this is exactly partsToRows.
func (e *Engine) sortInputRows(schema *storage.Schema, parts []part, st *execState) ([][]storage.Row, error) {
	if e.memoryBudget <= 0 || !e.vectorize {
		return partsToRows(parts), nil
	}
	batches, ok := batchesOf(parts)
	if !ok || len(batches) == 0 {
		return partsToRows(parts), nil
	}
	store, err := storage.NewPartitionStore(schema, len(batches),
		storage.WithMemoryBudget(e.memoryBudget), storage.WithCodec(e.codec()),
		storage.WithSpillDir(e.spillDir))
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(store)
	for i, b := range batches {
		batches[i] = nil // staged: the store (or its spill file) owns the batch now
		if err := store.Append(i, b); err != nil {
			return nil, err
		}
	}
	out := make([][]storage.Row, store.Partitions())
	for p := range out {
		rows := make([]storage.Row, 0, store.PartitionRows(p))
		err := store.EachBatch(p, func(b *storage.ColumnBatch) error {
			rows = append(rows, b.Rows()...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out[p] = rows
	}
	return out, nil
}

// evalSortRange implements the range-partitioned parallel sort: sample the
// input to estimate the key distribution, derive shufflePartitions-1 split
// points, range-shuffle every row to its partition, and stable-sort the
// partitions in parallel. The output partitions are ordered end to end, so
// their concatenation (what Collect does) is the globally sorted dataset, and
// stability is preserved: the shuffle keeps input order within each
// partition, and rows comparing equal to a split point all land on its right.
func (e *Engine) evalSortRange(ctx context.Context, in [][]storage.Row, total int,
	cmp func(a, b storage.Row) int, st *execState) ([]part, error) {

	// Sample deterministically: a fixed stride over the input approximates
	// the key distribution without an RNG, so repeated runs pick identical
	// split points. The stride rounds up so the collected sample never
	// exceeds the target budget (truncating division used to oversample by up
	// to a partition's worth of rows, e.g. 334 samples for a 320-row target).
	target := e.shufflePartitions * sortSamplesPerPartition
	if target > total {
		target = total
	}
	stride := (total + target - 1) / target
	sample := make([]storage.Row, 0, target)
	i := 0
	for _, p := range in {
		for _, r := range p {
			if i%stride == 0 {
				sample = append(sample, r)
			}
			i++
		}
	}
	st.addSampled(len(sample))
	sort.SliceStable(sample, func(a, b int) bool { return cmp(sample[a], sample[b]) < 0 })
	bounds := make([]storage.Row, 0, e.shufflePartitions-1)
	for b := 1; b < e.shufflePartitions; b++ {
		bounds = append(bounds, sample[b*len(sample)/e.shufflePartitions])
	}

	// Range shuffle: partition p receives the rows in [bounds[p-1], bounds[p]).
	st.addStage()
	st.addShuffled(total)
	buckets := shuffleBy(e.shufflePartitions, in, func(r storage.Row) int {
		return sort.Search(len(bounds), func(b int) bool { return cmp(r, bounds[b]) < 0 })
	})

	return e.runPerPartition(ctx, "sort-range", buckets, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		return sortRowsByIndex(rows, cmp), nil
	})
}

// ---------------------------------------------------------------------------
// Sort (columnar)
// ---------------------------------------------------------------------------

// evalSortColumnar executes Sort end to end over columnar batches: per-type
// compare kernels (batchComparator) order selection vectors directly over the
// column vectors — no row is boxed anywhere, including the range-partition
// sampling — and under a memory budget each partition runs as a spill-aware
// external merge of sorted runs (sortPartitionColumnar). Row-backed input
// partitions (wide-operator outputs) are converted once on entry, so ordered
// analytics tails like sort-after-group-by stay columnar too.
func (e *Engine) evalSortColumnar(ctx context.Context, n *sortNode, in []part, st *execState) ([]part, error) {
	schema := n.child.schema()
	cmp, err := newBatchComparator(schema, n.orders)
	if err != nil {
		return nil, err
	}
	batches := make([]*storage.ColumnBatch, 0, len(in))
	total := 0
	for _, p := range in {
		b, err := toBatch(p, schema)
		if err != nil {
			return nil, fmt.Errorf("dataflow: sort input: %w", err)
		}
		if b.Len() == 0 {
			continue
		}
		batches = append(batches, b)
		total += b.Len()
	}
	if e.rangeSort && e.shufflePartitions > 1 && total > e.shufflePartitions*rangeSortMinRowsPerPartition {
		return e.evalSortRangeColumnar(ctx, batches, total, cmp, schema, st)
	}
	// Baseline (and small-input fallback): one task sorts the whole input —
	// the columnar analogue of the single-task row sort.
	st.addStage()
	st.addShuffled(total)
	out := make([][]*storage.ColumnBatch, 1)
	task := []cluster.Task{{
		Name: "sort[0]",
		Fn: func(ctx context.Context, node cluster.Node) error {
			sorted, err := e.sortPartitionColumnar(schema, cmp, total, st, func(f func(*storage.ColumnBatch) error) error {
				for _, b := range batches {
					if err := f(b); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			out[0] = sorted
			return nil
		},
	}}
	st.addTasks(1)
	if _, err := e.cluster.RunNamedJob(ctx, "sort", task); err != nil {
		return nil, fmt.Errorf("dataflow: sort: %w", err)
	}
	return sortedBatchParts(out, st), nil
}

// evalSortRangeColumnar is the columnar range-partitioned parallel sort: the
// split-point sample is gathered from the typed columns (same deterministic
// ceiling stride as the row path), rows range-shuffle by batch index through
// a partition store (spilling under budget), and the partitions sort in
// parallel — selection-vector sorts in memory, external run merges under a
// budget. Output partition order concatenates to the globally sorted dataset
// with the row path's exact stability semantics.
func (e *Engine) evalSortRangeColumnar(ctx context.Context, in []*storage.ColumnBatch, total int,
	cmp *batchComparator, schema *storage.Schema, st *execState) ([]part, error) {

	target := e.shufflePartitions * sortSamplesPerPartition
	if target > total {
		target = total
	}
	stride := (total + target - 1) / target
	sample := storage.NewColumnBatch(schema, target)
	i := 0
	for _, b := range in {
		for r := 0; r < b.Len(); r++ {
			if i%stride == 0 {
				sample.AppendRowFrom(b, r)
			}
			i++
		}
	}
	st.addSampled(sample.Len())
	sortedSample := sample.Gather(cmp.sortedSelection(sample))
	bounds := make([]int, 0, e.shufflePartitions-1)
	for b := 1; b < e.shufflePartitions; b++ {
		bounds = append(bounds, b*sortedSample.Len()/e.shufflePartitions)
	}

	// Range shuffle: partition p receives the rows in [bounds[p-1], bounds[p]),
	// rows equal to a split point landing on its right — identical to the row
	// path, so the two arms assign every row to the same partition.
	store, err := e.gatherBatches(in, schema, st, func(b *storage.ColumnBatch, r int) int {
		return sort.Search(len(bounds), func(x int) bool {
			return cmp.Compare(b, r, sortedSample, bounds[x]) < 0
		})
	})
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(store)

	nParts := store.Partitions()
	out := make([][]*storage.ColumnBatch, nParts)
	tasks := make([]cluster.Task, nParts)
	for p := range tasks {
		p := p
		tasks[p] = cluster.Task{
			Name: fmt.Sprintf("sort-range[%d]", p),
			Fn: func(ctx context.Context, node cluster.Node) error {
				sorted, err := e.sortPartitionColumnar(schema, cmp, store.PartitionRows(p), st,
					func(f func(*storage.ColumnBatch) error) error { return store.EachBatch(p, f) })
				if err != nil {
					return err
				}
				out[p] = sorted
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "sort-range", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: sort-range: %w", err)
	}
	return sortedBatchParts(out, st), nil
}

// sortPartitionColumnar sorts one partition's batches, streamed by each. In
// memory (no budget) it flattens the partition and gathers the sorted
// selection vector — one output batch. Under a budget it is the external
// merge: fixed SortChunkRows-row chunks are selection-sorted into runs, runs
// spill through the batch codec when the run store's budget is exceeded, and
// a loser-tree merge streams them back in chunk-sized output batches, so the
// sort's own accumulation stays bounded by runs × chunk instead of the
// partition size.
func (e *Engine) sortPartitionColumnar(schema *storage.Schema, cmp *batchComparator, rows int,
	st *execState, each func(func(*storage.ColumnBatch) error) error) ([]*storage.ColumnBatch, error) {

	if rows == 0 {
		return nil, nil
	}
	if e.memoryBudget <= 0 {
		var list []*storage.ColumnBatch
		if err := each(func(b *storage.ColumnBatch) error { list = append(list, b); return nil }); err != nil {
			return nil, err
		}
		flat := list[0]
		if len(list) > 1 {
			flat = flattenBatches(schema, list)
		}
		return []*storage.ColumnBatch{flat.Gather(cmp.sortedSelection(flat))}, nil
	}

	rs, err := storage.NewRunStore(schema, e.memoryBudget)
	if err != nil {
		return nil, err
	}
	rs.SetCodec(e.codec())
	rs.SetSpillDir(e.spillDir)
	defer func() {
		st.addSpilled(rs.SpilledBatches(), rs.SpilledBytes(), rs.SpilledLogicalBytes())
		st.noteSpillFilePeak(rs.FileBytes())
		st.noteSortPeak(rs.MaxResidentBytes())
		_ = rs.Close()
	}()
	chunkCap := SortChunkRows
	if rows < chunkCap {
		chunkCap = rows
	}
	open := storage.NewColumnBatch(schema, chunkCap)
	seal := func() error {
		if open.Len() == 0 {
			return nil
		}
		if err := rs.AppendRun(open.Gather(cmp.sortedSelection(open))); err != nil {
			return err
		}
		open = storage.NewColumnBatch(schema, chunkCap)
		return nil
	}
	err = each(func(b *storage.ColumnBatch) error {
		for i := 0; i < b.Len(); i++ {
			open.AppendRowFrom(b, i)
			if open.Len() >= SortChunkRows {
				if err := seal(); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := seal(); err != nil {
		return nil, err
	}
	st.addSortRuns(rs.Runs())
	var out []*storage.ColumnBatch
	err = rs.Merge(cmp.Compare, SortChunkRows, func(b *storage.ColumnBatch) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.addSortMerged(len(out))
	return out, nil
}

// sortedBatchParts flattens per-partition sorted batch sequences into the
// engine's part list, preserving partition order (their concatenation is the
// globally sorted output). Empty partitions keep a placeholder so the output
// partition count matches the row path's.
func sortedBatchParts(in [][]*storage.ColumnBatch, st *execState) []part {
	out := make([]part, 0, len(in))
	nBatches, nRows := 0, 0
	for _, bs := range in {
		if len(bs) == 0 {
			out = append(out, rowPart(nil))
			continue
		}
		for _, b := range bs {
			out = append(out, batchPart(b))
			nBatches++
			nRows += b.Len()
		}
	}
	st.addBatches(nBatches, nRows)
	return out
}

// ---------------------------------------------------------------------------
// Group-by
// ---------------------------------------------------------------------------

func (e *Engine) evalGroupBy(ctx context.Context, n *groupByNode, st *execState) ([]part, error) {
	parts, err := e.eval(ctx, n.child, st)
	if err != nil {
		return nil, err
	}
	inSchema := n.child.schema()
	enc, err := storage.NewKeyEncoder(inSchema, n.keys...)
	if err != nil {
		return nil, fmt.Errorf("dataflow: group-by: %w", err)
	}
	if e.vectorize {
		if batches, ok := batchesOf(parts); ok {
			if e.combine {
				if e.columnarAgg {
					return e.evalGroupByCombinedColumnar(ctx, n, batches, enc, st)
				}
				return e.evalGroupByCombinedBatch(ctx, n, batches, enc, st)
			}
			if e.columnarAgg {
				return e.evalGroupByHash(ctx, n, batches, enc, st)
			}
			return e.evalGroupByBatch(ctx, n, batches, enc, st)
		}
	}
	in := partsToRows(parts)
	if e.combine {
		return e.evalGroupByCombined(ctx, n, in, enc, st)
	}
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		keyIdx[i] = inSchema.IndexOf(k)
	}
	buckets := e.shuffleRows(in, enc, st)
	return e.runPerPartition(ctx, "groupby", buckets, st, func(_ int, rows []storage.Row) ([]storage.Row, error) {
		type group struct {
			keyValues []storage.Value
			states    []*aggState
		}
		local := enc.Clone()
		groups := make(map[string]*group)
		var order []*group
		for _, r := range rows {
			k := local.Key(r)
			g, ok := groups[string(k)]
			if !ok {
				kv := make([]storage.Value, len(keyIdx))
				for i, idx := range keyIdx {
					kv[i] = r[idx]
				}
				states := make([]*aggState, len(n.aggs))
				for i, a := range n.aggs {
					states[i] = newAggState(a, inSchema)
				}
				g = &group{keyValues: kv, states: states}
				groups[string(k)] = g
				order = append(order, g)
			}
			for _, s := range g.states {
				s.update(r)
			}
		}
		st.addAggGroups(len(order))
		out := make([]storage.Row, 0, len(order))
		for _, g := range order {
			row := make(storage.Row, 0, len(g.keyValues)+len(g.states))
			row = append(row, g.keyValues...)
			for _, s := range g.states {
				row = append(row, s.result())
			}
			out = append(out, row)
		}
		return out, nil
	})
}

// partialGroup is one group's accumulated aggregation state on the map side
// of a combined group-by. The binary key encoding and its hash travel with
// the state so the shuffle and the merge never re-key.
type partialGroup struct {
	key       string
	hash      uint64
	keyValues []storage.Value
	states    []*aggState
}

// evalGroupByCombined implements group-by with a map-side combine pass: one
// job folds each input partition into per-key partial aggregation states,
// only those partials cross the shuffle boundary (hash-partitioned into
// pre-sized buckets), and a second job merges partials per key and emits the
// final rows. When keys repeat within partitions this shuffles far fewer
// rows than the row-at-a-time path.
func (e *Engine) evalGroupByCombined(ctx context.Context, n *groupByNode, in [][]storage.Row,
	enc *storage.KeyEncoder, st *execState) ([]part, error) {

	inSchema := n.child.schema()
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		keyIdx[i] = inSchema.IndexOf(k)
	}

	// Map side: one task per input partition builds partial states.
	partials := make([][]*partialGroup, len(in))
	tasks := make([]cluster.Task, len(in))
	inputRows := 0
	for i := range in {
		i := i
		inputRows += len(in[i])
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("groupby-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				local := enc.Clone()
				groups := make(map[string]*partialGroup)
				var order []*partialGroup
				for _, r := range in[i] {
					k := local.Key(r)
					g, ok := groups[string(k)]
					if !ok {
						kv := make([]storage.Value, len(keyIdx))
						for j, idx := range keyIdx {
							kv[j] = r[idx]
						}
						states := make([]*aggState, len(n.aggs))
						for j, a := range n.aggs {
							states[j] = newAggState(a, inSchema)
						}
						ks := string(k)
						g = &partialGroup{key: ks, hash: storage.HashString64(ks), keyValues: kv, states: states}
						groups[ks] = g
						order = append(order, g)
					}
					for _, s := range g.states {
						s.update(r)
					}
				}
				partials[i] = order
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby-combine: %w", err)
	}
	return e.mergeGroupPartials(ctx, partials, inputRows, st)
}

// mergeGroupPartials is the shared tail of the combined group-by: shuffle the
// partial groups (which carry their keys and hashes) into pre-sized buckets
// and merge them per key, emitting the final rows. Both the row-at-a-time and
// the columnar map sides feed it.
func (e *Engine) mergeGroupPartials(ctx context.Context, partials [][]*partialGroup,
	inputRows int, st *execState) ([]part, error) {

	// Shuffle partial groups instead of raw rows, into pre-sized buckets.
	st.addStage()
	moved := countRows(partials)
	buckets := shuffleBy(e.shufflePartitions, partials, func(g *partialGroup) int {
		return storage.PartitionOfHash(g.hash, e.shufflePartitions)
	})
	st.addShuffled(moved)
	st.addCombined(inputRows - moved)

	// Reduce side: one task per bucket merges partials and emits final rows.
	out := make([][]storage.Row, len(buckets))
	mergeTasks := make([]cluster.Task, len(buckets))
	for b := range buckets {
		b := b
		mergeTasks[b] = cluster.Task{
			Name: fmt.Sprintf("groupby-merge[%d]", b),
			Fn: func(ctx context.Context, node cluster.Node) error {
				merged := make(map[string]*partialGroup, len(buckets[b]))
				var order []*partialGroup
				for _, g := range buckets[b] {
					m, ok := merged[g.key]
					if !ok {
						merged[g.key] = g
						order = append(order, g)
						continue
					}
					for j := range m.states {
						m.states[j].merge(g.states[j])
					}
				}
				st.addAggGroups(len(order))
				rows := make([]storage.Row, 0, len(order))
				for _, g := range order {
					row := make(storage.Row, 0, len(g.keyValues)+len(g.states))
					row = append(row, g.keyValues...)
					for _, s := range g.states {
						row = append(row, s.result())
					}
					rows = append(rows, row)
				}
				out[b] = rows
				return nil
			},
		}
	}
	st.addTasks(len(mergeTasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby-merge", mergeTasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby-merge: %w", err)
	}
	return rowParts(out), nil
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

func (e *Engine) evalJoin(ctx context.Context, n *joinNode, st *execState) ([]part, error) {
	leftParts, err := e.eval(ctx, n.left, st)
	if err != nil {
		return nil, err
	}
	rightParts, err := e.eval(ctx, n.right, st)
	if err != nil {
		return nil, err
	}
	ls, rs := n.left.schema(), n.right.schema()
	lEnc, err := storage.NewKeyEncoder(ls, n.leftKey)
	if err != nil {
		return nil, fmt.Errorf("dataflow: join (left): %w", err)
	}
	rEnc, err := storage.NewKeyEncoder(rs, n.rightKey)
	if err != nil {
		return nil, fmt.Errorf("dataflow: join (right): %w", err)
	}
	if e.vectorize {
		lb, lok := batchesOf(leftParts)
		rb, rok := batchesOf(rightParts)
		if lok && rok {
			return e.evalJoinBatch(ctx, n, lb, rb, lEnc, rEnc, st)
		}
	}
	left, right := partsToRows(leftParts), partsToRows(rightParts)
	if e.broadcastJoin && countRows(right) <= e.broadcastThreshold {
		return e.evalJoinBroadcast(ctx, n, left, right, lEnc, rEnc, st)
	}

	// Shuffled hash join: both sides hash-partition on their key, bucket i of
	// the left probes a table built over bucket i of the right.
	lBuckets := e.shuffleRows(left, lEnc, st)
	rBuckets := e.shuffleRows(right, rEnc, st)
	rightWidth := rs.Len()

	return e.runPerPartition(ctx, "join", lBuckets, st, func(idx int, lRows []storage.Row) ([]storage.Row, error) {
		build := buildJoinTable(rBuckets[idx], rEnc.Clone())
		return probeJoinTable(build, lRows, lEnc.Clone(), n.kind, rightWidth), nil
	})
}

// evalJoinBroadcast executes the join without any shuffle: the build (right)
// side is small enough to replicate, so one task builds its hash table and
// every left partition probes it in place, preserving the left partitioning.
func (e *Engine) evalJoinBroadcast(ctx context.Context, n *joinNode,
	left, right [][]storage.Row, lEnc, rEnc *storage.KeyEncoder, st *execState) ([]part, error) {

	st.addBroadcast()
	// Build once as a single cluster task — the simulated analogue of
	// materialising the broadcast variable — then share the table read-only
	// across every probe task.
	var build map[string][]storage.Row
	buildTask := []cluster.Task{{
		Name: "join-broadcast-build",
		Fn: func(ctx context.Context, node cluster.Node) error {
			flat := make([]storage.Row, 0, countRows(right))
			for _, p := range right {
				flat = append(flat, p...)
			}
			build = buildJoinTable(flat, rEnc.Clone())
			return nil
		},
	}}
	st.addTasks(1)
	if _, err := e.cluster.RunNamedJob(ctx, "join-broadcast-build", buildTask); err != nil {
		return nil, fmt.Errorf("dataflow: join-broadcast-build: %w", err)
	}
	rightWidth := n.right.schema().Len()
	return e.runPerPartition(ctx, "join-broadcast", left, st, func(_ int, lRows []storage.Row) ([]storage.Row, error) {
		return probeJoinTable(build, lRows, lEnc.Clone(), n.kind, rightWidth), nil
	})
}

// buildJoinTable indexes the build-side rows by their encoded key.
func buildJoinTable(rows []storage.Row, enc *storage.KeyEncoder) map[string][]storage.Row {
	build := make(map[string][]storage.Row, len(rows))
	for _, rr := range rows {
		k := string(enc.Key(rr))
		build[k] = append(build[k], rr)
	}
	return build
}

// probeJoinTable streams the probe-side rows against the build table,
// null-extending unmatched rows for left joins. Lookups go through the
// encoder's reusable buffer, so probing allocates only for emitted rows.
func probeJoinTable(build map[string][]storage.Row, lRows []storage.Row,
	enc *storage.KeyEncoder, kind JoinType, rightWidth int) []storage.Row {

	var out []storage.Row
	for _, lr := range lRows {
		matches := build[string(enc.Key(lr))]
		if len(matches) == 0 {
			if kind == LeftJoin {
				row := make(storage.Row, 0, len(lr)+rightWidth)
				row = append(row, lr...)
				for i := 0; i < rightWidth; i++ {
					row = append(row, nil)
				}
				out = append(out, row)
			}
			continue
		}
		for _, rr := range matches {
			row := make(storage.Row, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out = append(out, row)
		}
	}
	return out
}
