package dataflow

// equivalence_test.go is the randomized plan-equivalence suite: it generates
// random schemas (including nullable columns with real nulls), random rows
// and random operator chains, executes each plan under the three execution
// modes — vectorized (columnar batches), row-at-a-time fused, and unfused
// per-operator — and asserts the results are bit-identical and the row-count
// statistics agree. It is the safety net under the vectorized kernels: any
// divergence between a batch kernel and its row implementation fails here
// with the generating seed in the test name.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// genSchema builds a random schema. Column 0 is always a non-nullable int and
// column 1 a nullable float, so every generated plan has a join/sort/filter
// key and a numeric aggregation target to work with.
func genSchema(rng *rand.Rand) *storage.Schema {
	types := []storage.FieldType{
		storage.TypeInt, storage.TypeFloat, storage.TypeString,
		storage.TypeBool, storage.TypeTime,
	}
	fields := []storage.Field{
		{Name: "c0", Type: storage.TypeInt},
		{Name: "c1", Type: storage.TypeFloat, Nullable: true},
	}
	for i := 2; i < 2+rng.Intn(4); i++ {
		fields = append(fields, storage.Field{
			Name:     fmt.Sprintf("c%d", i),
			Type:     types[rng.Intn(len(types))],
			Nullable: rng.Intn(2) == 0,
		})
	}
	return storage.MustSchema(fields...)
}

func genValue(rng *rand.Rand, f storage.Field) storage.Value {
	if f.Nullable && rng.Float64() < 0.2 {
		return nil
	}
	switch f.Type {
	case storage.TypeInt, storage.TypeTime:
		return int64(rng.Intn(400) - 100)
	case storage.TypeFloat:
		return float64(rng.Intn(2000)-1000) / 8
	case storage.TypeString:
		return fmt.Sprintf("s%02d", rng.Intn(40))
	case storage.TypeBool:
		return rng.Intn(2) == 0
	default:
		return nil
	}
}

func genRows(rng *rand.Rand, schema *storage.Schema, n int) []storage.Row {
	rows := make([]storage.Row, n)
	for i := range rows {
		row := make(storage.Row, schema.Len())
		for c := range row {
			row[c] = genValue(rng, schema.Field(c))
		}
		rows[i] = row
	}
	return rows
}

// genChain appends 1..5 random narrow operators to d, then optionally one
// wide operator, returning the plan. Every closure is pure and deterministic.
func genChain(rng *rand.Rand, d *Dataset) *Dataset {
	ops := 1 + rng.Intn(5)
	for i := 0; i < ops; i++ {
		schema := d.Schema()
		switch rng.Intn(6) {
		case 0: // filter on a random column, via the typed accessors
			col := schema.Field(rng.Intn(schema.Len())).Name
			cut := float64(rng.Intn(100) - 50)
			d = d.Filter("f "+col, func(r Record) (bool, error) {
				return r.IsNull(col) || r.Float(col) >= cut, nil
			})
		case 1: // project a random non-empty prefix-shuffled subset
			names := schema.Names()
			rng.Shuffle(len(names), func(a, b int) { names[a], names[b] = names[b], names[a] })
			d = d.Project(names[:1+rng.Intn(len(names))]...)
		case 2: // derived column from c0/whatever numeric is around
			src := schema.Field(rng.Intn(schema.Len())).Name
			name := fmt.Sprintf("d%d", i)
			d = d.WithColumn(storage.Field{Name: name, Type: storage.TypeFloat, Nullable: true},
				func(r Record) (storage.Value, error) {
					if r.IsNull(src) {
						return nil, nil
					}
					return r.Float(src)*3 + 1, nil
				})
		case 3: // map: rebuild the row through Record accessors (same schema)
			fields := schema.Fields()
			d = d.Map("identity-ish", schema, func(r Record) (storage.Row, error) {
				row := make(storage.Row, len(fields))
				for c, f := range fields {
					row[c] = r.Value(f.Name)
				}
				return row, nil
			})
		case 4: // flatmap: duplicate rows whose c-column is "large", drop none
			col := schema.Field(rng.Intn(schema.Len())).Name
			out := schema
			d = d.FlatMap("dup "+col, out, func(r Record) ([]storage.Row, error) {
				row := r.Row()
				if !r.IsNull(col) && r.Float(col) > 25 {
					return []storage.Row{row, row.Clone()}, nil
				}
				return []storage.Row{row}, nil
			})
		case 5:
			d = d.Sample(0.5+rng.Float64()/2, int64(rng.Intn(1000)))
		}
	}
	if rng.Intn(2) == 0 {
		d = d.Limit(rng.Intn(40))
	}
	// Terminal wide operator half the time, to prove the batch shuffle paths
	// agree with the row paths. Group-by and sort need the key columns to
	// have survived any projections above.
	schema := d.Schema()
	hasKeys := schema.Has("c0") && schema.Has("c1")
	switch rng.Intn(6) {
	case 0:
		d = d.Distinct(schema.Field(rng.Intn(schema.Len())).Name)
	case 1:
		d = d.Distinct()
	case 2:
		if hasKeys {
			d = d.GroupBy("c0").Agg(Count(), Sum("c1"), Min("c1"), CountDistinct("c0"))
		}
	case 3:
		if hasKeys {
			d = d.Sort(SortOrder{Column: "c0"}, SortOrder{Column: "c1", Descending: true})
		}
	}
	return d
}

// equivalenceEngines builds the four execution modes over identical fresh
// clusters (same seed, no failure injection). The spill mode is the
// vectorized engine with a one-byte memory budget, which forces every batch
// a wide operator accumulates straight to disk — the results must stay
// bit-identical to the in-memory runs.
func equivalenceEngines(t *testing.T) map[string]*Engine {
	t.Helper()
	build := func(opts ...EngineOption) *Engine {
		c, err := cluster.New(cluster.Uniform(2, 2, 0))
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(c, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return map[string]*Engine{
		"vectorized":  build(),
		"row":         build(WithVectorizedExecution(false)),
		"unfused":     build(WithFusion(false), WithVectorizedExecution(false)),
		"unfused-vec": build(WithFusion(false)),
		"boxed-sort":  build(WithColumnarSort(false)),
		"boxed-agg":   build(WithColumnarAgg(false)),
		// Two forced-spill arms: raw v1 frames and the compressed v2 codec.
		// Restored batches must be bit-identical either way, so both must
		// match the in-memory runs exactly.
		"spill":            build(WithMemoryBudget(1), WithSpillCompression(false)),
		"spill-compressed": build(WithMemoryBudget(1)),
	}
}

func TestRandomizedPlanEquivalence(t *testing.T) {
	ctx := context.Background()
	var totalSpilled int64
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := genSchema(rng)
			rows := genRows(rng, schema, rng.Intn(300))
			parts := 1 + rng.Intn(5)
			src := FromRows("equiv", schema, rows, parts)
			plan := genChain(rng, src)
			if err := plan.Err(); err != nil {
				t.Fatalf("generated plan invalid: %v", err)
			}

			engines := equivalenceEngines(t)
			results := map[string]*Result{}
			for mode, e := range engines {
				res, err := e.Collect(ctx, plan)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				results[mode] = res
			}
			base := results["row"]
			for _, mode := range []string{"vectorized", "unfused", "unfused-vec", "boxed-sort", "boxed-agg", "spill", "spill-compressed"} {
				got := results[mode]
				if !got.Schema.Equal(base.Schema) {
					t.Fatalf("%s schema %s != row schema %s", mode, got.Schema, base.Schema)
				}
				if len(got.Rows) != len(base.Rows) {
					t.Fatalf("%s rows = %d, row-at-a-time rows = %d", mode, len(got.Rows), len(base.Rows))
				}
				for i := range got.Rows {
					if !reflect.DeepEqual(got.Rows[i], base.Rows[i]) {
						t.Fatalf("%s row %d = %#v, want %#v", mode, i, got.Rows[i], base.Rows[i])
					}
				}
				if got.Stats.RowsRead != base.Stats.RowsRead {
					t.Errorf("%s RowsRead = %d, want %d", mode, got.Stats.RowsRead, base.Stats.RowsRead)
				}
				if got.Stats.RowsOutput != base.Stats.RowsOutput {
					t.Errorf("%s RowsOutput = %d, want %d", mode, got.Stats.RowsOutput, base.Stats.RowsOutput)
				}
			}
			// The vectorized runs over the fused plan must also agree with the
			// row run on shuffle traffic: the batch shuffle moves the same
			// rows, just without boxing them — and routing the buckets through
			// the spill store must not change what crosses the boundary.
			for _, mode := range []string{"vectorized", "spill", "spill-compressed"} {
				if v, r := results[mode].Stats.ShuffledRows, base.Stats.ShuffledRows; v != r {
					t.Errorf("%s ShuffledRows = %d, row = %d", mode, v, r)
				}
			}
			if results["spill"].Stats.SpilledBatches > 0 && results["spill"].Stats.SpilledBytes == 0 {
				t.Error("spilled batches reported without spilled bytes")
			}
			// Accounting invariants of the two spill arms: without compression
			// physical and logical bytes are the same quantity; with it the
			// logical (v1-equivalent) size bounds the physical from above, and
			// both arms agree on what was logically spilled per batch shape.
			if s := results["spill"].Stats; s.SpilledBytes != s.SpillLogicalBytes {
				t.Errorf("uncompressed spill arm: SpilledBytes %d != SpillLogicalBytes %d",
					s.SpilledBytes, s.SpillLogicalBytes)
			}
			if s := results["spill-compressed"].Stats; s.SpilledBytes > s.SpillLogicalBytes {
				t.Errorf("compressed spill arm: physical %dB exceeds logical %dB",
					s.SpilledBytes, s.SpillLogicalBytes)
			}
			if s := results["spill-compressed"].Stats; s.SpilledBatches > 0 && s.SpillFilePeakBytes == 0 {
				t.Error("compressed spill arm reported batches but no file high-water")
			}
			totalSpilled += results["spill"].Stats.SpilledBatches
		})
	}
	// With a one-byte budget, any seed whose plan reaches a batch-backed wide
	// operator must have spilled; across 40 seeds that must have happened.
	if totalSpilled == 0 {
		t.Error("spill mode never spilled a batch across the whole suite")
	}
}

// TestSampleUnfusedVectorizedEquivalence pins the unfused Sample routing:
// with the stage compiler off, a Sample-only stage now runs through the
// vectorized single-operator path instead of dropping the whole plan to boxed
// rows, and must keep the exact per-partition pseudo-random selection of the
// row implementation — same rows, same order, batches actually processed.
func TestSampleUnfusedVectorizedEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := int64(300); seed < 306; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := genSchema(rng)
			rows := genRows(rng, schema, 200+rng.Intn(400))
			plan := FromRows("sampleequiv", schema, rows, 1+rng.Intn(5)).
				Sample(0.25+rng.Float64()/2, seed)

			engines := equivalenceEngines(t)
			base, err := engines["unfused"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			got, err := engines["unfused-vec"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(base.Rows) {
				t.Fatalf("unfused-vec rows = %d, unfused row arm = %d", len(got.Rows), len(base.Rows))
			}
			for i := range got.Rows {
				if !reflect.DeepEqual(got.Rows[i], base.Rows[i]) {
					t.Fatalf("unfused-vec row %d = %#v, want %#v", i, got.Rows[i], base.Rows[i])
				}
			}
			if got.Stats.Batches == 0 {
				t.Error("unfused vectorized Sample processed no batches — fell back to rows?")
			}
		})
	}
}

// TestMapFlatMapUnfusedVectorizedEquivalence pins the unfused Map/FlatMap
// routing: with the stage compiler off, a lone Map or FlatMap stage now runs
// through the vectorized single-operator path (closures reading zero-copy
// batch views, outputs appended into typed vectors) instead of dropping to
// boxed rows, and must reproduce the row implementation exactly — same rows,
// same order, batches actually processed.
func TestMapFlatMapUnfusedVectorizedEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := int64(400); seed < 406; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := genSchema(rng)
			rows := genRows(rng, schema, 200+rng.Intn(400))
			fields := schema.Fields()
			plan := FromRows("mapequiv", schema, rows, 1+rng.Intn(5)).
				Map("rebuild", schema, func(r Record) (storage.Row, error) {
					row := make(storage.Row, len(fields))
					for c, f := range fields {
						row[c] = r.Value(f.Name)
					}
					return row, nil
				}).
				FlatMap("dup-large", schema, func(r Record) ([]storage.Row, error) {
					row := r.Row()
					if !r.IsNull("c1") && r.Float("c1") > 25 {
						return []storage.Row{row, row.Clone()}, nil
					}
					return []storage.Row{row}, nil
				})

			engines := equivalenceEngines(t)
			base, err := engines["unfused"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			got, err := engines["unfused-vec"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(base.Rows) {
				t.Fatalf("unfused-vec rows = %d, unfused row arm = %d", len(got.Rows), len(base.Rows))
			}
			for i := range got.Rows {
				if !reflect.DeepEqual(got.Rows[i], base.Rows[i]) {
					t.Fatalf("unfused-vec row %d = %#v, want %#v", i, got.Rows[i], base.Rows[i])
				}
			}
			if got.Stats.Batches == 0 {
				t.Error("unfused vectorized Map/FlatMap processed no batches — fell back to rows?")
			}
		})
	}
}

// TestSortEquivalenceHeavyDuplicates is the sort-focused arm of the suite:
// random multi-key sorts over schemas whose key columns carry heavy
// duplicates (and nulls), executed columnar, row-at-a-time, unfused
// (per-operator batch kernels), boxed-row (WithColumnarSort(false)) and as a
// forced external merge (one-byte budget). All five must be bit-identical to
// the stable row sort — a unique id column makes any stability drift between
// the typed kernels, the boxed comparators and the loser-tree merge visible.
func TestSortEquivalenceHeavyDuplicates(t *testing.T) {
	ctx := context.Background()
	var externalRuns int64
	for seed := int64(100); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := storage.MustSchema(
				storage.Field{Name: "k", Type: storage.TypeInt, Nullable: true},
				storage.Field{Name: "g", Type: storage.TypeString},
				storage.Field{Name: "f", Type: storage.TypeFloat, Nullable: true},
				storage.Field{Name: "b", Type: storage.TypeBool},
				storage.Field{Name: "id", Type: storage.TypeInt},
			)
			n := 200 + rng.Intn(1800)
			rows := make([]storage.Row, n)
			for i := range rows {
				var k storage.Value
				if rng.Intn(8) > 0 {
					k = int64(rng.Intn(4)) // 4-value domain: ties everywhere
				}
				var f storage.Value
				if rng.Intn(10) > 0 {
					f = float64(rng.Intn(6)) / 2
				}
				rows[i] = storage.Row{
					k,
					fmt.Sprintf("g%d", rng.Intn(3)),
					f,
					rng.Intn(2) == 0,
					int64(i),
				}
			}
			orders := []SortOrder{
				{Column: "k"},
				{Column: "g", Descending: rng.Intn(2) == 0},
				{Column: "f", Descending: rng.Intn(2) == 0},
				{Column: "b"},
			}
			plan := FromRows("sortequiv", schema, rows, 1+rng.Intn(6)).Sort(orders...)

			engines := equivalenceEngines(t)
			base, err := engines["row"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []string{"vectorized", "unfused", "unfused-vec", "boxed-sort", "spill", "spill-compressed"} {
				got, err := engines[mode].Collect(ctx, plan)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if len(got.Rows) != len(base.Rows) {
					t.Fatalf("%s rows = %d, row arm = %d", mode, len(got.Rows), len(base.Rows))
				}
				for i := range got.Rows {
					if !reflect.DeepEqual(got.Rows[i], base.Rows[i]) {
						t.Fatalf("%s row %d = %#v, want %#v", mode, i, got.Rows[i], base.Rows[i])
					}
				}
				if got.Stats.ShuffledRows != base.Stats.ShuffledRows {
					t.Errorf("%s ShuffledRows = %d, row = %d", mode, got.Stats.ShuffledRows, base.Stats.ShuffledRows)
				}
			}
			spillRes, err := engines["spill"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			externalRuns += spillRes.Stats.SortRuns
			if spillRes.Stats.SortRuns > 0 && spillRes.Stats.SortMergedBatches == 0 {
				t.Error("external sort reported runs but no merged batches")
			}
		})
	}
	if externalRuns == 0 {
		t.Error("the one-byte-budget arm never sorted through external runs across the suite")
	}
}

// TestGroupByEquivalenceForcedSpill is the aggregation-focused arm of the
// suite: high-cardinality group-bys with every aggregation kind, run
// non-combined so rows cross the shuffle raw and the reduce side owns all
// group state. The row baseline is compared against the columnar hash
// aggregation, the boxed ablation arm, and a one-byte-budget run that forces
// the hash aggregation to flush its group state through the spill
// sub-partitions every batch — all must stay bit-identical, which also pins
// the spill path's first-seen emission order. Float inputs are multiples of
// 1/8 so re-grouped partial sums stay exact.
func TestGroupByEquivalenceForcedSpill(t *testing.T) {
	ctx := context.Background()
	var spilledParts int64
	for seed := int64(200); seed < 210; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			schema := storage.MustSchema(
				storage.Field{Name: "k", Type: storage.TypeInt},
				storage.Field{Name: "v", Type: storage.TypeFloat, Nullable: true},
				storage.Field{Name: "s", Type: storage.TypeString, Nullable: true},
			)
			keys := 1000 + rng.Intn(2000) // high cardinality: most groups are tiny
			n := 4000 + rng.Intn(4000)
			rows := make([]storage.Row, n)
			for i := range rows {
				var v storage.Value
				if rng.Intn(10) > 0 {
					v = float64(rng.Intn(2000)-1000) / 8
				}
				var s storage.Value
				if rng.Intn(12) > 0 {
					s = fmt.Sprintf("s%03d", rng.Intn(200))
				}
				rows[i] = storage.Row{int64(rng.Intn(keys)), v, s}
			}
			// Enough source partitions that every shuffle bucket receives its
			// rows across several batches: the spilling aggregation flushes at
			// batch granularity, so its resident peak is one epoch's groups,
			// not the bucket's.
			plan := FromRows("aggequiv", schema, rows, 6+rng.Intn(3)).
				GroupBy("k").
				Agg(Count(), Sum("v"), Avg("v"), Min("v"), Max("v"),
					Min("s"), Max("s"), StdDev("v"), CountDistinct("s"))

			build := func(opts ...EngineOption) *Engine {
				c, err := cluster.New(cluster.Uniform(2, 2, 0))
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEngine(c, append([]EngineOption{WithMapSideCombine(false)}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			engines := map[string]*Engine{
				"row":       build(WithVectorizedExecution(false)),
				"columnar":  build(),
				"boxed-agg": build(WithColumnarAgg(false)),
				// Group-state flushes re-spill through the batch codec, so the
				// forced-spill arm runs both with the compressed v2 frames
				// (the default) and the raw v1 ablation baseline.
				"spill":            build(WithMemoryBudget(1), WithSpillCompression(false)),
				"spill-compressed": build(WithMemoryBudget(1)),
			}
			base, err := engines["row"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []string{"columnar", "boxed-agg", "spill", "spill-compressed"} {
				got, err := engines[mode].Collect(ctx, plan)
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if len(got.Rows) != len(base.Rows) {
					t.Fatalf("%s rows = %d, row arm = %d", mode, len(got.Rows), len(base.Rows))
				}
				for i := range got.Rows {
					if !reflect.DeepEqual(got.Rows[i], base.Rows[i]) {
						t.Fatalf("%s row %d = %#v, want %#v", mode, i, got.Rows[i], base.Rows[i])
					}
				}
				if got.Stats.AggGroups != base.Stats.AggGroups {
					t.Errorf("%s AggGroups = %d, row = %d", mode, got.Stats.AggGroups, base.Stats.AggGroups)
				}
			}
			spill, err := engines["spill"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			if spill.Stats.AggSpilledPartitions == 0 {
				t.Error("one-byte budget never spilled aggregation state")
			}
			spilledParts += spill.Stats.AggSpilledPartitions
			compressed, err := engines["spill-compressed"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			if compressed.Stats.AggSpilledPartitions == 0 {
				t.Error("compressed arm never spilled aggregation state")
			}
			if compressed.Stats.SpilledBytes > compressed.Stats.SpillLogicalBytes {
				t.Errorf("compressed agg spill: physical %dB exceeds logical %dB",
					compressed.Stats.SpilledBytes, compressed.Stats.SpillLogicalBytes)
			}
			// The sub-partitioned merge must hold strictly less state resident
			// than the whole bucket's groups would need: the in-memory columnar
			// run's peak bounds it from above with a wide margin.
			inMem, err := engines["columnar"].Collect(ctx, plan)
			if err != nil {
				t.Fatal(err)
			}
			if spill.Stats.AggPeakResidentBytes <= 0 {
				t.Error("spill run reported no aggregation peak")
			}
			if 2*spill.Stats.AggPeakResidentBytes > inMem.Stats.AggPeakResidentBytes {
				t.Errorf("spill peak %dB not bounded by half the in-memory peak %dB",
					spill.Stats.AggPeakResidentBytes, inMem.Stats.AggPeakResidentBytes)
			}
		})
	}
	if spilledParts == 0 {
		t.Error("forced-spill arm never merged a spill sub-partition across the suite")
	}
}
