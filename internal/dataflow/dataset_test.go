package dataflow

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/storage"
)

func salesSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "amount", Type: storage.TypeFloat},
		storage.Field{Name: "priority", Type: storage.TypeBool, Nullable: true},
	)
}

func salesRows() []storage.Row {
	return []storage.Row{
		{int64(1), "north", 10.0, true},
		{int64(2), "south", 20.0, false},
		{int64(3), "north", 30.0, nil},
		{int64(4), "east", 40.0, true},
		{int64(5), "south", 50.0, false},
		{int64(6), "north", 60.0, true},
	}
}

func salesDataset(t *testing.T) *Dataset {
	t.Helper()
	d := FromRows("sales", salesSchema(), salesRows(), 3)
	if d.Err() != nil {
		t.Fatalf("FromRows: %v", d.Err())
	}
	return d
}

func TestFromRowsValidation(t *testing.T) {
	if err := FromRows("x", nil, nil, 1).Err(); !errors.Is(err, ErrNoSource) {
		t.Errorf("nil schema err = %v, want ErrNoSource", err)
	}
	bad := []storage.Row{{"wrong", "north", 1.0, nil}}
	if err := FromRows("x", salesSchema(), bad, 1).Err(); err == nil {
		t.Error("invalid rows must be rejected")
	}
	// Negative partition counts are clamped to 1.
	d := FromRows("x", salesSchema(), salesRows(), -3)
	if d.Err() != nil {
		t.Errorf("negative partitions should clamp, got %v", d.Err())
	}
}

func TestFromTableSnapshot(t *testing.T) {
	tbl, err := storage.NewTable("sales", salesSchema(), storage.WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AppendAll(salesRows()); err != nil {
		t.Fatal(err)
	}
	d := FromTable(tbl)
	if d.Err() != nil {
		t.Fatalf("FromTable: %v", d.Err())
	}
	// Mutating the table after the snapshot must not change the plan source.
	if err := tbl.Append(storage.Row{int64(7), "west", 70.0, nil}); err != nil {
		t.Fatal(err)
	}
	src := d.node.(*sourceNode)
	total := 0
	for _, p := range src.partitions {
		total += len(p)
	}
	if total != 6 {
		t.Errorf("snapshot rows = %d, want 6", total)
	}
	if FromTable(nil).Err() == nil {
		t.Error("FromTable(nil) must be invalid")
	}
}

func TestRecordAccessors(t *testing.T) {
	rec := Record{schema: salesSchema(), row: salesRows()[0]}
	if rec.Int("id") != 1 || rec.String("region") != "north" || rec.Float("amount") != 10.0 || !rec.Bool("priority") {
		t.Errorf("record accessors misbehave: %+v", rec)
	}
	if rec.Value("missing") != nil || !rec.IsNull("missing") {
		t.Error("missing column must read as null")
	}
	if rec.IsNull("id") {
		t.Error("id must not be null")
	}
	if rec.Schema() != rec.schema || len(rec.Row()) != 4 {
		t.Error("Schema/Row accessors misbehave")
	}
}

func TestErrorPropagationThroughBuilder(t *testing.T) {
	d := FromTable(nil) // invalid source
	chained := d.Filter("x", func(Record) (bool, error) { return true, nil }).
		Project("id").
		Limit(3)
	if chained.Err() == nil {
		t.Error("builder must propagate the original error")
	}
	if chained.Schema() != nil {
		t.Error("invalid plan must have nil schema")
	}
	if !strings.Contains(chained.Explain(), "invalid") {
		t.Errorf("Explain of invalid plan = %q", chained.Explain())
	}
	var nilDS *Dataset
	if nilDS.Err() == nil {
		t.Error("nil dataset must report an error")
	}
}

func TestBuilderValidation(t *testing.T) {
	d := salesDataset(t)
	if d.Filter("nil", nil).Err() == nil {
		t.Error("nil filter fn must fail")
	}
	if d.Map("nil", nil, nil).Err() == nil {
		t.Error("nil map schema/fn must fail")
	}
	if d.FlatMap("nil", nil, nil).Err() == nil {
		t.Error("nil flatmap schema/fn must fail")
	}
	if d.Project("ghost").Err() == nil {
		t.Error("projecting unknown column must fail")
	}
	if d.WithColumn(storage.Field{Name: "id", Type: storage.TypeInt}, func(Record) (storage.Value, error) { return nil, nil }).Err() == nil {
		t.Error("duplicate derived column name must fail")
	}
	if d.WithColumn(storage.Field{Name: "y", Type: storage.TypeInt}, nil).Err() == nil {
		t.Error("nil column fn must fail")
	}
	if d.Sample(1.5, 1).Err() == nil {
		t.Error("sample fraction > 1 must fail")
	}
	if d.Limit(-1).Err() == nil {
		t.Error("negative limit must fail")
	}
	if d.Distinct("ghost").Err() == nil {
		t.Error("distinct on unknown column must fail")
	}
	if d.Sort().Err() == nil {
		t.Error("sort without orders must fail")
	}
	if d.Sort(SortOrder{Column: "ghost"}).Err() == nil {
		t.Error("sort on unknown column must fail")
	}
	if d.GroupBy().Agg(Count()).Err() == nil {
		t.Error("group by without keys must fail")
	}
	if d.GroupBy("ghost").Agg(Count()).Err() == nil {
		t.Error("group by unknown key must fail")
	}
	if d.GroupBy("region").Agg().Err() == nil {
		t.Error("agg without aggregations must fail")
	}
	if d.GroupBy("region").Agg(Sum("ghost")).Err() == nil {
		t.Error("aggregating unknown column must fail")
	}
	if d.GroupBy("region").Agg(Aggregation{Kind: AggSum}).Err() == nil {
		t.Error("aggregation without column must fail")
	}
	other := FromRows("other", storage.MustSchema(storage.Field{Name: "x", Type: storage.TypeInt}), nil, 1)
	if d.Union(other).Err() == nil {
		t.Error("union of incompatible schemas must fail")
	}
	if d.Join(other, "ghost", "x", InnerJoin).Err() == nil {
		t.Error("join on unknown left key must fail")
	}
	if d.Join(other, "id", "ghost", InnerJoin).Err() == nil {
		t.Error("join on unknown right key must fail")
	}
	if d.Join(other, "id", "x", JoinType(99)).Err() == nil {
		t.Error("unsupported join type must fail")
	}
}

func TestJoinSchemaPrefixesCollidingColumns(t *testing.T) {
	left := salesDataset(t)
	right := FromRows("regions", storage.MustSchema(
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "manager", Type: storage.TypeString},
	), []storage.Row{{"north", "anna"}}, 1)
	j := left.Join(right, "region", "region", InnerJoin)
	if j.Err() != nil {
		t.Fatalf("join: %v", j.Err())
	}
	s := j.Schema()
	if !s.Has("right_region") || !s.Has("manager") {
		t.Errorf("join schema = %v", s.Names())
	}
}

func TestExplain(t *testing.T) {
	d := salesDataset(t).
		Filter("amount > 15", func(r Record) (bool, error) { return r.Float("amount") > 15, nil }).
		GroupBy("region").Agg(Count(), Sum("amount"))
	plan := d.Explain()
	for _, want := range []string{"GroupBy", "Filter", "Source(sales"} {
		if !strings.Contains(plan, want) {
			t.Errorf("Explain missing %q:\n%s", want, plan)
		}
	}
	var empty *Dataset
	if empty.Explain() != "<invalid plan>" {
		t.Errorf("nil Explain = %q", empty.Explain())
	}
}

func TestAggregationNaming(t *testing.T) {
	if Count().OutputName() != "count" {
		t.Errorf("Count output = %q", Count().OutputName())
	}
	if Sum("amount").OutputName() != "sum_amount" {
		t.Errorf("Sum output = %q", Sum("amount").OutputName())
	}
	if Avg("x").Named("mean_x").OutputName() != "mean_x" {
		t.Errorf("Named output = %q", Avg("x").Named("mean_x").OutputName())
	}
	kinds := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax, AggCountDistinct, AggStdDev}
	for _, k := range kinds {
		if k.String() == "" || strings.HasPrefix(k.String(), "agg(") {
			t.Errorf("AggKind(%d).String() = %q", k, k.String())
		}
	}
	if JoinType(42).String() == "" || InnerJoin.String() != "inner" || LeftJoin.String() != "left" {
		t.Error("JoinType.String misbehaves")
	}
}

func TestGroupByOutputSchema(t *testing.T) {
	d := salesDataset(t).GroupBy("region").Agg(Count(), Avg("amount"), Min("id"), CountDistinct("priority"))
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	s := d.Schema()
	want := []string{"region", "count", "avg_amount", "min_id", "count_distinct_priority"}
	got := s.Names()
	if len(got) != len(want) {
		t.Fatalf("schema = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("schema[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if f, _ := s.FieldByName("count"); f.Type != storage.TypeInt {
		t.Error("count must be int")
	}
	if f, _ := s.FieldByName("avg_amount"); f.Type != storage.TypeFloat {
		t.Error("avg must be float")
	}
	if f, _ := s.FieldByName("min_id"); f.Type != storage.TypeInt {
		t.Error("min of int column must be int")
	}
}
