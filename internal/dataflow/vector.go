package dataflow

// vector.go implements the columnar execution paths of the engine. Under
// WithVectorizedExecution (the default) partitions travel between operators
// as storage.ColumnBatch values instead of []storage.Row:
//
//   - A fused narrow stage runs as a chain of batch kernels. Filter and
//     Sample evaluate their predicate per row through a zero-copy batch view
//     and emit a selection vector — no row is copied or boxed. Project
//     re-points column references and WithColumn appends one freshly
//     computed typed vector; in both cases unaffected columns are shared
//     with the input batch. Arbitrary Map/FlatMap closures fall back to
//     per-row batch views and their output rows are unboxed straight into a
//     new batch (which validates them against the output schema for free).
//   - Wide operators key rows directly from the column vectors
//     (KeyEncoder.BatchKey/BatchHash) and move rows by batch index with
//     typed copies (shuffleBatches, ColumnBatch.Gather), so the shuffle
//     never materialises a boxed Row either.
//
// Sort is columnar end to end as well (the batchComparator kernels below):
// typed per-column compare kernels order selection vectors directly over the
// column vectors, range-partition sampling reads the typed columns, and under
// a memory budget each partition sorts fixed-size chunks into sorted runs
// that spill through the batch codec and merge back with a loser tree
// (storage.RunStore). The boxed-row sort survives as the ablation arm behind
// WithColumnarSort(false).

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// toBatch returns the partition in columnar form, converting row-backed
// partitions (wide-operator outputs, unions of mixed plans) on the fly.
func toBatch(p part, schema *storage.Schema) (*storage.ColumnBatch, error) {
	if p.batch != nil {
		return p.batch, nil
	}
	return storage.BatchFromRows(schema, p.rows)
}

func countBatchRows(in []*storage.ColumnBatch) int {
	total := 0
	for _, b := range in {
		total += b.Len()
	}
	return total
}

// eachSel calls f for every selected row index: all rows of an n-row batch
// when sel is nil, the selected rows otherwise.
func eachSel(n int, sel []int32, f func(i int) error) error {
	if sel == nil {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, i := range sel {
		if err := f(int(i)); err != nil {
			return err
		}
	}
	return nil
}

func selLen(n int, sel []int32) int {
	if sel == nil {
		return n
	}
	return len(sel)
}

// evalFusedVectorized executes a fused chain of narrow operators as one
// cluster job whose tasks run batch kernels (one task per input partition).
// Limit-capped chains never reach it (see eval): they keep the row pipeline
// for its early stop.
func (e *Engine) evalFusedVectorized(ctx context.Context, ch fusedChain, st *execState) ([]part, error) {
	in, err := e.eval(ctx, ch.base, st)
	if err != nil {
		return nil, err
	}
	baseSchema := ch.base.schema()
	name := ch.name()
	out := make([]part, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("%s[%d]", name, i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				b, err := toBatch(in[i], baseSchema)
				if err != nil {
					return err
				}
				res, err := e.runVectorizedChain(ch, i, b)
				if err != nil {
					return fmt.Errorf("%w: %v", ErrUDF, err)
				}
				out[i] = batchPart(res)
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, name, tasks); err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", name, err)
	}
	st.addBatches(len(out), countParts(out))
	if len(ch.ops) > 1 {
		st.addFused()
	}
	return out, nil
}

// runVectorizedChain pushes one batch through the chain's kernels. The
// current state is a batch plus an optional selection vector (nil = every
// row); filters only narrow the selection, and the selection is materialised
// (gathered) lazily — when a kernel needs aligned columns or at the end of
// the chain.
func (e *Engine) runVectorizedChain(ch fusedChain, partIdx int, b *storage.ColumnBatch) (*storage.ColumnBatch, error) {
	cur := b
	var sel []int32
	for _, op := range ch.ops {
		switch n := op.(type) {
		case *filterNode:
			schema := n.child.schema()
			next := make([]int32, 0, selLen(cur.Len(), sel))
			err := eachSel(cur.Len(), sel, func(i int) error {
				keep, err := n.fn(Record{schema: schema, batch: cur, idx: i})
				if err != nil {
					return err
				}
				if keep {
					next = append(next, int32(i))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			sel = next
		case *sampleNode:
			rng := rand.New(rand.NewSource(n.seed + int64(partIdx)))
			next := make([]int32, 0, selLen(cur.Len(), sel))
			_ = eachSel(cur.Len(), sel, func(i int) error {
				if rng.Float64() < n.fraction {
					next = append(next, int32(i))
				}
				return nil
			})
			sel = next
		case *projectNode:
			// Pure column operation: re-point the projected columns, leave
			// the selection untouched. No cell is read, copied or boxed.
			cur = cur.ProjectCols(n.out, n.indices)
		case *withColumnNode:
			// The derived column must align with the batch's rows, so a
			// pending selection is materialised first; the existing columns
			// are then shared, only the new vector is written.
			if sel != nil {
				cur = cur.Gather(sel)
				sel = nil
			}
			schema := n.child.schema()
			col := storage.NewColumnBuilder(n.field.Type, cur.Len())
			for i := 0; i < cur.Len(); i++ {
				v, err := n.fn(Record{schema: schema, batch: cur, idx: i})
				if err != nil {
					return nil, err
				}
				if err := col.AppendValue(n.field, v, i); err != nil {
					return nil, fmt.Errorf("with_column output: %w", err)
				}
			}
			cur = cur.WithAppendedColumn(n.out, col)
		case *mapNode:
			schema := n.child.schema()
			next := storage.NewColumnBatch(n.out, selLen(cur.Len(), sel))
			err := eachSel(cur.Len(), sel, func(i int) error {
				nr, err := n.fn(Record{schema: schema, batch: cur, idx: i})
				if err != nil {
					return err
				}
				if err := next.AppendRow(nr); err != nil {
					return fmt.Errorf("map output: %w", err)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			cur, sel = next, nil
		case *flatMapNode:
			schema := n.child.schema()
			next := storage.NewColumnBatch(n.out, selLen(cur.Len(), sel))
			err := eachSel(cur.Len(), sel, func(i int) error {
				produced, err := n.fn(Record{schema: schema, batch: cur, idx: i})
				if err != nil {
					return err
				}
				for _, nr := range produced {
					if err := next.AppendRow(nr); err != nil {
						return fmt.Errorf("flatmap output: %w", err)
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			cur, sel = next, nil
		default:
			return nil, fmt.Errorf("%w: operator %T cannot be vectorized", ErrBadPlan, op)
		}
	}
	if sel != nil {
		cur = cur.Gather(sel)
	}
	return cur, nil
}

// ---------------------------------------------------------------------------
// Sort (typed comparator kernels)
// ---------------------------------------------------------------------------

// colCompareFn is one per-type compare kernel: it orders cell ai of column a
// against cell bi of column b (both columns of the same field type) without
// boxing either value. The result must match storage.CompareValues over the
// boxed equivalents exactly — the row-at-a-time ablation arm sorts with
// CompareValues, and any divergence (including which pairs count as equal,
// which decides how a stable sort breaks ties) would break the bit-identical
// equivalence contract.
type colCompareFn func(a *storage.Column, ai int, b *storage.Column, bi int) int

// compareNullCells orders the null cases: nulls sort first, two nulls tie.
// ok is false when neither cell is null and the typed kernel must decide.
func compareNullCells(aNull, bNull bool) (int, bool) {
	switch {
	case aNull && bNull:
		return 0, true
	case aNull:
		return -1, true
	case bNull:
		return 1, true
	default:
		return 0, false
	}
}

// compareIntCells orders int/time cells. CompareValues routes numerics
// through AsFloat, so the kernel compares the float64 conversions too: int64
// pairs beyond 2^53 that collapse to the same float64 must stay "equal" here
// as well, or the typed and boxed sorts would break ties differently.
func compareIntCells(a *storage.Column, ai int, b *storage.Column, bi int) int {
	if c, done := compareNullCells(a.Null(ai), b.Null(bi)); done {
		return c
	}
	af, bf := float64(a.Int(ai)), float64(b.Int(bi))
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// compareFloatCells orders float cells. NaN compares "equal" to everything —
// both < and > are false — which is CompareValues' behaviour too.
func compareFloatCells(a *storage.Column, ai int, b *storage.Column, bi int) int {
	if c, done := compareNullCells(a.Null(ai), b.Null(bi)); done {
		return c
	}
	af, bf := a.Float(ai), b.Float(bi)
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

func compareStringCells(a *storage.Column, ai int, b *storage.Column, bi int) int {
	if c, done := compareNullCells(a.Null(ai), b.Null(bi)); done {
		return c
	}
	// Dictionary fast path: when both cells come from the same decoded spill
	// frame, their codes index one strictly sorted dictionary, so code order
	// is string order — two uint32 compares instead of a byte-wise one. The
	// external merge hits this whenever it compares rows within one restored
	// run frame.
	if storage.DictShared(a, b) {
		ac, bc := a.Codes()[ai], b.Codes()[bi]
		switch {
		case ac < bc:
			return -1
		case ac > bc:
			return 1
		default:
			return 0
		}
	}
	as, bs := a.Str(ai), b.Str(bi)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// compareBoolCells orders bool cells: false < true.
func compareBoolCells(a *storage.Column, ai int, b *storage.Column, bi int) int {
	if c, done := compareNullCells(a.Null(ai), b.Null(bi)); done {
		return c
	}
	ab, bb := a.Bool(ai), b.Bool(bi)
	switch {
	case !ab && bb:
		return -1
	case ab && !bb:
		return 1
	default:
		return 0
	}
}

// compareBoxedCells is the total fallback for column types without a typed
// kernel: box both cells and defer to CompareValues. Schema-validated plans
// never reach it.
func compareBoxedCells(a *storage.Column, ai int, b *storage.Column, bi int) int {
	return storage.CompareValues(a.Value(ai), b.Value(bi))
}

// sortKeyKernel is one resolved sort key: column position, direction, and the
// type-selected compare kernel.
type sortKeyKernel struct {
	col  int
	desc bool
	cmp  colCompareFn
}

// batchComparator orders batch rows under a multi-key sort without
// materialising or boxing them: each key compares through its typed kernel
// and later keys only break ties of earlier ones, exactly like the row
// comparator the ablation arm uses.
type batchComparator struct {
	keys []sortKeyKernel
}

// newBatchComparator resolves the sort orders against schema, selecting one
// typed kernel per key column.
func newBatchComparator(schema *storage.Schema, orders []SortOrder) (*batchComparator, error) {
	keys := make([]sortKeyKernel, len(orders))
	for i, o := range orders {
		idx := schema.IndexOf(o.Column)
		if idx < 0 {
			return nil, fmt.Errorf("dataflow: sort: %w: column %q not in input schema %s",
				storage.ErrUnknownField, o.Column, schema)
		}
		var cmp colCompareFn
		switch schema.Field(idx).Type {
		case storage.TypeInt, storage.TypeTime:
			cmp = compareIntCells
		case storage.TypeFloat:
			cmp = compareFloatCells
		case storage.TypeString:
			cmp = compareStringCells
		case storage.TypeBool:
			cmp = compareBoolCells
		default:
			cmp = compareBoxedCells
		}
		keys[i] = sortKeyKernel{col: idx, desc: o.Descending, cmp: cmp}
	}
	return &batchComparator{keys: keys}, nil
}

// Compare orders row ai of batch a against row bi of batch b. Both batches
// must share the comparator's schema. The signature matches
// storage.BatchRowCompare, so the same comparator drives in-batch selection
// sorts, range-bound searches and the external run merge.
func (c *batchComparator) Compare(a *storage.ColumnBatch, ai int, b *storage.ColumnBatch, bi int) int {
	for _, k := range c.keys {
		r := k.cmp(a.Column(k.col), ai, b.Column(k.col), bi)
		if r == 0 {
			continue
		}
		if k.desc {
			return -r
		}
		return r
	}
	return 0
}

// sortedSelection returns the stable sort permutation of b's rows as a
// selection vector: Gather-ing it materialises the sorted batch with typed
// copies. The key columns are resolved once and the sort permutes 4-byte
// indices through slices.SortStableFunc (no reflect-based swapping), which is
// what makes the columnar sort core allocation-free up to the selection
// vector itself.
func (c *batchComparator) sortedSelection(b *storage.ColumnBatch) []int32 {
	cols := make([]*storage.Column, len(c.keys))
	for i, k := range c.keys {
		cols[i] = b.Column(k.col)
	}
	sel := make([]int32, b.Len())
	for i := range sel {
		sel[i] = int32(i)
	}
	slices.SortStableFunc(sel, func(x, y int32) int {
		for i := range c.keys {
			r := c.keys[i].cmp(cols[i], int(x), cols[i], int(y))
			if r == 0 {
				continue
			}
			if c.keys[i].desc {
				return -r
			}
			return r
		}
		return 0
	})
	return sel
}

// ---------------------------------------------------------------------------
// Distinct (batch)
// ---------------------------------------------------------------------------

// keyedBatch carries deduped survivor rows of one partition together with
// their key encodings and hashes across the distinct shuffle, the columnar
// analogue of []keyedRow.
type keyedBatch struct {
	batch  *storage.ColumnBatch
	keys   []string
	hashes []uint64
}

// evalDistinctBatch implements distinct over columnar partitions. With
// map-side dedup on, each partition dedups locally (keying every row exactly
// once, straight from the column vectors), only the surviving rows cross the
// shuffle — gathered by batch index, with their keys carried — and the merge
// side dedups on the carried keys. The baseline shuffles every row and keys
// again on the reduce side. Under a memory budget both shapes route their
// shuffle through a spill-backed partition store (see evalDistinctBatchSpill
// for the combined variant).
func (e *Engine) evalDistinctBatch(ctx context.Context, schema *storage.Schema,
	in []*storage.ColumnBatch, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	if !e.mapSideDistinct {
		store, err := e.shuffleBatches(in, schema, enc, st)
		if err != nil {
			return nil, err
		}
		defer st.releaseStore(store)
		return e.distinctMergeFromStore(ctx, "distinct", schema, store, enc, st)
	}
	if e.memoryBudget > 0 {
		return e.evalDistinctBatchSpill(ctx, schema, in, enc, st)
	}

	// Map side: one task per input batch dedups locally and gathers the
	// survivors with their keys.
	partials := make([]keyedBatch, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("distinct-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				b := in[i]
				local := enc.Clone()
				seen := make(map[string]struct{}, 64)
				var sel []int32
				var keys []string
				var hashes []uint64
				for r := 0; r < b.Len(); r++ {
					k := local.BatchKey(b, r)
					if _, dup := seen[string(k)]; dup {
						continue
					}
					ks := string(k)
					seen[ks] = struct{}{}
					sel = append(sel, int32(r))
					keys = append(keys, ks)
					hashes = append(hashes, storage.HashString64(ks))
				}
				partials[i] = keyedBatch{batch: b.Gather(sel), keys: keys, hashes: hashes}
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "distinct-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: distinct-combine: %w", err)
	}

	// Shuffle only the survivors, by batch index, with carried keys.
	inputRows := countBatchRows(in)
	moved := 0
	for _, kb := range partials {
		moved += kb.batch.Len()
	}
	st.addStage()
	st.addShuffled(moved)
	st.addPrecombined(inputRows - moved)
	counts := make([]int, e.shufflePartitions)
	for _, kb := range partials {
		for _, h := range kb.hashes {
			counts[storage.PartitionOfHash(h, e.shufflePartitions)]++
		}
	}
	type bucket struct {
		batch *storage.ColumnBatch
		keys  []string
	}
	buckets := make([]bucket, e.shufflePartitions)
	for p := range buckets {
		buckets[p] = bucket{batch: storage.NewColumnBatch(schema, counts[p]), keys: make([]string, 0, counts[p])}
	}
	for _, kb := range partials {
		for r, h := range kb.hashes {
			p := storage.PartitionOfHash(h, e.shufflePartitions)
			buckets[p].batch.AppendRowFrom(kb.batch, r)
			buckets[p].keys = append(buckets[p].keys, kb.keys[r])
		}
	}
	st.addBatches(len(buckets), moved)

	// Reduce side: merge survivors per bucket on the carried keys.
	out := make([]part, len(buckets))
	mergeTasks := make([]cluster.Task, len(buckets))
	for bi := range buckets {
		bi := bi
		mergeTasks[bi] = cluster.Task{
			Name: fmt.Sprintf("distinct-merge[%d]", bi),
			Fn: func(ctx context.Context, node cluster.Node) error {
				bk := buckets[bi]
				seen := make(map[string]struct{}, len(bk.keys))
				sel := make([]int32, 0, len(bk.keys))
				for r, k := range bk.keys {
					if _, dup := seen[k]; dup {
						continue
					}
					seen[k] = struct{}{}
					sel = append(sel, int32(r))
				}
				out[bi] = batchPart(bk.batch.Gather(sel))
				return nil
			},
		}
	}
	st.addTasks(len(mergeTasks))
	if _, err := e.cluster.RunNamedJob(ctx, "distinct-merge", mergeTasks); err != nil {
		return nil, fmt.Errorf("dataflow: distinct-merge: %w", err)
	}
	return out, nil
}

// evalDistinctBatchSpill is the budgeted variant of the combined distinct.
// The map side dedups each partition locally exactly as the in-memory path
// does, but the survivors shuffle through a spill-backed partition store
// instead of carrying their key strings across the boundary, and the merge
// side re-keys the restored rows. Re-keying survivors trades the carried-key
// optimisation for bounded memory: a key string per surviving row would
// otherwise stay pinned resident no matter how many batches spill.
func (e *Engine) evalDistinctBatchSpill(ctx context.Context, schema *storage.Schema,
	in []*storage.ColumnBatch, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	partials := make([]*storage.ColumnBatch, len(in))
	tasks := make([]cluster.Task, len(in))
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("distinct-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				b := in[i]
				local := enc.Clone()
				seen := make(map[string]struct{}, 64)
				var sel []int32
				for r := 0; r < b.Len(); r++ {
					k := local.BatchKey(b, r)
					if _, dup := seen[string(k)]; dup {
						continue
					}
					seen[string(k)] = struct{}{}
					sel = append(sel, int32(r))
				}
				partials[i] = b.Gather(sel)
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "distinct-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: distinct-combine: %w", err)
	}
	st.addPrecombined(countBatchRows(in) - countBatchRows(partials))
	store, err := e.shuffleBatches(partials, schema, enc, st)
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(store)
	return e.distinctMergeFromStore(ctx, "distinct-merge", schema, store, enc, st)
}

// dictKeyColumn returns the batch column the encoder's whole key reduces to
// when that key is a single dictionary-backed string column without nulls —
// the precondition for dedup by dictionary code — or nil otherwise. A nil
// column-index list means "every column", so a one-column batch qualifies.
func dictKeyColumn(enc *storage.KeyEncoder, b *storage.ColumnBatch) *storage.Column {
	keyCol := -1
	if idx := enc.Columns(); len(idx) == 1 {
		keyCol = idx[0]
	} else if idx == nil && b.Width() == 1 {
		keyCol = 0
	}
	if keyCol < 0 {
		return nil
	}
	col := b.Column(keyCol)
	if len(col.Dict()) == 0 || col.HasNulls() {
		return nil
	}
	return col
}

// distinctMergeFromStore runs one task per store partition that streams the
// partition's batches — restoring spilled chunks transparently — and keeps
// the first occurrence of every key.
func (e *Engine) distinctMergeFromStore(ctx context.Context, name string, schema *storage.Schema,
	store *storage.PartitionStore, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	nParts := store.Partitions()
	out := make([]part, nParts)
	tasks := make([]cluster.Task, nParts)
	for bi := range tasks {
		bi := bi
		tasks[bi] = cluster.Task{
			Name: fmt.Sprintf("%s[%d]", name, bi),
			Fn: func(ctx context.Context, node cluster.Node) error {
				local := enc.Clone()
				rows := store.PartitionRows(bi)
				seen := make(map[string]struct{}, rows)
				res := storage.NewColumnBatch(schema, rows)
				var codeSeen []bool
				err := store.EachBatch(bi, func(b *storage.ColumnBatch) error {
					// Code-based fast path: when the distinct key reduces to a
					// single dictionary-backed string column without nulls,
					// each distinct code's fate (kept or dup) is decided once
					// per restored frame; repeated codes skip the key encode
					// and map probe entirely. Output is identical — a repeated
					// code is a repeated string, whose first occurrence in
					// this frame already went through the global seen map.
					if col := dictKeyColumn(local, b); col != nil {
						codes := col.Codes()
						codeSeen = codeSeen[:0]
						for range col.Dict() {
							codeSeen = append(codeSeen, false)
						}
						for i := 0; i < b.Len(); i++ {
							code := codes[i]
							if codeSeen[code] {
								continue
							}
							codeSeen[code] = true
							k := local.BatchKey(b, i)
							if _, dup := seen[string(k)]; dup {
								continue
							}
							seen[string(k)] = struct{}{}
							res.AppendRowFrom(b, i)
						}
						return nil
					}
					for i := 0; i < b.Len(); i++ {
						k := local.BatchKey(b, i)
						if _, dup := seen[string(k)]; dup {
							continue
						}
						seen[string(k)] = struct{}{}
						res.AppendRowFrom(b, i)
					}
					return nil
				})
				if err != nil {
					return err
				}
				out[bi] = batchPart(res)
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, name, tasks); err != nil {
		return nil, fmt.Errorf("dataflow: %s: %w", name, err)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Group-by (batch map side)
// ---------------------------------------------------------------------------

// evalGroupByCombinedBatch is the boxed-accumulator map side of the combined
// group-by, kept as the WithColumnarAgg(false) ablation arm: partial
// aggregation states are built straight from the column vectors (keys via
// BatchKey, aggregation updates via aggState.updateAt), then the shared
// shuffle+merge tail runs exactly as in the row path. The default combined
// map side is evalGroupByCombinedColumnar in agg_columnar.go.
func (e *Engine) evalGroupByCombinedBatch(ctx context.Context, n *groupByNode,
	in []*storage.ColumnBatch, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	inSchema := n.child.schema()
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		keyIdx[i] = inSchema.IndexOf(k)
	}
	partials := make([][]*partialGroup, len(in))
	tasks := make([]cluster.Task, len(in))
	inputRows := countBatchRows(in)
	for i := range in {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("groupby-combine[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				b := in[i]
				local := enc.Clone()
				groups := make(map[string]*partialGroup)
				var order []*partialGroup
				for r := 0; r < b.Len(); r++ {
					k := local.BatchKey(b, r)
					g, ok := groups[string(k)]
					if !ok {
						kv := make([]storage.Value, len(keyIdx))
						for j, idx := range keyIdx {
							kv[j] = b.Value(r, idx)
						}
						states := make([]*aggState, len(n.aggs))
						for j, a := range n.aggs {
							states[j] = newAggState(a, inSchema)
						}
						ks := string(k)
						g = &partialGroup{key: ks, hash: storage.HashString64(ks), keyValues: kv, states: states}
						groups[ks] = g
						order = append(order, g)
					}
					for _, s := range g.states {
						s.updateAt(b, r)
					}
				}
				partials[i] = order
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby-combine", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby-combine: %w", err)
	}
	return e.mergeGroupPartials(ctx, partials, inputRows, st)
}

// evalGroupByBatch is the boxed-accumulator non-combined group-by, kept as
// the WithColumnarAgg(false) ablation arm: every row crosses the shuffle
// boundary through a partition store (spilling under budget) and one task per
// bucket folds the restored batches into per-key aggregation states, keying
// straight from the column vectors. It mirrors the row baseline exactly —
// same bucket assignment, row order and group emission order — so results
// are bit-identical to the row-at-a-time path. The default non-combined path
// is evalGroupByHash in agg_columnar.go.
func (e *Engine) evalGroupByBatch(ctx context.Context, n *groupByNode,
	in []*storage.ColumnBatch, enc *storage.KeyEncoder, st *execState) ([]part, error) {

	inSchema := n.child.schema()
	keyIdx := make([]int, len(n.keys))
	for i, k := range n.keys {
		keyIdx[i] = inSchema.IndexOf(k)
	}
	store, err := e.shuffleBatches(in, inSchema, enc, st)
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(store)
	nParts := store.Partitions()
	out := make([][]storage.Row, nParts)
	tasks := make([]cluster.Task, nParts)
	for b := range tasks {
		b := b
		tasks[b] = cluster.Task{
			Name: fmt.Sprintf("groupby[%d]", b),
			Fn: func(ctx context.Context, node cluster.Node) error {
				type group struct {
					keyValues []storage.Value
					states    []*aggState
				}
				local := enc.Clone()
				groups := make(map[string]*group)
				var order []*group
				err := store.EachBatch(b, func(cb *storage.ColumnBatch) error {
					for r := 0; r < cb.Len(); r++ {
						k := local.BatchKey(cb, r)
						g, ok := groups[string(k)]
						if !ok {
							kv := make([]storage.Value, len(keyIdx))
							for j, idx := range keyIdx {
								kv[j] = cb.Value(r, idx)
							}
							states := make([]*aggState, len(n.aggs))
							for j, a := range n.aggs {
								states[j] = newAggState(a, inSchema)
							}
							g = &group{keyValues: kv, states: states}
							groups[string(k)] = g
							order = append(order, g)
						}
						for _, s := range g.states {
							s.updateAt(cb, r)
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				st.addAggGroups(len(order))
				rows := make([]storage.Row, 0, len(order))
				for _, g := range order {
					row := make(storage.Row, 0, len(g.keyValues)+len(g.states))
					row = append(row, g.keyValues...)
					for _, s := range g.states {
						row = append(row, s.result())
					}
					rows = append(rows, row)
				}
				out[b] = rows
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "groupby", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: groupby: %w", err)
	}
	return rowParts(out), nil
}

// ---------------------------------------------------------------------------
// Join (batch)
// ---------------------------------------------------------------------------

// batchJoinTable indexes the rows of one build-side batch by encoded key.
func batchJoinTable(b *storage.ColumnBatch, enc *storage.KeyEncoder) map[string][]int32 {
	build := make(map[string][]int32, b.Len())
	for i := 0; i < b.Len(); i++ {
		k := string(enc.BatchKey(b, i))
		build[k] = append(build[k], int32(i))
	}
	return build
}

// probeBatch streams probe-side batch rows against the build table, emitting
// joined rows with typed column copies (AppendJoined); unmatched left-join
// rows are null-extended. No boxed Row exists at any point.
func probeBatch(out *storage.ColumnBatch, probe *storage.ColumnBatch, build map[string][]int32,
	buildBatch *storage.ColumnBatch, enc *storage.KeyEncoder, kind JoinType) {

	for i := 0; i < probe.Len(); i++ {
		matches := build[string(enc.BatchKey(probe, i))]
		if len(matches) == 0 {
			if kind == LeftJoin {
				out.AppendNullExtended(probe, i)
			}
			continue
		}
		for _, m := range matches {
			out.AppendJoined(probe, i, buildBatch, int(m))
		}
	}
}

// flattenBatches concatenates batches into one (typed copies).
func flattenBatches(schema *storage.Schema, in []*storage.ColumnBatch) *storage.ColumnBatch {
	out := storage.NewColumnBatch(schema, countBatchRows(in))
	for _, b := range in {
		for i := 0; i < b.Len(); i++ {
			out.AppendRowFrom(b, i)
		}
	}
	return out
}

// evalJoinBatch executes the join over columnar partitions: broadcast when
// the build side is small enough (the build table indexes batch row numbers,
// probes preserve the left partitioning), shuffled hash join otherwise, with
// both sides moved by batch index.
func (e *Engine) evalJoinBatch(ctx context.Context, n *joinNode,
	left, right []*storage.ColumnBatch, lEnc, rEnc *storage.KeyEncoder, st *execState) ([]part, error) {

	ls, rs := n.left.schema(), n.right.schema()
	if e.broadcastJoin && countBatchRows(right) <= e.broadcastThreshold {
		st.addBroadcast()
		var buildBatch *storage.ColumnBatch
		var build map[string][]int32
		buildTask := []cluster.Task{{
			Name: "join-broadcast-build",
			Fn: func(ctx context.Context, node cluster.Node) error {
				buildBatch = flattenBatches(rs, right)
				build = batchJoinTable(buildBatch, rEnc.Clone())
				return nil
			},
		}}
		st.addTasks(1)
		if _, err := e.cluster.RunNamedJob(ctx, "join-broadcast-build", buildTask); err != nil {
			return nil, fmt.Errorf("dataflow: join-broadcast-build: %w", err)
		}
		out := make([]part, len(left))
		tasks := make([]cluster.Task, len(left))
		for i := range left {
			i := i
			tasks[i] = cluster.Task{
				Name: fmt.Sprintf("join-broadcast[%d]", i),
				Fn: func(ctx context.Context, node cluster.Node) error {
					res := storage.NewColumnBatch(n.out, left[i].Len())
					probeBatch(res, left[i], build, buildBatch, lEnc.Clone(), n.kind)
					out[i] = batchPart(res)
					return nil
				},
			}
		}
		st.addTasks(len(tasks))
		if _, err := e.cluster.RunNamedJob(ctx, "join-broadcast", tasks); err != nil {
			return nil, fmt.Errorf("dataflow: join-broadcast: %w", err)
		}
		st.addBatches(len(out), countParts(out))
		return out, nil
	}

	// Shuffled hash join through partition stores: under a memory budget the
	// bucket chunks of both sides spill to disk as they accumulate; each task
	// then restores its build-side bucket (flattened, since the hash table
	// must be resident to probe) and streams its probe-side chunks one at a
	// time.
	lStore, err := e.shuffleBatches(left, ls, lEnc, st)
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(lStore)
	rStore, err := e.shuffleBatches(right, rs, rEnc, st)
	if err != nil {
		return nil, err
	}
	defer st.releaseStore(rStore)
	nParts := lStore.Partitions()
	out := make([]part, nParts)
	tasks := make([]cluster.Task, nParts)
	for i := range tasks {
		i := i
		tasks[i] = cluster.Task{
			Name: fmt.Sprintf("join[%d]", i),
			Fn: func(ctx context.Context, node cluster.Node) error {
				buildBatch, err := rStore.FlattenPartition(i)
				if err != nil {
					return err
				}
				build := batchJoinTable(buildBatch, rEnc.Clone())
				res := storage.NewColumnBatch(n.out, lStore.PartitionRows(i))
				probe := lEnc.Clone()
				err = lStore.EachBatch(i, func(pb *storage.ColumnBatch) error {
					probeBatch(res, pb, build, buildBatch, probe, n.kind)
					return nil
				})
				if err != nil {
					return err
				}
				out[i] = batchPart(res)
				return nil
			},
		}
	}
	st.addTasks(len(tasks))
	if _, err := e.cluster.RunNamedJob(ctx, "join", tasks); err != nil {
		return nil, fmt.Errorf("dataflow: join: %w", err)
	}
	st.addBatches(len(out), countParts(out))
	return out, nil
}
