package dataflow

import (
	"context"
	"strings"
	"testing"

	"repro/internal/storage"
)

// vectorChainPlan builds a kernel-heavy narrow chain: filter → project →
// with_column → filter over n rows.
func vectorChainPlan(t *testing.T, n, parts int) *Dataset {
	t.Helper()
	schema := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
		storage.Field{Name: "tag", Type: storage.TypeString, Nullable: true},
	)
	rows := make([]storage.Row, n)
	for i := range rows {
		var tag storage.Value
		if i%3 != 0 {
			tag = "t"
		}
		rows[i] = storage.Row{int64(i % 50), float64(i%100) / 2, tag}
	}
	return FromRows("vec", schema, rows, parts).
		Filter("v >= 5", func(r Record) (bool, error) { return r.Float("v") >= 5, nil }).
		Project("k", "v").
		WithColumn(storage.Field{Name: "bucket", Type: storage.TypeInt},
			func(r Record) (storage.Value, error) { return r.Int("v") / 10, nil }).
		Filter("bucket < 4", func(r Record) (bool, error) { return r.Int("bucket") < 4, nil })
}

func TestVectorizedStatsAndMetrics(t *testing.T) {
	vec := testEngine(t)
	row := testEngineWith(t, WithVectorizedExecution(false))
	d := vectorChainPlan(t, 1000, 4).Distinct("k", "bucket")

	vres := collect(t, vec, d)
	rres := collect(t, row, d)
	if vres.Stats.Batches == 0 || vres.Stats.BatchRows == 0 {
		t.Errorf("vectorized run reported Batches=%d BatchRows=%d", vres.Stats.Batches, vres.Stats.BatchRows)
	}
	if rres.Stats.Batches != 0 || rres.Stats.BatchRows != 0 {
		t.Errorf("row run reported Batches=%d BatchRows=%d", rres.Stats.Batches, rres.Stats.BatchRows)
	}
	snap := vec.Metrics().Snapshot()
	if got := snap.CounterValue("batches"); got != vres.Stats.Batches {
		t.Errorf("batches counter = %d, want %d", got, vres.Stats.Batches)
	}
	if got := snap.CounterValue("batches.rows"); got != vres.Stats.BatchRows {
		t.Errorf("batches.rows counter = %d, want %d", got, vres.Stats.BatchRows)
	}
	// Same data either way.
	if len(vres.Rows) != len(rres.Rows) {
		t.Fatalf("vectorized rows = %d, row rows = %d", len(vres.Rows), len(rres.Rows))
	}
}

func TestExplainNamesExecutionMode(t *testing.T) {
	d := vectorChainPlan(t, 100, 2)
	vec := testEngine(t)
	plan := vec.Explain(d)
	for _, want := range []string{"vectorized=on", "execution mode: vectorized (columnar batches)", "[vectorized]"} {
		if !strings.Contains(plan, want) {
			t.Errorf("vectorized Explain missing %q:\n%s", want, plan)
		}
	}
	// Limit-capped chains run the row pipeline (for its early stop), so they
	// must not be tagged as batch-kernel stages.
	if capped := vec.Explain(vectorChainPlan(t, 100, 2).Limit(5)); strings.Contains(capped, "[vectorized]") {
		t.Errorf("limit-capped chain must not be tagged vectorized:\n%s", capped)
	}
	row := testEngineWith(t, WithVectorizedExecution(false))
	plan = row.Explain(d)
	if !strings.Contains(plan, "vectorized=off") || !strings.Contains(plan, "execution mode: row-at-a-time (fused)") {
		t.Errorf("row Explain must name the row mode:\n%s", plan)
	}
	if strings.Contains(plan, "[vectorized]") {
		t.Errorf("row Explain must not tag stages as vectorized:\n%s", plan)
	}
	// Unfused but vectorized: narrow operators run one batch-kernel job each.
	unfused := testEngineWith(t, WithFusion(false))
	if plan := unfused.Explain(d); !strings.Contains(plan, "execution mode: vectorized (per-operator batch kernels)") {
		t.Errorf("unfused vectorized Explain must name the per-operator kernel mode:\n%s", plan)
	}
	unfusedRow := testEngineWith(t, WithFusion(false), WithVectorizedExecution(false))
	if plan := unfusedRow.Explain(d); !strings.Contains(plan, "execution mode: row-at-a-time (per-operator)") {
		t.Errorf("unfused row Explain must name the per-operator mode:\n%s", plan)
	}
}

// TestValidationGating covers the WithStrictValidation satellite: a map
// closure that emits a mistyped row late in the partition slips through the
// lax row path (only the first row per partition is checked), is caught by
// strict mode, and is always caught by the vectorized path, where unboxing
// into typed vectors validates for free.
func TestValidationGating(t *testing.T) {
	schema := storage.MustSchema(storage.Field{Name: "x", Type: storage.TypeInt})
	rows := make([]storage.Row, 10)
	for i := range rows {
		rows[i] = storage.Row{int64(i)}
	}
	bad := FromRows("vals", schema, rows, 1).
		Map("bad late row", schema, func(r Record) (storage.Row, error) {
			if r.Int("x") == 7 {
				return storage.Row{"not an int"}, nil
			}
			return storage.Row{r.Int("x")}, nil
		})
	ctx := context.Background()

	if _, err := testEngineWith(t, WithVectorizedExecution(false)).Collect(ctx, bad); err != nil {
		t.Errorf("lax row mode must not validate row 7: %v", err)
	}
	if _, err := testEngineWith(t, WithVectorizedExecution(false), WithStrictValidation(true)).Collect(ctx, bad); err == nil {
		t.Error("strict row mode must reject the mistyped row")
	} else if !strings.Contains(err.Error(), "map output") {
		t.Errorf("strict mode error = %v, want map output context", err)
	}
	if _, err := testEngine(t).Collect(ctx, bad); err == nil {
		t.Error("vectorized mode must reject the mistyped row")
	}

	// The first row of a partition is always validated, even lax.
	badFirst := FromRows("vals", schema, rows, 1).
		Map("bad first row", schema, func(r Record) (storage.Row, error) {
			return storage.Row{"nope"}, nil
		})
	if _, err := testEngineWith(t, WithVectorizedExecution(false)).Collect(ctx, badFirst); err == nil {
		t.Error("lax mode must still validate the first row per partition")
	} else if !strings.Contains(err.Error(), "expects int, got string") {
		t.Errorf("first-row validation error = %v, want the descriptive type mismatch", err)
	}
}

// TestVectorizedJoinMatchesRowJoin drives both join strategies through the
// batch path and compares against the row engine, including left-join null
// extension.
func TestVectorizedJoinMatchesRowJoin(t *testing.T) {
	facts := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "v", Type: storage.TypeFloat},
	)
	dims := storage.MustSchema(
		storage.Field{Name: "k", Type: storage.TypeInt},
		storage.Field{Name: "name", Type: storage.TypeString},
	)
	factRows := make([]storage.Row, 200)
	for i := range factRows {
		factRows[i] = storage.Row{int64(i % 20), float64(i)}
	}
	dimRows := make([]storage.Row, 8)
	for i := range dimRows {
		dimRows[i] = storage.Row{int64(i), "dim"}
	}
	for _, kind := range []JoinType{InnerJoin, LeftJoin} {
		for _, opts := range [][]EngineOption{
			nil,                        // broadcast (dims under threshold)
			{WithBroadcastJoin(false)}, // shuffled hash join
		} {
			plan := FromRows("facts", facts, factRows, 4).
				Join(FromRows("dims", dims, dimRows, 2), "k", "k", kind)
			vres := collect(t, testEngineWith(t, opts...), plan)
			rres := collect(t, testEngineWith(t, append([]EngineOption{WithVectorizedExecution(false)}, opts...)...), plan)
			if len(vres.Rows) != len(rres.Rows) {
				t.Fatalf("kind=%v opts=%d: vectorized %d rows, row %d rows", kind, len(opts), len(vres.Rows), len(rres.Rows))
			}
			for i := range vres.Rows {
				for c := range vres.Rows[i] {
					if !storage.ValuesEqual(vres.Rows[i][c], rres.Rows[i][c]) {
						t.Fatalf("kind=%v row %d col %d: %v != %v", kind, i, c, vres.Rows[i][c], rres.Rows[i][c])
					}
				}
			}
		}
	}
}

// TestCountSkipsMaterialization checks Count agrees with Collect without
// requiring row materialisation.
func TestCountSkipsMaterialization(t *testing.T) {
	e := testEngine(t)
	d := vectorChainPlan(t, 500, 4)
	res := collect(t, e, d)
	n, stats, err := e.CountStats(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(res.Rows)) {
		t.Errorf("Count = %d, Collect rows = %d", n, len(res.Rows))
	}
	if stats.Batches == 0 {
		t.Error("vectorized Count must report batch stats")
	}
}
