// Package runner executes a compiled campaign alternative on the simulated
// Big Data substrate: it builds the cluster described by the deployment plan,
// runs the preparation steps as dataflow transformations, dispatches the
// analytics step to the corresponding algorithm, and measures the standard
// indicators (accuracy, latency, cost, throughput, privacy, freshness) that
// the SLA engine evaluates and the Labs use for scoring.
//
// Where the paper's platform would submit the generated pipeline to Spark,
// the runner submits it to internal/dataflow + internal/cluster — the
// substitution documented in DESIGN.md.
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/deployment"
	"repro/internal/model"
	"repro/internal/procedural"
	"repro/internal/sla"
	"repro/internal/storage"
	"repro/internal/store"
)

// Errors returned by the runner.
var (
	ErrBadRun        = errors.New("runner: bad run request")
	ErrMissingParam  = errors.New("runner: analytics step is missing a parameter")
	ErrUnknownEngine = errors.New("runner: no implementation for analytics service")
)

// Runner executes alternatives against a data catalog.
type Runner struct {
	data             *storage.Catalog
	results          *store.Store
	seed             int64
	failureRate      float64
	memoryBudget     int64
	spillCompression bool
	spillDir         string
	engineClustering bool
}

// Option configures the runner.
type Option func(*Runner)

// WithSeed sets the seed used for cluster failure injection and train/test
// splits (default 1).
func WithSeed(seed int64) Option {
	return func(r *Runner) { r.seed = seed }
}

// WithFailureInjection enables transient task failures at the given rate.
func WithFailureInjection(rate float64) Option {
	return func(r *Runner) { r.failureRate = rate }
}

// WithMemoryBudget bounds the bytes of columnar batch data the dataflow
// engine keeps resident per wide-operator accumulation; batches past the
// budget spill to temp files (see dataflow.WithMemoryBudget). <= 0 disables
// spilling (the default).
func WithMemoryBudget(bytes int64) Option {
	return func(r *Runner) { r.memoryBudget = bytes }
}

// WithSpillCompression toggles the compressed spill frame codec on the
// dataflow engines the runner builds (default on; see
// dataflow.WithSpillCompression). Only observable when a memory budget makes
// wide operators spill.
func WithSpillCompression(enabled bool) Option {
	return func(r *Runner) { r.spillCompression = enabled }
}

// WithResultStore attaches a durable table store. After every successful run
// the prepared dataset is saved as the named table ResultTableName(campaign);
// later campaigns whose target table is absent from the catalog fall back to
// scanning the store, so a pipeline can consume a prior pipeline's output
// across process restarts instead of recomputing it.
func WithResultStore(st *store.Store) Option {
	return func(r *Runner) { r.results = st }
}

// WithSpillDir places the dataflow engine's spill temp files in dir instead
// of the system temp directory (see dataflow.WithSpillDir). "" keeps
// os.TempDir().
func WithSpillDir(dir string) Option {
	return func(r *Runner) { r.spillDir = dir }
}

// WithEngineClustering toggles running the clustering task on the dataflow
// engine's Iterate node (default on). Disabled, the runner falls back to the
// in-process hand-rolled KMeans — the ablation arm; on the same seed both
// arms produce identical assignments and centroids.
func WithEngineClustering(enabled bool) Option {
	return func(r *Runner) { r.engineClustering = enabled }
}

// New returns a runner bound to the data catalog.
func New(data *storage.Catalog, opts ...Option) (*Runner, error) {
	if data == nil {
		return nil, fmt.Errorf("%w: nil data catalog", ErrBadRun)
	}
	r := &Runner{data: data, seed: 1, spillCompression: true, engineClustering: true}
	for _, opt := range opts {
		opt(r)
	}
	return r, nil
}

// Report is the outcome of executing one alternative.
type Report struct {
	// Campaign and Alternative identify what ran.
	Campaign    string
	Alternative string
	Platform    deployment.Platform
	// Measured indicator values.
	Measured sla.Measurement
	// Evaluation of the measured values against the campaign objectives.
	Evaluation sla.Evaluation
	// Compliant mirrors the alternative's compliance outcome.
	Compliant bool
	// Details carries per-task diagnostics (model name, confusion matrix…).
	Details map[string]string
	// RowsProcessed is the number of rows that reached the analytics step.
	RowsProcessed int
	// EngineStats are the dataflow execution statistics.
	EngineStats dataflow.Stats
	// ClusterUsage is the resource/cost accounting of the run.
	ClusterUsage cluster.UsageReport
	// WallTime is the end-to-end execution time.
	WallTime time.Duration
}

// Run executes the alternative's pipeline for the campaign and measures it.
func (r *Runner) Run(ctx context.Context, campaign *model.Campaign, alt core.Alternative) (*Report, error) {
	if campaign == nil || alt.Composition == nil || alt.Plan == nil {
		return nil, fmt.Errorf("%w: campaign and alternative are required", ErrBadRun)
	}
	start := time.Now()

	clusterCfg := alt.Plan.ClusterConfig(r.seed, r.failureRate)
	cl, err := cluster.New(clusterCfg)
	if err != nil {
		return nil, fmt.Errorf("runner: build cluster: %w", err)
	}
	engine, err := dataflow.NewEngine(cl,
		dataflow.WithShufflePartitions(alt.Plan.Parallelism),
		dataflow.WithMemoryBudget(r.memoryBudget),
		dataflow.WithSpillCompression(r.spillCompression),
		dataflow.WithSpillDir(r.spillDir))
	if err != nil {
		return nil, fmt.Errorf("runner: build engine: %w", err)
	}

	table, err := r.lookupTable(campaign.Goal.TargetTable)
	if err != nil {
		return nil, fmt.Errorf("runner: %w", err)
	}

	dataset, prepDetails, err := r.applyPreparation(campaign, alt.Composition, table)
	if err != nil {
		return nil, err
	}

	step, ok := alt.Composition.AnalyticsStep()
	if !ok {
		return nil, fmt.Errorf("%w: composition has no analytics step", ErrBadRun)
	}
	prepared, err := engine.Collect(ctx, dataset)
	if err != nil {
		return nil, fmt.Errorf("runner: prepare data: %w", err)
	}

	accuracy, taskDetails, err := r.runAnalytics(ctx, engine, campaign, step, prepared)
	if err != nil {
		return nil, err
	}

	wall := time.Since(start)
	usage := cl.Usage()
	rows := len(prepared.Rows)

	// The report's engine stats describe the preparation collect, except the
	// spill counters, which fold in every Collect the run issued (analytics
	// stages re-enter the engine): a budgeted campaign's spill activity is a
	// whole-run fact, not a preparation-stage one.
	engineStats := prepared.Stats
	snap := engine.Metrics().Snapshot()
	engineStats.SpilledBatches = snap.CounterValue("spill.batches")
	engineStats.SpilledBytes = snap.CounterValue("spill.bytes")
	engineStats.SpillLogicalBytes = snap.CounterValue("spill.bytes.logical")

	measured := sla.Measurement{
		model.IndicatorAccuracy: accuracy,
		model.IndicatorLatency:  float64(wall.Milliseconds()),
		model.IndicatorCost:     measuredCost(alt.Composition, usage, rows),
		model.IndicatorPrivacy:  alt.Compliance.PrivacyScore,
	}
	if wall > 0 {
		measured[model.IndicatorThroughput] = float64(prepared.Stats.RowsRead) / wall.Seconds()
	}
	measured[model.IndicatorFreshness] = freshnessSeconds(alt.Plan.Platform, wall)

	details := map[string]string{}
	for k, v := range prepDetails {
		details[k] = v
	}
	for k, v := range taskDetails {
		details[k] = v
	}
	if r.results != nil {
		name := ResultTableName(campaign.Name)
		if err := r.results.SaveRows(name, prepared.Schema, prepared.Rows); err != nil {
			return nil, fmt.Errorf("runner: save result table %q: %w", name, err)
		}
		details["store.table"] = name
	}

	return &Report{
		Campaign:      campaign.Name,
		Alternative:   alt.Fingerprint(),
		Platform:      alt.Plan.Platform,
		Measured:      measured,
		Evaluation:    sla.Evaluate(campaign.Objectives, measured),
		Compliant:     alt.Compliant(),
		Details:       details,
		RowsProcessed: rows,
		EngineStats:   engineStats,
		ClusterUsage:  usage,
		WallTime:      wall,
	}, nil
}

// ExplainPlan compiles the alternative's pipeline and renders the physical
// plans the dataflow engine would execute — fused stages, shuffle boundaries,
// combine decisions, and the wide-operator strategies (range vs single-task
// sort, broadcast vs shuffled join, map-side dedup) — without running
// anything. For analytics tasks that execute on the engine (association,
// forecasting, reporting) a second section explains the analytics-stage plan.
func (r *Runner) ExplainPlan(campaign *model.Campaign, alt core.Alternative) (string, error) {
	if campaign == nil || alt.Composition == nil || alt.Plan == nil {
		return "", fmt.Errorf("%w: campaign and alternative are required", ErrBadRun)
	}
	cl, err := cluster.New(alt.Plan.ClusterConfig(r.seed, r.failureRate))
	if err != nil {
		return "", fmt.Errorf("runner: build cluster: %w", err)
	}
	engine, err := dataflow.NewEngine(cl,
		dataflow.WithShufflePartitions(alt.Plan.Parallelism),
		dataflow.WithMemoryBudget(r.memoryBudget),
		dataflow.WithSpillCompression(r.spillCompression),
		dataflow.WithSpillDir(r.spillDir))
	if err != nil {
		return "", fmt.Errorf("runner: build engine: %w", err)
	}
	table, err := r.lookupTable(campaign.Goal.TargetTable)
	if err != nil {
		return "", fmt.Errorf("runner: %w", err)
	}
	dataset, _, err := r.applyPreparation(campaign, alt.Composition, table)
	if err != nil {
		return "", err
	}
	out := "preparation stage:\n" + engine.Explain(dataset)
	// The analytics plan is chained onto the preparation plan (rather than
	// onto an empty placeholder source) so the explainer sees the real input
	// cardinality and predicts the same sort/join strategies the engine will
	// pick when it executes over the prepared rows.
	if plan, ok := r.analyticsPlan(campaign, dataset); ok {
		out += "\nanalytics stage (" + string(campaign.Goal.Task) + "):\n" + engine.Explain(plan)
	}
	return out, nil
}

// ResultTableName is the durable-store table name under which a campaign's
// prepared dataset is saved when a result store is attached.
func ResultTableName(campaign string) string {
	return "results/" + campaign
}

// lookupTable resolves a target table: the in-memory catalog first, then the
// durable result store (tables saved by earlier campaigns, possibly in a
// previous process). The catalog's error is preserved when neither has it.
func (r *Runner) lookupTable(name string) (*storage.Table, error) {
	table, err := r.data.Lookup(name)
	if err == nil {
		return table, nil
	}
	if r.results != nil && r.results.Has(name) {
		return r.results.ReadTable(name)
	}
	return nil, err
}

// analyticsPartitions is the partition count the runner uses when feeding
// prepared rows back into the engine for the analytics stage.
const analyticsPartitions = 4

// analyticsPlan builds the logical dataflow plan of the analytics stage for
// the tasks that execute on the engine: association (group-by), forecasting
// (sort), reporting (group-by) and clustering (iterate). ok is false for
// tasks whose analytics run outside the engine or whose required goal columns
// are missing. Sharing the builder between execution and ExplainPlan keeps
// the explained plan identical to the executed one.
func (r *Runner) analyticsPlan(campaign *model.Campaign, src *dataflow.Dataset) (*dataflow.Dataset, bool) {
	g := campaign.Goal
	switch g.Task {
	case model.TaskClustering:
		if !r.engineClustering || len(g.FeatureColumns) == 0 {
			return nil, false
		}
		// Unlike the other tasks, the clustering plan is not chained onto the
		// preparation plan: the engine fit seeds its loop state host-side from
		// the extracted feature matrix. A placeholder matrix of the right
		// width renders the same iterate plan (body and all) the fit executes.
		placeholder := make(analytics.Matrix, 2)
		for i := range placeholder {
			placeholder[i] = make([]float64, len(g.FeatureColumns))
		}
		plan, err := (&analytics.EngineKMeans{K: 2, Seed: r.seed}).Plan(placeholder)
		if err != nil {
			return nil, false
		}
		return plan, true
	case model.TaskAssociation:
		if g.ItemColumn == "" || g.TransactionColumn == "" {
			return nil, false
		}
		return src.GroupBy(g.TransactionColumn).Agg(dataflow.CountDistinct(g.ItemColumn)), true
	case model.TaskForecasting:
		if g.ValueColumn == "" {
			return nil, false
		}
		ordered := src
		if g.TimeColumn != "" {
			ordered = src.Sort(dataflow.SortOrder{Column: g.TimeColumn})
		}
		return ordered.Project(g.ValueColumn), true
	case model.TaskReporting:
		if len(g.GroupColumns) == 0 || g.ValueColumn == "" {
			return nil, false
		}
		return src.GroupBy(g.GroupColumns...).Agg(
			dataflow.Count(),
			dataflow.Sum(g.ValueColumn),
			dataflow.Avg(g.ValueColumn),
		), true
	}
	return nil, false
}

// measuredCost combines infrastructure usage cost with the per-record service
// pricing of the composed services for the rows that were actually processed.
func measuredCost(comp *procedural.Composition, usage cluster.UsageReport, rows int) float64 {
	return usage.TotalCost + comp.EstimateCost(rows)
}

// freshnessSeconds converts wall time into the freshness indicator: batch
// pipelines deliver results only after the full run, streaming pipelines
// amortise the work across micro-batches.
func freshnessSeconds(platform deployment.Platform, wall time.Duration) float64 {
	switch platform {
	case deployment.PlatformStreaming:
		return 1.0 + wall.Seconds()/100
	default:
		return wall.Seconds()
	}
}

// ---------------------------------------------------------------------------
// Preparation
// ---------------------------------------------------------------------------

// applyPreparation builds the dataflow plan implementing the composition's
// preparation steps over the target table.
func (r *Runner) applyPreparation(campaign *model.Campaign, comp *procedural.Composition, table *storage.Table) (*dataflow.Dataset, map[string]string, error) {
	details := map[string]string{}
	d := dataflow.FromTable(table)

	// Columns that must be non-null for the analytics step to work.
	required := requiredColumns(campaign)
	schema := table.Schema()
	for _, col := range required {
		if !schema.Has(col) {
			return nil, nil, fmt.Errorf("%w: column %q not in table %q", ErrBadRun, col, table.Name())
		}
	}

	for _, step := range comp.StepsByArea(model.AreaPreparation) {
		switch step.Service.Capability {
		case "clean_missing":
			cols := append([]string(nil), required...)
			d = d.Filter("drop rows with missing required values", func(rec dataflow.Record) (bool, error) {
				for _, c := range cols {
					if rec.IsNull(c) {
						return false, nil
					}
				}
				return true, nil
			})
			details["preparation.clean"] = "drop-null on " + strings.Join(cols, ",")
		case "pseudonymize":
			d = maskSensitiveColumns(d, schema, pseudonymize)
			details["preparation.privacy"] = "pseudonymized " + strings.Join(sensitiveColumns(schema), ",")
		case "anonymize_strict":
			d = maskSensitiveColumns(d, schema, func(string) string { return "***" })
			details["preparation.privacy"] = "masked " + strings.Join(sensitiveColumns(schema), ",")
		case "normalize_features":
			details["preparation.normalize"] = "features standardised before model fitting"
		default:
			// Unknown preparation capabilities are treated as pass-through.
			details["preparation."+step.Service.Capability] = "pass-through"
		}
	}
	return d, details, nil
}

// requiredColumns lists the goal columns whose values must be present.
func requiredColumns(campaign *model.Campaign) []string {
	seen := map[string]bool{}
	var out []string
	add := func(cols ...string) {
		for _, c := range cols {
			if c != "" && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	add(campaign.Goal.FeatureColumns...)
	add(campaign.Goal.LabelColumn, campaign.Goal.ValueColumn, campaign.Goal.TimeColumn,
		campaign.Goal.ItemColumn, campaign.Goal.TransactionColumn)
	add(campaign.Goal.GroupColumns...)
	return out
}

// sensitiveColumns returns the string-typed personal/sensitive columns.
func sensitiveColumns(schema *storage.Schema) []string {
	var out []string
	for _, f := range schema.Fields() {
		if f.Sensitivity >= storage.Personal && f.Type == storage.TypeString {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// pseudonymize replaces a value with a stable opaque token.
func pseudonymize(v string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(v))
	return fmt.Sprintf("pseu-%016x", h.Sum64())
}

// maskSensitiveColumns rewrites the sensitive string columns of the dataset
// using fn.
func maskSensitiveColumns(d *dataflow.Dataset, schema *storage.Schema, fn func(string) string) *dataflow.Dataset {
	cols := sensitiveColumns(schema)
	if len(cols) == 0 {
		return d
	}
	indices := make([]int, len(cols))
	for i, c := range cols {
		indices[i] = schema.IndexOf(c)
	}
	return d.Map("mask sensitive columns", schema, func(rec dataflow.Record) (storage.Row, error) {
		row := rec.Row().Clone()
		for _, idx := range indices {
			if row[idx] == nil {
				continue
			}
			row[idx] = fn(storage.AsString(row[idx]))
		}
		return row, nil
	})
}

// ---------------------------------------------------------------------------
// Analytics dispatch
// ---------------------------------------------------------------------------

// runAnalytics executes the analytics step over the prepared data and returns
// the measured accuracy indicator plus diagnostics.
func (r *Runner) runAnalytics(ctx context.Context, engine *dataflow.Engine, campaign *model.Campaign,
	step procedural.Step, prepared *dataflow.Result) (float64, map[string]string, error) {

	details := map[string]string{"analytics.service": step.Service.ID}
	if len(prepared.Rows) == 0 {
		return 0, details, fmt.Errorf("%w: no rows survived preparation", ErrBadRun)
	}
	switch step.Service.Task {
	case model.TaskClassification:
		return r.runClassification(campaign, step, prepared, details)
	case model.TaskClustering:
		return r.runClustering(ctx, engine, campaign, step, prepared, details)
	case model.TaskAssociation:
		return r.runAssociation(ctx, engine, campaign, prepared, details)
	case model.TaskAnomaly:
		return r.runAnomaly(campaign, step, prepared, details)
	case model.TaskForecasting:
		return r.runForecasting(ctx, engine, campaign, step, prepared, details)
	case model.TaskSessionization:
		return r.runSessionization(campaign, prepared, details)
	case model.TaskReporting:
		return r.runReporting(ctx, engine, campaign, prepared, details)
	default:
		return 0, details, fmt.Errorf("%w: %q", ErrUnknownEngine, step.Service.ID)
	}
}

func (r *Runner) runClassification(campaign *model.Campaign, step procedural.Step,
	prepared *dataflow.Result, details map[string]string) (float64, map[string]string, error) {

	if campaign.Goal.LabelColumn == "" || len(campaign.Goal.FeatureColumns) == 0 {
		return 0, details, fmt.Errorf("%w: classification needs label and features", ErrMissingParam)
	}
	fs, err := analytics.ExtractFeatures(prepared, campaign.Goal.FeatureColumns, campaign.Goal.LabelColumn)
	if err != nil {
		return 0, details, fmt.Errorf("runner: extract features: %w", err)
	}
	train, test, err := fs.Split(0.3, r.seed)
	if err != nil {
		return 0, details, fmt.Errorf("runner: split: %w", err)
	}
	var clf analytics.Classifier
	switch step.Service.ID {
	case "classify-logreg":
		clf = &analytics.LogisticRegression{}
	case "classify-nbayes":
		clf = &analytics.NaiveBayes{}
	case "classify-stump":
		clf = &analytics.DecisionStump{}
	case "classify-majority":
		clf = &analytics.MajorityClassifier{}
	default:
		return 0, details, fmt.Errorf("%w: %q", ErrUnknownEngine, step.Service.ID)
	}
	cm, err := analytics.Evaluate(clf, train, test)
	if err != nil {
		return 0, details, fmt.Errorf("runner: evaluate %s: %w", clf.Name(), err)
	}
	details["classification.model"] = clf.Name()
	details["classification.confusion"] = fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d", cm.TP, cm.FP, cm.TN, cm.FN)
	details["classification.f1"] = fmt.Sprintf("%.3f", cm.F1())
	return cm.Accuracy(), details, nil
}

func (r *Runner) runClustering(ctx context.Context, engine *dataflow.Engine, campaign *model.Campaign,
	step procedural.Step, prepared *dataflow.Result, details map[string]string) (float64, map[string]string, error) {

	fs, err := analytics.ExtractFeatures(prepared, campaign.Goal.FeatureColumns, "")
	if err != nil {
		return 0, details, fmt.Errorf("runner: extract features: %w", err)
	}
	k := 3
	if v, ok := step.Params["k"]; ok {
		if parsed, perr := parsePositiveInt(v); perr == nil {
			k = parsed
		}
	}
	if k > len(fs.X) {
		k = len(fs.X)
	}
	var inertiaK float64
	if r.engineClustering {
		// The engine arm runs every Lloyd pass as an Iterate plan on the
		// dataflow engine; on the same seed it reproduces the hand-rolled
		// fit bit for bit, so the quality indicator is unchanged.
		em := &analytics.EngineKMeans{K: k, Seed: r.seed}
		res, err := em.Fit(ctx, engine, fs.X)
		if err != nil {
			return 0, details, fmt.Errorf("runner: engine kmeans: %w", err)
		}
		inertiaK = res.Inertia(fs.X)
		details["clustering.engine"] = "iterate"
		details["clustering.iterations"] = fmt.Sprintf("%d", res.Stats.IterateIterations)
		details["clustering.converged"] = fmt.Sprintf("%t", res.Stats.IterateConverged)
	} else {
		km := &analytics.KMeans{K: k, Seed: r.seed}
		if err := km.Fit(fs.X); err != nil {
			return 0, details, fmt.Errorf("runner: kmeans: %w", err)
		}
		details["clustering.engine"] = "local"
		if inertiaK, err = km.Inertia(fs.X); err != nil {
			return 0, details, err
		}
	}
	single := &analytics.KMeans{K: 1, Seed: r.seed}
	if err := single.Fit(fs.X); err != nil {
		return 0, details, err
	}
	inertia1, err := single.Inertia(fs.X)
	if err != nil {
		return 0, details, err
	}
	quality := 0.0
	if inertia1 > 0 {
		quality = 1 - inertiaK/inertia1
	}
	if quality < 0 {
		quality = 0
	}
	details["clustering.k"] = fmt.Sprintf("%d", k)
	details["clustering.inertia"] = fmt.Sprintf("%.2f", inertiaK)
	return quality, details, nil
}

func (r *Runner) runAssociation(ctx context.Context, engine *dataflow.Engine, campaign *model.Campaign,
	prepared *dataflow.Result, details map[string]string) (float64, map[string]string, error) {

	itemCol, txCol := campaign.Goal.ItemColumn, campaign.Goal.TransactionColumn
	if itemCol == "" || txCol == "" {
		return 0, details, fmt.Errorf("%w: association needs item and transaction columns", ErrMissingParam)
	}
	// Rebuild transactions with a dataflow group-by so the shuffle path is
	// exercised, then mine rules locally.
	src := dataflow.FromRows(campaign.Goal.TargetTable, prepared.Schema, prepared.Rows, analyticsPartitions)
	plan, ok := r.analyticsPlan(campaign, src)
	if !ok {
		return 0, details, fmt.Errorf("%w: association plan", ErrMissingParam)
	}
	grouped, err := engine.Collect(ctx, plan)
	if err != nil {
		return 0, details, fmt.Errorf("runner: group transactions: %w", err)
	}
	transactions := map[string][]string{}
	txIdx := prepared.Schema.IndexOf(txCol)
	itemIdx := prepared.Schema.IndexOf(itemCol)
	for _, row := range prepared.Rows {
		key := storage.AsString(row[txIdx])
		transactions[key] = append(transactions[key], storage.AsString(row[itemIdx]))
	}
	var txList [][]string
	for _, items := range transactions {
		txList = append(txList, items)
	}
	apriori := &analytics.Apriori{MinSupport: 0.05, MinConfidence: 0.4}
	itemsets, rules, err := apriori.Mine(txList)
	if err != nil {
		return 0, details, fmt.Errorf("runner: apriori: %w", err)
	}
	details["association.itemsets"] = fmt.Sprintf("%d", len(itemsets))
	details["association.rules"] = fmt.Sprintf("%d", len(rules))
	details["association.baskets"] = fmt.Sprintf("%d", len(grouped.Rows))
	if len(rules) == 0 {
		return 0, details, nil
	}
	// Quality: mean confidence of the top-10 rules.
	top := rules
	if len(top) > 10 {
		top = top[:10]
	}
	sum := 0.0
	for _, rule := range top {
		sum += rule.Confidence
	}
	return sum / float64(len(top)), details, nil
}

func (r *Runner) runAnomaly(campaign *model.Campaign, step procedural.Step,
	prepared *dataflow.Result, details map[string]string) (float64, map[string]string, error) {

	if campaign.Goal.ValueColumn == "" {
		return 0, details, fmt.Errorf("%w: anomaly detection needs a value column", ErrMissingParam)
	}
	var values []float64
	var labels []bool
	hasLabels := campaign.Goal.LabelColumn != "" && prepared.Schema.Has(campaign.Goal.LabelColumn)
	for _, rec := range recordsOf(prepared) {
		values = append(values, rec.Float(campaign.Goal.ValueColumn))
		if hasLabels {
			labels = append(labels, rec.Bool(campaign.Goal.LabelColumn))
		}
	}
	var detector analytics.AnomalyDetector
	switch step.Service.ID {
	case "detect-zscore":
		detector = &analytics.ZScoreDetector{}
	case "detect-iqr":
		detector = &analytics.IQRDetector{}
	default:
		return 0, details, fmt.Errorf("%w: %q", ErrUnknownEngine, step.Service.ID)
	}
	var labelArg []bool
	if hasLabels {
		labelArg = labels
	}
	flagged, cm, err := analytics.DetectAnomalies(detector, values, labelArg)
	if err != nil {
		return 0, details, fmt.Errorf("runner: detect anomalies: %w", err)
	}
	details["anomaly.detector"] = detector.Name()
	details["anomaly.flagged"] = fmt.Sprintf("%d", len(flagged))
	if !hasLabels {
		// Without ground truth, report the flagged fraction as a diagnostic
		// and fall back to the catalog quality figure.
		return step.Service.Quality, details, nil
	}
	details["anomaly.f1"] = fmt.Sprintf("%.3f", cm.F1())
	return cm.F1(), details, nil
}

func (r *Runner) runForecasting(ctx context.Context, engine *dataflow.Engine, campaign *model.Campaign,
	step procedural.Step, prepared *dataflow.Result, details map[string]string) (float64, map[string]string, error) {

	if campaign.Goal.ValueColumn == "" {
		return 0, details, fmt.Errorf("%w: forecasting needs a value column", ErrMissingParam)
	}
	src := dataflow.FromRows(campaign.Goal.TargetTable, prepared.Schema, prepared.Rows, analyticsPartitions)
	plan, ok := r.analyticsPlan(campaign, src)
	if !ok {
		return 0, details, fmt.Errorf("%w: forecasting plan", ErrMissingParam)
	}
	res, err := engine.Collect(ctx, plan)
	if err != nil {
		return 0, details, fmt.Errorf("runner: order series: %w", err)
	}
	series := make([]float64, 0, len(res.Rows))
	for _, row := range res.Rows {
		v, _ := storage.AsFloat(row[0])
		series = append(series, v)
	}
	var forecaster analytics.Forecaster
	switch step.Service.ID {
	case "forecast-holtwinters":
		forecaster = &analytics.HoltWinters{Period: 24}
	case "forecast-moving-average":
		forecaster = &analytics.MovingAverageForecaster{Window: 24}
	default:
		return 0, details, fmt.Errorf("%w: %q", ErrUnknownEngine, step.Service.ID)
	}
	horizon := 24
	if horizon >= len(series) {
		horizon = len(series) / 4
	}
	if horizon < 1 {
		return 0, details, fmt.Errorf("%w: series too short for forecasting", ErrBadRun)
	}
	rmse, err := analytics.BacktestForecaster(forecaster, series, horizon)
	if err != nil {
		return 0, details, fmt.Errorf("runner: backtest: %w", err)
	}
	details["forecast.model"] = forecaster.Name()
	details["forecast.rmse"] = fmt.Sprintf("%.4f", rmse)
	// Accuracy indicator: map RMSE into (0,1], higher is better.
	return 1 / (1 + rmse), details, nil
}

func (r *Runner) runSessionization(campaign *model.Campaign, prepared *dataflow.Result,
	details map[string]string) (float64, map[string]string, error) {

	if campaign.Goal.TimeColumn == "" {
		return 0, details, fmt.Errorf("%w: sessionization needs a time column", ErrMissingParam)
	}
	userCol := "user_id"
	if !prepared.Schema.Has(userCol) {
		return 0, details, fmt.Errorf("%w: sessionization expects a user_id column", ErrBadRun)
	}
	var events []analytics.Event
	for _, rec := range recordsOf(prepared) {
		ts, _ := storage.AsTime(rec.Value(campaign.Goal.TimeColumn))
		events = append(events, analytics.Event{
			UserID:    rec.Int(userCol),
			URL:       rec.String("url"),
			At:        ts,
			Converted: campaign.Goal.LabelColumn != "" && rec.Bool(campaign.Goal.LabelColumn),
		})
	}
	sessionizer := &analytics.Sessionizer{Timeout: 30 * time.Minute}
	sessions, err := sessionizer.Sessionize(events)
	if err != nil {
		return 0, details, fmt.Errorf("runner: sessionize: %w", err)
	}
	rate := analytics.ConversionRate(sessions)
	details["sessionization.sessions"] = fmt.Sprintf("%d", len(sessions))
	details["sessionization.conversion_rate"] = fmt.Sprintf("%.3f", rate)
	// Quality: coverage of events by sessions (always 1 with this algorithm)
	// scaled by a sanity factor that sessions are non-degenerate (more events
	// than sessions).
	if len(sessions) == 0 || len(events) == 0 {
		return 0, details, nil
	}
	quality := 1.0 - float64(len(sessions))/float64(len(events))
	if quality < 0 {
		quality = 0
	}
	return quality, details, nil
}

func (r *Runner) runReporting(ctx context.Context, engine *dataflow.Engine, campaign *model.Campaign,
	prepared *dataflow.Result, details map[string]string) (float64, map[string]string, error) {

	if len(campaign.Goal.GroupColumns) == 0 || campaign.Goal.ValueColumn == "" {
		return 0, details, fmt.Errorf("%w: reporting needs group and value columns", ErrMissingParam)
	}
	src := dataflow.FromRows(campaign.Goal.TargetTable, prepared.Schema, prepared.Rows, analyticsPartitions)
	plan, ok := r.analyticsPlan(campaign, src)
	if !ok {
		return 0, details, fmt.Errorf("%w: reporting plan", ErrMissingParam)
	}
	report, err := engine.Collect(ctx, plan)
	if err != nil {
		return 0, details, fmt.Errorf("runner: aggregate report: %w", err)
	}
	details["reporting.groups"] = fmt.Sprintf("%d", len(report.Rows))
	if len(report.Rows) == 0 {
		return 0, details, nil
	}
	// Aggregation is exact; the quality indicator reflects completeness.
	return 1.0, details, nil
}

// recordsOf wraps the prepared result rows as records.
func recordsOf(res *dataflow.Result) []dataflow.Record {
	return (&dataflow.Result{Schema: res.Schema, Rows: res.Rows}).Records()
}

func parsePositiveInt(s string) (int, error) {
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("runner: not a positive integer: %q", s)
		}
		n = n*10 + int(ch-'0')
	}
	if n <= 0 {
		return 0, fmt.Errorf("runner: not a positive integer: %q", s)
	}
	return n, nil
}
