package runner

// cancel_test.go covers runner behaviour under deadlines: a budgeted campaign
// cut off by a context deadline mid-run must surface a canceled-class error
// and release every spill temp file the dataflow engine opened.

import (
	"context"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/workload"
)

func tempSpillFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "toreador-") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestCancelBudgetedCampaignReleasesSpill(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	// A forecasting campaign over a meter corpus large enough that the
	// analytics-stage sort must stage its batches through spill stores under a
	// 1-byte budget.
	data := storage.NewCatalog()
	gen := workload.NewGenerator(17)
	sc, err := gen.Generate(workload.VerticalEnergy, workload.Sizing{Meters: 40, Days: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Register(data); err != nil {
		t.Fatal(err)
	}
	compiler, err := core.NewCompiler(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(data, WithMemoryBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	campaign := &model.Campaign{
		Name:     "load-forecast",
		Vertical: "energy",
		Goal: model.Goal{
			Task:        model.TaskForecasting,
			TargetTable: "meter_readings",
			ValueColumn: "kwh",
			TimeColumn:  "read_at",
		},
		Sources: []model.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	result, err := compiler.Compile(campaign)
	if err != nil {
		t.Fatal(err)
	}

	// Uncancelled budgeted run: proves this campaign exercises the spill path
	// and calibrates a deadline that lands mid-run.
	base := runtime.NumGoroutine()
	start := time.Now()
	report, err := r.Run(context.Background(), campaign, result.Chosen)
	if err != nil {
		t.Fatalf("budgeted run: %v", err)
	}
	wall := time.Since(start)
	if report.EngineStats.SpilledBatches == 0 {
		t.Fatal("budgeted campaign must spill for the cancellation test to bite")
	}
	if left := tempSpillFiles(t, tmp); len(left) != 0 {
		t.Fatalf("completed budgeted campaign left spill files: %v", left)
	}

	// Re-run with a deadline that expires mid-run. If the machine outruns even
	// the short deadline the run may legitimately complete; the lifecycle
	// invariants below must hold either way.
	deadline := wall / 4
	if deadline < time.Millisecond {
		deadline = time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	_, err = r.Run(ctx, campaign, result.Chosen)
	if err == nil {
		t.Logf("run beat the %v deadline; lifecycle checks still apply", deadline)
	} else if !cluster.Canceled(err) {
		t.Errorf("deadline-cut run classified %s, want canceled: %v", cluster.Classify(err), err)
	}

	settle := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(settle) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines did not settle after cancelled campaign: %d > %d", n, base)
	}
	if left := tempSpillFiles(t, tmp); len(left) != 0 {
		t.Errorf("cancelled budgeted campaign leaked spill files: %v", left)
	}
}
