package runner

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sla"
	"repro/internal/storage"
	"repro/internal/workload"
)

// environment bundles the data catalog and compiler shared by runner tests.
type environment struct {
	data     *storage.Catalog
	compiler *core.Compiler
	runner   *Runner
}

func newEnvironment(t *testing.T, verticals ...workload.Vertical) *environment {
	t.Helper()
	data := storage.NewCatalog()
	gen := workload.NewGenerator(17)
	sz := workload.Sizing{Customers: 400, Meters: 3, Days: 3, Users: 60}
	for _, v := range verticals {
		sc, err := gen.Generate(v, sz)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Register(data); err != nil {
			t.Fatal(err)
		}
	}
	compiler, err := core.NewCompiler(data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(data)
	if err != nil {
		t.Fatal(err)
	}
	return &environment{data: data, compiler: compiler, runner: r}
}

func (e *environment) compileAndRun(t *testing.T, campaign *model.Campaign) *Report {
	t.Helper()
	result, err := e.compiler.Compile(campaign)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	report, err := e.runner.Run(context.Background(), campaign, result.Chosen)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return report
}

func churnCampaign() *model.Campaign {
	return &model.Campaign{
		Name:     "churn",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "support_calls", "dropped_calls", "monthly_charge"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []model.Objective{
			{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.6, Hard: true},
		},
		Regime: model.RegimePseudonymize,
	}
}

func TestNewRequiresCatalog(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrBadRun) {
		t.Errorf("err = %v, want ErrBadRun", err)
	}
}

func TestRunValidation(t *testing.T) {
	env := newEnvironment(t, workload.VerticalTelco)
	if _, err := env.runner.Run(context.Background(), nil, core.Alternative{}); !errors.Is(err, ErrBadRun) {
		t.Errorf("err = %v, want ErrBadRun", err)
	}
}

func TestRunClassificationCampaign(t *testing.T) {
	env := newEnvironment(t, workload.VerticalTelco)
	report := env.compileAndRun(t, churnCampaign())

	acc, ok := report.Measured.Get(model.IndicatorAccuracy)
	if !ok || acc < 0.6 {
		t.Errorf("measured accuracy = %v, want a trained classifier beating 0.6", acc)
	}
	if cost, ok := report.Measured.Get(model.IndicatorCost); !ok || cost <= 0 {
		t.Errorf("measured cost = %v, want > 0", cost)
	}
	if lat, ok := report.Measured.Get(model.IndicatorLatency); !ok || lat < 0 {
		t.Errorf("measured latency = %v", lat)
	}
	if thr, ok := report.Measured.Get(model.IndicatorThroughput); !ok || thr <= 0 {
		t.Errorf("measured throughput = %v, want > 0", thr)
	}
	if !report.Evaluation.Feasible {
		t.Errorf("hard accuracy objective not met:\n%s", report.Evaluation.Summary())
	}
	if !report.Compliant {
		t.Error("chosen alternative must be compliant")
	}
	if report.RowsProcessed == 0 || report.EngineStats.RowsRead == 0 {
		t.Error("engine stats must reflect processed rows")
	}
	if report.Details["classification.model"] == "" || report.Details["preparation.privacy"] == "" {
		t.Errorf("details missing: %v", report.Details)
	}
	if report.ClusterUsage.TasksRun == 0 {
		t.Error("cluster usage must record executed tasks")
	}
}

func TestRunAnomalyCampaignOnPayments(t *testing.T) {
	env := newEnvironment(t, workload.VerticalFinance)
	campaign := &model.Campaign{
		Name:     "fraud",
		Vertical: "finance",
		Goal: model.Goal{
			Task:        model.TaskAnomaly,
			TargetTable: "payments",
			ValueColumn: "amount",
			LabelColumn: "fraud",
		},
		Sources: []model.DataSource{{Table: "payments", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	report := env.compileAndRun(t, campaign)
	f1, _ := report.Measured.Get(model.IndicatorAccuracy)
	if f1 <= 0.1 {
		t.Errorf("fraud detection F1 = %v, expected meaningful signal on skewed amounts", f1)
	}
	if report.Details["anomaly.detector"] == "" {
		t.Errorf("details = %v", report.Details)
	}
}

func TestRunReportingCampaign(t *testing.T) {
	env := newEnvironment(t, workload.VerticalRetail)
	campaign := &model.Campaign{
		Name:     "revenue-report",
		Vertical: "retail",
		Goal: model.Goal{
			Task:         model.TaskReporting,
			TargetTable:  "retail_baskets",
			ValueColumn:  "unit_price",
			GroupColumns: []string{"category"},
		},
		Sources: []model.DataSource{{Table: "retail_baskets"}},
		Regime:  model.RegimeNone,
	}
	report := env.compileAndRun(t, campaign)
	if acc, _ := report.Measured.Get(model.IndicatorAccuracy); acc != 1.0 {
		t.Errorf("reporting quality = %v, want 1.0 (exact aggregation)", acc)
	}
	if report.Details["reporting.groups"] == "0" || report.Details["reporting.groups"] == "" {
		t.Errorf("reporting groups = %q", report.Details["reporting.groups"])
	}
}

func TestRunAssociationCampaign(t *testing.T) {
	env := newEnvironment(t, workload.VerticalRetail)
	campaign := &model.Campaign{
		Name:     "basket-analysis",
		Vertical: "retail",
		Goal: model.Goal{
			Task:              model.TaskAssociation,
			TargetTable:       "retail_baskets",
			ItemColumn:        "product",
			TransactionColumn: "basket_id",
		},
		Sources: []model.DataSource{{Table: "retail_baskets"}},
		Regime:  model.RegimeNone,
	}
	report := env.compileAndRun(t, campaign)
	if conf, _ := report.Measured.Get(model.IndicatorAccuracy); conf <= 0.3 {
		t.Errorf("rule confidence = %v, expected the affinity structure to surface", conf)
	}
	if report.Details["association.rules"] == "" || report.Details["association.rules"] == "0" {
		t.Errorf("association details = %v", report.Details)
	}
}

func TestRunForecastingCampaign(t *testing.T) {
	env := newEnvironment(t, workload.VerticalEnergy)
	campaign := &model.Campaign{
		Name:     "load-forecast",
		Vertical: "energy",
		Goal: model.Goal{
			Task:        model.TaskForecasting,
			TargetTable: "meter_readings",
			ValueColumn: "kwh",
			TimeColumn:  "read_at",
		},
		Sources: []model.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	report := env.compileAndRun(t, campaign)
	if acc, _ := report.Measured.Get(model.IndicatorAccuracy); acc <= 0 || acc > 1 {
		t.Errorf("forecast accuracy indicator = %v, want (0,1]", acc)
	}
	if report.Details["forecast.model"] == "" || report.Details["forecast.rmse"] == "" {
		t.Errorf("forecast details = %v", report.Details)
	}
}

func TestRunSessionizationCampaign(t *testing.T) {
	env := newEnvironment(t, workload.VerticalWeb)
	campaign := &model.Campaign{
		Name:     "funnel",
		Vertical: "web",
		Goal: model.Goal{
			Task:        model.TaskSessionization,
			TargetTable: "clickstream",
			TimeColumn:  "occurred_at",
			LabelColumn: "converted",
		},
		Sources: []model.DataSource{{Table: "clickstream", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	report := env.compileAndRun(t, campaign)
	if report.Details["sessionization.sessions"] == "" || report.Details["sessionization.sessions"] == "0" {
		t.Errorf("sessionization details = %v", report.Details)
	}
	if acc, _ := report.Measured.Get(model.IndicatorAccuracy); acc <= 0 {
		t.Errorf("sessionization quality = %v, want > 0", acc)
	}
}

func TestRunClusteringCampaign(t *testing.T) {
	env := newEnvironment(t, workload.VerticalTelco)
	campaign := &model.Campaign{
		Name:     "segments",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClustering,
			TargetTable:    "telco_customers",
			FeatureColumns: []string{"monthly_charge", "data_usage_gb", "tenure_months"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Regime:  model.RegimePseudonymize,
	}
	report := env.compileAndRun(t, campaign)
	if q, _ := report.Measured.Get(model.IndicatorAccuracy); q <= 0 || q > 1 {
		t.Errorf("clustering quality = %v, want (0,1]", q)
	}
	if report.Details["clustering.k"] != "3" {
		t.Errorf("clustering k = %q, want default 3", report.Details["clustering.k"])
	}
}

func TestBetterClassifierBeatsBaselineWhenRun(t *testing.T) {
	// The Labs' core comparison (Table 2): among enumerated alternatives, the
	// measured accuracy of the logistic-regression pipeline must beat the
	// majority baseline on the same data.
	env := newEnvironment(t, workload.VerticalTelco)
	campaign := churnCampaign()
	alternatives, _, err := env.compiler.EnumerateAlternatives(campaign)
	if err != nil {
		t.Fatal(err)
	}
	measuredByService := map[string]float64{}
	for _, alt := range alternatives {
		if !alt.Compliant() {
			continue
		}
		step, _ := alt.Composition.AnalyticsStep()
		if _, done := measuredByService[step.Service.ID]; done {
			continue
		}
		rep, err := env.runner.Run(context.Background(), campaign, alt)
		if err != nil {
			t.Fatalf("run %s: %v", alt.Fingerprint(), err)
		}
		acc, _ := rep.Measured.Get(model.IndicatorAccuracy)
		measuredByService[step.Service.ID] = acc
	}
	logreg, okL := measuredByService["classify-logreg"]
	baseline, okB := measuredByService["classify-majority"]
	if !okL || !okB {
		t.Fatalf("measured services = %v, want both logreg and majority", measuredByService)
	}
	if logreg <= baseline {
		t.Errorf("logistic regression accuracy %.3f must beat the majority baseline %.3f", logreg, baseline)
	}
}

func TestRunWithFailureInjectionStillSucceeds(t *testing.T) {
	env := newEnvironment(t, workload.VerticalTelco)
	r, err := New(env.data, WithSeed(3), WithFailureInjection(0.15))
	if err != nil {
		t.Fatal(err)
	}
	campaign := churnCampaign()
	result, err := env.compiler.Compile(campaign)
	if err != nil {
		t.Fatal(err)
	}
	report, err := r.Run(context.Background(), campaign, result.Chosen)
	if err != nil {
		t.Fatalf("run with failure injection: %v", err)
	}
	if report.ClusterUsage.Retries == 0 {
		t.Log("no retries happened despite injection; acceptable but unusual")
	}
	if acc, _ := report.Measured.Get(model.IndicatorAccuracy); acc < 0.6 {
		t.Errorf("accuracy with retries = %v, results must not degrade", acc)
	}
}

func TestEvaluationUsesMeasuredValues(t *testing.T) {
	env := newEnvironment(t, workload.VerticalTelco)
	campaign := churnCampaign()
	campaign.Objectives = append(campaign.Objectives, model.Objective{
		Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 60_000,
	})
	report := env.compileAndRun(t, campaign)
	var latencyResult *sla.ObjectiveResult
	for i := range report.Evaluation.Results {
		if report.Evaluation.Results[i].Objective.Indicator == model.IndicatorLatency {
			latencyResult = &report.Evaluation.Results[i]
		}
	}
	if latencyResult == nil || latencyResult.Missing {
		t.Fatal("latency objective must be evaluated from the measured run")
	}
}
