package runner

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestResultStoreRoundTrip proves the durable-store integration end to end:
// a campaign run saves its prepared dataset as a named table, recomputing the
// campaign is bit-identical to re-reading the saved table, a selective scan
// skips zone-mapped segments, and a later campaign whose target table exists
// only in the store falls back to scanning it.
func TestResultStoreRoundTrip(t *testing.T) {
	env := newEnvironment(t, workload.VerticalTelco)
	// Small segments so the 400-row result splits into enough segments for
	// zone-map pruning to be observable.
	st, err := store.Open(t.TempDir(), store.WithSegmentRows(64), store.WithFrameRows(32))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r, err := New(env.data, WithResultStore(st), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	env.runner = r

	campaign := churnCampaign()
	report := env.compileAndRun(t, campaign)
	name := ResultTableName(campaign.Name)
	if report.Details["store.table"] != name {
		t.Fatalf("store.table detail = %q, want %q", report.Details["store.table"], name)
	}
	first, err := st.Rows(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(first) != report.RowsProcessed {
		t.Fatalf("saved %d rows, report processed %d", len(first), report.RowsProcessed)
	}

	// Recompute arm: an identical second run replaces the saved table; the
	// re-read must reproduce the first run's prepared rows exactly.
	env.compileAndRun(t, campaign)
	second, err := st.Rows(name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-read of saved table differs from recompute")
	}

	// Selective scan: a predicate touching only the top of the customer_id
	// range must prune segments through the zone maps.
	schema, err := st.Schema(name)
	if err != nil {
		t.Fatal(err)
	}
	idx := schema.IndexOf("customer_id")
	maxID := int64(-1)
	for _, row := range first {
		if v := row[idx].(int64); v > maxID {
			maxID = v
		}
	}
	pred, err := store.ParsePred(fmt.Sprintf("customer_id >= %d", maxID), schema)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := st.Scan(name, store.Filter{pred}, func(*storage.ColumnBatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsSkipped == 0 {
		t.Fatalf("selective scan skipped no segments: %+v", stats)
	}
	if snap := st.Metrics().Snapshot(); snap.CounterValue("store.segments.skipped") == 0 {
		t.Fatal("store.segments.skipped counter not incremented")
	}

	// Fallback: a campaign targeting a table that exists only in the store
	// still compiles and runs — both the compiler's source resolution and the
	// runner's table lookup read the saved segments instead of the catalog.
	compiler, err := core.NewCompiler(env.data, core.WithDurableStore(st))
	if err != nil {
		t.Fatal(err)
	}
	env.compiler = compiler
	followUp := churnCampaign()
	followUp.Name = "churn-from-store"
	followUp.Goal.TargetTable = name
	followUp.Sources = []model.DataSource{{Table: name, ContainsPersonalData: true, Region: "eu"}}
	report2 := env.compileAndRun(t, followUp)
	if report2.RowsProcessed == 0 {
		t.Fatal("follow-up campaign processed no rows from the stored table")
	}
	if !st.Has(ResultTableName(followUp.Name)) {
		t.Fatal("follow-up campaign result not saved under its own name")
	}
}
