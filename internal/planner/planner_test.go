package planner

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/workload"
)

func plannerEnv(t *testing.T) (*Planner, *model.Campaign, []core.Alternative) {
	t.Helper()
	data := storage.NewCatalog()
	sc, err := workload.NewGenerator(23).Generate(workload.VerticalTelco, workload.Sizing{Customers: 250, Meters: 1, Days: 1, Users: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Register(data); err != nil {
		t.Fatal(err)
	}
	compiler, err := core.NewCompiler(data)
	if err != nil {
		t.Fatal(err)
	}
	campaign := &model.Campaign{
		Name:     "churn",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months", "support_calls"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
		Objectives: []model.Objective{
			{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.7, Hard: true},
			{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 5},
			{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 30_000},
		},
		Regime: model.RegimePseudonymize,
	}
	alternatives, _, err := compiler.EnumerateAlternatives(campaign)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(compiler)
	if err != nil {
		t.Fatal(err)
	}
	return p, campaign, alternatives
}

func TestNewRequiresCompiler(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil compiler must be rejected")
	}
}

func TestStrategyValidity(t *testing.T) {
	for _, s := range Strategies() {
		if !s.Valid() {
			t.Errorf("strategy %s must be valid", s)
		}
	}
	if Strategy("oracle").Valid() {
		t.Error("unknown strategy must be invalid")
	}
}

func TestPlanExhaustiveMatchesCompilerSelection(t *testing.T) {
	p, campaign, alternatives := plannerEnv(t)
	decision, err := p.PlanOver(campaign, alternatives, StrategyExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	best, err := core.SelectBest(campaign, alternatives)
	if err != nil {
		t.Fatal(err)
	}
	if decision.Chosen.Index != best.Index {
		t.Errorf("exhaustive planner picked %d, compiler selection picked %d", decision.Chosen.Index, best.Index)
	}
	if decision.Explored != len(alternatives) || decision.TotalAlternatives != len(alternatives) {
		t.Errorf("explored = %d / total = %d, want both %d", decision.Explored, decision.TotalAlternatives, len(alternatives))
	}
	if !decision.Feasible {
		t.Error("exhaustive decision on this campaign must be feasible")
	}
}

func TestPlanViaCompileEntryPoint(t *testing.T) {
	p, campaign, _ := plannerEnv(t)
	decision, err := p.Plan(campaign, StrategyExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	if decision.Chosen.Composition == nil {
		t.Error("decision must carry a composition")
	}
	if _, err := p.Plan(campaign, Strategy("oracle")); !errors.Is(err, ErrBadStrategy) {
		t.Error("unknown strategy must fail")
	}
	bad := campaign.Clone()
	bad.Name = ""
	if _, err := p.Plan(bad, StrategyExhaustive); err == nil {
		t.Error("invalid campaign must fail")
	}
}

func TestStrategyOrdering(t *testing.T) {
	// The model-driven (exhaustive) planner must never lose to the manual
	// random baseline on the effective score, and the greedy heuristic must
	// explore fewer options than exhaustive (Table 3's qualitative shape).
	p, campaign, alternatives := plannerEnv(t)
	exhaustive, err := p.PlanOver(campaign, alternatives, StrategyExhaustive)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := p.PlanOver(campaign, alternatives, StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	random, err := p.PlanOver(campaign, alternatives, StrategyRandom)
	if err != nil {
		t.Fatal(err)
	}
	if !exhaustive.Compliant || !greedy.Compliant {
		t.Error("platform-driven strategies must return compliant choices")
	}
	if exhaustive.EffectiveScore+1e-9 < greedy.EffectiveScore || exhaustive.EffectiveScore+1e-9 < random.EffectiveScore {
		t.Errorf("exhaustive effective score %.3f must be >= greedy %.3f and random %.3f",
			exhaustive.EffectiveScore, greedy.EffectiveScore, random.EffectiveScore)
	}
	if greedy.Explored >= exhaustive.Explored {
		t.Errorf("greedy explored %d, must be fewer than exhaustive %d", greedy.Explored, exhaustive.Explored)
	}
	if random.Explored != p.RandomSamples {
		t.Errorf("random explored %d, want %d samples", random.Explored, p.RandomSamples)
	}
	if Regret(exhaustive, exhaustive) != 0 {
		t.Error("optimal decision must have zero regret")
	}
	if Regret(random, exhaustive) < 0 {
		t.Error("regret must be non-negative")
	}
}

func TestPlanGreedyPicksTopQualityService(t *testing.T) {
	p, campaign, alternatives := plannerEnv(t)
	greedy, err := p.PlanOver(campaign, alternatives, StrategyGreedy)
	if err != nil {
		t.Fatal(err)
	}
	step, ok := greedy.Chosen.Composition.AnalyticsStep()
	if !ok {
		t.Fatal("greedy choice has no analytics step")
	}
	if step.Service.ID != "classify-logreg" {
		t.Errorf("greedy analytics service = %s, want the highest-quality classifier", step.Service.ID)
	}
	if !greedy.Chosen.Compliant() {
		t.Error("greedy choice must be compliant")
	}
}

func TestPlanRandomDeterministicPerSeed(t *testing.T) {
	p, campaign, alternatives := plannerEnv(t)
	p.Seed = 42
	a, err := p.PlanOver(campaign, alternatives, StrategyRandom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.PlanOver(campaign, alternatives, StrategyRandom)
	if err != nil {
		t.Fatal(err)
	}
	if a.Chosen.Index != b.Chosen.Index {
		t.Error("same seed must give the same random decision")
	}
}

func TestPlanOverDegenerateDesignSpaces(t *testing.T) {
	p, campaign, alternatives := plannerEnv(t)
	// Keep only non-compliant alternatives: the platform-driven strategies
	// refuse to choose, while the blind manual baseline happily picks a
	// non-compliant pipeline and pays for it in effective score.
	var nonCompliant []core.Alternative
	for _, a := range alternatives {
		if !a.Compliant() {
			nonCompliant = append(nonCompliant, a)
		}
	}
	if len(nonCompliant) == 0 {
		t.Skip("no non-compliant alternatives in this design space")
	}
	if _, err := p.PlanOver(campaign, nonCompliant, StrategyExhaustive); !errors.Is(err, ErrNoDecision) {
		t.Errorf("exhaustive err = %v, want ErrNoDecision", err)
	}
	if _, err := p.PlanOver(campaign, nonCompliant, StrategyGreedy); !errors.Is(err, ErrNoDecision) {
		t.Errorf("greedy err = %v, want ErrNoDecision", err)
	}
	random, err := p.PlanOver(campaign, nonCompliant, StrategyRandom)
	if err != nil {
		t.Fatalf("random baseline should still decide: %v", err)
	}
	if random.Compliant {
		t.Error("the only available choices are non-compliant")
	}
	if random.EffectiveScore >= random.Score {
		t.Errorf("non-compliant choice must be discounted: effective %.3f vs raw %.3f",
			random.EffectiveScore, random.Score)
	}
	if _, err := p.PlanOver(campaign, nil, StrategyRandom); !errors.Is(err, ErrNoDecision) {
		t.Errorf("empty space err = %v, want ErrNoDecision", err)
	}
}

func TestParetoFront(t *testing.T) {
	_, _, alternatives := plannerEnv(t)
	indicators := []model.Indicator{model.IndicatorAccuracy, model.IndicatorCost}
	front := ParetoFront(alternatives, indicators)
	if len(front) == 0 {
		t.Fatal("pareto front must not be empty")
	}
	if len(front) > len(alternatives) {
		t.Fatal("front cannot exceed the population")
	}
	// No front member may be dominated by any alternative.
	dominated := func(a, b core.Alternative) bool {
		accA, _ := a.Estimates.Get(model.IndicatorAccuracy)
		accB, _ := b.Estimates.Get(model.IndicatorAccuracy)
		costA, _ := a.Estimates.Get(model.IndicatorCost)
		costB, _ := b.Estimates.Get(model.IndicatorCost)
		return (accB >= accA && costB <= costA) && (accB > accA || costB < costA)
	}
	for _, member := range front {
		for _, other := range alternatives {
			if other.Index == member.Index {
				continue
			}
			if dominated(member, other) {
				t.Errorf("front member %d is dominated by %d", member.Index, other.Index)
			}
		}
	}
	// Degenerate inputs.
	if got := ParetoFront(alternatives, nil); got != nil {
		t.Error("empty indicator list must yield nil")
	}
	if got := ParetoFront(nil, indicators); len(got) != 0 {
		t.Error("empty population must yield empty front")
	}
}
