// Package planner implements campaign planning strategies over the design
// space enumerated by the core compiler: the exhaustive model-driven search
// the platform performs for its users, a cheaper greedy heuristic, and a
// random-sampling baseline that models the "manual trial and error" of a user
// without the platform. It also computes Pareto fronts over the standard
// indicators, which is how the Labs visualise trade-offs between
// alternatives.
package planner

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sla"
)

// Strategy selects how the planner explores the design space.
type Strategy string

// Supported strategies.
const (
	// StrategyExhaustive scores every alternative (the platform default).
	StrategyExhaustive Strategy = "exhaustive"
	// StrategyGreedy fixes one design dimension at a time, exploring only a
	// fraction of the space.
	StrategyGreedy Strategy = "greedy"
	// StrategyRandom samples K alternatives uniformly at random — the
	// "manual" baseline of a user poking at the platform without guidance.
	StrategyRandom Strategy = "random"
)

// Strategies returns every supported strategy.
func Strategies() []Strategy {
	return []Strategy{StrategyExhaustive, StrategyGreedy, StrategyRandom}
}

// Valid reports whether s is a known strategy.
func (s Strategy) Valid() bool {
	for _, known := range Strategies() {
		if s == known {
			return true
		}
	}
	return false
}

// Errors returned by the planner.
var (
	ErrBadStrategy = errors.New("planner: unknown strategy")
	ErrNoDecision  = errors.New("planner: strategy found no acceptable alternative")
)

// Decision is the outcome of planning one campaign.
type Decision struct {
	// Strategy that produced the decision.
	Strategy Strategy
	// Chosen alternative.
	Chosen core.Alternative
	// Score is the chosen alternative's estimated objective score.
	Score float64
	// Compliant reports whether the chosen alternative passes the compliance
	// rules. The random "manual" baseline has no compliance engine, so it can
	// end up choosing a non-compliant pipeline.
	Compliant bool
	// EffectiveScore is the score after the Labs' non-compliance discount;
	// it is what the strategies are compared on.
	EffectiveScore float64
	// Feasible reports whether the chosen alternative meets every hard
	// objective (on estimates).
	Feasible bool
	// Explored is the number of alternatives the strategy evaluated.
	Explored int
	// TotalAlternatives is the size of the full design space.
	TotalAlternatives int
	// Elapsed is the planning wall-clock time (excluding enumeration).
	Elapsed time.Duration
}

// Planner plans campaigns using a compiler's design-space enumeration.
type Planner struct {
	compiler *core.Compiler
	// RandomSamples is the number of alternatives the random baseline may
	// examine (default 3, emulating a handful of manual attempts).
	RandomSamples int
	// Seed drives the random baseline.
	Seed int64
}

// New returns a planner over the given compiler.
func New(compiler *core.Compiler) (*Planner, error) {
	if compiler == nil {
		return nil, fmt.Errorf("planner: nil compiler")
	}
	return &Planner{compiler: compiler, RandomSamples: 3, Seed: 1}, nil
}

// Plan enumerates the campaign's design space and applies the strategy.
func (p *Planner) Plan(campaign *model.Campaign, strategy Strategy) (Decision, error) {
	if !strategy.Valid() {
		return Decision{}, fmt.Errorf("%w: %q", ErrBadStrategy, strategy)
	}
	alternatives, _, err := p.compiler.EnumerateAlternatives(campaign)
	if err != nil {
		return Decision{}, err
	}
	return p.PlanOver(campaign, alternatives, strategy)
}

// PlanOver applies the strategy to an already enumerated design space; used
// by the Labs and the benchmarks to compare strategies on identical inputs.
func (p *Planner) PlanOver(campaign *model.Campaign, alternatives []core.Alternative, strategy Strategy) (Decision, error) {
	start := time.Now()
	var chosen core.Alternative
	var explored int
	var err error
	switch strategy {
	case StrategyExhaustive:
		chosen, explored, err = p.planExhaustive(campaign, alternatives)
	case StrategyGreedy:
		chosen, explored, err = p.planGreedy(campaign, alternatives)
	case StrategyRandom:
		chosen, explored, err = p.planRandom(campaign, alternatives)
	default:
		return Decision{}, fmt.Errorf("%w: %q", ErrBadStrategy, strategy)
	}
	if err != nil {
		return Decision{}, err
	}
	effective := chosen.Evaluation.Score
	if !chosen.Compliant() {
		// Mirror the Labs scoring: non-compliant pipelines are sharply
		// discounted when strategies are compared.
		effective *= 0.3
	}
	return Decision{
		Strategy:          strategy,
		Chosen:            chosen,
		Score:             chosen.Evaluation.Score,
		Compliant:         chosen.Compliant(),
		EffectiveScore:    effective,
		Feasible:          chosen.Evaluation.Feasible,
		Explored:          explored,
		TotalAlternatives: len(alternatives),
		Elapsed:           time.Since(start),
	}, nil
}

func (p *Planner) planExhaustive(campaign *model.Campaign, alternatives []core.Alternative) (core.Alternative, int, error) {
	best, err := core.SelectBest(campaign, alternatives)
	if err != nil {
		return core.Alternative{}, len(alternatives), fmt.Errorf("%w: %v", ErrNoDecision, err)
	}
	return best, len(alternatives), nil
}

// planGreedy fixes the analytics service first (highest catalog quality among
// compliant alternatives), then the cheapest compliant alternative using that
// service. It explores far fewer options than the exhaustive strategy and can
// therefore miss globally better trade-offs.
func (p *Planner) planGreedy(campaign *model.Campaign, alternatives []core.Alternative) (core.Alternative, int, error) {
	compliant := make([]core.Alternative, 0, len(alternatives))
	for _, a := range alternatives {
		if a.Compliant() && withinBudget(campaign, a) {
			compliant = append(compliant, a)
		}
	}
	if len(compliant) == 0 {
		return core.Alternative{}, len(alternatives), fmt.Errorf("%w: no compliant alternative", ErrNoDecision)
	}
	// Step 1: the analytics service with the highest catalog quality.
	bestQuality := -1.0
	bestService := ""
	explored := 0
	for _, a := range compliant {
		explored++
		step, ok := a.Composition.AnalyticsStep()
		if !ok {
			continue
		}
		if step.Service.Quality > bestQuality {
			bestQuality = step.Service.Quality
			bestService = step.Service.ID
		}
	}
	// Step 2: among alternatives with that service, pick the cheapest.
	var candidates []core.Alternative
	for _, a := range compliant {
		if step, ok := a.Composition.AnalyticsStep(); ok && step.Service.ID == bestService {
			candidates = append(candidates, a)
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		ci, _ := candidates[i].Estimates.Get(model.IndicatorCost)
		cj, _ := candidates[j].Estimates.Get(model.IndicatorCost)
		if ci != cj {
			return ci < cj
		}
		return candidates[i].Index < candidates[j].Index
	})
	return candidates[0], explored, nil
}

// planRandom models a user manually trying a handful of configurations
// without the platform's guidance: it samples RandomSamples alternatives
// uniformly and keeps the best by estimated objective score. Crucially, the
// manual baseline has no compliance engine, so the choice it returns may be
// non-compliant — that is exactly the "regulatory barrier" risk the paper
// argues the platform removes.
func (p *Planner) planRandom(campaign *model.Campaign, alternatives []core.Alternative) (core.Alternative, int, error) {
	if len(alternatives) == 0 {
		return core.Alternative{}, 0, fmt.Errorf("%w: empty design space", ErrNoDecision)
	}
	samples := p.RandomSamples
	if samples < 1 {
		samples = 1
	}
	if samples > len(alternatives) {
		samples = len(alternatives)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	perm := rng.Perm(len(alternatives))
	var best *core.Alternative
	for _, idx := range perm[:samples] {
		a := alternatives[idx]
		if !withinBudget(campaign, a) {
			continue
		}
		if best == nil || sla.Compare(a.Evaluation, best.Evaluation) > 0 {
			copyA := a
			best = &copyA
		}
	}
	if best == nil {
		return core.Alternative{}, samples, fmt.Errorf("%w: none of the %d sampled alternatives fits the budget", ErrNoDecision, samples)
	}
	return *best, samples, nil
}

func withinBudget(campaign *model.Campaign, a core.Alternative) bool {
	if campaign.Preferences.MaxBudget <= 0 {
		return true
	}
	cost, ok := a.Estimates.Get(model.IndicatorCost)
	return !ok || cost <= campaign.Preferences.MaxBudget
}

// Regret is the effective-score gap between a decision and the best
// achievable decision on the same design space (0 = optimal). Effective
// scores include the non-compliance discount, so a manual baseline that
// unknowingly picks a non-compliant pipeline shows a large regret.
func Regret(decision Decision, optimal Decision) float64 {
	r := optimal.EffectiveScore - decision.EffectiveScore
	if r < 0 {
		return 0
	}
	return r
}

// ParetoFront returns the non-dominated alternatives with respect to the
// given indicators (direction taken from the indicator definition: higher is
// better for accuracy/throughput/privacy, lower for the rest). Alternatives
// missing any of the indicators are excluded.
func ParetoFront(alternatives []core.Alternative, indicators []model.Indicator) []core.Alternative {
	if len(indicators) == 0 {
		return nil
	}
	values := func(a core.Alternative) ([]float64, bool) {
		out := make([]float64, len(indicators))
		for i, ind := range indicators {
			v, ok := a.Estimates.Get(ind)
			if !ok {
				return nil, false
			}
			if ind.HigherIsBetter() {
				out[i] = -v // normalise to "lower is better"
			} else {
				out[i] = v
			}
		}
		return out, true
	}
	type candidate struct {
		alt  core.Alternative
		vals []float64
	}
	var candidates []candidate
	for _, a := range alternatives {
		if vals, ok := values(a); ok {
			candidates = append(candidates, candidate{alt: a, vals: vals})
		}
	}
	dominates := func(a, b []float64) bool {
		strictly := false
		for i := range a {
			if a[i] > b[i] {
				return false
			}
			if a[i] < b[i] {
				strictly = true
			}
		}
		return strictly
	}
	var front []core.Alternative
	for i, c := range candidates {
		dominated := false
		for j, other := range candidates {
			if i == j {
				continue
			}
			if dominates(other.vals, c.vals) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c.alt)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Index < front[j].Index })
	return front
}
