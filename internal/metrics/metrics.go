// Package metrics provides lightweight, concurrency-safe instrumentation
// primitives (counters, gauges, timers and histograms) used by the dataflow
// engine, the simulated cluster and the Labs scoring machinery.
//
// The package is deliberately dependency-free and allocation-light: hot paths
// in the dataflow executor update counters per record batch, so all primitives
// are backed by atomics or a small mutex-protected state.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter. Negative deltas are ignored to preserve
// monotonicity.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current counter value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a 64-bit value that may go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (possibly negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations and exposes count, sum, min, max,
// mean, and quantile estimates. Observations are retained (bounded by
// maxSamples with reservoir-style replacement) so quantiles are exact for
// small populations and approximate for large ones.
type Histogram struct {
	mu         sync.Mutex
	count      int64
	sum        float64
	min        float64
	max        float64
	samples    []float64
	maxSamples int
	// next index to overwrite once the reservoir is full; simple ring
	// replacement keeps the implementation deterministic for tests.
	next int
}

// NewHistogram returns a histogram retaining at most maxSamples observations
// for quantile estimation. maxSamples <= 0 selects a default of 1024.
func NewHistogram(maxSamples int) *Histogram {
	if maxSamples <= 0 {
		maxSamples = 1024
	}
	return &Histogram{
		min:        math.Inf(1),
		max:        math.Inf(-1),
		maxSamples: maxSamples,
		samples:    make([]float64, 0, 16),
	}
}

// Observe records a single observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.maxSamples {
		h.samples = append(h.samples, v)
		return
	}
	h.samples[h.next] = v
	h.next = (h.next + 1) % h.maxSamples
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean of all observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0 <= q <= 1) over the retained samples.
// It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Timer measures durations and feeds them into a histogram expressed in
// milliseconds.
type Timer struct {
	h *Histogram
}

// NewTimer returns a timer backed by a default-sized histogram.
func NewTimer() *Timer { return &Timer{h: NewHistogram(0)} }

// ObserveDuration records d.
func (t *Timer) ObserveDuration(d time.Duration) {
	t.h.Observe(float64(d) / float64(time.Millisecond))
}

// Time runs fn and records its wall-clock duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.ObserveDuration(time.Since(start))
}

// Histogram exposes the underlying histogram (milliseconds).
func (t *Timer) Histogram() *Histogram { return t.h }

// Snapshot is a point-in-time copy of a registry's contents, suitable for
// reporting and comparison between runs.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSummary
}

// HistogramSummary is the exported summary of a histogram.
type HistogramSummary struct {
	Count int64
	Sum   float64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// Registry is a named collection of metrics. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
}

// Counter returns the counter registered under name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Timer returns the timer registered under name, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = NewTimer()
		r.timers[name] = t
	}
	return t
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSummary, len(r.histograms)+len(r.timers)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		snap.Histograms[name] = summarize(h)
	}
	for name, t := range r.timers {
		snap.Histograms[name+".ms"] = summarize(t.h)
	}
	return snap
}

func summarize(h *Histogram) HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// CounterValue is a convenience accessor returning the value of a named
// counter from a snapshot, or 0 when absent.
func (s Snapshot) CounterValue(name string) int64 { return s.Counters[name] }

// Diff returns a new snapshot holding counter deltas (s - prev). Gauges and
// histograms are taken from s unchanged.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	return out
}

// String renders a compact, sorted representation used by CLI reporting.
func (s Snapshot) String() string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s=%d ", n, s.Counters[n])
	}
	return out
}
