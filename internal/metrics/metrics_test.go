package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(-3)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10 (negative add must be ignored)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 15 {
		t.Fatalf("sum = %v, want 15", got)
	}
	if got := h.Mean(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := h.Min(); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram must report zeros, got mean=%v min=%v max=%v p50=%v",
			h.Mean(), h.Min(), h.Max(), h.Quantile(0.5))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 50},
		{0.95, 95},
		{0.99, 99},
		{1.0, 100},
		{0.0, 1},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(10)
	if got := h.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %v, want 10", got)
	}
	if got := h.Quantile(2); got != 10 {
		t.Errorf("Quantile(2) = %v, want 10", got)
	}
}

func TestHistogramReservoirBound(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if len(h.samples) != 8 {
		t.Fatalf("retained samples = %d, want 8", len(h.samples))
	}
	// min/max must still reflect every observation, not only retained ones.
	if h.Min() != 0 || h.Max() != 99 {
		t.Fatalf("min/max = %v/%v, want 0/99", h.Min(), h.Max())
	}
}

// Property: mean always lies within [min, max] and sum == mean*count (within
// floating point tolerance) for any non-empty observation set.
func TestHistogramPropertyMeanBounds(t *testing.T) {
	f := func(values []float64) bool {
		// Filter non-finite inputs that quick may generate.
		clean := values[:0]
		for _, v := range values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		h := NewHistogram(0)
		for _, v := range clean {
			h.Observe(v)
		}
		mean := h.Mean()
		if mean < h.Min()-1e-6 || mean > h.Max()+1e-6 {
			return false
		}
		return math.Abs(h.Sum()-mean*float64(h.Count())) < 1e-3*math.Max(1, math.Abs(h.Sum()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	tm.ObserveDuration(10 * time.Millisecond)
	tm.Time(func() {})
	if got := tm.Histogram().Count(); got != 2 {
		t.Fatalf("timer observations = %d, want 2", got)
	}
	if tm.Histogram().Max() < 10 {
		t.Fatalf("max ms = %v, want >= 10", tm.Histogram().Max())
	}
}

func TestRegistryReusesInstances(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("rows")
	c2 := r.Counter("rows")
	if c1 != c2 {
		t.Fatal("Counter must return the same instance for the same name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge must return the same instance for the same name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Histogram must return the same instance for the same name")
	}
	if r.Timer("t") != r.Timer("t") {
		t.Fatal("Timer must return the same instance for the same name")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks").Add(3)
	r.Gauge("inflight").Set(2)
	r.Histogram("latency").Observe(5)
	r.Timer("stage").ObserveDuration(2 * time.Millisecond)

	snap := r.Snapshot()
	if snap.CounterValue("tasks") != 3 {
		t.Errorf("snapshot tasks = %d, want 3", snap.CounterValue("tasks"))
	}
	if snap.Gauges["inflight"] != 2 {
		t.Errorf("snapshot inflight = %d, want 2", snap.Gauges["inflight"])
	}
	if snap.Histograms["latency"].Count != 1 {
		t.Errorf("snapshot latency count = %d, want 1", snap.Histograms["latency"].Count)
	}
	if _, ok := snap.Histograms["stage.ms"]; !ok {
		t.Error("snapshot must include timer under <name>.ms")
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows").Add(10)
	before := r.Snapshot()
	r.Counter("rows").Add(5)
	after := r.Snapshot()
	d := after.Diff(before)
	if d.CounterValue("rows") != 5 {
		t.Fatalf("diff rows = %d, want 5", d.CounterValue("rows"))
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	s := r.Snapshot().String()
	if s != "a=1 b=2 " {
		t.Fatalf("snapshot string = %q, want sorted 'a=1 b=2 '", s)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8*500 {
		t.Fatalf("shared counter = %d, want %d", got, 8*500)
	}
}
