// Package sla evaluates measured campaign runs against the declarative
// objectives: for every objective it reports satisfaction, slack and a
// partial-credit score, and it aggregates them into the campaign-level score
// the Labs use to compare alternatives and rank trainee attempts.
package sla

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
)

// Measurement maps indicators to their measured values for one run.
type Measurement map[model.Indicator]float64

// Merge returns a copy of m overlaid with other (other wins on conflicts).
func (m Measurement) Merge(other Measurement) Measurement {
	out := make(Measurement, len(m)+len(other))
	for k, v := range m {
		out[k] = v
	}
	for k, v := range other {
		out[k] = v
	}
	return out
}

// Get returns the measured value and whether it is present.
func (m Measurement) Get(ind model.Indicator) (float64, bool) {
	v, ok := m[ind]
	return v, ok
}

// String renders the measurement sorted by indicator name.
func (m Measurement) String() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%.4g", k, m[model.Indicator(k)])
	}
	return strings.Join(parts, " ")
}

// ObjectiveResult is the evaluation of a single objective.
type ObjectiveResult struct {
	// Objective under evaluation.
	Objective model.Objective
	// Measured value of the indicator (0 when missing).
	Measured float64
	// Missing reports that the run produced no measurement for the indicator.
	Missing bool
	// Satisfied reports whether the objective is met.
	Satisfied bool
	// Margin is how far the measurement is from the target in the
	// "good" direction (positive = satisfied with slack).
	Margin float64
	// Score is the partial-credit score in [0,1]: 1 when satisfied, a
	// target-relative ratio when not.
	Score float64
}

// Evaluation aggregates all objective results of one run.
type Evaluation struct {
	// Results per objective, in declaration order.
	Results []ObjectiveResult
	// Feasible reports whether every hard objective is satisfied.
	Feasible bool
	// HardViolations counts unsatisfied hard objectives.
	HardViolations int
	// Score is the weighted mean of per-objective scores in [0,1]; campaigns
	// with no objectives score 1.
	Score float64
}

// Satisfied returns the number of satisfied objectives.
func (e Evaluation) Satisfied() int {
	n := 0
	for _, r := range e.Results {
		if r.Satisfied {
			n++
		}
	}
	return n
}

// Evaluate scores the measurement against the objectives.
func Evaluate(objectives []model.Objective, m Measurement) Evaluation {
	eval := Evaluation{Feasible: true}
	if len(objectives) == 0 {
		eval.Score = 1
		return eval
	}
	weightSum := 0.0
	weightedScore := 0.0
	for _, o := range objectives {
		r := evaluateObjective(o, m)
		eval.Results = append(eval.Results, r)
		w := o.EffectiveWeight()
		weightSum += w
		weightedScore += w * r.Score
		if o.Hard && !r.Satisfied {
			eval.Feasible = false
			eval.HardViolations++
		}
	}
	if weightSum > 0 {
		eval.Score = weightedScore / weightSum
	}
	return eval
}

func evaluateObjective(o model.Objective, m Measurement) ObjectiveResult {
	measured, ok := m.Get(o.Indicator)
	r := ObjectiveResult{Objective: o, Measured: measured, Missing: !ok}
	if !ok {
		// A missing measurement never satisfies an objective.
		r.Satisfied = false
		r.Score = 0
		r.Margin = math.Inf(-1)
		return r
	}
	r.Satisfied = o.Comparison.Satisfied(measured, o.Target)
	switch o.Comparison {
	case model.AtLeast:
		r.Margin = measured - o.Target
	case model.AtMost:
		r.Margin = o.Target - measured
	}
	r.Score = partialCredit(o, measured)
	return r
}

// partialCredit maps a measurement to [0,1]: 1 when the objective is met, and
// a target-relative ratio otherwise so that near misses score higher than
// gross misses.
func partialCredit(o model.Objective, measured float64) float64 {
	if o.Comparison.Satisfied(measured, o.Target) {
		return 1
	}
	switch o.Comparison {
	case model.AtLeast:
		if o.Target <= 0 {
			return 0
		}
		return clamp01(measured / o.Target)
	case model.AtMost:
		if measured <= 0 {
			return 0
		}
		return clamp01(o.Target / measured)
	default:
		return 0
	}
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Summary renders a one-line-per-objective report used by the CLIs.
func (e Evaluation) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "score=%.3f feasible=%v satisfied=%d/%d\n", e.Score, e.Feasible, e.Satisfied(), len(e.Results))
	for _, r := range e.Results {
		status := "FAIL"
		if r.Satisfied {
			status = "ok"
		}
		if r.Missing {
			status = "MISSING"
		}
		fmt.Fprintf(&b, "  [%s] %s %s %.4g (measured %.4g, score %.2f)\n",
			status, r.Objective.Indicator, r.Objective.Comparison, r.Objective.Target, r.Measured, r.Score)
	}
	return b.String()
}

// Compare ranks two evaluations: feasible beats infeasible; among equals the
// higher score wins. It returns a positive number when a is better, negative
// when b is better, and 0 for ties.
func Compare(a, b Evaluation) int {
	switch {
	case a.Feasible && !b.Feasible:
		return 1
	case !a.Feasible && b.Feasible:
		return -1
	}
	switch {
	case a.Score > b.Score:
		return 1
	case a.Score < b.Score:
		return -1
	default:
		return 0
	}
}
