package sla

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func objectives() []model.Objective {
	return []model.Objective{
		{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.8, Hard: true},
		{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 2.0, Weight: 2},
		{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 1000},
	}
}

func TestEvaluateAllSatisfied(t *testing.T) {
	m := Measurement{
		model.IndicatorAccuracy: 0.9,
		model.IndicatorCost:     1.0,
		model.IndicatorLatency:  500,
	}
	e := Evaluate(objectives(), m)
	if !e.Feasible || e.HardViolations != 0 {
		t.Errorf("evaluation = %+v", e)
	}
	if e.Score != 1.0 {
		t.Errorf("score = %v, want 1.0", e.Score)
	}
	if e.Satisfied() != 3 {
		t.Errorf("satisfied = %d, want 3", e.Satisfied())
	}
	// Margins carry the slack.
	if math.Abs(e.Results[0].Margin-0.1) > 1e-9 {
		t.Errorf("accuracy margin = %v, want 0.1", e.Results[0].Margin)
	}
	if math.Abs(e.Results[1].Margin-1.0) > 1e-9 {
		t.Errorf("cost margin = %v, want 1.0", e.Results[1].Margin)
	}
}

func TestEvaluateHardViolation(t *testing.T) {
	m := Measurement{
		model.IndicatorAccuracy: 0.6, // below the hard 0.8 target
		model.IndicatorCost:     1.0,
		model.IndicatorLatency:  500,
	}
	e := Evaluate(objectives(), m)
	if e.Feasible || e.HardViolations != 1 {
		t.Errorf("evaluation = %+v", e)
	}
	// Partial credit: accuracy scores 0.6/0.8 = 0.75; weighted mean
	// (1*0.75 + 2*1 + 1*1) / 4 = 0.9375.
	if math.Abs(e.Score-0.9375) > 1e-9 {
		t.Errorf("score = %v, want 0.9375", e.Score)
	}
}

func TestEvaluateMissingMeasurement(t *testing.T) {
	m := Measurement{model.IndicatorAccuracy: 0.9}
	e := Evaluate(objectives(), m)
	if e.Feasible != true {
		// Cost and latency objectives are soft; missing them cannot make the
		// run infeasible.
		t.Errorf("feasibility = %v, want true", e.Feasible)
	}
	for _, r := range e.Results {
		if r.Objective.Indicator == model.IndicatorCost {
			if !r.Missing || r.Satisfied || r.Score != 0 {
				t.Errorf("missing cost result = %+v", r)
			}
		}
	}
	if e.Score >= 1.0 {
		t.Errorf("score with missing measurements = %v, want < 1", e.Score)
	}
}

func TestEvaluateNoObjectives(t *testing.T) {
	e := Evaluate(nil, Measurement{})
	if !e.Feasible || e.Score != 1 || len(e.Results) != 0 {
		t.Errorf("empty evaluation = %+v", e)
	}
}

func TestPartialCreditDirections(t *testing.T) {
	atLeast := model.Objective{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.8}
	if got := partialCredit(atLeast, 0.4); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("partial credit (at least) = %v, want 0.5", got)
	}
	atMost := model.Objective{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 2}
	if got := partialCredit(atMost, 4); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("partial credit (at most) = %v, want 0.5", got)
	}
	if got := partialCredit(atMost, 0); got != 1 {
		t.Errorf("zero cost must be fully satisfied, got %v", got)
	}
	zeroTarget := model.Objective{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0}
	if got := partialCredit(zeroTarget, -1); got != 0 {
		t.Errorf("degenerate target partial credit = %v, want 0", got)
	}
}

func TestMeasurementHelpers(t *testing.T) {
	a := Measurement{model.IndicatorCost: 1}
	b := Measurement{model.IndicatorCost: 2, model.IndicatorAccuracy: 0.5}
	merged := a.Merge(b)
	if merged[model.IndicatorCost] != 2 || merged[model.IndicatorAccuracy] != 0.5 {
		t.Errorf("merged = %v", merged)
	}
	if a[model.IndicatorCost] != 1 {
		t.Error("Merge must not mutate the receiver")
	}
	if v, ok := merged.Get(model.IndicatorCost); !ok || v != 2 {
		t.Error("Get misbehaves")
	}
	if _, ok := merged.Get(model.IndicatorFreshness); ok {
		t.Error("Get of absent indicator must report !ok")
	}
	s := merged.String()
	if !strings.Contains(s, "accuracy=0.5") || !strings.Contains(s, "cost=2") {
		t.Errorf("String = %q", s)
	}
}

func TestSummary(t *testing.T) {
	m := Measurement{
		model.IndicatorAccuracy: 0.9,
		model.IndicatorCost:     3.0,
	}
	e := Evaluate(objectives(), m)
	s := e.Summary()
	if !strings.Contains(s, "[ok] accuracy") {
		t.Errorf("summary missing satisfied accuracy:\n%s", s)
	}
	if !strings.Contains(s, "[FAIL] cost") {
		t.Errorf("summary missing failed cost:\n%s", s)
	}
	if !strings.Contains(s, "[MISSING] latency_ms") {
		t.Errorf("summary missing absent latency:\n%s", s)
	}
}

func TestCompare(t *testing.T) {
	feasibleHigh := Evaluation{Feasible: true, Score: 0.9}
	feasibleLow := Evaluation{Feasible: true, Score: 0.5}
	infeasible := Evaluation{Feasible: false, Score: 0.99}
	if Compare(feasibleHigh, feasibleLow) <= 0 {
		t.Error("higher score must win")
	}
	if Compare(feasibleLow, infeasible) <= 0 {
		t.Error("feasible must beat infeasible regardless of score")
	}
	if Compare(infeasible, feasibleLow) >= 0 {
		t.Error("infeasible must lose")
	}
	if Compare(feasibleHigh, feasibleHigh) != 0 {
		t.Error("equal evaluations must tie")
	}
}

// Property: the aggregate score always lies in [0,1] and improving a
// measurement in its "better" direction never lowers it.
func TestScoreMonotonicityProperty(t *testing.T) {
	objs := objectives()
	f := func(acc, cost uint8) bool {
		a := float64(acc) / 255
		c := float64(cost) / 16
		base := Evaluate(objs, Measurement{
			model.IndicatorAccuracy: a,
			model.IndicatorCost:     c,
			model.IndicatorLatency:  100,
		})
		better := Evaluate(objs, Measurement{
			model.IndicatorAccuracy: a + 0.1,
			model.IndicatorCost:     c,
			model.IndicatorLatency:  100,
		})
		if base.Score < 0 || base.Score > 1 {
			return false
		}
		return better.Score+1e-9 >= base.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
