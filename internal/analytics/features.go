// Package analytics implements the analytics services registered in the
// TOREADOR service catalog: classification, clustering, association-rule
// mining, anomaly detection, forecasting and sessionization, plus the
// evaluation metrics the Labs use to score trainee campaigns.
//
// Algorithms operate on plain numeric matrices so they can be used directly
// or fed from dataflow results via the feature-extraction helpers in this
// file. All stochastic routines take explicit seeds for reproducibility.
package analytics

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataflow"
	"repro/internal/storage"
)

// Common errors.
var (
	ErrNoData        = errors.New("analytics: no data")
	ErrDimMismatch   = errors.New("analytics: dimension mismatch")
	ErrNotFitted     = errors.New("analytics: model is not fitted")
	ErrBadParameter  = errors.New("analytics: bad parameter")
	ErrMissingColumn = errors.New("analytics: missing column")
)

// Matrix is a dense row-major feature matrix.
type Matrix [][]float64

// Dims returns rows × cols; an empty matrix is 0×0.
func (m Matrix) Dims() (rows, cols int) {
	if len(m) == 0 {
		return 0, 0
	}
	return len(m), len(m[0])
}

// Validate checks that every row has the same width and the matrix is
// non-empty.
func (m Matrix) Validate() error {
	r, c := m.Dims()
	if r == 0 || c == 0 {
		return ErrNoData
	}
	for i, row := range m {
		if len(row) != c {
			return fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimMismatch, i, len(row), c)
		}
	}
	return nil
}

// Clone deep-copies the matrix.
func (m Matrix) Clone() Matrix {
	out := make(Matrix, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// FeatureSet couples a feature matrix with optional boolean labels and the
// source column names, as produced by ExtractFeatures.
type FeatureSet struct {
	Columns []string
	X       Matrix
	Labels  []bool
}

// ExtractFeatures builds a numeric feature matrix from a dataflow result using
// the named feature columns; labelColumn may be empty for unlabelled data.
// Null or non-numeric cells become 0.
func ExtractFeatures(res *dataflow.Result, featureColumns []string, labelColumn string) (*FeatureSet, error) {
	if res == nil || len(res.Rows) == 0 {
		return nil, ErrNoData
	}
	if len(featureColumns) == 0 {
		return nil, fmt.Errorf("%w: no feature columns", ErrBadParameter)
	}
	for _, c := range featureColumns {
		if !res.Schema.Has(c) {
			return nil, fmt.Errorf("%w: %q", ErrMissingColumn, c)
		}
	}
	if labelColumn != "" && !res.Schema.Has(labelColumn) {
		return nil, fmt.Errorf("%w: label %q", ErrMissingColumn, labelColumn)
	}
	fs := &FeatureSet{Columns: append([]string(nil), featureColumns...)}
	for _, rec := range res.Records() {
		row := make([]float64, len(featureColumns))
		for i, c := range featureColumns {
			row[i] = rec.Float(c)
		}
		fs.X = append(fs.X, row)
		if labelColumn != "" {
			fs.Labels = append(fs.Labels, rec.Bool(labelColumn))
		}
	}
	return fs, nil
}

// ExtractFeaturesFromTable is ExtractFeatures for a storage table.
func ExtractFeaturesFromTable(t *storage.Table, featureColumns []string, labelColumn string) (*FeatureSet, error) {
	if t == nil || t.NumRows() == 0 {
		return nil, ErrNoData
	}
	res := &dataflow.Result{Schema: t.Schema(), Rows: t.Rows()}
	return ExtractFeatures(res, featureColumns, labelColumn)
}

// Split partitions the feature set into train and test subsets; testFraction
// of the rows (rounded down, at least one when possible) go to the test set.
// The split is deterministic for a given seed.
func (fs *FeatureSet) Split(testFraction float64, seed int64) (train, test *FeatureSet, err error) {
	if fs == nil || len(fs.X) == 0 {
		return nil, nil, ErrNoData
	}
	if testFraction < 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("%w: test fraction %v", ErrBadParameter, testFraction)
	}
	n := len(fs.X)
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n) * testFraction)
	train = &FeatureSet{Columns: fs.Columns}
	test = &FeatureSet{Columns: fs.Columns}
	for i, idx := range perm {
		dst := train
		if i < nTest {
			dst = test
		}
		dst.X = append(dst.X, fs.X[idx])
		if fs.Labels != nil {
			dst.Labels = append(dst.Labels, fs.Labels[idx])
		}
	}
	return train, test, nil
}

// Scaler standardises features to zero mean and unit variance.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-column mean and standard deviation.
func FitScaler(x Matrix) (*Scaler, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	rows, cols := x.Dims()
	s := &Scaler{Mean: make([]float64, cols), Std: make([]float64, cols)}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(rows)
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(rows))
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Transform returns a standardised copy of x.
func (s *Scaler) Transform(x Matrix) (Matrix, error) {
	if s == nil {
		return nil, ErrNotFitted
	}
	out := make(Matrix, len(x))
	for i, row := range x {
		if len(row) != len(s.Mean) {
			return nil, fmt.Errorf("%w: row %d", ErrDimMismatch, i)
		}
		nr := make([]float64, len(row))
		for j, v := range row {
			nr[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = nr
	}
	return out, nil
}

// TransformRow standardises a single feature vector.
func (s *Scaler) TransformRow(row []float64) ([]float64, error) {
	out, err := s.Transform(Matrix{row})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// euclidean returns the Euclidean distance between two equal-length vectors.
func euclidean(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
