package analytics

import (
	"fmt"
	"sort"
	"strings"
)

// Itemset is a set of items with its support (fraction of transactions that
// contain every item of the set).
type Itemset struct {
	Items   []string
	Support float64
}

// Key returns a canonical representation of the itemset (sorted, joined).
func (s Itemset) Key() string {
	items := append([]string(nil), s.Items...)
	sort.Strings(items)
	return strings.Join(items, ",")
}

// Rule is an association rule antecedent → consequent.
type Rule struct {
	Antecedent []string
	Consequent []string
	Support    float64
	Confidence float64
	Lift       float64
}

// String renders the rule compactly.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup=%.3f conf=%.3f lift=%.2f)",
		strings.Join(r.Antecedent, ","), strings.Join(r.Consequent, ","), r.Support, r.Confidence, r.Lift)
}

// Apriori mines frequent itemsets and association rules from transactions
// (each transaction is the list of items it contains).
type Apriori struct {
	// MinSupport is the minimum fraction of transactions an itemset must
	// appear in (default 0.05).
	MinSupport float64
	// MinConfidence is the minimum confidence for generated rules (default 0.5).
	MinConfidence float64
	// MaxItemsetSize bounds the size of mined itemsets (default 3).
	MaxItemsetSize int
}

func (a *Apriori) defaults() {
	if a.MinSupport <= 0 {
		a.MinSupport = 0.05
	}
	if a.MinConfidence <= 0 {
		a.MinConfidence = 0.5
	}
	if a.MaxItemsetSize <= 0 {
		a.MaxItemsetSize = 3
	}
}

// Mine returns frequent itemsets (sorted by descending support) and rules
// (sorted by descending confidence, then lift).
func (a *Apriori) Mine(transactions [][]string) ([]Itemset, []Rule, error) {
	if len(transactions) == 0 {
		return nil, nil, ErrNoData
	}
	a.defaults()
	n := float64(len(transactions))

	// Canonicalise transactions to sets.
	txSets := make([]map[string]bool, len(transactions))
	for i, tx := range transactions {
		set := make(map[string]bool, len(tx))
		for _, item := range tx {
			if item != "" {
				set[item] = true
			}
		}
		txSets[i] = set
	}

	supportOf := func(items []string) float64 {
		count := 0
		for _, set := range txSets {
			all := true
			for _, it := range items {
				if !set[it] {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		return float64(count) / n
	}

	// Level 1: frequent single items.
	itemCounts := map[string]int{}
	for _, set := range txSets {
		for item := range set {
			itemCounts[item]++
		}
	}
	var frequent []Itemset
	current := make([][]string, 0)
	for item, count := range itemCounts {
		sup := float64(count) / n
		if sup >= a.MinSupport {
			frequent = append(frequent, Itemset{Items: []string{item}, Support: sup})
			current = append(current, []string{item})
		}
	}

	// Levels 2..MaxItemsetSize: candidate generation by joining sets that
	// share a prefix, then support counting.
	supportIndex := map[string]float64{}
	for _, f := range frequent {
		supportIndex[f.Key()] = f.Support
	}
	for size := 2; size <= a.MaxItemsetSize && len(current) > 1; size++ {
		candidates := generateCandidates(current, size)
		var next [][]string
		for _, cand := range candidates {
			sup := supportOf(cand)
			if sup >= a.MinSupport {
				is := Itemset{Items: cand, Support: sup}
				frequent = append(frequent, is)
				supportIndex[is.Key()] = sup
				next = append(next, cand)
			}
		}
		current = next
	}

	// Rule generation from itemsets of size >= 2.
	var rules []Rule
	for _, is := range frequent {
		if len(is.Items) < 2 {
			continue
		}
		for _, split := range nonEmptySplits(is.Items) {
			antecedentSupport := supportIndex[Itemset{Items: split.antecedent}.Key()]
			consequentSupport := supportIndex[Itemset{Items: split.consequent}.Key()]
			if antecedentSupport == 0 {
				antecedentSupport = supportOf(split.antecedent)
			}
			if consequentSupport == 0 {
				consequentSupport = supportOf(split.consequent)
			}
			if antecedentSupport == 0 || consequentSupport == 0 {
				continue
			}
			conf := is.Support / antecedentSupport
			if conf < a.MinConfidence {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: split.antecedent,
				Consequent: split.consequent,
				Support:    is.Support,
				Confidence: conf,
				Lift:       conf / consequentSupport,
			})
		}
	}

	sort.Slice(frequent, func(i, j int) bool {
		if frequent[i].Support != frequent[j].Support {
			return frequent[i].Support > frequent[j].Support
		}
		return frequent[i].Key() < frequent[j].Key()
	})
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Lift != rules[j].Lift {
			return rules[i].Lift > rules[j].Lift
		}
		return rules[i].String() < rules[j].String()
	})
	return frequent, rules, nil
}

// generateCandidates joins frequent (size-1)-itemsets into size-itemsets,
// deduplicating by canonical key.
func generateCandidates(current [][]string, size int) [][]string {
	seen := map[string][]string{}
	for i := 0; i < len(current); i++ {
		for j := i + 1; j < len(current); j++ {
			union := map[string]bool{}
			for _, it := range current[i] {
				union[it] = true
			}
			for _, it := range current[j] {
				union[it] = true
			}
			if len(union) != size {
				continue
			}
			items := make([]string, 0, size)
			for it := range union {
				items = append(items, it)
			}
			sort.Strings(items)
			seen[strings.Join(items, ",")] = items
		}
	}
	out := make([][]string, 0, len(seen))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

type split struct {
	antecedent []string
	consequent []string
}

// nonEmptySplits enumerates all ways to split items into a non-empty
// antecedent and non-empty consequent.
func nonEmptySplits(items []string) []split {
	n := len(items)
	var out []split
	for mask := 1; mask < (1<<n)-1; mask++ {
		var a, c []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				a = append(a, items[i])
			} else {
				c = append(c, items[i])
			}
		}
		out = append(out, split{antecedent: a, consequent: c})
	}
	return out
}
