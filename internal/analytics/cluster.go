package analytics

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans clusters rows into K clusters with Lloyd's algorithm and k-means++
// style seeding (greedy farthest-point initialisation from a seeded RNG).
type KMeans struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds Lloyd iterations (default 100).
	MaxIterations int
	// Seed drives centroid initialisation.
	Seed int64

	centroids Matrix
	fitted    bool
}

// Centroids returns the fitted cluster centres.
func (m *KMeans) Centroids() Matrix {
	if !m.fitted {
		return nil
	}
	return m.centroids.Clone()
}

// Fit learns the centroids from x.
func (m *KMeans) Fit(x Matrix) error {
	if err := x.Validate(); err != nil {
		return err
	}
	if m.K < 1 {
		return fmt.Errorf("%w: K=%d", ErrBadParameter, m.K)
	}
	rows, _ := x.Dims()
	if m.K > rows {
		return fmt.Errorf("%w: K=%d exceeds %d rows", ErrBadParameter, m.K, rows)
	}
	if m.MaxIterations <= 0 {
		m.MaxIterations = 100
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.centroids = m.initCentroids(x, rng)
	assign := make([]int, rows)
	for iter := 0; iter < m.MaxIterations; iter++ {
		changed := false
		for i, row := range x {
			best := m.nearest(row)
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		m.recomputeCentroids(x, assign)
	}
	m.fitted = true
	return nil
}

func (m *KMeans) initCentroids(x Matrix, rng *rand.Rand) Matrix {
	rows, _ := x.Dims()
	centroids := make(Matrix, 0, m.K)
	first := rng.Intn(rows)
	centroids = append(centroids, append([]float64(nil), x[first]...))
	if m.K == 1 {
		return centroids
	}
	// dists[i] caches the distance from x[i] to its nearest chosen centroid.
	// Each round only folds in the newest centroid, so seeding runs O(K·N)
	// distance evaluations instead of recomputing every pairwise distance per
	// round. The running min folds centroids in the same order the full
	// recomputation scanned them, so the cached values (and the centroids
	// picked from them) are bit-identical to the pre-cache behaviour.
	dists := make([]float64, rows)
	for i, row := range x {
		dists[i] = euclidean(row, centroids[0])
	}
	for len(centroids) < m.K {
		// Pick the point farthest from its nearest chosen centroid — a
		// deterministic variant of k-means++.
		bestIdx, bestDist := 0, -1.0
		for i, d := range dists {
			if d > bestDist {
				bestDist = d
				bestIdx = i
			}
		}
		c := append([]float64(nil), x[bestIdx]...)
		centroids = append(centroids, c)
		if len(centroids) == m.K {
			break
		}
		for i, row := range x {
			if dd := euclidean(row, c); dd < dists[i] {
				dists[i] = dd
			}
		}
	}
	return centroids
}

func (m *KMeans) nearest(row []float64) int {
	best, bestDist := 0, math.Inf(1)
	for k, c := range m.centroids {
		if d := euclidean(row, c); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

func (m *KMeans) recomputeCentroids(x Matrix, assign []int) {
	_, cols := x.Dims()
	sums := make(Matrix, m.K)
	counts := make([]int, m.K)
	for k := range sums {
		sums[k] = make([]float64, cols)
	}
	for i, row := range x {
		k := assign[i]
		counts[k]++
		for j, v := range row {
			sums[k][j] += v
		}
	}
	for k := range sums {
		if counts[k] == 0 {
			continue // keep the previous centroid for empty clusters
		}
		for j := range sums[k] {
			sums[k][j] /= float64(counts[k])
		}
		m.centroids[k] = sums[k]
	}
}

// Predict returns the index of the closest centroid.
func (m *KMeans) Predict(row []float64) (int, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	if len(row) != len(m.centroids[0]) {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(row), len(m.centroids[0]))
	}
	return m.nearest(row), nil
}

// Assignments returns the cluster index of every row in x.
func (m *KMeans) Assignments(x Matrix) ([]int, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	out := make([]int, len(x))
	for i, row := range x {
		k, err := m.Predict(row)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}

// Inertia returns the total within-cluster sum of squared distances of x.
func (m *KMeans) Inertia(x Matrix) (float64, error) {
	if !m.fitted {
		return 0, ErrNotFitted
	}
	total := 0.0
	for _, row := range x {
		k := m.nearest(row)
		d := euclidean(row, m.centroids[k])
		total += d * d
	}
	return total, nil
}
