package analytics

import (
	"errors"
	"strings"
	"testing"
)

func basketTransactions() [][]string {
	// pasta appears with tomatoes in 4 of 5 pasta baskets.
	return [][]string{
		{"pasta", "tomatoes", "olive_oil"},
		{"pasta", "tomatoes"},
		{"pasta", "tomatoes", "wine"},
		{"pasta", "tomatoes", "bread"},
		{"pasta", "milk"},
		{"milk", "bread"},
		{"milk", "bread", "coffee"},
		{"coffee", "croissant"},
		{"coffee", "croissant", "chocolate"},
		{"wine", "cheese"},
	}
}

func TestAprioriFindsFrequentItemsets(t *testing.T) {
	a := &Apriori{MinSupport: 0.3, MinConfidence: 0.6}
	itemsets, rules, err := a.Mine(basketTransactions())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]float64{}
	for _, is := range itemsets {
		found[is.Key()] = is.Support
	}
	if found["pasta"] != 0.5 {
		t.Errorf("support(pasta) = %v, want 0.5", found["pasta"])
	}
	if found["pasta,tomatoes"] != 0.4 {
		t.Errorf("support(pasta,tomatoes) = %v, want 0.4", found["pasta,tomatoes"])
	}
	// The rule pasta => tomatoes must be produced with confidence 0.8.
	var pastaRule *Rule
	for i := range rules {
		r := rules[i]
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "pasta" &&
			len(r.Consequent) == 1 && r.Consequent[0] == "tomatoes" {
			pastaRule = &rules[i]
		}
	}
	if pastaRule == nil {
		t.Fatalf("rule pasta=>tomatoes not found in %v", rules)
	}
	if pastaRule.Confidence < 0.79 || pastaRule.Confidence > 0.81 {
		t.Errorf("confidence = %v, want 0.8", pastaRule.Confidence)
	}
	if pastaRule.Lift <= 1 {
		t.Errorf("lift = %v, want > 1 (tomatoes base support is 0.4)", pastaRule.Lift)
	}
	if !strings.Contains(pastaRule.String(), "pasta => tomatoes") {
		t.Errorf("rule string = %q", pastaRule.String())
	}
}

func TestAprioriSupportThresholdPrunes(t *testing.T) {
	strict := &Apriori{MinSupport: 0.45, MinConfidence: 0.5}
	itemsets, _, err := strict.Mine(basketTransactions())
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range itemsets {
		if is.Support < 0.45 {
			t.Errorf("itemset %v below the support threshold (%v)", is.Items, is.Support)
		}
		if len(is.Items) > 1 {
			t.Errorf("no 2-itemset reaches 0.45 support, got %v", is.Items)
		}
	}
}

func TestAprioriDefaultsAndErrors(t *testing.T) {
	if _, _, err := (&Apriori{}).Mine(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty transactions must fail")
	}
	a := &Apriori{}
	if _, _, err := a.Mine([][]string{{"a", "b"}, {"a"}, {"", "b"}}); err != nil {
		t.Fatalf("defaults mining failed: %v", err)
	}
	if a.MinSupport <= 0 || a.MinConfidence <= 0 || a.MaxItemsetSize <= 0 {
		t.Error("defaults must be applied")
	}
}

func TestAprioriResultsAreSorted(t *testing.T) {
	a := &Apriori{MinSupport: 0.1, MinConfidence: 0.1}
	itemsets, rules, err := a.Mine(basketTransactions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(itemsets); i++ {
		if itemsets[i].Support > itemsets[i-1].Support {
			t.Error("itemsets must be sorted by descending support")
			break
		}
	}
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Error("rules must be sorted by descending confidence")
			break
		}
	}
}

func TestItemsetKeyCanonical(t *testing.T) {
	a := Itemset{Items: []string{"b", "a"}}
	b := Itemset{Items: []string{"a", "b"}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestNonEmptySplits(t *testing.T) {
	splits := nonEmptySplits([]string{"a", "b", "c"})
	if len(splits) != 6 { // 2^3 - 2
		t.Errorf("splits = %d, want 6", len(splits))
	}
	for _, s := range splits {
		if len(s.antecedent) == 0 || len(s.consequent) == 0 {
			t.Error("splits must be non-empty on both sides")
		}
	}
}
