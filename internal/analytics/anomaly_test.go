package analytics

import (
	"errors"
	"math"
	"testing"
)

func seriesWithSpikes() ([]float64, []bool) {
	var values []float64
	var labels []bool
	for i := 0; i < 200; i++ {
		v := 10 + math.Sin(float64(i)/10)
		anomaly := i == 50 || i == 120 || i == 180
		if anomaly {
			v += 25
		}
		values = append(values, v)
		labels = append(labels, anomaly)
	}
	return values, labels
}

func TestZScoreDetector(t *testing.T) {
	values, labels := seriesWithSpikes()
	d := &ZScoreDetector{Threshold: 3}
	flagged, cm, err := DetectAnomalies(d, values, labels)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Recall() < 0.99 {
		t.Errorf("recall = %v, want all injected spikes found", cm.Recall())
	}
	if cm.Precision() < 0.5 {
		t.Errorf("precision = %v, too many false positives", cm.Precision())
	}
	if len(flagged) < 3 {
		t.Errorf("flagged = %d, want at least the 3 spikes", len(flagged))
	}
	if d.Name() != "zscore_detector" {
		t.Error("name mismatch")
	}
	score, err := d.Score(values[50])
	if err != nil || score <= 3 {
		t.Errorf("spike score = %v, %v", score, err)
	}
}

func TestZScoreDetectorErrors(t *testing.T) {
	d := &ZScoreDetector{}
	if _, err := d.IsAnomaly(1); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted detector must fail")
	}
	if err := d.Fit(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty fit must fail")
	}
	// Constant series must not divide by zero.
	if err := d.Fit([]float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if anomalous, err := d.IsAnomaly(5); err != nil || anomalous {
		t.Errorf("constant value flagged: %v, %v", anomalous, err)
	}
}

func TestIQRDetector(t *testing.T) {
	values, labels := seriesWithSpikes()
	d := &IQRDetector{}
	flagged, cm, err := DetectAnomalies(d, values, labels)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Recall() < 0.99 {
		t.Errorf("recall = %v, want all spikes found", cm.Recall())
	}
	if len(flagged) == 0 {
		t.Error("no anomalies flagged")
	}
	lower, upper, err := d.Bounds()
	if err != nil || lower >= upper {
		t.Errorf("bounds = %v..%v, %v", lower, upper, err)
	}
	if d.Name() != "iqr_detector" {
		t.Error("name mismatch")
	}
}

func TestIQRDetectorErrors(t *testing.T) {
	d := &IQRDetector{}
	if _, err := d.IsAnomaly(1); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted detector must fail")
	}
	if _, _, err := d.Bounds(); !errors.Is(err, ErrNotFitted) {
		t.Error("unfitted bounds must fail")
	}
	if err := d.Fit(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty fit must fail")
	}
}

func TestDetectAnomaliesValidation(t *testing.T) {
	if _, _, err := DetectAnomalies(nil, []float64{1}, nil); !errors.Is(err, ErrBadParameter) {
		t.Error("nil detector must fail")
	}
	if _, _, err := DetectAnomalies(&ZScoreDetector{}, []float64{1, 2}, []bool{true}); !errors.Is(err, ErrDimMismatch) {
		t.Error("mismatched labels must fail")
	}
	// nil labels are allowed: confusion matrix stays empty.
	_, cm, err := DetectAnomalies(&ZScoreDetector{}, []float64{1, 2, 3, 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 0 {
		t.Error("confusion matrix must stay empty without labels")
	}
}

func TestQuantileSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if q := quantileSorted(sorted, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := quantileSorted(sorted, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := quantileSorted(sorted, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := quantileSorted(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	// Interpolation between ranks.
	if q := quantileSorted([]float64{0, 10}, 0.25); math.Abs(q-2.5) > 1e-9 {
		t.Errorf("interpolated quantile = %v, want 2.5", q)
	}
}
