package analytics

import (
	"fmt"
	"math"
	"sort"
)

// AnomalyDetector scores univariate observations and flags outliers.
type AnomalyDetector interface {
	// Fit learns the reference distribution from values.
	Fit(values []float64) error
	// IsAnomaly reports whether v is an outlier with respect to the fitted
	// distribution.
	IsAnomaly(v float64) (bool, error)
	// Name identifies the detector in catalog listings.
	Name() string
}

// ZScoreDetector flags values whose z-score exceeds Threshold (default 3).
type ZScoreDetector struct {
	// Threshold in standard deviations (default 3).
	Threshold float64

	mean, std float64
	fitted    bool
}

// Name implements AnomalyDetector.
func (d *ZScoreDetector) Name() string { return "zscore_detector" }

// Fit implements AnomalyDetector.
func (d *ZScoreDetector) Fit(values []float64) error {
	if len(values) == 0 {
		return ErrNoData
	}
	if d.Threshold <= 0 {
		d.Threshold = 3
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	d.mean = sum / float64(len(values))
	varSum := 0.0
	for _, v := range values {
		diff := v - d.mean
		varSum += diff * diff
	}
	d.std = math.Sqrt(varSum / float64(len(values)))
	if d.std == 0 {
		d.std = 1e-12
	}
	d.fitted = true
	return nil
}

// Score returns the absolute z-score of v.
func (d *ZScoreDetector) Score(v float64) (float64, error) {
	if !d.fitted {
		return 0, ErrNotFitted
	}
	return math.Abs(v-d.mean) / d.std, nil
}

// IsAnomaly implements AnomalyDetector.
func (d *ZScoreDetector) IsAnomaly(v float64) (bool, error) {
	s, err := d.Score(v)
	if err != nil {
		return false, err
	}
	return s > d.Threshold, nil
}

// IQRDetector flags values outside [Q1 - K*IQR, Q3 + K*IQR] (default K=1.5).
type IQRDetector struct {
	// K is the whisker multiplier (default 1.5).
	K float64

	lower, upper float64
	fitted       bool
}

// Name implements AnomalyDetector.
func (d *IQRDetector) Name() string { return "iqr_detector" }

// Fit implements AnomalyDetector.
func (d *IQRDetector) Fit(values []float64) error {
	if len(values) == 0 {
		return ErrNoData
	}
	if d.K <= 0 {
		d.K = 1.5
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	q1 := quantileSorted(sorted, 0.25)
	q3 := quantileSorted(sorted, 0.75)
	iqr := q3 - q1
	d.lower = q1 - d.K*iqr
	d.upper = q3 + d.K*iqr
	d.fitted = true
	return nil
}

// Bounds returns the fitted inlier interval.
func (d *IQRDetector) Bounds() (lower, upper float64, err error) {
	if !d.fitted {
		return 0, 0, ErrNotFitted
	}
	return d.lower, d.upper, nil
}

// IsAnomaly implements AnomalyDetector.
func (d *IQRDetector) IsAnomaly(v float64) (bool, error) {
	if !d.fitted {
		return false, ErrNotFitted
	}
	return v < d.lower || v > d.upper, nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DetectAnomalies fits the detector on values and returns the indexes flagged
// as anomalous, plus the detection confusion matrix when ground-truth labels
// are provided (labels may be nil).
func DetectAnomalies(d AnomalyDetector, values []float64, labels []bool) ([]int, ConfusionMatrix, error) {
	var cm ConfusionMatrix
	if d == nil {
		return nil, cm, fmt.Errorf("%w: nil detector", ErrBadParameter)
	}
	if labels != nil && len(labels) != len(values) {
		return nil, cm, fmt.Errorf("%w: %d values, %d labels", ErrDimMismatch, len(values), len(labels))
	}
	if err := d.Fit(values); err != nil {
		return nil, cm, err
	}
	var flagged []int
	for i, v := range values {
		anomalous, err := d.IsAnomaly(v)
		if err != nil {
			return nil, cm, err
		}
		if anomalous {
			flagged = append(flagged, i)
		}
		if labels != nil {
			cm.Add(anomalous, labels[i])
		}
	}
	return flagged, cm, nil
}
