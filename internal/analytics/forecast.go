package analytics

import (
	"fmt"
	"math"
)

// Forecaster produces point forecasts for a univariate series.
type Forecaster interface {
	// Fit learns from the historical series.
	Fit(series []float64) error
	// Forecast returns the next h point forecasts.
	Forecast(h int) ([]float64, error)
	// Name identifies the forecaster in catalog listings.
	Name() string
}

// MovingAverageForecaster forecasts the mean of the last Window observations.
type MovingAverageForecaster struct {
	// Window size (default 24, one day of hourly readings).
	Window int

	level  float64
	fitted bool
}

// Name implements Forecaster.
func (f *MovingAverageForecaster) Name() string { return "moving_average" }

// Fit implements Forecaster.
func (f *MovingAverageForecaster) Fit(series []float64) error {
	if len(series) == 0 {
		return ErrNoData
	}
	if f.Window <= 0 {
		f.Window = 24
	}
	w := f.Window
	if w > len(series) {
		w = len(series)
	}
	sum := 0.0
	for _, v := range series[len(series)-w:] {
		sum += v
	}
	f.level = sum / float64(w)
	f.fitted = true
	return nil
}

// Forecast implements Forecaster: a flat forecast at the last window mean.
func (f *MovingAverageForecaster) Forecast(h int) ([]float64, error) {
	if !f.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadParameter, h)
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = f.level
	}
	return out, nil
}

// HoltWinters implements additive triple exponential smoothing with a fixed
// seasonal period, suitable for the smart-meter series (period 24 hours).
type HoltWinters struct {
	// Alpha, Beta, Gamma are the level, trend and seasonal smoothing factors
	// in (0,1); defaults 0.3, 0.05, 0.2.
	Alpha, Beta, Gamma float64
	// Period is the seasonal cycle length (default 24).
	Period int

	level    float64
	trend    float64
	seasonal []float64
	fitted   bool
}

// Name implements Forecaster.
func (f *HoltWinters) Name() string { return "holt_winters" }

func (f *HoltWinters) defaults() {
	if f.Alpha <= 0 || f.Alpha >= 1 {
		f.Alpha = 0.3
	}
	if f.Beta <= 0 || f.Beta >= 1 {
		f.Beta = 0.05
	}
	if f.Gamma <= 0 || f.Gamma >= 1 {
		f.Gamma = 0.2
	}
	if f.Period <= 0 {
		f.Period = 24
	}
}

// Fit implements Forecaster. The series must contain at least two full
// seasonal periods.
func (f *HoltWinters) Fit(series []float64) error {
	f.defaults()
	if len(series) < 2*f.Period {
		return fmt.Errorf("%w: need at least %d observations, got %d", ErrBadParameter, 2*f.Period, len(series))
	}
	p := f.Period
	// Initial level: mean of the first period. Initial trend: average
	// per-step change between the first two periods. Initial seasonal
	// components: deviations from the first-period mean.
	firstMean := mean(series[:p])
	secondMean := mean(series[p : 2*p])
	f.level = firstMean
	f.trend = (secondMean - firstMean) / float64(p)
	f.seasonal = make([]float64, p)
	for i := 0; i < p; i++ {
		f.seasonal[i] = series[i] - firstMean
	}
	for t := p; t < len(series); t++ {
		season := f.seasonal[t%p]
		prevLevel := f.level
		f.level = f.Alpha*(series[t]-season) + (1-f.Alpha)*(f.level+f.trend)
		f.trend = f.Beta*(f.level-prevLevel) + (1-f.Beta)*f.trend
		f.seasonal[t%p] = f.Gamma*(series[t]-f.level) + (1-f.Gamma)*season
	}
	f.fitted = true
	return nil
}

// Forecast implements Forecaster.
func (f *HoltWinters) Forecast(h int) ([]float64, error) {
	if !f.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadParameter, h)
	}
	out := make([]float64, h)
	for i := 1; i <= h; i++ {
		out[i-1] = f.level + float64(i)*f.trend + f.seasonal[(len(f.seasonal)+i-1)%f.Period]
	}
	return out, nil
}

func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// RMSE returns the root mean squared error between forecasts and actuals.
func RMSE(forecast, actual []float64) (float64, error) {
	if len(forecast) == 0 || len(forecast) != len(actual) {
		return 0, fmt.Errorf("%w: forecast %d vs actual %d", ErrDimMismatch, len(forecast), len(actual))
	}
	sum := 0.0
	for i := range forecast {
		d := forecast[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(forecast))), nil
}

// MAE returns the mean absolute error between forecasts and actuals.
func MAE(forecast, actual []float64) (float64, error) {
	if len(forecast) == 0 || len(forecast) != len(actual) {
		return 0, fmt.Errorf("%w: forecast %d vs actual %d", ErrDimMismatch, len(forecast), len(actual))
	}
	sum := 0.0
	for i := range forecast {
		sum += math.Abs(forecast[i] - actual[i])
	}
	return sum / float64(len(forecast)), nil
}

// BacktestForecaster evaluates a forecaster by holding out the last horizon
// points of the series, fitting on the rest, and returning the RMSE on the
// held-out suffix.
func BacktestForecaster(f Forecaster, series []float64, horizon int) (float64, error) {
	if f == nil {
		return 0, fmt.Errorf("%w: nil forecaster", ErrBadParameter)
	}
	if horizon <= 0 || horizon >= len(series) {
		return 0, fmt.Errorf("%w: horizon %d for series of %d", ErrBadParameter, horizon, len(series))
	}
	train := series[:len(series)-horizon]
	actual := series[len(series)-horizon:]
	if err := f.Fit(train); err != nil {
		return 0, fmt.Errorf("analytics: backtest fit %s: %w", f.Name(), err)
	}
	pred, err := f.Forecast(horizon)
	if err != nil {
		return 0, fmt.Errorf("analytics: backtest forecast %s: %w", f.Name(), err)
	}
	return RMSE(pred, actual)
}
