package analytics

import (
	"fmt"
	"sort"
	"time"
)

// Event is a single clickstream event used by the sessionizer.
type Event struct {
	UserID    int64
	URL       string
	At        time.Time
	Converted bool
}

// Session groups consecutive events of one user separated by gaps shorter
// than the sessionizer's timeout.
type Session struct {
	UserID    int64
	Start     time.Time
	End       time.Time
	Events    int
	Pages     []string
	Converted bool
}

// Duration returns the session's wall-clock span.
func (s Session) Duration() time.Duration { return s.End.Sub(s.Start) }

// Sessionizer splits per-user event streams into sessions.
type Sessionizer struct {
	// Timeout is the maximum inactivity gap inside a session (default 30m).
	Timeout time.Duration
}

// Sessionize groups events into sessions. Events may arrive in any order;
// they are sorted per user by timestamp first.
func (s *Sessionizer) Sessionize(events []Event) ([]Session, error) {
	if len(events) == 0 {
		return nil, ErrNoData
	}
	timeout := s.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Minute
	}
	byUser := map[int64][]Event{}
	for _, ev := range events {
		byUser[ev.UserID] = append(byUser[ev.UserID], ev)
	}
	users := make([]int64, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	var sessions []Session
	for _, u := range users {
		evs := byUser[u]
		sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
		var cur *Session
		for _, ev := range evs {
			if cur == nil || ev.At.Sub(cur.End) > timeout {
				if cur != nil {
					sessions = append(sessions, *cur)
				}
				cur = &Session{UserID: u, Start: ev.At, End: ev.At}
			}
			cur.End = ev.At
			cur.Events++
			cur.Pages = append(cur.Pages, ev.URL)
			cur.Converted = cur.Converted || ev.Converted
		}
		if cur != nil {
			sessions = append(sessions, *cur)
		}
	}
	return sessions, nil
}

// FunnelStep is one step of a conversion funnel report.
type FunnelStep struct {
	Page     string
	Sessions int
	Rate     float64 // fraction of all sessions reaching this step
}

// Funnel computes how many sessions touched each of the given pages, in order.
func Funnel(sessions []Session, steps []string) ([]FunnelStep, error) {
	if len(sessions) == 0 {
		return nil, ErrNoData
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w: funnel needs at least one step", ErrBadParameter)
	}
	out := make([]FunnelStep, len(steps))
	for i, page := range steps {
		count := 0
		for _, s := range sessions {
			for _, p := range s.Pages {
				if p == page {
					count++
					break
				}
			}
		}
		out[i] = FunnelStep{Page: page, Sessions: count, Rate: float64(count) / float64(len(sessions))}
	}
	return out, nil
}

// ConversionRate returns the fraction of sessions with a conversion event.
func ConversionRate(sessions []Session) float64 {
	if len(sessions) == 0 {
		return 0
	}
	converted := 0
	for _, s := range sessions {
		if s.Converted {
			converted++
		}
	}
	return float64(converted) / float64(len(sessions))
}
