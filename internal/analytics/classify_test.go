package analytics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// syntheticBinary builds a linearly separable-ish dataset: label is true when
// 2*x0 - x1 + noise > 0.
func syntheticBinary(n int, seed int64) (Matrix, []bool) {
	rng := rand.New(rand.NewSource(seed))
	x := make(Matrix, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64() * 2
		b := rng.NormFloat64() * 2
		x[i] = []float64{a, b}
		y[i] = 2*a-b+rng.NormFloat64()*0.3 > 0
	}
	return x, y
}

func accuracyOn(t *testing.T, m Classifier, x Matrix, y []bool) float64 {
	t.Helper()
	var cm ConfusionMatrix
	for i, row := range x {
		pred, err := m.Predict(row)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		cm.Add(pred, y[i])
	}
	return cm.Accuracy()
}

func TestLogisticRegressionLearnsSeparableData(t *testing.T) {
	x, y := syntheticBinary(500, 1)
	m := &LogisticRegression{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, m, x, y); acc < 0.9 {
		t.Errorf("training accuracy = %.3f, want >= 0.9", acc)
	}
	p, err := m.PredictProba([]float64{3, -3})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 {
		t.Errorf("strongly positive point got probability %v", p)
	}
	if m.Name() != "logistic_regression" {
		t.Error("name mismatch")
	}
}

func TestLogisticRegressionErrors(t *testing.T) {
	m := &LogisticRegression{}
	if _, err := m.Predict([]float64{1, 2}); !errors.Is(err, ErrNotFitted) {
		t.Error("predict before fit must fail")
	}
	x, y := syntheticBinary(20, 2)
	if err := m.Fit(x, y[:10]); !errors.Is(err, ErrDimMismatch) {
		t.Error("mismatched labels must fail")
	}
	if err := m.Fit(Matrix{}, nil); !errors.Is(err, ErrNoData) {
		t.Error("empty training set must fail")
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Error("wrong width prediction must fail")
	}
}

func TestNaiveBayes(t *testing.T) {
	x, y := syntheticBinary(500, 3)
	m := &NaiveBayes{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, m, x, y); acc < 0.8 {
		t.Errorf("training accuracy = %.3f, want >= 0.8", acc)
	}
	if m.Name() != "naive_bayes" {
		t.Error("name mismatch")
	}
}

func TestNaiveBayesErrors(t *testing.T) {
	m := &NaiveBayes{}
	if _, err := m.Predict([]float64{0, 0}); !errors.Is(err, ErrNotFitted) {
		t.Error("predict before fit must fail")
	}
	// Single-class training data is rejected.
	x := Matrix{{1, 2}, {3, 4}}
	if err := m.Fit(x, []bool{true, true}); !errors.Is(err, ErrBadParameter) {
		t.Errorf("single-class err = %v", err)
	}
	xOK, yOK := syntheticBinary(50, 4)
	if err := m.Fit(xOK, yOK); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Error("wrong width prediction must fail")
	}
}

func TestDecisionStump(t *testing.T) {
	// Perfectly splittable on feature 0 at threshold ~0.
	x := Matrix{{-2, 5}, {-1, -5}, {-0.5, 2}, {0.5, -2}, {1, 7}, {2, 0}}
	y := []bool{true, true, true, false, false, false}
	m := &DecisionStump{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOn(t, m, x, y); acc < 0.99 {
		t.Errorf("stump accuracy on separable data = %.3f, want 1.0", acc)
	}
	if m.Name() != "decision_stump" {
		t.Error("name mismatch")
	}
	if _, err := (&DecisionStump{}).Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Error("predict before fit must fail")
	}
}

func TestDecisionStumpConstantFeature(t *testing.T) {
	x := Matrix{{1.0}, {1.0}, {1.0}}
	y := []bool{true, true, false}
	m := &DecisionStump{}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1.0}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityClassifier(t *testing.T) {
	m := &MajorityClassifier{}
	if _, err := m.Predict(nil); !errors.Is(err, ErrNotFitted) {
		t.Error("predict before fit must fail")
	}
	x := Matrix{{1}, {2}, {3}}
	if err := m.Fit(x, []bool{true, true, false}); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict([]float64{99})
	if err != nil || pred != true {
		t.Errorf("majority prediction = %v, %v; want true", pred, err)
	}
	if m.Name() != "majority_baseline" {
		t.Error("name mismatch")
	}
}

func TestConfusionMatrix(t *testing.T) {
	var cm ConfusionMatrix
	cm.Add(true, true)   // TP
	cm.Add(true, false)  // FP
	cm.Add(false, false) // TN
	cm.Add(false, true)  // FN
	cm.Add(true, true)   // TP
	if cm.TP != 2 || cm.FP != 1 || cm.TN != 1 || cm.FN != 1 {
		t.Fatalf("cm = %+v", cm)
	}
	if cm.Total() != 5 {
		t.Errorf("total = %d", cm.Total())
	}
	if math.Abs(cm.Accuracy()-0.6) > 1e-9 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
	if math.Abs(cm.Precision()-2.0/3) > 1e-9 {
		t.Errorf("precision = %v", cm.Precision())
	}
	if math.Abs(cm.Recall()-2.0/3) > 1e-9 {
		t.Errorf("recall = %v", cm.Recall())
	}
	if math.Abs(cm.F1()-2.0/3) > 1e-9 {
		t.Errorf("f1 = %v", cm.F1())
	}
	var empty ConfusionMatrix
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty matrix metrics must be 0")
	}
}

func TestEvaluateAndModelRanking(t *testing.T) {
	x, y := syntheticBinary(600, 9)
	fs := &FeatureSet{Columns: []string{"a", "b"}, X: x, Labels: y}
	train, test, err := fs.Split(0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	logit, err := Evaluate(&LogisticRegression{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Evaluate(&MajorityClassifier{}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if logit.Accuracy() <= baseline.Accuracy() {
		t.Errorf("logistic regression (%.3f) must beat majority baseline (%.3f)",
			logit.Accuracy(), baseline.Accuracy())
	}
	if _, err := Evaluate(nil, train, test); !errors.Is(err, ErrBadParameter) {
		t.Error("nil model must fail")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := syntheticBinary(200, 21)
	fs := &FeatureSet{X: x, Labels: y}
	acc, err := CrossValidate(func() Classifier { return &LogisticRegression{Epochs: 50} }, fs, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("cv accuracy = %.3f, want >= 0.8", acc)
	}
	if _, err := CrossValidate(func() Classifier { return &NaiveBayes{} }, fs, 1, 3); !errors.Is(err, ErrBadParameter) {
		t.Error("folds < 2 must fail")
	}
	if _, err := CrossValidate(func() Classifier { return &NaiveBayes{} }, &FeatureSet{}, 2, 3); !errors.Is(err, ErrNoData) {
		t.Error("empty feature set must fail")
	}
}
