package analytics

import (
	"errors"
	"math"
	"testing"
)

// dailySeries builds a sinusoidal daily pattern with a slight upward trend.
func dailySeries(days int) []float64 {
	var out []float64
	for h := 0; h < days*24; h++ {
		seasonal := math.Sin(float64(h%24) / 24 * 2 * math.Pi)
		trend := float64(h) * 0.001
		out = append(out, 5+2*seasonal+trend)
	}
	return out
}

func TestMovingAverageForecaster(t *testing.T) {
	f := &MovingAverageForecaster{Window: 24}
	series := dailySeries(5)
	if err := f.Fit(series); err != nil {
		t.Fatal(err)
	}
	pred, err := f.Forecast(12)
	if err != nil || len(pred) != 12 {
		t.Fatalf("forecast = %v, %v", pred, err)
	}
	// Flat forecast: every point equals the window mean.
	for _, p := range pred[1:] {
		if p != pred[0] {
			t.Error("moving average forecast must be flat")
			break
		}
	}
	if f.Name() != "moving_average" {
		t.Error("name mismatch")
	}
}

func TestMovingAverageErrors(t *testing.T) {
	f := &MovingAverageForecaster{}
	if _, err := f.Forecast(3); !errors.Is(err, ErrNotFitted) {
		t.Error("forecast before fit must fail")
	}
	if err := f.Fit(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty series must fail")
	}
	if err := f.Fit([]float64{1, 2}); err != nil { // window longer than series
		t.Fatal(err)
	}
	if _, err := f.Forecast(0); !errors.Is(err, ErrBadParameter) {
		t.Error("zero horizon must fail")
	}
}

func TestHoltWintersTracksSeasonality(t *testing.T) {
	series := dailySeries(7)
	horizon := 24
	hw := &HoltWinters{Period: 24}
	ma := &MovingAverageForecaster{Window: 24}

	hwErr, err := BacktestForecaster(hw, series, horizon)
	if err != nil {
		t.Fatal(err)
	}
	maErr, err := BacktestForecaster(ma, series, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if hwErr >= maErr {
		t.Errorf("Holt-Winters RMSE %.3f must beat moving average %.3f on a seasonal series", hwErr, maErr)
	}
	if hw.Name() != "holt_winters" {
		t.Error("name mismatch")
	}
}

func TestHoltWintersErrors(t *testing.T) {
	hw := &HoltWinters{Period: 24}
	if err := hw.Fit(dailySeries(1)); !errors.Is(err, ErrBadParameter) {
		t.Error("series shorter than 2 periods must fail")
	}
	if _, err := hw.Forecast(3); !errors.Is(err, ErrNotFitted) {
		t.Error("forecast before fit must fail")
	}
	if err := hw.Fit(dailySeries(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Forecast(-1); !errors.Is(err, ErrBadParameter) {
		t.Error("negative horizon must fail")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	f := []float64{1, 2, 3}
	a := []float64{1, 2, 5}
	rmse, err := RMSE(f, a)
	if err != nil || math.Abs(rmse-math.Sqrt(4.0/3)) > 1e-9 {
		t.Errorf("rmse = %v, %v", rmse, err)
	}
	mae, err := MAE(f, a)
	if err != nil || math.Abs(mae-2.0/3) > 1e-9 {
		t.Errorf("mae = %v, %v", mae, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimMismatch) {
		t.Error("length mismatch must fail")
	}
	if _, err := MAE(nil, nil); !errors.Is(err, ErrDimMismatch) {
		t.Error("empty inputs must fail")
	}
}

func TestBacktestForecasterValidation(t *testing.T) {
	if _, err := BacktestForecaster(nil, dailySeries(3), 5); !errors.Is(err, ErrBadParameter) {
		t.Error("nil forecaster must fail")
	}
	if _, err := BacktestForecaster(&MovingAverageForecaster{}, dailySeries(1), 0); !errors.Is(err, ErrBadParameter) {
		t.Error("zero horizon must fail")
	}
	if _, err := BacktestForecaster(&MovingAverageForecaster{}, []float64{1, 2}, 5); !errors.Is(err, ErrBadParameter) {
		t.Error("horizon >= series length must fail")
	}
	if _, err := BacktestForecaster(&HoltWinters{Period: 24}, dailySeries(1), 2); err == nil {
		t.Error("fit errors must propagate")
	}
}

func TestMeanHelper(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean of empty slice must be 0")
	}
	if mean([]float64{2, 4}) != 3 {
		t.Error("mean misbehaves")
	}
}
