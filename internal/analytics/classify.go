package analytics

import (
	"fmt"
	"math"
	"math/rand"
)

// Classifier is the common interface of the supervised models in the catalog.
type Classifier interface {
	// Fit trains the model on features x and boolean labels y.
	Fit(x Matrix, y []bool) error
	// Predict returns the predicted label for one feature vector.
	Predict(row []float64) (bool, error)
	// Name identifies the model in catalog listings and reports.
	Name() string
}

// checkTrainingInput validates the (x, y) pair shared by every classifier.
func checkTrainingInput(x Matrix, y []bool) error {
	if err := x.Validate(); err != nil {
		return err
	}
	if len(y) != len(x) {
		return fmt.Errorf("%w: %d rows, %d labels", ErrDimMismatch, len(x), len(y))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

// LogisticRegression is a binary classifier trained with mini-batch free,
// full-gradient descent plus L2 regularisation.
type LogisticRegression struct {
	// LearningRate of the gradient steps (default 0.1).
	LearningRate float64
	// Epochs of training (default 200).
	Epochs int
	// L2 regularisation strength (default 0.001).
	L2 float64
	// Threshold above which the positive class is predicted (default 0.5).
	Threshold float64

	weights []float64
	bias    float64
	scaler  *Scaler
}

// Name implements Classifier.
func (m *LogisticRegression) Name() string { return "logistic_regression" }

func (m *LogisticRegression) defaults() {
	if m.LearningRate <= 0 {
		m.LearningRate = 0.1
	}
	if m.Epochs <= 0 {
		m.Epochs = 200
	}
	if m.L2 < 0 {
		m.L2 = 0
	} else if m.L2 == 0 {
		m.L2 = 0.001
	}
	if m.Threshold <= 0 || m.Threshold >= 1 {
		m.Threshold = 0.5
	}
}

// Fit implements Classifier.
func (m *LogisticRegression) Fit(x Matrix, y []bool) error {
	if err := checkTrainingInput(x, y); err != nil {
		return err
	}
	m.defaults()
	scaler, err := FitScaler(x)
	if err != nil {
		return err
	}
	m.scaler = scaler
	xs, err := scaler.Transform(x)
	if err != nil {
		return err
	}
	_, cols := xs.Dims()
	m.weights = make([]float64, cols)
	m.bias = 0
	n := float64(len(xs))
	for epoch := 0; epoch < m.Epochs; epoch++ {
		gradW := make([]float64, cols)
		gradB := 0.0
		for i, row := range xs {
			p := sigmoid(dot(m.weights, row) + m.bias)
			target := 0.0
			if y[i] {
				target = 1
			}
			diff := p - target
			for j, v := range row {
				gradW[j] += diff * v
			}
			gradB += diff
		}
		for j := range m.weights {
			m.weights[j] -= m.LearningRate * (gradW[j]/n + m.L2*m.weights[j])
		}
		m.bias -= m.LearningRate * gradB / n
	}
	return nil
}

// PredictProba returns the estimated probability of the positive class.
func (m *LogisticRegression) PredictProba(row []float64) (float64, error) {
	if m.weights == nil || m.scaler == nil {
		return 0, ErrNotFitted
	}
	if len(row) != len(m.weights) {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(row), len(m.weights))
	}
	sr, err := m.scaler.TransformRow(row)
	if err != nil {
		return 0, err
	}
	return sigmoid(dot(m.weights, sr) + m.bias), nil
}

// Predict implements Classifier.
func (m *LogisticRegression) Predict(row []float64) (bool, error) {
	p, err := m.PredictProba(row)
	if err != nil {
		return false, err
	}
	return p >= m.Threshold, nil
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ---------------------------------------------------------------------------
// Gaussian naive Bayes
// ---------------------------------------------------------------------------

// NaiveBayes is a Gaussian naive Bayes binary classifier.
type NaiveBayes struct {
	priorPos, priorNeg float64
	meanPos, meanNeg   []float64
	varPos, varNeg     []float64
	fitted             bool
}

// Name implements Classifier.
func (m *NaiveBayes) Name() string { return "naive_bayes" }

// Fit implements Classifier.
func (m *NaiveBayes) Fit(x Matrix, y []bool) error {
	if err := checkTrainingInput(x, y); err != nil {
		return err
	}
	_, cols := x.Dims()
	m.meanPos = make([]float64, cols)
	m.meanNeg = make([]float64, cols)
	m.varPos = make([]float64, cols)
	m.varNeg = make([]float64, cols)
	nPos, nNeg := 0.0, 0.0
	for i, row := range x {
		if y[i] {
			nPos++
			for j, v := range row {
				m.meanPos[j] += v
			}
		} else {
			nNeg++
			for j, v := range row {
				m.meanNeg[j] += v
			}
		}
	}
	if nPos == 0 || nNeg == 0 {
		return fmt.Errorf("%w: training data must contain both classes", ErrBadParameter)
	}
	for j := 0; j < cols; j++ {
		m.meanPos[j] /= nPos
		m.meanNeg[j] /= nNeg
	}
	for i, row := range x {
		for j, v := range row {
			if y[i] {
				d := v - m.meanPos[j]
				m.varPos[j] += d * d
			} else {
				d := v - m.meanNeg[j]
				m.varNeg[j] += d * d
			}
		}
	}
	const varianceFloor = 1e-6
	for j := 0; j < cols; j++ {
		m.varPos[j] = math.Max(m.varPos[j]/nPos, varianceFloor)
		m.varNeg[j] = math.Max(m.varNeg[j]/nNeg, varianceFloor)
	}
	m.priorPos = nPos / (nPos + nNeg)
	m.priorNeg = nNeg / (nPos + nNeg)
	m.fitted = true
	return nil
}

// Predict implements Classifier.
func (m *NaiveBayes) Predict(row []float64) (bool, error) {
	if !m.fitted {
		return false, ErrNotFitted
	}
	if len(row) != len(m.meanPos) {
		return false, fmt.Errorf("%w: got %d features, want %d", ErrDimMismatch, len(row), len(m.meanPos))
	}
	logPos := math.Log(m.priorPos)
	logNeg := math.Log(m.priorNeg)
	for j, v := range row {
		logPos += gaussianLogPDF(v, m.meanPos[j], m.varPos[j])
		logNeg += gaussianLogPDF(v, m.meanNeg[j], m.varNeg[j])
	}
	return logPos >= logNeg, nil
}

func gaussianLogPDF(x, mean, variance float64) float64 {
	return -0.5*math.Log(2*math.Pi*variance) - (x-mean)*(x-mean)/(2*variance)
}

// ---------------------------------------------------------------------------
// Decision stump (one-level decision tree)
// ---------------------------------------------------------------------------

// DecisionStump is a single-split decision tree: cheap, interpretable and the
// weakest learner in the catalog. It exists to give the planner a genuinely
// lower-quality/lower-cost alternative to compare against.
type DecisionStump struct {
	feature   int
	threshold float64
	// leftPositive is the prediction when value < threshold.
	leftPositive bool
	fitted       bool
}

// Name implements Classifier.
func (m *DecisionStump) Name() string { return "decision_stump" }

// Fit implements Classifier. It scans every feature and a set of candidate
// thresholds, choosing the split with the lowest misclassification error.
func (m *DecisionStump) Fit(x Matrix, y []bool) error {
	if err := checkTrainingInput(x, y); err != nil {
		return err
	}
	rows, cols := x.Dims()
	bestErr := math.Inf(1)
	for j := 0; j < cols; j++ {
		// Candidate thresholds: feature quantiles at 10% steps.
		values := make([]float64, rows)
		for i := range x {
			values[i] = x[i][j]
		}
		for _, thr := range candidateThresholds(values) {
			for _, leftPos := range []bool{true, false} {
				miss := 0
				for i := range x {
					pred := leftPos
					if x[i][j] >= thr {
						pred = !leftPos
					}
					if pred != y[i] {
						miss++
					}
				}
				errRate := float64(miss) / float64(rows)
				if errRate < bestErr {
					bestErr = errRate
					m.feature = j
					m.threshold = thr
					m.leftPositive = leftPos
				}
			}
		}
	}
	m.fitted = true
	return nil
}

func candidateThresholds(values []float64) []float64 {
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if minV == maxV {
		return []float64{minV}
	}
	const steps = 10
	out := make([]float64, 0, steps)
	for i := 1; i <= steps; i++ {
		out = append(out, minV+(maxV-minV)*float64(i)/float64(steps+1))
	}
	return out
}

// Predict implements Classifier.
func (m *DecisionStump) Predict(row []float64) (bool, error) {
	if !m.fitted {
		return false, ErrNotFitted
	}
	if m.feature >= len(row) {
		return false, fmt.Errorf("%w: stump split on feature %d, row has %d", ErrDimMismatch, m.feature, len(row))
	}
	if row[m.feature] < m.threshold {
		return m.leftPositive, nil
	}
	return !m.leftPositive, nil
}

// ---------------------------------------------------------------------------
// Majority baseline
// ---------------------------------------------------------------------------

// MajorityClassifier always predicts the most frequent training label; it is
// the floor any real model must beat and the "manual shortcut" baseline in the
// Labs scoring.
type MajorityClassifier struct {
	positive bool
	fitted   bool
}

// Name implements Classifier.
func (m *MajorityClassifier) Name() string { return "majority_baseline" }

// Fit implements Classifier.
func (m *MajorityClassifier) Fit(x Matrix, y []bool) error {
	if err := checkTrainingInput(x, y); err != nil {
		return err
	}
	pos := 0
	for _, v := range y {
		if v {
			pos++
		}
	}
	m.positive = pos*2 >= len(y)
	m.fitted = true
	return nil
}

// Predict implements Classifier.
func (m *MajorityClassifier) Predict(row []float64) (bool, error) {
	if !m.fitted {
		return false, ErrNotFitted
	}
	return m.positive, nil
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

// ConfusionMatrix summarises binary classification outcomes.
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Add records one (predicted, actual) outcome.
func (c *ConfusionMatrix) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded outcomes.
func (c ConfusionMatrix) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is (TP+TN)/total, 0 when empty.
func (c ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision is TP/(TP+FP), 0 when undefined.
func (c ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN), 0 when undefined.
func (c ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c ConfusionMatrix) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate fits the classifier on the training set and scores it on the test
// set, returning the confusion matrix.
func Evaluate(model Classifier, train, test *FeatureSet) (ConfusionMatrix, error) {
	var cm ConfusionMatrix
	if model == nil || train == nil || test == nil {
		return cm, fmt.Errorf("%w: nil model or dataset", ErrBadParameter)
	}
	if err := model.Fit(train.X, train.Labels); err != nil {
		return cm, fmt.Errorf("analytics: fit %s: %w", model.Name(), err)
	}
	if len(test.X) != len(test.Labels) {
		return cm, fmt.Errorf("%w: test set labels", ErrDimMismatch)
	}
	for i, row := range test.X {
		pred, err := model.Predict(row)
		if err != nil {
			return cm, fmt.Errorf("analytics: predict %s: %w", model.Name(), err)
		}
		cm.Add(pred, test.Labels[i])
	}
	return cm, nil
}

// CrossValidate runs k-fold cross validation and returns the mean accuracy.
// The fold assignment is deterministic for a given seed.
func CrossValidate(newModel func() Classifier, fs *FeatureSet, folds int, seed int64) (float64, error) {
	if fs == nil || len(fs.X) == 0 {
		return 0, ErrNoData
	}
	if folds < 2 || folds > len(fs.X) {
		return 0, fmt.Errorf("%w: folds=%d for %d rows", ErrBadParameter, folds, len(fs.X))
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(fs.X))
	total := 0.0
	for f := 0; f < folds; f++ {
		train := &FeatureSet{Columns: fs.Columns}
		test := &FeatureSet{Columns: fs.Columns}
		for i, idx := range perm {
			dst := train
			if i%folds == f {
				dst = test
			}
			dst.X = append(dst.X, fs.X[idx])
			dst.Labels = append(dst.Labels, fs.Labels[idx])
		}
		cm, err := Evaluate(newModel(), train, test)
		if err != nil {
			return 0, err
		}
		total += cm.Accuracy()
	}
	return total / float64(folds), nil
}
