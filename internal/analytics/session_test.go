package analytics

import (
	"errors"
	"testing"
	"time"
)

func clickEvents() []Event {
	t0 := time.Date(2017, 3, 1, 10, 0, 0, 0, time.UTC)
	return []Event{
		// user 1, session 1: three events within minutes, converts.
		{UserID: 1, URL: "/", At: t0},
		{UserID: 1, URL: "/catalog", At: t0.Add(2 * time.Minute)},
		{UserID: 1, URL: "/checkout", At: t0.Add(5 * time.Minute), Converted: true},
		// user 1, session 2: after a 3 hour gap.
		{UserID: 1, URL: "/help", At: t0.Add(3 * time.Hour)},
		// user 2, single session, out of order on purpose.
		{UserID: 2, URL: "/cart", At: t0.Add(10 * time.Minute)},
		{UserID: 2, URL: "/", At: t0.Add(1 * time.Minute)},
	}
}

func TestSessionize(t *testing.T) {
	s := &Sessionizer{Timeout: 30 * time.Minute}
	sessions, err := s.Sessionize(clickEvents())
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 3 {
		t.Fatalf("sessions = %d, want 3: %+v", len(sessions), sessions)
	}
	// First session of user 1.
	first := sessions[0]
	if first.UserID != 1 || first.Events != 3 || !first.Converted {
		t.Errorf("first session = %+v", first)
	}
	if first.Duration() != 5*time.Minute {
		t.Errorf("first session duration = %v, want 5m", first.Duration())
	}
	// Second session of user 1 must not inherit conversion.
	second := sessions[1]
	if second.UserID != 1 || second.Converted || second.Events != 1 {
		t.Errorf("second session = %+v", second)
	}
	// User 2's events must be re-ordered by time.
	third := sessions[2]
	if third.UserID != 2 || third.Pages[0] != "/" || third.Pages[1] != "/cart" {
		t.Errorf("third session pages = %v", third.Pages)
	}
}

func TestSessionizeDefaultsAndErrors(t *testing.T) {
	s := &Sessionizer{}
	if _, err := s.Sessionize(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty events must fail")
	}
	// Default 30m timeout: two events 20 minutes apart share a session.
	t0 := time.Now().UTC()
	sessions, err := s.Sessionize([]Event{
		{UserID: 1, URL: "/", At: t0},
		{UserID: 1, URL: "/b", At: t0.Add(20 * time.Minute)},
	})
	if err != nil || len(sessions) != 1 {
		t.Errorf("sessions = %v, %v", sessions, err)
	}
}

func TestFunnelAndConversionRate(t *testing.T) {
	s := &Sessionizer{Timeout: 30 * time.Minute}
	sessions, err := s.Sessionize(clickEvents())
	if err != nil {
		t.Fatal(err)
	}
	funnel, err := Funnel(sessions, []string{"/", "/catalog", "/checkout"})
	if err != nil {
		t.Fatal(err)
	}
	if funnel[0].Sessions != 2 { // user1 session1 and user2 session
		t.Errorf("step / sessions = %d, want 2", funnel[0].Sessions)
	}
	if funnel[2].Sessions != 1 {
		t.Errorf("step /checkout sessions = %d, want 1", funnel[2].Sessions)
	}
	if funnel[0].Rate <= funnel[2].Rate {
		t.Error("funnel rates must narrow towards checkout")
	}
	if got := ConversionRate(sessions); got <= 0.3 || got >= 0.4 {
		t.Errorf("conversion rate = %v, want 1/3", got)
	}
	if ConversionRate(nil) != 0 {
		t.Error("conversion rate of no sessions must be 0")
	}
	if _, err := Funnel(nil, []string{"/"}); !errors.Is(err, ErrNoData) {
		t.Error("empty sessions must fail")
	}
	if _, err := Funnel(sessions, nil); !errors.Is(err, ErrBadParameter) {
		t.Error("empty steps must fail")
	}
}
