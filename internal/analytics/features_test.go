package analytics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataflow"
	"repro/internal/storage"
)

func labelledResult() *dataflow.Result {
	schema := storage.MustSchema(
		storage.Field{Name: "a", Type: storage.TypeFloat},
		storage.Field{Name: "b", Type: storage.TypeFloat},
		storage.Field{Name: "y", Type: storage.TypeBool},
	)
	rows := []storage.Row{
		{1.0, 2.0, true},
		{2.0, 1.0, false},
		{3.0, 4.0, true},
		{4.0, 3.0, false},
		{5.0, 6.0, true},
		{6.0, 5.0, false},
	}
	return &dataflow.Result{Schema: schema, Rows: rows}
}

func TestMatrixValidate(t *testing.T) {
	if err := (Matrix{}).Validate(); !errors.Is(err, ErrNoData) {
		t.Errorf("empty matrix err = %v", err)
	}
	if err := (Matrix{{1, 2}, {3}}).Validate(); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("ragged matrix err = %v", err)
	}
	if err := (Matrix{{1, 2}, {3, 4}}).Validate(); err != nil {
		t.Errorf("valid matrix err = %v", err)
	}
	r, c := (Matrix{{1, 2, 3}}).Dims()
	if r != 1 || c != 3 {
		t.Errorf("dims = %d,%d", r, c)
	}
}

func TestMatrixClone(t *testing.T) {
	m := Matrix{{1, 2}, {3, 4}}
	c := m.Clone()
	c[0][0] = 99
	if m[0][0] != 1 {
		t.Error("Clone must not alias rows")
	}
}

func TestExtractFeatures(t *testing.T) {
	res := labelledResult()
	fs, err := ExtractFeatures(res, []string{"a", "b"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.X) != 6 || len(fs.Labels) != 6 || len(fs.Columns) != 2 {
		t.Fatalf("feature set = %+v", fs)
	}
	if fs.X[0][0] != 1.0 || fs.X[0][1] != 2.0 || fs.Labels[0] != true {
		t.Errorf("first row = %v label=%v", fs.X[0], fs.Labels[0])
	}

	unlabelled, err := ExtractFeatures(res, []string{"a"}, "")
	if err != nil || unlabelled.Labels != nil {
		t.Errorf("unlabelled extraction = %+v, %v", unlabelled, err)
	}

	if _, err := ExtractFeatures(nil, []string{"a"}, ""); !errors.Is(err, ErrNoData) {
		t.Error("nil result must fail with ErrNoData")
	}
	if _, err := ExtractFeatures(res, nil, ""); !errors.Is(err, ErrBadParameter) {
		t.Error("no feature columns must fail")
	}
	if _, err := ExtractFeatures(res, []string{"ghost"}, ""); !errors.Is(err, ErrMissingColumn) {
		t.Error("unknown feature column must fail")
	}
	if _, err := ExtractFeatures(res, []string{"a"}, "ghost"); !errors.Is(err, ErrMissingColumn) {
		t.Error("unknown label column must fail")
	}
}

func TestExtractFeaturesFromTable(t *testing.T) {
	tbl, err := storage.NewTable("t", storage.MustSchema(
		storage.Field{Name: "x", Type: storage.TypeFloat},
		storage.Field{Name: "y", Type: storage.TypeBool},
	))
	if err != nil {
		t.Fatal(err)
	}
	_ = tbl.Append(storage.Row{1.5, true})
	fs, err := ExtractFeaturesFromTable(tbl, []string{"x"}, "y")
	if err != nil || len(fs.X) != 1 {
		t.Fatalf("fs = %+v, %v", fs, err)
	}
	empty, _ := storage.NewTable("e", tbl.Schema())
	if _, err := ExtractFeaturesFromTable(empty, []string{"x"}, ""); !errors.Is(err, ErrNoData) {
		t.Error("empty table must fail with ErrNoData")
	}
}

func TestSplit(t *testing.T) {
	fs, _ := ExtractFeatures(labelledResult(), []string{"a", "b"}, "y")
	train, test, err := fs.Split(0.33, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.X)+len(test.X) != 6 {
		t.Errorf("split sizes %d + %d != 6", len(train.X), len(test.X))
	}
	if len(test.X) != 1 { // floor(6*0.33) = 1
		t.Errorf("test size = %d, want 1", len(test.X))
	}
	if len(train.Labels) != len(train.X) || len(test.Labels) != len(test.X) {
		t.Error("labels must follow their rows")
	}
	// Determinism.
	train2, test2, _ := fs.Split(0.33, 7)
	if len(train2.X) != len(train.X) || len(test2.X) != len(test.X) {
		t.Error("same seed must give same split sizes")
	}
	if _, _, err := fs.Split(1.0, 1); !errors.Is(err, ErrBadParameter) {
		t.Error("fraction 1.0 must be rejected")
	}
	var nilFS *FeatureSet
	if _, _, err := nilFS.Split(0.5, 1); !errors.Is(err, ErrNoData) {
		t.Error("nil feature set must fail")
	}
}

func TestScaler(t *testing.T) {
	x := Matrix{{1, 10}, {2, 20}, {3, 30}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean[0]-2) > 1e-9 || math.Abs(s.Mean[1]-20) > 1e-9 {
		t.Errorf("means = %v", s.Mean)
	}
	xt, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	// Transformed columns must have approx zero mean.
	for j := 0; j < 2; j++ {
		sum := 0.0
		for i := range xt {
			sum += xt[i][j]
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("column %d mean after scaling = %v", j, sum/3)
		}
	}
	if _, err := s.Transform(Matrix{{1}}); !errors.Is(err, ErrDimMismatch) {
		t.Error("dimension mismatch must fail")
	}
	var nilScaler *Scaler
	if _, err := nilScaler.Transform(x); !errors.Is(err, ErrNotFitted) {
		t.Error("nil scaler must fail")
	}
	if _, err := FitScaler(Matrix{}); err == nil {
		t.Error("empty matrix must fail")
	}
	// Constant columns must not divide by zero.
	cs, err := FitScaler(Matrix{{5}, {5}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	row, err := cs.TransformRow([]float64{5})
	if err != nil || math.IsNaN(row[0]) || math.IsInf(row[0], 0) {
		t.Errorf("constant column transform = %v, %v", row, err)
	}
}

// Property: scaling preserves the number of rows and columns and produces
// finite values for finite inputs.
func TestScalerPropertyShapePreserved(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		var x Matrix
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := raw[i], raw[i+1]
			if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
				math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
				return true
			}
			x = append(x, []float64{a, b})
		}
		s, err := FitScaler(x)
		if err != nil {
			return false
		}
		xt, err := s.Transform(x)
		if err != nil || len(xt) != len(x) {
			return false
		}
		for _, row := range xt {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
