package analytics

import (
	"errors"
	"math/rand"
	"testing"
)

// threeBlobs generates three well-separated Gaussian blobs.
func threeBlobs(perBlob int, seed int64) (Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := Matrix{{0, 0}, {10, 10}, {-10, 10}}
	var x Matrix
	var truth []int
	for c, center := range centers {
		for i := 0; i < perBlob; i++ {
			x = append(x, []float64{
				center[0] + rng.NormFloat64(),
				center[1] + rng.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	return x, truth
}

func TestKMeansRecoverseparatedBlobs(t *testing.T) {
	x, truth := threeBlobs(60, 5)
	km := &KMeans{K: 3, Seed: 1}
	if err := km.Fit(x); err != nil {
		t.Fatal(err)
	}
	assign, err := km.Assignments(x)
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth blob must map (almost) entirely to a single cluster.
	for blob := 0; blob < 3; blob++ {
		counts := map[int]int{}
		total := 0
		for i, tr := range truth {
			if tr == blob {
				counts[assign[i]]++
				total++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if float64(best)/float64(total) < 0.95 {
			t.Errorf("blob %d split across clusters: %v", blob, counts)
		}
	}
	inertia, err := km.Inertia(x)
	if err != nil {
		t.Fatal(err)
	}
	// With correct clustering the within-cluster variance is tiny compared to
	// a single-cluster solution.
	single := &KMeans{K: 1, Seed: 1}
	if err := single.Fit(x); err != nil {
		t.Fatal(err)
	}
	singleInertia, _ := single.Inertia(x)
	if inertia >= singleInertia/5 {
		t.Errorf("k=3 inertia %.1f not much better than k=1 inertia %.1f", inertia, singleInertia)
	}
	if len(km.Centroids()) != 3 {
		t.Error("centroids must have K entries")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	x, _ := threeBlobs(30, 7)
	a := &KMeans{K: 3, Seed: 42}
	b := &KMeans{K: 3, Seed: 42}
	if err := a.Fit(x); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x); err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Centroids(), b.Centroids()
	for i := range ca {
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				t.Fatal("same seed must give identical centroids")
			}
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	km := &KMeans{K: 0}
	if err := km.Fit(Matrix{{1}}); !errors.Is(err, ErrBadParameter) {
		t.Error("K=0 must fail")
	}
	km = &KMeans{K: 5}
	if err := km.Fit(Matrix{{1}, {2}}); !errors.Is(err, ErrBadParameter) {
		t.Error("K > rows must fail")
	}
	if err := (&KMeans{K: 1}).Fit(Matrix{}); !errors.Is(err, ErrNoData) {
		t.Error("empty matrix must fail")
	}
	unfitted := &KMeans{K: 2}
	if _, err := unfitted.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Error("predict before fit must fail")
	}
	if _, err := unfitted.Assignments(Matrix{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Error("assignments before fit must fail")
	}
	if _, err := unfitted.Inertia(Matrix{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Error("inertia before fit must fail")
	}
	if unfitted.Centroids() != nil {
		t.Error("centroids before fit must be nil")
	}
	fitted := &KMeans{K: 1, Seed: 1}
	if err := fitted.Fit(Matrix{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := fitted.Predict([]float64{1}); !errors.Is(err, ErrDimMismatch) {
		t.Error("wrong width prediction must fail")
	}
}
