package analytics

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataflow"
)

func testEngine(t *testing.T, opts ...dataflow.EngineOption) *dataflow.Engine {
	t.Helper()
	c, err := cluster.New(cluster.Uniform(2, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	e, err := dataflow.NewEngine(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// naiveInitCentroids is the pre-cache O(K²·N) seeding: every round recomputes
// each point's distance to every chosen centroid from scratch. The cached
// implementation in initCentroids must reproduce it bit for bit.
func naiveInitCentroids(x Matrix, k int, seed int64) Matrix {
	rng := rand.New(rand.NewSource(seed))
	rows, _ := x.Dims()
	centroids := make(Matrix, 0, k)
	first := rng.Intn(rows)
	centroids = append(centroids, append([]float64(nil), x[first]...))
	for len(centroids) < k {
		bestIdx, bestDist := 0, -1.0
		for i, row := range x {
			minDist := euclidean(row, centroids[0])
			for _, c := range centroids[1:] {
				if d := euclidean(row, c); d < minDist {
					minDist = d
				}
			}
			if minDist > bestDist {
				bestDist = minDist
				bestIdx = i
			}
		}
		centroids = append(centroids, append([]float64(nil), x[bestIdx]...))
	}
	return centroids
}

func TestKMeansSeedingDeterministic(t *testing.T) {
	x, _ := threeBlobs(40, 11)
	for _, seed := range []int64{0, 1, 42, 1234} {
		for _, k := range []int{1, 2, 3, 5} {
			km := &KMeans{K: k, Seed: seed}
			rng := rand.New(rand.NewSource(seed))
			got := km.initCentroids(x, rng)
			want := naiveInitCentroids(x, k, seed)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d k=%d: cached seeding diverged\n got %v\nwant %v", seed, k, got, want)
			}
			// A second run from the same seed must pin identical centroids.
			again := km.initCentroids(x, rand.New(rand.NewSource(seed)))
			if !reflect.DeepEqual(got, again) {
				t.Fatalf("seed=%d k=%d: seeding not deterministic", seed, k)
			}
		}
	}
}

func TestEngineKMeansMatchesHandRolled(t *testing.T) {
	x, _ := threeBlobs(40, 9)
	for _, seed := range []int64{1, 7, 42} {
		hand := &KMeans{K: 3, Seed: seed}
		if err := hand.Fit(x); err != nil {
			t.Fatal(err)
		}
		handAssign, err := hand.Assignments(x)
		if err != nil {
			t.Fatal(err)
		}
		handCents := hand.Centroids()

		em := &EngineKMeans{K: 3, Seed: seed}
		res, err := em.Fit(context.Background(), testEngine(t), x)
		if err != nil {
			t.Fatalf("seed=%d: engine fit: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Assignments, handAssign) {
			t.Fatalf("seed=%d: engine assignments diverge from hand-rolled", seed)
		}
		if !reflect.DeepEqual(res.Centroids, handCents) {
			t.Fatalf("seed=%d: engine centroids diverge\n got %v\nwant %v", seed, res.Centroids, handCents)
		}
		if res.Stats.IterateLoops < 1 || res.Stats.IterateIterations < 1 {
			t.Fatalf("seed=%d: iterate stats not recorded: %+v", seed, res.Stats)
		}
		if !res.Stats.IterateConverged {
			t.Fatalf("seed=%d: engine k-means did not converge on separated blobs", seed)
		}
	}
}

func TestEngineKMeansBudgetedMatchesUnbudgeted(t *testing.T) {
	x, _ := threeBlobs(30, 21)
	fit := func(e *dataflow.Engine) *EngineKMeansResult {
		em := &EngineKMeans{K: 3, Seed: 5}
		res, err := em.Fit(context.Background(), e, x)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := fit(testEngine(t))
	tight := fit(testEngine(t, dataflow.WithMemoryBudget(1)))
	if !reflect.DeepEqual(plain.Assignments, tight.Assignments) {
		t.Fatal("budgeted engine k-means assignments diverge from unbudgeted")
	}
	if !reflect.DeepEqual(plain.Centroids, tight.Centroids) {
		t.Fatal("budgeted engine k-means centroids diverge from unbudgeted")
	}
	if tight.Stats.SpilledBatches == 0 {
		t.Fatalf("1-byte budget fit never spilled: %+v", tight.Stats)
	}
}

func TestEngineKMeansSingleIteration(t *testing.T) {
	x, _ := threeBlobs(20, 3)
	hand := &KMeans{K: 3, Seed: 2, MaxIterations: 1}
	if err := hand.Fit(x); err != nil {
		t.Fatal(err)
	}
	handAssign, err := hand.Assignments(x)
	if err != nil {
		t.Fatal(err)
	}
	em := &EngineKMeans{K: 3, Seed: 2, MaxIterations: 1}
	res, err := em.Fit(context.Background(), testEngine(t), x)
	if err != nil {
		t.Fatal(err)
	}
	// MaxIterations=1 runs no engine loop at all: assignments come from the
	// host-side seeding pass and centroids from one aggregation over it.
	if res.Stats.IterateLoops != 0 {
		t.Fatalf("expected no iterate loop, got %+v", res.Stats)
	}
	if !reflect.DeepEqual(res.Centroids, hand.Centroids()) {
		t.Fatal("single-iteration centroids diverge from hand-rolled")
	}
	_ = handAssign
}

func TestEngineKMeansBadInput(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()
	if _, err := (&EngineKMeans{K: 0, Seed: 1}).Fit(ctx, eng, Matrix{{1}}); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := (&EngineKMeans{K: 5, Seed: 1}).Fit(ctx, eng, Matrix{{1}, {2}}); err == nil {
		t.Fatal("K>rows must fail")
	}
	if _, err := (&EngineKMeans{K: 1, Seed: 1}).Fit(ctx, nil, Matrix{{1}}); err == nil {
		t.Fatal("nil engine must fail")
	}
}

func TestEngineKMeansPlanExplains(t *testing.T) {
	x, _ := threeBlobs(5, 1)
	em := &EngineKMeans{K: 2, Seed: 1}
	plan, err := em.Plan(x)
	if err != nil {
		t.Fatal(err)
	}
	out := testEngine(t).Explain(plan)
	for _, want := range []string{"Iterate [iterate (maxIter=", "LoopState", "GroupBy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
}
