package analytics

// cluster_engine.go ports Lloyd's algorithm onto the dataflow engine's
// Iterate node. Each pass runs as named cluster jobs over columnar batches:
// the recompute step is a GroupBy(cluster)/Avg aggregation, the assignment
// step is a broadcast join of the points against the centroids with a
// vectorized distance column and a sort+distinct argmin. The hand-rolled
// KMeans in cluster.go is kept as the ablation/fallback arm; both arms share
// the seeding and first-assignment code, and on the same seed they produce
// identical assignments and centroids (see TestEngineKMeansMatchesHandRolled)
// — the one divergence is a cluster that loses every point mid-iteration,
// where the hand arm keeps its last non-empty mean while the engine arm
// keeps the seeded centroid.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataflow"
	"repro/internal/storage"
)

// EngineKMeans clusters rows with the same Lloyd iteration as KMeans, but
// executes every assignment/recompute pass on a dataflow engine through an
// Iterate plan — so the passes get columnar kernels, spill budgets, metrics
// and cancellation for free.
type EngineKMeans struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds the total assignment passes (default 100),
	// counting the host-side seeding pass — the same bound KMeans.Fit
	// applies to its loop.
	MaxIterations int
	// Seed drives centroid initialisation, shared verbatim with KMeans.
	Seed int64
}

// EngineKMeansResult is the outcome of one engine-clustering fit.
type EngineKMeansResult struct {
	// Assignments holds the final cluster index of every input row.
	Assignments []int
	// Centroids are the fitted cluster centres, indexed by cluster.
	Centroids Matrix
	// Stats are the iterate action's execution statistics (iterations run,
	// delta rows, spill counters…). Zero when MaxIterations is 1 and no
	// engine loop ran.
	Stats dataflow.Stats
}

// Inertia returns the within-cluster sum of squared distances of x under the
// fitted centroids — the same computation KMeans.Inertia runs, so on matching
// centroids the two arms report identical inertia.
func (r *EngineKMeansResult) Inertia(x Matrix) float64 {
	km := &KMeans{K: len(r.Centroids), centroids: r.Centroids, fitted: true}
	total, _ := km.Inertia(x)
	return total
}

// kmeansFeatureColumns names the feature columns of the loop state.
func kmeansFeatureColumns(dims int) []string {
	cols := make([]string, dims)
	for j := range cols {
		cols[j] = fmt.Sprintf("f%d", j)
	}
	return cols
}

// kmeansStateSchema is the loop-carried state: one row per point, its feature
// vector, and its current cluster.
func kmeansStateSchema(dims int) *storage.Schema {
	fields := make([]storage.Field, 0, dims+2)
	fields = append(fields, storage.Field{Name: "id", Type: storage.TypeInt})
	for _, c := range kmeansFeatureColumns(dims) {
		fields = append(fields, storage.Field{Name: c, Type: storage.TypeFloat})
	}
	fields = append(fields, storage.Field{Name: "cluster", Type: storage.TypeInt})
	return storage.MustSchema(fields...)
}

// kmeansBody is one Lloyd pass as a dataflow sub-plan: recompute centroids
// from the current assignment, broadcast them against every point, score the
// distances, and keep each point's nearest centroid. The trailing sort by id
// restores the state's canonical order, which keeps the next pass's
// aggregation summing floats in exactly the order the hand-rolled recompute
// does — the bit-exactness contract of the ablation pair.
func kmeansBody(dims int) func(loop *dataflow.Dataset) *dataflow.Dataset {
	featCols := kmeansFeatureColumns(dims)
	aggs := make([]dataflow.Aggregation, dims)
	avgCols := make([]string, dims)
	for j, c := range featCols {
		aggs[j] = dataflow.Avg(c)
		avgCols[j] = "avg_" + c
	}
	jk := storage.Field{Name: "jk", Type: storage.TypeInt}
	constKey := func(dataflow.Record) (storage.Value, error) { return int64(0), nil }
	return func(loop *dataflow.Dataset) *dataflow.Dataset {
		centroids := loop.GroupBy("cluster").Agg(aggs...).WithColumn(jk, constKey)
		scored := loop.WithColumn(jk, constKey).
			Join(centroids, "jk", "jk", dataflow.InnerJoin).
			// The distance replays euclidean()'s exact operation order, so
			// the scored distances are bit-identical to the hand-rolled
			// nearest() comparison.
			WithColumn(storage.Field{Name: "dist", Type: storage.TypeFloat},
				func(r dataflow.Record) (storage.Value, error) {
					sum := 0.0
					for j := range featCols {
						d := r.Float(featCols[j]) - r.Float(avgCols[j])
						sum += d * d
					}
					return math.Sqrt(sum), nil
				})
		// Argmin per point: order by (id, dist, centroid index) and keep the
		// first row per id. Bitwise-equal distances fall back to the lowest
		// cluster index — the same tie-break as nearest()'s strict "<" scan.
		return scored.
			Sort(dataflow.SortOrder{Column: "id"},
				dataflow.SortOrder{Column: "dist"},
				dataflow.SortOrder{Column: "right_cluster"}).
			Distinct("id").
			Map("kmeans-reassign", kmeansStateSchema(dims),
				func(r dataflow.Record) (storage.Row, error) {
					row := make(storage.Row, dims+2)
					row[0] = r.Int("id")
					for j, c := range featCols {
						row[j+1] = r.Float(c)
					}
					row[dims+1] = r.Int("right_cluster")
					return row, nil
				}).
			Sort(dataflow.SortOrder{Column: "id"})
	}
}

// compile validates the input, runs seeding plus the first assignment pass
// host-side (through the exact code path the hand-rolled arm uses, so both
// arms start identically), and returns the initial-state dataset together
// with the first assignments and the seeded model.
func (m *EngineKMeans) compile(x Matrix) (*dataflow.Dataset, []int, *KMeans, error) {
	if err := x.Validate(); err != nil {
		return nil, nil, nil, err
	}
	if m.K < 1 {
		return nil, nil, nil, fmt.Errorf("%w: K=%d", ErrBadParameter, m.K)
	}
	rows, dims := x.Dims()
	if m.K > rows {
		return nil, nil, nil, fmt.Errorf("%w: K=%d exceeds %d rows", ErrBadParameter, m.K, rows)
	}
	seed := &KMeans{K: m.K}
	rng := rand.New(rand.NewSource(m.Seed))
	seed.centroids = seed.initCentroids(x, rng)
	seed.fitted = true
	assign := make([]int, rows)
	state := make([]storage.Row, rows)
	schema := kmeansStateSchema(dims)
	for i, row := range x {
		assign[i] = seed.nearest(row)
		r := make(storage.Row, dims+2)
		r[0] = int64(i)
		for j, v := range row {
			r[j+1] = v
		}
		r[dims+1] = int64(assign[i])
		state[i] = r
	}
	// A single initial partition keeps the first pass's aggregation arrival
	// order identical to the hand-rolled recompute, which sums rows in input
	// order; every later pass re-sorts by id, re-establishing that order.
	return dataflow.FromRows("kmeans-state", schema, state, 1), assign, seed, nil
}

func (m *EngineKMeans) maxIterations() int {
	if m.MaxIterations <= 0 {
		return 100
	}
	return m.MaxIterations
}

// Plan returns the iterate plan Fit executes for x, without running it —
// the explain surface of engine clustering.
func (m *EngineKMeans) Plan(x Matrix) (*dataflow.Dataset, error) {
	ds, _, _, err := m.compile(x)
	if err != nil {
		return nil, err
	}
	_, dims := x.Dims()
	bodyIters := m.maxIterations() - 1
	if bodyIters < 1 {
		bodyIters = 1
	}
	plan := ds.Iterate(kmeansBody(dims), dataflow.WithMaxIterations(bodyIters))
	if err := plan.Err(); err != nil {
		return nil, err
	}
	return plan, nil
}

// Fit clusters x on the engine and returns the assignments, centroids and
// the iterate action's stats. The engine's map-side combine is disabled for
// the fit (via Derive), because partial per-partition sums would re-associate
// the float additions the bit-exactness contract pins.
func (m *EngineKMeans) Fit(ctx context.Context, eng *dataflow.Engine, x Matrix) (*EngineKMeansResult, error) {
	if eng == nil {
		return nil, fmt.Errorf("%w: engine clustering needs an engine", ErrBadParameter)
	}
	ds, assign, seed, err := m.compile(x)
	if err != nil {
		return nil, err
	}
	_, dims := x.Dims()
	exact := eng.Derive(dataflow.WithMapSideCombine(false))

	var stats dataflow.Stats
	if bodyIters := m.maxIterations() - 1; bodyIters >= 1 {
		plan := ds.Iterate(kmeansBody(dims), dataflow.WithMaxIterations(bodyIters))
		res, err := exact.Collect(ctx, plan)
		if err != nil {
			return nil, err
		}
		stats = res.Stats
		for _, r := range res.Rows {
			assign[r[0].(int64)] = int(r[dims+1].(int64))
		}
		ds = dataflow.FromRows("kmeans-final", kmeansStateSchema(dims), res.Rows, 1)
	}

	// Final centroids: the same GroupBy/Avg the body runs, over the fitted
	// state in id order — the engine analogue of recomputeCentroids. A
	// cluster absent from the final assignment keeps its seeded centroid.
	aggs := make([]dataflow.Aggregation, dims)
	for j, c := range kmeansFeatureColumns(dims) {
		aggs[j] = dataflow.Avg(c)
	}
	centRes, err := exact.Collect(ctx, ds.GroupBy("cluster").Agg(aggs...))
	if err != nil {
		return nil, err
	}
	centroids := seed.centroids.Clone()
	for _, r := range centRes.Rows {
		c := make([]float64, dims)
		for j := range c {
			c[j] = r[j+1].(float64)
		}
		centroids[r[0].(int64)] = c
	}
	return &EngineKMeansResult{Assignments: assign, Centroids: centroids, Stats: stats}, nil
}
