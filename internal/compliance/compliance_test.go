package compliance

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/procedural"
	"repro/internal/storage"
)

// buildComposition assembles a composition from catalog service IDs, wiring
// each step to depend on the previous one.
func buildComposition(t *testing.T, ids ...string) *procedural.Composition {
	t.Helper()
	reg := catalog.DefaultRegistry()
	c := &procedural.Composition{Campaign: "test"}
	prev := ""
	for i, id := range ids {
		d, err := reg.Get(id)
		if err != nil {
			t.Fatalf("catalog service %q: %v", id, err)
		}
		step := procedural.Step{ID: d.ID, Service: d}
		if prev != "" {
			step.DependsOn = []string{prev}
		}
		c.Steps = append(c.Steps, step)
		prev = d.ID
		_ = i
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("composition invalid: %v", err)
	}
	return c
}

func campaign(regime model.PrivacyRegime, personal bool) *model.Campaign {
	return &model.Campaign{
		Name:     "churn",
		Vertical: "telco",
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "telco_customers",
			LabelColumn:    "churned",
			FeatureColumns: []string{"tenure_months"},
		},
		Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: personal, Region: "eu"}},
		Regime:  regime,
	}
}

func pipelineWithAnonymization(t *testing.T) *procedural.Composition {
	return buildComposition(t, "ingest-batch", "pseudonymize-pii", "classify-logreg", "process-batch", "display-dashboard")
}

func pipelineWithoutAnonymization(t *testing.T) *procedural.Composition {
	return buildComposition(t, "ingest-batch", "clean-missing", "classify-logreg", "process-batch", "display-dashboard")
}

func TestEvaluateRequiresInputs(t *testing.T) {
	e := NewEngine()
	if _, err := e.Evaluate(Input{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("err = %v, want ErrBadInput", err)
	}
}

func TestCompliantWithoutPersonalData(t *testing.T) {
	e := NewEngine()
	rep, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeStrict, false),
		Composition:     pipelineWithoutAnonymization(t),
		DataSensitivity: storage.Internal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant() {
		t.Errorf("non-personal data must always be compliant: %+v", rep.Violations)
	}
	if rep.PrivacyScore != 1.0 {
		t.Errorf("privacy score = %v, want 1.0", rep.PrivacyScore)
	}
	if len(rep.Obligations) != 0 {
		t.Errorf("no obligations expected, got %v", rep.Obligations)
	}
}

func TestR1RequiresAnonymization(t *testing.T) {
	e := NewEngine()
	rep, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimePseudonymize, true),
		Composition:     pipelineWithoutAnonymization(t),
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant() {
		t.Fatal("missing anonymisation under pseudonymize regime must be non-compliant")
	}
	foundR1 := false
	for _, v := range rep.Violations {
		if v.Rule == "R1-anonymize-before-analytics" && v.Severity == Blocking {
			foundR1 = true
		}
	}
	if !foundR1 {
		t.Errorf("R1 violation missing: %+v", rep.Violations)
	}

	// Adding the pseudonymizer fixes it.
	rep2, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimePseudonymize, true),
		Composition:     pipelineWithAnonymization(t),
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Compliant() {
		t.Errorf("pseudonymized pipeline must be compliant: %+v", rep2.Violations)
	}
	if rep2.PrivacyScore != 0.8 {
		t.Errorf("pseudonymized privacy score = %v, want 0.8", rep2.PrivacyScore)
	}
	if len(rep2.Obligations) == 0 {
		t.Error("obligations must accompany personal-data processing")
	}
}

func TestR2StrictRequiresFullAnonymization(t *testing.T) {
	e := NewEngine()
	// Pseudonymization is not enough under strict.
	rep, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeStrict, true),
		Composition:     pipelineWithAnonymization(t),
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant() {
		t.Fatal("pseudonymization under strict regime must be non-compliant")
	}
	// Strict masking satisfies both R1 and R2.
	strict := buildComposition(t, "ingest-batch", "mask-strict", "classify-logreg", "process-batch", "display-dashboard")
	rep2, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeStrict, true),
		Composition:     strict,
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Compliant() {
		t.Errorf("strict anonymisation must be compliant: %+v", rep2.Violations)
	}
	if rep2.PrivacyScore != 1.0 {
		t.Errorf("strict anonymisation privacy score = %v, want 1.0", rep2.PrivacyScore)
	}
}

func TestR3AggregateDisplayUnderStrict(t *testing.T) {
	e := NewEngine()
	// Record-level export under strict regime, even after strict
	// anonymisation, violates the aggregate-display rule.
	exporting := buildComposition(t, "ingest-batch", "mask-strict", "classify-logreg", "process-batch", "display-export")
	rep, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeStrict, true),
		Composition:     exporting,
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "R3-aggregate-display" {
			found = true
		}
	}
	if !found {
		t.Errorf("R3 must fire for record-level display under strict: %+v", rep.Violations)
	}
	// An aggregating analytics step (reporting) makes record-level display acceptable.
	reporting := buildComposition(t, "ingest-batch", "mask-strict", "report-aggregate", "process-batch", "display-export")
	rep2, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeStrict, true),
		Composition:     reporting,
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep2.Violations {
		if v.Rule == "R3-aggregate-display" {
			t.Errorf("R3 must not fire when analytics aggregates: %+v", v)
		}
	}
}

func TestR4ClearanceWithoutRegime(t *testing.T) {
	e := NewEngine()
	// Even under RegimeNone, analytics services are not cleared for raw
	// personal data, so the clearance rule fires.
	rep, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeNone, true),
		Composition:     pipelineWithoutAnonymization(t),
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "R4-sensitivity-clearance" {
			found = true
		}
	}
	if !found {
		t.Errorf("R4 must fire when a service lacks clearance: %+v", rep.Violations)
	}
	// Anonymisation upstream clears downstream services.
	rep2, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeNone, true),
		Composition:     pipelineWithAnonymization(t),
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep2.Violations {
		if v.Rule == "R4-sensitivity-clearance" {
			t.Errorf("R4 must not fire downstream of anonymisation: %+v", v)
		}
	}
}

func TestR5DataResidency(t *testing.T) {
	e := NewEngine()
	in := Input{
		Campaign:         campaign(model.RegimePseudonymize, true),
		Composition:      pipelineWithAnonymization(t),
		DataSensitivity:  storage.Personal,
		DeploymentRegion: "us",
	}
	rep, err := e.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "R5-data-residency" && strings.Contains(v.Message, `"us"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("R5 must fire for cross-region deployment: %+v", rep.Violations)
	}
	in.DeploymentRegion = "eu"
	rep2, _ := e.Evaluate(in)
	for _, v := range rep2.Violations {
		if v.Rule == "R5-data-residency" {
			t.Error("R5 must not fire when regions match")
		}
	}
	// RegimeNone ignores residency.
	in.Campaign = campaign(model.RegimeNone, true)
	in.DeploymentRegion = "us"
	rep3, _ := e.Evaluate(in)
	for _, v := range rep3.Violations {
		if v.Rule == "R5-data-residency" {
			t.Error("R5 must not fire under RegimeNone")
		}
	}
}

func TestR6NoRawExport(t *testing.T) {
	e := NewEngine()
	exporting := buildComposition(t, "ingest-batch", "clean-missing", "classify-logreg", "process-batch", "display-export")
	rep, err := e.Evaluate(Input{
		Campaign:        campaign(model.RegimeInternal, true),
		Composition:     exporting,
		DataSensitivity: storage.Personal,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "R6-no-raw-export" {
			found = true
		}
	}
	if !found {
		t.Errorf("R6 must fire for raw export of personal data: %+v", rep.Violations)
	}
	if rep.PrivacyScore > 0.11 {
		t.Errorf("raw export privacy score = %v, want <= 0.1", rep.PrivacyScore)
	}
}

func TestInterferenceMonotonicity(t *testing.T) {
	// Central claim reproduced as Figure 1: tightening the regime can only
	// shrink (never grow) the set of compliant compositions.
	e := NewEngine()
	reg := catalog.DefaultRegistry()
	var compositions []*procedural.Composition
	for _, prep := range []string{"clean-missing", "pseudonymize-pii", "mask-strict"} {
		for _, display := range []string{"display-dashboard", "display-export"} {
			compositions = append(compositions, buildComposition(t, "ingest-batch", prep, "classify-logreg", "process-batch", display))
		}
	}
	_ = reg
	prevCompliant := len(compositions) + 1
	for _, regime := range model.Regimes() {
		compliant := 0
		for _, comp := range compositions {
			rep, err := e.Evaluate(Input{
				Campaign:        campaign(regime, true),
				Composition:     comp,
				DataSensitivity: storage.Personal,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Compliant() {
				compliant++
			}
		}
		if compliant > prevCompliant {
			t.Errorf("regime %s admits %d compliant options, more than the weaker regime (%d)",
				regime, compliant, prevCompliant)
		}
		prevCompliant = compliant
	}
}

func TestEngineWithCustomRules(t *testing.T) {
	e := NewEngineWithRules(anonymizeBeforeAnalyticsRule{})
	if len(e.Rules()) != 1 || e.Rules()[0] != "R1-anonymize-before-analytics" {
		t.Errorf("rules = %v", e.Rules())
	}
	if got := NewEngine().Rules(); len(got) != len(DefaultRules()) {
		t.Errorf("default engine rules = %d, want %d", len(got), len(DefaultRules()))
	}
}

func TestSeverityString(t *testing.T) {
	if Warning.String() != "warning" || Blocking.String() != "blocking" {
		t.Error("Severity.String misbehaves")
	}
}

func TestReportHelpers(t *testing.T) {
	r := Report{Violations: []Violation{
		{Rule: "a", Severity: Warning},
		{Rule: "b", Severity: Blocking},
		{Rule: "c", Severity: Blocking},
	}}
	if r.Compliant() {
		t.Error("report with blocking violations must not be compliant")
	}
	if r.BlockingCount() != 2 {
		t.Errorf("blocking count = %d, want 2", r.BlockingCount())
	}
	if !(Report{}).Compliant() {
		t.Error("empty report must be compliant")
	}
}
