// Package compliance implements the regulatory-constraint engine of the
// platform: it evaluates a compiled service composition against the
// campaign's declared privacy regime and the actual sensitivity of the data,
// reporting violations and obligations.
//
// The paper motivates TOREADOR partly by the "regulatory barrier … concerns
// about violating data access, sharing and custody regulations when using
// BDA, and the high cost of obtaining legal clearance for specific
// scenarios". This engine is the executable form of that clearance step and
// one of the main sources of "interference" between design stages: a privacy
// choice made at the declarative level removes analytics and display options
// downstream (reproduced as Figure 1 in EXPERIMENTS.md).
package compliance

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/procedural"
	"repro/internal/storage"
)

// Severity ranks how serious a violation is.
type Severity int

const (
	// Warning violations do not block deployment but reduce the privacy score.
	Warning Severity = iota
	// Blocking violations make the alternative non-compliant.
	Blocking
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Blocking {
		return "blocking"
	}
	return "warning"
}

// Violation is one detected policy breach.
type Violation struct {
	// Rule is the identifier of the rule that fired.
	Rule string
	// Severity of the breach.
	Severity Severity
	// Message explains the breach in user terms.
	Message string
}

// Report is the outcome of a compliance evaluation.
type Report struct {
	// Violations detected, in rule order.
	Violations []Violation
	// Obligations the operator must honour even when compliant
	// (e.g. "retain audit log", "purpose limitation").
	Obligations []string
	// PrivacyScore is the achieved privacy protection level in [0,1]; it maps
	// onto the standard privacy indicator.
	PrivacyScore float64
}

// Compliant reports whether the evaluation found no blocking violation.
func (r Report) Compliant() bool {
	for _, v := range r.Violations {
		if v.Severity == Blocking {
			return false
		}
	}
	return true
}

// BlockingCount returns the number of blocking violations.
func (r Report) BlockingCount() int {
	n := 0
	for _, v := range r.Violations {
		if v.Severity == Blocking {
			n++
		}
	}
	return n
}

// Input is everything a rule can inspect.
type Input struct {
	// Campaign is the declarative model.
	Campaign *model.Campaign
	// Composition is the compiled procedural model under evaluation.
	Composition *procedural.Composition
	// DataSensitivity is the highest sensitivity actually present in the
	// campaign's source schemas (cross-checked against the declaration).
	DataSensitivity storage.Sensitivity
	// DeploymentRegion is the region the pipeline would be deployed to
	// ("" when not yet bound).
	DeploymentRegion string
}

// personalData reports whether the campaign handles personal data, either by
// declaration or by schema inspection.
func (in Input) personalData() bool {
	if in.DataSensitivity >= storage.Personal {
		return true
	}
	for _, s := range in.Campaign.Sources {
		if s.ContainsPersonalData {
			return true
		}
	}
	return false
}

// Rule is one compliance rule.
type Rule interface {
	// ID identifies the rule (stable, used in reports and ablations).
	ID() string
	// Evaluate returns the violations and obligations triggered by in.
	Evaluate(in Input) ([]Violation, []string)
}

// Errors returned by the engine.
var ErrBadInput = errors.New("compliance: bad input")

// Engine evaluates a fixed rule set.
type Engine struct {
	rules []Rule
}

// NewEngine returns an engine with the default TOREADOR rule set.
func NewEngine() *Engine {
	return &Engine{rules: DefaultRules()}
}

// NewEngineWithRules returns an engine with a custom rule set (used by the
// ablation benchmarks).
func NewEngineWithRules(rules ...Rule) *Engine {
	return &Engine{rules: rules}
}

// Rules returns the engine's rule identifiers.
func (e *Engine) Rules() []string {
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.ID()
	}
	return out
}

// Evaluate runs every rule and assembles the report.
func (e *Engine) Evaluate(in Input) (Report, error) {
	if in.Campaign == nil || in.Composition == nil {
		return Report{}, fmt.Errorf("%w: campaign and composition are required", ErrBadInput)
	}
	var report Report
	seenObligation := map[string]bool{}
	for _, rule := range e.rules {
		violations, obligations := rule.Evaluate(in)
		report.Violations = append(report.Violations, violations...)
		for _, o := range obligations {
			if !seenObligation[o] {
				seenObligation[o] = true
				report.Obligations = append(report.Obligations, o)
			}
		}
	}
	report.PrivacyScore = privacyScore(in, report)
	return report, nil
}

// privacyScore derives the achieved privacy level from the input and the
// detected violations.
func privacyScore(in Input, r Report) float64 {
	if !in.personalData() {
		return 1.0
	}
	score := 0.0
	switch {
	case in.Composition.HasCapability("anonymize_strict"):
		score = 1.0
	case in.Composition.HasAnonymization():
		score = 0.8
	default:
		score = 0.3
	}
	// Record-level export of personal data without anonymisation is the worst
	// case.
	if score <= 0.3 && in.Composition.HasCapability("display_export") {
		score = 0.1
	}
	// Blocking violations cap the score.
	if !r.Compliant() && score > 0.5 {
		score = 0.5
	}
	return score
}

// DefaultRules returns the built-in rule set, in evaluation order.
func DefaultRules() []Rule {
	return []Rule{
		anonymizeBeforeAnalyticsRule{},
		strictAnonymizerRule{},
		aggregateDisplayRule{},
		clearanceRule{},
		regionRule{},
		exportRule{},
		retentionObligationRule{},
	}
}

// ---------------------------------------------------------------------------
// Built-in rules
// ---------------------------------------------------------------------------

// anonymizeBeforeAnalyticsRule: under pseudonymize/strict regimes, personal
// data must pass an anonymising preparation step before analytics.
type anonymizeBeforeAnalyticsRule struct{}

func (anonymizeBeforeAnalyticsRule) ID() string { return "R1-anonymize-before-analytics" }

func (r anonymizeBeforeAnalyticsRule) Evaluate(in Input) ([]Violation, []string) {
	if !in.personalData() || in.Campaign.Regime.Level() < model.RegimePseudonymize.Level() {
		return nil, nil
	}
	if in.Composition.HasAnonymization() {
		return nil, []string{"record anonymisation mapping in the processing register"}
	}
	return []Violation{{
		Rule:     r.ID(),
		Severity: Blocking,
		Message: fmt.Sprintf("regime %q requires an anonymising preparation step before analytics on personal data",
			in.Campaign.Regime),
	}}, nil
}

// strictAnonymizerRule: the strict regime requires full anonymisation, not
// mere pseudonymisation.
type strictAnonymizerRule struct{}

func (strictAnonymizerRule) ID() string { return "R2-strict-anonymizer" }

func (r strictAnonymizerRule) Evaluate(in Input) ([]Violation, []string) {
	if !in.personalData() || in.Campaign.Regime != model.RegimeStrict {
		return nil, nil
	}
	if in.Composition.HasCapability("anonymize_strict") {
		return nil, nil
	}
	if in.Composition.HasAnonymization() {
		return []Violation{{
			Rule:     r.ID(),
			Severity: Blocking,
			Message:  "strict regime requires full anonymisation; pseudonymisation is not sufficient",
		}}, nil
	}
	// No anonymisation at all is already reported by R1; stay silent to avoid
	// double counting.
	return nil, nil
}

// aggregateDisplayRule: under the strict regime only aggregate results may
// reach the display area.
type aggregateDisplayRule struct{}

func (aggregateDisplayRule) ID() string { return "R3-aggregate-display" }

func (r aggregateDisplayRule) Evaluate(in Input) ([]Violation, []string) {
	if !in.personalData() || in.Campaign.Regime != model.RegimeStrict {
		return nil, nil
	}
	var violations []Violation
	analyticsAggregates := false
	if step, ok := in.Composition.AnalyticsStep(); ok && step.Service.Aggregates {
		analyticsAggregates = true
	}
	for _, step := range in.Composition.StepsByArea(model.AreaDisplay) {
		if !step.Service.Aggregates && !analyticsAggregates {
			violations = append(violations, Violation{
				Rule:     r.ID(),
				Severity: Blocking,
				Message: fmt.Sprintf("display step %q delivers record-level results, but the strict regime only allows aggregates",
					step.ID),
			})
		}
	}
	return violations, nil
}

// clearanceRule: no service may process data above its sensitivity clearance
// unless an anonymisation step runs upstream.
type clearanceRule struct{}

func (clearanceRule) ID() string { return "R4-sensitivity-clearance" }

func (r clearanceRule) Evaluate(in Input) ([]Violation, []string) {
	order, err := in.Composition.TopologicalOrder()
	if err != nil {
		return []Violation{{Rule: r.ID(), Severity: Blocking, Message: "composition is not a DAG"}}, nil
	}
	effective := in.DataSensitivity
	if !in.personalData() && effective > storage.Internal {
		effective = storage.Internal
	}
	var violations []Violation
	for _, step := range order {
		if step.Service.Anonymizes {
			// Downstream of anonymisation the data is no longer personal.
			if effective > storage.Internal {
				effective = storage.Internal
			}
			continue
		}
		if effective > step.Service.MaxSensitivity {
			violations = append(violations, Violation{
				Rule:     r.ID(),
				Severity: Blocking,
				Message: fmt.Sprintf("step %q (%s) is cleared for %s data but receives %s data",
					step.ID, step.Service.ID, step.Service.MaxSensitivity, effective),
			})
		}
	}
	return violations, nil
}

// regionRule: when a source declares a region and the regime restricts
// custody, the deployment must stay in that region.
type regionRule struct{}

func (regionRule) ID() string { return "R5-data-residency" }

func (r regionRule) Evaluate(in Input) ([]Violation, []string) {
	if in.Campaign.Regime.Level() < model.RegimeInternal.Level() || in.DeploymentRegion == "" {
		return nil, nil
	}
	var violations []Violation
	for _, src := range in.Campaign.Sources {
		if src.Region != "" && src.Region != in.DeploymentRegion {
			violations = append(violations, Violation{
				Rule:     r.ID(),
				Severity: Blocking,
				Message: fmt.Sprintf("source %q resides in %q but the pipeline deploys to %q",
					src.Table, src.Region, in.DeploymentRegion),
			})
		}
	}
	return violations, nil
}

// exportRule: internal-or-stricter regimes disallow record-level export of
// personal data that was not anonymised.
type exportRule struct{}

func (exportRule) ID() string { return "R6-no-raw-export" }

func (r exportRule) Evaluate(in Input) ([]Violation, []string) {
	if !in.personalData() || in.Campaign.Regime.Level() < model.RegimeInternal.Level() {
		return nil, nil
	}
	if !in.Composition.HasCapability("display_export") || in.Composition.HasAnonymization() {
		return nil, nil
	}
	return []Violation{{
		Rule:     r.ID(),
		Severity: Blocking,
		Message:  "record-level export of personal data requires prior anonymisation under this regime",
	}}, nil
}

// retentionObligationRule never blocks; it attaches the standard data-handling
// obligations whenever personal data is processed.
type retentionObligationRule struct{}

func (retentionObligationRule) ID() string { return "R7-retention-obligations" }

func (r retentionObligationRule) Evaluate(in Input) ([]Violation, []string) {
	if !in.personalData() {
		return nil, nil
	}
	obligations := []string{
		"limit processing to the declared campaign purpose",
		"delete intermediate datasets within the retention window",
	}
	if in.Campaign.Regime.Level() >= model.RegimePseudonymize.Level() {
		obligations = append(obligations, "appoint a processing register entry for this campaign")
	}
	return nil, obligations
}
