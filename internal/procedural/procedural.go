// Package procedural defines the procedural model of the TOREADOR
// methodology: an executable service composition (a DAG of catalog services)
// produced by compiling a declarative campaign and later bound to a concrete
// deployment.
//
// The composition captures which service runs in each of the five design
// areas and in which order, independent of where it runs; the deployment
// package binds it to a platform and the runner executes it on the dataflow
// engine.
package procedural

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/model"
)

// Errors reported by composition validation.
var (
	ErrInvalidComposition = errors.New("procedural: invalid composition")
	ErrCycle              = errors.New("procedural: composition contains a cycle")
)

// Step is one node of the composition DAG: a catalog service plus its wiring.
type Step struct {
	// ID uniquely identifies the step inside the composition.
	ID string `json:"id"`
	// Service is the catalog service executed by this step.
	Service catalog.Descriptor `json:"service"`
	// DependsOn lists the step IDs that must complete before this step.
	DependsOn []string `json:"depends_on,omitempty"`
	// Params carries step-specific parameters resolved at compile time
	// (e.g. the label column for a classifier).
	Params map[string]string `json:"params,omitempty"`
}

// Composition is the full procedural model of one campaign.
type Composition struct {
	// Campaign is the name of the declarative campaign this was compiled from.
	Campaign string `json:"campaign"`
	// Steps are the composition nodes. Order is not significant; use
	// TopologicalOrder for execution order.
	Steps []Step `json:"steps"`
}

// Validate checks structural well-formedness: non-empty, unique step IDs,
// resolvable dependencies, acyclicity, and area monotonicity (a step may only
// depend on steps whose area is the same or earlier in the pipeline order).
func (c *Composition) Validate() error {
	if c == nil || len(c.Steps) == 0 {
		return fmt.Errorf("%w: no steps", ErrInvalidComposition)
	}
	index := make(map[string]Step, len(c.Steps))
	for _, s := range c.Steps {
		if strings.TrimSpace(s.ID) == "" {
			return fmt.Errorf("%w: step with empty id", ErrInvalidComposition)
		}
		if _, dup := index[s.ID]; dup {
			return fmt.Errorf("%w: duplicate step id %q", ErrInvalidComposition, s.ID)
		}
		if err := s.Service.Validate(); err != nil {
			return fmt.Errorf("%w: step %q: %v", ErrInvalidComposition, s.ID, err)
		}
		index[s.ID] = s
	}
	for _, s := range c.Steps {
		for _, dep := range s.DependsOn {
			parent, ok := index[dep]
			if !ok {
				return fmt.Errorf("%w: step %q depends on unknown step %q", ErrInvalidComposition, s.ID, dep)
			}
			if parent.Service.Area.Order() > s.Service.Area.Order() {
				return fmt.Errorf("%w: step %q (%s) depends on later-area step %q (%s)",
					ErrInvalidComposition, s.ID, s.Service.Area, dep, parent.Service.Area)
			}
		}
	}
	if _, err := c.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// TopologicalOrder returns the steps in a valid execution order (dependencies
// first). The order is deterministic: ties are broken by area order and then
// by step ID.
func (c *Composition) TopologicalOrder() ([]Step, error) {
	index := make(map[string]Step, len(c.Steps))
	indegree := make(map[string]int, len(c.Steps))
	dependents := make(map[string][]string, len(c.Steps))
	for _, s := range c.Steps {
		index[s.ID] = s
		if _, ok := indegree[s.ID]; !ok {
			indegree[s.ID] = 0
		}
	}
	for _, s := range c.Steps {
		for _, dep := range s.DependsOn {
			if _, ok := index[dep]; !ok {
				return nil, fmt.Errorf("%w: unknown dependency %q", ErrInvalidComposition, dep)
			}
			indegree[s.ID]++
			dependents[dep] = append(dependents[dep], s.ID)
		}
	}
	ready := make([]string, 0, len(c.Steps))
	for id, deg := range indegree {
		if deg == 0 {
			ready = append(ready, id)
		}
	}
	less := func(a, b string) bool {
		sa, sb := index[a], index[b]
		if sa.Service.Area.Order() != sb.Service.Area.Order() {
			return sa.Service.Area.Order() < sb.Service.Area.Order()
		}
		return a < b
	}
	sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })

	var order []Step
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, index[id])
		for _, next := range dependents[id] {
			indegree[next]--
			if indegree[next] == 0 {
				ready = append(ready, next)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
	}
	if len(order) != len(c.Steps) {
		return nil, ErrCycle
	}
	return order, nil
}

// StepsByArea returns the steps belonging to the given area, in ID order.
func (c *Composition) StepsByArea(area model.Area) []Step {
	var out []Step
	for _, s := range c.Steps {
		if s.Service.Area == area {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Step returns the step with the given ID.
func (c *Composition) Step(id string) (Step, bool) {
	for _, s := range c.Steps {
		if s.ID == id {
			return s, true
		}
	}
	return Step{}, false
}

// AnalyticsStep returns the (first) analytics-area step, which drives the
// runner's task dispatch.
func (c *Composition) AnalyticsStep() (Step, bool) {
	steps := c.StepsByArea(model.AreaAnalytics)
	if len(steps) == 0 {
		return Step{}, false
	}
	return steps[0], true
}

// HasCapability reports whether any step's service exposes the capability.
func (c *Composition) HasCapability(capability string) bool {
	for _, s := range c.Steps {
		if s.Service.Capability == capability {
			return true
		}
	}
	return false
}

// HasAnonymization reports whether the composition contains an anonymising
// preparation step.
func (c *Composition) HasAnonymization() bool {
	for _, s := range c.Steps {
		if s.Service.Anonymizes {
			return true
		}
	}
	return false
}

// ServiceIDs returns the catalog IDs of every step in topological order;
// useful as a compact fingerprint of an alternative.
func (c *Composition) ServiceIDs() []string {
	order, err := c.TopologicalOrder()
	if err != nil {
		// Fall back to declaration order for invalid compositions.
		order = c.Steps
	}
	out := make([]string, len(order))
	for i, s := range order {
		out[i] = s.Service.ID
	}
	return out
}

// Fingerprint returns a stable textual identity of the composition based on
// the chosen services.
func (c *Composition) Fingerprint() string {
	return strings.Join(c.ServiceIDs(), " -> ")
}

// EstimateCost sums the static per-service cost estimates for the given input
// size.
func (c *Composition) EstimateCost(rows int) float64 {
	total := 0.0
	for _, s := range c.Steps {
		total += s.Service.EstimateCost(rows)
	}
	return total
}

// EstimateLatencyMillis returns the critical-path latency estimate for the
// given input size and degree of parallelism: the longest dependency chain
// where each step contributes its per-service latency estimate.
func (c *Composition) EstimateLatencyMillis(rows, parallelism int) float64 {
	memo := make(map[string]float64, len(c.Steps))
	index := make(map[string]Step, len(c.Steps))
	for _, s := range c.Steps {
		index[s.ID] = s
	}
	var chain func(id string, visiting map[string]bool) float64
	chain = func(id string, visiting map[string]bool) float64 {
		if v, ok := memo[id]; ok {
			return v
		}
		if visiting[id] {
			return 0 // cycle: Validate reports it; avoid infinite recursion here
		}
		visiting[id] = true
		defer delete(visiting, id)
		s := index[id]
		longest := 0.0
		for _, dep := range s.DependsOn {
			if _, ok := index[dep]; !ok {
				continue
			}
			if v := chain(dep, visiting); v > longest {
				longest = v
			}
		}
		total := longest + s.Service.EstimateLatencyMillis(rows, parallelism)
		memo[id] = total
		return total
	}
	longest := 0.0
	for _, s := range c.Steps {
		if v := chain(s.ID, map[string]bool{}); v > longest {
			longest = v
		}
	}
	return longest
}

// EstimateQuality returns the expected analytics quality of the composition:
// the quality of its analytics step (0 when there is none).
func (c *Composition) EstimateQuality() float64 {
	step, ok := c.AnalyticsStep()
	if !ok {
		return 0
	}
	return step.Service.Quality
}

// SupportsStreaming reports whether every step can run in a streaming
// deployment.
func (c *Composition) SupportsStreaming() bool {
	for _, s := range c.Steps {
		if !s.Service.SupportsStreaming {
			return false
		}
	}
	return len(c.Steps) > 0
}

// SupportsBatch reports whether every step can run in a batch deployment.
func (c *Composition) SupportsBatch() bool {
	for _, s := range c.Steps {
		if !s.Service.SupportsBatch {
			return false
		}
	}
	return len(c.Steps) > 0
}

// String renders the composition as a compact arrow-chain of service IDs.
func (c *Composition) String() string {
	return fmt.Sprintf("%s: %s", c.Campaign, c.Fingerprint())
}
