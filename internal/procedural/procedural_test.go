package procedural

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/storage"
)

// svc builds a minimal valid descriptor for tests.
func svc(id string, area model.Area, opts ...func(*catalog.Descriptor)) catalog.Descriptor {
	d := catalog.Descriptor{
		ID: id, Name: id, Area: area, Capability: "cap-" + id,
		MaxSensitivity: storage.Internal, SupportsBatch: true,
		CostPerKRows: 0.01, MillisPerKRows: 10,
	}
	if area == model.AreaAnalytics {
		d.Task = model.TaskClassification
		d.Quality = 0.8
	}
	for _, o := range opts {
		o(&d)
	}
	return d
}

// linearComposition builds ingest -> prepare -> analyze -> process -> display.
func linearComposition() *Composition {
	return &Composition{
		Campaign: "test",
		Steps: []Step{
			{ID: "ingest", Service: svc("ingest-batch", model.AreaRepresentation)},
			{ID: "prepare", Service: svc("clean", model.AreaPreparation), DependsOn: []string{"ingest"}},
			{ID: "analyze", Service: svc("classify", model.AreaAnalytics), DependsOn: []string{"prepare"}},
			{ID: "process", Service: svc("batch", model.AreaProcessing), DependsOn: []string{"analyze"}},
			{ID: "display", Service: svc("dash", model.AreaDisplay), DependsOn: []string{"process"}},
		},
	}
}

func TestValidateLinear(t *testing.T) {
	if err := linearComposition().Validate(); err != nil {
		t.Fatalf("valid composition rejected: %v", err)
	}
}

func TestValidateRejectsBadCompositions(t *testing.T) {
	var nilComp *Composition
	if err := nilComp.Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("nil composition must fail")
	}
	if err := (&Composition{Campaign: "x"}).Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("empty composition must fail")
	}

	c := linearComposition()
	c.Steps[1].ID = ""
	if err := c.Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("empty step id must fail")
	}

	c = linearComposition()
	c.Steps[1].ID = "ingest"
	if err := c.Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("duplicate step id must fail")
	}

	c = linearComposition()
	c.Steps[1].DependsOn = []string{"ghost"}
	if err := c.Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("unknown dependency must fail")
	}

	c = linearComposition()
	c.Steps[1].Service = catalog.Descriptor{} // invalid service
	if err := c.Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("invalid service must fail")
	}

	// Area monotonicity: a preparation step must not depend on analytics.
	c = linearComposition()
	c.Steps[1].DependsOn = []string{"analyze"}
	if err := c.Validate(); !errors.Is(err, ErrInvalidComposition) {
		t.Error("area order violation must fail")
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	c := &Composition{
		Campaign: "cyclic",
		Steps: []Step{
			{ID: "a", Service: svc("s1", model.AreaPreparation), DependsOn: []string{"b"}},
			{ID: "b", Service: svc("s2", model.AreaPreparation), DependsOn: []string{"a"}},
		},
	}
	if err := c.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle err = %v, want ErrCycle", err)
	}
}

func TestTopologicalOrder(t *testing.T) {
	c := linearComposition()
	order, err := c.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	position := map[string]int{}
	for i, s := range order {
		position[s.ID] = i
	}
	for _, s := range c.Steps {
		for _, dep := range s.DependsOn {
			if position[dep] >= position[s.ID] {
				t.Errorf("dependency %s not before %s", dep, s.ID)
			}
		}
	}
	// Deterministic order: areas ascending.
	if order[0].ID != "ingest" || order[len(order)-1].ID != "display" {
		t.Errorf("order = %v", c.ServiceIDs())
	}
}

func TestTopologicalOrderWithParallelBranches(t *testing.T) {
	c := &Composition{
		Campaign: "diamond",
		Steps: []Step{
			{ID: "src", Service: svc("src", model.AreaRepresentation)},
			{ID: "prep-b", Service: svc("p2", model.AreaPreparation), DependsOn: []string{"src"}},
			{ID: "prep-a", Service: svc("p1", model.AreaPreparation), DependsOn: []string{"src"}},
			{ID: "analyze", Service: svc("an", model.AreaAnalytics), DependsOn: []string{"prep-a", "prep-b"}},
		},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := c.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0].ID != "src" || order[3].ID != "analyze" {
		t.Errorf("order = %v", c.ServiceIDs())
	}
	// Siblings must be ordered deterministically by id.
	if order[1].ID != "prep-a" || order[2].ID != "prep-b" {
		t.Errorf("sibling order = %s, %s", order[1].ID, order[2].ID)
	}
}

func TestLookupsAndCapabilities(t *testing.T) {
	c := linearComposition()
	if s, ok := c.Step("analyze"); !ok || s.Service.Area != model.AreaAnalytics {
		t.Error("Step lookup misbehaves")
	}
	if _, ok := c.Step("ghost"); ok {
		t.Error("unknown step must report !ok")
	}
	if s, ok := c.AnalyticsStep(); !ok || s.ID != "analyze" {
		t.Error("AnalyticsStep misbehaves")
	}
	if got := c.StepsByArea(model.AreaPreparation); len(got) != 1 || got[0].ID != "prepare" {
		t.Errorf("StepsByArea = %v", got)
	}
	if !c.HasCapability("cap-classify") || c.HasCapability("nope") {
		t.Error("HasCapability misbehaves")
	}
	if c.HasAnonymization() {
		t.Error("plain composition has no anonymization")
	}
	c.Steps[1].Service.Anonymizes = true
	if !c.HasAnonymization() {
		t.Error("anonymizing step not detected")
	}

	noAnalytics := &Composition{Campaign: "x", Steps: []Step{{ID: "a", Service: svc("s", model.AreaPreparation)}}}
	if _, ok := noAnalytics.AnalyticsStep(); ok {
		t.Error("composition without analytics step must report !ok")
	}
	if noAnalytics.EstimateQuality() != 0 {
		t.Error("quality without analytics step must be 0")
	}
}

func TestFingerprintAndString(t *testing.T) {
	c := linearComposition()
	fp := c.Fingerprint()
	if !strings.HasPrefix(fp, "ingest-batch -> clean") || !strings.HasSuffix(fp, "dash") {
		t.Errorf("fingerprint = %q", fp)
	}
	if !strings.Contains(c.String(), "test:") {
		t.Errorf("String = %q", c.String())
	}
}

func TestEstimates(t *testing.T) {
	c := linearComposition()
	rows := 10000
	// Cost: 5 services x 0.01 per kRow x 10 kRows = 0.5.
	if got := c.EstimateCost(rows); got < 0.49 || got > 0.51 {
		t.Errorf("cost = %v, want 0.5", got)
	}
	// Latency: linear chain of 5 services x 10ms/kRow x 10kRows = 500ms at
	// parallelism 1, halved at parallelism 2.
	seq := c.EstimateLatencyMillis(rows, 1)
	if seq < 499 || seq > 501 {
		t.Errorf("latency = %v, want 500", seq)
	}
	par := c.EstimateLatencyMillis(rows, 2)
	if par >= seq {
		t.Error("higher parallelism must lower the latency estimate")
	}
	if got := c.EstimateQuality(); got != 0.8 {
		t.Errorf("quality = %v, want 0.8", got)
	}
}

func TestEstimateLatencyUsesCriticalPath(t *testing.T) {
	// Two parallel branches of different lengths: critical path is the longer.
	slow := svc("slow", model.AreaPreparation, func(d *catalog.Descriptor) { d.MillisPerKRows = 100 })
	fast := svc("fast", model.AreaPreparation, func(d *catalog.Descriptor) { d.MillisPerKRows = 1 })
	c := &Composition{
		Campaign: "branches",
		Steps: []Step{
			{ID: "src", Service: svc("src", model.AreaRepresentation, func(d *catalog.Descriptor) { d.MillisPerKRows = 0 })},
			{ID: "slow", Service: slow, DependsOn: []string{"src"}},
			{ID: "fast", Service: fast, DependsOn: []string{"src"}},
			{ID: "sink", Service: svc("sink", model.AreaAnalytics, func(d *catalog.Descriptor) { d.MillisPerKRows = 0 }),
				DependsOn: []string{"slow", "fast"}},
		},
	}
	got := c.EstimateLatencyMillis(1000, 1)
	if got < 99 || got > 101 {
		t.Errorf("critical path latency = %v, want 100", got)
	}
}

func TestSupportsBatchAndStreaming(t *testing.T) {
	c := linearComposition()
	if !c.SupportsBatch() {
		t.Error("all-batch composition must support batch")
	}
	if c.SupportsStreaming() {
		t.Error("batch-only composition must not support streaming")
	}
	for i := range c.Steps {
		c.Steps[i].Service.SupportsStreaming = true
	}
	if !c.SupportsStreaming() {
		t.Error("all-streaming composition must support streaming")
	}
	empty := &Composition{}
	if empty.SupportsBatch() || empty.SupportsStreaming() {
		t.Error("empty composition supports nothing")
	}
}

func TestServiceIDsOnInvalidComposition(t *testing.T) {
	c := &Composition{
		Campaign: "cyclic",
		Steps: []Step{
			{ID: "a", Service: svc("s1", model.AreaPreparation), DependsOn: []string{"b"}},
			{ID: "b", Service: svc("s2", model.AreaPreparation), DependsOn: []string{"a"}},
		},
	}
	// Falls back to declaration order instead of failing.
	if got := c.ServiceIDs(); len(got) != 2 {
		t.Errorf("ServiceIDs on cyclic composition = %v", got)
	}
}
