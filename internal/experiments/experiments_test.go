package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/labs"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/workload"
)

// smallEnv keeps experiment data tiny so the full suite stays fast.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(5, workload.Sizing{Customers: 250, Meters: 2, Days: 3, Users: 50})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvDefaults(t *testing.T) {
	e, err := NewEnv(0, workload.Sizing{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seed != 1 || e.Sizing.Customers == 0 || e.Lab() == nil {
		t.Errorf("env defaults = %+v", e)
	}
}

func TestTable1ChallengeCatalog(t *testing.T) {
	e := smallEnv(t)
	table, err := RunTable1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 challenges", len(table.Rows))
	}
	for _, r := range table.Rows {
		if r.Alternatives < 4 {
			t.Errorf("%s has only %d alternatives", r.Challenge, r.Alternatives)
		}
		if r.CompliantAlternatives == 0 || r.CompliantAlternatives > r.Alternatives {
			t.Errorf("%s compliant count %d out of range", r.Challenge, r.CompliantAlternatives)
		}
		if r.CompileTime <= 0 {
			t.Errorf("%s enumeration time missing", r.Challenge)
		}
	}
	if !strings.Contains(table.String(), "Table 1") {
		t.Error("rendering must carry the table title")
	}
}

func TestTable2AlternativeComparison(t *testing.T) {
	e := smallEnv(t)
	table, err := RunTable2(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 4 {
		t.Fatalf("rows = %d, want at least the four classifiers", len(table.Rows))
	}
	byService := map[string]Table2Row{}
	nonCompliant := 0
	for _, r := range table.Rows {
		if r.Compliant {
			byService[r.Service] = r
		} else {
			nonCompliant++
		}
	}
	logreg, okL := byService["classify-logreg"]
	majority, okM := byService["classify-majority"]
	if !okL || !okM {
		t.Fatalf("services measured = %v", byService)
	}
	// Headline qualitative shape: the trained model beats the baseline on
	// accuracy but costs more.
	if logreg.Accuracy <= majority.Accuracy {
		t.Errorf("logreg accuracy %.3f must beat majority %.3f", logreg.Accuracy, majority.Accuracy)
	}
	if logreg.Cost <= majority.Cost {
		t.Errorf("logreg cost %.4f must exceed majority %.4f", logreg.Cost, majority.Cost)
	}
	if nonCompliant == 0 {
		t.Error("the comparison must include a non-compliant row for contrast")
	}
	// Rows are sorted by score.
	for i := 1; i < len(table.Rows); i++ {
		if table.Rows[i].Score > table.Rows[i-1].Score {
			t.Error("rows must be sorted by descending score")
		}
	}
	if !strings.Contains(table.String(), "Table 2") {
		t.Error("rendering must carry the table title")
	}
}

func TestFigure1Interference(t *testing.T) {
	e := smallEnv(t)
	fig, err := RunFigure1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Challenges) != 2 {
		t.Fatalf("challenges = %v", fig.Challenges)
	}
	for _, ch := range fig.Challenges {
		points := fig.Points[ch]
		if len(points) != len(model.Regimes()) {
			t.Fatalf("%s points = %d", ch, len(points))
		}
		for i := 1; i < len(points); i++ {
			if points[i].CompliantAlternatives > points[i-1].CompliantAlternatives {
				t.Errorf("%s: compliant options must shrink as the regime tightens", ch)
			}
		}
		if points[len(points)-1].PreparationOptions >= points[0].PreparationOptions {
			t.Errorf("%s: strict regime must reduce preparation options", ch)
		}
	}
	if !strings.Contains(fig.String(), "Figure 1") {
		t.Error("rendering must carry the figure title")
	}
}

func TestFigure2EngineScalability(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("wall-clock speedup from added workers is impossible on a single-CPU runner")
	}
	e := smallEnv(t)
	fig, err := RunFigure2(context.Background(), e, []int{1, 4}, []int{60000})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 3 {
		t.Fatalf("points = %d, want 2 sweep points + 1 spill ablation", len(fig.Points))
	}
	single, parallel := fig.Points[0], fig.Points[1]
	if single.Workers != 1 || parallel.Workers != 4 {
		t.Fatalf("sweep order unexpected: %+v", fig.Points)
	}
	if parallel.ThroughputRPS <= single.ThroughputRPS {
		t.Errorf("4 workers (%.0f rows/s) must out-throughput 1 worker (%.0f rows/s)",
			parallel.ThroughputRPS, single.ThroughputRPS)
	}
	if parallel.SpeedupVs1 <= 1 {
		t.Errorf("speedup = %.2f, want > 1", parallel.SpeedupVs1)
	}
	if single.SpilledBatches != 0 || parallel.SpilledBatches != 0 {
		t.Errorf("resident sweep points must not spill: %+v", fig.Points[:2])
	}
	spillArm := fig.Points[2]
	if spillArm.SpilledBatches == 0 || spillArm.SpilledBytes == 0 {
		t.Errorf("spill ablation arm must report spilled batches and bytes: %+v", spillArm)
	}
	// The ordered-reporting tail: resident points sort columnar in-memory
	// (no runs), the budgeted point runs the sort as an external merge.
	if single.SortRuns != 0 || parallel.SortRuns != 0 {
		t.Errorf("resident sweep points must not sort through runs: %+v", fig.Points[:2])
	}
	if spillArm.SortRuns == 0 {
		t.Errorf("spill ablation arm must sort through external runs: %+v", spillArm)
	}
	// The group-by: every point aggregates the same 8 segments, the resident
	// points keep all aggregation state in memory, and the budgeted arm (with
	// map-side combining off) pushes the hash aggregation through its
	// spill-partition lifecycle.
	for i, p := range fig.Points {
		if p.AggGroups != 8 {
			t.Errorf("point %d: AggGroups = %d, want 8 segments", i, p.AggGroups)
		}
		if p.AggPeakResidentBytes <= 0 {
			t.Errorf("point %d: AggPeakResidentBytes = %d, want > 0", i, p.AggPeakResidentBytes)
		}
		if p.Allocs <= 0 || p.AllocBytes <= 0 {
			t.Errorf("point %d: alloc deltas = %d allocs / %d B, want > 0", i, p.Allocs, p.AllocBytes)
		}
	}
	if single.AggSpilledPartitions != 0 || parallel.AggSpilledPartitions != 0 {
		t.Errorf("resident sweep points must not spill aggregation state: %+v", fig.Points[:2])
	}
	if spillArm.AggSpilledPartitions == 0 {
		t.Errorf("spill ablation arm must spill aggregation partitions: %+v", spillArm)
	}
	if !strings.Contains(fig.String(), "Figure 2") {
		t.Error("rendering must carry the figure title")
	}
}

func TestTable3PlannerBaseline(t *testing.T) {
	e := smallEnv(t)
	table, err := RunTable3(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5*len(planner.Strategies()) {
		t.Fatalf("rows = %d, want %d", len(table.Rows), 5*len(planner.Strategies()))
	}
	byChallenge := map[string]map[planner.Strategy]Table3Row{}
	for _, r := range table.Rows {
		if byChallenge[r.Challenge] == nil {
			byChallenge[r.Challenge] = map[planner.Strategy]Table3Row{}
		}
		byChallenge[r.Challenge][r.Strategy] = r
	}
	for ch, rows := range byChallenge {
		exhaustive := rows[planner.StrategyExhaustive]
		random := rows[planner.StrategyRandom]
		if exhaustive.Regret > 1e-9 {
			t.Errorf("%s: exhaustive regret = %v, want 0", ch, exhaustive.Regret)
		}
		if exhaustive.CompliantRate != 1 {
			t.Errorf("%s: the model-driven planner must always choose compliant pipelines", ch)
		}
		if random.EffectiveScore > exhaustive.EffectiveScore+1e-9 {
			t.Errorf("%s: random baseline (%.3f) must not beat the model-driven planner (%.3f)",
				ch, random.EffectiveScore, exhaustive.EffectiveScore)
		}
	}
	if !strings.Contains(table.String(), "Table 3") {
		t.Error("rendering must carry the table title")
	}
}

func TestFigure3DeploymentCrossover(t *testing.T) {
	e := smallEnv(t)
	fig, err := RunFigure3(e, []int{1000, 100_000, 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 3 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	last := fig.Points[len(fig.Points)-1]
	if !last.StreamMeetsSLA {
		t.Error("streaming must meet the freshness SLA at high volume")
	}
	if last.BatchMeetsSLA {
		t.Error("batch must miss the freshness SLA at high volume (the crossover)")
	}
	if last.StreamCost <= last.BatchCost {
		t.Error("streaming must cost more than batch for the same volume")
	}
	// Batch freshness must degrade with volume while streaming stays flat-ish.
	if fig.Points[0].BatchFreshnessS >= last.BatchFreshnessS {
		t.Error("batch freshness must degrade as volume grows")
	}
	if !strings.Contains(fig.String(), "Figure 3") {
		t.Error("rendering must carry the figure title")
	}
}

func TestTable4CompilationCost(t *testing.T) {
	e := smallEnv(t)
	table, err := RunTable4(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 5 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, r := range table.Rows {
		if r.TotalCompile <= 0 || r.Execution <= 0 {
			t.Errorf("%s: timings must be positive: %+v", r.Challenge, r)
		}
		if r.TotalCompile != r.Validate+r.Match+r.Compose+r.Comply+r.Bind {
			t.Errorf("%s: phase sum mismatch", r.Challenge)
		}
	}
	if !strings.Contains(table.String(), "Table 4") {
		t.Error("rendering must carry the table title")
	}
}

func TestFigure4TrialAndError(t *testing.T) {
	e := smallEnv(t)
	fig, err := RunFigure4(context.Background(), e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != len(labs.TraineeStrategies()) {
		t.Fatalf("curves = %d", len(fig.Curves))
	}
	for strategy, curve := range fig.Curves {
		if len(curve) != 3 {
			t.Errorf("%s curve length = %d", strategy, len(curve))
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1] {
				t.Errorf("%s curve must be monotone non-decreasing", strategy)
			}
		}
	}
	guided := fig.Curves[labs.TraineeGuided]
	random := fig.Curves[labs.TraineeRandom]
	if guided[len(guided)-1]+1e-9 < random[len(random)-1] {
		t.Error("guided trainees must end at least as high as random trainees")
	}
	if !strings.Contains(fig.String(), "Figure 4") {
		t.Error("rendering must carry the figure title")
	}
}

func TestFigure5ServiceLoad(t *testing.T) {
	e := smallEnv(t)
	fig, err := RunFigure5(context.Background(), e, []int{1, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(fig.Points))
	}
	for _, p := range fig.Points {
		if !p.Accounted {
			t.Errorf("%d tenants: submissions lost: %+v", p.Tenants, p)
		}
		if p.Completed == 0 {
			t.Errorf("%d tenants: nothing completed", p.Tenants)
		}
		if p.Completed > 0 && p.P99MS <= 0 {
			t.Errorf("%d tenants: no p99 latency despite completions", p.Tenants)
		}
	}
	// With 4 tenants hammering a queue of 4 and 2 workers, admission control
	// must visibly push back: some submissions are rejected or shed.
	high := fig.Points[1]
	if high.Rejected+high.Shed == 0 {
		t.Errorf("4 tenants: expected overload pushback, got %+v", high)
	}
	if !strings.Contains(fig.String(), "Figure 5") {
		t.Errorf("rendering missing title:\n%s", fig.String())
	}
}

func TestFigure6IterativeDataflow(t *testing.T) {
	e := smallEnv(t)
	fig, err := RunFigure6(context.Background(), e, []int{48})
	if err != nil {
		t.Fatal(err)
	}
	// Two pipelines × {resident, budgeted}.
	if len(fig.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(fig.Points))
	}
	byKey := map[string]Figure6Point{}
	for _, p := range fig.Points {
		if !p.Converged {
			t.Errorf("%s rows=%d budgeted=%v did not converge: %+v", p.Pipeline, p.Rows, p.Budgeted, p)
		}
		if p.Iterations < 2 {
			t.Errorf("%s: iterations = %d, want a real loop", p.Pipeline, p.Iterations)
		}
		byKey[fmt.Sprintf("%s/%v", p.Pipeline, p.Budgeted)] = p
	}
	// The partition-local pipeline must demonstrate the delta short-circuit;
	// its budgeted arm must actually spill loop state.
	if p := byKey["local-delta/false"]; p.ShortCircuitParts == 0 {
		t.Errorf("local-delta resident arm never short-circuited: %+v", p)
	}
	if p := byKey["local-delta/true"]; p.SpilledBatches == 0 {
		t.Errorf("local-delta budgeted arm never spilled: %+v", p)
	}
	// Budgeted and resident arms of the same pipeline agree on convergence
	// depth — the loop semantics don't change when state spills.
	for _, pl := range []string{"label-prop", "local-delta"} {
		if a, b := byKey[pl+"/false"], byKey[pl+"/true"]; a.Iterations != b.Iterations {
			t.Errorf("%s: resident %d iterations vs budgeted %d", pl, a.Iterations, b.Iterations)
		}
	}
	if !strings.Contains(fig.String(), "Figure 6") {
		t.Errorf("rendering missing title:\n%s", fig.String())
	}
}
