// Package experiments regenerates the tables and figures of the reproduction
// (see DESIGN.md §3 and EXPERIMENTS.md). Each experiment is a pure function
// from a seeded environment to a table of rows plus a textual rendering, so
// it can be driven both by the root bench harness (bench_test.go) and by the
// cmd/toreador-bench CLI.
//
// The paper itself contains no numbered tables or figures; the experiment
// identifiers below are defined by this reproduction and operationalise the
// paper's qualitative claims (see the experiment index in DESIGN.md).
package experiments

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/deployment"
	"repro/internal/labs"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/workload"
)

// Env is the shared, seeded environment experiments run against.
type Env struct {
	Seed   int64
	Sizing workload.Sizing
	lab    *labs.Lab
}

// NewEnv builds an experiment environment. A zero sizing selects small,
// bench-friendly data volumes.
func NewEnv(seed int64, sizing workload.Sizing) (*Env, error) {
	if seed == 0 {
		seed = 1
	}
	if sizing.Customers == 0 && sizing.Meters == 0 && sizing.Days == 0 && sizing.Users == 0 {
		sizing = workload.Sizing{Customers: 600, Meters: 4, Days: 4, Users: 80}
	}
	lab, err := labs.NewLab(labs.Config{Seed: seed, Sizing: sizing})
	if err != nil {
		return nil, err
	}
	return &Env{Seed: seed, Sizing: sizing, lab: lab}, nil
}

// Lab exposes the underlying Labs instance.
func (e *Env) Lab() *labs.Lab { return e.lab }

// renderTable renders a fixed-width table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 1 — challenge catalog
// ---------------------------------------------------------------------------

// Table1Row summarises one Labs challenge.
type Table1Row struct {
	Challenge             string
	Vertical              string
	Goal                  string
	Objectives            int
	Alternatives          int
	CompliantAlternatives int
	CompileTime           time.Duration
}

// Table1 is the challenge-catalog experiment.
type Table1 struct{ Rows []Table1Row }

// RunTable1 enumerates every challenge's design space.
func RunTable1(e *Env) (*Table1, error) {
	var out Table1
	for _, ch := range e.lab.Challenges() {
		start := time.Now()
		alternatives, err := e.lab.Alternatives(ch.ID)
		if err != nil {
			return nil, fmt.Errorf("experiments: table1 %s: %w", ch.ID, err)
		}
		elapsed := time.Since(start)
		compliant := 0
		for _, a := range alternatives {
			if a.Compliant() {
				compliant++
			}
		}
		out.Rows = append(out.Rows, Table1Row{
			Challenge:             ch.ID,
			Vertical:              string(ch.Vertical),
			Goal:                  string(ch.Campaign.Goal.Task),
			Objectives:            len(ch.Campaign.Objectives),
			Alternatives:          len(alternatives),
			CompliantAlternatives: compliant,
			CompileTime:           elapsed,
		})
	}
	return &out, nil
}

// String renders the table.
func (t *Table1) String() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Challenge, r.Vertical, r.Goal,
			fmt.Sprintf("%d", r.Objectives),
			fmt.Sprintf("%d", r.Alternatives),
			fmt.Sprintf("%d", r.CompliantAlternatives),
			r.CompileTime.Round(time.Microsecond).String(),
		})
	}
	return "Table 1 — Labs challenge catalog (design-space size per challenge)\n" +
		renderTable([]string{"challenge", "vertical", "task", "objectives", "alternatives", "compliant", "enumeration"}, rows)
}

// ---------------------------------------------------------------------------
// Table 2 — alternative comparison on the churn challenge
// ---------------------------------------------------------------------------

// Table2Row is one executed alternative of the churn challenge.
type Table2Row struct {
	Service   string
	Platform  string
	Accuracy  float64
	Cost      float64
	LatencyMS float64
	Privacy   float64
	Score     float64
	Feasible  bool
	Compliant bool
}

// Table2 is the trial-and-error comparison experiment.
type Table2 struct{ Rows []Table2Row }

// RunTable2 executes one compliant alternative per analytics service of the
// churn challenge plus one representative non-compliant alternative, all on
// the same data.
func RunTable2(ctx context.Context, e *Env) (*Table2, error) {
	ch, err := e.lab.Challenge("telco-churn")
	if err != nil {
		return nil, err
	}
	alternatives, err := e.lab.Alternatives(ch.ID)
	if err != nil {
		return nil, err
	}
	run, err := runner.New(e.lab.Data(), runner.WithSeed(e.Seed))
	if err != nil {
		return nil, err
	}
	var out Table2
	seen := map[string]bool{}
	addRun := func(alt core.Alternative) error {
		report, err := run.Run(ctx, ch.Campaign, alt)
		if err != nil {
			return fmt.Errorf("experiments: table2 run %s: %w", alt.Fingerprint(), err)
		}
		step, _ := alt.Composition.AnalyticsStep()
		acc, _ := report.Measured.Get(model.IndicatorAccuracy)
		cost, _ := report.Measured.Get(model.IndicatorCost)
		lat, _ := report.Measured.Get(model.IndicatorLatency)
		priv, _ := report.Measured.Get(model.IndicatorPrivacy)
		out.Rows = append(out.Rows, Table2Row{
			Service:   step.Service.ID,
			Platform:  string(alt.Plan.Platform),
			Accuracy:  acc,
			Cost:      cost,
			LatencyMS: lat,
			Privacy:   priv,
			Score:     report.Evaluation.Score,
			Feasible:  report.Evaluation.Feasible,
			Compliant: report.Compliant,
		})
		return nil
	}
	for _, alt := range alternatives {
		if !alt.Compliant() {
			continue
		}
		step, ok := alt.Composition.AnalyticsStep()
		if !ok || seen[step.Service.ID] {
			continue
		}
		seen[step.Service.ID] = true
		if err := addRun(alt); err != nil {
			return nil, err
		}
	}
	for _, alt := range alternatives {
		if !alt.Compliant() {
			if err := addRun(alt); err != nil {
				return nil, err
			}
			break
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Score > out.Rows[j].Score })
	return &out, nil
}

// String renders the table.
func (t *Table2) String() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Service, r.Platform,
			fmt.Sprintf("%.3f", r.Accuracy),
			fmt.Sprintf("%.4f", r.Cost),
			fmt.Sprintf("%.1f", r.LatencyMS),
			fmt.Sprintf("%.2f", r.Privacy),
			fmt.Sprintf("%.3f", r.Score),
			fmt.Sprintf("%v", r.Feasible),
			fmt.Sprintf("%v", r.Compliant),
		})
	}
	return "Table 2 — measured comparison of churn-challenge alternatives (same data, same objectives)\n" +
		renderTable([]string{"analytics service", "platform", "accuracy", "cost", "latency_ms", "privacy", "score", "feasible", "compliant"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 1 — interference of the privacy regime
// ---------------------------------------------------------------------------

// Figure1 reports per-regime surviving options for two challenges.
type Figure1 struct {
	Challenges []string
	Points     map[string][]core.InterferencePoint
}

// RunFigure1 sweeps the privacy regime for the churn and fraud challenges.
func RunFigure1(e *Env) (*Figure1, error) {
	out := &Figure1{Points: map[string][]core.InterferencePoint{}}
	for _, id := range []string{"telco-churn", "payment-fraud"} {
		ch, err := e.lab.Challenge(id)
		if err != nil {
			return nil, err
		}
		points, err := e.lab.Compiler().Interference(ch.Campaign)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure1 %s: %w", id, err)
		}
		out.Challenges = append(out.Challenges, id)
		out.Points[id] = points
	}
	return out, nil
}

// String renders the figure data as a series table.
func (f *Figure1) String() string {
	var b strings.Builder
	b.WriteString("Figure 1 — design-stage options surviving as the privacy regime tightens\n")
	for _, ch := range f.Challenges {
		fmt.Fprintf(&b, "[%s]\n", ch)
		rows := make([][]string, 0, len(f.Points[ch]))
		for _, p := range f.Points[ch] {
			rows = append(rows, []string{
				string(p.Regime),
				fmt.Sprintf("%d", p.TotalAlternatives),
				fmt.Sprintf("%d", p.CompliantAlternatives),
				fmt.Sprintf("%d", p.PreparationOptions),
				fmt.Sprintf("%d", p.AnalyticsOptions),
				fmt.Sprintf("%d", p.DisplayOptions),
				fmt.Sprintf("%d", p.PlatformOptions),
			})
		}
		b.WriteString(renderTable([]string{"regime", "alternatives", "compliant", "preparation", "analytics", "display", "platforms"}, rows))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 2 — dataflow engine scalability
// ---------------------------------------------------------------------------

// Figure2Point is one (workers, rows) measurement of the engine.
type Figure2Point struct {
	Workers       int
	Rows          int
	WallTime      time.Duration
	ThroughputRPS float64
	SpeedupVs1    float64
	// ShuffledRows is the number of rows the pipeline moved across shuffle
	// boundaries; the broadcast join keeps the small dimension side out of
	// it entirely.
	ShuffledRows int64
	// BroadcastJoins counts joins the engine executed broadcast-side.
	BroadcastJoins int64
	// Batches counts the columnar batches the vectorized engine processed;
	// zero would mean the run fell back to row-at-a-time execution.
	Batches int64
	// SpilledBatches and SpilledBytes count columnar batches (and their
	// physical on-disk size) written to spill files; zero under the default
	// unlimited memory budget, where every partition stays resident.
	// SpillLogicalBytes is the raw (v1-equivalent) size of the same batches —
	// the physical/logical pair records the spill codec's compression ratio
	// in every committed artifact.
	SpilledBatches    int64
	SpilledBytes      int64
	SpillLogicalBytes int64
	// SortRuns counts the sorted runs the pipeline's ordered-reporting tail
	// spilled and merged; zero when the sort ran columnar in-memory (the
	// default unlimited budget) and non-zero on the spill-ablation point,
	// where the sort runs as an external merge.
	SortRuns int64
	// AggGroups counts the distinct group-by groups the aggregation emitted,
	// and AggSpilledPartitions the hash-aggregation sub-partitions spilled
	// and re-merged under the memory budget (zero on resident points).
	// AggPeakResidentBytes is the high-water estimate of resident aggregation
	// state, the quantity the spilling hash aggregation budgets against.
	AggGroups            int64
	AggSpilledPartitions int64
	AggPeakResidentBytes int64
	// Allocs and AllocBytes are the heap-allocation deltas across the run
	// (runtime.ReadMemStats before/after), recording the allocation
	// trajectory of the columnar operators next to the wall times. They ride
	// along in bench-compare's delta table but never gate.
	Allocs     int64
	AllocBytes int64
}

// Figure2 is the engine-scalability experiment.
type Figure2 struct{ Points []Figure2Point }

// RunFigure2 executes a representative aggregation+join pipeline over
// synthetic retail data while sweeping worker slots and input size. A final
// spill-ablation point re-runs the largest configuration with a one-byte
// memory budget (and the join forced to shuffle), so every committed
// artifact records the spilled trajectory next to the resident runs.
func RunFigure2(ctx context.Context, e *Env, workerSweep []int, rowSweep []int) (*Figure2, error) {
	if len(workerSweep) == 0 {
		workerSweep = []int{1, 2, 4, 8}
	}
	if len(rowSweep) == 0 {
		rowSweep = []int{20000, 80000}
	}
	point := func(workers, rows int, run pipelineRun) Figure2Point {
		return Figure2Point{
			Workers:              workers,
			Rows:                 rows,
			WallTime:             run.wall,
			ThroughputRPS:        float64(rows) / run.wall.Seconds(),
			ShuffledRows:         run.stats.ShuffledRows,
			BroadcastJoins:       run.stats.BroadcastJoins,
			Batches:              run.stats.Batches,
			SpilledBatches:       run.stats.SpilledBatches,
			SpilledBytes:         run.stats.SpilledBytes,
			SpillLogicalBytes:    run.stats.SpillLogicalBytes,
			SortRuns:             run.stats.SortRuns,
			AggGroups:            run.stats.AggGroups,
			AggSpilledPartitions: run.stats.AggSpilledPartitions,
			AggPeakResidentBytes: run.stats.AggPeakResidentBytes,
			Allocs:               run.allocs,
			AllocBytes:           run.allocBytes,
		}
	}
	out := &Figure2{}
	for _, rows := range rowSweep {
		baseline := map[int]float64{} // rows -> wall seconds at 1 worker
		for _, workers := range workerSweep {
			run, err := runScalabilityPipeline(ctx, e.Seed, rows, workers)
			if err != nil {
				return nil, err
			}
			p := point(workers, rows, run)
			if workers == workerSweep[0] {
				baseline[rows] = run.wall.Seconds()
			}
			if base, ok := baseline[rows]; ok && run.wall.Seconds() > 0 {
				p.SpeedupVs1 = base / run.wall.Seconds()
			}
			out.Points = append(out.Points, p)
		}
	}
	rows := rowSweep[len(rowSweep)-1]
	workers := workerSweep[len(workerSweep)-1]
	// The ablation also disables map-side combining so the group-by runs as
	// the budgeted shuffle-side hash aggregation — the arm that exercises the
	// spill-partition lifecycle and reports AggSpilledPartitions.
	run, err := runScalabilityPipeline(ctx, e.Seed, rows, workers,
		dataflow.WithMemoryBudget(1), dataflow.WithBroadcastJoin(false),
		dataflow.WithMapSideCombine(false))
	if err != nil {
		return nil, err
	}
	out.Points = append(out.Points, point(workers, rows, run))
	return out, nil
}

// runScalabilityPipeline builds rows of synthetic records and runs a
// score→filter→join→group-by→sort pipeline on a cluster with the given number of
// slots. The scoring step performs a fixed amount of per-row numeric work
// (mirroring the feature-engineering stages of the real campaigns) so the
// parallel fraction of the pipeline dominates the fixed shuffle overhead.
// Extra engine options layer on top of the partition count (the spill
// ablation passes a memory budget and disables the broadcast join so the
// shuffle actually accumulates batches).
func runScalabilityPipeline(ctx context.Context, seed int64, rows, workers int,
	opts ...dataflow.EngineOption) (pipelineRun, error) {
	schema := storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "key", Type: storage.TypeInt},
		storage.Field{Name: "value", Type: storage.TypeFloat},
	)
	data := make([]storage.Row, rows)
	for i := 0; i < rows; i++ {
		data[i] = storage.Row{int64(i), int64(i % 64), float64((i*7919)%1000) / 10}
	}
	dimSchema := storage.MustSchema(
		storage.Field{Name: "key", Type: storage.TypeInt},
		storage.Field{Name: "segment", Type: storage.TypeString},
	)
	dim := make([]storage.Row, 64)
	for i := range dim {
		dim[i] = storage.Row{int64(i), fmt.Sprintf("segment-%d", i%8)}
	}
	cfg := cluster.Uniform(1, workers, 0)
	cfg.Seed = seed
	cl, err := cluster.New(cfg)
	if err != nil {
		return pipelineRun{}, err
	}
	engine, err := dataflow.NewEngine(cl, append([]dataflow.EngineOption{
		dataflow.WithShufflePartitions(workers)}, opts...)...)
	if err != nil {
		return pipelineRun{}, err
	}
	facts := dataflow.FromRows("facts", schema, data, workers*2)
	dims := dataflow.FromRows("dims", dimSchema, dim, 2)
	plan := facts.
		WithColumn(storage.Field{Name: "score", Type: storage.TypeFloat}, func(r dataflow.Record) (storage.Value, error) {
			// Deterministic per-row numeric work standing in for feature
			// engineering (≈ half a microsecond per record).
			v := r.Float("value")
			acc := 0.0
			for k := 1; k <= 200; k++ {
				acc += (v + float64(k)) / float64(k)
			}
			return acc, nil
		}).
		Filter("value >= 10", func(r dataflow.Record) (bool, error) { return r.Float("value") >= 10, nil }).
		Join(dims, "key", "key", dataflow.InnerJoin).
		GroupBy("segment").
		Agg(dataflow.Count(), dataflow.Sum("score"), dataflow.Avg("value")).
		// Ordered-reporting tail (the paper's Figure 2 campaigns deliver
		// ranked segment reports): sorting the aggregate keeps the pipeline
		// columnar end to end and exercises the sort strategy the engine
		// chose — in-memory selection sort resident, external merge when the
		// spill-ablation point forces the one-byte budget.
		Sort(dataflow.SortOrder{Column: "sum_score", Descending: true}, dataflow.SortOrder{Column: "segment"})
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := engine.Collect(ctx, plan)
	if err != nil {
		return pipelineRun{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return pipelineRun{
		wall:       wall,
		stats:      res.Stats,
		allocs:     int64(after.Mallocs - before.Mallocs),
		allocBytes: int64(after.TotalAlloc - before.TotalAlloc),
	}, nil
}

// pipelineRun carries one scalability measurement: wall time, engine stats,
// and the process-wide heap-allocation deltas across the run. The alloc
// counters are approximate (anything else the process allocates during the
// run is included) but the pipeline dominates by orders of magnitude.
type pipelineRun struct {
	wall       time.Duration
	stats      dataflow.Stats
	allocs     int64
	allocBytes int64
}

// String renders the figure data.
func (f *Figure2) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rows),
			fmt.Sprintf("%d", p.Workers),
			p.WallTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", p.ThroughputRPS),
			fmt.Sprintf("%.2f", p.SpeedupVs1),
			fmt.Sprintf("%d", p.ShuffledRows),
			fmt.Sprintf("%d", p.BroadcastJoins),
			fmt.Sprintf("%d", p.Batches),
			fmt.Sprintf("%d", p.SpilledBatches),
			fmt.Sprintf("%d", p.SpilledBytes),
			fmt.Sprintf("%d", p.SpillLogicalBytes),
			fmt.Sprintf("%d", p.SortRuns),
			fmt.Sprintf("%d", p.AggGroups),
			fmt.Sprintf("%d", p.AggSpilledPartitions),
			fmt.Sprintf("%d", p.Allocs),
		})
	}
	return "Figure 2 — dataflow engine scalability (filter → join → group-by → sort pipeline)\n" +
		renderTable([]string{"rows", "workers", "wall", "rows/s", "speedup", "shuffled", "bcast joins", "batches", "spilled", "spill B", "spill logical B", "sort runs", "agg groups", "agg spills", "allocs"}, rows)
}

// ---------------------------------------------------------------------------
// Table 3 — planner strategies vs manual baseline
// ---------------------------------------------------------------------------

// Table3Row compares one strategy on one challenge. The random baseline is
// averaged over several seeds (one manual user may get lucky; the average
// shows the expected outcome of planning without the platform).
type Table3Row struct {
	Challenge      string
	Strategy       planner.Strategy
	EffectiveScore float64
	Regret         float64
	CompliantRate  float64
	Explored       int
	Total          int
	PlanTime       time.Duration
}

// Table3 is the planner-vs-baseline experiment.
type Table3 struct{ Rows []Table3Row }

// table3RandomTrials is the number of seeds the random baseline is averaged
// over.
const table3RandomTrials = 7

// RunTable3 plans every challenge with every strategy over the same design
// space.
func RunTable3(e *Env) (*Table3, error) {
	out := &Table3{}
	for _, ch := range e.lab.Challenges() {
		alternatives, err := e.lab.Alternatives(ch.ID)
		if err != nil {
			return nil, err
		}
		pl := e.lab.Planner()
		optimal, err := pl.PlanOver(ch.Campaign, alternatives, planner.StrategyExhaustive)
		if err != nil {
			return nil, fmt.Errorf("experiments: table3 %s exhaustive: %w", ch.ID, err)
		}
		for _, strategy := range planner.Strategies() {
			trials := 1
			if strategy == planner.StrategyRandom {
				trials = table3RandomTrials
			}
			row := Table3Row{Challenge: ch.ID, Strategy: strategy, Total: len(alternatives)}
			for trial := 0; trial < trials; trial++ {
				pl.Seed = e.Seed + int64(trial)
				decision, err := pl.PlanOver(ch.Campaign, alternatives, strategy)
				if err != nil {
					// The strategy found nothing acceptable: maximal regret.
					row.Regret += optimal.EffectiveScore
					row.Explored = pl.RandomSamples
					continue
				}
				row.EffectiveScore += decision.EffectiveScore
				row.Regret += planner.Regret(decision, optimal)
				if decision.Compliant {
					row.CompliantRate++
				}
				row.Explored = decision.Explored
				row.PlanTime += decision.Elapsed
			}
			row.EffectiveScore /= float64(trials)
			row.Regret /= float64(trials)
			row.CompliantRate /= float64(trials)
			row.PlanTime /= time.Duration(trials)
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// String renders the table.
func (t *Table3) String() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Challenge, string(r.Strategy),
			fmt.Sprintf("%.3f", r.EffectiveScore),
			fmt.Sprintf("%.3f", r.Regret),
			fmt.Sprintf("%.0f%%", r.CompliantRate*100),
			fmt.Sprintf("%d/%d", r.Explored, r.Total),
			r.PlanTime.Round(time.Microsecond).String(),
		})
	}
	return "Table 3 — planning strategies vs the manual (random) baseline, estimated effective scores\n" +
		renderTable([]string{"challenge", "strategy", "eff. score", "regret", "compliant", "explored", "plan time"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 3 — batch vs streaming deployment crossover
// ---------------------------------------------------------------------------

// Figure3Point compares batch and streaming estimates at one data volume.
type Figure3Point struct {
	Rows               int
	BatchFreshnessS    float64
	StreamFreshnessS   float64
	BatchCost          float64
	StreamCost         float64
	StreamMeetsSLA     bool
	BatchMeetsSLA      bool
	FreshnessTargetSec float64
}

// Figure3 is the deployment-crossover experiment.
type Figure3 struct{ Points []Figure3Point }

// RunFigure3 binds equivalent batch and streaming fraud pipelines across a
// sweep of input volumes and reports freshness and cost for each, against the
// fraud challenge's freshness objective.
func RunFigure3(e *Env, rowSweep []int) (*Figure3, error) {
	if len(rowSweep) == 0 {
		rowSweep = []int{1000, 10_000, 100_000, 1_000_000, 5_000_000}
	}
	ch, err := e.lab.Challenge("payment-fraud")
	if err != nil {
		return nil, err
	}
	freshObj, _ := ch.Campaign.ObjectiveFor(model.IndicatorFreshness)
	alternatives, err := e.lab.Alternatives(ch.ID)
	if err != nil {
		return nil, err
	}
	// Pick one compliant batch and one compliant streaming alternative with
	// the same detector.
	var batchAlt, streamAlt *core.Alternative
	for i := range alternatives {
		alt := alternatives[i]
		if !alt.Compliant() {
			continue
		}
		step, ok := alt.Composition.AnalyticsStep()
		if !ok || step.Service.ID != "detect-zscore" {
			continue
		}
		switch alt.Plan.Platform {
		case deployment.PlatformBatch:
			if batchAlt == nil {
				batchAlt = &alternatives[i]
			}
		case deployment.PlatformStreaming:
			if streamAlt == nil {
				streamAlt = &alternatives[i]
			}
		}
	}
	if batchAlt == nil || streamAlt == nil {
		return nil, fmt.Errorf("experiments: figure3 needs both batch and streaming compliant alternatives")
	}
	binder := deployment.NewBinder()
	out := &Figure3{}
	for _, rows := range rowSweep {
		batchPlan, err := binder.Bind(batchAlt.Composition, deployment.PlatformBatch, rows, ch.Campaign.Preferences)
		if err != nil {
			return nil, err
		}
		streamPlan, err := binder.Bind(streamAlt.Composition, deployment.PlatformStreaming, rows, ch.Campaign.Preferences)
		if err != nil {
			return nil, err
		}
		point := Figure3Point{
			Rows:               rows,
			BatchFreshnessS:    batchPlan.EstimatedFreshnessSeconds,
			StreamFreshnessS:   streamPlan.EstimatedFreshnessSeconds,
			BatchCost:          batchPlan.EstimatedCost,
			StreamCost:         streamPlan.EstimatedCost,
			FreshnessTargetSec: freshObj.Target,
			BatchMeetsSLA:      freshObj.Comparison.Satisfied(batchPlan.EstimatedFreshnessSeconds, freshObj.Target),
			StreamMeetsSLA:     freshObj.Comparison.Satisfied(streamPlan.EstimatedFreshnessSeconds, freshObj.Target),
		}
		out.Points = append(out.Points, point)
	}
	return out, nil
}

// String renders the figure data.
func (f *Figure3) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rows),
			fmt.Sprintf("%.2f", p.BatchFreshnessS),
			fmt.Sprintf("%.2f", p.StreamFreshnessS),
			fmt.Sprintf("%v", p.BatchMeetsSLA),
			fmt.Sprintf("%v", p.StreamMeetsSLA),
			fmt.Sprintf("%.3f", p.BatchCost),
			fmt.Sprintf("%.3f", p.StreamCost),
		})
	}
	return fmt.Sprintf("Figure 3 — batch vs streaming deployment as the event volume grows (freshness SLA <= %gs)\n",
		f.Points[0].FreshnessTargetSec) +
		renderTable([]string{"rows", "batch fresh_s", "stream fresh_s", "batch SLA", "stream SLA", "batch cost", "stream cost"}, rows)
}

// ---------------------------------------------------------------------------
// Table 4 — compilation phase cost vs execution
// ---------------------------------------------------------------------------

// Table4Row breaks down compilation time for one challenge.
type Table4Row struct {
	Challenge    string
	Validate     time.Duration
	Match        time.Duration
	Compose      time.Duration
	Comply       time.Duration
	Bind         time.Duration
	TotalCompile time.Duration
	Execution    time.Duration
}

// Table4 is the compilation-cost experiment.
type Table4 struct{ Rows []Table4Row }

// RunTable4 compiles every challenge, runs the chosen alternative once, and
// reports where the time goes.
func RunTable4(ctx context.Context, e *Env) (*Table4, error) {
	run, err := runner.New(e.lab.Data(), runner.WithSeed(e.Seed))
	if err != nil {
		return nil, err
	}
	out := &Table4{}
	for _, ch := range e.lab.Challenges() {
		result, err := e.lab.Compiler().Compile(ch.Campaign)
		if err != nil {
			return nil, fmt.Errorf("experiments: table4 compile %s: %w", ch.ID, err)
		}
		start := time.Now()
		if _, err := run.Run(ctx, ch.Campaign, result.Chosen); err != nil {
			return nil, fmt.Errorf("experiments: table4 run %s: %w", ch.ID, err)
		}
		out.Rows = append(out.Rows, Table4Row{
			Challenge:    ch.ID,
			Validate:     result.Timings.Validate,
			Match:        result.Timings.Match,
			Compose:      result.Timings.Compose,
			Comply:       result.Timings.Comply,
			Bind:         result.Timings.Bind,
			TotalCompile: result.Timings.Total(),
			Execution:    time.Since(start),
		})
	}
	return out, nil
}

// String renders the table.
func (t *Table4) String() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Challenge,
			r.Validate.Round(time.Microsecond).String(),
			r.Match.Round(time.Microsecond).String(),
			r.Compose.Round(time.Microsecond).String(),
			r.Comply.Round(time.Microsecond).String(),
			r.Bind.Round(time.Microsecond).String(),
			r.TotalCompile.Round(time.Microsecond).String(),
			r.Execution.Round(time.Millisecond).String(),
		})
	}
	return "Table 4 — compilation phase cost vs pipeline execution time\n" +
		renderTable([]string{"challenge", "validate", "match", "compose", "comply", "bind", "compile total", "execution"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 4 — trial-and-error convergence in the Labs
// ---------------------------------------------------------------------------

// Figure4 holds learning curves per trainee strategy.
type Figure4 struct {
	Challenge string
	Attempts  int
	Curves    map[labs.TraineeStrategy][]float64
}

// figure4Trials is the number of simulated trainees averaged per strategy.
const figure4Trials = 3

// RunFigure4 simulates trainees with every strategy on the churn challenge,
// averaging the learning curves over several seeds so a single lucky random
// trainee does not mask the convergence difference.
func RunFigure4(ctx context.Context, e *Env, attempts int) (*Figure4, error) {
	if attempts <= 0 {
		attempts = 5
	}
	out := &Figure4{Challenge: "telco-churn", Attempts: attempts, Curves: map[labs.TraineeStrategy][]float64{}}
	for _, strategy := range labs.TraineeStrategies() {
		var mean []float64
		for trial := 0; trial < figure4Trials; trial++ {
			curve, err := e.lab.SimulateTrainee(ctx, out.Challenge, strategy, attempts, e.Seed+int64(trial))
			if err != nil {
				return nil, fmt.Errorf("experiments: figure4 %s: %w", strategy, err)
			}
			if mean == nil {
				mean = make([]float64, len(curve))
			}
			for i, v := range curve {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= figure4Trials
		}
		out.Curves[strategy] = mean
	}
	return out, nil
}

// String renders the learning curves.
func (f *Figure4) String() string {
	var rows [][]string
	strategies := labs.TraineeStrategies()
	for _, s := range strategies {
		row := []string{string(s)}
		for _, v := range f.Curves[s] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		rows = append(rows, row)
	}
	header := []string{"strategy"}
	if len(rows) > 0 {
		for i := 1; i < len(rows[0]); i++ {
			header = append(header, fmt.Sprintf("after %d", i))
		}
	}
	return fmt.Sprintf("Figure 4 — best Labs score after k attempts on %s (trial-and-error convergence)\n", f.Challenge) +
		renderTable(header, rows)
}

// ---------------------------------------------------------------------------
// Figure 5 — multi-tenant service under load
// ---------------------------------------------------------------------------

// Figure5Point is one tenant-count measurement of the analytics service under
// concurrent submission pressure with injected cluster faults.
type Figure5Point struct {
	Tenants   int
	Submitted int
	Completed int
	Rejected  int
	Shed      int
	Failed    int
	Retries   int64
	// Accounted is the service's core robustness invariant: every submission
	// ended in exactly one of the four terminal outcomes above.
	Accounted  bool
	WallTime   time.Duration
	GoodputRPS float64 // completed campaigns per second of wall time
	P50MS      float64 // end-to-end latency of executed campaigns
	P99MS      float64
}

// Figure5 sweeps tenant counts against a fixed-capacity service.
type Figure5 struct {
	PerTenant  int
	QueueDepth int
	Workers    int
	Points     []Figure5Point
}

// figure5FailureRate is the injected transient-fault probability per cluster
// task attempt during the service-load sweep.
const figure5FailureRate = 0.05

// RunFigure5 drives the multi-tenant service runtime: each tenant submits a
// mix of the lab's challenge campaigns concurrently against a service with a
// deliberately small queue and worker pool, while the cluster injects
// transient faults. The point of the figure is the degradation shape — as
// tenants multiply on fixed capacity, admission control sheds and rejects
// excess load while goodput and tail latency stay bounded, and no submission
// is ever lost.
func RunFigure5(ctx context.Context, e *Env, tenantSweep []int, perTenant int) (*Figure5, error) {
	if len(tenantSweep) == 0 {
		tenantSweep = []int{1, 2, 4, 6}
	}
	if perTenant <= 0 {
		perTenant = 6
	}

	// The workload mix: every lab challenge the compiler can satisfy, from
	// the tight-SLA classification campaigns to unconstrained forecasts.
	type shape struct {
		campaign *model.Campaign
		alt      core.Alternative
	}
	var shapes []shape
	for _, ch := range e.lab.Challenges() {
		result, err := e.lab.Compiler().Compile(ch.Campaign)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure5 compile %s: %w", ch.ID, err)
		}
		shapes = append(shapes, shape{ch.Campaign, result.Chosen})
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("experiments: figure5: lab offers no challenges")
	}

	out := &Figure5{PerTenant: perTenant, QueueDepth: 4, Workers: 2}
	for _, tenants := range tenantSweep {
		run, err := runner.New(e.lab.Data(),
			runner.WithSeed(e.Seed),
			runner.WithFailureInjection(figure5FailureRate))
		if err != nil {
			return nil, err
		}
		svc, err := service.New(run, service.Config{
			QueueDepth:   out.QueueDepth,
			Workers:      out.Workers,
			MaxRetries:   2,
			RetryBackoff: cluster.Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: 0.5},
			Seed:         e.Seed,
		})
		if err != nil {
			return nil, err
		}

		start := time.Now()
		type outcome struct {
			ticket *service.Ticket
			err    error
		}
		perTenantOutcomes := make([][]outcome, tenants)
		var wg sync.WaitGroup
		for ti := 0; ti < tenants; ti++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				tenant := fmt.Sprintf("tenant-%d", ti)
				for m := 0; m < perTenant; m++ {
					sh := shapes[(ti+m)%len(shapes)]
					tk, err := svc.Submit(tenant, sh.campaign, sh.alt)
					perTenantOutcomes[ti] = append(perTenantOutcomes[ti], outcome{tk, err})
					// A short stagger keeps pressure sustained rather than a
					// single burst, so the queue sees arrivals throughout.
					time.Sleep(time.Millisecond)
				}
			}(ti)
		}
		wg.Wait()
		if err := svc.Shutdown(ctx); err != nil {
			return nil, fmt.Errorf("experiments: figure5 drain (%d tenants): %w", tenants, err)
		}
		wall := time.Since(start)

		pt := Figure5Point{Tenants: tenants, WallTime: wall}
		accounted := true
		for _, tenantOutcomes := range perTenantOutcomes {
			for _, o := range tenantOutcomes {
				pt.Submitted++
				switch {
				case o.err != nil:
					pt.Rejected++
				case o.ticket == nil:
					accounted = false
				default:
					switch o.ticket.Status() {
					case service.StatusCompleted:
						pt.Completed++
					case service.StatusShed:
						pt.Shed++
					case service.StatusFailed:
						pt.Failed++
					default:
						accounted = false
					}
				}
			}
		}
		pt.Accounted = accounted &&
			pt.Submitted == pt.Completed+pt.Rejected+pt.Shed+pt.Failed &&
			pt.Submitted == tenants*perTenant

		snap := svc.Stats()
		pt.Retries = snap.CounterValue("service.retries")
		if lat, ok := snap.Histograms["service.latency.ms"]; ok {
			pt.P50MS = lat.P50
			pt.P99MS = lat.P99
		}
		if secs := wall.Seconds(); secs > 0 {
			pt.GoodputRPS = float64(pt.Completed) / secs
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// String renders the service-load sweep.
func (f *Figure5) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Tenants),
			fmt.Sprintf("%d", p.Submitted),
			fmt.Sprintf("%d", p.Completed),
			fmt.Sprintf("%d", p.Rejected),
			fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%d", p.Failed),
			fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%v", p.Accounted),
			fmt.Sprintf("%.1f", p.GoodputRPS),
			fmt.Sprintf("%.1f", p.P50MS),
			fmt.Sprintf("%.1f", p.P99MS),
			p.WallTime.Round(time.Millisecond).String(),
		})
	}
	return fmt.Sprintf("Figure 5 — service runtime under multi-tenant load (queue=%d workers=%d, %d campaigns/tenant, %.0f%% injected faults)\n",
		f.QueueDepth, f.Workers, f.PerTenant, figure5FailureRate*100) +
		renderTable([]string{"tenants", "submitted", "completed", "rejected", "shed", "failed", "retries", "accounted", "goodput/s", "p50 ms", "p99 ms", "wall"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 6 — fixed-point iterative dataflow
// ---------------------------------------------------------------------------

// Figure6Point is one iterate measurement: a pipeline at one input size, run
// resident or under a one-byte memory budget (which stages the loop-carried
// state through the spill store between passes).
type Figure6Point struct {
	// Pipeline names the loop: "label-prop" is min-label propagation over a
	// chain-with-shortcuts graph (a wide body: join → union → group-by →
	// sort), "local-delta" is a partition-local saturating counter (a narrow
	// body, the shape the delta-aware short-circuit targets).
	Pipeline string
	Rows     int
	Budgeted bool
	// Iterations is the number of body passes the loop executed before the
	// fixpoint (or the bound); Converged records whether the fixpoint was
	// reached.
	Iterations int64
	Converged  bool
	// DeltaRows counts rows in partitions whose fingerprint changed between
	// passes — the re-executed fraction of the loop state over the whole run.
	DeltaRows int64
	// ShortCircuitParts counts partition passes skipped because their input
	// fingerprint was unchanged (only possible on partition-local bodies).
	ShortCircuitParts int64
	// SpilledBatches counts loop-state and shuffle batches written to spill
	// files; zero on resident points.
	SpilledBatches int64
	WallTime       time.Duration
}

// Figure6 is the iterative-dataflow experiment.
type Figure6 struct{ Points []Figure6Point }

// figure6LabelProp builds min-label propagation over a chain of n nodes with
// every-eighth shortcuts: node i starts labelled i, each pass pushes labels
// along edges and keeps the per-node minimum, and the fixpoint labels every
// node 0. Convergence takes roughly the graph diameter in passes, so the
// iteration counts in the artifact trace the propagation depth.
func figure6LabelProp(n, parts int) *dataflow.Dataset {
	stateSchema := storage.MustSchema(
		storage.Field{Name: "node", Type: storage.TypeInt},
		storage.Field{Name: "label", Type: storage.TypeInt},
	)
	edgeSchema := storage.MustSchema(
		storage.Field{Name: "src", Type: storage.TypeInt},
		storage.Field{Name: "dst", Type: storage.TypeInt},
	)
	var edgeRows []storage.Row
	for i := 0; i+1 < n; i++ {
		edgeRows = append(edgeRows, storage.Row{int64(i), int64(i + 1)})
	}
	for i := 0; i+8 < n; i += 8 {
		edgeRows = append(edgeRows, storage.Row{int64(i), int64(i + 8)})
	}
	edges := dataflow.FromRows("edges", edgeSchema, edgeRows, parts)
	state := make([]storage.Row, n)
	for i := range state {
		state[i] = storage.Row{int64(i), int64(i)}
	}
	return dataflow.FromRows("labels", stateSchema, state, parts).
		Iterate(func(loop *dataflow.Dataset) *dataflow.Dataset {
			prop := loop.Join(edges, "node", "src", dataflow.InnerJoin).
				Map("propagate", stateSchema, func(r dataflow.Record) (storage.Row, error) {
					return storage.Row{r.Int("dst"), r.Int("label")}, nil
				})
			return loop.Union(prop).
				GroupBy("node").Agg(dataflow.Min("label")).
				Map("to-state", stateSchema, func(r dataflow.Record) (storage.Row, error) {
					return storage.Row{r.Int("node"), r.Int("min_label")}, nil
				}).
				Sort(dataflow.SortOrder{Column: "node"})
		}, dataflow.WithMaxIterations(4*n))
}

// figure6LocalDelta builds a partition-local loop: every row counts up to its
// cap, caps staggered per partition so partitions saturate (and stop
// changing) at different passes. The narrow body qualifies for the
// delta-aware fast path, so saturated partitions are carried over without
// re-executing — the ShortCircuitParts column measures exactly that.
func figure6LocalDelta(n, parts int) *dataflow.Dataset {
	schema := storage.MustSchema(
		storage.Field{Name: "v", Type: storage.TypeInt},
		storage.Field{Name: "cap", Type: storage.TypeInt},
	)
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{int64(0), int64(4 + 8*(i%parts))}
	}
	return dataflow.FromRows("counters", schema, rows, parts).
		Iterate(func(loop *dataflow.Dataset) *dataflow.Dataset {
			return loop.Map("inc-to-cap", schema, func(r dataflow.Record) (storage.Row, error) {
				v, cap := r.Int("v"), r.Int("cap")
				if v < cap {
					v++
				}
				return storage.Row{v, cap}, nil
			})
		})
}

// RunFigure6 sweeps input sizes over the two iterate pipelines, each measured
// resident and with a one-byte memory budget (the arm that stages the
// loop-carried state through the spill store between passes and must stay
// bit-identical — the equivalence tests pin that; the artifact records its
// spill traffic).
func RunFigure6(ctx context.Context, e *Env, rowSweep []int) (*Figure6, error) {
	if len(rowSweep) == 0 {
		rowSweep = []int{64, 256}
	}
	const parts = 4
	pipelines := []struct {
		name  string
		build func(n, parts int) *dataflow.Dataset
	}{
		{"label-prop", figure6LabelProp},
		{"local-delta", figure6LocalDelta},
	}
	out := &Figure6{}
	for _, pl := range pipelines {
		for _, n := range rowSweep {
			for _, budgeted := range []bool{false, true} {
				cfg := cluster.Uniform(1, parts, 0)
				cfg.Seed = e.Seed
				cl, err := cluster.New(cfg)
				if err != nil {
					return nil, err
				}
				opts := []dataflow.EngineOption{dataflow.WithShufflePartitions(parts)}
				if budgeted {
					opts = append(opts, dataflow.WithMemoryBudget(1))
				}
				engine, err := dataflow.NewEngine(cl, opts...)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := engine.Collect(ctx, pl.build(n, parts))
				if err != nil {
					return nil, err
				}
				out.Points = append(out.Points, Figure6Point{
					Pipeline:          pl.name,
					Rows:              n,
					Budgeted:          budgeted,
					Iterations:        res.Stats.IterateIterations,
					Converged:         res.Stats.IterateConverged,
					DeltaRows:         res.Stats.IterateDeltaRows,
					ShortCircuitParts: res.Stats.IterateShortCircuitPartitions,
					SpilledBatches:    res.Stats.SpilledBatches,
					WallTime:          time.Since(start),
				})
			}
		}
	}
	return out, nil
}

// String renders the figure data.
func (f *Figure6) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			p.Pipeline,
			fmt.Sprintf("%d", p.Rows),
			fmt.Sprintf("%v", p.Budgeted),
			fmt.Sprintf("%d", p.Iterations),
			fmt.Sprintf("%v", p.Converged),
			fmt.Sprintf("%d", p.DeltaRows),
			fmt.Sprintf("%d", p.ShortCircuitParts),
			fmt.Sprintf("%d", p.SpilledBatches),
			p.WallTime.Round(time.Millisecond).String(),
		})
	}
	return "Figure 6 — fixed-point iterative dataflow (Iterate node: delta-aware re-execution, loop-state spill)\n" +
		renderTable([]string{"pipeline", "rows", "budgeted", "iters", "converged", "delta rows", "short-circuit", "spilled", "wall"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 7 — durable tables: recompute vs table-scan
// ---------------------------------------------------------------------------

// Figure7Point is one materialisation measurement: a preparation pipeline at
// one input size, executed on the engine (recompute), durably committed to
// the segment store, and read back — whole and under a selective predicate
// that exercises zone-map segment pruning.
type Figure7Point struct {
	Rows int
	// RecomputeWall is the engine execution of the preparation pipeline —
	// the cost a campaign pays every time it has no saved table to read.
	RecomputeWall time.Duration
	// SaveWall is the durable commit: segment files written and fsynced,
	// then the manifest WAL record fsynced (the commit point).
	SaveWall time.Duration
	// ScanWall is the full table-scan of the saved segments — the cost of
	// re-reading instead of recomputing.
	ScanWall time.Duration
	// BitIdentical records that the re-read reproduced the recompute exactly,
	// row for row and value for value.
	BitIdentical bool
	// SelectiveWall is a scan under a predicate selecting only the top of the
	// sort-key range; the zone maps prune every segment that cannot match.
	SelectiveWall   time.Duration
	SegmentsScanned int64
	SegmentsSkipped int64
	FramesSkipped   int64
}

// Figure7 is the durable-table experiment: what a campaign saves by scanning
// a previously persisted result instead of recomputing it, and what the
// zone-map pushdown saves on top when the read is selective.
type Figure7 struct{ Points []Figure7Point }

// RunFigure7 sweeps input sizes over a prepare-sort pipeline: each point runs
// the pipeline on the engine, commits the result to a crash-safe store in a
// throwaway directory, re-reads it (verifying bit-identity), and scans it
// under a max-key predicate to measure zone-map segment pruning.
func RunFigure7(ctx context.Context, e *Env, rowSweep []int) (*Figure7, error) {
	if len(rowSweep) == 0 {
		rowSweep = []int{2000, 8000}
	}
	const parts = 4
	schema := storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "value", Type: storage.TypeFloat},
	)
	regions := []string{"eu", "us", "apac", "latam"}
	out := &Figure7{}
	for _, n := range rowSweep {
		rows := make([]storage.Row, n)
		for i := range rows {
			rows[i] = storage.Row{int64(i), regions[i%len(regions)], float64(i%97) / 9.7}
		}
		cfg := cluster.Uniform(1, parts, 0)
		cfg.Seed = e.Seed
		cl, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		engine, err := dataflow.NewEngine(cl, dataflow.WithShufflePartitions(parts))
		if err != nil {
			return nil, err
		}
		// The preparation pipeline: drop a third of the rows, rescale, and
		// sort by id — the sort makes every saved segment a contiguous id
		// range, which is what gives the zone maps their pruning power.
		plan := dataflow.FromRows("events", schema, rows, parts).
			Filter("drop every third", func(r dataflow.Record) (bool, error) {
				return r.Int("id")%3 != 0, nil
			}).
			Map("rescale", schema, func(r dataflow.Record) (storage.Row, error) {
				return storage.Row{r.Int("id"), r.String("region"), r.Float("value") * 10}, nil
			}).
			Sort(dataflow.SortOrder{Column: "id"})

		start := time.Now()
		res, err := engine.Collect(ctx, plan)
		if err != nil {
			return nil, err
		}
		recompute := time.Since(start)

		dir, err := os.MkdirTemp("", "toreador-figure7-*")
		if err != nil {
			return nil, err
		}
		point, err := figure7Measure(dir, schema, res.Rows)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		point.Rows = n
		point.RecomputeWall = recompute
		out.Points = append(out.Points, *point)
	}
	return out, nil
}

// figure7Measure commits rows to a fresh store under dir and measures the
// save, the verified full re-read and the selective zone-pruned scan.
func figure7Measure(dir string, schema *storage.Schema, rows []storage.Row) (*Figure7Point, error) {
	st, err := store.Open(dir,
		store.WithSegmentRows(1024), store.WithFrameRows(256))
	if err != nil {
		return nil, err
	}
	defer st.Close()
	const table = "figure7/prepared"

	start := time.Now()
	if err := st.SaveRows(table, schema, rows, store.WithBloomColumn("region")); err != nil {
		return nil, err
	}
	point := &Figure7Point{SaveWall: time.Since(start)}

	start = time.Now()
	reread, err := st.Rows(table)
	if err != nil {
		return nil, err
	}
	point.ScanWall = time.Since(start)
	point.BitIdentical = reflect.DeepEqual(rows, reread)

	maxID := int64(0)
	idIdx := schema.IndexOf("id")
	for _, row := range rows {
		if v := row[idIdx].(int64); v > maxID {
			maxID = v
		}
	}
	pred, err := store.ParsePred(fmt.Sprintf("id >= %d", maxID), schema)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	stats, err := st.Scan(table, store.Filter{pred}, func(*storage.ColumnBatch) error { return nil })
	if err != nil {
		return nil, err
	}
	point.SelectiveWall = time.Since(start)
	point.SegmentsScanned = int64(stats.SegmentsScanned)
	point.SegmentsSkipped = int64(stats.SegmentsSkipped)
	point.FramesSkipped = int64(stats.FramesSkipped)
	return point, nil
}

// String renders the figure data.
func (f *Figure7) String() string {
	rows := make([][]string, 0, len(f.Points))
	for _, p := range f.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Rows),
			p.RecomputeWall.Round(time.Millisecond).String(),
			p.SaveWall.Round(time.Millisecond).String(),
			p.ScanWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%v", p.BitIdentical),
			p.SelectiveWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", p.SegmentsScanned),
			fmt.Sprintf("%d", p.SegmentsSkipped),
			fmt.Sprintf("%d", p.FramesSkipped),
		})
	}
	return "Figure 7 — durable tables (recompute vs table-scan, zone-map segment pruning)\n" +
		renderTable([]string{"rows", "recompute", "save", "scan", "bit-identical", "selective", "seg scanned", "seg skipped", "frames skipped"}, rows)
}
