package catalog

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

func validDescriptor() Descriptor {
	return Descriptor{
		ID: "test-svc", Name: "Test service", Area: model.AreaPreparation,
		Capability: "test", MaxSensitivity: storage.Internal,
		SupportsBatch: true, CostPerKRows: 0.01, MillisPerKRows: 1, Quality: 0,
	}
}

func TestDescriptorValidate(t *testing.T) {
	if err := validDescriptor().Validate(); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	mutations := map[string]func(*Descriptor){
		"empty id":             func(d *Descriptor) { d.ID = "" },
		"empty name":           func(d *Descriptor) { d.Name = " " },
		"bad area":             func(d *Descriptor) { d.Area = "somewhere" },
		"analytics no task":    func(d *Descriptor) { d.Area = model.AreaAnalytics },
		"task outside area":    func(d *Descriptor) { d.Task = model.TaskClustering },
		"empty capability":     func(d *Descriptor) { d.Capability = "" },
		"no processing style":  func(d *Descriptor) { d.SupportsBatch = false },
		"negative cost":        func(d *Descriptor) { d.CostPerKRows = -1 },
		"negative latency":     func(d *Descriptor) { d.MillisPerKRows = -1 },
		"quality out of range": func(d *Descriptor) { d.Quality = 1.5 },
	}
	for name, mutate := range mutations {
		d := validDescriptor()
		mutate(&d)
		if err := d.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("%s: err = %v, want ErrInvalidService", name, err)
		}
	}
}

func TestDescriptorEstimates(t *testing.T) {
	d := Descriptor{CostPerKRows: 0.5, MillisPerKRows: 100}
	if got := d.EstimateCost(2000); got != 1.0 {
		t.Errorf("cost = %v, want 1.0", got)
	}
	if got := d.EstimateCost(0); got != 0 {
		t.Errorf("cost of 0 rows = %v", got)
	}
	if got := d.EstimateLatencyMillis(2000, 1); got != 200 {
		t.Errorf("latency = %v, want 200", got)
	}
	if got := d.EstimateLatencyMillis(2000, 4); got != 50 {
		t.Errorf("parallel latency = %v, want 50", got)
	}
	if got := d.EstimateLatencyMillis(2000, 0); got != 200 {
		t.Errorf("latency with parallelism 0 = %v, want 200 (clamped to 1)", got)
	}
}

func TestRegistryRegisterAndGet(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(validDescriptor()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(validDescriptor()); !errors.Is(err, ErrDuplicateService) {
		t.Errorf("duplicate err = %v", err)
	}
	bad := validDescriptor()
	bad.ID = ""
	if err := r.Register(bad); !errors.Is(err, ErrInvalidService) {
		t.Errorf("invalid err = %v", err)
	}
	got, err := r.Get("test-svc")
	if err != nil || got.Name != "Test service" {
		t.Errorf("Get = %+v, %v", got, err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrUnknownService) {
		t.Errorf("unknown err = %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister must panic on invalid descriptor")
		}
	}()
	NewRegistry().MustRegister(Descriptor{})
}

func TestDefaultRegistryCoverage(t *testing.T) {
	r := DefaultRegistry()
	if r.Len() < 18 {
		t.Errorf("default registry has %d services, want >= 18", r.Len())
	}
	// Every area must be populated.
	for _, area := range model.Areas() {
		if len(r.ByArea(area)) == 0 {
			t.Errorf("area %s has no services", area)
		}
	}
	// Every analytics task must have at least one implementation, and
	// classification/forecasting/anomaly must have genuine alternatives.
	for _, task := range model.Tasks() {
		candidates := r.CandidatesForTask(task)
		if len(candidates) == 0 {
			t.Errorf("task %s has no services", task)
		}
	}
	if len(r.CandidatesForTask(model.TaskClassification)) < 3 {
		t.Error("classification needs at least 3 alternatives for the Labs comparisons")
	}
	if len(r.CandidatesForTask(model.TaskForecasting)) < 2 {
		t.Error("forecasting needs at least 2 alternatives")
	}
	if len(r.CandidatesForTask(model.TaskAnomaly)) < 2 {
		t.Error("anomaly detection needs at least 2 alternatives")
	}
	// Every descriptor must be individually valid.
	for _, d := range r.All() {
		if err := d.Validate(); err != nil {
			t.Errorf("built-in descriptor %s invalid: %v", d.ID, err)
		}
	}
}

func TestDefaultRegistryComplianceProperties(t *testing.T) {
	r := DefaultRegistry()
	// There must be at least one anonymising preparation service, otherwise
	// strict regimes can never be satisfied.
	anonymizers := 0
	for _, d := range r.ByArea(model.AreaPreparation) {
		if d.Anonymizes {
			anonymizers++
		}
	}
	if anonymizers < 2 {
		t.Errorf("preparation anonymizers = %d, want >= 2 (pseudonymize + strict mask)", anonymizers)
	}
	// Analytics services must not be cleared for raw personal data: that is
	// what forces the compiler to insert anonymisation steps.
	for _, d := range r.ByArea(model.AreaAnalytics) {
		if d.MaxSensitivity >= storage.Personal {
			t.Errorf("analytics service %s must not accept raw personal data", d.ID)
		}
	}
	// Both processing styles must be available for the deployment crossover
	// experiment.
	styles := map[string]bool{}
	for _, d := range r.ByArea(model.AreaProcessing) {
		if d.SupportsBatch {
			styles["batch"] = true
		}
		if d.SupportsStreaming {
			styles["stream"] = true
		}
	}
	if !styles["batch"] || !styles["stream"] {
		t.Error("processing area must offer both batch and streaming engines")
	}
	// Display must offer an aggregate-only option for strict campaigns.
	hasAggregateDisplay := false
	for _, d := range r.ByArea(model.AreaDisplay) {
		if d.Aggregates {
			hasAggregateDisplay = true
		}
	}
	if !hasAggregateDisplay {
		t.Error("display area must contain an aggregate-only service")
	}
}

func TestCandidatesForTaskOrdering(t *testing.T) {
	r := DefaultRegistry()
	candidates := r.CandidatesForTask(model.TaskClassification)
	for i := 1; i < len(candidates); i++ {
		if candidates[i].Quality > candidates[i-1].Quality {
			t.Error("candidates must be sorted by descending quality")
		}
	}
	if candidates[0].ID != "classify-logreg" {
		t.Errorf("best classifier = %s, want classify-logreg", candidates[0].ID)
	}
}

func TestByCapability(t *testing.T) {
	r := DefaultRegistry()
	if got := r.ByCapability("pseudonymize"); len(got) != 1 || got[0].ID != "pseudonymize-pii" {
		t.Errorf("ByCapability(pseudonymize) = %v", got)
	}
	if got := r.ByCapability("does-not-exist"); len(got) != 0 {
		t.Errorf("unknown capability = %v", got)
	}
}

func TestAllSorted(t *testing.T) {
	r := DefaultRegistry()
	all := r.All()
	for i := 1; i < len(all); i++ {
		if all[i].ID < all[i-1].ID {
			t.Error("All must be sorted by id")
			break
		}
	}
}
