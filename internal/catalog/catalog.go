// Package catalog implements the TOREADOR service catalog: the registry of
// concrete services the model-driven compiler can choose from when turning a
// declarative campaign into a procedural service composition.
//
// Each service belongs to one of the five design areas and carries the
// capability, compliance, cost and quality metadata the compiler, the
// compliance engine and the planner need to enumerate and compare
// alternatives ("identify alternative options, and investigate the
// consequences of their choices", §3 of the paper).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/storage"
)

// Errors returned by the registry.
var (
	ErrDuplicateService = errors.New("catalog: duplicate service id")
	ErrUnknownService   = errors.New("catalog: unknown service")
	ErrInvalidService   = errors.New("catalog: invalid service descriptor")
)

// Descriptor describes one service offered by the platform.
type Descriptor struct {
	// ID uniquely identifies the service (kebab-case).
	ID string `json:"id"`
	// Name is the human-readable service name.
	Name string `json:"name"`
	// Area is the design area the service belongs to.
	Area model.Area `json:"area"`
	// Task is the analytics task implemented by the service; empty for
	// non-analytics areas.
	Task model.AnalyticsTask `json:"task,omitempty"`
	// Capability is a machine-readable tag of what the service does
	// (e.g. "pseudonymize", "ingest_batch", "report_dashboard").
	Capability string `json:"capability"`
	// MaxSensitivity is the highest data sensitivity the service is cleared
	// to process without a prior anonymisation step.
	MaxSensitivity storage.Sensitivity `json:"max_sensitivity"`
	// Anonymizes reports whether the service reduces data sensitivity
	// (pseudonymisation / masking).
	Anonymizes bool `json:"anonymizes,omitempty"`
	// Aggregates reports whether the service outputs only aggregate data
	// (no record-level rows), which matters under the strict regime.
	Aggregates bool `json:"aggregates,omitempty"`
	// SupportsBatch / SupportsStreaming report the processing styles the
	// service can run under.
	SupportsBatch     bool `json:"supports_batch"`
	SupportsStreaming bool `json:"supports_streaming"`
	// CostPerKRows is the monetary cost of processing 1000 rows.
	CostPerKRows float64 `json:"cost_per_k_rows"`
	// MillisPerKRows is the estimated latency contribution per 1000 rows.
	MillisPerKRows float64 `json:"millis_per_k_rows"`
	// Quality is the expected analytics quality in [0,1]; 0 for services
	// whose quality is not meaningful (ingestion, display).
	Quality float64 `json:"quality,omitempty"`
	// Params carries service-specific default parameters.
	Params map[string]string `json:"params,omitempty"`
}

// Validate reports descriptor problems.
func (d Descriptor) Validate() error {
	var problems []string
	if strings.TrimSpace(d.ID) == "" {
		problems = append(problems, "id is empty")
	}
	if strings.TrimSpace(d.Name) == "" {
		problems = append(problems, "name is empty")
	}
	if !d.Area.Valid() {
		problems = append(problems, fmt.Sprintf("unknown area %q", d.Area))
	}
	if d.Area == model.AreaAnalytics && !d.Task.Valid() {
		problems = append(problems, "analytics services must declare a task")
	}
	if d.Area != model.AreaAnalytics && d.Task != "" {
		problems = append(problems, "non-analytics services must not declare a task")
	}
	if strings.TrimSpace(d.Capability) == "" {
		problems = append(problems, "capability is empty")
	}
	if !d.SupportsBatch && !d.SupportsStreaming {
		problems = append(problems, "service must support batch, streaming, or both")
	}
	if d.CostPerKRows < 0 || d.MillisPerKRows < 0 {
		problems = append(problems, "negative cost or latency")
	}
	if d.Quality < 0 || d.Quality > 1 {
		problems = append(problems, fmt.Sprintf("quality %v out of [0,1]", d.Quality))
	}
	if len(problems) > 0 {
		return fmt.Errorf("%w (%s): %s", ErrInvalidService, d.ID, strings.Join(problems, "; "))
	}
	return nil
}

// EstimateCost returns the monetary cost of processing rows records.
func (d Descriptor) EstimateCost(rows int) float64 {
	if rows <= 0 {
		return 0
	}
	return d.CostPerKRows * float64(rows) / 1000
}

// EstimateLatencyMillis returns the estimated latency contribution in
// milliseconds when processing rows records with the given parallelism.
func (d Descriptor) EstimateLatencyMillis(rows, parallelism int) float64 {
	if rows <= 0 {
		return 0
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return d.MillisPerKRows * float64(rows) / 1000 / float64(parallelism)
}

// Registry stores service descriptors. The zero value is not usable; use
// NewRegistry or DefaultRegistry.
type Registry struct {
	mu       sync.RWMutex
	services map[string]Descriptor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]Descriptor)}
}

// Register validates and adds a descriptor.
func (r *Registry) Register(d Descriptor) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.services[d.ID]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateService, d.ID)
	}
	r.services[d.ID] = d
	return nil
}

// MustRegister is Register that panics on error; used for the built-in
// catalog whose descriptors are statically known.
func (r *Registry) MustRegister(d Descriptor) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Get returns the descriptor with the given id.
func (r *Registry) Get(id string) (Descriptor, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.services[id]
	if !ok {
		return Descriptor{}, fmt.Errorf("%w: %q", ErrUnknownService, id)
	}
	return d, nil
}

// Len returns the number of registered services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// All returns every descriptor sorted by id.
func (r *Registry) All() []Descriptor {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Descriptor, 0, len(r.services))
	for _, d := range r.services {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByArea returns every descriptor of the given area, sorted by id.
func (r *Registry) ByArea(area model.Area) []Descriptor {
	var out []Descriptor
	for _, d := range r.All() {
		if d.Area == area {
			out = append(out, d)
		}
	}
	return out
}

// CandidatesForTask returns the analytics services implementing the given
// task, sorted by descending quality (ties broken by id).
func (r *Registry) CandidatesForTask(task model.AnalyticsTask) []Descriptor {
	var out []Descriptor
	for _, d := range r.All() {
		if d.Area == model.AreaAnalytics && d.Task == task {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Quality != out[j].Quality {
			return out[i].Quality > out[j].Quality
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ByCapability returns services exposing the given capability, sorted by id.
func (r *Registry) ByCapability(capability string) []Descriptor {
	var out []Descriptor
	for _, d := range r.All() {
		if d.Capability == capability {
			out = append(out, d)
		}
	}
	return out
}

// DefaultRegistry returns the built-in catalog: every analytics algorithm of
// the analytics package plus the ingestion, preparation, processing and
// display services the compiler composes around them. Cost, latency and
// quality figures are the calibration constants used by the planner's static
// estimates; measured values come from actually running the pipeline.
func DefaultRegistry() *Registry {
	r := NewRegistry()

	// Representation: data ingestion connectors.
	r.MustRegister(Descriptor{
		ID: "ingest-batch", Name: "Batch ingestion connector", Area: model.AreaRepresentation,
		Capability: "ingest_batch", MaxSensitivity: storage.Sensitive,
		SupportsBatch: true, CostPerKRows: 0.002, MillisPerKRows: 1.5,
	})
	r.MustRegister(Descriptor{
		ID: "ingest-stream", Name: "Streaming ingestion connector", Area: model.AreaRepresentation,
		Capability: "ingest_stream", MaxSensitivity: storage.Sensitive,
		SupportsStreaming: true, CostPerKRows: 0.004, MillisPerKRows: 0.8,
	})

	// Preparation: cleaning, scaling and privacy transformations.
	r.MustRegister(Descriptor{
		ID: "clean-missing", Name: "Missing-value cleaner", Area: model.AreaPreparation,
		Capability: "clean_missing", MaxSensitivity: storage.Sensitive,
		SupportsBatch: true, SupportsStreaming: true, CostPerKRows: 0.001, MillisPerKRows: 1.0,
	})
	r.MustRegister(Descriptor{
		ID: "normalize-features", Name: "Feature normalizer", Area: model.AreaPreparation,
		Capability: "normalize_features", MaxSensitivity: storage.Sensitive,
		SupportsBatch: true, SupportsStreaming: true, CostPerKRows: 0.001, MillisPerKRows: 1.2,
	})
	r.MustRegister(Descriptor{
		ID: "pseudonymize-pii", Name: "PII pseudonymizer", Area: model.AreaPreparation,
		Capability: "pseudonymize", MaxSensitivity: storage.Sensitive, Anonymizes: true,
		SupportsBatch: true, SupportsStreaming: true, CostPerKRows: 0.003, MillisPerKRows: 2.0,
	})
	r.MustRegister(Descriptor{
		ID: "mask-strict", Name: "Strict anonymizer (masking + generalisation)", Area: model.AreaPreparation,
		Capability: "anonymize_strict", MaxSensitivity: storage.Sensitive, Anonymizes: true,
		SupportsBatch: true, CostPerKRows: 0.006, MillisPerKRows: 4.0,
	})

	// Analytics: one service per algorithm in internal/analytics.
	r.MustRegister(Descriptor{
		ID: "classify-logreg", Name: "Logistic regression classifier", Area: model.AreaAnalytics,
		Task: model.TaskClassification, Capability: "classify",
		MaxSensitivity: storage.Internal, SupportsBatch: true,
		CostPerKRows: 0.020, MillisPerKRows: 18, Quality: 0.85,
	})
	r.MustRegister(Descriptor{
		ID: "classify-nbayes", Name: "Gaussian naive Bayes classifier", Area: model.AreaAnalytics,
		Task: model.TaskClassification, Capability: "classify",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		CostPerKRows: 0.012, MillisPerKRows: 8, Quality: 0.78,
	})
	r.MustRegister(Descriptor{
		ID: "classify-stump", Name: "Decision stump classifier", Area: model.AreaAnalytics,
		Task: model.TaskClassification, Capability: "classify",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		CostPerKRows: 0.006, MillisPerKRows: 4, Quality: 0.65,
	})
	r.MustRegister(Descriptor{
		ID: "classify-majority", Name: "Majority-class baseline", Area: model.AreaAnalytics,
		Task: model.TaskClassification, Capability: "classify",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		CostPerKRows: 0.001, MillisPerKRows: 1, Quality: 0.50,
	})
	r.MustRegister(Descriptor{
		ID: "cluster-kmeans", Name: "K-means clustering", Area: model.AreaAnalytics,
		Task: model.TaskClustering, Capability: "cluster",
		MaxSensitivity: storage.Internal, SupportsBatch: true,
		CostPerKRows: 0.015, MillisPerKRows: 12, Quality: 0.75,
	})
	r.MustRegister(Descriptor{
		ID: "associate-apriori", Name: "Apriori association rules", Area: model.AreaAnalytics,
		Task: model.TaskAssociation, Capability: "associate",
		MaxSensitivity: storage.Internal, SupportsBatch: true,
		CostPerKRows: 0.025, MillisPerKRows: 20, Quality: 0.80,
	})
	r.MustRegister(Descriptor{
		ID: "detect-zscore", Name: "Z-score anomaly detector", Area: model.AreaAnalytics,
		Task: model.TaskAnomaly, Capability: "detect_anomaly",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		CostPerKRows: 0.005, MillisPerKRows: 3, Quality: 0.72,
	})
	r.MustRegister(Descriptor{
		ID: "detect-iqr", Name: "IQR anomaly detector", Area: model.AreaAnalytics,
		Task: model.TaskAnomaly, Capability: "detect_anomaly",
		MaxSensitivity: storage.Internal, SupportsBatch: true,
		CostPerKRows: 0.004, MillisPerKRows: 4, Quality: 0.70,
	})
	r.MustRegister(Descriptor{
		ID: "forecast-holtwinters", Name: "Holt-Winters forecaster", Area: model.AreaAnalytics,
		Task: model.TaskForecasting, Capability: "forecast",
		MaxSensitivity: storage.Internal, SupportsBatch: true,
		CostPerKRows: 0.018, MillisPerKRows: 10, Quality: 0.82,
	})
	r.MustRegister(Descriptor{
		ID: "forecast-moving-average", Name: "Moving-average forecaster", Area: model.AreaAnalytics,
		Task: model.TaskForecasting, Capability: "forecast",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		CostPerKRows: 0.004, MillisPerKRows: 2, Quality: 0.60,
	})
	r.MustRegister(Descriptor{
		ID: "sessionize-gap", Name: "Gap-based sessionizer", Area: model.AreaAnalytics,
		Task: model.TaskSessionization, Capability: "sessionize",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		CostPerKRows: 0.008, MillisPerKRows: 6, Quality: 0.80,
	})
	r.MustRegister(Descriptor{
		ID: "report-aggregate", Name: "Group-and-aggregate reporting", Area: model.AreaAnalytics,
		Task: model.TaskReporting, Capability: "report",
		MaxSensitivity: storage.Internal, SupportsBatch: true, SupportsStreaming: true,
		Aggregates:   true,
		CostPerKRows: 0.006, MillisPerKRows: 5, Quality: 0.90,
	})

	// Processing: execution platforms.
	r.MustRegister(Descriptor{
		ID: "process-batch", Name: "Parallel batch processing engine", Area: model.AreaProcessing,
		Capability: "process_batch", MaxSensitivity: storage.Sensitive,
		SupportsBatch: true, CostPerKRows: 0.010, MillisPerKRows: 6,
	})
	r.MustRegister(Descriptor{
		ID: "process-microbatch", Name: "Micro-batch streaming engine", Area: model.AreaProcessing,
		Capability: "process_stream", MaxSensitivity: storage.Sensitive,
		SupportsStreaming: true, CostPerKRows: 0.018, MillisPerKRows: 2,
	})

	// Display: result delivery.
	r.MustRegister(Descriptor{
		ID: "display-dashboard", Name: "Aggregate dashboard", Area: model.AreaDisplay,
		Capability: "display_dashboard", MaxSensitivity: storage.Internal, Aggregates: true,
		SupportsBatch: true, SupportsStreaming: true, CostPerKRows: 0.001, MillisPerKRows: 0.5,
	})
	r.MustRegister(Descriptor{
		ID: "display-export", Name: "Record-level export", Area: model.AreaDisplay,
		Capability: "display_export", MaxSensitivity: storage.Internal,
		SupportsBatch: true, CostPerKRows: 0.002, MillisPerKRows: 1.0,
	})

	return r
}
