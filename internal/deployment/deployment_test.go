package deployment

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/model"
	"repro/internal/procedural"
)

// composition builds a linear composition from catalog IDs.
func composition(t *testing.T, ids ...string) *procedural.Composition {
	t.Helper()
	reg := catalog.DefaultRegistry()
	c := &procedural.Composition{Campaign: "churn"}
	prev := ""
	for _, id := range ids {
		d, err := reg.Get(id)
		if err != nil {
			t.Fatalf("service %q: %v", id, err)
		}
		step := procedural.Step{ID: id, Service: d}
		if prev != "" {
			step.DependsOn = []string{prev}
		}
		c.Steps = append(c.Steps, step)
		prev = id
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("composition: %v", err)
	}
	return c
}

func batchOnlyComposition(t *testing.T) *procedural.Composition {
	return composition(t, "ingest-batch", "pseudonymize-pii", "classify-logreg", "process-batch", "display-dashboard")
}

func streamableComposition(t *testing.T) *procedural.Composition {
	return composition(t, "ingest-stream", "clean-missing", "detect-zscore", "process-microbatch", "display-dashboard")
}

func TestSupportedPlatforms(t *testing.T) {
	batch := SupportedPlatforms(batchOnlyComposition(t))
	if len(batch) != 2 || batch[0] != PlatformBatch || batch[1] != PlatformSingleNode {
		t.Errorf("batch-only platforms = %v", batch)
	}
	stream := SupportedPlatforms(streamableComposition(t))
	if len(stream) != 1 || stream[0] != PlatformStreaming {
		t.Errorf("stream-only platforms = %v", stream)
	}
	if got := SupportedPlatforms(nil); len(got) != 0 {
		t.Errorf("nil composition platforms = %v", got)
	}
}

func TestPlatformValid(t *testing.T) {
	for _, p := range Platforms() {
		if !p.Valid() {
			t.Errorf("platform %s must be valid", p)
		}
	}
	if Platform("mainframe").Valid() {
		t.Error("unknown platform must be invalid")
	}
}

func TestBindBatch(t *testing.T) {
	b := NewBinder()
	comp := batchOnlyComposition(t)
	plan, err := b.Bind(comp, PlatformBatch, 10000, model.Preferences{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Platform != PlatformBatch || plan.Campaign != "churn" {
		t.Errorf("plan = %+v", plan)
	}
	if plan.Parallelism != 4 {
		t.Errorf("default parallelism = %d, want 4", plan.Parallelism)
	}
	if plan.Nodes*plan.SlotsPerNode < plan.Parallelism {
		t.Errorf("cluster %dx%d cannot honour parallelism %d", plan.Nodes, plan.SlotsPerNode, plan.Parallelism)
	}
	if len(plan.Steps) != 5 {
		t.Errorf("bound steps = %d, want 5", len(plan.Steps))
	}
	if plan.Steps[0].ServiceID != "ingest-batch" {
		t.Errorf("first bound step = %v, want ingestion", plan.Steps[0])
	}
	if plan.EstimatedCost <= 0 || plan.EstimatedLatencyMillis <= 0 || plan.EstimatedFreshnessSeconds <= 0 {
		t.Errorf("estimates must be positive: %+v", plan)
	}
	if plan.Region != "eu" {
		t.Errorf("default region = %q, want eu", plan.Region)
	}
}

func TestBindHonoursPreferences(t *testing.T) {
	b := NewBinder()
	comp := batchOnlyComposition(t)
	plan, err := b.Bind(comp, PlatformBatch, 10000, model.Preferences{Parallelism: 16, PreferredRegion: "us"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parallelism != 16 || plan.Region != "us" {
		t.Errorf("plan = %+v", plan)
	}
	if plan.Nodes*plan.SlotsPerNode < 16 {
		t.Errorf("cluster %dx%d too small for parallelism 16", plan.Nodes, plan.SlotsPerNode)
	}
	// Higher parallelism must not increase the latency estimate.
	small, _ := b.Bind(comp, PlatformBatch, 10000, model.Preferences{Parallelism: 1})
	if plan.EstimatedLatencyMillis > small.EstimatedLatencyMillis {
		t.Error("more parallelism must not slow the estimate down")
	}
}

func TestBindSingleNodeCapsParallelism(t *testing.T) {
	b := NewBinder()
	plan, err := b.Bind(batchOnlyComposition(t), PlatformSingleNode, 1000, model.Preferences{Parallelism: 32})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Nodes != 1 {
		t.Errorf("single node plan has %d nodes", plan.Nodes)
	}
	if plan.Parallelism > plan.SlotsPerNode {
		t.Errorf("parallelism %d exceeds the single node's %d slots", plan.Parallelism, plan.SlotsPerNode)
	}
}

func TestBindErrors(t *testing.T) {
	b := NewBinder()
	comp := batchOnlyComposition(t)
	if _, err := b.Bind(nil, PlatformBatch, 10, model.Preferences{}); !errors.Is(err, ErrBadBinding) {
		t.Error("nil composition must fail")
	}
	if _, err := b.Bind(comp, Platform("alien"), 10, model.Preferences{}); !errors.Is(err, ErrBadBinding) {
		t.Error("unknown platform must fail")
	}
	if _, err := b.Bind(comp, PlatformBatch, -1, model.Preferences{}); !errors.Is(err, ErrBadBinding) {
		t.Error("negative rows must fail")
	}
	if _, err := b.Bind(comp, PlatformStreaming, 10, model.Preferences{}); !errors.Is(err, ErrUnsupportedPlatform) {
		t.Error("binding a batch-only composition to streaming must fail")
	}
	invalid := &procedural.Composition{Campaign: "x"}
	if _, err := b.Bind(invalid, PlatformBatch, 10, model.Preferences{}); !errors.Is(err, ErrBadBinding) {
		t.Error("invalid composition must fail")
	}
}

func TestBindAll(t *testing.T) {
	b := NewBinder()
	plans, err := b.BindAll(batchOnlyComposition(t), 5000, model.Preferences{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2 (batch + single node)", len(plans))
	}
	if plans[PlatformBatch] == nil || plans[PlatformSingleNode] == nil {
		t.Error("expected batch and single-node plans")
	}
}

func TestStreamingFreshnessBeatsBatchAtScale(t *testing.T) {
	// The deployment-crossover claim (Figure 3): for the same streamable
	// composition, the streaming deployment delivers fresher results than the
	// batch-style estimate at large input sizes, while costing more.
	comp := streamableComposition(t)
	// Make a batch-capable clone by checking the same services also support
	// batch; detect-zscore and the others all do except ingest/process: build
	// an equivalent batch pipeline.
	batchComp := composition(t, "ingest-batch", "clean-missing", "detect-zscore", "process-batch", "display-dashboard")
	b := NewBinder()
	rows := 500000

	streamPlan, err := b.Bind(comp, PlatformStreaming, rows, model.Preferences{})
	if err != nil {
		t.Fatal(err)
	}
	batchPlan, err := b.Bind(batchComp, PlatformBatch, rows, model.Preferences{})
	if err != nil {
		t.Fatal(err)
	}
	if streamPlan.EstimatedFreshnessSeconds >= batchPlan.EstimatedFreshnessSeconds {
		t.Errorf("streaming freshness %.2fs must beat batch %.2fs at %d rows",
			streamPlan.EstimatedFreshnessSeconds, batchPlan.EstimatedFreshnessSeconds, rows)
	}
	if streamPlan.EstimatedCost <= batchPlan.EstimatedCost {
		t.Errorf("streaming cost %.4f should exceed batch cost %.4f for the same data",
			streamPlan.EstimatedCost, batchPlan.EstimatedCost)
	}
}

func TestPlanArtifactsAndClusterConfig(t *testing.T) {
	b := NewBinder()
	plan, err := b.Bind(batchOnlyComposition(t), PlatformBatch, 1000, model.Preferences{})
	if err != nil {
		t.Fatal(err)
	}
	arts, err := plan.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plan.json", "cluster.json", "submit.json"} {
		if _, ok := arts[name]; !ok {
			t.Errorf("artifact %s missing", name)
		}
	}
	if !strings.Contains(arts["plan.json"], "parallel-batch") {
		t.Error("plan artifact must mention the platform")
	}
	cfg := plan.ClusterConfig(7, 0.01)
	if len(cfg.Nodes) != plan.Nodes || cfg.Seed != 7 {
		t.Errorf("cluster config = %+v", cfg)
	}
	if cfg.Nodes[0].Slots != plan.SlotsPerNode || cfg.Nodes[0].FailureRate != 0.01 {
		t.Errorf("node spec = %+v", cfg.Nodes[0])
	}
}
