// Package deployment implements the deployment model of the TOREADOR
// methodology: it binds a procedural service composition to a concrete
// execution platform (parallel batch, micro-batch streaming, or single node),
// sizes the simulated cluster, produces static cost/latency/freshness
// estimates, and renders the deployment descriptors that a real installation
// would hand to its resource manager.
package deployment

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/procedural"
)

// Platform enumerates the execution platforms the binder can target.
type Platform string

// Supported platforms.
const (
	// PlatformBatch is a parallel batch engine (Spark-like).
	PlatformBatch Platform = "parallel-batch"
	// PlatformStreaming is a micro-batch streaming engine (Spark
	// Streaming/Storm-like).
	PlatformStreaming Platform = "micro-batch-streaming"
	// PlatformSingleNode is a single-machine fallback for small campaigns.
	PlatformSingleNode Platform = "single-node"
)

// Platforms returns every platform in a stable order.
func Platforms() []Platform {
	return []Platform{PlatformBatch, PlatformStreaming, PlatformSingleNode}
}

// Valid reports whether p is a known platform.
func (p Platform) Valid() bool {
	for _, known := range Platforms() {
		if p == known {
			return true
		}
	}
	return false
}

// Errors returned by the binder.
var (
	ErrUnsupportedPlatform = errors.New("deployment: composition does not support platform")
	ErrBadBinding          = errors.New("deployment: bad binding request")
)

// BoundStep is one composition step bound to execution resources.
type BoundStep struct {
	StepID      string `json:"step_id"`
	ServiceID   string `json:"service_id"`
	Parallelism int    `json:"parallelism"`
}

// Plan is a complete deployment plan: the "ready-to-be-executed Big Data
// pipeline" of the paper, bound to a platform and sized cluster.
type Plan struct {
	// Campaign is the source campaign name.
	Campaign string `json:"campaign"`
	// Platform the plan targets.
	Platform Platform `json:"platform"`
	// Region the pipeline deploys to.
	Region string `json:"region,omitempty"`
	// Parallelism is the degree of data parallelism of every stage.
	Parallelism int `json:"parallelism"`
	// Nodes and SlotsPerNode describe the allocated cluster.
	Nodes        int `json:"nodes"`
	SlotsPerNode int `json:"slots_per_node"`
	// Steps are the bound composition steps in execution order.
	Steps []BoundStep `json:"steps"`
	// InputRows is the data size the estimates refer to.
	InputRows int `json:"input_rows"`
	// EstimatedCost is the static per-run monetary cost estimate.
	EstimatedCost float64 `json:"estimated_cost"`
	// EstimatedLatencyMillis is the static end-to-end latency estimate.
	EstimatedLatencyMillis float64 `json:"estimated_latency_millis"`
	// EstimatedFreshnessSeconds is the estimated delay between data arrival
	// and result availability.
	EstimatedFreshnessSeconds float64 `json:"estimated_freshness_seconds"`
}

// ClusterConfig returns the simulated-cluster configuration matching the plan.
func (p *Plan) ClusterConfig(seed int64, failureRate float64) cluster.Config {
	cfg := cluster.Uniform(p.Nodes, p.SlotsPerNode, failureRate)
	cfg.Seed = seed
	return cfg
}

// Artifacts renders the deployment descriptors (one JSON document per
// artifact name) that a production TOREADOR installation would submit to its
// resource manager. They exist so examples and the CLI can show users what
// "ready to be executed" means concretely.
func (p *Plan) Artifacts() (map[string]string, error) {
	planDoc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("deployment: render plan: %w", err)
	}
	clusterDoc, err := json.MarshalIndent(p.ClusterConfig(1, 0), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("deployment: render cluster spec: %w", err)
	}
	submit := map[string]any{
		"engine":      string(p.Platform),
		"parallelism": p.Parallelism,
		"stages":      len(p.Steps),
		"region":      p.Region,
	}
	submitDoc, err := json.MarshalIndent(submit, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("deployment: render submit spec: %w", err)
	}
	return map[string]string{
		"plan.json":    string(planDoc),
		"cluster.json": string(clusterDoc),
		"submit.json":  string(submitDoc),
	}, nil
}

// platformProfile captures the static calibration constants per platform.
type platformProfile struct {
	// perStepOverheadMillis models job-scheduling overhead added per step.
	perStepOverheadMillis float64
	// costFactor scales the composition's per-service cost.
	costFactor float64
	// nodes / slots of the default allocation.
	nodes, slots int
	// microBatchSeconds is the streaming micro-batch interval (0 for batch).
	microBatchSeconds float64
}

var profiles = map[Platform]platformProfile{
	PlatformBatch:      {perStepOverheadMillis: 120, costFactor: 1.0, nodes: 4, slots: 2},
	PlatformStreaming:  {perStepOverheadMillis: 25, costFactor: 1.6, nodes: 4, slots: 2, microBatchSeconds: 1},
	PlatformSingleNode: {perStepOverheadMillis: 10, costFactor: 0.6, nodes: 1, slots: 2},
}

// SupportedPlatforms returns the platforms every step of the composition can
// run on, in the canonical order.
func SupportedPlatforms(comp *procedural.Composition) []Platform {
	var out []Platform
	if comp == nil {
		return out
	}
	if comp.SupportsBatch() {
		out = append(out, PlatformBatch, PlatformSingleNode)
	}
	if comp.SupportsStreaming() {
		out = append(out, PlatformStreaming)
	}
	sort.Slice(out, func(i, j int) bool { return indexOfPlatform(out[i]) < indexOfPlatform(out[j]) })
	return out
}

func indexOfPlatform(p Platform) int {
	for i, known := range Platforms() {
		if p == known {
			return i
		}
	}
	return len(Platforms())
}

// Binder turns compositions into deployment plans.
type Binder struct {
	// DefaultParallelism is used when the campaign preferences do not request
	// a specific degree of parallelism (default 4).
	DefaultParallelism int
	// DefaultRegion is used when preferences do not pin a region.
	DefaultRegion string
}

// NewBinder returns a binder with sensible defaults.
func NewBinder() *Binder {
	return &Binder{DefaultParallelism: 4, DefaultRegion: "eu"}
}

// Bind produces a deployment plan for the composition on the given platform,
// sized for inputRows records.
func (b *Binder) Bind(comp *procedural.Composition, platform Platform, inputRows int, prefs model.Preferences) (*Plan, error) {
	if comp == nil {
		return nil, fmt.Errorf("%w: nil composition", ErrBadBinding)
	}
	if err := comp.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBinding, err)
	}
	if !platform.Valid() {
		return nil, fmt.Errorf("%w: unknown platform %q", ErrBadBinding, platform)
	}
	if inputRows < 0 {
		return nil, fmt.Errorf("%w: negative input size", ErrBadBinding)
	}
	supported := false
	for _, p := range SupportedPlatforms(comp) {
		if p == platform {
			supported = true
			break
		}
	}
	if !supported {
		return nil, fmt.Errorf("%w %q: %s", ErrUnsupportedPlatform, platform, comp.Fingerprint())
	}

	profile := profiles[platform]
	parallelism := prefs.Parallelism
	if parallelism <= 0 {
		parallelism = b.DefaultParallelism
	}
	if platform == PlatformSingleNode {
		parallelism = minInt(parallelism, profile.slots)
	}
	nodes, slots := profile.nodes, profile.slots
	if platform != PlatformSingleNode {
		// Allocate enough slots to honour the requested parallelism.
		for nodes*slots < parallelism {
			nodes++
		}
	}
	region := prefs.PreferredRegion
	if region == "" {
		region = b.DefaultRegion
	}

	order, err := comp.TopologicalOrder()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBinding, err)
	}
	steps := make([]BoundStep, len(order))
	for i, s := range order {
		steps[i] = BoundStep{StepID: s.ID, ServiceID: s.Service.ID, Parallelism: parallelism}
	}

	latency := comp.EstimateLatencyMillis(inputRows, parallelism) + profile.perStepOverheadMillis*float64(len(order))
	cost := comp.EstimateCost(inputRows) * profile.costFactor
	freshness := latency / 1000
	if platform == PlatformStreaming {
		// A streaming deployment amortises processing over micro-batches, so
		// freshness is the micro-batch interval plus the per-batch latency of
		// a small batch, not the full dataset latency.
		batchRows := maxInt(inputRows/100, 1)
		freshness = profile.microBatchSeconds +
			(comp.EstimateLatencyMillis(batchRows, parallelism)+profile.perStepOverheadMillis*float64(len(order)))/1000
	}

	return &Plan{
		Campaign:                  comp.Campaign,
		Platform:                  platform,
		Region:                    region,
		Parallelism:               parallelism,
		Nodes:                     nodes,
		SlotsPerNode:              slots,
		Steps:                     steps,
		InputRows:                 inputRows,
		EstimatedCost:             cost,
		EstimatedLatencyMillis:    latency,
		EstimatedFreshnessSeconds: freshness,
	}, nil
}

// BindAll binds the composition to every supported platform, returning plans
// keyed by platform.
func (b *Binder) BindAll(comp *procedural.Composition, inputRows int, prefs model.Preferences) (map[Platform]*Plan, error) {
	out := make(map[Platform]*Plan)
	for _, p := range SupportedPlatforms(comp) {
		plan, err := b.Bind(comp, p, inputRows, prefs)
		if err != nil {
			return nil, err
		}
		out[p] = plan
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no platform supports %s", ErrUnsupportedPlatform, comp.Fingerprint())
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
