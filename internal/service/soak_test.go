package service

// soak_test.go is the fault-injection soak: N tenants submit M mixed
// campaigns each against the real runner with injected cluster failures, a
// tight memory budget (every wide operator spills), a small queue, and
// per-campaign deadlines. The invariants under test are the service's core
// accounting guarantees: every submission ends in exactly one of
// completed / rejected / shed / failed, the metric counters agree with the
// observed outcomes, no goroutine outlives the drain, and no spill temp file
// survives.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/storage"
	"repro/internal/workload"
)

// soakWorkload compiles the three campaign shapes the soak mixes: telco
// classification (tight latency SLA), retail reporting (loose SLA), and
// energy forecasting (no latency objective).
func soakWorkload(t *testing.T) (*runner.Runner, []struct {
	campaign *model.Campaign
	alt      core.Alternative
}) {
	t.Helper()
	data := storage.NewCatalog()
	gen := workload.NewGenerator(17)
	for _, v := range []workload.Vertical{workload.VerticalTelco, workload.VerticalRetail, workload.VerticalEnergy} {
		sc, err := gen.Generate(v, workload.Sizing{Customers: 200, Meters: 4, Days: 3, Users: 40})
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Register(data); err != nil {
			t.Fatal(err)
		}
	}
	compiler, err := core.NewCompiler(data)
	if err != nil {
		t.Fatal(err)
	}
	// Spill compression is pinned on (it is also the default) so the soak
	// exercises the v2 frame codec under the race detector: the one-byte
	// budget forces every wide operator through compressed spill files.
	run, err := runner.New(data, runner.WithSeed(7),
		runner.WithFailureInjection(0.05), runner.WithMemoryBudget(1),
		runner.WithSpillCompression(true))
	if err != nil {
		t.Fatal(err)
	}
	campaigns := []*model.Campaign{
		{
			Name: "churn", Vertical: "telco",
			Goal: model.Goal{
				Task: model.TaskClassification, TargetTable: "telco_customers",
				LabelColumn:    "churned",
				FeatureColumns: []string{"tenure_months", "support_calls", "monthly_charge"},
			},
			Sources: []model.DataSource{{Table: "telco_customers", ContainsPersonalData: true, Region: "eu"}},
			Objectives: []model.Objective{
				{Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.6, Hard: true},
				{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 30_000},
			},
			Regime: model.RegimePseudonymize,
		},
		{
			Name: "revenue", Vertical: "retail",
			Goal: model.Goal{
				Task: model.TaskReporting, TargetTable: "retail_baskets",
				ValueColumn: "unit_price", GroupColumns: []string{"category"},
			},
			Sources: []model.DataSource{{Table: "retail_baskets"}},
			Objectives: []model.Objective{
				{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 60_000},
			},
			Regime: model.RegimeNone,
		},
		{
			Name: "load-forecast", Vertical: "energy",
			Goal: model.Goal{
				Task: model.TaskForecasting, TargetTable: "meter_readings",
				ValueColumn: "kwh", TimeColumn: "read_at",
			},
			Sources: []model.DataSource{{Table: "meter_readings", ContainsPersonalData: true, Region: "eu"}},
			Regime:  model.RegimePseudonymize,
		},
	}
	var out []struct {
		campaign *model.Campaign
		alt      core.Alternative
	}
	for _, c := range campaigns {
		res, err := compiler.Compile(c)
		if err != nil {
			t.Fatalf("compile %s: %v", c.Name, err)
		}
		out = append(out, struct {
			campaign *model.Campaign
			alt      core.Alternative
		}{c, res.Chosen})
	}
	return run, out
}

func TestSoakFaultInjection(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	baseGoroutines := runtime.NumGoroutine()

	run, shapes := soakWorkload(t)
	s, err := New(run, Config{
		QueueDepth: 6,
		Workers:    3,
		Tenants: map[string]TenantConfig{
			// One tenant is throttled hard so rate-limit rejections occur.
			"tenant-3": {Burst: 3, RefillPerSec: 20},
		},
		MaxRetries:   2,
		RetryBackoff: cluster.Backoff{Base: time.Millisecond, Max: 8 * time.Millisecond, Jitter: 0.5},
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}

	const tenants = 4
	const perTenant = 8
	type outcome struct {
		ticket *Ticket
		err    error // synchronous rejection
	}
	outcomes := make([][]outcome, tenants)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", ti)
			for m := 0; m < perTenant; m++ {
				shape := shapes[(ti+m)%len(shapes)]
				tk, err := s.Submit(tenant, shape.campaign, shape.alt)
				outcomes[ti] = append(outcomes[ti], outcome{ticket: tk, err: err})
				// A small stagger keeps sustained pressure without the whole
				// burst landing in one scheduling quantum.
				time.Sleep(time.Duration(ti+1) * time.Millisecond)
			}
		}(ti)
	}
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every submission ends in exactly one of the four terminal outcomes.
	var completed, rejected, shed, failed int
	for ti := range outcomes {
		for _, o := range outcomes[ti] {
			switch {
			case o.err != nil:
				if !errors.Is(o.err, ErrOverloaded) && !errors.Is(o.err, ErrRateLimited) {
					t.Errorf("tenant-%d: unexpected rejection class: %v", ti, o.err)
				}
				rejected++
			case o.ticket == nil:
				t.Errorf("tenant-%d: no ticket and no error", ti)
			default:
				select {
				case <-o.ticket.Done():
				default:
					t.Errorf("tenant-%d: ticket %s not terminal after drain", ti, o.ticket.Campaign.Name)
					continue
				}
				switch o.ticket.Status() {
				case StatusCompleted:
					completed++
				case StatusShed:
					shed++
				case StatusFailed:
					failed++
					if _, rerr := o.ticket.Result(); cluster.Permanent(rerr) {
						t.Errorf("permanent failure in soak (all plans are valid): %v", rerr)
					}
				default:
					t.Errorf("tenant-%d: non-terminal status %s", ti, o.ticket.Status())
				}
			}
		}
	}
	total := tenants * perTenant
	if completed+rejected+shed+failed != total {
		t.Errorf("accounting: %d completed + %d rejected + %d shed + %d failed != %d submitted",
			completed, rejected, shed, failed, total)
	}
	if completed == 0 {
		t.Error("soak completed nothing; the service made no progress")
	}
	t.Logf("soak: %d completed, %d rejected, %d shed, %d failed (of %d)",
		completed, rejected, shed, failed, total)

	// The metric counters must tell the same story.
	snap := s.Stats()
	if got := snap.CounterValue("service.submitted"); got != int64(total) {
		t.Errorf("service.submitted = %d, want %d", got, total)
	}
	if got := snap.CounterValue("service.rejected"); got != int64(rejected) {
		t.Errorf("service.rejected = %d, want %d", got, rejected)
	}
	if got := snap.CounterValue("service.completed"); got != int64(completed) {
		t.Errorf("service.completed = %d, want %d", got, completed)
	}
	if got := snap.CounterValue("service.shed"); got != int64(shed) {
		t.Errorf("service.shed = %d, want %d", got, shed)
	}
	if adm := snap.CounterValue("service.admitted"); adm != int64(completed+shed+failed) {
		t.Errorf("service.admitted = %d, want completed+shed+failed = %d", adm, completed+shed+failed)
	}
	if lat := snap.Histograms["service.latency.ms"]; lat.Count != int64(completed+failed) {
		t.Errorf("latency histogram count = %d, want %d", lat.Count, completed+failed)
	}

	// No goroutine may outlive the drain and no spill file may survive.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d > baseline %d\n%s", n, baseGoroutines,
			buf[:runtime.Stack(buf, true)])
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "toreador-") {
			t.Errorf("leaked spill file after soak: %s", e.Name())
		}
	}
}
