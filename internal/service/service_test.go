package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/deployment"
	"repro/internal/model"
	"repro/internal/procedural"
	"repro/internal/runner"
	"repro/internal/sla"
)

// fakeRunner executes campaigns according to a per-campaign script; a nil
// script entry succeeds immediately. An optional gate blocks every run until
// released so tests can fill the queue deterministically.
type fakeRunner struct {
	mu     sync.Mutex
	script map[string]func(ctx context.Context, attempt int) error
	calls  map[string]int
	ran    []string // campaign names in execution order
	gate   chan struct{}
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{
		script: map[string]func(context.Context, int) error{},
		calls:  map[string]int{},
	}
}

func (f *fakeRunner) Run(ctx context.Context, c *model.Campaign, _ core.Alternative) (*runner.Report, error) {
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	f.calls[c.Name]++
	attempt := f.calls[c.Name]
	f.ran = append(f.ran, c.Name)
	fn := f.script[c.Name]
	f.mu.Unlock()
	if fn != nil {
		if err := fn(ctx, attempt); err != nil {
			return nil, err
		}
	}
	return &runner.Report{Campaign: c.Name}, nil
}

func (f *fakeRunner) order() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ran...)
}

// testAlt is a minimal compiled alternative that passes Submit validation.
func testAlt(estimates sla.Measurement) core.Alternative {
	return core.Alternative{
		Composition: &procedural.Composition{},
		Plan:        &deployment.Plan{Parallelism: 1},
		Estimates:   estimates,
	}
}

// campaignWithLatency builds a campaign with an at-most latency objective in
// milliseconds; target <= 0 omits the objective.
func campaignWithLatency(name string, targetMs float64) *model.Campaign {
	c := &model.Campaign{Name: name}
	if targetMs > 0 {
		c.Objectives = []model.Objective{{
			Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: targetMs,
		}}
	}
	return c
}

// transientErr harvests a real injected-failure error chain from a cluster
// with 100% failure injection, so tests exercise the exact error shape the
// service sees in production.
func transientErr(t *testing.T) error {
	t.Helper()
	cfg := cluster.Uniform(1, 1, 0.999)
	cfg.MaxAttempts = 1
	cl, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := cl.RunJob(context.Background(), []cluster.Task{{Name: "t"}}); err != nil {
			if !cluster.Transient(err) {
				t.Fatalf("harvested error is not transient: %v", err)
			}
			return err
		}
	}
	t.Fatal("failure injection at 0.999 never fired")
	return nil
}

func shutdownOK(t *testing.T, s *Service) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(newFakeRunner(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownOK(t, s)
	if _, err := New(nil, Config{}); !errors.Is(err, ErrBadSubmit) {
		t.Errorf("nil runner err = %v", err)
	}
	if _, err := s.Submit("", campaignWithLatency("c", 0), testAlt(nil)); !errors.Is(err, ErrBadSubmit) {
		t.Errorf("empty tenant err = %v", err)
	}
	if _, err := s.Submit("t", nil, testAlt(nil)); !errors.Is(err, ErrBadSubmit) {
		t.Errorf("nil campaign err = %v", err)
	}
	if _, err := s.Submit("t", campaignWithLatency("c", 0), core.Alternative{}); !errors.Is(err, ErrBadSubmit) {
		t.Errorf("uncompiled alternative err = %v", err)
	}
}

func TestSubmitRunsCampaign(t *testing.T) {
	run := newFakeRunner()
	s, err := New(run, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("acme", campaignWithLatency("churn", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	report, rerr := tk.Result()
	if rerr != nil || report == nil || report.Campaign != "churn" {
		t.Fatalf("result = %v, %v", report, rerr)
	}
	if tk.Status() != StatusCompleted {
		t.Errorf("status = %s, want completed", tk.Status())
	}
	shutdownOK(t, s)
	snap := s.Stats()
	if snap.CounterValue("service.admitted") != 1 || snap.CounterValue("service.completed") != 1 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Histograms["service.latency.ms"].Count != 1 {
		t.Errorf("latency histogram = %+v", snap.Histograms["service.latency.ms"])
	}
}

// TestSLAOrdering blocks the single worker, queues campaigns with varied
// latency objectives, and verifies tight targets run before loose ones and
// before campaigns with no latency objective at all.
func TestSLAOrdering(t *testing.T) {
	run := newFakeRunner()
	run.gate = make(chan struct{})
	s, err := New(run, Config{Workers: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	// First submission occupies the worker (blocked on the gate).
	first, err := s.Submit("acme", campaignWithLatency("warmup", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, first)

	var tickets []*Ticket
	for _, sub := range []struct {
		name   string
		target float64
	}{
		{"loose", 60_000}, {"none", 0}, {"tight", 500}, {"medium", 5_000},
	} {
		tk, err := s.Submit("acme", campaignWithLatency(sub.name, sub.target), testAlt(nil))
		if err != nil {
			t.Fatalf("submit %s: %v", sub.name, err)
		}
		tickets = append(tickets, tk)
	}
	close(run.gate)
	for _, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	shutdownOK(t, s)
	got := run.order()
	want := []string{"warmup", "tight", "medium", "loose", "none"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want %v", got, want)
	}
}

// TestSLATiebreakUsesEstimates pins the sla.Compare tiebreak: equal latency
// targets order by estimated SLA standing (feasible/higher score first).
func TestSLATiebreakUsesEstimates(t *testing.T) {
	run := newFakeRunner()
	run.gate = make(chan struct{})
	s, err := New(run, Config{Workers: 1, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit("acme", campaignWithLatency("warmup", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, first)

	// Same latency target; the infeasible estimate (accuracy below a hard
	// floor) must run after the feasible one even though submitted first.
	mk := func(name string, accuracy float64) (*model.Campaign, core.Alternative) {
		c := campaignWithLatency(name, 1000)
		c.Objectives = append(c.Objectives, model.Objective{
			Indicator: model.IndicatorAccuracy, Comparison: model.AtLeast, Target: 0.8, Hard: true,
		})
		return c, testAlt(sla.Measurement{
			model.IndicatorLatency: 100, model.IndicatorAccuracy: accuracy,
		})
	}
	cBad, aBad := mk("estimate-bad", 0.2)
	cGood, aGood := mk("estimate-good", 0.95)
	tkBad, err := s.Submit("acme", cBad, aBad)
	if err != nil {
		t.Fatal(err)
	}
	tkGood, err := s.Submit("acme", cGood, aGood)
	if err != nil {
		t.Fatal(err)
	}
	close(run.gate)
	for _, tk := range []*Ticket{tkBad, tkGood} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	shutdownOK(t, s)
	got := run.order()
	want := []string{"warmup", "estimate-good", "estimate-bad"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("execution order = %v, want %v", got, want)
	}
}

// waitRunning polls until the ticket has been picked up by a worker.
func waitRunning(t *testing.T, tk *Ticket) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tk.Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatalf("ticket never started running (status %s)", tk.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionControlOverload fills the queue behind a blocked worker: the
// next equally-urgent submission must be rejected with ErrOverloaded, and
// accounting must cover every submission.
func TestAdmissionControlOverload(t *testing.T) {
	run := newFakeRunner()
	run.gate = make(chan struct{})
	s, err := New(run, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit("acme", campaignWithLatency("running", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, first)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("acme", campaignWithLatency(fmt.Sprintf("q%d", i), 0), testAlt(nil)); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	_, err = s.Submit("acme", campaignWithLatency("overflow", 0), testAlt(nil))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow err = %v, want ErrOverloaded", err)
	}
	close(run.gate)
	shutdownOK(t, s)
	snap := s.Stats()
	if snap.CounterValue("service.rejected.overloaded") != 1 {
		t.Errorf("rejected.overloaded = %d, want 1", snap.CounterValue("service.rejected.overloaded"))
	}
	if sub, acc := snap.CounterValue("service.submitted"),
		snap.CounterValue("service.admitted")+snap.CounterValue("service.rejected"); sub != acc {
		t.Errorf("accounting: submitted %d != admitted+rejected %d", sub, acc)
	}
}

// TestShedDisplacement fills the queue with loose-SLA work; an urgent
// submission must displace the least urgent queued ticket, which completes
// with ErrShed.
func TestShedDisplacement(t *testing.T) {
	run := newFakeRunner()
	run.gate = make(chan struct{})
	s, err := New(run, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Submit("acme", campaignWithLatency("running", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, first)
	loose, err := s.Submit("acme", campaignWithLatency("loose", 60_000), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := s.Submit("acme", campaignWithLatency("unbounded", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := s.Submit("acme", campaignWithLatency("tight", 500), testAlt(nil))
	if err != nil {
		t.Fatalf("urgent submission must displace queued work, got %v", err)
	}
	// The victim is the least urgent queued ticket: the one with no latency
	// objective.
	if err := unbounded.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if unbounded.Status() != StatusShed {
		t.Errorf("victim status = %s, want shed", unbounded.Status())
	}
	if _, serr := unbounded.Result(); !errors.Is(serr, ErrShed) {
		t.Errorf("victim err = %v, want ErrShed", serr)
	}
	close(run.gate)
	for _, tk := range []*Ticket{loose, tight} {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if tk.Status() != StatusCompleted {
			t.Errorf("%s status = %s, want completed", tk.Campaign.Name, tk.Status())
		}
	}
	shutdownOK(t, s)
	if shed := s.Stats().CounterValue("service.shed"); shed != 1 {
		t.Errorf("service.shed = %d, want 1", shed)
	}
}

// TestTenantRateLimiting exhausts a tenant's burst and checks the typed
// rejection, refill behaviour, and isolation between tenants.
func TestTenantRateLimiting(t *testing.T) {
	run := newFakeRunner()
	run.gate = make(chan struct{})
	s, err := New(run, Config{
		Workers: 1, QueueDepth: 16,
		Tenants: map[string]TenantConfig{"capped": {Burst: 2, RefillPerSec: 1000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 2; i++ {
		tk, err := s.Submit("capped", campaignWithLatency(fmt.Sprintf("c%d", i), 0), testAlt(nil))
		if err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	if _, err := s.Submit("capped", campaignWithLatency("over", 0), testAlt(nil)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst-exhausted err = %v, want ErrRateLimited", err)
	}
	// Other tenants are unaffected.
	tk, err := s.Submit("other", campaignWithLatency("free", 0), testAlt(nil))
	if err != nil {
		t.Fatalf("uncapped tenant: %v", err)
	}
	tickets = append(tickets, tk)
	// The bucket refills at 1000/s; within a few ms the tenant is admitted
	// again.
	refillDeadline := time.Now().Add(5 * time.Second)
	for {
		tk, err = s.Submit("capped", campaignWithLatency("refilled", 0), testAlt(nil))
		if err == nil {
			tickets = append(tickets, tk)
			break
		}
		if !errors.Is(err, ErrRateLimited) {
			t.Fatal(err)
		}
		if time.Now().After(refillDeadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(run.gate)
	for _, tk := range tickets {
		if err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	shutdownOK(t, s)
	if n := s.Stats().CounterValue("service.rejected.ratelimited"); n < 1 {
		t.Errorf("rejected.ratelimited = %d, want >= 1", n)
	}
}

// TestLimiterRefill covers the standalone limiter deterministically by
// driving time explicitly.
func TestLimiterRefill(t *testing.T) {
	l := NewLimiter(TenantConfig{Burst: 2, RefillPerSec: 10}, map[string]TenantConfig{
		"vip": {}, // unlimited
	})
	base := time.Unix(1000, 0)
	if !l.Allow("a", base) || !l.Allow("a", base) {
		t.Fatal("burst of 2 must admit twice")
	}
	if l.Allow("a", base) {
		t.Fatal("third immediate submission must be limited")
	}
	// 100ms refills one token at 10/s.
	if !l.Allow("a", base.Add(100*time.Millisecond)) {
		t.Fatal("refilled token must admit")
	}
	if l.Allow("a", base.Add(100*time.Millisecond)) {
		t.Fatal("only one token refilled")
	}
	// Refill caps at the burst.
	if !l.Allow("a", base.Add(time.Hour)) || !l.Allow("a", base.Add(time.Hour)) {
		t.Fatal("bucket must cap at burst, not accumulate an hour of tokens")
	}
	if l.Allow("a", base.Add(time.Hour)) {
		t.Fatal("burst cap exceeded")
	}
	for i := 0; i < 100; i++ {
		if !l.Allow("vip", base) {
			t.Fatal("unlimited tenant must always be admitted")
		}
	}
}

// TestDeadlinePropagation checks that the campaign's latency objective
// becomes a context deadline threaded into the runner, and that a run
// overshooting it fails with a canceled-class error.
func TestDeadlinePropagation(t *testing.T) {
	run := newFakeRunner()
	sawDeadline := make(chan time.Duration, 1)
	run.script["deadlined"] = func(ctx context.Context, _ int) error {
		dl, ok := ctx.Deadline()
		if !ok {
			sawDeadline <- -1
		} else {
			sawDeadline <- time.Until(dl)
		}
		<-ctx.Done() // overshoot the budget
		return ctx.Err()
	}
	run.script["unbounded"] = func(ctx context.Context, _ int) error {
		if _, ok := ctx.Deadline(); ok {
			return errors.New("campaign without latency objective must not get a deadline")
		}
		return nil
	}
	s, err := New(run, Config{Workers: 1, MaxRetries: 0, DeadlineSlack: 2, MinDeadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 40ms target × slack 2 = 80ms deadline.
	tk, err := s.Submit("acme", campaignWithLatency("deadlined", 40), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk.Status() != StatusFailed {
		t.Fatalf("status = %s, want failed", tk.Status())
	}
	if _, rerr := tk.Result(); !cluster.Canceled(rerr) {
		t.Errorf("deadline overshoot err class = %s (%v), want canceled", cluster.Classify(rerr), rerr)
	}
	if d := <-sawDeadline; d <= 0 || d > 80*time.Millisecond {
		t.Errorf("runner saw deadline %v, want (0, 80ms]", d)
	}
	tk2, err := s.Submit("acme", campaignWithLatency("unbounded", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk2.Status() != StatusCompleted {
		rep, rerr := tk2.Result()
		t.Errorf("unbounded campaign = %s (%v %v), want completed", tk2.Status(), rep, rerr)
	}
	shutdownOK(t, s)
}

// TestRetryTransientThenSucceed scripts two transient failures before
// success: the ticket completes, attempts reads 3, and the retry counter
// matches.
func TestRetryTransientThenSucceed(t *testing.T) {
	terr := transientErr(t)
	run := newFakeRunner()
	run.script["flaky"] = func(_ context.Context, attempt int) error {
		if attempt <= 2 {
			return terr
		}
		return nil
	}
	s, err := New(run, Config{Workers: 1, MaxRetries: 3,
		RetryBackoff: cluster.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("acme", campaignWithLatency("flaky", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk.Status() != StatusCompleted {
		_, rerr := tk.Result()
		t.Fatalf("status = %s (%v), want completed", tk.Status(), rerr)
	}
	if tk.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", tk.Attempts())
	}
	shutdownOK(t, s)
	if n := s.Stats().CounterValue("service.retries"); n != 2 {
		t.Errorf("service.retries = %d, want 2", n)
	}
}

// TestRetryExhaustion keeps failing transiently: the ticket fails after
// 1 + MaxRetries attempts with the transient error surfaced.
func TestRetryExhaustion(t *testing.T) {
	terr := transientErr(t)
	run := newFakeRunner()
	run.script["doomed"] = func(_ context.Context, _ int) error { return terr }
	s, err := New(run, Config{Workers: 1, MaxRetries: 2,
		RetryBackoff: cluster.Backoff{Base: time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("acme", campaignWithLatency("doomed", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk.Status() != StatusFailed || tk.Attempts() != 3 {
		t.Errorf("status = %s attempts = %d, want failed after 3", tk.Status(), tk.Attempts())
	}
	if _, rerr := tk.Result(); !cluster.Transient(rerr) {
		t.Errorf("surfaced err = %v, want the transient chain", rerr)
	}
	shutdownOK(t, s)
	snap := s.Stats()
	if n := snap.CounterValue("service.failed.transient"); n != 1 {
		t.Errorf("service.failed.transient = %d, want 1", n)
	}
}

// TestPermanentErrorFailsFast: plan errors must not burn the retry budget.
func TestPermanentErrorFailsFast(t *testing.T) {
	perm := fmt.Errorf("wrap: %w", runner.ErrBadRun)
	run := newFakeRunner()
	run.script["broken"] = func(_ context.Context, _ int) error { return perm }
	s, err := New(run, Config{Workers: 1, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.Submit("acme", campaignWithLatency("broken", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tk.Status() != StatusFailed || tk.Attempts() != 1 {
		t.Errorf("status = %s attempts = %d, want fail-fast after 1", tk.Status(), tk.Attempts())
	}
	if _, rerr := tk.Result(); !errors.Is(rerr, runner.ErrBadRun) {
		t.Errorf("surfaced err = %v, want the permanent chain", rerr)
	}
	shutdownOK(t, s)
	if n := s.Stats().CounterValue("service.retries"); n != 0 {
		t.Errorf("service.retries = %d, want 0 for a permanent error", n)
	}
}

// TestShutdownDrains: queued work completes during drain, later submissions
// are rejected with ErrDraining then ErrClosed, and Shutdown is idempotent.
func TestShutdownDrains(t *testing.T) {
	run := newFakeRunner()
	run.gate = make(chan struct{})
	s, err := New(run, Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := s.Submit("acme", campaignWithLatency(fmt.Sprintf("c%d", i), 0), testAlt(nil))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()

	// Wait for the drain state to become observable, then check rejection.
	// Submissions racing ahead of the Shutdown goroutine's state flip may
	// still be admitted; they simply join the drained queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tk, err := s.Submit("acme", campaignWithLatency("late", 0), testAlt(nil))
		if errors.Is(err, ErrDraining) || errors.Is(err, ErrClosed) {
			break
		}
		if err == nil {
			tickets = append(tickets, tk)
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never became observable: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(run.gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, tk := range tickets {
		if tk.Status() != StatusCompleted {
			t.Errorf("%s = %s, want completed (drain must finish queued work)", tk.Campaign.Name, tk.Status())
		}
	}
	if _, err := s.Submit("acme", campaignWithLatency("postclose", 0), testAlt(nil)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close err = %v, want ErrClosed", err)
	}
	shutdownOK(t, s) // idempotent
}

// TestShutdownExpiredContextSheds: when the drain context expires, queued
// tickets are shed and in-flight runs are cancelled; every ticket still
// reaches a terminal state.
func TestShutdownExpiredContextSheds(t *testing.T) {
	run := newFakeRunner()
	run.script["stuck"] = func(ctx context.Context, _ int) error {
		<-ctx.Done()
		return ctx.Err()
	}
	s, err := New(run, Config{Workers: 1, QueueDepth: 8, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	stuck, err := s.Submit("acme", campaignWithLatency("stuck", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, stuck)
	queued, err := s.Submit("acme", campaignWithLatency("queued", 0), testAlt(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired drain err = %v, want DeadlineExceeded", err)
	}
	if queued.Status() != StatusShed {
		t.Errorf("queued ticket = %s, want shed", queued.Status())
	}
	if stuck.Status() != StatusFailed {
		t.Errorf("in-flight ticket = %s, want failed (cancelled)", stuck.Status())
	}
	if _, rerr := stuck.Result(); !cluster.Canceled(rerr) {
		t.Errorf("in-flight err = %v, want canceled class", rerr)
	}
}

func TestLatencyTargetExtraction(t *testing.T) {
	c := campaignWithLatency("c", 0)
	if got := latencyTargetMs(c); !math.IsInf(got, 1) {
		t.Errorf("no objective target = %v, want +Inf", got)
	}
	c.Objectives = []model.Objective{
		{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 9000},
		{Indicator: model.IndicatorLatency, Comparison: model.AtMost, Target: 4000},
		{Indicator: model.IndicatorLatency, Comparison: model.AtLeast, Target: 1}, // not an upper bound
		{Indicator: model.IndicatorAccuracy, Comparison: model.AtMost, Target: 2}, // wrong indicator
	}
	if got := latencyTargetMs(c); got != 4000 {
		t.Errorf("target = %v, want the tightest at-most bound 4000", got)
	}
}
