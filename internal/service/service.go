// Package service is the multi-tenant analytics service runtime: the piece
// that turns the one-shot campaign runner into Big Data Analytics-as-a-
// Service. Named tenants submit compiled campaigns concurrently; the service
// applies admission control (bounded queue, typed ErrOverloaded), per-tenant
// token-bucket rate limiting, SLA-aware scheduling (latency-tight campaigns
// first), per-request deadlines derived from the campaign's latency
// objective, campaign-level retry with capped exponential backoff for
// transient cluster faults, and graceful degradation — under pressure the
// lowest-SLA-standing queued work is shed with ErrShed, and shutdown drains
// in-flight work before releasing resources.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sla"
)

// Typed admission and lifecycle errors.
var (
	// ErrOverloaded rejects a submission because the queue is full and the
	// submission is not urgent enough to displace queued work.
	ErrOverloaded = errors.New("service: overloaded: submission queue full")
	// ErrRateLimited rejects a submission because the tenant's token bucket
	// is empty.
	ErrRateLimited = errors.New("service: tenant rate limited")
	// ErrShed completes a queued ticket that was evicted to make room for
	// more urgent work, or abandoned by an expiring drain.
	ErrShed = errors.New("service: shed under pressure")
	// ErrDraining rejects submissions arriving after Shutdown began.
	ErrDraining = errors.New("service: draining: not admitting")
	// ErrClosed rejects submissions to a fully shut-down service.
	ErrClosed = errors.New("service: closed")
	// ErrBadSubmit rejects malformed submissions.
	ErrBadSubmit = errors.New("service: bad submission")
)

// Status is the terminal state of an admitted submission.
type Status int

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = iota
	// StatusRunning: picked up by a worker.
	StatusRunning
	// StatusCompleted: the campaign ran and produced a report.
	StatusCompleted
	// StatusShed: evicted under pressure or by an expiring drain (ErrShed).
	StatusShed
	// StatusFailed: the campaign failed permanently, exhausted its retry
	// budget, or blew its deadline.
	StatusFailed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusCompleted:
		return "completed"
	case StatusShed:
		return "shed"
	case StatusFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Runner abstracts runner.Runner so tests can substitute fakes. The real
// runner satisfies it.
type Runner interface {
	Run(ctx context.Context, campaign *model.Campaign, alt core.Alternative) (*runner.Report, error)
}

// Config tunes the service runtime. Zero values select the documented
// defaults.
type Config struct {
	// QueueDepth bounds the submission queue; a full queue rejects with
	// ErrOverloaded (or sheds less urgent queued work). Default 16.
	QueueDepth int
	// Workers is the number of concurrent campaign executions. Default 2.
	Workers int
	// DefaultTenant is the rate-limit config for tenants absent from
	// Tenants. The zero value disables limiting.
	DefaultTenant TenantConfig
	// Tenants overrides the rate-limit config per tenant name.
	Tenants map[string]TenantConfig
	// DeadlineSlack scales a campaign's SLA latency target into its
	// execution deadline (a run is allowed Slack × target before it is cut
	// off). Default 2.
	DeadlineSlack float64
	// MinDeadline floors the derived deadline so tight targets are not
	// impossible to meet on a cold start. Default 50ms.
	MinDeadline time.Duration
	// DefaultDeadline bounds campaigns with no latency objective; <= 0
	// leaves them unbounded.
	DefaultDeadline time.Duration
	// MaxRetries is the campaign-level retry budget for transient failures.
	// Default 2.
	MaxRetries int
	// RetryBackoff shapes the pause between campaign-level retries. A zero
	// value retries after 1ms doubling up to 50ms.
	RetryBackoff cluster.Backoff
	// Seed drives the retry jitter; fixed seeds make schedules
	// reproducible. Default 1.
	Seed int64
}

func (cfg Config) withDefaults() Config {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.DeadlineSlack <= 0 {
		cfg.DeadlineSlack = 2
	}
	if cfg.MinDeadline <= 0 {
		cfg.MinDeadline = 50 * time.Millisecond
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff.Base <= 0 {
		cfg.RetryBackoff = cluster.Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Ticket tracks one admitted submission from queue to terminal state.
type Ticket struct {
	// Tenant and Campaign identify the submission.
	Tenant   string
	Campaign *model.Campaign
	Alt      core.Alternative

	seq           uint64
	pos           int // heap index; -1 when not queued
	latencyTarget float64
	estimate      sla.Evaluation
	submittedAt   time.Time

	mu       sync.Mutex
	status   Status
	report   *runner.Report
	err      error
	attempts int
	done     chan struct{}
}

// Wait blocks until the ticket reaches a terminal state or ctx expires.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done exposes the completion channel for select-based callers.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Status returns the ticket's current state.
func (t *Ticket) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Result returns the report and error of a terminal ticket. Before the
// ticket completes it returns (nil, nil) with the status still in flight.
func (t *Ticket) Result() (*runner.Report, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.report, t.err
}

// Attempts returns how many times the campaign was executed.
func (t *Ticket) Attempts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

func (t *Ticket) setRunning() {
	t.mu.Lock()
	t.status = StatusRunning
	t.mu.Unlock()
}

// finish moves the ticket to a terminal state exactly once.
func (t *Ticket) finish(status Status, report *runner.Report, err error) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.status == StatusCompleted || t.status == StatusShed || t.status == StatusFailed {
		return false
	}
	t.status = status
	t.report = report
	t.err = err
	close(t.done)
	return true
}

// service lifecycle states.
const (
	stateRunning = iota
	stateDraining
	stateClosed
)

// Service is the long-running multi-tenant analytics service.
type Service struct {
	cfg Config
	run Runner
	reg *metrics.Registry

	mu       sync.Mutex
	cond     *sync.Cond
	queue    ticketQueue
	buckets  map[string]*bucket
	seq      uint64
	state    int
	inflight int
	rng      *rand.Rand

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New starts a service executing campaigns on run with cfg.Workers workers.
func New(run Runner, cfg Config) (*Service, error) {
	if run == nil {
		return nil, fmt.Errorf("%w: nil runner", ErrBadSubmit)
	}
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		run:        run,
		reg:        metrics.NewRegistry(),
		buckets:    map[string]*bucket{},
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Metrics exposes the service metric registry.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Stats snapshots the service counters, gauges and latency histograms.
func (s *Service) Stats() metrics.Snapshot { return s.reg.Snapshot() }

// Submit offers a compiled campaign for execution on behalf of tenant. It
// returns synchronously: either an admission error (ErrOverloaded,
// ErrRateLimited, ErrDraining, ErrClosed) or a Ticket that is guaranteed to
// reach exactly one terminal state (completed, shed, or failed).
func (s *Service) Submit(tenant string, campaign *model.Campaign, alt core.Alternative) (*Ticket, error) {
	if tenant == "" || campaign == nil || alt.Composition == nil || alt.Plan == nil {
		return nil, fmt.Errorf("%w: tenant, campaign and compiled alternative are required", ErrBadSubmit)
	}
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg.Counter("service.submitted").Inc()
	switch s.state {
	case stateDraining:
		s.reg.Counter("service.rejected").Inc()
		return nil, ErrDraining
	case stateClosed:
		s.reg.Counter("service.rejected").Inc()
		return nil, ErrClosed
	}
	if !s.tenantBucket(tenant, now).allow(now) {
		s.reg.Counter("service.rejected").Inc()
		s.reg.Counter("service.rejected.ratelimited").Inc()
		return nil, fmt.Errorf("%w: tenant %q", ErrRateLimited, tenant)
	}

	s.seq++
	t := &Ticket{
		Tenant:        tenant,
		Campaign:      campaign,
		Alt:           alt,
		seq:           s.seq,
		pos:           -1,
		latencyTarget: latencyTargetMs(campaign),
		estimate:      sla.Evaluate(campaign.Objectives, alt.Estimates),
		submittedAt:   now,
		done:          make(chan struct{}),
	}

	if len(s.queue) >= s.cfg.QueueDepth {
		// Graceful degradation: a more urgent submission displaces the least
		// urgent queued ticket, which is shed with ErrShed; otherwise the
		// newcomer is rejected with ErrOverloaded.
		victim := s.queue.leastUrgent()
		if victim == nil || !moreUrgent(t, victim) {
			s.reg.Counter("service.rejected").Inc()
			s.reg.Counter("service.rejected.overloaded").Inc()
			return nil, fmt.Errorf("%w: depth %d", ErrOverloaded, s.cfg.QueueDepth)
		}
		s.queue.remove(victim)
		s.shedLocked(victim)
	}
	s.queue.push(t)
	s.reg.Counter("service.admitted").Inc()
	s.reg.Gauge("service.queue_depth").Set(int64(len(s.queue)))
	s.cond.Signal()
	return t, nil
}

// tenantBucket returns the tenant's bucket, building it on first contact.
// Callers hold s.mu.
func (s *Service) tenantBucket(tenant string, now time.Time) *bucket {
	b, ok := s.buckets[tenant]
	if !ok {
		cfg, ok := s.cfg.Tenants[tenant]
		if !ok {
			cfg = s.cfg.DefaultTenant
		}
		b = newBucket(cfg, now)
		s.buckets[tenant] = b
	}
	return b
}

// shedLocked completes a ticket with ErrShed. Callers hold s.mu.
func (s *Service) shedLocked(t *Ticket) {
	if t.finish(StatusShed, nil, fmt.Errorf("%w: tenant %q campaign %q", ErrShed, t.Tenant, t.Campaign.Name)) {
		s.reg.Counter("service.shed").Inc()
	}
}

// worker pulls the most urgent ticket and executes it with deadline + retry.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && s.state == stateRunning {
			s.cond.Wait()
		}
		t := s.queue.popUrgent()
		if t == nil {
			// Empty queue and the service is draining or closed: exit.
			s.mu.Unlock()
			return
		}
		s.inflight++
		s.reg.Gauge("service.queue_depth").Set(int64(len(s.queue)))
		s.reg.Gauge("service.inflight").Set(int64(s.inflight))
		s.mu.Unlock()

		s.execute(t)

		s.mu.Lock()
		s.inflight--
		s.reg.Gauge("service.inflight").Set(int64(s.inflight))
		if s.state != stateRunning && s.inflight == 0 && len(s.queue) == 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// deadlineFor derives the per-request execution deadline from the campaign's
// tightest latency objective; 0 means unbounded.
func (s *Service) deadlineFor(t *Ticket) time.Duration {
	if math.IsInf(t.latencyTarget, 1) {
		return s.cfg.DefaultDeadline
	}
	d := time.Duration(t.latencyTarget * s.cfg.DeadlineSlack * float64(time.Millisecond))
	if d < s.cfg.MinDeadline {
		d = s.cfg.MinDeadline
	}
	return d
}

// retryDelay is the capped exponential backoff with jitter between campaign
// attempts, deterministic under Config.Seed.
func (s *Service) retryDelay(retry int) time.Duration {
	b := s.cfg.RetryBackoff
	if b.Base <= 0 || retry < 1 {
		return 0
	}
	d := b.Base
	for i := 1; i < retry; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		s.mu.Lock()
		f := s.rng.Float64()
		s.mu.Unlock()
		d = time.Duration(float64(d) * (1 - j + 2*j*f))
	}
	return d
}

// execute runs the ticket's campaign under its deadline, retrying transient
// faults with backoff and failing fast on permanent errors.
func (s *Service) execute(t *Ticket) {
	t.setRunning()
	s.reg.Timer("service.queue_wait").ObserveDuration(time.Since(t.submittedAt))
	deadline := s.deadlineFor(t)

	var lastErr error
	for attempt := 1; attempt <= 1+s.cfg.MaxRetries; attempt++ {
		ctx := s.baseCtx
		cancel := context.CancelFunc(func() {})
		if deadline > 0 {
			ctx, cancel = context.WithTimeout(s.baseCtx, deadline)
		}
		start := time.Now()
		report, err := s.run.Run(ctx, t.Campaign, t.Alt)
		cancel()
		t.mu.Lock()
		t.attempts = attempt
		t.mu.Unlock()
		s.reg.Timer("service.run").ObserveDuration(time.Since(start))

		if err == nil {
			s.reg.Counter("service.completed").Inc()
			s.reg.Timer("service.latency").ObserveDuration(time.Since(t.submittedAt))
			t.finish(StatusCompleted, report, nil)
			return
		}
		lastErr = err
		if s.baseCtx.Err() != nil {
			// The service is being torn down: stop retrying immediately.
			break
		}
		if !cluster.Transient(err) || attempt > s.cfg.MaxRetries {
			break
		}
		s.reg.Counter("service.retries").Inc()
		if d := s.retryDelay(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-s.baseCtx.Done():
			}
		}
	}
	s.reg.Counter("service.failed").Inc()
	s.reg.Counter("service.failed." + cluster.Classify(lastErr).String()).Inc()
	s.reg.Timer("service.latency").ObserveDuration(time.Since(t.submittedAt))
	t.finish(StatusFailed, nil, lastErr)
}

// Shutdown stops admitting, drains queued and in-flight campaigns, and
// releases the workers. If ctx expires first the remaining queued tickets are
// shed and in-flight runs are cancelled (their spill stores are released by
// the engine's error paths); Shutdown still waits for the workers to return.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.state == stateClosed {
		s.mu.Unlock()
		return nil
	}
	s.state = stateDraining
	s.cond.Broadcast()
	s.mu.Unlock()

	// Wake the waiters if the drain deadline expires.
	drainDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			for {
				t := s.queue.popUrgent()
				if t == nil {
					break
				}
				s.shedLocked(t)
			}
			s.reg.Gauge("service.queue_depth").Set(0)
			s.mu.Unlock()
			s.baseCancel() // abort in-flight runs
		case <-drainDone:
		}
	}()

	s.mu.Lock()
	for len(s.queue) > 0 || s.inflight > 0 {
		s.cond.Wait()
	}
	s.state = stateClosed
	s.cond.Broadcast()
	s.mu.Unlock()
	close(drainDone)

	s.wg.Wait()
	s.baseCancel()
	return ctx.Err()
}
