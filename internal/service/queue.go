package service

// queue.go is the SLA-aware submission queue: a heap ordering tickets by how
// tight their latency objective is (tight deadlines run first), breaking ties
// with sla.Compare over the alternatives' static estimates, then FIFO. The
// same ordering, reversed, selects the shedding victim when the queue is full
// and a more urgent submission arrives.

import (
	"container/heap"
	"math"

	"repro/internal/model"
	"repro/internal/sla"
)

// latencyTargetMs extracts the campaign's tightest at-most latency objective
// in milliseconds; campaigns without one sort last (+Inf).
func latencyTargetMs(c *model.Campaign) float64 {
	target := math.Inf(1)
	for _, o := range c.Objectives {
		if o.Indicator == model.IndicatorLatency && o.Comparison == model.AtMost && o.Target < target {
			target = o.Target
		}
	}
	return target
}

// moreUrgent reports whether a should run before b.
func moreUrgent(a, b *Ticket) bool {
	if a.latencyTarget != b.latencyTarget {
		return a.latencyTarget < b.latencyTarget
	}
	if c := sla.Compare(a.estimate, b.estimate); c != 0 {
		// Higher estimated SLA standing runs first: that work is the most
		// likely to meet its objectives if scheduled promptly.
		return c > 0
	}
	return a.seq < b.seq
}

// ticketQueue implements heap.Interface; the root is the most urgent ticket.
type ticketQueue []*Ticket

func (q ticketQueue) Len() int           { return len(q) }
func (q ticketQueue) Less(i, j int) bool { return moreUrgent(q[i], q[j]) }
func (q ticketQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].pos = i; q[j].pos = j }
func (q *ticketQueue) Push(x any)        { t := x.(*Ticket); t.pos = len(*q); *q = append(*q, t) }
func (q *ticketQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.pos = -1
	*q = old[:n-1]
	return t
}

// push enqueues a ticket.
func (q *ticketQueue) push(t *Ticket) { heap.Push(q, t) }

// popUrgent removes and returns the most urgent ticket, or nil when empty.
func (q *ticketQueue) popUrgent() *Ticket {
	if len(*q) == 0 {
		return nil
	}
	return heap.Pop(q).(*Ticket)
}

// leastUrgent returns the queued ticket that would be shed first — the one
// every other ticket beats under moreUrgent. The heap only guarantees the
// root; finding the worst is a linear scan over the (bounded) queue.
func (q ticketQueue) leastUrgent() *Ticket {
	var worst *Ticket
	for _, t := range q {
		if worst == nil || moreUrgent(worst, t) {
			worst = t
		}
	}
	return worst
}

// remove drops the ticket at heap position pos.
func (q *ticketQueue) remove(t *Ticket) {
	if t.pos >= 0 && t.pos < len(*q) && (*q)[t.pos] == t {
		heap.Remove(q, t.pos)
	}
}
