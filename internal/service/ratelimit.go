package service

// ratelimit.go implements the per-tenant token bucket that guards admission:
// each tenant owns a bucket with a configured burst capacity refilled at a
// steady rate, so one chatty tenant cannot monopolise the submission queue.

import (
	"sync"
	"time"
)

// TenantConfig sets a tenant's admission budget. The zero value disables rate
// limiting for the tenant (every submission passes the bucket).
type TenantConfig struct {
	// Burst is the bucket capacity: the number of submissions a tenant may
	// make back-to-back before the refill rate governs. <= 0 disables
	// limiting for the tenant.
	Burst int
	// RefillPerSec is the steady-state admission rate in tokens per second.
	// With Burst > 0 and RefillPerSec <= 0 the bucket never refills: the
	// tenant gets Burst submissions total.
	RefillPerSec float64
}

// limited reports whether the config actually constrains admission.
func (tc TenantConfig) limited() bool { return tc.Burst > 0 }

// bucket is one tenant's token bucket. Callers hold the service mutex, so the
// bucket itself is unsynchronised; the standalone limiter wraps it with its
// own lock for direct use.
type bucket struct {
	cfg    TenantConfig
	tokens float64
	last   time.Time
}

func newBucket(cfg TenantConfig, now time.Time) *bucket {
	return &bucket{cfg: cfg, tokens: float64(cfg.Burst), last: now}
}

// allow consumes one token if available, refilling for the elapsed time first.
func (b *bucket) allow(now time.Time) bool {
	if !b.cfg.limited() {
		return true
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.cfg.RefillPerSec
		if max := float64(b.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Limiter is a standalone concurrency-safe multi-tenant token-bucket limiter.
// The service embeds the same buckets under its own lock; the exported type
// exists so other entry points (CLIs, tests) can reuse the policy.
type Limiter struct {
	mu       sync.Mutex
	def      TenantConfig
	perTen   map[string]TenantConfig
	buckets  map[string]*bucket
	lastSeen time.Time
}

// NewLimiter builds a limiter with a default config and per-tenant overrides.
func NewLimiter(def TenantConfig, perTenant map[string]TenantConfig) *Limiter {
	return &Limiter{def: def, perTen: perTenant, buckets: map[string]*bucket{}}
}

// Allow consumes one token for the tenant at the given instant.
func (l *Limiter) Allow(tenant string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		cfg, ok := l.perTen[tenant]
		if !ok {
			cfg = l.def
		}
		b = newBucket(cfg, now)
		l.buckets[tenant] = b
	}
	return b.allow(now)
}
