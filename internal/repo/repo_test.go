package repo

import (
	"errors"
	"testing"
	"time"

	"repro/internal/model"
)

func testCampaign(name string) *model.Campaign {
	return &model.Campaign{
		Name: name,
		Goal: model.Goal{
			Task:           model.TaskClassification,
			TargetTable:    "t",
			LabelColumn:    "y",
			FeatureColumns: []string{"x"},
		},
		Sources: []model.DataSource{{Table: "t"}},
		Regime:  model.RegimeNone,
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(""); !errors.Is(err, ErrInvalidName) {
		t.Errorf("err = %v, want ErrInvalidName", err)
	}
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if r.Root() == "" {
		t.Error("root must be set")
	}
}

func TestCampaignVersioning(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := testCampaign("churn")
	v1, err := r.SaveCampaign(c)
	if err != nil || v1 != 1 {
		t.Fatalf("first save = %d, %v", v1, err)
	}
	c2 := c.Clone()
	c2.Objectives = []model.Objective{{Indicator: model.IndicatorCost, Comparison: model.AtMost, Target: 5}}
	v2, err := r.SaveCampaign(c2)
	if err != nil || v2 != 2 {
		t.Fatalf("second save = %d, %v", v2, err)
	}
	versions, err := r.CampaignVersions("churn")
	if err != nil || len(versions) != 2 || versions[0] != 1 || versions[1] != 2 {
		t.Fatalf("versions = %v, %v", versions, err)
	}
	latest, err := r.LoadCampaign("churn", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(latest.Objectives) != 1 {
		t.Error("latest must be version 2")
	}
	first, err := r.LoadCampaign("churn", 1)
	if err != nil || len(first.Objectives) != 0 {
		t.Errorf("version 1 = %+v, %v", first, err)
	}
	if _, err := r.LoadCampaign("churn", 9); !errors.Is(err, ErrNotFound) {
		t.Error("missing version must fail")
	}
	if _, err := r.LoadCampaign("ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Error("missing campaign must fail")
	}
	names, err := r.ListCampaigns()
	if err != nil || len(names) != 1 || names[0] != "churn" {
		t.Errorf("ListCampaigns = %v, %v", names, err)
	}
}

func TestSaveCampaignValidation(t *testing.T) {
	r, _ := Open(t.TempDir())
	bad := testCampaign("x")
	bad.Goal.TargetTable = ""
	if _, err := r.SaveCampaign(bad); err == nil {
		t.Error("invalid campaign must not be persisted")
	}
	evil := testCampaign("../escape")
	if _, err := r.SaveCampaign(evil); !errors.Is(err, ErrInvalidName) {
		t.Error("path-traversal names must be rejected")
	}
	if _, err := r.CampaignVersions("../x"); !errors.Is(err, ErrInvalidName) {
		t.Error("invalid names must be rejected on read too")
	}
}

func TestRunRecords(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic, strictly increasing clock so file names never collide.
	tick := time.Date(2017, 3, 21, 10, 0, 0, 0, time.UTC)
	r.now = func() time.Time {
		tick = tick.Add(time.Second)
		return tick
	}
	records := []RunRecord{
		{Campaign: "churn", Label: "logreg @ batch", Score: 0.8, Compliant: true, Feasible: true,
			Indicators: map[string]float64{"accuracy": 0.82}},
		{Campaign: "churn", Label: "stump @ batch", Score: 0.6, Compliant: true, Feasible: false},
		{Campaign: "churn", Label: "export @ batch", Score: 0.2, Compliant: false, Feasible: false},
	}
	for _, rec := range records {
		if _, err := r.SaveRun(rec); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := r.ListRuns("churn")
	if err != nil || len(runs) != 3 {
		t.Fatalf("runs = %d, %v", len(runs), err)
	}
	if runs[0].Label != "logreg @ batch" {
		t.Errorf("runs must be ordered oldest first, got %q", runs[0].Label)
	}
	if runs[0].Indicators["accuracy"] != 0.82 {
		t.Error("indicator values must round-trip")
	}
	best, err := r.BestRun("churn")
	if err != nil || best.Score != 0.8 {
		t.Errorf("best run = %+v, %v", best, err)
	}
	if _, err := r.ListRuns("ghost"); !errors.Is(err, ErrNotFound) {
		t.Error("runs of unknown campaign must fail")
	}
	if _, err := r.SaveRun(RunRecord{Campaign: "../bad"}); !errors.Is(err, ErrInvalidName) {
		t.Error("invalid campaign name must be rejected")
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := sanitizeLabel(""); got != "run" {
		t.Errorf("empty label = %q", got)
	}
	if got := sanitizeLabel("a b/c:d"); got != "a_b_c_d" {
		t.Errorf("sanitized = %q", got)
	}
	long := make([]byte, 200)
	for i := range long {
		long[i] = 'a'
	}
	if got := sanitizeLabel(string(long)); len(got) != 80 {
		t.Errorf("long label length = %d, want 80", len(got))
	}
}
