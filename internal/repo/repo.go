// Package repo implements the model repository of the platform: versioned,
// file-based persistence of declarative campaigns and of the reports produced
// by compiling and running them. The TOREADOR platform keeps every model a
// user edits so that campaign variants can be recalled and compared; this
// package provides that capability with plain JSON files so repositories stay
// inspectable and diffable.
package repo

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
)

// Errors returned by the repository.
var (
	ErrNotFound    = errors.New("repo: not found")
	ErrInvalidName = errors.New("repo: invalid name")
)

// Repository stores campaigns and run records under a root directory:
//
//	<root>/campaigns/<name>/v<NNN>.json
//	<root>/runs/<campaign>/<timestamp>-<label>.json
type Repository struct {
	root string
	// now is injectable for tests.
	now func() time.Time
}

// Open creates (if needed) and opens a repository rooted at dir.
func Open(dir string) (*Repository, error) {
	if strings.TrimSpace(dir) == "" {
		return nil, fmt.Errorf("%w: empty repository root", ErrInvalidName)
	}
	for _, sub := range []string{"campaigns", "runs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("repo: create %s: %w", sub, err)
		}
	}
	return &Repository{root: dir, now: time.Now}, nil
}

// Root returns the repository root directory.
func (r *Repository) Root() string { return r.root }

var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)

func validateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("%w: %q", ErrInvalidName, name)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

// SaveCampaign stores a new version of the campaign and returns the version
// number (starting at 1).
func (r *Repository) SaveCampaign(c *model.Campaign) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := validateName(c.Name); err != nil {
		return 0, err
	}
	dir := filepath.Join(r.root, "campaigns", c.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("repo: create campaign dir: %w", err)
	}
	versions, err := r.CampaignVersions(c.Name)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return 0, err
	}
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	path := filepath.Join(dir, fmt.Sprintf("v%03d.json", next))
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("repo: marshal campaign: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("repo: write campaign: %w", err)
	}
	return next, nil
}

// CampaignVersions returns the stored version numbers of a campaign in
// ascending order.
func (r *Repository) CampaignVersions(name string) ([]int, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	dir := filepath.Join(r.root, "campaigns", name)
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: campaign %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("repo: read campaign dir: %w", err)
	}
	var versions []int
	for _, e := range entries {
		var v int
		if _, err := fmt.Sscanf(e.Name(), "v%03d.json", &v); err == nil {
			versions = append(versions, v)
		}
	}
	sort.Ints(versions)
	if len(versions) == 0 {
		return nil, fmt.Errorf("%w: campaign %q has no versions", ErrNotFound, name)
	}
	return versions, nil
}

// LoadCampaign loads a specific version of a campaign; version 0 loads the
// latest.
func (r *Repository) LoadCampaign(name string, version int) (*model.Campaign, error) {
	versions, err := r.CampaignVersions(name)
	if err != nil {
		return nil, err
	}
	if version == 0 {
		version = versions[len(versions)-1]
	}
	found := false
	for _, v := range versions {
		if v == version {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: campaign %q version %d", ErrNotFound, name, version)
	}
	path := filepath.Join(r.root, "campaigns", name, fmt.Sprintf("v%03d.json", version))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repo: open campaign: %w", err)
	}
	defer f.Close()
	return model.DecodeCampaign(f)
}

// ListCampaigns returns the names of every stored campaign, sorted.
func (r *Repository) ListCampaigns() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(r.root, "campaigns"))
	if err != nil {
		return nil, fmt.Errorf("repo: list campaigns: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ---------------------------------------------------------------------------
// Run records
// ---------------------------------------------------------------------------

// RunRecord is the persisted summary of one executed pipeline run.
type RunRecord struct {
	// Campaign is the campaign name.
	Campaign string `json:"campaign"`
	// Label identifies the run (e.g. the alternative fingerprint).
	Label string `json:"label"`
	// RecordedAt is the persistence timestamp (UTC).
	RecordedAt time.Time `json:"recorded_at"`
	// Compliant and Feasible summarise the outcome.
	Compliant bool `json:"compliant"`
	Feasible  bool `json:"feasible"`
	// Score is the SLA/Labs score.
	Score float64 `json:"score"`
	// Indicators holds the measured indicator values.
	Indicators map[string]float64 `json:"indicators"`
	// Details carries free-form diagnostics.
	Details map[string]string `json:"details,omitempty"`
}

// SaveRun persists a run record and returns the file name used.
func (r *Repository) SaveRun(rec RunRecord) (string, error) {
	if err := validateName(rec.Campaign); err != nil {
		return "", err
	}
	if rec.RecordedAt.IsZero() {
		rec.RecordedAt = r.now().UTC()
	}
	dir := filepath.Join(r.root, "runs", rec.Campaign)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("repo: create runs dir: %w", err)
	}
	label := sanitizeLabel(rec.Label)
	name := fmt.Sprintf("%s-%s.json", rec.RecordedAt.Format("20060102T150405.000000000"), label)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("repo: marshal run: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		return "", fmt.Errorf("repo: write run: %w", err)
	}
	return name, nil
}

func sanitizeLabel(label string) string {
	if label == "" {
		return "run"
	}
	var b strings.Builder
	for _, ch := range label {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch >= '0' && ch <= '9', ch == '-', ch == '_':
			b.WriteRune(ch)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if len(s) > 80 {
		s = s[:80]
	}
	return s
}

// ListRuns returns every stored run record of a campaign, oldest first.
func (r *Repository) ListRuns(campaign string) ([]RunRecord, error) {
	if err := validateName(campaign); err != nil {
		return nil, err
	}
	dir := filepath.Join(r.root, "runs", campaign)
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: no runs for campaign %q", ErrNotFound, campaign)
	}
	if err != nil {
		return nil, fmt.Errorf("repo: list runs: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []RunRecord
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("repo: read run %s: %w", name, err)
		}
		var rec RunRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("repo: parse run %s: %w", name, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// BestRun returns the highest-scoring stored run of the campaign.
func (r *Repository) BestRun(campaign string) (RunRecord, error) {
	runs, err := r.ListRuns(campaign)
	if err != nil {
		return RunRecord{}, err
	}
	best := runs[0]
	for _, rec := range runs[1:] {
		if rec.Score > best.Score {
			best = rec
		}
	}
	return best, nil
}
