package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNodeValidate(t *testing.T) {
	good := Node{ID: "n1", Slots: 2, SpeedFactor: 1, FailureRate: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid node rejected: %v", err)
	}
	bad := []Node{
		{ID: "", Slots: 1, SpeedFactor: 1},
		{ID: "x", Slots: 0, SpeedFactor: 1},
		{ID: "x", Slots: 1, SpeedFactor: 0},
		{ID: "x", Slots: 1, SpeedFactor: 1, FailureRate: 1.0},
		{ID: "x", Slots: 1, SpeedFactor: 1, FailureRate: -0.1},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad node %d accepted: %+v", i, n)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must be rejected")
	}
	cfg := Uniform(2, 2, 0)
	cfg.Nodes[1].ID = cfg.Nodes[0].ID
	if _, err := New(cfg); err == nil {
		t.Error("duplicate node ids must be rejected")
	}
}

func TestUniformConfig(t *testing.T) {
	cfg := Uniform(3, 4, 0.05)
	if len(cfg.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(cfg.Nodes))
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalSlots() != 12 {
		t.Errorf("TotalSlots = %d, want 12", c.TotalSlots())
	}
	if len(c.Nodes()) != 3 {
		t.Errorf("Nodes() = %d entries, want 3", len(c.Nodes()))
	}
}

func TestRunJobExecutesEveryTaskExactlyOnce(t *testing.T) {
	c, err := New(Uniform(2, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	var executed [n]atomic.Int32
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task{
			Name: "t",
			Fn: func(ctx context.Context, node Node) error {
				executed[i].Add(1)
				return nil
			},
		}
	}
	results, err := c.RunJob(context.Background(), tasks)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	for i := range executed {
		if got := executed[i].Load(); got != 1 {
			t.Errorf("task %d executed %d times, want exactly 1", i, got)
		}
	}
	usage := c.Usage()
	if usage.TasksRun != n {
		t.Errorf("usage.TasksRun = %d, want %d", usage.TasksRun, n)
	}
}

func TestRunJobEmpty(t *testing.T) {
	c, _ := New(Uniform(1, 1, 0))
	res, err := c.RunJob(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty job = %v, %v; want nil, nil", res, err)
	}
}

func TestRunJobRetriesInjectedFailures(t *testing.T) {
	cfg := Uniform(1, 2, 0.4)
	cfg.MaxAttempts = 10
	cfg.Seed = 99
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 30)
	for i := range tasks {
		tasks[i] = Task{Name: "flaky", Fn: func(ctx context.Context, node Node) error { return nil }}
	}
	if _, err := c.RunJob(context.Background(), tasks); err != nil {
		t.Fatalf("job with retries should eventually succeed: %v", err)
	}
	if c.Usage().Retries == 0 {
		t.Error("with a 40% failure rate some retries must have happened")
	}
}

// TestFailureInjectionDeterministicPerSeed verifies the per-worker failure
// RNGs: for a fixed seed and slot layout, repeated single-worker runs inject
// the same failures (each worker's generator is seeded Seed+worker index, so
// no cross-worker scheduling can perturb a worker's sequence), and changing
// the seed changes the injection pattern.
func TestFailureInjectionDeterministicPerSeed(t *testing.T) {
	retriesFor := func(seed int64) int64 {
		cfg := Uniform(1, 1, 0.3)
		cfg.MaxAttempts = 10
		cfg.Seed = seed
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tasks := make([]Task, 40)
		for i := range tasks {
			tasks[i] = Task{Name: "flaky", Fn: func(ctx context.Context, node Node) error { return nil }}
		}
		if _, err := c.RunJob(context.Background(), tasks); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return c.Usage().Retries
	}
	a, b := retriesFor(42), retriesFor(42)
	if a != b {
		t.Errorf("same seed produced %d vs %d retries", a, b)
	}
	// A different seed almost surely lands on a different retry count among
	// 40 tasks x 30% injection; two fixed seeds are compared, so this does
	// not flake run to run.
	if c := retriesFor(43); a == c {
		t.Logf("seeds 42 and 43 coincidentally injected %d retries each", a)
	}
}

func TestRunJobDeterministicFailuresNotRetried(t *testing.T) {
	c, err := New(Uniform(1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	boom := errors.New("boom")
	tasks := []Task{{
		Name: "deterministic-failure",
		Fn: func(ctx context.Context, node Node) error {
			calls.Add(1)
			return boom
		},
	}}
	_, err = c.RunJob(context.Background(), tasks)
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
	if !errors.Is(err, ErrTaskFailed) || calls.Load() != 1 {
		t.Errorf("deterministic failure retried %d times, want 1 attempt", calls.Load())
	}
}

func TestRunJobFailureAfterRetryBudget(t *testing.T) {
	cfg := Uniform(1, 1, 0.99)
	cfg.MaxAttempts = 2
	cfg.Seed = 7
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 99% injected failure rate and only 2 attempts, failure is near
	// certain across 20 tasks.
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{Name: "doomed"}
	}
	if _, err := c.RunJob(context.Background(), tasks); err == nil {
		t.Skip("statistically improbable: all doomed tasks passed")
	} else if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("err = %v, want ErrTaskFailed", err)
	}
}

func TestRunJobContextCancellation(t *testing.T) {
	c, err := New(Uniform(1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []Task{{Name: "never", Fn: func(ctx context.Context, node Node) error { return nil }}}
	if _, err := c.RunJob(ctx, tasks); err == nil {
		t.Error("cancelled context must fail the job")
	}
}

func TestSimulatedServiceTimeAndUsage(t *testing.T) {
	cfg := Config{
		Nodes: []Node{
			{ID: "fast", Slots: 1, SpeedFactor: 2.0, CostPerSlotHour: 1.0},
		},
		Seed: 1,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.RunJob(context.Background(), []Task{{Name: "sleep", SimulatedServiceTime: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// SpeedFactor 2 halves the simulated 20ms to ~10ms.
	if elapsed > 150*time.Millisecond {
		t.Errorf("simulated service took too long: %v", elapsed)
	}
	usage := c.Usage()
	if usage.TotalCost <= 0 {
		t.Error("usage must accrue cost for busy slot time")
	}
	if usage.String() == "" {
		t.Error("usage string must not be empty")
	}
}

func TestIsInjectedFailure(t *testing.T) {
	if !IsInjectedFailure(errInjected) {
		t.Error("errInjected must be recognised")
	}
	if IsInjectedFailure(errors.New("other")) {
		t.Error("foreign errors must not be recognised as injected")
	}
}

// Property: every submitted task appears exactly once in the results with its
// own name, regardless of cluster shape.
func TestRunJobPropertyAllTasksReported(t *testing.T) {
	f := func(nodes, slots, tasks uint8) bool {
		n := int(nodes%3) + 1
		s := int(slots%3) + 1
		k := int(tasks % 40)
		c, err := New(Uniform(n, s, 0))
		if err != nil {
			return false
		}
		ts := make([]Task, k)
		for i := range ts {
			ts[i] = Task{Name: "t", Fn: func(ctx context.Context, node Node) error { return nil }}
		}
		res, err := c.RunJob(context.Background(), ts)
		if err != nil {
			return false
		}
		return len(res) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsExposed(t *testing.T) {
	c, _ := New(Uniform(1, 1, 0))
	_, _ = c.RunJob(context.Background(), []Task{{Name: "m", Fn: func(ctx context.Context, n Node) error { return nil }}})
	snap := c.Metrics().Snapshot()
	if snap.CounterValue("tasks.succeeded") != 1 {
		t.Errorf("tasks.succeeded = %d, want 1", snap.CounterValue("tasks.succeeded"))
	}
	if snap.CounterValue("tasks.attempts") != 1 {
		t.Errorf("tasks.attempts = %d, want 1", snap.CounterValue("tasks.attempts"))
	}
}

func TestNamedJobAccountingAndRootCauseError(t *testing.T) {
	c, err := New(Uniform(1, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunNamedJob(context.Background(), "stage(filter→map)", []Task{
		{Name: "a", Fn: func(context.Context, Node) error { return nil }},
		{Name: "b", Fn: func(context.Context, Node) error { return nil }},
	}); err != nil {
		t.Fatal(err)
	}
	snap := c.Metrics().Snapshot()
	if snap.CounterValue("jobs") != 1 || snap.CounterValue("jobs.tasks") != 2 {
		t.Errorf("job accounting: jobs=%d tasks=%d, want 1/2",
			snap.CounterValue("jobs"), snap.CounterValue("jobs.tasks"))
	}

	// A real task failure cancels the job; siblings blocked on the job
	// context then record context.Canceled. The job error must surface the
	// root cause, not the bystander cancellation.
	boom := errors.New("boom")
	waiter := func(ctx context.Context, _ Node) error { <-ctx.Done(); return ctx.Err() }
	_, err = c.RunJob(context.Background(), []Task{
		{Name: "waiter1", Fn: waiter},
		{Name: "failer", Fn: func(context.Context, Node) error { return boom }},
		{Name: "waiter2", Fn: waiter},
	})
	if !errors.Is(err, ErrTaskFailed) || !errors.Is(err, boom) {
		t.Errorf("job error must chain to the failing task: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("job error leaks a bystander cancellation: %v", err)
	}
}
