package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestClassify walks realistic error chains — bare sentinels, wrapped job
// failures, multi-layer fmt.Errorf chains — through the taxonomy.
func TestClassify(t *testing.T) {
	planErr := errors.New("dataflow: sort: unknown column")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassNone},
		{"bare injected", errInjected, ClassTransient},
		{"injected wrapped once", fmt.Errorf("task boom: %w", errInjected), ClassTransient},
		{"injected under ErrTaskFailed", fmt.Errorf("%w: job j: t on n: %w", ErrTaskFailed, errInjected), ClassTransient},
		{"injected deep chain", fmt.Errorf("runner: %w", fmt.Errorf("dataflow: shuffle: %w", fmt.Errorf("%w: job: %w", ErrTaskFailed, errInjected))), ClassTransient},
		{"canceled", context.Canceled, ClassCanceled},
		{"deadline", context.DeadlineExceeded, ClassCanceled},
		{"canceled wrapped", fmt.Errorf("cluster: job j cancelled: %w", context.Canceled), ClassCanceled},
		{"deadline wrapped", fmt.Errorf("runner: prepare data: %w", context.DeadlineExceeded), ClassCanceled},
		{"injected wins over canceled", fmt.Errorf("job cancelled (%w) after %w", context.Canceled, errInjected), ClassTransient},
		{"plan error", planErr, ClassPermanent},
		{"plan error wrapped", fmt.Errorf("runner: %w", planErr), ClassPermanent},
		{"task failed without injection", fmt.Errorf("%w: job j: t on n: %w", ErrTaskFailed, planErr), ClassPermanent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.err); got != tc.want {
				t.Errorf("Classify(%v) = %s, want %s", tc.err, got, tc.want)
			}
			if got := Transient(tc.err); got != (tc.want == ClassTransient) {
				t.Errorf("Transient(%v) = %v", tc.err, got)
			}
			if got := Permanent(tc.err); got != (tc.want == ClassPermanent) {
				t.Errorf("Permanent(%v) = %v", tc.err, got)
			}
			if got := Canceled(tc.err); got != (tc.want == ClassCanceled) {
				t.Errorf("Canceled(%v) = %v", tc.err, got)
			}
		})
	}
}

func TestClassString(t *testing.T) {
	for class, want := range map[Class]string{
		ClassNone: "none", ClassTransient: "transient",
		ClassCanceled: "canceled", ClassPermanent: "permanent", Class(99): "unknown",
	} {
		if got := class.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", class, got, want)
		}
	}
}

// TestBackoffDelaySchedule pins the deterministic no-jitter schedule: base,
// 2×base, 4×base … capped at Max.
func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 45 * time.Millisecond}
	want := []time.Duration{
		0:  0, // retry 0 is not a retry
		1:  10 * time.Millisecond,
		2:  20 * time.Millisecond,
		3:  40 * time.Millisecond,
		4:  45 * time.Millisecond,
		5:  45 * time.Millisecond,
		10: 45 * time.Millisecond,
	}
	for retry, d := range want {
		if retry > 0 && d == 0 {
			continue // sparse entries of the literal
		}
		if got := b.delay(retry, newTestWorkerRNG(1)); got != d {
			t.Errorf("delay(retry=%d) = %v, want %v", retry, got, d)
		}
	}
	if got := (Backoff{}).delay(3, newTestWorkerRNG(1)); got != 0 {
		t.Errorf("zero backoff must not delay, got %v", got)
	}
	// Uncapped growth doubles indefinitely.
	if got := (Backoff{Base: time.Millisecond}).delay(4, newTestWorkerRNG(1)); got != 8*time.Millisecond {
		t.Errorf("uncapped delay(4) = %v, want 8ms", got)
	}
}

// TestBackoffJitterDeterministicAndBounded draws jittered delays from two RNGs
// with the same seed (identical sequences) and checks the spread bound.
func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	a, c := newTestWorkerRNG(7), newTestWorkerRNG(7)
	noJitter := Backoff{Base: b.Base, Max: b.Max}
	for retry := 1; retry <= 6; retry++ {
		da, dc := b.delay(retry, a), b.delay(retry, c)
		if da != dc {
			t.Fatalf("retry %d: same seed produced %v vs %v", retry, da, dc)
		}
		nominal := noJitter.delay(retry, nil) // jitter off: RNG untouched
		lo := time.Duration(float64(nominal) * 0.5)
		hi := time.Duration(float64(nominal) * 1.5)
		if da < lo || da > hi {
			t.Errorf("retry %d: jittered delay %v outside [%v, %v]", retry, da, lo, hi)
		}
	}
	// Jitter above 1 is clamped: the delay never goes negative.
	wild := Backoff{Base: time.Millisecond, Jitter: 40}
	for i := 0; i < 32; i++ {
		if d := wild.delay(1, a); d < 0 {
			t.Fatalf("clamped jitter produced negative delay %v", d)
		}
	}
}

// TestRunJobBackoffDelaysRetries runs a job with an aggressive failure rate
// and a measurable backoff: with backoff configured the job must take at least
// the sum of the first-retry delays its retries imply, and the retried work
// must still succeed.
func TestRunJobBackoffDelaysRetries(t *testing.T) {
	mk := func(backoff Backoff) (time.Duration, int64) {
		cfg := Uniform(1, 1, 0.6) // one slot: deterministic RNG consumption
		cfg.Seed = 11
		cfg.MaxAttempts = 10
		cfg.RetryBackoff = backoff
		cl, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tasks := make([]Task, 4)
		for i := range tasks {
			tasks[i] = Task{Name: fmt.Sprintf("t%d", i)}
		}
		start := time.Now()
		if _, err := cl.RunJob(context.Background(), tasks); err != nil {
			t.Fatalf("job failed under backoff: %v", err)
		}
		return time.Since(start), cl.Usage().Retries
	}
	elapsed, retries := mk(Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond})
	if retries == 0 {
		t.Fatal("test needs at least one retry to be meaningful")
	}
	if min := 5 * time.Millisecond; elapsed < min {
		t.Errorf("job with %d retries finished in %v; backoff should impose ≥ %v", retries, elapsed, min)
	}
	// Identical seed without backoff retries identically (same RNG draws).
	_, retriesNoDelay := mk(Backoff{})
	if retriesNoDelay != retries {
		t.Errorf("backoff changed the retry sequence: %d vs %d retries", retriesNoDelay, retries)
	}
}

// TestRunJobBackoffHonorsCancellation cancels the context during a long
// backoff pause; the job must return promptly with a cancellation, not sleep
// out the full delay.
func TestRunJobBackoffHonorsCancellation(t *testing.T) {
	cfg := Uniform(1, 1, 0.99)
	cfg.Seed = 3
	cfg.MaxAttempts = 50
	cfg.RetryBackoff = Backoff{Base: 10 * time.Second}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cl.RunJob(ctx, []Task{{Name: "t"}})
	if err == nil {
		t.Fatal("expected an error from the cancelled job")
	}
	if !Canceled(err) && !Transient(err) {
		t.Errorf("cancelled job error classifies as %s: %v", Classify(err), err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v; the backoff pause did not honor ctx", elapsed)
	}
}

// newTestWorkerRNG builds a seeded slot RNG for backoff tests.
func newTestWorkerRNG(seed int64) *workerRNG {
	return &workerRNG{rng: rand.New(rand.NewSource(seed))}
}
