// Package cluster simulates the compute substrate the deployed Big Data
// pipelines run on: a set of nodes with task slots, a task scheduler with
// retries, failure injection, and a usage-based cost accounting model.
//
// The TOREADOR platform deploys pipelines onto Spark/Hadoop-class clusters;
// this package is the substitution documented in DESIGN.md. Tasks are real Go
// functions executed on a bounded worker pool (one worker per task slot), so
// parallelism, stragglers, retries and accounting behave like a scaled-down
// cluster rather than being numerically faked.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Node describes one simulated machine.
type Node struct {
	// ID is the unique node name.
	ID string
	// Slots is the number of tasks the node can run concurrently.
	Slots int
	// SpeedFactor scales simulated work duration: 1.0 is nominal, 0.5 runs
	// twice as slow. It does not slow real computation, only the optional
	// simulated service time added by tasks that request it.
	SpeedFactor float64
	// CostPerSlotHour is the accounting price of one busy slot-hour.
	CostPerSlotHour float64
	// FailureRate is the probability that a task attempt on this node fails
	// with a transient error (failure injection).
	FailureRate float64
}

// Validate reports configuration problems.
func (n Node) Validate() error {
	if n.ID == "" {
		return errors.New("cluster: node id must not be empty")
	}
	if n.Slots < 1 {
		return fmt.Errorf("cluster: node %s must have at least one slot", n.ID)
	}
	if n.SpeedFactor <= 0 {
		return fmt.Errorf("cluster: node %s speed factor must be positive", n.ID)
	}
	if n.FailureRate < 0 || n.FailureRate >= 1 {
		return fmt.Errorf("cluster: node %s failure rate %v out of [0,1)", n.ID, n.FailureRate)
	}
	return nil
}

// Config describes a simulated cluster.
type Config struct {
	Nodes []Node
	// MaxAttempts is the number of times a failed task is retried before the
	// job aborts. Values below 1 default to 3.
	MaxAttempts int
	// Seed drives failure injection; fixed seeds give reproducible runs.
	Seed int64
	// RetryBackoff delays retry attempts of transiently-failed tasks. The zero
	// value keeps the historical behaviour: retries fire immediately.
	RetryBackoff Backoff
}

// Backoff configures per-attempt capped exponential backoff with optional
// jitter for task retries. The zero value disables all delays.
type Backoff struct {
	// Base is the delay before the first retry; every further retry doubles
	// it. <= 0 disables backoff entirely.
	Base time.Duration
	// Max caps the exponential growth. <= 0 leaves the growth uncapped.
	Max time.Duration
	// Jitter in [0,1] spreads each delay uniformly over
	// [delay×(1-Jitter), delay×(1+Jitter)]. Jitter randomness is drawn from
	// the worker slot's seeded RNG, so delays are deterministic for a fixed
	// Config.Seed and slot layout.
	Jitter float64
}

// delay returns the pause before retry number retry (1-based).
func (b Backoff) delay(retry int, rng *workerRNG) time.Duration {
	if b.Base <= 0 || retry < 1 {
		return 0
	}
	d := b.Base
	for i := 1; i < retry; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			d = b.Max
			break
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [1-j, 1+j]; the RNG draw keeps determinism per slot.
		d = time.Duration(float64(d) * (1 - j + 2*j*rng.float64()))
	}
	return d
}

// Uniform returns a homogeneous cluster configuration with the given number of
// nodes and slots per node.
func Uniform(nodes, slotsPerNode int, failureRate float64) Config {
	cfg := Config{MaxAttempts: 3, Seed: 1}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, Node{
			ID:              fmt.Sprintf("node-%02d", i+1),
			Slots:           slotsPerNode,
			SpeedFactor:     1.0,
			CostPerSlotHour: 0.35,
			FailureRate:     failureRate,
		})
	}
	return cfg
}

// Task is one schedulable unit of work. Fn receives the execution context and
// the node it was placed on.
type Task struct {
	// Name identifies the task in metrics and errors.
	Name string
	// Fn performs the work.
	Fn func(ctx context.Context, node Node) error
	// SimulatedServiceTime, when positive, adds an artificial busy wait scaled
	// by the node's SpeedFactor, used by deployment cost estimation benches.
	SimulatedServiceTime time.Duration
}

// Result reports the outcome of one task.
type Result struct {
	Task     string
	Node     string
	Attempts int
	Err      error
	Duration time.Duration
}

// ErrTaskFailed wraps a task error that exhausted its retry budget.
var ErrTaskFailed = errors.New("cluster: task failed after retries")

// errInjected marks a failure produced by the failure injector.
var errInjected = errors.New("cluster: injected transient failure")

// IsInjectedFailure reports whether err originates from failure injection.
func IsInjectedFailure(err error) bool { return errors.Is(err, errInjected) }

// Cluster is a running simulated cluster. Create with New, stop with Close.
type Cluster struct {
	cfg      Config
	nodes    []Node
	reg      *metrics.Registry
	slotList []slot
	usageMu  sync.Mutex
	// busySlotSeconds accumulates slot-seconds of executed work per node for
	// cost accounting.
	busySlotSeconds map[string]float64
}

// New validates cfg and returns a cluster ready to run jobs.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: at least one node is required")
	}
	seen := map[string]bool{}
	for _, n := range cfg.Nodes {
		if err := n.Validate(); err != nil {
			return nil, err
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	c := &Cluster{
		cfg:             cfg,
		nodes:           append([]Node(nil), cfg.Nodes...),
		reg:             metrics.NewRegistry(),
		busySlotSeconds: make(map[string]float64),
	}
	// One failure-injection RNG per worker slot, seeded Seed+worker index:
	// deterministic for a fixed seed and slot layout, and workers never
	// contend on a shared generator lock at high slot counts (each slot's
	// lock is touched by at most one goroutine per running job).
	worker := int64(0)
	for _, n := range c.nodes {
		for s := 0; s < n.Slots; s++ {
			c.slotList = append(c.slotList, slot{
				node: n,
				rng:  &workerRNG{rng: rand.New(rand.NewSource(cfg.Seed + worker))},
			})
			worker++
		}
	}
	return c, nil
}

// Metrics exposes the cluster's metric registry.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// TotalSlots returns the number of task slots across all nodes.
func (c *Cluster) TotalSlots() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Slots
	}
	return total
}

// Nodes returns a copy of the node list.
func (c *Cluster) Nodes() []Node {
	return append([]Node(nil), c.nodes...)
}

// workerRNG is one worker slot's failure-injection generator. The mutex only
// guards against concurrently running jobs sharing the slot list; within one
// job a slot is driven by a single goroutine, so the lock is uncontended.
type workerRNG struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (w *workerRNG) float64() float64 {
	w.mu.Lock()
	v := w.rng.Float64()
	w.mu.Unlock()
	return v
}

// slot pairs a node with one of its execution slots and that slot's private
// failure-injection RNG.
type slot struct {
	node Node
	rng  *workerRNG
}

func (sl slot) injectFailure() bool {
	if sl.node.FailureRate <= 0 {
		return false
	}
	return sl.rng.float64() < sl.node.FailureRate
}

func (c *Cluster) recordUsage(nodeID string, d time.Duration) {
	c.usageMu.Lock()
	defer c.usageMu.Unlock()
	c.busySlotSeconds[nodeID] += d.Seconds()
}

// RunJob executes all tasks on the cluster's slots, retrying transient
// failures up to MaxAttempts per task. It returns the per-task results; the
// error is non-nil if any task ultimately failed or the context was cancelled.
func (c *Cluster) RunJob(ctx context.Context, tasks []Task) ([]Result, error) {
	return c.RunNamedJob(ctx, "job", tasks)
}

// RunNamedJob executes all tasks as a single named job. The name feeds the
// cluster's job accounting ("jobs", "jobs.tasks" counters and the
// "job.duration" timer), so callers that fuse many logical operators into one
// job — like the dataflow stage compiler — are visible as exactly one
// scheduled job rather than one per operator.
func (c *Cluster) RunNamedJob(ctx context.Context, name string, tasks []Task) ([]Result, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	if name == "" {
		name = "job"
	}
	c.reg.Counter("jobs").Inc()
	c.reg.Counter("jobs.tasks").Add(int64(len(tasks)))
	jobStart := time.Now()
	defer func() {
		c.reg.Timer("job.duration").ObserveDuration(time.Since(jobStart))
	}()
	type indexed struct {
		idx  int
		task Task
	}
	queue := make(chan indexed, len(tasks))
	for i, t := range tasks {
		queue <- indexed{idx: i, task: t}
	}
	close(queue)

	results := make([]Result, len(tasks))
	var wg sync.WaitGroup
	jobCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	for _, sl := range c.slotList {
		wg.Add(1)
		go func(sl slot) {
			defer wg.Done()
			for it := range queue {
				res := c.runTask(jobCtx, sl, it.task)
				results[it.idx] = res
				if res.Err != nil {
					// Abort the rest of the job: a failed task beyond the
					// retry budget fails the whole job, like a Spark stage.
					cancel()
				}
			}
		}(sl)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("cluster: job %s cancelled: %w", name, err)
	}
	// A failed task cancels the whole job, so sibling tasks may have recorded
	// the job-wide cancellation rather than the root cause. Report the first
	// real failure when one exists, so callers inspecting the error chain see
	// the task error, not a bystander's context.Canceled.
	var failed *Result
	for i := range results {
		r := &results[i]
		if r.Err == nil {
			continue
		}
		if failed == nil {
			failed = r
		}
		if !errors.Is(r.Err, context.Canceled) && !errors.Is(r.Err, context.DeadlineExceeded) {
			failed = r
			break
		}
	}
	if failed != nil {
		return results, fmt.Errorf("%w: job %s: %s on %s: %w", ErrTaskFailed, name, failed.Task, failed.Node, failed.Err)
	}
	return results, nil
}

func (c *Cluster) runTask(ctx context.Context, sl slot, task Task) Result {
	node := sl.node
	res := Result{Task: task.Name, Node: node.ID}
	start := time.Now()
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		res.Attempts = attempt
		if err := ctx.Err(); err != nil {
			res.Err = err
			break
		}
		c.reg.Counter("tasks.attempts").Inc()
		err := c.attempt(ctx, sl, task)
		if err == nil {
			res.Err = nil
			c.reg.Counter("tasks.succeeded").Inc()
			break
		}
		res.Err = err
		c.reg.Counter("tasks.failed_attempts").Inc()
		if !Transient(err) {
			// Permanent task errors are deterministic and cancellations are
			// final: neither is retried.
			break
		}
		c.reg.Counter("tasks.retries").Inc()
		if attempt < c.cfg.MaxAttempts {
			if d := c.cfg.RetryBackoff.delay(attempt, sl.rng); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					// Keep the transient root cause: the loop's next ctx check
					// records the cancellation if the job was torn down.
				}
			}
		}
	}
	res.Duration = time.Since(start)
	c.recordUsage(node.ID, res.Duration)
	c.reg.Timer("task.duration").ObserveDuration(res.Duration)
	if res.Err != nil {
		c.reg.Counter("tasks.exhausted").Inc()
	}
	return res
}

func (c *Cluster) attempt(ctx context.Context, sl slot, task Task) error {
	if sl.injectFailure() {
		return errInjected
	}
	if task.SimulatedServiceTime > 0 {
		d := time.Duration(float64(task.SimulatedServiceTime) / sl.node.SpeedFactor)
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if task.Fn == nil {
		return nil
	}
	return task.Fn(ctx, sl.node)
}

// UsageReport summarises resource consumption and its monetary cost.
type UsageReport struct {
	// BusySlotSeconds per node.
	BusySlotSeconds map[string]float64
	// TotalCost in the cluster's currency unit.
	TotalCost float64
	// TasksRun is the number of successful task executions.
	TasksRun int64
	// Retries is the number of retried attempts.
	Retries int64
}

// Usage returns the accumulated usage since the cluster was created.
func (c *Cluster) Usage() UsageReport {
	c.usageMu.Lock()
	defer c.usageMu.Unlock()
	rep := UsageReport{BusySlotSeconds: make(map[string]float64, len(c.busySlotSeconds))}
	costPerNode := map[string]float64{}
	for _, n := range c.nodes {
		costPerNode[n.ID] = n.CostPerSlotHour
	}
	for id, secs := range c.busySlotSeconds {
		rep.BusySlotSeconds[id] = secs
		rep.TotalCost += secs / 3600 * costPerNode[id]
	}
	snap := c.reg.Snapshot()
	rep.TasksRun = snap.CounterValue("tasks.succeeded")
	rep.Retries = snap.CounterValue("tasks.retries")
	return rep
}

// String renders the usage report sorted by node id.
func (u UsageReport) String() string {
	ids := make([]string, 0, len(u.BusySlotSeconds))
	for id := range u.BusySlotSeconds {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s := fmt.Sprintf("tasks=%d retries=%d cost=%.4f", u.TasksRun, u.Retries, u.TotalCost)
	for _, id := range ids {
		s += fmt.Sprintf(" %s=%.3fs", id, u.BusySlotSeconds[id])
	}
	return s
}
