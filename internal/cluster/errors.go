package cluster

// errors.go is the error taxonomy of the execution substrate: one place that
// classifies an error chain into retry-relevant classes, so callers (the
// cluster's own retry loop, the service runtime's campaign-level retry, CLI
// reporting) never sniff IsInjectedFailure and context sentinels ad hoc.

import (
	"context"
	"errors"
)

// Class is the retry classification of an error.
type Class int

// The classes, from "nothing to classify" to "retrying cannot help".
const (
	// ClassNone is the classification of a nil error.
	ClassNone Class = iota
	// ClassTransient marks infrastructure failures that a retry can plausibly
	// outlive: injected task failures and anything wrapping them.
	ClassTransient
	// ClassCanceled marks context cancellation and deadline expiry: the caller
	// gave up or ran out of time. Retrying is pointless but the work itself
	// was not defective.
	ClassCanceled
	// ClassPermanent marks deterministic errors — bad plans, unknown columns,
	// invalid campaigns — that will fail identically on every attempt.
	ClassPermanent
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassCanceled:
		return "canceled"
	case ClassPermanent:
		return "permanent"
	default:
		return "unknown"
	}
}

// Classify walks err's chain and returns its retry class. An injected failure
// anywhere in the chain wins over cancellation: a job that exhausted its task
// retry budget on injected failures is reported through a context-cancelling
// job abort, and the actionable fact is the transient root cause, not the
// bystander cancellation.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, errInjected):
		return ClassTransient
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled
	default:
		return ClassPermanent
	}
}

// Transient reports whether err is retryable (an injected infrastructure
// failure somewhere in its chain).
func Transient(err error) bool { return Classify(err) == ClassTransient }

// Permanent reports whether err is deterministic: neither transient nor a
// cancellation, so every retry would fail the same way.
func Permanent(err error) bool { return Classify(err) == ClassPermanent }

// Canceled reports whether err is a context cancellation or deadline expiry.
func Canceled(err error) bool { return Classify(err) == ClassCanceled }
