// Package store implements the durable columnar table layer: immutable
// segment files of v2-codec frames under a versioned, crash-safe manifest.
//
// The design follows the MANIFEST/WAL/checkpoint discipline of LSM stores:
//
//   - data lives in immutable segment files (segment.go) — checksummed v2
//     frames plus a checksummed footer carrying per-column min/max zone maps
//     and an optional bloom filter on a designated key column;
//   - which tables exist, and which segments make them up, is recorded by a
//     manifest reconstructed on open from an append-only write-ahead log of
//     CRC-framed records (manifest.go); a commit is the fsync of its WAL
//     record, never anything earlier;
//   - checkpoints rewrite the log as a single snapshot record through the
//     temp-file + atomic-rename idiom, so the log stays short without ever
//     having a moment where no valid manifest exists on disk;
//   - recovery on open replays the log, discards the torn tail a crash may
//     have left, verifies every referenced segment's footer checksum
//     (quarantining failures), and deletes unreferenced segment files left
//     behind by commits that never reached their WAL record.
//
// Everything the store does to disk goes through the FS interface below, so
// the crash-recovery tests can substitute FaultFS (faultfs.go) — a
// deterministic in-memory filesystem with injectable errors and hard crash
// points — and prove, for every injected point in the write/commit/checkpoint
// path, that reopening yields exactly the pre-commit or post-commit manifest.
package store

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of filesystem behaviour the store depends on. OSFS is the
// real implementation; FaultFS is the deterministic in-memory one the
// crash-recovery matrix drives.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when missing.
	Append(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (ReadFile, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate shortens name to size bytes.
	Truncate(name string, size int64) error
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir makes preceding creates/renames/removes inside dir durable.
	SyncDir(dir string) error
}

// File is a writable file handle.
type File interface {
	io.Writer
	// Sync makes all written bytes durable.
	Sync() error
	io.Closer
}

// ReadFile is a read-only file handle.
type ReadFile interface {
	io.ReaderAt
	io.Closer
	// Size returns the file's current length in bytes.
	Size() (int64, error)
}

// OSFS is the production FS backed by the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Append implements FS.
func (OSFS) Append(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Open implements FS.
func (OSFS) Open(name string) (ReadFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osReadFile{f}, nil
}

type osReadFile struct{ *os.File }

func (f osReadFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func errorsIsNotExist(err error) bool { return os.IsNotExist(err) }

// SyncDir implements FS. Directory fsync is how a rename/create becomes
// durable on POSIX systems; platforms where directories cannot be fsynced
// degrade to a no-op.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse fsync on directories; the rename itself is
		// still atomic, so degrade rather than fail the commit.
		return nil
	}
	return nil
}
