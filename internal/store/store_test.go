package store

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/storage"
)

func testSchema(t *testing.T) *storage.Schema {
	t.Helper()
	s, err := storage.NewSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "score", Type: storage.TypeFloat},
		storage.Field{Name: "region", Type: storage.TypeString},
	)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

func testRows(n, base int) []storage.Row {
	rows := make([]storage.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = storage.Row{
			int64(base + i),
			float64(base+i) / 4,
			fmt.Sprintf("region-%02d", (base+i)%7),
		}
	}
	return rows
}

func rowsEqual(t *testing.T, got, want []storage.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestSaveReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()

	schema := testSchema(t)
	want := testRows(1000, 0)
	if err := s.SaveRows("metrics", schema, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := s.Rows("metrics")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, want)

	infos := s.Tables()
	if len(infos) != 1 || infos[0].Name != "metrics" || infos[0].Rows != 1000 {
		t.Fatalf("tables: %+v", infos)
	}
	if infos[0].Bytes <= 0 || infos[0].Segments == 0 {
		t.Fatalf("table info missing sizes: %+v", infos[0])
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	want := testRows(500, 10)

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.SaveRows("metrics", schema, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, err := s2.Rows("metrics")
	if err != nil {
		t.Fatalf("rows after reopen: %v", err)
	}
	rowsEqual(t, got, want)
	schema2, err := s2.Schema("metrics")
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	if !schema2.Equal(schema) {
		t.Fatalf("schema not round-tripped: got %v want %v", schema2, schema)
	}
}

func TestReplaceAndDrop(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)

	if err := s.SaveRows("t", schema, testRows(100, 0)); err != nil {
		t.Fatalf("save v1: %v", err)
	}
	v2 := testRows(50, 1000)
	if err := s.SaveRows("t", schema, v2); err != nil {
		t.Fatalf("save v2: %v", err)
	}
	got, err := s.Rows("t")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, v2)

	if err := s.Drop("t"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if s.Has("t") {
		t.Fatal("table still present after drop")
	}
	if _, err := s.Rows("t"); err == nil {
		t.Fatal("expected error reading dropped table")
	}

	// Reopen: the drop must be durable and old segments swept.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Has("t") {
		t.Fatal("dropped table resurrected on reopen")
	}
}

func TestZoneMapSegmentSkipping(t *testing.T) {
	dir := t.TempDir()
	// Small segments so a selective filter has whole segments to skip.
	s, err := Open(dir, WithSegmentRows(100), WithFrameRows(50))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	// Sorted ids 0..999 across ~10 segments of 100 rows each.
	if err := s.SaveRows("sorted", schema, testRows(1000, 0)); err != nil {
		t.Fatalf("save: %v", err)
	}

	var rows int
	stats, err := s.Scan("sorted", Filter{{Col: "id", Op: OpGE, Value: int64(950)}}, func(b *storage.ColumnBatch) error {
		rows += b.Len()
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if stats.SegmentsSkipped == 0 {
		t.Fatalf("selective scan skipped no segments: %+v", stats)
	}
	if rows == 0 || rows >= 1000 {
		t.Fatalf("scan saw %d rows, want a pruned subset containing matches", rows)
	}
	if v := s.Metrics().Snapshot().CounterValue("store.segments.skipped"); v == 0 {
		t.Fatal("store.segments.skipped counter not incremented")
	}

	// The pruned scan must still return every matching row.
	seen := map[int64]bool{}
	if _, err := s.Scan("sorted", Filter{{Col: "id", Op: OpGE, Value: int64(950)}}, func(b *storage.ColumnBatch) error {
		col := b.Column(0)
		for i := 0; i < b.Len(); i++ {
			if col.Int(i) >= 950 {
				seen[col.Int(i)] = true
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	for id := int64(950); id < 1000; id++ {
		if !seen[id] {
			t.Fatalf("pruned scan lost matching row id=%d", id)
		}
	}
}

func TestZoneMapFrameSkipping(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentRows(1000), WithFrameRows(100))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	if err := s.SaveRows("sorted", schema, testRows(1000, 0)); err != nil {
		t.Fatalf("save: %v", err)
	}
	stats, err := s.Scan("sorted", Filter{{Col: "id", Op: OpLE, Value: int64(10)}}, func(b *storage.ColumnBatch) error { return nil })
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if stats.FramesSkipped == 0 {
		t.Fatalf("selective scan skipped no frames: %+v", stats)
	}
}

func TestBloomFilterSkipsSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentRows(100))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	// Region strings repeat within every segment, so zone maps cannot prune
	// an equality probe for an absent key — only the bloom filter can.
	if err := s.SaveRows("events", schema, testRows(1000, 0), WithBloomColumn("region")); err != nil {
		t.Fatalf("save: %v", err)
	}
	stats, err := s.Scan("events", Filter{{Col: "region", Op: OpEq, Value: "region-nope"}}, func(b *storage.ColumnBatch) error {
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if stats.SegmentsSkipped == 0 {
		t.Fatalf("bloom probe for absent key skipped nothing: %+v", stats)
	}
	// A present key must not be excluded.
	var rows int
	if _, err := s.Scan("events", Filter{{Col: "region", Op: OpEq, Value: "region-03"}}, func(b *storage.ColumnBatch) error {
		col := b.Column(2)
		for i := 0; i < b.Len(); i++ {
			if col.Str(i) == "region-03" {
				rows++
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if rows == 0 {
		t.Fatal("bloom filter excluded a present key")
	}
}

func TestCheckpointBoundsWALAndPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithCheckpointEvery(1000))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	// Replace the same table repeatedly: the WAL accumulates dead history
	// that the checkpoint's snapshot folds away.
	for i := 0; i < 10; i++ {
		if err := s.SaveRows("t", schema, testRows(10, i*10)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if err := s.SaveRows("keep", schema, testRows(10, 500)); err != nil {
		t.Fatalf("save keep: %v", err)
	}
	preLen := s.walLen
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if s.walLen >= preLen {
		t.Fatalf("checkpoint did not shrink wal: %d -> %d", preLen, s.walLen)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer s2.Close()
	if got := len(s2.Tables()); got != 2 {
		t.Fatalf("tables after checkpoint reopen: got %d want 2", got)
	}
	got, err := s2.Rows("t")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, testRows(10, 90))
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithCheckpointEvery(3))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	for i := 0; i < 7; i++ {
		if err := s.SaveRows(fmt.Sprintf("t%d", i), schema, testRows(5, 0)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if v := s.Metrics().Snapshot().CounterValue("store.wal.checkpoints"); v == 0 {
		t.Fatal("auto checkpoint never fired")
	}
}

func TestEmptyTable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	if err := s.SaveRows("empty", schema, nil); err != nil {
		t.Fatalf("save empty: %v", err)
	}
	got, err := s.Rows("empty")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty table has %d rows", len(got))
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if !s2.Has("empty") {
		t.Fatal("empty table lost on reopen")
	}
}

func TestReadTableBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentRows(64))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	schema := testSchema(t)
	want := testRows(333, 7)
	if err := s.SaveRows("t", schema, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	tbl, err := s.ReadTable("t")
	if err != nil {
		t.Fatalf("read table: %v", err)
	}
	// Table routes appends across partitions, so compare against a table
	// built by appending the same rows in the same order.
	wantTbl, err := storage.NewTable("t", schema)
	if err != nil {
		t.Fatalf("new table: %v", err)
	}
	if _, err := wantTbl.AppendAll(want); err != nil {
		t.Fatalf("append: %v", err)
	}
	rowsEqual(t, tbl.Rows(), wantTbl.Rows())
}

func TestOnFaultFSWithoutFaults(t *testing.T) {
	ffs := NewFaultFS()
	s, err := Open("/db", WithFS(ffs), WithSegmentRows(50))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	schema := testSchema(t)
	want := testRows(200, 0)
	if err := s.SaveRows("t", schema, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Simulate clean power loss: everything was fsynced, so a reopen on the
	// post-crash state must see the table intact.
	ffs.Crash()
	ffs.Reset()
	s2, err := Open("/db", WithFS(ffs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := s2.Rows("t")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, want)
}

func TestParsePred(t *testing.T) {
	schema := testSchema(t)
	cases := []struct {
		expr string
		want Pred
	}{
		{"id>=10", Pred{Col: "id", Op: OpGE, Value: int64(10)}},
		{"id<5", Pred{Col: "id", Op: OpLT, Value: int64(5)}},
		{"score<=2.5", Pred{Col: "score", Op: OpLE, Value: 2.5}},
		{"region=region-03", Pred{Col: "region", Op: OpEq, Value: "region-03"}},
	}
	for _, c := range cases {
		got, err := ParsePred(c.expr, schema)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("parse %q: got %+v want %+v", c.expr, got, c.want)
		}
	}
	if _, err := ParsePred("nonsense", schema); err == nil {
		t.Fatal("expected error for unparseable predicate")
	}
}
