package store

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/storage"
)

// The crash-recovery matrix: run a representative workload once fault-free
// to count filesystem operations, then replay it with a hard crash injected
// at EVERY operation ordinal under each loss model, reopen, and assert the
// recovered manifest is exactly one of the workload's legal states — the
// last acknowledged commit or the one in flight — with every surviving
// table bit-identical to its reference data. A companion matrix injects
// transient errors instead of crashes and additionally checks the store
// keeps working (and committing durably) after the failed call.

type matrixStep struct {
	name string
	run  func(*Store) error
	// apply folds the step's committed effect into the model state.
	apply func(map[string][]storage.Row)
}

func matrixWorkload(t *testing.T) ([]matrixStep, *storage.Schema) {
	t.Helper()
	schema := testSchema(t)
	rowsA := testRows(120, 0)
	rowsB := testRows(80, 1000)
	rowsB2 := testRows(40, 2000)
	rowsC := testRows(60, 3000)
	return []matrixStep{
		{
			name:  "save-A",
			run:   func(s *Store) error { return s.SaveRows("A", schema, rowsA, WithBloomColumn("region")) },
			apply: func(m map[string][]storage.Row) { m["A"] = rowsA },
		},
		{
			name:  "save-B",
			run:   func(s *Store) error { return s.SaveRows("B", schema, rowsB) },
			apply: func(m map[string][]storage.Row) { m["B"] = rowsB },
		},
		{
			name:  "replace-B",
			run:   func(s *Store) error { return s.SaveRows("B", schema, rowsB2) },
			apply: func(m map[string][]storage.Row) { m["B"] = rowsB2 },
		},
		{
			name:  "drop-A",
			run:   func(s *Store) error { return s.Drop("A") },
			apply: func(m map[string][]storage.Row) { delete(m, "A") },
		},
		{
			name:  "checkpoint",
			run:   func(s *Store) error { return s.Checkpoint() },
			apply: func(m map[string][]storage.Row) {},
		},
		{
			name:  "save-C",
			run:   func(s *Store) error { return s.SaveRows("C", schema, rowsC) },
			apply: func(m map[string][]storage.Row) { m["C"] = rowsC },
		},
	}, schema
}

// matrixStates returns the model state after 0..len(steps) committed steps.
func matrixStates(steps []matrixStep) []map[string][]storage.Row {
	states := make([]map[string][]storage.Row, len(steps)+1)
	states[0] = map[string][]storage.Row{}
	for i, st := range steps {
		next := map[string][]storage.Row{}
		for k, v := range states[i] {
			next[k] = v
		}
		st.apply(next)
		states[i+1] = next
	}
	return states
}

func openMatrixStore(t *testing.T, ffs *FaultFS) *Store {
	t.Helper()
	s, err := Open("/db", WithFS(ffs), WithSegmentRows(48), WithFrameRows(16), WithCheckpointEvery(1000))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

// storeState reads every table back, checksums verifying along the way.
func storeState(t *testing.T, s *Store) map[string][]storage.Row {
	t.Helper()
	out := map[string][]storage.Row{}
	for _, info := range s.Tables() {
		rows, err := s.Rows(info.Name)
		if err != nil {
			t.Fatalf("reading recovered table %q: %v", info.Name, err)
		}
		out[info.Name] = rows
	}
	return out
}

func statesEqual(a, b map[string][]storage.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for name, rows := range a {
		other, ok := b[name]
		if !ok || len(rows) != len(other) {
			return false
		}
		for i := range rows {
			if !reflect.DeepEqual(rows[i], other[i]) {
				return false
			}
		}
	}
	return true
}

func stateNames(m map[string][]storage.Row) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, fmt.Sprintf("%s(%d)", n, len(m[n])))
	}
	sort.Strings(names)
	return names
}

func TestCrashRecoveryMatrix(t *testing.T) {
	steps, _ := matrixWorkload(t)
	states := matrixStates(steps)

	// Fault-free dry run bounds the matrix.
	probe := NewFaultFS()
	s := openMatrixStore(t, probe)
	for _, st := range steps {
		if err := st.run(s); err != nil {
			t.Fatalf("dry run step %s: %v", st.name, err)
		}
	}
	totalOps := probe.Ops()
	if totalOps < 30 {
		t.Fatalf("dry run took only %d ops; matrix would prove little", totalOps)
	}
	// Sanity: a fault-free reopen sees the final state.
	probe.Crash()
	probe.Reset()
	s2, err := Open("/db", WithFS(probe))
	if err != nil {
		t.Fatalf("dry-run reopen: %v", err)
	}
	if !statesEqual(storeState(t, s2), states[len(steps)]) {
		t.Fatalf("dry-run reopen state %v != final %v", stateNames(storeState(t, s2)), stateNames(states[len(steps)]))
	}

	modes := []struct {
		name string
		mode LossMode
	}{{"drop-unsynced", LossAll}, {"keep-half", LossHalf}, {"keep-all", LossNone}}

	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for k := 1; k <= totalOps; k++ {
				ffs := NewFaultFS()
				ffs.SetLossMode(m.mode)
				s := openMatrixStore(t, ffs)
				ffs.CrashAt(ffs.Ops() + k)

				acked := 0
				for _, st := range steps {
					if err := st.run(s); err != nil {
						if !errors.Is(err, ErrCrashed) {
							t.Fatalf("k=%d: step %s failed with non-crash error: %v", k, st.name, err)
						}
						break
					}
					acked++
				}
				if acked == len(steps) {
					t.Fatalf("k=%d: crash point never fired (totalOps drifted?)", k)
				}
				ffs.Crash() // force the loss model even if the failing op absorbed it
				ffs.Reset()

				s2, err := Open("/db", WithFS(ffs))
				if err != nil {
					t.Fatalf("k=%d: reopen after crash in step %s: %v", k, steps[acked].name, err)
				}
				got := storeState(t, s2)
				if !statesEqual(got, states[acked]) && !statesEqual(got, states[acked+1]) {
					t.Fatalf("k=%d mode=%s: crash in step %s recovered to %v, want %v (pre) or %v (post)",
						k, m.name, steps[acked].name, stateNames(got), stateNames(states[acked]), stateNames(states[acked+1]))
				}
				// Durability: everything acknowledged before the crash must
				// be present — states[acked] is exactly that, and both legal
				// states contain it by construction, so reaching here proves
				// it. A second reopen must be stable (recovery idempotent).
				s3, err := Open("/db", WithFS(ffs))
				if err != nil {
					t.Fatalf("k=%d: second reopen: %v", k, err)
				}
				if !statesEqual(storeState(t, s3), got) {
					t.Fatalf("k=%d: recovery not idempotent", k)
				}
			}
		})
	}
}

func TestErrorInjectionMatrix(t *testing.T) {
	steps, _ := matrixWorkload(t)

	probe := NewFaultFS()
	s := openMatrixStore(t, probe)
	for _, st := range steps {
		if err := st.run(s); err != nil {
			t.Fatalf("dry run step %s: %v", st.name, err)
		}
	}
	totalOps := probe.Ops()

	for k := 1; k <= totalOps; k++ {
		ffs := NewFaultFS()
		s := openMatrixStore(t, ffs)
		ffs.FailAt(ffs.Ops()+k, nil)

		// Run the whole workload, tolerating the injected failure: the store
		// must keep accepting commits after a transient error. A failed step
		// may cascade (drop-A cannot succeed if save-A failed), so the model
		// tracks acknowledged steps rather than assuming exactly one miss.
		//
		// modelAcked applies only acknowledged steps. modelWith additionally
		// applies the injected step: without a crash, a record written but
		// not yet fsynced when the error hit is still in the live file, so a
		// reopen may legally surface that one unacknowledged commit.
		modelAcked := map[string][]storage.Row{}
		modelWith := map[string][]storage.Row{}
		injected := false
		for _, st := range steps {
			if err := st.run(s); err != nil {
				if !injected {
					if !errors.Is(err, ErrInjected) {
						t.Fatalf("k=%d: step %s failed with unexpected error: %v", k, st.name, err)
					}
					st.apply(modelWith)
					injected = true
					continue
				}
				if !errors.Is(err, ErrNoTable) {
					t.Fatalf("k=%d: cascading step %s failed with unexpected error: %v", k, st.name, err)
				}
				continue
			}
			st.apply(modelAcked)
			st.apply(modelWith)
		}

		// In-process state must match exactly the acknowledged commits.
		if got := storeState(t, s); !statesEqual(got, modelAcked) {
			t.Fatalf("k=%d: live state %v != acknowledged %v", k, stateNames(got), stateNames(modelAcked))
		}

		// The durable state after a clean reopen must hold every
		// acknowledged commit, plus at most the injected step's.
		s2, err := Open("/db", WithFS(ffs))
		if err != nil {
			t.Fatalf("k=%d: reopen after injected error: %v", k, err)
		}
		if got := storeState(t, s2); !statesEqual(got, modelAcked) && !statesEqual(got, modelWith) {
			t.Fatalf("k=%d: durable state %v != acknowledged %v nor with-injected %v",
				k, stateNames(got), stateNames(modelAcked), stateNames(modelWith))
		}
	}
}
