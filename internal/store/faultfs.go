package store

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"
)

// FaultFS is a deterministic in-memory filesystem with injectable errors and
// hard crash points. It exists so the crash-recovery matrix can prove the
// store's commit protocol correct at every step, not just assert it.
//
// Semantics mirror a POSIX filesystem under a strict durability model:
//
//   - Every file tracks two byte strings: data (what a live process sees)
//     and synced (what survives a crash). File.Sync promotes data to synced.
//   - Namespace operations (create, rename, remove) take effect immediately
//     for the live view but stay "pending" until SyncDir on the parent
//     directory makes them durable. A crash rolls back pending ops.
//   - Crash() simulates power loss: per the configured LossMode, unsynced
//     bytes are dropped entirely, half-kept (producing torn tails), or kept.
//
// Fault injection is driven by a monotonically increasing operation counter
// over mutating operations. CrashAt(k) makes the k-th mutating op take
// partial effect and then fail with ErrCrashed, after which every operation
// fails until Reset. FailAt(k, err) makes the k-th op fail with err without
// entering the crashed state, modelling a transient I/O error.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	pending []nsOp // namespace ops not yet made durable by SyncDir

	ops     int // mutating-op counter
	crashAt int // crash on the op with this ordinal (1-based); 0 = off
	failAt  int // fail the op with this ordinal (1-based); 0 = off
	failErr error
	crashed bool
	loss    LossMode
}

// LossMode selects what happens to unsynced bytes at crash time.
type LossMode int

const (
	// LossAll drops every unsynced byte: files revert to their last-synced
	// content and pending namespace ops are rolled back. The adversarial
	// maximum-loss model.
	LossAll LossMode = iota
	// LossHalf keeps half of each unsynced tail and keeps pending namespace
	// ops, producing torn WAL records and partially written segments.
	LossHalf
	// LossNone keeps everything written so far (the crash only interrupts
	// the process). Distinguishes "unsynced but present" from "lost".
	LossNone
)

// ErrCrashed is returned by every FaultFS operation after a crash point has
// fired, and by the op at the crash point itself.
var ErrCrashed = errors.New("faultfs: crashed")

// ErrInjected is the default error used by FailAt when none is given.
var ErrInjected = errors.New("faultfs: injected I/O error")

type nsOp struct {
	kind     byte // 'c' create, 'r' rename, 'm' remove
	name     string
	old      string   // rename source
	prior    *memFile // snapshot of durable state displaced by the op (nil = none)
	oldPrior *memFile // rename: durable state of the source before the op
}

type memFile struct {
	data   []byte
	synced []byte
}

func (f *memFile) clone() *memFile {
	if f == nil {
		return nil
	}
	c := &memFile{data: append([]byte(nil), f.data...), synced: append([]byte(nil), f.synced...)}
	return c
}

// NewFaultFS returns an empty in-memory filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: map[string]*memFile{}, dirs: map[string]bool{"/": true, ".": true}}
}

// CrashAt arms a hard crash on the k-th mutating operation (1-based).
func (fs *FaultFS) CrashAt(k int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashAt = k
}

// FailAt arms a transient error on the k-th mutating operation (1-based).
// A nil err injects ErrInjected.
func (fs *FaultFS) FailAt(k int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	fs.failAt, fs.failErr = k, err
}

// SetLossMode selects the crash retention model (default LossAll).
func (fs *FaultFS) SetLossMode(m LossMode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.loss = m
}

// Ops reports how many mutating operations have run so far. Running a
// workload once without faults and reading Ops gives the matrix its bound.
func (fs *FaultFS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether a crash point has fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Reset clears the crashed state and disarms faults, simulating the process
// restart that follows power loss. Durable state is preserved.
func (fs *FaultFS) Reset() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = false
	fs.crashAt, fs.failAt, fs.failErr = 0, 0, nil
}

// step gates a mutating operation: bumps the op counter and fires armed
// faults. Callers hold fs.mu. A non-nil return means the op must fail; at
// the crash point the loss model has already been applied when step returns.
func (fs *FaultFS) step() error {
	if fs.crashed {
		return ErrCrashed
	}
	fs.ops++
	if fs.failAt != 0 && fs.ops == fs.failAt {
		return fs.failErr
	}
	if fs.crashAt != 0 && fs.ops == fs.crashAt {
		fs.crashed = true
		fs.applyCrashLocked()
		return ErrCrashed
	}
	return nil
}

// applyCrashLocked applies the configured loss model to all files and
// pending namespace operations. Callers hold fs.mu.
func (fs *FaultFS) applyCrashLocked() {
	switch fs.loss {
	case LossNone:
		// Everything written survives; pending namespace ops survive too.
	case LossHalf:
		for _, f := range fs.files {
			if len(f.data) > len(f.synced) {
				keep := len(f.synced) + (len(f.data)-len(f.synced))/2
				f.data = f.data[:keep]
			} else if len(f.data) < len(f.synced) {
				// An unsynced truncation is undone by the crash.
				f.data = append([]byte(nil), f.synced...)
			}
			f.synced = append([]byte(nil), f.data...)
		}
	default: // LossAll
		for name, f := range fs.files {
			if f.synced == nil && fileWasCreatedPending(fs.pending, name) {
				continue // rolled back below with the namespace op
			}
			f.data = append([]byte(nil), f.synced...)
		}
		// Roll back pending namespace ops newest-first.
		for i := len(fs.pending) - 1; i >= 0; i-- {
			op := fs.pending[i]
			switch op.kind {
			case 'c':
				if op.prior == nil {
					delete(fs.files, op.name)
				} else {
					fs.files[op.name] = op.prior.clone()
				}
			case 'r':
				if op.prior == nil {
					delete(fs.files, op.name)
				} else {
					fs.files[op.name] = op.prior.clone()
				}
				if op.oldPrior != nil {
					fs.files[op.old] = op.oldPrior.clone()
				}
			case 'm':
				if op.prior != nil {
					fs.files[op.name] = op.prior.clone()
				}
			}
		}
	}
	fs.pending = nil
}

func fileWasCreatedPending(pending []nsOp, name string) bool {
	for _, op := range pending {
		if op.kind == 'c' && op.name == name && op.prior == nil {
			return true
		}
	}
	return false
}

// Crash forces an immediate crash outside any operation (e.g. between two
// workload steps). Idempotent.
func (fs *FaultFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return
	}
	fs.crashed = true
	fs.applyCrashLocked()
}

// --- FS interface ---

// MkdirAll implements FS. Directory creation is considered instantly durable
// (the store only makes its fixed layout once).
func (fs *FaultFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	d := path.Clean(dir)
	for d != "/" && d != "." && d != "" {
		fs.dirs[d] = true
		d = path.Dir(d)
	}
	return nil
}

// Create implements FS.
func (fs *FaultFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return nil, err
	}
	name = path.Clean(name)
	var prior *memFile
	if old, ok := fs.files[name]; ok && old.synced != nil {
		prior = &memFile{data: append([]byte(nil), old.synced...), synced: append([]byte(nil), old.synced...)}
	}
	fs.files[name] = &memFile{}
	fs.pending = append(fs.pending, nsOp{kind: 'c', name: name, prior: prior})
	return &faultFile{fs: fs, name: name}, nil
}

// Append implements FS.
func (fs *FaultFS) Append(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return nil, err
	}
	name = path.Clean(name)
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &memFile{}
		fs.pending = append(fs.pending, nsOp{kind: 'c', name: name})
	}
	return &faultFile{fs: fs, name: name}, nil
}

// Open implements FS. Reads are not mutating and never consume an op.
func (fs *FaultFS) Open(name string) (ReadFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil, &pathError{"open", name}
	}
	return &faultReadFile{data: append([]byte(nil), f.data...)}, nil
}

// Rename implements FS.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	oldpath, newpath = path.Clean(oldpath), path.Clean(newpath)
	src, ok := fs.files[oldpath]
	if !ok {
		return &pathError{"rename", oldpath}
	}
	op := nsOp{kind: 'r', name: newpath, old: oldpath}
	if dst, ok := fs.files[newpath]; ok && dst.synced != nil {
		op.prior = &memFile{data: append([]byte(nil), dst.synced...), synced: append([]byte(nil), dst.synced...)}
	}
	if src.synced != nil {
		op.oldPrior = &memFile{data: append([]byte(nil), src.synced...), synced: append([]byte(nil), src.synced...)}
	}
	fs.files[newpath] = src
	delete(fs.files, oldpath)
	fs.pending = append(fs.pending, op)
	return nil
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	name = path.Clean(name)
	f, ok := fs.files[name]
	if !ok {
		return &pathError{"remove", name}
	}
	op := nsOp{kind: 'm', name: name}
	if f.synced != nil {
		op.prior = &memFile{data: append([]byte(nil), f.synced...), synced: append([]byte(nil), f.synced...)}
	}
	delete(fs.files, name)
	fs.pending = append(fs.pending, op)
	return nil
}

// Truncate implements FS.
func (fs *FaultFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return &pathError{"truncate", name}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("faultfs: truncate %s to %d out of range", name, size)
	}
	f.data = f.data[:size]
	return nil
}

// ReadDir implements FS.
func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	dir = path.Clean(dir)
	var names []string
	for name := range fs.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: pending namespace operations under dir (recursively)
// become durable, and the durable content of renamed/created files is pinned
// at their current synced bytes.
func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	dir = path.Clean(dir)
	kept := fs.pending[:0]
	for _, op := range fs.pending {
		if !underDir(op.name, dir) && !(op.kind == 'r' && underDir(op.old, dir)) {
			kept = append(kept, op)
			continue
		}
		if op.kind == 'c' || op.kind == 'r' {
			if f, ok := fs.files[op.name]; ok && f.synced == nil {
				f.synced = []byte{}
			}
		}
	}
	fs.pending = append([]nsOp(nil), kept...)
	return nil
}

func underDir(name, dir string) bool {
	return path.Dir(name) == dir || strings.HasPrefix(name, dir+"/")
}

// DumpFiles returns the live file names, sorted — a debugging aid for tests.
func (fs *FaultFS) DumpFiles() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type faultFile struct {
	fs     *FaultFS
	name   string
	closed bool
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, errors.New("faultfs: write on closed file")
	}
	if err := f.fs.step(); err != nil {
		// Crash mid-write: model a partial write of half the buffer.
		if errors.Is(err, ErrCrashed) && f.fs.loss != LossAll {
			if mf, ok := f.fs.files[f.name]; ok {
				mf.data = append(mf.data, p[:len(p)/2]...)
				if f.fs.loss == LossNone || f.fs.loss == LossHalf {
					mf.synced = append([]byte(nil), mf.data...)
				}
			}
		}
		return 0, err
	}
	mf, ok := f.fs.files[f.name]
	if !ok {
		return 0, &pathError{"write", f.name}
	}
	mf.data = append(mf.data, p...)
	return len(p), nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return errors.New("faultfs: sync on closed file")
	}
	if err := f.fs.step(); err != nil {
		return err
	}
	mf, ok := f.fs.files[f.name]
	if !ok {
		return &pathError{"sync", f.name}
	}
	mf.synced = append([]byte(nil), mf.data...)
	return nil
}

func (f *faultFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if f.fs.crashed {
		return ErrCrashed
	}
	return nil
}

type faultReadFile struct {
	data   []byte
	closed bool
}

func (f *faultReadFile) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, errors.New("faultfs: read on closed file")
	}
	if off < 0 || off > int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *faultReadFile) Size() (int64, error) { return int64(len(f.data)), nil }
func (f *faultReadFile) Close() error         { f.closed = true; return nil }

type pathError struct {
	op   string
	name string
}

func (e *pathError) Error() string { return fmt.Sprintf("faultfs: %s %s: no such file", e.op, e.name) }

// IsNotExist reports whether err is a FaultFS or OS "file does not exist".
func IsNotExist(err error) bool {
	var pe *pathError
	if errors.As(err, &pe) {
		return true
	}
	return errorsIsNotExist(err)
}
