package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// The recovery edge cases the WAL discipline must survive: empty logs,
// checkpoint-only logs, torn tails, duplicate-name replays, and a crash in
// the middle of the checkpoint rename itself. Each must reopen to a valid
// manifest with every surviving table readable and checksum-verified.

func TestRecoverEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	// An explicitly present but empty wal.log: a store that crashed after
	// creating the file and before the first record.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open with empty wal: %v", err)
	}
	defer s.Close()
	if got := len(s.Tables()); got != 0 {
		t.Fatalf("empty wal produced %d tables", got)
	}
	// The store must still be writable afterwards.
	if err := s.SaveRows("t", testSchema(t), testRows(10, 0)); err != nil {
		t.Fatalf("save after empty-wal open: %v", err)
	}
}

func TestRecoverMissingWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open on fresh dir: %v", err)
	}
	defer s.Close()
	if got := len(s.Tables()); got != 0 {
		t.Fatalf("fresh dir produced %d tables", got)
	}
}

func TestRecoverCheckpointOnlyWAL(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	want := testRows(100, 0)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRows("t", schema, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The log now holds exactly one snapshot record and nothing else.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open checkpoint-only wal: %v", err)
	}
	defer s2.Close()
	got, err := s2.Rows("t")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, want)
}

func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	want := testRows(50, 0)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRows("keep", schema, want); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRows("torn", schema, testRows(50, 100)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the final record in half, as a crash mid-append would.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	_, goodLen, torn := recoverManifest(data)
	if torn {
		t.Fatal("setup: wal already torn")
	}
	recs, _, _ := decodeWAL(data)
	if len(recs) != 2 {
		t.Fatalf("setup: want 2 records, got %d", len(recs))
	}
	// Find the second record's start: replay just the first record.
	var firstLen int64
	{
		_, n, ok := decodeOneWALRecord(data)
		if !ok {
			t.Fatal("setup: first record undecodable")
		}
		firstLen = int64(n)
	}
	cut := firstLen + (goodLen-firstLen)/2
	if err := os.WriteFile(walPath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Has("torn") {
		t.Fatal("half-written record replayed as committed")
	}
	got, err := s2.Rows("keep")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, want)
	if v := s2.Metrics().Snapshot().CounterValue("store.recovery.torn_tails"); v != 1 {
		t.Fatalf("torn_tails counter = %d, want 1", v)
	}

	// The truncation must leave a log a third open replays cleanly.
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if v := s3.Metrics().Snapshot().CounterValue("store.recovery.torn_tails"); v != 0 {
		t.Fatalf("tail still torn on third open")
	}
}

func TestRecoverDuplicateTableNameReplay(t *testing.T) {
	dir := t.TempDir()
	schema := testSchema(t)
	v1 := testRows(10, 0)
	v2 := testRows(20, 100)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Two upserts for the same name in one log: replay must keep the last.
	if err := s.SaveRows("t", schema, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRows("t", schema, v2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got, err := s2.Rows("t")
	if err != nil {
		t.Fatalf("rows: %v", err)
	}
	rowsEqual(t, got, v2)
	if got := len(s2.Tables()); got != 1 {
		t.Fatalf("duplicate replay produced %d tables", got)
	}
}

func TestRecoverCrashDuringCheckpoint(t *testing.T) {
	// Drive the checkpoint on FaultFS and crash at every op inside it; the
	// reopened manifest must always be the full pre-checkpoint state (a
	// checkpoint changes representation, never content).
	schema := testSchema(t)
	want := testRows(60, 0)

	// Count the checkpoint's ops once, fault-free.
	probe := NewFaultFS()
	s, err := Open("/db", WithFS(probe))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRows("a", schema, want); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRows("b", schema, testRows(30, 500)); err != nil {
		t.Fatal(err)
	}
	preOps := probe.Ops()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ckptOps := probe.Ops() - preOps
	if ckptOps < 4 {
		t.Fatalf("checkpoint took only %d ops; harness not exercising it", ckptOps)
	}

	for _, mode := range []LossMode{LossAll, LossHalf, LossNone} {
		for k := 1; k <= ckptOps; k++ {
			ffs := NewFaultFS()
			ffs.SetLossMode(mode)
			s, err := Open("/db", WithFS(ffs))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SaveRows("a", schema, want); err != nil {
				t.Fatal(err)
			}
			if err := s.SaveRows("b", schema, testRows(30, 500)); err != nil {
				t.Fatal(err)
			}
			ffs.CrashAt(ffs.Ops() + k)
			if err := s.Checkpoint(); err == nil {
				t.Fatalf("mode=%d k=%d: checkpoint survived its crash point", mode, k)
			}
			ffs.Crash() // ensure full loss model applied even if the op itself absorbed it
			ffs.Reset()

			s2, err := Open("/db", WithFS(ffs))
			if err != nil {
				t.Fatalf("mode=%d k=%d: reopen: %v", mode, k, err)
			}
			for name, rows := range map[string][]storage.Row{"a": want, "b": testRows(30, 500)} {
				got, err := s2.Rows(name)
				if err != nil {
					t.Fatalf("mode=%d k=%d: rows(%s): %v", mode, k, name, err)
				}
				rowsEqual(t, got, rows)
			}
		}
	}
}
