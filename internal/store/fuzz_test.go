package store

import (
	"bytes"
	"encoding/json"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenWAL builds the reference manifest-log image the fuzzers seed from:
// a snapshot, an upsert, a replace, and a drop — every record type.
func goldenWAL() []byte {
	schema := storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "region", Type: storage.TypeString, Sensitivity: storage.Internal},
		storage.Field{Name: "score", Type: storage.TypeFloat, Nullable: true},
	)
	minID, maxID := int64(1), int64(99)
	meta := TableMeta{
		Name:   "events",
		Fields: fieldsFromSchema(schema),
		Rows:   99,
		Segments: []SegmentRef{{
			Name:      "seg-00000001.seg",
			Rows:      99,
			Bytes:     4096,
			FooterCRC: 0xDEADBEEF,
			Zones:     []ZoneMap{{Col: "id", MinInt: &minID, MaxInt: &maxID}},
			BloomCol:  "region",
		}},
	}
	snap := newManifestState()
	snap.Tables["seed"] = TableMeta{Name: "seed", Fields: fieldsFromSchema(schema)}
	var buf []byte
	if rec, err := encodeSnapshot(snap); err == nil {
		buf = append(buf, rec...)
	}
	if rec, err := encodeUpsert(meta); err == nil {
		buf = append(buf, rec...)
	}
	meta.Rows = 120
	if rec, err := encodeUpsert(meta); err == nil {
		buf = append(buf, rec...)
	}
	if rec, err := encodeDrop("seed"); err == nil {
		buf = append(buf, rec...)
	}
	return buf
}

// goldenSegment writes the reference segment file image through the real
// writer on an in-memory filesystem.
func goldenSegment() ([]byte, error) {
	schema := storage.MustSchema(
		storage.Field{Name: "id", Type: storage.TypeInt},
		storage.Field{Name: "region", Type: storage.TypeString},
		storage.Field{Name: "score", Type: storage.TypeFloat, Nullable: true},
	)
	rows := make([]storage.Row, 64)
	for i := range rows {
		var score storage.Value = float64(i) / 3
		if i%7 == 0 {
			score = nil
		}
		rows[i] = storage.Row{int64(i), []string{"emea", "amer", "apac"}[i%3], score}
	}
	b, err := storage.BatchFromRows(schema, rows)
	if err != nil {
		return nil, err
	}
	ffs := NewFaultFS()
	if _, _, err := writeSegment(ffs, "/g.seg", schema, []*storage.ColumnBatch{b}, "region", storage.CodecOptions{Compress: true}); err != nil {
		return nil, err
	}
	return readAll(ffs, "/g.seg")
}

// TestGoldenFilesUpToDate pins the on-disk formats: the committed golden
// files must match what today's encoders produce. Run with -update to
// regenerate after a deliberate format change.
func TestGoldenFilesUpToDate(t *testing.T) {
	seg, err := goldenSegment()
	if err != nil {
		t.Fatalf("building golden segment: %v", err)
	}
	for _, g := range []struct {
		name string
		data []byte
	}{
		{"wal-basic.golden", goldenWAL()},
		{"segment-small.golden", seg},
	} {
		path := filepath.Join("testdata", g.name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, g.data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		disk, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s (run `go test ./internal/store -run Golden -update` to create): %v", path, err)
		}
		if !bytes.Equal(disk, g.data) {
			t.Fatalf("%s is stale: encoder output changed; if intentional, regenerate with -update", path)
		}
	}
}

// FuzzDecodeManifest drives the WAL replay path with arbitrary bytes: it
// must never panic, the reported good length must be a true prefix, and
// replaying that prefix must be stable (same state, no torn tail) — the
// exact property recovery relies on after truncating a torn log.
func FuzzDecodeManifest(f *testing.F) {
	wal := goldenWAL()
	f.Add(wal)
	f.Add(wal[:len(wal)/2])
	f.Add(wal[:len(wal)-3])
	if disk, err := os.ReadFile(filepath.Join("testdata", "wal-basic.golden")); err == nil {
		f.Add(disk)
	}
	f.Add([]byte{})
	f.Add([]byte{walMagic})
	f.Add([]byte{walMagic, 0x02, opUpsert, '{'})
	f.Add(append(append([]byte{}, wal...), 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, goodLen, torn := recoverManifest(data)
		if goodLen < 0 || goodLen > int64(len(data)) {
			t.Fatalf("goodLen %d out of [0,%d]", goodLen, len(data))
		}
		if !torn && goodLen != int64(len(data)) {
			t.Fatalf("untorn log with goodLen %d != %d", goodLen, len(data))
		}
		// Replaying the good prefix must reproduce the state exactly and
		// report a clean log.
		m2, goodLen2, torn2 := recoverManifest(data[:goodLen])
		if torn2 || goodLen2 != goodLen {
			t.Fatalf("good prefix replays torn=%v goodLen=%d (want clean, %d)", torn2, goodLen2, goodLen)
		}
		j1, _ := json.Marshal(m)
		j2, _ := json.Marshal(m2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("prefix replay state drifted: %s vs %s", j1, j2)
		}
		// A snapshot of any recovered state must round-trip.
		snap, err := encodeSnapshot(m)
		if err != nil {
			t.Fatalf("snapshot encode: %v", err)
		}
		m3, _, torn3 := recoverManifest(snap)
		if torn3 {
			t.Fatal("snapshot of recovered state replays torn")
		}
		j3, _ := json.Marshal(m3)
		if !bytes.Equal(j1, j3) {
			t.Fatalf("snapshot round-trip drifted: %s vs %s", j1, j3)
		}
	})
}

// FuzzDecodeSegmentFooter drives the segment-open path with arbitrary
// bytes: decodeSegmentFooter must never panic or accept a frame index that
// points outside the file, because recovery runs it over every segment a
// possibly-corrupt manifest references.
func FuzzDecodeSegmentFooter(f *testing.F) {
	seg, err := goldenSegment()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)/2])
	f.Add(seg[:len(seg)-1])
	if disk, err := os.ReadFile(filepath.Join("testdata", "segment-small.golden")); err == nil {
		f.Add(disk)
	}
	corrupt := append([]byte(nil), seg...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte("TSG1"))
	f.Add([]byte("TSG1....TSGF"))

	f.Fuzz(func(t *testing.T, data []byte) {
		footer, crc, err := decodeSegmentFooter(&faultReadFile{data: data})
		if err != nil {
			return
		}
		_ = crc
		size := int64(len(data))
		for _, fr := range footer.Frames {
			if fr.Off < 0 || fr.Len < 0 || fr.Off+int64(fr.Len) > size {
				t.Fatalf("accepted frame [%d,+%d) outside %d-byte file", fr.Off, fr.Len, size)
			}
		}
		// A structurally valid footer must be scannable without panicking:
		// frames either verify and decode, or error out cleanly.
		meta := TableMeta{Name: "fuzz", Fields: footer.Fields}
		schema, err := meta.schema()
		if err != nil {
			return
		}
		for _, fr := range footer.Frames {
			body := data[fr.Off : fr.Off+int64(fr.Len)]
			if crc32.ChecksumIEEE(body) != fr.CRC {
				continue
			}
			if b, err := storage.DecodeBatch(schema, body); err == nil && b.Len() < 0 {
				t.Fatal("negative batch length")
			}
		}
	})
}
