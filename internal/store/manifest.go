package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/storage"
)

// The manifest is the store's source of truth: which tables are live and
// which segment files make each one up. It is never stored as a mutable
// file; instead an append-only log of CRC-framed records is replayed on
// open. A checkpoint rewrites the log as a single snapshot record through
// temp-file + atomic-rename, so the log is always either the old version or
// the new one, never a mix.
//
// Record framing (little-endian):
//
//	+------+----------------+-----------------+------------+
//	| 0xA7 | uvarint len(p) |  p (op + JSON)  | crc32(p)   |
//	+------+----------------+-----------------+------------+
//
// p[0] is the op code; p[1:] is the op's JSON body. The CRC covers p only.
// Replay stops at the first byte that does not parse as a whole valid
// record: everything before it is the recovered manifest, everything from
// it on is a torn tail to truncate.

const (
	walMagic = 0xA7

	opSnapshot byte = 1 // body: manifestState — replaces all prior state
	opUpsert   byte = 2 // body: TableMeta — create or replace one table
	opDrop     byte = 3 // body: dropBody — remove one table

	// maxWALRecord bounds a single record's payload so a corrupt length
	// prefix cannot make the decoder attempt a huge allocation.
	maxWALRecord = 64 << 20
)

// SegmentRef is a manifest entry pointing at one immutable segment file.
type SegmentRef struct {
	// Name is the file name inside the store's segs/ directory.
	Name string `json:"name"`
	// Rows and Bytes describe the segment for planning and stats.
	Rows  int   `json:"rows"`
	Bytes int64 `json:"bytes"`
	// FooterCRC pins the segment's footer checksum; recovery re-verifies it
	// before trusting the file.
	FooterCRC uint32 `json:"footer_crc"`
	// Zones carries the per-column min/max zone maps for pruning without
	// opening the segment.
	Zones []ZoneMap `json:"zones,omitempty"`
	// BloomCol names the column the segment's bloom filter indexes ("" =
	// no bloom filter).
	BloomCol string `json:"bloom_col,omitempty"`
}

// TableMeta is a manifest entry describing one live table.
type TableMeta struct {
	Name     string       `json:"name"`
	Fields   []fieldMeta  `json:"fields"`
	Segments []SegmentRef `json:"segments"`
	Rows     int          `json:"rows"`
}

// fieldMeta round-trips storage.Field through JSON with stable tags.
type fieldMeta struct {
	Name        string `json:"name"`
	Type        int    `json:"type"`
	Sensitivity int    `json:"sensitivity"`
	Nullable    bool   `json:"nullable,omitempty"`
}

func fieldsFromSchema(s *storage.Schema) []fieldMeta {
	out := make([]fieldMeta, s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		out[i] = fieldMeta{Name: f.Name, Type: int(f.Type), Sensitivity: int(f.Sensitivity), Nullable: f.Nullable}
	}
	return out
}

func (t TableMeta) schema() (*storage.Schema, error) {
	fields := make([]storage.Field, len(t.Fields))
	for i, f := range t.Fields {
		if f.Type < int(storage.TypeString) || f.Type > int(storage.TypeTime) {
			return nil, fmt.Errorf("store: table %q field %q has invalid type %d", t.Name, f.Name, f.Type)
		}
		fields[i] = storage.Field{
			Name:        f.Name,
			Type:        storage.FieldType(f.Type),
			Sensitivity: storage.Sensitivity(f.Sensitivity),
			Nullable:    f.Nullable,
		}
	}
	return storage.NewSchema(fields...)
}

// manifestState is the replayed, in-memory manifest.
type manifestState struct {
	Tables map[string]TableMeta `json:"tables"`
}

func newManifestState() manifestState {
	return manifestState{Tables: map[string]TableMeta{}}
}

func (m manifestState) clone() manifestState {
	c := newManifestState()
	for k, v := range m.Tables {
		c.Tables[k] = v
	}
	return c
}

// tableNames returns the live table names, sorted.
func (m manifestState) tableNames() []string {
	names := make([]string, 0, len(m.Tables))
	for n := range m.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type dropBody struct {
	Name string `json:"name"`
}

// walRecord is one decoded log record.
type walRecord struct {
	op   byte
	body []byte
}

// appendWALRecord frames op+body into buf and returns the extended buffer.
func appendWALRecord(buf []byte, op byte, body []byte) []byte {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, op)
	payload = append(payload, body...)
	buf = append(buf, walMagic)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

func encodeUpsert(t TableMeta) ([]byte, error) {
	body, err := json.Marshal(t)
	if err != nil {
		return nil, err
	}
	return appendWALRecord(nil, opUpsert, body), nil
}

func encodeDrop(name string) ([]byte, error) {
	body, err := json.Marshal(dropBody{Name: name})
	if err != nil {
		return nil, err
	}
	return appendWALRecord(nil, opDrop, body), nil
}

func encodeSnapshot(m manifestState) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return appendWALRecord(nil, opSnapshot, body), nil
}

// decodeWAL parses a log image. It returns the records that parsed cleanly,
// the byte offset just past the last good record, and whether a torn or
// corrupt tail followed (torn == goodLen < len(data)).
func decodeWAL(data []byte) (recs []walRecord, goodLen int64, torn bool) {
	off := 0
	for off < len(data) {
		rec, n, ok := decodeOneWALRecord(data[off:])
		if !ok {
			return recs, int64(off), true
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), false
}

// decodeOneWALRecord parses a single record at the start of data, returning
// its size in bytes. ok is false for any framing, bounds, or CRC failure.
func decodeOneWALRecord(data []byte) (rec walRecord, n int, ok bool) {
	if len(data) < 1 || data[0] != walMagic {
		return rec, 0, false
	}
	plen, vlen := binary.Uvarint(data[1:])
	if vlen <= 0 || plen == 0 || plen > maxWALRecord {
		return rec, 0, false
	}
	start := 1 + vlen
	end := start + int(plen)
	if end+4 > len(data) {
		return rec, 0, false
	}
	payload := data[start:end]
	want := binary.LittleEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return rec, 0, false
	}
	rec.op = payload[0]
	rec.body = append([]byte(nil), payload[1:]...)
	return rec, end + 4, true
}

// applyWALRecord folds one record into the state. A false return means the
// record is semantically invalid (bad JSON, unknown op, empty name) and
// replay must stop there, exactly as a CRC failure would at a lower layer.
func applyWALRecord(m *manifestState, rec walRecord) bool {
	switch rec.op {
	case opSnapshot:
		var snap manifestState
		if err := json.Unmarshal(rec.body, &snap); err != nil {
			return false
		}
		if snap.Tables == nil {
			snap.Tables = map[string]TableMeta{}
		}
		*m = snap
	case opUpsert:
		var t TableMeta
		if err := json.Unmarshal(rec.body, &t); err != nil || t.Name == "" {
			return false
		}
		// Duplicate names replay with replace semantics — last wins,
		// matching Catalog.Replace.
		m.Tables[t.Name] = t
	case opDrop:
		var d dropBody
		if err := json.Unmarshal(rec.body, &d); err != nil || d.Name == "" {
			return false
		}
		delete(m.Tables, d.Name)
	default:
		return false
	}
	return true
}

// recoverManifest replays a log image. It returns the recovered state, the
// byte offset just past the last record that was both well-framed and
// semantically valid, and whether a torn/corrupt tail followed. Truncating
// the log to goodLen yields a file whose every byte is a valid record.
func recoverManifest(data []byte) (m manifestState, goodLen int64, torn bool) {
	m = newManifestState()
	off := 0
	for off < len(data) {
		rec, n, ok := decodeOneWALRecord(data[off:])
		if !ok || !applyWALRecord(&m, rec) {
			return m, int64(off), true
		}
		off += n
	}
	return m, int64(off), false
}
