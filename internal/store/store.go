package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// Store is the durable table layer. All mutation goes through the manifest
// WAL: a save or drop is durable exactly when its WAL record is fsynced, and
// recovery on Open reconstructs the manifest from the log alone.
//
// Directory layout under the store root:
//
//	wal.log      append-only manifest log (see manifest.go)
//	segs/        immutable segment files, seg-<seq>.seg
//	tmp/         in-flight segment/checkpoint files; swept on open
//	quarantine/  segments that failed checksum verification on open
type Store struct {
	mu  sync.Mutex
	fs  FS
	dir string

	manifest manifestState
	nextSeq  uint64
	walLen   int64 // bytes of wal.log known to hold only valid records
	walDirty bool  // a failed append may have left a torn tail at walLen

	recordsSinceCheckpoint int
	checkpointEvery        int
	segmentRows            int
	frameRows              int
	codec                  storage.CodecOptions

	reg    *metrics.Registry
	closed bool

	// Quarantined lists tables dropped during recovery because a referenced
	// segment failed verification, for surfacing to operators.
	quarantined []string
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrNoTable is returned when a named table is not in the manifest.
var ErrNoTable = errors.New("store: no such table")

const (
	walName        = "wal.log"
	segsDirName    = "segs"
	tmpDirName     = "tmp"
	quarantineName = "quarantine"

	defaultSegmentRows     = 8192
	defaultFrameRows       = 2048
	defaultCheckpointEvery = 64
)

// Option configures Open.
type Option func(*Store)

// WithFS substitutes the filesystem (tests use FaultFS).
func WithFS(fs FS) Option { return func(s *Store) { s.fs = fs } }

// WithMetrics attaches a registry for store.* counters.
func WithMetrics(reg *metrics.Registry) Option { return func(s *Store) { s.reg = reg } }

// WithSegmentRows caps rows per segment file (default 8192).
func WithSegmentRows(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.segmentRows = n
		}
	}
}

// WithFrameRows caps rows per frame inside a segment (default 2048).
func WithFrameRows(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.frameRows = n
		}
	}
}

// WithCheckpointEvery sets how many WAL records accumulate before an
// automatic checkpoint folds the log into one snapshot (default 64).
func WithCheckpointEvery(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.checkpointEvery = n
		}
	}
}

// WithCodec overrides the frame codec options (default: v2, compressed).
func WithCodec(c storage.CodecOptions) Option { return func(s *Store) { s.codec = c } }

// TableOption configures SaveTable.
type TableOption func(*tableOpts)

type tableOpts struct{ bloomCol string }

// WithBloomColumn builds a per-segment bloom filter over the named column so
// equality scans can skip segments without the key.
func WithBloomColumn(col string) TableOption { return func(o *tableOpts) { o.bloomCol = col } }

// Open opens (creating if needed) the store rooted at dir and runs recovery:
// replay the WAL, truncate any torn tail, verify every referenced segment's
// footer checksum (quarantining failures), and sweep orphaned files.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		fs:              OSFS{},
		dir:             dir,
		manifest:        newManifestState(),
		segmentRows:     defaultSegmentRows,
		frameRows:       defaultFrameRows,
		checkpointEvery: defaultCheckpointEvery,
		codec:           storage.CodecOptions{Compress: true},
	}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	for _, d := range []string{dir, s.segsDir(), s.tmpDir(), s.quarantineDir()} {
		if err := s.fs.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("store: mkdir %s: %w", d, err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) walPath() string         { return path.Join(s.dir, walName) }
func (s *Store) segsDir() string         { return path.Join(s.dir, segsDirName) }
func (s *Store) tmpDir() string          { return path.Join(s.dir, tmpDirName) }
func (s *Store) quarantineDir() string   { return path.Join(s.dir, quarantineName) }
func (s *Store) segPath(n string) string { return path.Join(s.segsDir(), n) }

func segFileName(seq uint64) string { return fmt.Sprintf("seg-%08d.seg", seq) }

// segSeq parses the sequence number out of a segment (or tmp) file name.
func segSeq(name string) (uint64, bool) {
	base := path.Base(name)
	if !strings.HasPrefix(base, "seg-") {
		return 0, false
	}
	base = strings.TrimPrefix(base, "seg-")
	i := strings.IndexByte(base, '.')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(base[:i], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// recover is the open-time repair pass described in the package comment.
func (s *Store) recover() error {
	// 1. Replay the WAL, discarding any torn tail.
	data, err := readAll(s.fs, s.walPath())
	switch {
	case err == nil:
	case IsNotExist(err):
		data = nil
	default:
		return fmt.Errorf("store: reading %s: %w", s.walPath(), err)
	}
	m, goodLen, torn := recoverManifest(data)
	if torn {
		s.reg.Counter("store.recovery.torn_tails").Inc()
		if err := s.fs.Truncate(s.walPath(), goodLen); err != nil {
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}
	s.walLen = goodLen
	s.recordsSinceCheckpoint = 0 // conservative: checkpoint cadence restarts per open

	// 2. Verify every referenced segment; quarantine tables that fail.
	for _, name := range m.tableNames() {
		t := m.Tables[name]
		bad := false
		for _, ref := range t.Segments {
			footer, crc, err := readSegmentFooter(s.fs, s.segPath(ref.Name))
			if err == nil && footer.Rows == ref.Rows && crc == ref.FooterCRC {
				continue
			}
			bad = true
			s.reg.Counter("store.segments.quarantined").Inc()
			if err == nil || !IsNotExist(err) {
				// Move the corrupt file aside so operators can inspect it
				// and so the GC below cannot mistake it for live data.
				_ = s.fs.Rename(s.segPath(ref.Name), path.Join(s.quarantineDir(), ref.Name))
			}
		}
		if bad {
			delete(m.Tables, name)
			s.quarantined = append(s.quarantined, name)
		}
	}
	s.manifest = m

	// 3. Sweep tmp/ and unreferenced segments (commits that never reached
	// their WAL record), and derive the next file sequence number.
	live := map[string]bool{}
	for _, t := range m.Tables {
		for _, ref := range t.Segments {
			live[ref.Name] = true
		}
	}
	var maxSeq uint64
	if names, err := s.fs.ReadDir(s.segsDir()); err == nil {
		for _, n := range names {
			if seq, ok := segSeq(n); ok && seq > maxSeq {
				maxSeq = seq
			}
			if !live[n] {
				_ = s.fs.Remove(s.segPath(n))
			}
		}
	}
	if names, err := s.fs.ReadDir(s.tmpDir()); err == nil {
		for _, n := range names {
			if seq, ok := segSeq(n); ok && seq > maxSeq {
				maxSeq = seq
			}
			_ = s.fs.Remove(path.Join(s.tmpDir(), n))
		}
	}
	if names, err := s.fs.ReadDir(s.quarantineDir()); err == nil {
		for _, n := range names {
			if seq, ok := segSeq(n); ok && seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	s.nextSeq = maxSeq + 1
	s.reg.Counter("store.recovery.opens").Inc()
	return nil
}

// readAll slurps a file through the FS abstraction.
func readAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size == 0 {
		return data, nil
	}
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// Quarantined returns table names dropped during recovery because a segment
// failed verification.
func (s *Store) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.quarantined...)
}

// Metrics returns the store's counter registry.
func (s *Store) Metrics() *metrics.Registry { return s.reg }

// Close marks the store closed. Idempotent; the on-disk state needs no
// shutdown step because every commit is already durable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Tables lists live tables, sorted by name.
func (s *Store) Tables() []TableInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TableInfo, 0, len(s.manifest.Tables))
	for _, name := range s.manifest.tableNames() {
		out = append(out, infoFor(s.manifest.Tables[name]))
	}
	return out
}

// TableInfo is the operator-facing summary of one live table.
type TableInfo struct {
	Name     string
	Rows     int
	Segments int
	Bytes    int64
	Columns  []string
}

func infoFor(t TableMeta) TableInfo {
	info := TableInfo{Name: t.Name, Rows: t.Rows, Segments: len(t.Segments)}
	for _, f := range t.Fields {
		info.Columns = append(info.Columns, f.Name)
	}
	for _, ref := range t.Segments {
		info.Bytes += ref.Bytes
	}
	return info
}

// Info returns the summary of one live table.
func (s *Store) Info(name string) (TableInfo, error) {
	s.mu.Lock()
	t, ok := s.manifest.Tables[name]
	s.mu.Unlock()
	if !ok {
		return TableInfo{}, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return infoFor(t), nil
}

// Has reports whether a table is live.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.manifest.Tables[name]
	return ok
}

// Schema returns a live table's schema.
func (s *Store) Schema(name string) (*storage.Schema, error) {
	s.mu.Lock()
	t, ok := s.manifest.Tables[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t.schema()
}

// SaveTable durably writes batches as the named table, replacing any
// previous version. The commit point is the fsync of the table's WAL
// record: a crash before it leaves the old version (or no table), a crash
// after it leaves the new one — never a mix.
func (s *Store) SaveTable(name string, schema *storage.Schema, batches []*storage.ColumnBatch, topts ...TableOption) error {
	if name == "" {
		return errors.New("store: empty table name")
	}
	if schema == nil {
		return errors.New("store: nil schema")
	}
	var o tableOpts
	for _, opt := range topts {
		opt(&o)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}

	chunks, totalRows := s.chunkForSegments(schema, batches)
	meta := TableMeta{Name: name, Fields: fieldsFromSchema(schema), Rows: totalRows}

	// Phase 1: write every segment through tmp + rename. Nothing here is
	// visible to readers or survives recovery until the WAL record commits.
	for _, chunk := range chunks {
		seq := s.nextSeq
		s.nextSeq++
		fileName := segFileName(seq)
		tmpPath := path.Join(s.tmpDir(), fmt.Sprintf("seg-%08d.tmp", seq))
		ref, _, err := writeSegment(s.fs, tmpPath, schema, chunk, o.bloomCol, s.codec)
		if err != nil {
			return fmt.Errorf("store: writing segment for %q: %w", name, err)
		}
		if err := s.fs.Rename(tmpPath, s.segPath(fileName)); err != nil {
			return fmt.Errorf("store: publishing segment for %q: %w", name, err)
		}
		ref.Name = fileName
		meta.Segments = append(meta.Segments, ref)
		s.reg.Counter("store.segments.written").Inc()
		s.reg.Counter("store.bytes.written").Add(ref.Bytes)
	}
	if err := s.fs.SyncDir(s.segsDir()); err != nil {
		return fmt.Errorf("store: syncing segment dir: %w", err)
	}

	// Phase 2: commit.
	rec, err := encodeUpsert(meta)
	if err != nil {
		return err
	}
	if err := s.appendWAL(rec); err != nil {
		return fmt.Errorf("store: committing %q: %w", name, err)
	}
	s.manifest.Tables[name] = meta
	s.reg.Counter("store.tables.saved").Inc()
	s.maybeCheckpointLocked()
	return nil
}

// SaveRows is SaveTable for row-shaped data.
func (s *Store) SaveRows(name string, schema *storage.Schema, rows []storage.Row, topts ...TableOption) error {
	b, err := storage.BatchFromRows(schema, rows)
	if err != nil {
		return err
	}
	return s.SaveTable(name, schema, []*storage.ColumnBatch{b}, topts...)
}

// chunkForSegments re-chunks input batches into frame-sized batches grouped
// into segment-sized groups. Row order is preserved.
func (s *Store) chunkForSegments(schema *storage.Schema, batches []*storage.ColumnBatch) ([][]*storage.ColumnBatch, int) {
	var segments [][]*storage.ColumnBatch
	var current []*storage.ColumnBatch
	currentRows := 0
	total := 0
	flushSeg := func() {
		if len(current) > 0 {
			segments = append(segments, current)
			current, currentRows = nil, 0
		}
	}
	var pending []storage.Row
	flushFrame := func() {
		if len(pending) == 0 {
			return
		}
		b, err := storage.BatchFromRows(schema, pending)
		if err == nil && b.Len() > 0 {
			current = append(current, b)
			currentRows += b.Len()
			total += b.Len()
		}
		pending = pending[:0]
		if currentRows >= s.segmentRows {
			flushSeg()
		}
	}
	for _, b := range batches {
		if b == nil {
			continue
		}
		for i := 0; i < b.Len(); i++ {
			pending = append(pending, b.Row(i))
			if len(pending) >= s.frameRows {
				flushFrame()
			}
		}
	}
	flushFrame()
	flushSeg()
	if len(segments) == 0 {
		// An empty table still gets one empty segment-less manifest entry.
		return nil, 0
	}
	return segments, total
}

// Drop removes a table. Durable at its WAL record's fsync; the table's
// segment files are deleted best-effort afterwards (recovery sweeps any
// survivors).
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t, ok := s.manifest.Tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	rec, err := encodeDrop(name)
	if err != nil {
		return err
	}
	if err := s.appendWAL(rec); err != nil {
		return fmt.Errorf("store: dropping %q: %w", name, err)
	}
	delete(s.manifest.Tables, name)
	for _, ref := range t.Segments {
		_ = s.fs.Remove(s.segPath(ref.Name))
	}
	s.reg.Counter("store.tables.dropped").Inc()
	s.maybeCheckpointLocked()
	return nil
}

// appendWAL appends one framed record to the log and fsyncs it. Callers
// hold s.mu. On failure the log may carry a torn tail; the next append
// repairs it first by re-reading the log and truncating to its recoverable
// length, so a half-written record can never sit in front of (and on replay
// swallow) a later acknowledged one. A complete-but-unsynced record is kept:
// the next successful fsync makes it durable, and surfacing an
// unacknowledged commit is legal — losing an acknowledged one is not.
func (s *Store) appendWAL(rec []byte) error {
	if s.walDirty {
		data, err := readAll(s.fs, s.walPath())
		switch {
		case err == nil:
			_, goodLen, torn := recoverManifest(data)
			if torn {
				if terr := s.fs.Truncate(s.walPath(), goodLen); terr != nil {
					return fmt.Errorf("store: repairing wal tail: %w", terr)
				}
			}
			s.walLen = goodLen
		case IsNotExist(err):
			s.walLen = 0
		default:
			return fmt.Errorf("store: repairing wal tail: %w", err)
		}
		s.walDirty = false
	}
	created := s.walLen == 0
	f, err := s.fs.Append(s.walPath())
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		s.walDirty = true
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		s.walDirty = true
		_ = f.Close()
		return err
	}
	if created {
		// A brand-new wal.log needs its directory entry fsynced too, or the
		// file itself (not just its bytes) can vanish with the crash.
		if err := s.fs.SyncDir(s.dir); err != nil {
			s.walDirty = true
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		// The record is already durable; a close failure does not un-commit.
		s.walLen += int64(len(rec))
		s.recordsSinceCheckpoint++
		s.reg.Counter("store.wal.records").Inc()
		return nil
	}
	s.walLen += int64(len(rec))
	s.recordsSinceCheckpoint++
	s.reg.Counter("store.wal.records").Inc()
	return nil
}

func (s *Store) maybeCheckpointLocked() {
	if s.recordsSinceCheckpoint >= s.checkpointEvery {
		// Best-effort: a failed checkpoint leaves the longer-but-valid log.
		_ = s.checkpointLocked()
	}
}

// Checkpoint folds the WAL into a single snapshot record, bounding replay
// cost. The snapshot is written to a temp file, fsynced, and atomically
// renamed over the log, so there is no moment without a valid manifest.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	rec, err := encodeSnapshot(s.manifest)
	if err != nil {
		return err
	}
	tmpPath := path.Join(s.tmpDir(), "wal.ckpt")
	f, err := s.fs.Create(tmpPath)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmpPath, s.walPath()); err != nil {
		return err
	}
	// Bookkeeping must reflect the live file before the fallible directory
	// sync: after the rename, wal.log IS the snapshot, whether or not the
	// rename is crash-durable yet.
	s.walLen = int64(len(rec))
	s.walDirty = false
	s.recordsSinceCheckpoint = 0
	if err := s.fs.SyncDir(s.dir); err != nil {
		// Crash-durability of the swap is unknown; both old and new logs
		// replay to the same manifest, so this is safe to surface as a
		// retriable error.
		return err
	}
	s.reg.Counter("store.wal.checkpoints").Inc()
	return nil
}

// ScanStats reports pruning effectiveness for one Scan.
type ScanStats struct {
	SegmentsScanned int
	SegmentsSkipped int
	FramesScanned   int
	FramesSkipped   int
	Rows            int
}

// Scan streams the named table's batches through fn in segment order,
// skipping segments and frames whose zone maps (or bloom filter, for Eq
// predicates on the indexed column) prove no row can match the filter.
// Batches may still contain non-matching rows — pruning is conservative and
// row-level filtering stays the caller's job. Every byte that reaches fn
// has passed its frame CRC and the footer checksum.
func (s *Store) Scan(name string, filter Filter, fn func(*storage.ColumnBatch) error) (ScanStats, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ScanStats{}, ErrClosed
	}
	t, ok := s.manifest.Tables[name]
	s.mu.Unlock()
	if !ok {
		return ScanStats{}, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	var stats ScanStats
	for _, ref := range t.Segments {
		if zonesPrune(ref.Zones, filter) {
			stats.SegmentsSkipped++
			continue
		}
		segStats, skipped, err := s.scanOneSegment(ref, filter, fn)
		if err != nil {
			return stats, fmt.Errorf("store: scanning %q segment %s: %w", name, ref.Name, err)
		}
		if skipped {
			stats.SegmentsSkipped++
			continue
		}
		stats.SegmentsScanned++
		stats.FramesScanned += segStats.framesScanned
		stats.FramesSkipped += segStats.framesSkipped
		stats.Rows += segStats.rows
	}
	s.reg.Counter("store.segments.scanned").Add(int64(stats.SegmentsScanned))
	s.reg.Counter("store.segments.skipped").Add(int64(stats.SegmentsSkipped))
	s.reg.Counter("store.frames.scanned").Add(int64(stats.FramesScanned))
	s.reg.Counter("store.frames.skipped").Add(int64(stats.FramesSkipped))
	s.reg.Counter("store.scan.rows").Add(int64(stats.Rows))
	return stats, nil
}

// scanOneSegment opens one segment, applies the bloom gate, and streams
// frames. skipped=true means the bloom filter excluded the whole segment.
func (s *Store) scanOneSegment(ref SegmentRef, filter Filter, fn func(*storage.ColumnBatch) error) (segScanStats, bool, error) {
	f, err := s.fs.Open(s.segPath(ref.Name))
	if err != nil {
		return segScanStats{}, false, err
	}
	defer f.Close()
	footer, crc, err := decodeSegmentFooter(f)
	if err != nil {
		return segScanStats{}, false, err
	}
	if crc != ref.FooterCRC {
		return segScanStats{}, false, corruptf("footer checksum drifted from manifest")
	}
	if segmentBloomSkips(footer.Bloom, filter) {
		return segScanStats{}, true, nil
	}
	meta := TableMeta{Name: ref.Name, Fields: footer.Fields}
	schema, err := meta.schema()
	if err != nil {
		return segScanStats{}, false, corruptf("footer schema: %v", err)
	}
	var stats segScanStats
	for _, fr := range footer.Frames {
		if zonesPrune(fr.Zones, filter) {
			stats.framesSkipped++
			continue
		}
		body := make([]byte, fr.Len)
		if _, err := f.ReadAt(body, fr.Off); err != nil {
			return stats, false, corruptf("reading frame at %d: %v", fr.Off, err)
		}
		if crc32.ChecksumIEEE(body) != fr.CRC {
			return stats, false, corruptf("frame checksum mismatch at offset %d", fr.Off)
		}
		b, err := storage.DecodeBatch(schema, body)
		if err != nil {
			return stats, false, corruptf("frame decode at %d: %v", fr.Off, err)
		}
		if b.Len() != fr.Rows {
			return stats, false, corruptf("frame rows %d != index %d", b.Len(), fr.Rows)
		}
		stats.framesScanned++
		stats.rows += b.Len()
		if err := fn(b); err != nil {
			return stats, false, err
		}
	}
	return stats, false, nil
}

// ReadTable materialises a stored table back into an in-memory
// storage.Table, bit-identical to what SaveTable was given.
func (s *Store) ReadTable(name string) (*storage.Table, error) {
	schema, err := s.Schema(name)
	if err != nil {
		return nil, err
	}
	t, err := storage.NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	_, err = s.Scan(name, nil, func(b *storage.ColumnBatch) error {
		for i := 0; i < b.Len(); i++ {
			if err := t.Append(b.Row(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Rows returns a stored table's rows, in saved order.
func (s *Store) Rows(name string) ([]storage.Row, error) {
	var rows []storage.Row
	_, err := s.Scan(name, nil, func(b *storage.ColumnBatch) error {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, b.Row(i))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
