package store

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/storage"
)

// Segment file layout (little-endian):
//
//	+--------+----------------------------------+------------------+---------+
//	| "TSG1" | frames: u32 len | u32 crc | body | footer JSON      | trailer |
//	+--------+----------------------------------+------------------+---------+
//
// Each frame body is one v2-codec batch (storage.EncodeBatchOpts), CRC'd
// independently so a scan can verify exactly what it reads. The trailer is
// u32 footerLen | u32 crc32(footer) | "TSGF"; opening a segment reads the
// trailer, verifies the footer checksum, and trusts nothing else until the
// per-frame CRCs pass at scan time. Segments are immutable: they are written
// once through temp-file + rename and never modified.

var (
	segMagic     = [4]byte{'T', 'S', 'G', '1'}
	segfootMagic = [4]byte{'T', 'S', 'G', 'F'}
)

const (
	segTrailerLen = 12 // u32 footerLen + u32 footerCRC + "TSGF"

	// maxFooterLen bounds the footer allocation against corrupt trailers.
	maxFooterLen = 64 << 20
	// maxSegFrame bounds one frame body allocation against corrupt indexes.
	maxSegFrame = 1 << 28
)

// ZoneMap holds one column's min/max bounds over a frame or a whole segment.
// Pointer fields distinguish "no bound recorded" from a genuine zero value;
// only the pair matching the column type is set. Unpruned means the column
// contributed no usable bounds (bool columns, NaN/Inf floats — which JSON
// cannot encode — or all-null frames) and must never cause a skip.
type ZoneMap struct {
	Col      string   `json:"col"`
	MinInt   *int64   `json:"min_int,omitempty"`
	MaxInt   *int64   `json:"max_int,omitempty"`
	MinFloat *float64 `json:"min_float,omitempty"`
	MaxFloat *float64 `json:"max_float,omitempty"`
	MinStr   *string  `json:"min_str,omitempty"`
	MaxStr   *string  `json:"max_str,omitempty"`
	HasNulls bool     `json:"has_nulls,omitempty"`
	AllNull  bool     `json:"all_null,omitempty"`
	Unpruned bool     `json:"unpruned,omitempty"`
}

// frameInfo locates one frame inside a segment file.
type frameInfo struct {
	Off   int64     `json:"off"`
	Len   int       `json:"len"`
	Rows  int       `json:"rows"`
	CRC   uint32    `json:"crc"`
	Zones []ZoneMap `json:"zones,omitempty"`
}

// bloomMeta serialises the optional per-segment bloom filter.
type bloomMeta struct {
	Col  string `json:"col"`
	K    int    `json:"k"`
	Bits string `json:"bits"` // base64 raw bit array
	N    int    `json:"n"`    // keys inserted, for diagnostics
}

// segmentFooter is the JSON footer at the end of every segment file.
type segmentFooter struct {
	Version int         `json:"version"`
	Fields  []fieldMeta `json:"fields"`
	Frames  []frameInfo `json:"frames"`
	Rows    int         `json:"rows"`
	Zones   []ZoneMap   `json:"zones,omitempty"`
	Bloom   *bloomMeta  `json:"bloom,omitempty"`
}

// --- predicates ---

// PredOp is a comparison operator in a scan filter.
type PredOp int

// Supported scan predicate operators.
const (
	OpEq PredOp = iota
	OpGE
	OpLE
	OpGT
	OpLT
)

func (op PredOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpGE:
		return ">="
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpLT:
		return "<"
	}
	return "?"
}

// Pred is one column comparison; Value must be int64, float64, or string to
// participate in zone-map pruning (other types scan everything).
type Pred struct {
	Col   string
	Op    PredOp
	Value any
}

// Filter is a conjunction of predicates: a frame or segment may be skipped
// when ANY predicate proves no row can match.
type Filter []Pred

// ParsePred parses "col=v", "col>=v", "col<=v", "col>v", "col<v". The value
// is typed against the schema when one is supplied.
func ParsePred(expr string, schema *storage.Schema) (Pred, error) {
	ops := []struct {
		tok string
		op  PredOp
	}{{">=", OpGE}, {"<=", OpLE}, {"=", OpEq}, {">", OpGT}, {"<", OpLT}}
	for _, o := range ops {
		i := strings.Index(expr, o.tok)
		if i <= 0 {
			continue
		}
		col := strings.TrimSpace(expr[:i])
		raw := strings.TrimSpace(expr[i+len(o.tok):])
		p := Pred{Col: col, Op: o.op}
		if schema != nil && schema.Has(col) {
			f, err := schema.FieldByName(col)
			if err != nil {
				return Pred{}, err
			}
			switch f.Type {
			case storage.TypeInt, storage.TypeTime:
				var v int64
				if _, err := fmt.Sscanf(raw, "%d", &v); err != nil {
					return Pred{}, fmt.Errorf("store: predicate %q: %v", expr, err)
				}
				p.Value = v
			case storage.TypeFloat:
				var v float64
				if _, err := fmt.Sscanf(raw, "%g", &v); err != nil {
					return Pred{}, fmt.Errorf("store: predicate %q: %v", expr, err)
				}
				p.Value = v
			default:
				p.Value = raw
			}
		} else {
			p.Value = raw
		}
		return p, nil
	}
	return Pred{}, fmt.Errorf("store: cannot parse predicate %q (want col=v, col>=v, col<=v, col>v, col<v)", expr)
}

// zonesPrune reports whether the zone maps prove no row in the zone can
// satisfy the filter. Conservative: any doubt returns false (scan it).
func zonesPrune(zones []ZoneMap, filter Filter) bool {
	if len(zones) == 0 || len(filter) == 0 {
		return false
	}
	byCol := make(map[string]*ZoneMap, len(zones))
	for i := range zones {
		byCol[zones[i].Col] = &zones[i]
	}
	for _, p := range filter {
		z, ok := byCol[p.Col]
		if !ok || z.Unpruned {
			continue
		}
		if z.AllNull {
			// No comparison matches a null, so any predicate on an all-null
			// column excludes the whole zone.
			return true
		}
		if zoneExcludes(z, p) {
			return true
		}
	}
	return false
}

func zoneExcludes(z *ZoneMap, p Pred) bool {
	switch v := p.Value.(type) {
	case int64:
		if z.MinInt == nil || z.MaxInt == nil {
			return false
		}
		return rangeExcludes(float64(*z.MinInt), float64(*z.MaxInt), float64(v), p.Op)
	case int:
		if z.MinInt == nil || z.MaxInt == nil {
			return false
		}
		return rangeExcludes(float64(*z.MinInt), float64(*z.MaxInt), float64(v), p.Op)
	case float64:
		if z.MinFloat == nil || z.MaxFloat == nil {
			return false
		}
		return rangeExcludes(*z.MinFloat, *z.MaxFloat, v, p.Op)
	case string:
		if z.MinStr == nil || z.MaxStr == nil {
			return false
		}
		switch p.Op {
		case OpEq:
			return v < *z.MinStr || v > *z.MaxStr
		case OpGE:
			return *z.MaxStr < v
		case OpGT:
			return *z.MaxStr <= v
		case OpLE:
			return *z.MinStr > v
		case OpLT:
			return *z.MinStr >= v
		}
	}
	return false
}

func rangeExcludes(min, max, v float64, op PredOp) bool {
	switch op {
	case OpEq:
		return v < min || v > max
	case OpGE:
		return max < v
	case OpGT:
		return max <= v
	case OpLE:
		return min > v
	case OpLT:
		return min >= v
	}
	return false
}

// buildZones computes one ZoneMap per schema column over a batch.
func buildZones(b *storage.ColumnBatch) []ZoneMap {
	schema := b.Schema()
	zones := make([]ZoneMap, schema.Len())
	for c := 0; c < schema.Len(); c++ {
		zones[c] = buildZone(b, c)
	}
	return zones
}

func buildZone(b *storage.ColumnBatch, c int) ZoneMap {
	f := b.Schema().Field(c)
	col := b.Column(c)
	z := ZoneMap{Col: f.Name}
	n := b.Len()
	seen := 0
	switch f.Type {
	case storage.TypeInt, storage.TypeTime:
		var lo, hi int64
		for i := 0; i < n; i++ {
			if col.HasNulls() && col.Null(i) {
				z.HasNulls = true
				continue
			}
			v := col.Int(i)
			if seen == 0 || v < lo {
				lo = v
			}
			if seen == 0 || v > hi {
				hi = v
			}
			seen++
		}
		if seen > 0 {
			z.MinInt, z.MaxInt = &lo, &hi
		}
	case storage.TypeFloat:
		var lo, hi float64
		for i := 0; i < n; i++ {
			if col.HasNulls() && col.Null(i) {
				z.HasNulls = true
				continue
			}
			v := col.Float(i)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// JSON cannot carry these bounds; give up pruning here.
				z.Unpruned = true
				return z
			}
			if seen == 0 || v < lo {
				lo = v
			}
			if seen == 0 || v > hi {
				hi = v
			}
			seen++
		}
		if seen > 0 {
			z.MinFloat, z.MaxFloat = &lo, &hi
		}
	case storage.TypeString:
		var lo, hi string
		for i := 0; i < n; i++ {
			if col.HasNulls() && col.Null(i) {
				z.HasNulls = true
				continue
			}
			v := col.Str(i)
			if seen == 0 || v < lo {
				lo = v
			}
			if seen == 0 || v > hi {
				hi = v
			}
			seen++
		}
		if seen > 0 {
			z.MinStr, z.MaxStr = &lo, &hi
		}
	default:
		z.Unpruned = true
		return z
	}
	if seen == 0 {
		z.AllNull = n > 0
		z.HasNulls = n > 0
	}
	return z
}

// mergeZones widens acc in place with more frames' zones (same column order).
func mergeZones(acc, more []ZoneMap) []ZoneMap {
	if acc == nil {
		out := make([]ZoneMap, len(more))
		copy(out, more)
		return out
	}
	for i := range acc {
		a, m := &acc[i], &more[i]
		if m.Unpruned {
			a.Unpruned = true
		}
		a.HasNulls = a.HasNulls || m.HasNulls
		a.AllNull = a.AllNull && m.AllNull
		a.MinInt = minI64(a.MinInt, m.MinInt)
		a.MaxInt = maxI64(a.MaxInt, m.MaxInt)
		a.MinFloat = minF64(a.MinFloat, m.MinFloat)
		a.MaxFloat = maxF64(a.MaxFloat, m.MaxFloat)
		a.MinStr = minStr(a.MinStr, m.MinStr)
		a.MaxStr = maxStr(a.MaxStr, m.MaxStr)
	}
	return acc
}

func minI64(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil || *a <= *b {
		return a
	}
	return b
}

func maxI64(a, b *int64) *int64 {
	if a == nil {
		return b
	}
	if b == nil || *a >= *b {
		return a
	}
	return b
}

func minF64(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b == nil || *a <= *b {
		return a
	}
	return b
}

func maxF64(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b == nil || *a >= *b {
		return a
	}
	return b
}

func minStr(a, b *string) *string {
	if a == nil {
		return b
	}
	if b == nil || *a <= *b {
		return a
	}
	return b
}

func maxStr(a, b *string) *string {
	if a == nil {
		return b
	}
	if b == nil || *a >= *b {
		return a
	}
	return b
}

// --- bloom filter ---

// bloomBitsPerKey and bloomHashes give ~1% false positives at 10 bits/key.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

type bloomFilter struct {
	bits []byte
	k    int
	n    int
}

func newBloom(expectedKeys int) *bloomFilter {
	nbits := expectedKeys * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: bloomHashes}
}

// hash2 derives the double-hashing pair (FNV-64a over key, then over
// key+salt) used to place k probes.
func bloomHash2(key []byte) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write(key)
	a := h1.Sum64()
	h1.Write([]byte{0x9e})
	b := h1.Sum64() | 1 // odd step so probes cycle through all bits
	return a, b
}

func (bf *bloomFilter) add(key []byte) {
	a, b := bloomHash2(key)
	nbits := uint64(len(bf.bits)) * 8
	for i := 0; i < bf.k; i++ {
		bit := (a + uint64(i)*b) % nbits
		bf.bits[bit/8] |= 1 << (bit % 8)
	}
	bf.n++
}

func (bf *bloomFilter) mayContain(key []byte) bool {
	if len(bf.bits) == 0 {
		return true
	}
	a, b := bloomHash2(key)
	nbits := uint64(len(bf.bits)) * 8
	for i := 0; i < bf.k; i++ {
		bit := (a + uint64(i)*b) % nbits
		if bf.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// bloomKeyBytes renders one cell of the bloom column as hash input. ok is
// false for nulls and unsupported types (those rows are simply not indexed,
// which is safe: absence of indexing can only cause false positives, and a
// null never equals a predicate value anyway).
func bloomKeyBytes(col *storage.Column, typ storage.FieldType, i int, buf []byte) ([]byte, bool) {
	if col.HasNulls() && col.Null(i) {
		return buf, false
	}
	switch typ {
	case storage.TypeInt, storage.TypeTime:
		return binary.LittleEndian.AppendUint64(buf[:0], uint64(col.Int(i))), true
	case storage.TypeFloat:
		return binary.LittleEndian.AppendUint64(buf[:0], math.Float64bits(col.Float(i))), true
	case storage.TypeString:
		return append(buf[:0], col.Str(i)...), true
	default:
		return buf, false
	}
}

// bloomValueBytes renders a predicate value the same way bloomKeyBytes
// renders cells, so Eq probes line up with inserted keys.
func bloomValueBytes(v any) ([]byte, bool) {
	switch x := v.(type) {
	case int64:
		return binary.LittleEndian.AppendUint64(nil, uint64(x)), true
	case int:
		return binary.LittleEndian.AppendUint64(nil, uint64(int64(x))), true
	case float64:
		return binary.LittleEndian.AppendUint64(nil, math.Float64bits(x)), true
	case string:
		return []byte(x), true
	default:
		return nil, false
	}
}

// --- segment writer ---

// writeSegment writes batches as one immutable segment at tmpPath, fsyncs
// it, and returns the footer-derived metadata. The caller renames it into
// place and records it in the manifest; until then it is invisible.
func writeSegment(fs FS, tmpPath string, schema *storage.Schema, batches []*storage.ColumnBatch, bloomCol string, codec storage.CodecOptions) (ref SegmentRef, footer segmentFooter, err error) {
	f, err := fs.Create(tmpPath)
	if err != nil {
		return ref, footer, err
	}
	// On any error path the temp file is abandoned for recovery GC to sweep.
	defer func() {
		if f != nil {
			_ = f.Close()
		}
	}()

	footer.Version = 1
	footer.Fields = fieldsFromSchema(schema)

	var bloom *bloomFilter
	bloomIdx := -1
	if bloomCol != "" && schema.Has(bloomCol) {
		bloomIdx = schema.IndexOf(bloomCol)
		total := 0
		for _, b := range batches {
			total += b.Len()
		}
		bloom = newBloom(total)
	}

	if _, err = f.Write(segMagic[:]); err != nil {
		return ref, footer, err
	}
	off := int64(len(segMagic))

	var segZones []ZoneMap
	var keyBuf []byte
	var enc []byte
	for _, b := range batches {
		if b.Len() == 0 {
			continue
		}
		enc = storage.EncodeBatchOpts(enc[:0], b, codec)
		crc := crc32.ChecksumIEEE(enc)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(enc)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc)
		if _, err = f.Write(hdr[:]); err != nil {
			return ref, footer, err
		}
		if _, err = f.Write(enc); err != nil {
			return ref, footer, err
		}
		zones := buildZones(b)
		footer.Frames = append(footer.Frames, frameInfo{
			Off:   off + 8,
			Len:   len(enc),
			Rows:  b.Len(),
			CRC:   crc,
			Zones: zones,
		})
		segZones = mergeZones(segZones, zones)
		footer.Rows += b.Len()
		off += 8 + int64(len(enc))

		if bloom != nil {
			col := b.Column(bloomIdx)
			typ := schema.Field(bloomIdx).Type
			for i := 0; i < b.Len(); i++ {
				if kb, ok := bloomKeyBytes(col, typ, i, keyBuf); ok {
					keyBuf = kb
					bloom.add(kb)
				}
			}
		}
	}
	footer.Zones = segZones
	if bloom != nil {
		footer.Bloom = &bloomMeta{
			Col:  bloomCol,
			K:    bloom.k,
			Bits: base64.StdEncoding.EncodeToString(bloom.bits),
			N:    bloom.n,
		}
	}

	footJSON, err := json.Marshal(footer)
	if err != nil {
		return ref, footer, err
	}
	footCRC := crc32.ChecksumIEEE(footJSON)
	if _, err = f.Write(footJSON); err != nil {
		return ref, footer, err
	}
	var trailer [segTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[0:4], uint32(len(footJSON)))
	binary.LittleEndian.PutUint32(trailer[4:8], footCRC)
	copy(trailer[8:], segfootMagic[:])
	if _, err = f.Write(trailer[:]); err != nil {
		return ref, footer, err
	}
	if err = f.Sync(); err != nil {
		return ref, footer, err
	}
	err = f.Close()
	f = nil
	if err != nil {
		return ref, footer, err
	}

	ref = SegmentRef{
		Rows:      footer.Rows,
		Bytes:     off + int64(len(footJSON)) + segTrailerLen,
		FooterCRC: footCRC,
		Zones:     segZones,
		BloomCol:  bloomCol,
	}
	return ref, footer, nil
}

// --- segment reader ---

// errCorrupt marks checksum/format failures that recovery turns into
// quarantine rather than a hard error.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "store: corrupt segment: " + e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// readSegmentFooter opens path, verifies the trailer and footer CRC, and
// returns the parsed footer plus the verified CRC. It is the integrity gate
// recovery runs over every referenced segment.
func readSegmentFooter(fs FS, path string) (segmentFooter, uint32, error) {
	f, err := fs.Open(path)
	if err != nil {
		return segmentFooter{}, 0, err
	}
	defer f.Close()
	return decodeSegmentFooter(f)
}

// decodeSegmentFooter parses and verifies the footer of an open segment.
// The returned CRC is the trailer's checksum, already validated against the
// footer bytes, so callers can compare it to the manifest's pinned value.
func decodeSegmentFooter(f ReadFile) (segmentFooter, uint32, error) {
	var footer segmentFooter
	size, err := f.Size()
	if err != nil {
		return footer, 0, err
	}
	if size < int64(len(segMagic))+segTrailerLen {
		return footer, 0, corruptf("file too short (%d bytes)", size)
	}
	var head [4]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return footer, 0, corruptf("reading header: %v", err)
	}
	if head != segMagic {
		return footer, 0, corruptf("bad magic %q", head[:])
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-segTrailerLen); err != nil {
		return footer, 0, corruptf("reading trailer: %v", err)
	}
	if [4]byte{trailer[8], trailer[9], trailer[10], trailer[11]} != segfootMagic {
		return footer, 0, corruptf("bad trailer magic")
	}
	footLen := int64(binary.LittleEndian.Uint32(trailer[0:4]))
	wantCRC := binary.LittleEndian.Uint32(trailer[4:8])
	if footLen <= 0 || footLen > maxFooterLen || footLen > size-int64(len(segMagic))-segTrailerLen {
		return footer, 0, corruptf("footer length %d out of range", footLen)
	}
	footJSON := make([]byte, footLen)
	if _, err := f.ReadAt(footJSON, size-segTrailerLen-footLen); err != nil {
		return footer, 0, corruptf("reading footer: %v", err)
	}
	if crc32.ChecksumIEEE(footJSON) != wantCRC {
		return footer, 0, corruptf("footer checksum mismatch")
	}
	if err := json.Unmarshal(footJSON, &footer); err != nil {
		return footer, 0, corruptf("footer JSON: %v", err)
	}
	if footer.Version != 1 {
		return footer, 0, corruptf("unsupported segment version %d", footer.Version)
	}
	// Bounds-check the frame index against the file so scans cannot be sent
	// past EOF or into the footer by a hostile index.
	frameEnd := size - segTrailerLen - footLen
	for _, fr := range footer.Frames {
		if fr.Off < int64(len(segMagic))+8 || fr.Len < 0 || fr.Len > maxSegFrame || fr.Off+int64(fr.Len) > frameEnd {
			return footer, 0, corruptf("frame bounds [%d,+%d) out of range", fr.Off, fr.Len)
		}
		if fr.Rows < 0 {
			return footer, 0, corruptf("negative frame rows")
		}
	}
	return footer, wantCRC, nil
}

// segScanStats counts pruning decisions during one segment scan.
type segScanStats struct {
	framesScanned int
	framesSkipped int
	rows          int
}

// segmentBloomSkips reports whether the segment's bloom filter proves an Eq
// predicate on its indexed column cannot match.
func segmentBloomSkips(footer *bloomMeta, filter Filter) bool {
	if footer == nil {
		return false
	}
	bits, err := base64.StdEncoding.DecodeString(footer.Bits)
	if err != nil || len(bits) == 0 || footer.K <= 0 || footer.K > 64 {
		return false
	}
	bf := &bloomFilter{bits: bits, k: footer.K}
	for _, p := range filter {
		if p.Op != OpEq || p.Col != footer.Col {
			continue
		}
		vb, ok := bloomValueBytes(p.Value)
		if ok && !bf.mayContain(vb) {
			return true
		}
	}
	return false
}
