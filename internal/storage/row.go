package storage

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Value is a dynamically typed cell value. Valid dynamic types are string,
// int64, float64, bool, time-as-int64-millis and nil (null).
type Value any

// Row is an ordered tuple of values matching a schema positionally.
type Row []Value

// Clone returns a deep-enough copy of the row (values are scalars).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ValidateRow checks that the row matches the schema: arity, per-field type
// and nullability.
func ValidateRow(s *Schema, r Row) error {
	if len(r) != s.Len() {
		return fmt.Errorf("storage: row has %d values, schema has %d fields", len(r), s.Len())
	}
	for i, v := range r {
		f := s.Field(i)
		if v == nil {
			if !f.Nullable {
				return fmt.Errorf("storage: field %q is not nullable", f.Name)
			}
			continue
		}
		if !valueMatches(f.Type, v) {
			return fmt.Errorf("%w: field %q expects %s, got %T", ErrTypeMismatch, f.Name, f.Type, v)
		}
	}
	return nil
}

// ValidateCell checks a single value against one field's type and
// nullability, with the same errors ValidateRow reports.
func ValidateCell(f Field, v Value) error {
	if v == nil {
		if !f.Nullable {
			return fmt.Errorf("storage: field %q is not nullable", f.Name)
		}
		return nil
	}
	if !valueMatches(f.Type, v) {
		return fmt.Errorf("%w: field %q expects %s, got %T", ErrTypeMismatch, f.Name, f.Type, v)
	}
	return nil
}

func valueMatches(t FieldType, v Value) bool {
	switch t {
	case TypeString:
		_, ok := v.(string)
		return ok
	case TypeInt, TypeTime:
		_, ok := v.(int64)
		return ok
	case TypeFloat:
		_, ok := v.(float64)
		return ok
	case TypeBool:
		_, ok := v.(bool)
		return ok
	default:
		return false
	}
}

// AsString converts v to a string, coercing scalar types. Null becomes "".
func AsString(v Value) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// AsFloat converts v to a float64. Strings are parsed; booleans map to 0/1;
// null maps to 0 with ok=false.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case nil:
		return 0, false
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		f, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsInt converts v to an int64. Floats are truncated; strings parsed.
func AsInt(v Value) (int64, bool) {
	switch x := v.(type) {
	case nil:
		return 0, false
	case int64:
		return x, true
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, false
		}
		return int64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		i, err := strconv.ParseInt(x, 10, 64)
		if err != nil {
			return 0, false
		}
		return i, true
	default:
		return 0, false
	}
}

// AsBool converts v to a bool. Non-zero numbers are true; strings parsed.
func AsBool(v Value) (bool, bool) {
	switch x := v.(type) {
	case nil:
		return false, false
	case bool:
		return x, true
	case int64:
		return x != 0, true
	case float64:
		return x != 0, true
	case string:
		b, err := strconv.ParseBool(x)
		if err != nil {
			return false, false
		}
		return b, true
	default:
		return false, false
	}
}

// AsTime converts a TypeTime value (Unix milliseconds) to a time.Time in UTC.
func AsTime(v Value) (time.Time, bool) {
	ms, ok := AsInt(v)
	if !ok {
		return time.Time{}, false
	}
	return time.UnixMilli(ms).UTC(), true
}

// TimeValue converts a time.Time to the engine's TypeTime representation.
func TimeValue(t time.Time) Value { return t.UnixMilli() }

// Coerce converts v to the given field type, returning an error when the
// conversion is not possible. Null passes through unchanged.
func Coerce(t FieldType, v Value) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeString:
		return AsString(v), nil
	case TypeInt, TypeTime:
		i, ok := AsInt(v)
		if !ok {
			return nil, fmt.Errorf("%w: cannot coerce %T to %s", ErrTypeMismatch, v, t)
		}
		return i, nil
	case TypeFloat:
		f, ok := AsFloat(v)
		if !ok {
			return nil, fmt.Errorf("%w: cannot coerce %T to float", ErrTypeMismatch, v)
		}
		return f, nil
	case TypeBool:
		b, ok := AsBool(v)
		if !ok {
			return nil, fmt.Errorf("%w: cannot coerce %T to bool", ErrTypeMismatch, v)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("storage: cannot coerce to unknown type")
	}
}

// CompareValues orders two values of the same logical type. Nulls sort first.
// The result is negative when a < b, zero when equal, positive when a > b.
func CompareValues(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case string:
		y := AsString(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case bool:
		y, _ := AsBool(b)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		default:
			return 0
		}
	default:
		xf, _ := AsFloat(a)
		yf, _ := AsFloat(b)
		switch {
		case xf < yf:
			return -1
		case xf > yf:
			return 1
		default:
			return 0
		}
	}
}

// ValuesEqual reports whether two values are equal under CompareValues
// semantics.
func ValuesEqual(a, b Value) bool { return CompareValues(a, b) == 0 }
