package storage

import (
	"errors"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "id", Type: TypeInt},
		Field{Name: "name", Type: TypeString, Sensitivity: Personal},
		Field{Name: "amount", Type: TypeFloat},
		Field{Name: "ok", Type: TypeBool, Nullable: true},
		Field{Name: "ts", Type: TypeTime},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); !errors.Is(err, ErrEmptySchema) {
		t.Errorf("empty schema error = %v, want ErrEmptySchema", err)
	}
	if _, err := NewSchema(Field{Name: "", Type: TypeInt}); err == nil {
		t.Error("empty field name must be rejected")
	}
	if _, err := NewSchema(Field{Name: "x", Type: TypeUnknown}); err == nil {
		t.Error("unknown field type must be rejected")
	}
	if _, err := NewSchema(Field{Name: "x", Type: TypeInt}, Field{Name: "x", Type: TypeInt}); !errors.Is(err, ErrDuplicateField) {
		t.Errorf("duplicate field error = %v, want ErrDuplicateField", err)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if s.IndexOf("amount") != 2 {
		t.Errorf("IndexOf(amount) = %d, want 2", s.IndexOf("amount"))
	}
	if s.IndexOf("missing") != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", s.IndexOf("missing"))
	}
	if !s.Has("id") || s.Has("nope") {
		t.Error("Has misbehaves")
	}
	f, err := s.FieldByName("name")
	if err != nil || f.Type != TypeString {
		t.Errorf("FieldByName(name) = %+v, %v", f, err)
	}
	if _, err := s.FieldByName("zzz"); !errors.Is(err, ErrUnknownField) {
		t.Errorf("FieldByName(zzz) error = %v, want ErrUnknownField", err)
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("amount", "id")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	want := []string{"amount", "id"}
	got := p.Names()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("projected names = %v, want %v", got, want)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("projecting unknown field must fail")
	}
	if _, err := s.Project(); !errors.Is(err, ErrEmptySchema) {
		t.Error("projecting zero fields must fail with ErrEmptySchema")
	}
}

func TestSchemaAppendRename(t *testing.T) {
	s := testSchema(t)
	s2, err := s.Append(Field{Name: "extra", Type: TypeFloat})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if s2.Len() != 6 || !s2.Has("extra") {
		t.Errorf("appended schema = %v", s2.Names())
	}
	if _, err := s.Append(Field{Name: "id", Type: TypeInt}); err == nil {
		t.Error("appending duplicate name must fail")
	}
	s3, err := s.Rename("name", "customer")
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if !s3.Has("customer") || s3.Has("name") {
		t.Errorf("renamed schema = %v", s3.Names())
	}
	if _, err := s.Rename("ghost", "x"); err == nil {
		t.Error("renaming unknown field must fail")
	}
	// Original schema must be untouched.
	if !s.Has("name") || s.Len() != 5 {
		t.Error("Rename/Append must not mutate the receiver")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas must be Equal")
	}
	c, _ := b.Rename("id", "key")
	if a.Equal(c) {
		t.Error("different schemas must not be Equal")
	}
	var nilSchema *Schema
	if a.Equal(nilSchema) {
		t.Error("schema must not equal nil")
	}
}

func TestSchemaSensitivity(t *testing.T) {
	s := testSchema(t)
	if s.MaxSensitivity() != Personal {
		t.Errorf("MaxSensitivity = %v, want Personal", s.MaxSensitivity())
	}
	fields := s.SensitiveFields(Personal)
	if len(fields) != 1 || fields[0] != "name" {
		t.Errorf("SensitiveFields = %v, want [name]", fields)
	}
	if got := s.SensitiveFields(Public); len(got) != 5 {
		t.Errorf("SensitiveFields(Public) = %v, want all fields", got)
	}
}

func TestParseFieldType(t *testing.T) {
	cases := map[string]FieldType{
		"string": TypeString, "TEXT": TypeString, "int": TypeInt, "Long": TypeInt,
		"float": TypeFloat, "double": TypeFloat, "bool": TypeBool,
		"timestamp": TypeTime, " time ": TypeTime,
	}
	for in, want := range cases {
		got, err := ParseFieldType(in)
		if err != nil || got != want {
			t.Errorf("ParseFieldType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFieldType("blob"); err == nil {
		t.Error("ParseFieldType(blob) must fail")
	}
}

func TestFieldTypeString(t *testing.T) {
	if TypeFloat.String() != "float" || TypeUnknown.String() != "unknown" {
		t.Error("FieldType.String misbehaves")
	}
	if Sensitive.String() != "sensitive" || Public.String() != "public" {
		t.Error("Sensitivity.String misbehaves")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Field{Name: "a", Type: TypeInt}, Field{Name: "b", Type: TypeString})
	if got := s.String(); got != "{a:int, b:string}" {
		t.Errorf("String = %q", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema must panic on invalid input")
		}
	}()
	MustSchema()
}
