package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func spillDirSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "k", Type: TypeInt},
		Field{Name: "v", Type: TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func spillDirBatch(t *testing.T, schema *Schema, n, base int) *ColumnBatch {
	t.Helper()
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{int64(base + i), "payload-payload-payload"}
	}
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPartitionStoreSpillDir(t *testing.T) {
	dir := t.TempDir()
	schema := spillDirSchema(t)
	// A 1-byte budget forces every append to spill immediately.
	ps, err := NewPartitionStore(schema, 2, WithMemoryBudget(1), WithSpillDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Append(0, spillDirBatch(t, schema, 100, 0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if ps.SpilledBatches() == 0 {
		t.Fatal("budget=1 append did not spill")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if m, _ := filepath.Match("toreador-spill-*.bin", e.Name()); m {
			found = true
		}
	}
	if !found {
		t.Fatalf("spill file not placed in WithSpillDir directory; entries=%v", entries)
	}
	// Spilled data must read back through the configured directory.
	got, err := ps.FlattenPartition(0)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	if got.Len() != 100 {
		t.Fatalf("read back %d rows, want 100", got.Len())
	}
	if err := ps.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close removes the spill file and is idempotent.
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("spill file not removed on close: %v", entries)
	}
	if err := ps.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// A post-close append that needs to spill must fail, not resurrect the
	// temp file.
	if err := ps.Append(0, spillDirBatch(t, schema, 10, 0)); err == nil {
		t.Fatal("append after close silently spilled")
	}
}

func TestRunStoreSpillDir(t *testing.T) {
	dir := t.TempDir()
	schema := spillDirSchema(t)
	rs, err := NewRunStore(schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs.SetSpillDir(dir)
	if err := rs.AppendRun(spillDirBatch(t, schema, 100, 0)); err != nil {
		t.Fatalf("append run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if m, _ := filepath.Match("toreador-runs-*.bin", e.Name()); m {
			found = true
		}
	}
	if !found {
		t.Fatalf("run spill file not placed in SetSpillDir directory; entries=%v", entries)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("run spill file not removed on close: %v", entries)
	}
}
