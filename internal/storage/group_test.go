package storage

import (
	"testing"
)

func groupTestBatch(t *testing.T) (*Schema, *ColumnBatch) {
	t.Helper()
	schema := MustSchema(
		Field{Name: "k", Type: TypeString, Nullable: true},
		Field{Name: "v", Type: TypeFloat},
	)
	rows := []Row{
		{"a", 1.0},
		{"b", 2.0},
		{"a", 3.0},
		{nil, 4.0},
		{"b", 5.0},
		{nil, 6.0},
		{"c", 7.0},
	}
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return schema, b
}

func TestGroupTableDenseFirstSeenIDs(t *testing.T) {
	schema, b := groupTestBatch(t)
	enc, err := NewKeyEncoder(schema, "k")
	if err != nil {
		t.Fatal(err)
	}
	keySchema := MustSchema(Field{Name: "k", Type: TypeString, Nullable: true})
	table := NewGroupTable(keySchema, []int{0}, enc)

	ids := table.MapBatch(b, nil)
	want := []int32{0, 1, 0, 2, 1, 2, 3}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if table.Groups() != 4 {
		t.Fatalf("Groups() = %d, want 4", table.Groups())
	}

	// Key rows carry the first-seen key values in id order.
	kr := table.KeyRows()
	if kr.Len() != 4 {
		t.Fatalf("KeyRows len = %d, want 4", kr.Len())
	}
	wantKeys := []Value{"a", "b", nil, "c"}
	for g, w := range wantKeys {
		if got := kr.Value(g, 0); got != w {
			t.Errorf("group %d key = %v, want %v", g, got, w)
		}
	}

	// Hashes match the encoder's row hashes for the same keys.
	rowEnc := enc.Clone()
	seen := map[string]int{}
	for i := 0; i < b.Len(); i++ {
		k := string(rowEnc.BatchKey(b, i))
		if _, ok := seen[k]; ok {
			continue
		}
		g := int(ids[i])
		seen[k] = g
		if table.Key(g) != k {
			t.Errorf("group %d Key mismatch", g)
		}
		if table.Hash(g) != HashString64(k) {
			t.Errorf("group %d Hash = %d, want %d", g, table.Hash(g), HashString64(k))
		}
	}
}

func TestGroupTableMapBatchReusesScratch(t *testing.T) {
	schema, b := groupTestBatch(t)
	enc, err := NewKeyEncoder(schema, "k")
	if err != nil {
		t.Fatal(err)
	}
	keySchema := MustSchema(Field{Name: "k", Type: TypeString, Nullable: true})
	table := NewGroupTable(keySchema, []int{0}, enc)
	scratch := make([]int32, 0, 64)
	ids := table.MapBatch(b, scratch)
	ids2 := table.MapBatch(b, ids)
	// Second pass sees only existing groups and reuses the scratch backing.
	if table.Groups() != 4 {
		t.Fatalf("Groups() after re-map = %d, want 4", table.Groups())
	}
	if &ids2[0] != &ids[0] {
		t.Error("MapBatch did not reuse the scratch slice")
	}
}

func TestGroupTableMemSizeAndReset(t *testing.T) {
	schema, b := groupTestBatch(t)
	enc, err := NewKeyEncoder(schema, "k")
	if err != nil {
		t.Fatal(err)
	}
	keySchema := MustSchema(Field{Name: "k", Type: TypeString, Nullable: true})
	table := NewGroupTable(keySchema, []int{0}, enc)
	if table.MemSize() != 0 {
		t.Errorf("empty table MemSize = %d, want 0", table.MemSize())
	}
	table.MapBatch(b, nil)
	if table.MemSize() <= 0 {
		t.Errorf("populated table MemSize = %d, want > 0", table.MemSize())
	}
	table.Reset()
	if table.Groups() != 0 || table.MemSize() != 0 {
		t.Errorf("after Reset: groups=%d mem=%d, want 0/0", table.Groups(), table.MemSize())
	}
	// The table is reusable after Reset, with fresh ids.
	ids := table.MapBatch(b, nil)
	if ids[0] != 0 || table.Groups() != 4 {
		t.Errorf("re-map after Reset: first id=%d groups=%d, want 0/4", ids[0], table.Groups())
	}
}

func TestBatchOfColumns(t *testing.T) {
	schema := MustSchema(
		Field{Name: "g", Type: TypeInt},
		Field{Name: "avg", Type: TypeFloat, Nullable: true},
	)
	gc := NewColumnBuilder(TypeInt, 2)
	gc.AppendInt(7)
	gc.AppendInt(8)
	ac := NewColumnBuilder(TypeFloat, 2)
	ac.AppendFloat(1.5)
	ac.AppendNull(1)
	b, err := BatchOfColumns(schema, 2, []Column{gc, ac})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if v := b.Value(0, 1); v != 1.5 {
		t.Errorf("cell (0,1) = %v, want 1.5", v)
	}
	if v := b.Value(1, 1); v != nil {
		t.Errorf("cell (1,1) = %v, want nil", v)
	}
	if v := b.Value(1, 0); v != int64(8) {
		t.Errorf("cell (1,0) = %v, want 8", v)
	}

	// Type mismatches against the schema are rejected.
	if _, err := BatchOfColumns(schema, 2, []Column{ac, gc}); err == nil {
		t.Error("BatchOfColumns accepted mistyped columns")
	}
	if _, err := BatchOfColumns(schema, 2, []Column{gc}); err == nil {
		t.Error("BatchOfColumns accepted wrong column count")
	}
}
