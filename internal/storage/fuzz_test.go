package storage

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatch drives DecodeBatch with arbitrary bytes: whatever the
// input, the decoder must either return an error (ErrBadBatchEncoding for
// anything structurally wrong) or produce a batch that re-encodes and
// re-decodes consistently — and it must never panic, because spill files are
// the one input the engine reads back from disk. Seeds cover both codec
// versions, the block layer, and hand-truncated frames; `make fuzz` runs a
// short time-boxed session and CI runs an even shorter smoke.
func FuzzDecodeBatch(f *testing.F) {
	schema := MustSchema(
		Field{Name: "seq", Type: TypeInt},
		Field{Name: "region", Type: TypeString},
		Field{Name: "category", Type: TypeString, Nullable: true},
		Field{Name: "score", Type: TypeFloat, Nullable: true},
		Field{Name: "flag", Type: TypeBool},
	)
	rows := stringHeavyRowsF(200)
	b, err := BatchFromRows(schema, rows)
	if err != nil {
		f.Fatal(err)
	}
	v1 := EncodeBatch(nil, b)
	v2 := EncodeBatchOpts(nil, b, CodecOptions{Compress: true})
	v2b := EncodeBatchOpts(nil, b, CodecOptions{Compress: true, Block: true})
	f.Add(v1)
	f.Add(v2)
	f.Add(v2b)
	f.Add(v1[:len(v1)/2])
	f.Add(v2[:len(v2)/3])
	f.Add(v2b[:7])
	f.Add([]byte{})
	f.Add([]byte{0xCB})
	f.Add([]byte{0xCB, 0x02, 0x01, 0x05})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeBatch(schema, data)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent: re-encoding it
		// (both codecs) and decoding again yields the same cells.
		re := EncodeBatchOpts(nil, dec, CodecOptions{Compress: true})
		dec2, err := DecodeBatch(schema, re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if dec2.Len() != dec.Len() {
			t.Fatalf("re-decode row count %d, want %d", dec2.Len(), dec.Len())
		}
		re2 := EncodeBatchOpts(nil, dec2, CodecOptions{Compress: true})
		if !bytes.Equal(re, re2) {
			t.Fatal("canonical v2 encoding is not a fixed point")
		}
	})
}

// stringHeavyRowsF mirrors frame_test.go's generator without *testing.T (the
// fuzz seed corpus is built in f.Add context).
func stringHeavyRowsF(n int) []Row {
	regions := []string{"emea-central", "emea-west", "amer-north", "amer-south", "apac-east"}
	rows := make([]Row, n)
	for i := range rows {
		var cat Value = "electricity"
		if i%11 == 0 {
			cat = nil
		}
		var score Value = float64(i%97) / 7
		if i%13 == 0 {
			score = nil
		}
		rows[i] = Row{int64(1_000_000 + i), regions[(i/16)%len(regions)], cat, score, (i/32)%2 == 0}
	}
	return rows
}
